#!/usr/bin/env python3
"""Compare a BENCH_<suite>.json artifact against a baseline artifact.

Usage: check_regression.py [--advisory] CURRENT.json [BASELINE.json]

Exits non-zero when a watched experiment regressed by more than the
threshold against the baseline. When the baseline file is missing the
check is skipped (exit 0) so the first run on a fresh branch — or a run
where the previous artifact could not be downloaded — does not fail.
A missing CURRENT file likewise warns and passes, so an optional bench
stage that produced nothing does not masquerade as a regression.

With --advisory, timing comparisons print WARN instead of FAIL and never
affect the exit status; the structural bloom invariants (which hold on
any hardware) are still enforced. Use --advisory when comparing against
a committed seed baseline from a different machine class, where absolute
ns/run numbers are trajectory hints rather than gates.

Only same-machine comparisons are meaningful for absolute timings, so
this is intended to compare artifacts produced by the same CI runner
class (the previous run on main vs. the current run). The bloom section
is additionally validated structurally: the dangling-heavy configurations
must actually prune, whatever the hardware does to the timings.
"""

import json
import math
import sys

# Headline experiments whose ns/run trajectory gates the build: the
# flatten-to-semijoin pipeline and the hash nest-join, the two operators
# the paper's rewrites lean on.
WATCHED = ["E1-flatten-semijoin", "E2-hash-nestjoin"]
THRESHOLD = 1.25  # fail when current > baseline * THRESHOLD


def ns_per_run(doc):
    out = {}
    for exp in doc.get("experiments", []):
        out[exp["name"]] = exp.get("ns_per_run")
    return out


def bloom_rows(doc):
    return {
        (e["catalog"], e["query"], e["jobs"]): e for e in doc.get("bloom", [])
    }


def usable(x):
    return isinstance(x, (int, float)) and not math.isnan(x) and x > 0


def validate_bloom(doc):
    """Structural invariants that hold on any hardware."""
    rows = doc.get("bloom", [])
    if not rows:
        print("FAIL: artifact has no bloom section")
        return False
    ok = True
    for e in rows:
        where = f"bloom[{e['catalog']}/{e['query']}/jobs={e['jobs']}]"
        if e["bloom_checks"] <= 0:
            print(f"FAIL: {where}: no bloom checks recorded")
            ok = False
        elif e["catalog"] == "all-dangling":
            # Nearly every probe key is absent from the build side, so the
            # filter must prune nearly everything (false positives only).
            rate = e["bloom_prunes"] / e["bloom_checks"]
            if rate < 0.9:
                print(f"FAIL: {where}: prune rate {rate:.2f} < 0.9")
                ok = False
            else:
                print(
                    f"ok: {where}: pruned {e['bloom_prunes']}/{e['bloom_checks']}"
                    f" ({rate:.1%}), query speedup {e['speedup']:.2f}x,"
                    f" operator speedup {e['operator_speedup']:.2f}x"
                )
    return ok


def validate_shred(doc):
    """Structural invariants of the nest-join vs shredding case: the
    query must genuinely have shredded (a fallback would time the nest
    join against itself), the flat-query count must be the bounded
    decomposition the backend promises, and the shredded run must not be
    pathologically slower than the nest join — true on any hardware."""
    shred = doc.get("shred")
    if not shred:
        print("FAIL: artifact has no shred section")
        return False
    ok = True
    if not shred.get("shredded"):
        print("FAIL: shred: bench query fell back to nest-join execution")
        ok = False
    if shred.get("flat_queries", 0) < 2:
        print(f"FAIL: shred: flat_queries = {shred.get('flat_queries')} < 2")
        ok = False
    nest, sh = shred.get("nest_ms"), shred.get("shred_ms")
    if usable(nest) and usable(sh):
        if sh > 25 * nest:
            print(
                f"FAIL: shred: {sh:.2f} ms is more than 25x the nest join"
                f" ({nest:.2f} ms)"
            )
            ok = False
        else:
            print(
                f"ok: shred: nest join {nest:.2f} ms, shredding {sh:.2f} ms"
                f" over {shred.get('flat_queries')} flat queries"
                f" ({shred.get('ratio', float('nan')):.2f}x)"
            )
    return ok


def validate_server(doc):
    """Structural invariants of the server cache tiers: the warm tiers
    must actually have hit their caches, and a result-cache hit (a
    lookup, no execution) must not be slower than a cold compile +
    execute — true on any hardware."""
    srv = doc.get("server")
    if not srv:
        print("FAIL: artifact has no server section")
        return False
    ok = True
    if srv.get("plan_hits", 0) <= 0:
        print("FAIL: server: warm-plan tier recorded no plan-cache hits")
        ok = False
    if srv.get("result_hits", 0) <= 0:
        print("FAIL: server: warm-result tier recorded no result-cache hits")
        ok = False
    cold, warm_result = srv.get("cold_ms"), srv.get("warm_result_ms")
    if usable(cold) and usable(warm_result):
        if warm_result > cold:
            print(
                f"FAIL: server: result-cache hit ({warm_result:.3f} ms) slower"
                f" than cold request ({cold:.3f} ms)"
            )
            ok = False
        else:
            print(
                f"ok: server: cold {cold:.3f} ms, warm-plan"
                f" {srv.get('warm_plan_ms', float('nan')):.3f} ms, warm-result"
                f" {warm_result:.3f} ms"
                f" ({srv.get('result_speedup', float('nan')):.1f}x)"
            )
    # Tail-latency fields are newer than some committed baselines, so
    # their absence is tolerated; when present they must be internally
    # consistent — quantiles ordered and the instrumented run attributed
    # to a real operator — which holds on any hardware.
    p50, p95, p99 = (
        srv.get("request_p50_us"),
        srv.get("request_p95_us"),
        srv.get("request_p99_us"),
    )
    if usable(p50) or usable(p95) or usable(p99):
        if not (usable(p50) and usable(p95) and usable(p99)):
            print(f"FAIL: server: partial latency quantiles (p50={p50} p95={p95} p99={p99})")
            ok = False
        elif not (p50 <= p95 <= p99):
            print(
                f"FAIL: server: quantiles out of order: p50 {p50:.0f} us,"
                f" p95 {p95:.0f} us, p99 {p99:.0f} us"
            )
            ok = False
        elif not srv.get("hot_op"):
            print("FAIL: server: instrumented run attributed no hot operator")
            ok = False
        else:
            print(
                f"ok: server: warm-plan p50 {p50:.0f} us, p95 {p95:.0f} us,"
                f" p99 {p99:.0f} us over {srv.get('latency_samples')} requests,"
                f" hottest operator {srv.get('hot_op')}"
            )
    return ok


def validate_vector(doc):
    """Structural invariants of the row-vs-vector case: every benched
    plan must actually run vectorized (a silently row-bound plan would
    still "pass" on timings alone), batch-size sensitivity must have
    been recorded, and at least one filter/join-heavy query must show
    the columnar engine ahead. The >= 1.5x headline speedup itself is
    hardware-dependent and therefore advisory: it prints WARN, never
    fails the gate."""
    rows = doc.get("vector")
    if not rows:
        print("FAIL: artifact has no vector section")
        return False
    ok = True
    best = 0.0
    for e in rows:
        where = f"vector[{e['query']}]"
        frac = e.get("vectorized_fraction")
        if not usable(frac):
            print(f"FAIL: {where}: plan has no vectorized operators")
            ok = False
            continue
        widths = e.get("batch_sensitivity") or []
        if len(widths) < 3:
            print(f"FAIL: {where}: batch-size sensitivity sweep missing")
            ok = False
            continue
        speedup = e.get("speedup")
        if usable(speedup):
            best = max(best, speedup)
        print(
            f"ok: {where}: {e['row_ms']:.2f} ms row, {e['vector_ms']:.2f} ms"
            f" vector ({speedup:.2f}x), {frac:.0%} of operators vectorized,"
            f" widths {[w['batch'] for w in widths]}"
        )
    if best <= 1.0:
        print("FAIL: vector: columnar engine ahead on no query at all")
        ok = False
    elif best < 1.5:
        print(f"WARN: vector: best speedup {best:.2f}x below the 1.5x target")
    else:
        print(f"ok: vector: best speedup {best:.2f}x (target 1.5x)")
    return ok


def compare(current, baseline, advisory=False):
    ok = True
    bad = "WARN" if advisory else "FAIL"
    cur_ns, base_ns = ns_per_run(current), ns_per_run(baseline)
    for name in WATCHED:
        c, b = cur_ns.get(name), base_ns.get(name)
        if not usable(c) or not usable(b):
            print(f"skip: {name}: no usable ns/run estimate (cur={c} base={b})")
            continue
        ratio = c / b
        verdict = bad if ratio > THRESHOLD else "ok"
        print(f"{verdict}: {name}: {b:.0f} -> {c:.0f} ns/run ({ratio:.2f}x)")
        if ratio > THRESHOLD and not advisory:
            ok = False
    cur_bloom, base_bloom = bloom_rows(current), bloom_rows(baseline)
    for key, base_e in base_bloom.items():
        cur_e = cur_bloom.get(key)
        if cur_e is None:
            continue
        c, b = cur_e.get("bloom_ms"), base_e.get("bloom_ms")
        if not usable(c) or not usable(b):
            continue
        ratio = c / b
        where = "bloom[%s/%s/jobs=%d]" % key
        verdict = bad if ratio > THRESHOLD else "ok"
        print(f"{verdict}: {where}: {b:.1f} -> {c:.1f} ms ({ratio:.2f}x)")
        if ratio > THRESHOLD and not advisory:
            ok = False
    cur_srv, base_srv = current.get("server") or {}, baseline.get("server") or {}
    for field in ("cold_ms", "warm_plan_ms", "warm_result_ms"):
        c, b = cur_srv.get(field), base_srv.get(field)
        if not usable(c) or not usable(b):
            continue
        ratio = c / b
        verdict = bad if ratio > THRESHOLD else "ok"
        print(f"{verdict}: server.{field}: {b:.3f} -> {c:.3f} ms ({ratio:.2f}x)")
        if ratio > THRESHOLD and not advisory:
            ok = False
    # Tail-latency watch: always advisory. p95 is a single-order
    # statistic over a couple hundred requests, so one scheduler hiccup
    # moves it — worth a WARN in the log, never a gate. Absent on older
    # baselines, in which case there is nothing to compare.
    c, b = cur_srv.get("request_p95_us"), base_srv.get("request_p95_us")
    if usable(c) and usable(b):
        ratio = c / b
        verdict = "WARN" if ratio > THRESHOLD else "ok"
        print(
            f"{verdict}: server.request_p95_us: {b:.0f} -> {c:.0f} us"
            f" ({ratio:.2f}x, advisory)"
        )
    cur_vec = {e["query"]: e for e in current.get("vector") or []}
    base_vec = {e["query"]: e for e in baseline.get("vector") or []}
    for qname, base_e in base_vec.items():
        cur_e = cur_vec.get(qname)
        if cur_e is None:
            continue
        c, b = cur_e.get("vector_ms"), base_e.get("vector_ms")
        if not usable(c) or not usable(b):
            continue
        ratio = c / b
        verdict = bad if ratio > THRESHOLD else "ok"
        print(f"{verdict}: vector[{qname}]: {b:.1f} -> {c:.1f} ms ({ratio:.2f}x)")
        if ratio > THRESHOLD and not advisory:
            ok = False
    cur_sh, base_sh = current.get("shred") or {}, baseline.get("shred") or {}
    c, b = cur_sh.get("shred_ms"), base_sh.get("shred_ms")
    if usable(c) and usable(b):
        ratio = c / b
        verdict = bad if ratio > THRESHOLD else "ok"
        print(f"{verdict}: shred.shred_ms: {b:.2f} -> {c:.2f} ms ({ratio:.2f}x)")
        if ratio > THRESHOLD and not advisory:
            ok = False
    return ok


def main():
    argv = sys.argv[1:]
    advisory = "--advisory" in argv
    argv = [a for a in argv if a != "--advisory"]
    if not argv:
        print(__doc__)
        return 2
    try:
        current = json.load(open(argv[0]))
    except FileNotFoundError:
        print(f"skip: no current artifact at {argv[0]}; nothing to check")
        return 0
    ok = validate_bloom(current)
    ok = validate_shred(current) and ok
    ok = validate_vector(current) and ok
    ok = validate_server(current) and ok
    if len(argv) > 1:
        try:
            baseline = json.load(open(argv[1]))
        except FileNotFoundError:
            print(f"skip: no baseline at {argv[1]}; regression gate skipped")
            return 0 if ok else 1
        ok = compare(current, baseline, advisory=advisory) and ok
    else:
        print("skip: no baseline given; regression gate skipped")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
