(* Measurement helpers shared by all experiments.

   Two layers:
   - [bechamel_table]: proper OLS-fitted ns/run for the headline
     micro-benchmarks (one [Bechamel.Test.make] per experiment);
   - [measure_ms]: adaptive one-shot wall-clock timing for parameter sweeps
     (a sweep point runs the workload a handful of times; the OLS machinery
     would make wide sweeps too slow). *)

let clock = Monotonic_clock.now

let time_once f =
  let t0 = clock () in
  let result = f () in
  let t1 = clock () in
  (Int64.to_float (Int64.sub t1 t0), result)

(* Median-of-runs milliseconds; adapts the repetition count to the cost of
   one run so that cheap points are measured several times and expensive
   points only once. *)
let measure_ms ?(budget_ns = 2e8) f =
  let first, _ = time_once f in
  let reps = max 1 (min 9 (int_of_float (budget_ns /. Float.max first 1.0))) in
  let samples =
    first :: List.init (reps - 1) (fun _ -> fst (time_once f))
  in
  let sorted = List.sort Float.compare samples in
  List.nth sorted (List.length sorted / 2) /. 1e6

(* Run a bechamel suite and return [(name, ns_per_run)] pairs. A missing
   OLS estimate (too few samples within the quota) is reported as nan, but
   never silently: the warning names the experiment so a CI bench log tells
   you exactly which row to distrust. *)
let bechamel_table ?(limit = 300) ?(quota = 0.3) tests =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" tests) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  (* [Test.make_grouped ~name:""] prefixes every test name with "/"; strip
     it so rows match the caller's test names. *)
  let strip_group name =
    match String.index_opt name '/' with
    | Some 0 -> String.sub name 1 (String.length name - 1)
    | _ -> name
  in
  Hashtbl.fold
    (fun name result acc ->
      let name = strip_group name in
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> (name, ns) :: acc
      | Some [] | Some (_ :: _ :: _) | None ->
        Printf.eprintf
          "warning: no OLS ns/run estimate for experiment %s (insufficient \
           samples within the %.2fs quota); reporting nan\n\
           %!"
          name quota;
        (name, Float.nan) :: acc)
    results []
  |> List.sort compare

(* Machine-readable artifact for the CI perf trajectory: one
   BENCH_<suite>.json per suite run, diffable across PRs. *)
let write_json_artifact ~suite json =
  let dir =
    match Sys.getenv_opt "NESTQL_BENCH_DIR" with Some d -> d | None -> "."
  in
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" suite) in
  match open_out path with
  | oc ->
    output_string oc (Engine.Json.to_pretty_string json);
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nwrote %s\n" path
  | exception Sys_error msg ->
    (* Don't lose a whole measurement run to an unwritable directory. *)
    Printf.eprintf "warning: could not write bench artifact: %s\n%!" msg

(* --- table rendering ----------------------------------------------------- *)

let print_rule width = print_endline (String.make width '-')

(* Optional CSV mirror: set NESTQL_BENCH_CSV=<dir> to also write every
   table as <dir>/<slug-of-title>.csv (for plotting). *)
let csv_mirror ~title ~header rows =
  match Sys.getenv_opt "NESTQL_BENCH_CSV" with
  | None -> ()
  | Some dir ->
    let slug =
      String.map
        (fun c ->
          if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c
          else if c >= 'A' && c <= 'Z' then Char.lowercase_ascii c
          else '-')
        title
    in
    let path = Filename.concat dir (slug ^ ".csv") in
    let oc = open_out path in
    let quote s =
      if String.exists (fun c -> c = ',' || c = '"') s then
        Printf.sprintf "\"%s\""
          (String.concat "\"\"" (String.split_on_char '"' s))
      else s
    in
    List.iter
      (fun row ->
        output_string oc (String.concat "," (List.map quote row));
        output_char oc '\n')
      (header :: rows);
    close_out oc

let print_table ~title ~header rows =
  csv_mirror ~title ~header rows;
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let render row =
    String.concat "  " (List.map2 (fun s w ->
        s ^ String.make (w - String.length s) ' ') row widths)
  in
  Printf.printf "\n== %s ==\n" title;
  let header_line = render header in
  print_endline header_line;
  print_rule (String.length header_line);
  List.iter (fun row -> print_endline (render row)) rows

let fms v = Printf.sprintf "%.2f" v
let fint v = string_of_int v
let fratio v = Printf.sprintf "%.1fx" v
