(* Benchmark driver.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe table2 bugs  # selected experiments
     dune exec bench/main.exe headline     # bechamel micro-suite only
     dune exec bench/main.exe smoke        # short headline run (CI)

   The headline suite holds one [Bechamel.Test.make] per experiment id
   (OLS-fitted ns/run at a fixed medium size); the experiment functions in
   [Experiments] print the per-table parameter sweeps.

   [headline] and [smoke] also write a machine-readable BENCH_<suite>.json
   artifact (ns/run plus the per-operator EXPLAIN ANALYZE tree of every
   experiment that has a physical plan) into $NESTQL_BENCH_DIR or the
   current directory — CI uploads it so the perf trajectory is diffable
   across PRs. *)

module Pipeline = Core.Pipeline
module Json = Engine.Json

let fixed_catalog =
  lazy
    (Workload.Gen.xy
       { Workload.Gen.default_xy with
         nx = 200; ny = 200; key_dom = 50; dangling = 0.1; seed = 77 })

let fixed_xyz =
  lazy
    (Workload.Gen.xyz
       {
         base =
           { Workload.Gen.default_xy with
             nx = 80; ny = 80; key_dom = 20; val_dom = 8; seed = 77 };
         nz = 80;
         z_key_dom = 20;
       })

let compiled ?options strategy catalog query =
  match Pipeline.compile_string ?options strategy catalog query with
  | Ok c -> c
  | Error msg -> failwith msg

(* A headline case: the bechamel thunk, plus (when the strategy yields a
   physical plan) the catalog/compiled pair for one instrumented run whose
   per-operator stats land in the JSON artifact. *)
type case = {
  name : string;
  run : unit -> unit;
  analyzed : (Cobj.Catalog.t * Pipeline.compiled) option;
}

let headline_cases () =
  let xy = Lazy.force fixed_catalog in
  let xyz = Lazy.force fixed_xyz in
  let exec catalog c () = ignore (Pipeline.execute catalog c) in
  let case name ?analyzed run = { name; run; analyzed } in
  let qcase name catalog c = case name ~analyzed:(catalog, c) (exec catalog c) in
  let semijoin_q =
    "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)"
  in
  let nest_q =
    "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x"
  in
  let count_q =
    "SELECT x.id FROM X x WHERE COUNT(SELECT y.id FROM Y y WHERE x.b = y.b) \
     = 0"
  in
  let s8_q =
    "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = \
     y.b AND y.c SUBSETEQ (SELECT z.c FROM Z z WHERE y.d = z.d))"
  in
  let unnest_q =
    "UNNEST(SELECT (SELECT (i = x.id, a = y.a) FROM Y y WHERE x.b = y.b) \
     FROM X x)"
  in
  let memo_opts =
    { Core.Planner.default_options with Core.Planner.memo_applies = true }
  in
  let table1_cat = Workload.Gen.table1 () in
  let table1_compiled =
    compiled Pipeline.Decorrelated table1_cat
      "SELECT (e = x.e, s = (SELECT y FROM Y y WHERE y.b = x.d)) FROM X x"
  in
  [
    qcase "T1-nestjoin-table1" table1_cat table1_compiled;
    case "T2-classify-catalog" (fun () ->
        List.iter
          (fun row ->
            ignore
              (Core.Classify.classify ~z:"z" (Core.Table2.predicate row)))
          Core.Table2.rows);
    qcase "E1-flatten-semijoin" xy (compiled Pipeline.Decorrelated xy semijoin_q);
    qcase "E2-hash-nestjoin" xy (compiled Pipeline.Decorrelated xy nest_q);
    qcase "E3-section8-decorrelated" xyz
      (compiled Pipeline.Decorrelated xyz s8_q);
    qcase "E4-ganski-wong-count" xy (compiled Pipeline.Ganski_wong xy count_q);
    qcase "E5-nestjoin-outerjoin-encoding" xy
      (compiled Pipeline.Decorrelated_outerjoin xy nest_q);
    qcase "E6-memoized-apply" xy
      (compiled ~options:memo_opts Pipeline.Naive xy count_q);
    qcase "E7-unnest-collapse" xy (compiled Pipeline.Decorrelated xy unnest_q);
    qcase "E8-multi-subquery" xy
      (compiled Pipeline.Decorrelated xy
         "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE \
          x.b = y.b) AND x.a NOT IN (SELECT w.a FROM Y w WHERE w.b = \
          x.b + 1)");
    qcase "E9-no-rewrite" xy
      (match
         Pipeline.compile_string ~rewrite:false Pipeline.Decorrelated xy
           semijoin_q
       with
      | Ok c -> c
      | Error msg -> failwith msg);
    qcase "E10-index-semijoin" xy
      (compiled Pipeline.Decorrelated xy
         "SELECT x.id FROM X x WHERE EXISTS v IN (SELECT y.a FROM Y y \
          WHERE x.b = y.b) (v > x.a)");
    case "E11-interpreted" (fun () ->
        Engine.Compile.enabled := false;
        Fun.protect
          ~finally:(fun () -> Engine.Compile.enabled := true)
          (exec xy (compiled Pipeline.Decorrelated xy nest_q)));
    qcase "E12-reordered-nestjoin" xy
      (compiled Pipeline.Decorrelated xy
         "SELECT (i = x.id, j = y.id, n = COUNT(SELECT w.id FROM Y w \
          WHERE w.a = x.a)) FROM X x, Y y WHERE x.b = y.b");
    (let shop =
       Workload.Gen.shop
         { Workload.Gen.default_shop with ncustomers = 80; norders = 240 }
     in
     qcase "E13-shop-mix" shop
       (compiled Pipeline.Decorrelated shop
          "SELECT c.name FROM CUSTOMERS c WHERE FORALL o IN (SELECT o \
           FROM ORDERS o WHERE o.cust = c.id) (o.status = \"done\")"));
  ]

(* One instrumented execution per case with a physical plan: the
   est-vs-actual per-operator tree for the artifact. *)
let operators_json case =
  match case.analyzed with
  | None -> Json.Null
  | Some (catalog, c) -> (
    match Pipeline.analyze catalog c with
    | Ok (_value, tree) -> Engine.Analyze.to_json tree
    | Error msg ->
      Printf.eprintf "warning: could not analyze %s: %s\n%!" case.name msg;
      Json.Null)

(* Serial-vs-parallel speedup on the hash nest-join at a larger scale than
   the micro-suite ([Force_hash] keeps the planner off the index variant so
   the partitioned join is what gets measured). The domain count comes from
   NESTQL_JOBS when it asks for parallelism, else 4 — the artifact records
   it either way, so a single-core CI runner is visible in the numbers
   rather than silently averaged in. *)
let parallel_case ~suite =
  let scale = if suite = "smoke" then 400 else 2000 in
  let jobs =
    match Pipeline.default_jobs () with n when n >= 2 -> n | _ -> 4
  in
  let catalog =
    Workload.Gen.xy
      { Workload.Gen.default_xy with
        nx = scale; ny = scale; key_dom = scale / 4; dangling = 0.1; seed = 77 }
  in
  let opts =
    { Core.Planner.default_options with
      Core.Planner.force = Core.Planner.Force_hash }
  in
  let c =
    compiled ~options:opts Pipeline.Decorrelated catalog
      "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x"
  in
  let serial_v = Pipeline.execute ~jobs:1 catalog c in
  let parallel_v = Pipeline.execute ~jobs catalog c in
  if not (Cobj.Value.equal serial_v parallel_v) then
    failwith "parallel hash nest-join diverged from serial execution";
  let serial_ms =
    Harness.measure_ms (fun () -> ignore (Pipeline.execute ~jobs:1 catalog c))
  in
  let parallel_ms =
    Harness.measure_ms (fun () -> ignore (Pipeline.execute ~jobs catalog c))
  in
  let speedup = serial_ms /. parallel_ms in
  Harness.print_table
    ~title:
      (Printf.sprintf "hash nest-join serial vs %d domains (n=%d)" jobs scale)
    ~header:[ "jobs"; "ms"; "speedup" ]
    [
      [ "1"; Harness.fms serial_ms; "1.0x" ];
      [ string_of_int jobs; Harness.fms parallel_ms; Harness.fratio speedup ];
    ];
  Json.Obj
    [
      ("experiment", Json.String "E2-hash-nestjoin-parallel");
      ("scale", Json.Int scale);
      ("jobs", Json.Int jobs);
      ("serial_ms", Json.Float serial_ms);
      ("parallel_ms", Json.Float parallel_ms);
      ("speedup", Json.Float speedup);
    ]

let headline ~suite ~limit ~quota () =
  let open Bechamel in
  let cases = headline_cases () in
  let tests =
    List.map
      (fun c -> Test.make ~name:c.name (Staged.stage c.run))
      cases
  in
  let rows = Harness.bechamel_table ~limit ~quota tests in
  Harness.print_table
    ~title:(Printf.sprintf "%s micro-benchmarks (OLS ns/run)" suite)
    ~header:[ "experiment"; "ns/run" ]
    (List.map (fun (name, ns) -> [ name; Printf.sprintf "%.0f" ns ]) rows);
  let ns_of name =
    match List.assoc_opt name rows with Some ns -> ns | None -> Float.nan
  in
  let experiments =
    List.map
      (fun case ->
        Json.Obj
          [
            ("name", Json.String case.name);
            ("ns_per_run", Json.Float (ns_of case.name));
            ("operators", operators_json case);
          ])
      cases
  in
  let parallel = parallel_case ~suite in
  Harness.write_json_artifact ~suite
    (Json.Obj
       [
         ("suite", Json.String suite);
         ("quota_s", Json.Float quota);
         ("jobs", Json.Int (Pipeline.default_jobs ()));
         ("experiments", Json.List experiments);
         ("parallel", parallel);
       ])

let run_suite = function
  | "headline" -> headline ~suite:"headline" ~limit:300 ~quota:0.3 ()
  | "smoke" -> headline ~suite:"smoke" ~limit:50 ~quota:0.05 ()
  | _ -> assert false

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let known = List.map fst Experiments.all in
  match args with
  | [] ->
    run_suite "headline";
    List.iter (fun (_, f) -> f ()) Experiments.all
  | names ->
    List.iter
      (fun name ->
        match name with
        | "headline" | "smoke" -> run_suite name
        | _ -> (
          match List.assoc_opt name Experiments.all with
          | Some f -> f ()
          | None ->
            Printf.eprintf
              "unknown experiment %s (known: headline, smoke, %s)\n" name
              (String.concat ", " known);
            exit 1))
      names
