(* Benchmark driver.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe table2 bugs  # selected experiments
     dune exec bench/main.exe headline     # bechamel micro-suite only
     dune exec bench/main.exe smoke        # short headline run (CI)

   The headline suite holds one [Bechamel.Test.make] per experiment id
   (OLS-fitted ns/run at a fixed medium size); the experiment functions in
   [Experiments] print the per-table parameter sweeps.

   [headline] and [smoke] also write a machine-readable BENCH_<suite>.json
   artifact (ns/run plus the per-operator EXPLAIN ANALYZE tree of every
   experiment that has a physical plan) into $NESTQL_BENCH_DIR or the
   current directory — CI uploads it so the perf trajectory is diffable
   across PRs. *)

module Pipeline = Core.Pipeline
module Json = Engine.Json

let fixed_catalog =
  lazy
    (Workload.Gen.xy
       { Workload.Gen.default_xy with
         nx = 200; ny = 200; key_dom = 50; dangling = 0.1; seed = 77 })

let fixed_xyz =
  lazy
    (Workload.Gen.xyz
       {
         base =
           { Workload.Gen.default_xy with
             nx = 80; ny = 80; key_dom = 20; val_dom = 8; seed = 77 };
         nz = 80;
         z_key_dom = 20;
       })

let compiled ?options strategy catalog query =
  match Pipeline.compile_string ?options strategy catalog query with
  | Ok c -> c
  | Error msg -> failwith msg

(* A headline case: the bechamel thunk, plus (when the strategy yields a
   physical plan) the catalog/compiled pair for one instrumented run whose
   per-operator stats land in the JSON artifact. *)
type case = {
  name : string;
  run : unit -> unit;
  analyzed : (Cobj.Catalog.t * Pipeline.compiled) option;
}

let headline_cases () =
  let xy = Lazy.force fixed_catalog in
  let xyz = Lazy.force fixed_xyz in
  let exec catalog c () = ignore (Pipeline.execute catalog c) in
  let case name ?analyzed run = { name; run; analyzed } in
  let qcase name catalog c = case name ~analyzed:(catalog, c) (exec catalog c) in
  let semijoin_q =
    "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)"
  in
  let nest_q =
    "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x"
  in
  let count_q =
    "SELECT x.id FROM X x WHERE COUNT(SELECT y.id FROM Y y WHERE x.b = y.b) \
     = 0"
  in
  let s8_q =
    "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = \
     y.b AND y.c SUBSETEQ (SELECT z.c FROM Z z WHERE y.d = z.d))"
  in
  let unnest_q =
    "UNNEST(SELECT (SELECT (i = x.id, a = y.a) FROM Y y WHERE x.b = y.b) \
     FROM X x)"
  in
  let memo_opts =
    { Core.Planner.default_options with Core.Planner.memo_applies = true }
  in
  let table1_cat = Workload.Gen.table1 () in
  let table1_compiled =
    compiled Pipeline.Decorrelated table1_cat
      "SELECT (e = x.e, s = (SELECT y FROM Y y WHERE y.b = x.d)) FROM X x"
  in
  [
    qcase "T1-nestjoin-table1" table1_cat table1_compiled;
    case "T2-classify-catalog" (fun () ->
        List.iter
          (fun row ->
            ignore
              (Core.Classify.classify ~z:"z" (Core.Table2.predicate row)))
          Core.Table2.rows);
    qcase "E1-flatten-semijoin" xy (compiled Pipeline.Decorrelated xy semijoin_q);
    qcase "E2-hash-nestjoin" xy (compiled Pipeline.Decorrelated xy nest_q);
    qcase "E3-section8-decorrelated" xyz
      (compiled Pipeline.Decorrelated xyz s8_q);
    qcase "E4-ganski-wong-count" xy (compiled Pipeline.Ganski_wong xy count_q);
    qcase "E5-nestjoin-outerjoin-encoding" xy
      (compiled Pipeline.Decorrelated_outerjoin xy nest_q);
    qcase "E6-memoized-apply" xy
      (compiled ~options:memo_opts Pipeline.Naive xy count_q);
    qcase "E7-unnest-collapse" xy (compiled Pipeline.Decorrelated xy unnest_q);
    qcase "E8-multi-subquery" xy
      (compiled Pipeline.Decorrelated xy
         "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE \
          x.b = y.b) AND x.a NOT IN (SELECT w.a FROM Y w WHERE w.b = \
          x.b + 1)");
    qcase "E9-no-rewrite" xy
      (match
         Pipeline.compile_string ~rewrite:false Pipeline.Decorrelated xy
           semijoin_q
       with
      | Ok c -> c
      | Error msg -> failwith msg);
    qcase "E10-index-semijoin" xy
      (compiled Pipeline.Decorrelated xy
         "SELECT x.id FROM X x WHERE EXISTS v IN (SELECT y.a FROM Y y \
          WHERE x.b = y.b) (v > x.a)");
    case "E11-interpreted" (fun () ->
        Engine.Compile.enabled := false;
        Fun.protect
          ~finally:(fun () -> Engine.Compile.enabled := true)
          (exec xy (compiled Pipeline.Decorrelated xy nest_q)));
    qcase "E12-reordered-nestjoin" xy
      (compiled Pipeline.Decorrelated xy
         "SELECT (i = x.id, j = y.id, n = COUNT(SELECT w.id FROM Y w \
          WHERE w.a = x.a)) FROM X x, Y y WHERE x.b = y.b");
    (let shop =
       Workload.Gen.shop
         { Workload.Gen.default_shop with ncustomers = 80; norders = 240 }
     in
     qcase "E13-shop-mix" shop
       (compiled Pipeline.Decorrelated shop
          "SELECT c.name FROM CUSTOMERS c WHERE FORALL o IN (SELECT o \
           FROM ORDERS o WHERE o.cust = c.id) (o.status = \"done\")"));
  ]

(* One instrumented execution per case with a physical plan: the
   est-vs-actual per-operator tree for the artifact. *)
let operators_json case =
  match case.analyzed with
  | None -> Json.Null
  | Some (catalog, c) -> (
    match Pipeline.analyze catalog c with
    | Ok (_value, tree) -> Engine.Analyze.to_json tree
    | Error msg ->
      Printf.eprintf "warning: could not analyze %s: %s\n%!" case.name msg;
      Json.Null)

(* Serial-vs-parallel speedup on the hash nest-join at a larger scale than
   the micro-suite ([Force_hash] keeps the planner off the index variant so
   the partitioned join is what gets measured). The domain count comes from
   NESTQL_JOBS when it asks for parallelism, else 4 — the artifact records
   it either way, so a single-core CI runner is visible in the numbers
   rather than silently averaged in. *)
let parallel_case ~suite =
  let scale = if suite = "smoke" then 400 else 2000 in
  let jobs =
    match Pipeline.default_jobs () with n when n >= 2 -> n | _ -> 4
  in
  let catalog =
    Workload.Gen.xy
      { Workload.Gen.default_xy with
        nx = scale; ny = scale; key_dom = scale / 4; dangling = 0.1; seed = 77 }
  in
  let opts =
    { Core.Planner.default_options with
      Core.Planner.force = Core.Planner.Force_hash }
  in
  let c =
    compiled ~options:opts Pipeline.Decorrelated catalog
      "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x"
  in
  let serial_v = Pipeline.execute ~jobs:1 catalog c in
  let parallel_v = Pipeline.execute ~jobs catalog c in
  if not (Cobj.Value.equal serial_v parallel_v) then
    failwith "parallel hash nest-join diverged from serial execution";
  let serial_ms =
    Harness.measure_ms (fun () -> ignore (Pipeline.execute ~jobs:1 catalog c))
  in
  let parallel_ms =
    Harness.measure_ms (fun () -> ignore (Pipeline.execute ~jobs catalog c))
  in
  let speedup = serial_ms /. parallel_ms in
  Harness.print_table
    ~title:
      (Printf.sprintf "hash nest-join serial vs %d domains (n=%d)" jobs scale)
    ~header:[ "jobs"; "ms"; "speedup" ]
    [
      [ "1"; Harness.fms serial_ms; "1.0x" ];
      [ string_of_int jobs; Harness.fms parallel_ms; Harness.fratio speedup ];
    ];
  Json.Obj
    [
      ("experiment", Json.String "E2-hash-nestjoin-parallel");
      ("scale", Json.Int scale);
      ("jobs", Json.Int jobs);
      ("serial_ms", Json.Float serial_ms);
      ("parallel_ms", Json.Float parallel_ms);
      ("speedup", Json.Float speedup);
    ]

(* Bloom-filter sideways information passing on dangling-heavy workloads:
   the probe side is several times the build side and the build side is
   large enough that its hash table is cache-hostile while its Bloom
   filter is not — the regime the filter is for. Two timings per
   configuration:

   - whole-query wall clock, where the (shared) scan and materialization
     cost of both operands dilutes the effect;
   - the join operator's own time (its node in the EXPLAIN ANALYZE tree
     minus its children), isolating build + probe — the work the filter
     actually changes.

   A mixed catalog (half the probe keys dangling) sits next to an
   all-dangling one to show the prune-rate dependence; the artifact
   records the prune counters alongside both timings. *)
let bloom_case ~suite =
  let scale = if suite = "smoke" then 10_000 else 100_000 in
  let jobs =
    match Pipeline.default_jobs () with n when n >= 2 -> n | _ -> 4
  in
  let opts =
    { Core.Planner.default_options with
      Core.Planner.force = Core.Planner.Force_hash }
  in
  (* Single-field join keys keep the shared per-probe work (key eval +
     hash) small, so the avoidable hash-table lookup is what differs. *)
  let semijoin_q = "SELECT x.id FROM X x WHERE x.b IN (SELECT y.b FROM Y y)" in
  let nest_q =
    "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x"
  in
  (* Exclusive time of the topmost hash operator, median of [reps]
     instrumented runs. *)
  let operator_ms ~jobs ~bloom catalog c =
    let module Stats = Engine.Stats in
    let prefixed p s =
      String.length s >= String.length p && String.sub s 0 (String.length p) = p
    in
    let rec find (n : Stats.node) =
      if prefixed "hash-" n.Stats.op then Some n
      else
        List.fold_left
          (fun acc ch -> match acc with Some _ -> acc | None -> find ch)
          None n.Stats.children
    in
    let once () =
      match Pipeline.analyze ~jobs ~bloom catalog c with
      | Error msg -> failwith msg
      | Ok (_, tree) -> (
        match find tree with
        | None -> failwith "bloom bench: no hash operator in plan"
        | Some n ->
          let children_ns =
            List.fold_left
              (fun acc ch -> Int64.add acc ch.Stats.time_ns)
              0L n.Stats.children
          in
          Int64.to_float (Int64.sub n.Stats.time_ns children_ns) /. 1e6)
    in
    let samples = List.sort Float.compare (List.init 3 (fun _ -> once ())) in
    List.nth samples 1
  in
  let rows = ref [] in
  let entries = ref [] in
  List.iter
    (fun (cname, dangling) ->
      let catalog =
        Workload.Gen.xy
          { Workload.Gen.default_xy with
            nx = 4 * scale; ny = scale; key_dom = scale; dangling; seed = 77 }
      in
      List.iter
        (fun (qname, q) ->
          let c = compiled ~options:opts Pipeline.Decorrelated catalog q in
          List.iter
            (fun j ->
              let on = Pipeline.execute ~jobs:j ~bloom:true catalog c in
              let off = Pipeline.execute ~jobs:j ~bloom:false catalog c in
              if not (Cobj.Value.equal on off) then
                failwith (qname ^ ": bloom filtering changed the result");
              let stats = Engine.Stats.create () in
              ignore (Pipeline.execute ~stats ~jobs:j ~bloom:true catalog c);
              (* Interleaved rounds, keeping the per-mode minimum: heap
                 and GC state drift across a long run, so measuring one
                 mode entirely before the other biases whichever ran on
                 the colder heap. *)
              let timed bloom =
                Harness.measure_ms ~budget_ns:2.5e8 (fun () ->
                    ignore (Pipeline.execute ~jobs:j ~bloom catalog c))
              in
              let b1 = timed true in
              let n1 = timed false in
              let b2 = timed true in
              let n2 = timed false in
              let bloom_ms = Float.min b1 b2 in
              let nobloom_ms = Float.min n1 n2 in
              let op_bloom_ms = operator_ms ~jobs:j ~bloom:true catalog c in
              let op_nobloom_ms = operator_ms ~jobs:j ~bloom:false catalog c in
              let speedup = nobloom_ms /. bloom_ms in
              let op_speedup = op_nobloom_ms /. op_bloom_ms in
              rows :=
                [
                  cname; qname; string_of_int j;
                  Harness.fms bloom_ms; Harness.fms nobloom_ms;
                  Harness.fratio speedup;
                  Harness.fms op_bloom_ms; Harness.fms op_nobloom_ms;
                  Harness.fratio op_speedup;
                  string_of_int stats.Engine.Stats.bloom_prunes;
                ]
                :: !rows;
              entries :=
                Json.Obj
                  [
                    ("catalog", Json.String cname);
                    ("query", Json.String qname);
                    ("dangling", Json.Float dangling);
                    ("probe_rows", Json.Int (4 * scale));
                    ("build_rows", Json.Int scale);
                    ("jobs", Json.Int j);
                    ("bloom_ms", Json.Float bloom_ms);
                    ("nobloom_ms", Json.Float nobloom_ms);
                    ("speedup", Json.Float speedup);
                    ("operator_bloom_ms", Json.Float op_bloom_ms);
                    ("operator_nobloom_ms", Json.Float op_nobloom_ms);
                    ("operator_speedup", Json.Float op_speedup);
                    ("bloom_checks", Json.Int stats.Engine.Stats.bloom_checks);
                    ("bloom_prunes", Json.Int stats.Engine.Stats.bloom_prunes);
                  ]
                :: !entries)
            [ 1; jobs ])
        [ ("semijoin", semijoin_q); ("nestjoin", nest_q) ])
    [ ("mixed", 0.5); ("all-dangling", 1.0) ];
  Harness.print_table
    ~title:
      (Printf.sprintf
         "bloom SIP on dangling-heavy hash joins (probe=%d build=%d)"
         (4 * scale) scale)
    ~header:
      [ "catalog"; "query"; "jobs"; "query ms"; "no-bloom"; "speedup";
        "op ms"; "op no-bloom"; "op speedup"; "prunes" ]
    (List.rev !rows);
  Json.List (List.rev !entries)

(* Nest-join vs query shredding on the canonical SELECT-clause nesting
   query: the same logical plan executed through the hash nest-join and
   through the shredding backend's flat-queries-plus-stitch pipeline.
   The two values are asserted identical before anything is timed, and
   the artifact records whether the query genuinely shredded (a fallback
   would silently time the nest join twice — the regression gate checks
   the flag structurally). *)
let shred_case ~suite =
  let scale = if suite = "smoke" then 400 else 2000 in
  let catalog =
    Workload.Gen.xy
      { Workload.Gen.default_xy with
        nx = scale; ny = scale; key_dom = scale / 4; dangling = 0.1; seed = 77 }
  in
  let q =
    "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x"
  in
  let nest_c = compiled Pipeline.Decorrelated catalog q in
  let shred_c = compiled Pipeline.Shredded catalog q in
  let flat_queries =
    match shred_c.Pipeline.shredded with
    | Some exe -> Core.Shred.executable_flat_count exe
    | None -> 0
  in
  let nest_v = Pipeline.execute catalog nest_c in
  let shred_v = Pipeline.execute catalog shred_c in
  if not (Cobj.Value.equal nest_v shred_v) then
    failwith "shredding diverged from the nest join";
  let timed c =
    Harness.measure_ms ~budget_ns:2.5e8 (fun () ->
        ignore (Pipeline.execute catalog c))
  in
  (* interleaved, per-backend minimum — same heap-drift reasoning as the
     bloom bench *)
  let n1 = timed nest_c in
  let s1 = timed shred_c in
  let n2 = timed nest_c in
  let s2 = timed shred_c in
  let nest_ms = Float.min n1 n2 in
  let shred_ms = Float.min s1 s2 in
  let ratio = nest_ms /. shred_ms in
  Harness.print_table
    ~title:(Printf.sprintf "nest join vs query shredding (n=%d)" scale)
    ~header:[ "backend"; "ms"; "vs nest join" ]
    [
      [ "nest join"; Harness.fms nest_ms; "1.0x" ];
      [ Printf.sprintf "shred (%d flat queries)" flat_queries;
        Harness.fms shred_ms; Harness.fratio ratio ];
    ];
  Json.Obj
    [
      ("experiment", Json.String "E2-nestjoin-vs-shredding");
      ("scale", Json.Int scale);
      ("shredded", Json.Bool (shred_c.Pipeline.shredded <> None));
      ("flat_queries", Json.Int flat_queries);
      ("nest_ms", Json.Float nest_ms);
      ("shred_ms", Json.Float shred_ms);
      ("ratio", Json.Float ratio);
    ]

(* Row engine vs the columnar batch engine on filter/join-heavy queries,
   single-domain (jobs=1 isolates the vectorization win from partition
   parallelism). The two values are asserted identical before anything
   is timed; timings are interleaved min-of-2 rounds per engine (same
   heap-drift reasoning as the bloom bench). The artifact also records
   the vectorized fraction of the annotation tree (the regression gate
   checks it structurally — a silently row-bound plan would otherwise
   still "pass" on a fast machine) and a batch-width sensitivity sweep
   (NESTQL_BATCH ∈ {64, 1024, 4096}). *)
let vector_case ~suite =
  let scale = if suite = "smoke" then 10_000 else 100_000 in
  let catalog =
    Workload.Gen.xy
      { Workload.Gen.default_xy with
        nx = scale; ny = scale / 4; key_dom = scale / 8; dangling = 0.3;
        seed = 77 }
  in
  let opts =
    { Core.Planner.default_options with
      Core.Planner.force = Core.Planner.Force_hash }
  in
  let queries =
    [
      ( "filter",
        "SELECT x.id FROM X x WHERE (x.a * 13 + x.b * 7) MOD 97 + x.a * x.a \
         < (x.b MOD 11) * 9 + 40" );
      ("semijoin", "SELECT x.id FROM X x WHERE x.b IN (SELECT y.b FROM Y y)");
      ( "nestjoin",
        "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM \
         X x" );
    ]
  in
  let vectorized_fraction c =
    match Pipeline.analyze ~jobs:1 ~vector:true catalog c with
    | Error msg -> failwith msg
    | Ok (_, tree) ->
      let module Stats = Engine.Stats in
      let total = ref 0 and vec = ref 0 in
      let rec walk (n : Stats.node) =
        incr total;
        if n.Stats.vectorized then incr vec;
        List.iter walk n.Stats.children
      in
      walk tree;
      float_of_int !vec /. float_of_int !total
  in
  let rows = ref [] in
  let entries = ref [] in
  List.iter
    (fun (qname, q) ->
      let c = compiled ~options:opts Pipeline.Decorrelated catalog q in
      let row_v = Pipeline.execute ~jobs:1 ~vector:false catalog c in
      let vec_v = Pipeline.execute ~jobs:1 ~vector:true catalog c in
      if not (Cobj.Value.equal row_v vec_v) then
        failwith (qname ^ ": vectorized execution changed the result");
      (* Compact before every measurement so no configuration inherits
         the previous one's major-heap debt; interleaved min-of-3 rounds
         on top (the run times here are long enough that [measure_ms]
         only fits a few samples per call). *)
      let timed ?batch vector =
        Gc.compact ();
        Harness.measure_ms ~budget_ns:2.5e8 (fun () ->
            ignore (Pipeline.execute ~jobs:1 ~vector ?batch catalog c))
      in
      let v1 = timed true in
      let r1 = timed false in
      let v2 = timed true in
      let r2 = timed false in
      let v3 = timed true in
      let r3 = timed false in
      let vector_ms = Float.min v1 (Float.min v2 v3) in
      let row_ms = Float.min r1 (Float.min r2 r3) in
      let speedup = row_ms /. vector_ms in
      let fraction = vectorized_fraction c in
      let widths =
        List.map
          (fun batch ->
            let a = timed ~batch true in
            let b = timed ~batch true in
            let c = timed ~batch true in
            (batch, Float.min a (Float.min b c)))
          [ 64; 1024; 4096 ]
      in
      rows :=
        ([
           qname;
           Harness.fms row_ms; Harness.fms vector_ms; Harness.fratio speedup;
           Printf.sprintf "%.2f" fraction;
         ]
        @ List.map (fun (_, ms) -> Harness.fms ms) widths)
        :: !rows;
      entries :=
        Json.Obj
          [
            ("query", Json.String qname);
            ("scale", Json.Int scale);
            ("jobs", Json.Int 1);
            ("row_ms", Json.Float row_ms);
            ("vector_ms", Json.Float vector_ms);
            ("speedup", Json.Float speedup);
            ("vectorized_fraction", Json.Float fraction);
            ( "batch_sensitivity",
              Json.List
                (List.map
                   (fun (batch, ms) ->
                     Json.Obj
                       [ ("batch", Json.Int batch); ("vector_ms", Json.Float ms) ])
                   widths) );
          ]
        :: !entries)
    queries;
  Harness.print_table
    ~title:
      (Printf.sprintf "row vs columnar batch engine, jobs=1 (n=%d)" scale)
    ~header:
      [ "query"; "row ms"; "vector ms"; "speedup"; "vec-frac"; "b=64";
        "b=1024"; "b=4096" ]
    (List.rev !rows);
  Json.List (List.rev !entries)

(* Server-mode request latency through the daemon's cache layer (the
   Cache module in-process — exactly what [nestql serve] runs under its
   executor lock, minus socket I/O): a cold request pays parse + compile
   + execute, a warm-plan request pays parse + execute, a warm-result
   request pays parse + lookup. The three replies are asserted identical
   before anything is timed, and the artifact records the cache counters
   so the regression gate can check the hits structurally on any
   hardware. *)
let server_case ~suite =
  let scale = if suite = "smoke" then 200 else 1000 in
  let catalog =
    Workload.Gen.xy
      { Workload.Gen.default_xy with
        nx = scale; ny = scale; key_dom = scale / 4; dangling = 0.1; seed = 77 }
  in
  let q =
    "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)"
  in
  let strategy = Pipeline.Decorrelated in
  let ask ?cache t =
    match Server.Cache.query t ?cache strategy catalog q with
    | Ok reply -> reply
    | Error _ -> failwith "server bench: query failed"
  in
  (* Three cache configurations; prime the warm ones and assert the
     outcome they are supposed to measure. *)
  let cold_cache = Server.Cache.create ~plan_capacity:0 ~result_capacity:0 () in
  let plan_cache =
    Server.Cache.create ~plan_capacity:16 ~result_capacity:0 ()
  in
  let result_cache =
    Server.Cache.create ~plan_capacity:16 ~result_capacity:(1 lsl 22) ()
  in
  let cold = ask ~cache:false cold_cache in
  let _prime = ask plan_cache in
  let warm_plan = ask plan_cache in
  let _prime = ask result_cache in
  let warm_result = ask result_cache in
  if warm_plan.Server.Cache.plan <> Server.Cache.Hit then
    failwith "server bench: warm-plan request missed the plan cache";
  if warm_result.Server.Cache.result <> Server.Cache.Hit then
    failwith "server bench: warm-result request missed the result cache";
  if
    not
      (Cobj.Value.equal cold.Server.Cache.value warm_plan.Server.Cache.value
      && Cobj.Value.equal cold.Server.Cache.value
          warm_result.Server.Cache.value)
  then failwith "server bench: cached reply diverged from cold execution";
  let timed f = Harness.measure_ms ~budget_ns:2.5e8 f in
  let cold_ms = timed (fun () -> ignore (ask ~cache:false cold_cache)) in
  let warm_plan_ms = timed (fun () -> ignore (ask plan_cache)) in
  let warm_result_ms = timed (fun () -> ignore (ask result_cache)) in
  (* Tail latency on the warm-plan tier, through the same log-scaled
     histogram geometry the live scrape endpoint serves: each request is
     timed individually and observed in microseconds, and the quantiles
     come from [Obs.Metrics.quantile] — so a regression here is exactly
     what a production p95 alert on nestql_server_request_us would see. *)
  let hist = "bench.server.request.us" in
  Obs.Metrics.enable ();
  let reqs = if suite = "smoke" then 64 else 256 in
  for _ = 1 to reqs do
    let ns, _ = Harness.time_once (fun () -> ask plan_cache) in
    Obs.Metrics.observe hist (int_of_float (ns /. 1e3))
  done;
  let p50_us = Obs.Metrics.quantile hist 0.50 in
  let p95_us = Obs.Metrics.quantile hist 0.95 in
  let p99_us = Obs.Metrics.quantile hist 0.99 in
  (* One instrumented cold execution attributes the request to its
     hottest operator, the same way a slow-query log line would. *)
  let hot =
    match
      Server.Cache.query cold_cache ~cache:false ~instrument:true strategy
        catalog q
    with
    | Error _ -> failwith "server bench: instrumented query failed"
    | Ok r -> (
      match r.Server.Cache.tree with
      | None -> None
      | Some tree -> (
        match Engine.Profile.top ~k:1 (Engine.Profile.of_node tree) with
        | row :: _ -> Some row
        | [] -> None))
  in
  let hot_op = match hot with Some r -> r.Engine.Profile.op | None -> "" in
  let hot_self_ms =
    match hot with
    | Some r -> Int64.to_float r.Engine.Profile.self_ns /. 1e6
    | None -> 0.
  in
  Harness.print_table
    ~title:
      (Printf.sprintf "server warm-plan latency distribution (%d requests)"
         reqs)
    ~header:[ "p50 us"; "p95 us"; "p99 us"; "hottest operator" ]
    [
      [ Printf.sprintf "%.0f" p50_us; Printf.sprintf "%.0f" p95_us;
        Printf.sprintf "%.0f" p99_us;
        Printf.sprintf "%s (%.3f self-ms)" hot_op hot_self_ms ];
    ];
  Harness.print_table
    ~title:
      (Printf.sprintf "server request latency, cache tiers (n=%d)" scale)
    ~header:[ "tier"; "ms"; "speedup" ]
    [
      [ "cold"; Harness.fms cold_ms; "1.0x" ];
      [ "warm plan"; Harness.fms warm_plan_ms;
        Harness.fratio (cold_ms /. warm_plan_ms) ];
      [ "warm result"; Harness.fms warm_result_ms;
        Harness.fratio (cold_ms /. warm_result_ms) ];
    ];
  Json.Obj
    [
      ("scale", Json.Int scale);
      ("cold_ms", Json.Float cold_ms);
      ("warm_plan_ms", Json.Float warm_plan_ms);
      ("warm_result_ms", Json.Float warm_result_ms);
      ("plan_speedup", Json.Float (cold_ms /. warm_plan_ms));
      ("result_speedup", Json.Float (cold_ms /. warm_result_ms));
      ("plan_hits", Json.Int (Server.Cache.plan_hits plan_cache));
      ("result_hits", Json.Int (Server.Cache.result_hits result_cache));
      ("latency_samples", Json.Int reqs);
      ("request_p50_us", Json.Float p50_us);
      ("request_p95_us", Json.Float p95_us);
      ("request_p99_us", Json.Float p99_us);
      ("hot_op", Json.String hot_op);
      ("hot_self_ms", Json.Float hot_self_ms);
    ]

let headline ~suite ~limit ~quota () =
  let open Bechamel in
  (* accumulate the obs registry across the whole suite so the artifact
     records rewrite/decorrelation/prune counters alongside the timings *)
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  let cases = headline_cases () in
  let tests =
    List.map
      (fun c -> Test.make ~name:c.name (Staged.stage c.run))
      cases
  in
  let rows = Harness.bechamel_table ~limit ~quota tests in
  Harness.print_table
    ~title:(Printf.sprintf "%s micro-benchmarks (OLS ns/run)" suite)
    ~header:[ "experiment"; "ns/run" ]
    (List.map (fun (name, ns) -> [ name; Printf.sprintf "%.0f" ns ]) rows);
  let ns_of name =
    match List.assoc_opt name rows with Some ns -> ns | None -> Float.nan
  in
  let experiments =
    List.map
      (fun case ->
        Json.Obj
          [
            ("name", Json.String case.name);
            ("ns_per_run", Json.Float (ns_of case.name));
            ("operators", operators_json case);
          ])
      cases
  in
  let parallel = parallel_case ~suite in
  let shred = shred_case ~suite in
  let bloom = bloom_case ~suite in
  let vector = vector_case ~suite in
  let server = server_case ~suite in
  Harness.write_json_artifact ~suite
    (Json.Obj
       [
         ("suite", Json.String suite);
         ("quota_s", Json.Float quota);
         ("jobs", Json.Int (Pipeline.default_jobs ()));
         ("experiments", Json.List experiments);
         ("parallel", parallel);
         ("shred", shred);
         ("bloom", bloom);
         ("vector", vector);
         ("server", server);
         ("metrics", Engine.Obs_json.metrics ());
       ])

let run_suite = function
  | "headline" -> headline ~suite:"headline" ~limit:300 ~quota:0.3 ()
  | "smoke" -> headline ~suite:"smoke" ~limit:50 ~quota:0.05 ()
  | _ -> assert false

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let known = List.map fst Experiments.all in
  match args with
  | [] ->
    run_suite "headline";
    List.iter (fun (_, f) -> f ()) Experiments.all
  | names ->
    List.iter
      (fun name ->
        match name with
        | "headline" | "smoke" -> run_suite name
        | "bloom" -> ignore (bloom_case ~suite:"headline")
        | "shred" -> ignore (shred_case ~suite:"headline")
        | "vector" -> ignore (vector_case ~suite:"headline")
        | "server" -> ignore (server_case ~suite:"headline")
        | _ -> (
          match List.assoc_opt name Experiments.all with
          | Some f -> f ()
          | None ->
            Printf.eprintf
              "unknown experiment %s (known: headline, smoke, %s)\n" name
              (String.concat ", " known);
            exit 1))
      names
