#!/usr/bin/env python3
"""Validate a Prometheus text-exposition page produced by `nestql`.

Usage: check_prom.py PAGE.txt [--require-family NAME]...
                     [--require-label FAMILY:KEY=VALUE]...
                     [--min-families N]

PAGE.txt holds the body of `GET /metrics` (or the output of
`nestql client metrics-prom`). Use `-` to read stdin.

Checks, in order:
  - every non-comment line parses as `name{labels} value`, with a
    metric name matching [a-zA-Z_:][a-zA-Z0-9_:]* and a float value;
  - every sample's family is declared by exactly one preceding
    `# TYPE family counter|gauge|histogram` line (TYPE-once-per-family);
  - sample names match their family (the name is the family, or for
    histograms family_bucket / family_sum / family_count);
  - histogram families carry _sum, _count and at least one _bucket per
    label set, buckets end with le="+Inf", cumulative counts are
    non-decreasing, and the +Inf bucket equals _count;
  - counter and gauge samples are never negative for counters;
  - each --require-family NAME is present (NAME is the full family,
    e.g. nestql_server_requests);
  - each --require-label FAMILY:KEY=VALUE names a sample of FAMILY
    carrying that label pair.

Exit 0 when the page is well-formed, 1 with a FAIL line otherwise.
Values vary per host; structure must not.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def parse_labels(text):
    """Label block text -> dict, or None when it does not re-serialize
    cleanly (catches malformed escapes and stray separators)."""
    if not text:
        return {}
    out = {}
    rest = text
    while rest:
        m = LABEL_RE.match(rest)
        if not m:
            return None
        out[m.group(1)] = m.group(2)
        rest = rest[m.end() :]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            return None
    return out


def family_of(name, types):
    """The declared family a sample name belongs to."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("page")
    ap.add_argument("--require-family", action="append", default=[])
    ap.add_argument("--require-label", action="append", default=[])
    ap.add_argument("--min-families", type=int, default=1)
    args = ap.parse_args()

    try:
        text = (
            sys.stdin.read() if args.page == "-" else open(args.page).read()
        )
    except OSError as e:
        return fail(f"{args.page}: {e}")

    types = {}  # family -> counter|gauge|histogram
    samples = []  # (family, name, labels-dict, value)
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
            ):
                return fail(f"line {lineno}: malformed TYPE line: {line!r}")
            family = parts[2]
            if not NAME_RE.match(family):
                return fail(f"line {lineno}: bad family name {family!r}")
            if family in types:
                return fail(f"line {lineno}: duplicate TYPE for {family}")
            types[family] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP or other comments
        m = SAMPLE_RE.match(line)
        if not m:
            return fail(f"line {lineno}: unparsable sample: {line!r}")
        labels = parse_labels(m.group("labels") or "")
        if labels is None:
            return fail(f"line {lineno}: malformed label block: {line!r}")
        try:
            value = float(m.group("value"))
        except ValueError:
            return fail(f"line {lineno}: non-float value: {line!r}")
        family = family_of(m.group("name"), types)
        if family is None:
            return fail(
                f"line {lineno}: sample {m.group('name')!r} has no "
                f"preceding TYPE declaration"
            )
        samples.append((family, m.group("name"), labels, value))

    if not samples:
        return fail("no samples")
    if len(types) < args.min_families:
        return fail(f"only {len(types)} families, need >= {args.min_families}")

    by_family = {}
    for family, name, labels, value in samples:
        by_family.setdefault(family, []).append((name, labels, value))

    for family, kind in types.items():
        rows = by_family.get(family, [])
        if not rows:
            return fail(f"family {family} declared but has no samples")
        if kind == "counter":
            for name, labels, value in rows:
                if value < 0:
                    return fail(f"counter {name} negative: {value}")
        if kind == "histogram":
            # Group by the label set minus le.
            series = {}
            for name, labels, value in rows:
                key = tuple(
                    sorted((k, v) for k, v in labels.items() if k != "le")
                )
                series.setdefault(key, {})[
                    (name[len(family) :], labels.get("le"))
                ] = value
            for key, parts in series.items():
                buckets = [
                    (le, v) for (suf, le), v in parts.items() if suf == "_bucket"
                ]
                if not buckets:
                    return fail(f"histogram {family}{dict(key)}: no buckets")
                if ("_sum", None) not in parts or ("_count", None) not in parts:
                    return fail(f"histogram {family}{dict(key)}: missing _sum/_count")
                if all(le != "+Inf" for le, _ in buckets):
                    return fail(f"histogram {family}{dict(key)}: no +Inf bucket")

                def edge(le):
                    return float("inf") if le == "+Inf" else float(le)

                buckets.sort(key=lambda b: edge(b[0]))
                prev = -1.0
                for le, v in buckets:
                    if v < prev:
                        return fail(
                            f"histogram {family}{dict(key)}: bucket le={le} "
                            f"not cumulative ({v} < {prev})"
                        )
                    prev = v
                if buckets[-1][1] != parts[("_count", None)]:
                    return fail(
                        f"histogram {family}{dict(key)}: +Inf bucket "
                        f"{buckets[-1][1]} != _count {parts[('_count', None)]}"
                    )

    for family in args.require_family:
        if family not in types:
            return fail(
                f"required family {family!r} absent "
                f"(have {sorted(types)[:10]}...)"
            )
    for spec in args.require_label:
        try:
            family, pair = spec.split(":", 1)
            key, value = pair.split("=", 1)
        except ValueError:
            return fail(f"bad --require-label spec {spec!r}")
        rows = by_family.get(family, [])
        if not any(labels.get(key) == value for _, labels, _ in rows):
            return fail(
                f"family {family}: no sample with label {key}={value!r}"
            )

    kinds = {}
    for kind in types.values():
        kinds[kind] = kinds.get(kind, 0) + 1
    print(
        f"ok: {len(samples)} samples across {len(types)} families "
        f"({', '.join(f'{n} {k}' for k, n in sorted(kinds.items()))})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
