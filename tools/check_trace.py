#!/usr/bin/env python3
"""Validate a Chrome trace-event file produced by `nestql run --trace`.

Usage: check_trace.py TRACE.json [--min-domains N] [--require-phase NAME]...
                      [--min-requests N]

Checks, in order:
  - the document parses and has the {"traceEvents": [...]} shape;
  - every event carries name/cat/ph/ts/pid/tid with sane types;
  - every complete event (ph == "X") carries a non-negative dur;
  - phase spans exist, and each --require-phase NAME is present;
  - at least one operator span exists;
  - with --min-requests N, at least N request spans (cat == "request",
    emitted by `nestql serve`) exist, each naming its op in args;
  - spans cover >= --min-domains distinct tids (counting all categories;
    under --jobs N the morsel spans are what spread across domains).

Exit 0 when the trace is well-formed, 1 with a FAIL line otherwise.
The checker is schema-only by design: timings vary per host, structure
must not.
"""

import argparse
import json
import sys

REQUIRED_KEYS = {"name", "cat", "ph", "ts", "pid", "tid"}


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-domains", type=int, default=1)
    ap.add_argument("--require-phase", action="append", default=[])
    ap.add_argument("--min-requests", type=int, default=0)
    args = ap.parse_args()

    try:
        doc = json.load(open(args.trace))
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{args.trace}: not readable JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("traceEvents missing, not a list, or empty")

    cats = {}
    tids = set()
    phases = set()
    operators = set()
    requests = []
    for i, e in enumerate(events):
        missing = REQUIRED_KEYS - set(e)
        if missing:
            return fail(f"event {i} missing keys {sorted(missing)}: {e}")
        if not isinstance(e["ts"], (int, float)):
            return fail(f"event {i}: non-numeric ts {e['ts']!r}")
        if e["ph"] == "X":
            if not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0:
                return fail(f"event {i}: X event without sane dur: {e}")
        cats[e["cat"]] = cats.get(e["cat"], 0) + 1
        if e["ph"] != "M":
            tids.add(e["tid"])
        if e["cat"] == "phase":
            phases.add(e["name"])
        if e["cat"] == "operator":
            operators.add(e["name"])
        if e["cat"] == "request":
            args_op = (e.get("args") or {}).get("op")
            if args_op != e["name"]:
                return fail(
                    f"request span {i} args.op {args_op!r} != name {e['name']!r}"
                )
            requests.append(e["name"])

    if not phases:
        return fail("no phase spans")
    for name in args.require_phase:
        if name not in phases:
            return fail(f"required phase {name!r} absent (have {sorted(phases)})")
    if not operators:
        return fail("no operator spans")
    if len(requests) < args.min_requests:
        return fail(
            f"only {len(requests)} request span(s), need >= {args.min_requests}"
        )
    if len(tids) < args.min_domains:
        return fail(
            f"only {len(tids)} distinct domain tid(s), need >= {args.min_domains}"
        )

    print(
        f"ok: {len(events)} events, cats {dict(sorted(cats.items()))}, "
        f"{len(tids)} domain(s), phases {sorted(phases)}, "
        f"operators {sorted(operators)}"
        + (f", {len(requests)} request span(s)" if requests else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
