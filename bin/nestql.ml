(* nestql — CLI for the nested-query optimizer.

   Subcommands:
     run      execute a query against a built-in generated catalog
     explain  show logical + physical plans under a strategy
     check    type-check + lint a query (or a file / random corpus)
     table2   print the predicate classification table (paper Table 2)
     catalog  print a generated catalog
     demo     run the paper's flagship queries end to end *)

(* Register the phase verifier: every compile can then check each optimizer
   phase (on by default under dune / NESTQL_VERIFY, forced by --verify). *)
let () = Analysis.Verify.install ()

(* Register the step certifier, the property annotator and the proven-key
   cost oracle: every compile can then certify each recorded rewrite step
   (on by default under dune / NESTQL_VERIFY / NESTQL_CERTIFY, forced by
   --certify), EXPLAIN ANALYZE trees carry proven bounds=/keys= annotations
   cross-checked against actual row counts, and the cost model consults
   proven keys where statistics fall short. *)
let () = Analysis.Certify.install ()

let strategies = Core.Pipeline.all_strategies

let strategy_conv =
  let parse s =
    match
      List.find_opt
        (fun st -> String.equal (Core.Pipeline.strategy_name st) s)
        strategies
    with
    | Some st -> Ok st
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown strategy %s (try: %s)" s
             (String.concat ", "
                (List.map Core.Pipeline.strategy_name strategies))))
  in
  let print ppf st = Fmt.string ppf (Core.Pipeline.strategy_name st) in
  Cmdliner.Arg.conv (parse, print)

(* The built-in generated catalogs live in Server.Session so the serve
   [catalog] op and the one-shot CLI stay in lockstep. *)
let catalog_of_name name seed scale =
  Server.Session.catalog_of_name ~name ~seed ~scale

open Cmdliner

let catalog_arg =
  Arg.(
    value & opt string "xy"
    & info [ "c"; "catalog" ] ~docv:"NAME"
        ~doc:"Built-in catalog: xy, xyz, company or table1.")

let file_arg =
  Arg.(
    value & opt (some file) None
    & info [ "f"; "file" ] ~docv:"FILE"
        ~doc:
          "Load the catalog from a definition file (see examples/movies.nql) \
           instead of generating one.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")

let scale_arg =
  Arg.(
    value & opt int 100
    & info [ "n"; "scale" ] ~docv:"N" ~doc:"Table cardinality.")

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv Core.Pipeline.Decorrelated
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Execution strategy: interp, naive, decorrelated, \
           decorrelated-outerjoin, kim, ganski-wong, muralikrishna or \
           shred.")

let query_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print work counters.")

let explain_analyze_arg =
  Arg.(
    value & flag
    & info [ "explain-analyze" ]
        ~doc:
          "Execute under per-operator instrumentation and print an EXPLAIN \
           ANALYZE tree (estimated vs. actual rows, loops, work counters, \
           wall-clock) instead of the result value.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "With $(b,--explain-analyze), emit the annotated plan as JSON \
           (one per-operator object with rows_out, est_rows, time_ns, \
           counters and children).")

let no_timing_arg =
  Arg.(
    value & flag
    & info [ "no-timing" ]
        ~doc:
          "With $(b,--explain-analyze), omit wall-clock fields so the \
           output is deterministic (for tests and diffing).")

let no_bloom_arg =
  Arg.(
    value & flag
    & info [ "no-bloom" ]
        ~doc:
          "Disable Bloom-filter sideways information passing in the \
           hash-join family. Results are identical either way; only the \
           bloom_checks/bloom_prunes counters differ (for the differential \
           tests and the benches).")

let jobs_arg =
  Arg.(
    value & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Execute with $(docv) domains (partition-parallel scans, filters \
           and hash joins). Results are identical to serial execution. \
           Defaults to $(b,NESTQL_JOBS) when set, else 1.")

let no_vector_arg =
  Arg.(
    value & flag
    & info [ "no-vector" ]
        ~doc:
          "Disable the columnar batch engine and run every operator on the \
           row-at-a-time engine. Results, row order and all work counters \
           are identical either way (the differential tests enforce it); \
           only wall-clock changes. Also disabled by $(b,NESTQL_VECTOR=0).")

let batch_arg =
  Arg.(
    value & opt (some int) None
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Columnar batch width in rows for the vector engine. Defaults to \
           $(b,NESTQL_BATCH) when it parses as a positive integer, else \
           1024.")

let misest_floor_arg =
  Arg.(
    value & opt (some float) None
    & info [ "misest-floor" ] ~docv:"F"
        ~doc:
          "Noise floor for the misestimation report: operators within \
           $(docv)× of their estimate are summarized in one line instead \
           of listed. Defaults to 1.5; must be at least 1.0 (divergence \
           factors are never smaller).")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Check every optimizer phase (translation, each decorrelation / \
           rewrite / reorder round, physical planning) against the plan \
           verifier's structural invariants; a violation aborts with the \
           phase, rule and offending subplan. Also enabled by \
           $(b,NESTQL_VERIFY).")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Record every rewrite the optimizer applies as a (rule, before, \
           after) step and discharge each rule's proof obligation \
           (translation validation), plus whole-phase type / free-variable \
           / cardinality-bound preservation and the property-backed §6 \
           build-side check on the physical plan; a violation aborts with \
           the phase, rule and step index. Also enabled by \
           $(b,NESTQL_CERTIFY) (and by default wherever the verifier \
           defaults on).")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ]
        ~doc:"Trace the optimizer (naive plan and each rewrite round).")

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  if verbose then Logs.set_level (Some Logs.Debug)
  else Logs.set_level (Some Logs.Warning)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  contents

(* A query file is the query text with ---comment lines stripped. *)
let load_query_file path =
  read_file path |> String.split_on_char '\n'
  |> List.filter (fun line ->
         let line = String.trim line in
         not (String.length line >= 2 && String.sub line 0 2 = "--"))
  |> String.concat "\n" |> String.trim

let with_catalog ?file name seed scale f =
  let loaded =
    match file with
    | Some path -> Lang.Schema.catalog (read_file path)
    | None -> catalog_of_name name seed scale
  in
  match loaded with
  | Error msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Ok catalog -> f catalog

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON timeline of the run to $(docv) \
           (open it in chrome://tracing or ui.perfetto.dev): one span per \
           pipeline phase, per physical operator, and per morsel — the \
           morsel spans are tagged with the executing domain id, making \
           worker utilization and partition skew visible. Also enables the \
           metrics registry.")

let misest_arg =
  Arg.(
    value & flag
    & info [ "misest" ]
        ~doc:
          "After execution, print the misestimation report: operators \
           ranked by est-vs-actual cardinality divergence, with the \
           responsible catalog statistic (or fallback constant) named. \
           Included automatically in $(b,--explain-analyze) output.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Execute under per-operator instrumentation and print the \
           self-time profile: exclusive wall-clock per physical operator \
           (inclusive time minus the children's), hottest first, with \
           rows/self-ms and vectorized / bloom / partition annotations, \
           followed by an inclusive flame view of the plan tree. With \
           $(b,--explain-analyze) the profile is embedded in the analysis \
           output; with $(b,--json) it is emitted as a JSON document. \
           Timing-class output — suppressed by $(b,--no-timing).")

let slow_ms_arg =
  Arg.(
    value & opt (some int) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Slow-query log threshold: when execution takes at least $(docv) \
           milliseconds, append one structured \"slow.query\" line to the \
           query log ($(b,NESTQL_QUERY_LOG)) carrying the plan digest, the \
           top self-time operators and the worst misestimates. 0 logs \
           every query.")

let run_cmd =
  let run name file seed scale strategy show_stats explain_analyze json
      no_timing jobs no_bloom no_vector batch misest_floor verify certify
      verbose trace misest profile slow_ms query =
    setup_logs verbose;
    let verify = if verify then Some true else None in
    let certify = if certify then Some true else None in
    match (jobs, batch, misest_floor) with
    | Some n, _, _ when n < 1 ->
      Fmt.epr "nestql: --jobs expects a positive domain count, got %d@." n;
      1
    | _, Some b, _ when b < 1 ->
      Fmt.epr "nestql: --batch expects a positive row count, got %d@." b;
      1
    | _, _, Some f when f < 1.0 ->
      Fmt.epr "nestql: --misest-floor expects a factor >= 1.0, got %g@." f;
      1
    | _ ->
      (* --no-vector forces the row engine; otherwise leave the choice to
         the library default (NESTQL_VECTOR). *)
      let vector = if no_vector then Some false else None in
      with_catalog ?file name seed scale (fun catalog ->
          let query =
            if Sys.file_exists query then load_query_file query else query
          in
          let bloom = not no_bloom in
          let with_trace f =
            match trace with
            | None -> f ()
            | Some path ->
              (* Metrics ride along with tracing: one flag buys the full
                 observability picture (spans + rule firings + prune
                 rates + skew histograms). *)
              Obs.Metrics.enable ();
              Obs.Trace.start ~path;
              Fun.protect ~finally:Obs.Trace.stop f
          in
          with_trace (fun () ->
              match
                Core.Pipeline.compile_string ?verify ?certify strategy catalog
                  query
              with
              | Error msg ->
                Fmt.epr "error: %s@." msg;
                1
              | Ok compiled -> (
                (* Tracing, the misest report and the query log all need
                   the instrumented executor (operator spans, actual row
                   counts); the result value is identical either way. *)
                let instrument =
                  explain_analyze || misest || profile
                  || ((trace <> None || slow_ms <> None
                      || Obs.Qlog.enabled ())
                     && compiled.Core.Pipeline.physical <> None)
                in
                let stats = Engine.Stats.create () in
                let t0 = Monotonic_clock.now () in
                let outcome =
                  if instrument then
                    Result.map
                      (fun (v, tree) -> (v, Some tree))
                      (Core.Pipeline.analyze ?jobs ~bloom ?vector ?batch
                         catalog compiled)
                  else
                    match
                      Core.Pipeline.execute ~stats ?jobs ~bloom ?vector
                        ?batch catalog compiled
                    with
                    | v -> Ok (v, None)
                    | exception Cobj.Value.Type_error msg ->
                      Error ("runtime error: " ^ msg)
                    | exception Lang.Interp.Undefined msg ->
                      Error ("undefined: " ^ msg)
                in
                let ms =
                  Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0)
                  /. 1e6
                in
                match outcome with
                | Error msg ->
                  Fmt.epr "error: %s@." msg;
                  1
                | Ok (v, tree) ->
                  (match tree with
                  | Some t -> Engine.Stats.sum_into stats t
                  | None -> ());
                  let entries =
                    match (tree, compiled.Core.Pipeline.physical) with
                    | Some t, Some pq -> Core.Misest.of_query catalog pq t
                    | _ -> []
                  in
                  (match tree with
                  | Some t when explain_analyze ->
                    let rendered =
                      Core.Pipeline.render_analysis ~json
                        ~timing:(not no_timing) ~profile ?misest_floor
                        ~catalog compiled t
                    in
                    if json then print_endline rendered
                    else print_string rendered
                  | Some t when profile ->
                    if json then
                      print_endline
                        (Engine.Json.to_string
                           (Engine.Profile.to_json
                              (Engine.Profile.of_node t)))
                    else begin
                      Fmt.pr "%a@." Cobj.Value.pp v;
                      if show_stats then
                        Fmt.pr "-- %a@." Engine.Stats.pp stats;
                      if not no_timing then begin
                        Fmt.pr "%a@." Engine.Profile.pp
                          (Engine.Profile.of_node t);
                        Fmt.pr "flame:@.%a" Engine.Profile.pp_flame t
                      end
                    end
                  | _ ->
                    Fmt.pr "%a@." Cobj.Value.pp v;
                    if show_stats then
                      Fmt.pr "-- %a@." Engine.Stats.pp stats);
                  if misest && not explain_analyze then
                    Fmt.pr "%a@."
                      (Core.Misest.pp ?floor:misest_floor)
                      entries;
                  Obs.Qlog.emit
                    ([
                       ("event", Obs.Trace.Str "query");
                       ( "strategy",
                         Obs.Trace.Str
                           (Core.Pipeline.strategy_name
                              compiled.Core.Pipeline.strategy) );
                       ( "jobs",
                         Obs.Trace.Int
                           (match jobs with
                           | Some j -> j
                           | None -> Core.Pipeline.default_jobs ()) );
                       ("bloom", Obs.Trace.Bool bloom);
                       ( "rows",
                         Obs.Trace.Int
                           (match v with
                           | Cobj.Value.Set l | Cobj.Value.List l ->
                             List.length l
                           | _ -> 1) );
                       ("ms", Obs.Trace.Num ms);
                       ( "bloom_prunes",
                         Obs.Trace.Int stats.Engine.Stats.bloom_prunes );
                       ( "max_misest",
                         Obs.Trace.Num (Core.Misest.max_factor entries) );
                     ]
                    @
                    match trace with
                    | Some path -> [ ("trace", Obs.Trace.Str path) ]
                    | None -> []);
                  (* Slow-query log: one structured line per offending
                     query, greppable by plan digest. Mirrors the serve
                     daemon's slow.query schema minus the cache fields. *)
                  (match slow_ms with
                  | Some threshold_ms when ms >= float_of_int threshold_ms
                    ->
                    let hot =
                      match tree with
                      | None -> ""
                      | Some t ->
                        String.concat ","
                          (List.map
                             (fun (r : Engine.Profile.row) ->
                               Printf.sprintf "%s=%.3fms" r.Engine.Profile.op
                                 (Int64.to_float r.Engine.Profile.self_ns
                                 /. 1e6))
                             (Engine.Profile.top ~k:5
                                (Engine.Profile.of_node t)))
                    in
                    let misest_s =
                      String.concat ";"
                        (List.filteri (fun i _ -> i < 3) entries
                        |> List.map (fun (e : Core.Misest.entry) ->
                               Printf.sprintf "%.1fx-%s %s"
                                 e.Core.Misest.factor
                                 (if e.Core.Misest.under then "under"
                                  else "over")
                                 e.Core.Misest.op))
                    in
                    Obs.Qlog.emit
                      [
                        ("event", Obs.Trace.Str "slow.query");
                        ( "strategy",
                          Obs.Trace.Str
                            (Core.Pipeline.strategy_name
                               compiled.Core.Pipeline.strategy) );
                        ( "jobs",
                          Obs.Trace.Int
                            (match jobs with
                            | Some j -> j
                            | None -> Core.Pipeline.default_jobs ()) );
                        ( "rows",
                          Obs.Trace.Int
                            (match v with
                            | Cobj.Value.Set l | Cobj.Value.List l ->
                              List.length l
                            | _ -> 1) );
                        ("ms", Obs.Trace.Num ms);
                        ("threshold_ms", Obs.Trace.Int threshold_ms);
                        ( "plan_digest",
                          Obs.Trace.Str
                            (Core.Pipeline.plan_digest
                               compiled.Core.Pipeline.strategy catalog
                               compiled.Core.Pipeline.source) );
                        ("hot", Obs.Trace.Str hot);
                        ("misest", Obs.Trace.Str misest_s);
                      ]
                  | _ -> ());
                  0)))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute a query (or a query file from examples/queries) against a \
          generated catalog.")
    Term.(
      const run $ catalog_arg $ file_arg $ seed_arg $ scale_arg $ strategy_arg
      $ stats_arg $ explain_analyze_arg $ json_arg $ no_timing_arg $ jobs_arg
      $ no_bloom_arg $ no_vector_arg $ batch_arg $ misest_floor_arg
      $ verify_arg $ certify_arg $ verbose_arg $ trace_arg $ misest_arg
      $ profile_arg $ slow_ms_arg $ query_arg)

let explain_cmd =
  let explain name file seed scale strategy verbose query =
    setup_logs verbose;
    with_catalog ?file name seed scale (fun catalog ->
        match Lang.Parser.expr_result query with
        | Error msg ->
          Fmt.epr "error: %s@." msg;
          1
        | Ok expr -> (
          match Core.Pipeline.compile strategy catalog expr with
          | Error msg ->
            Fmt.epr "error: %s@." msg;
            1
          | Ok compiled ->
            print_string (Core.Pipeline.explain ~costs:true catalog compiled);
            (match Analysis.Lint.query catalog expr with
            | Ok (_t, (_ :: _ as diags)) ->
              Fmt.pr "@.lint:@.%s@." (Analysis.Lint.render diags)
            | Ok (_, []) | Error _ -> ());
            0))
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the logical and physical plans.")
    Term.(
      const explain $ catalog_arg $ file_arg $ seed_arg $ scale_arg
      $ strategy_arg $ verbose_arg $ query_arg)

let check_cmd =
  let check name file seed scale strict verify certify diff jobs gen json
      strategy_names query =
    (* The strategy filter takes plain names so a typo is a clean usage
       error (exit 2 with the valid names), not a cmdliner parse abort. *)
    let lookup s =
      List.find_opt
        (fun st -> String.equal (Core.Pipeline.strategy_name st) s)
        Core.Pipeline.all_strategies
    in
    match List.filter (fun s -> lookup s = None) strategy_names with
    | _ :: _ as unknown ->
      Fmt.epr "nestql: unknown strateg%s %s (try: %s)@."
        (if List.length unknown > 1 then "ies" else "y")
        (String.concat ", " unknown)
        (String.concat ", "
           (List.map Core.Pipeline.strategy_name Core.Pipeline.all_strategies));
      2
    | [] ->
      let chosen =
        match strategy_names with
        | [] -> Core.Pipeline.all_strategies
        | names -> List.filter_map lookup names
      in
      with_catalog ?file name seed scale (fun catalog ->
          let sources =
            match (gen, query) with
            | Some n, _ -> Ok (Workload.Gen.queries ~count:n ~seed ())
            | None, Some q when Sys.file_exists q -> Ok [ load_query_file q ]
            | None, Some q -> Ok [ q ]
            | None, None ->
              Error "check expects a query (or a query file, or --gen N)"
          in
          match sources with
          | Error msg ->
            Fmt.epr "error: %s@." msg;
            1
          | Ok sources ->
            let many = List.length sources > 1 in
            let status = ref 0 in
            let fail code msg =
              Fmt.epr "error: %s@." msg;
              status := max !status code
            in
            let nwarnings = ref 0 in
            let nshredded = ref 0 and nfallbacks = ref 0 in
            let verify_opt = if verify then Some true else None in
            let certify_opt = if certify then Some true else None in
            (* Compile a query under every chosen strategy with the
               requested verification/certification, collecting per-strategy
               outcomes (shared by the text and JSON paths). *)
            let compile_strategies src =
              List.map
                (fun strategy ->
                  ( Core.Pipeline.strategy_name strategy,
                    Result.map
                      (fun _ -> ())
                      (Core.Pipeline.compile_string ?verify:verify_opt
                         ?certify:certify_opt strategy catalog src) ))
                chosen
            in
            (* --diff: the cross-backend differential oracle — the
               reference interpreter, the nest-join backend and the
               shredding backend must agree value-for-value. *)
            let differential src =
              match Core.Pipeline.run Core.Pipeline.Interp catalog src with
              | Error msg -> fail 1 (Printf.sprintf "interp: %s" msg)
              | Ok reference ->
                List.iter
                  (fun strategy ->
                    match
                      Core.Pipeline.compile_string strategy catalog src
                    with
                    | Error msg ->
                      fail 1
                        (Printf.sprintf "strategy %s: %s"
                           (Core.Pipeline.strategy_name strategy)
                           msg)
                    | Ok compiled ->
                      (if strategy = Core.Pipeline.Shredded then
                         if compiled.Core.Pipeline.shredded <> None then
                           incr nshredded
                         else incr nfallbacks);
                      let v =
                        Core.Pipeline.execute ?jobs catalog compiled
                      in
                      if not (Cobj.Value.equal reference v) then
                        fail 1
                          (Printf.sprintf
                             "strategy %s disagrees with interp on %s"
                             (Core.Pipeline.strategy_name strategy)
                             src))
                  [ Core.Pipeline.Decorrelated; Core.Pipeline.Shredded ]
            in
            let strict_gate () =
              if strict && !nwarnings > 0 then begin
                Fmt.epr
                  "strict: %d grouping-required correlated predicate(s) — \
                   COUNT-bug risk under flattening baselines@."
                  !nwarnings;
                status := max !status 2
              end
            in
            if json then begin
              let module J = Engine.Json in
              let clause_name = function
                | Analysis.Lint.Where -> "where"
                | Analysis.Lint.Select_clause -> "select"
              in
              (* Inferred properties per subquery: the naive translation
                 keeps one Apply node per subquery (the binders the lint
                 diagnostics name), so each subquery plan gets its own
                 property summary. *)
              let subquery_props src =
                match
                  Core.Pipeline.compile_string ~verify:false ~certify:false
                    Core.Pipeline.Naive catalog src
                with
                | Ok { Core.Pipeline.logical = Some q; _ } ->
                  List.rev
                    (Algebra.Plan.fold
                       (fun acc p ->
                         match p with
                         | Algebra.Plan.Apply { var; subquery; _ } ->
                           ( var,
                             Analysis.Props.of_plan catalog
                               subquery.Algebra.Plan.plan )
                           :: acc
                         | _ -> acc)
                       [] q.Algebra.Plan.plan)
                | Ok _ | Error _ -> []
              in
              let plan_props src =
                match
                  Core.Pipeline.compile_string ~verify:false ~certify:false
                    Core.Pipeline.Decorrelated catalog src
                with
                | Ok { Core.Pipeline.logical = Some q; _ } ->
                  Some (Analysis.Props.of_plan catalog q.Algebra.Plan.plan)
                | Ok _ | Error _ -> None
              in
              let query_json src =
                let strat =
                  if verify || certify then compile_strategies src else []
                in
                List.iter
                  (fun (sname, r) ->
                    match r with
                    | Ok () -> ()
                    | Error msg ->
                      fail 1 (Printf.sprintf "strategy %s: %s" sname msg))
                  strat;
                if diff then differential src;
                match Analysis.Lint.query_string catalog src with
                | Error msg ->
                  status := max !status 1;
                  J.Obj [ ("query", J.String src); ("error", J.String msg) ]
                | Ok (t, diags) ->
                  nwarnings :=
                    !nwarnings + List.length (Analysis.Lint.warnings diags);
                  let sprops = subquery_props src in
                  let diag_json (d : Analysis.Lint.diagnostic) =
                    J.Obj
                      ([
                         ("subquery", J.String d.z);
                         ("clause", J.String (clause_name d.clause));
                         ("correlated", J.Bool d.correlated);
                         ( "verdict",
                           J.String (Analysis.Lint.kind_name d.kind) );
                         ("kim_risk", J.Bool d.kim_risk);
                         ( "tables",
                           J.List
                             (List.map
                                (fun (n, v) -> J.String (n ^ " " ^ v))
                                d.tables) );
                       ]
                      @
                      match List.assoc_opt d.z sprops with
                      | Some p -> [ ("props", Analysis.Props.to_json p) ]
                      | None -> [])
                  in
                  J.Obj
                    ([
                       ("query", J.String src);
                       ("type", J.String (Fmt.str "%a" Cobj.Ctype.pp t));
                       ("subqueries", J.List (List.map diag_json diags));
                     ]
                    @ (match plan_props src with
                      | Some p ->
                        [ ("plan_props", Analysis.Props.to_json p) ]
                      | None -> [])
                    @
                    if strat = [] then []
                    else
                      [
                        ( "strategies",
                          J.List
                            (List.map
                               (fun (sname, r) ->
                                 J.Obj
                                   [
                                     ("strategy", J.String sname);
                                     ("ok", J.Bool (Result.is_ok r));
                                     ( "error",
                                       match r with
                                       | Ok () -> J.Null
                                       | Error e -> J.String e );
                                   ])
                               strat) );
                      ])
              in
              let queries = List.map query_json sources in
              strict_gate ();
              let doc =
                J.Obj
                  [
                    ("catalog", J.String name);
                    ("seed", J.Int seed);
                    ("scale", J.Int scale);
                    ("gen", match gen with Some n -> J.Int n | None -> J.Null);
                    ("verify", J.Bool verify);
                    ("certify", J.Bool certify);
                    ("diff", J.Bool diff);
                    ("strict", J.Bool strict);
                    ( "strategies",
                      J.List
                        (List.map
                           (fun st ->
                             J.String (Core.Pipeline.strategy_name st))
                           chosen) );
                    ("queries", J.List queries);
                    ( "summary",
                      J.Obj
                        [
                          ("queries", J.Int (List.length sources));
                          ("warnings", J.Int !nwarnings);
                          ( "shredded",
                            if diff then J.Int !nshredded else J.Null );
                          ( "fallbacks",
                            if diff then J.Int !nfallbacks else J.Null );
                          ("status", J.Int !status);
                        ] );
                  ]
              in
              print_endline (J.to_pretty_string doc);
              !status
            end
            else begin
              (* With --gen, lead with the corpus parameters so any failure
                 in a CI log is reproducible from the output alone. *)
              (match gen with
              | Some n -> Fmt.pr "-- corpus: %d queries, seed %d@." n seed
              | None -> ());
              List.iter
                (fun src ->
                  if many then Fmt.pr "-- %s@." src;
                  match Analysis.Lint.query_string catalog src with
                  | Error msg -> fail 1 msg
                  | Ok (t, diags) ->
                    Fmt.pr "type: %a@." Cobj.Ctype.pp t;
                    (match diags with
                    | [] -> ()
                    | _ :: _ -> Fmt.pr "%s@." (Analysis.Lint.render diags));
                    nwarnings :=
                      !nwarnings + List.length (Analysis.Lint.warnings diags);
                    if verify || certify then
                      List.iter
                        (fun (sname, r) ->
                          match r with
                          | Ok () -> ()
                          | Error msg ->
                            fail 1
                              (Printf.sprintf "strategy %s: %s" sname msg))
                        (compile_strategies src);
                    if diff then differential src;
                    if many then Fmt.pr "@.")
                sources;
              if verify && !status = 0 then
                Fmt.pr "phases verified: %d quer%s under %d strategies@."
                  (List.length sources)
                  (if many then "ies" else "y")
                  (List.length chosen);
              if certify && !status = 0 then
                Fmt.pr "rewrites certified: %d quer%s under %d strategies@."
                  (List.length sources)
                  (if many then "ies" else "y")
                  (List.length chosen);
              if diff && !status = 0 then
                Fmt.pr
                  "differential: %d quer%s agree under interp, decorrelated, \
                   shred (%d shredded, %d nest-join fallbacks)@."
                  (List.length sources)
                  (if many then "ies" else "y")
                  !nshredded !nfallbacks;
              strict_gate ();
              !status
            end)
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit with status 2 when any correlated grouping-required \
             predicate is found (COUNT-bug risk under Kim-style \
             flattening).")
  in
  let gen_arg =
    Arg.(
      value & opt (some int) None
      & info [ "gen" ] ~docv:"N"
          ~doc:
            "Instead of a query argument, lint a deterministic corpus of \
             $(docv) random nested queries over the xy schema (vary it \
             with --seed).")
  in
  let query_opt_arg =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"A query, or a path to a query file.")
  in
  let diff_arg =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Differentially execute every query under the reference \
             interpreter, the nest-join backend and the shredding backend \
             (honouring $(b,--jobs)) and fail unless all three agree \
             value-for-value. Reports how many queries genuinely shredded \
             vs. fell back to nest joins.")
  in
  let strategy_filter_arg =
    Arg.(
      value & opt_all string []
      & info [ "s"; "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "With $(b,--verify) or $(b,--certify), restrict phase \
             verification/certification to the named strategies \
             (repeatable). Unknown names are a usage error (exit 2).")
  in
  let check_json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit a machine-readable report instead of text: per query the \
             type, the per-subquery classification verdicts with inferred \
             plan properties (proven keys, null-free/non-empty paths, \
             cardinality bounds), and — with $(b,--verify)/$(b,--certify) \
             — the per-strategy verifier/certifier outcomes; plus the \
             corpus parameters (gen, seed, catalog, scale) and a summary. \
             The exit status is unchanged.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Type-check and lint a query: classify every subquery predicate \
          (semijoin-rewritable / antijoin-rewritable / grouping-required, \
          Theorem 1) and flag COUNT-bug risks; with --verify, additionally \
          compile it under every strategy with phase verification; with \
          --certify, certify every recorded rewrite step (translation \
          validation); with --diff, cross-check the nest-join and shredding \
          backends against the interpreter; with --json, emit the whole \
          report machine-readably.")
    Term.(
      const check $ catalog_arg $ file_arg $ seed_arg $ scale_arg $ strict_arg
      $ verify_arg $ certify_arg $ diff_arg $ jobs_arg $ gen_arg
      $ check_json_arg $ strategy_filter_arg $ query_opt_arg)

let stats_cmd =
  let show name file seed scale =
    with_catalog ?file name seed scale (fun catalog ->
        Fmt.pr "%a" Cobj.Stats.pp (Cobj.Stats.scan catalog);
        0)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print one-pass catalog statistics (row counts, per-attribute \
          distinct values, null and empty-set fractions, average set \
          cardinality) — the numbers the cost model plans with.")
    Term.(const show $ catalog_arg $ file_arg $ seed_arg $ scale_arg)

let table2_cmd =
  let table2 () =
    Fmt.pr "%-26s %-42s %-10s %s@." "name" "P(x, z)" "verdict" "rewritten";
    Fmt.pr "%s@." (String.make 110 '-');
    List.iter
      (fun row ->
        let p = Core.Table2.predicate row in
        let verdict = Core.Classify.classify ~z:"z" p in
        let rewritten =
          match Core.Classify.to_expr ~z:"z" verdict with
          | Some e -> Lang.Pretty.to_math_string e
          | None -> "(grouping required → nest join)"
        in
        Fmt.pr "%-26s %-42s %-10s %s@." row.Core.Table2.name
          row.Core.Table2.source
          (Core.Table2.expected_to_string (Core.Table2.kind verdict))
          rewritten)
      Core.Table2.rows;
    0
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Print the predicate classification (Table 2).")
    Term.(const table2 $ const ())

let catalog_cmd =
  let show name file seed scale dump =
    with_catalog ?file name seed scale (fun catalog ->
        if dump then print_string (Lang.Schema.render catalog)
        else Fmt.pr "%a@." Cobj.Catalog.pp catalog;
        0)
  in
  let dump_arg =
    Arg.(
      value & flag
      & info [ "dump" ]
          ~doc:
            "Emit the catalog in the definition language (reloadable with \
             --file) instead of the pretty grid.")
  in
  Cmd.v
    (Cmd.info "catalog" ~doc:"Print (or dump) a catalog.")
    Term.(const show $ catalog_arg $ file_arg $ seed_arg $ scale_arg $ dump_arg)

let repl_cmd =
  let repl name file seed scale strategy =
    setup_logs false;
    with_catalog ?file name seed scale (fun catalog ->
        let strategy = ref strategy in
        let explain = ref false in
        Fmt.pr
          "nestql repl — tables: %s@.commands: .tables  .strategy NAME             .explain on|off  .quit@."
          (String.concat ", " (Cobj.Catalog.names catalog));
        let rec loop () =
          Fmt.pr "> %!";
          match In_channel.input_line stdin with
          | None -> 0
          | Some line -> (
            let line = String.trim line in
            match String.split_on_char ' ' line with
            | [ "" ] -> loop ()
            | [ ".quit" ] | [ ".exit" ] -> 0
            | [ ".tables" ] ->
              List.iter
                (fun t ->
                  Fmt.pr "%-12s %5d rows : %a@." (Cobj.Table.name t)
                    (Cobj.Table.cardinality t) Cobj.Ctype.pp (Cobj.Table.elt t))
                (Cobj.Catalog.tables catalog);
              loop ()
            | [ ".explain"; "on" ] ->
              explain := true;
              loop ()
            | [ ".explain"; "off" ] ->
              explain := false;
              loop ()
            | [ ".strategy"; s ] -> (
              match
                List.find_opt
                  (fun st -> Core.Pipeline.strategy_name st = s)
                  strategies
              with
              | Some st ->
                strategy := st;
                loop ()
              | None ->
                Fmt.pr "unknown strategy %s@." s;
                loop ())
            | _ -> (
              match
                Core.Pipeline.compile_string !strategy catalog line
              with
              | Error msg ->
                Fmt.pr "error: %s@." msg;
                loop ()
              | Ok compiled -> (
                if !explain then
                  print_string (Core.Pipeline.explain catalog compiled);
                match Core.Pipeline.execute catalog compiled with
                | v ->
                  Fmt.pr "%a@." Cobj.Value.pp v;
                  loop ()
                | exception Cobj.Value.Type_error msg ->
                  Fmt.pr "runtime error: %s@." msg;
                  loop ()
                | exception Lang.Interp.Undefined msg ->
                  Fmt.pr "undefined: %s@." msg;
                  loop ())))
        in
        loop ())
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive query loop against a catalog.")
    Term.(
      const repl $ catalog_arg $ file_arg $ seed_arg $ scale_arg
      $ strategy_arg)

let demo_cmd =
  let demo () =
    let company = Workload.Gen.company Workload.Gen.default_company in
    let q2 =
      "SELECT (dname = d.name, emps = (SELECT e.name FROM EMP e WHERE \
       e.address.city = d.address.city)) FROM DEPT d"
    in
    Fmt.pr "== Q2 (nesting in the SELECT clause) ==@.%s@.@." q2;
    (match
       Core.Pipeline.compile_string Core.Pipeline.Decorrelated company q2
     with
    | Ok compiled ->
      print_string (Core.Pipeline.explain company compiled);
      let v = Core.Pipeline.execute company compiled in
      Fmt.pr "@.%d result tuples@.@." (Cobj.Value.set_card v)
    | Error msg -> Fmt.epr "error: %s@." msg);
    let cat = Workload.Gen.xy Workload.Gen.default_xy in
    let count_q =
      "SELECT x.id FROM X x WHERE COUNT(SELECT y.id FROM Y y WHERE x.b = \
       y.b) = 0"
    in
    Fmt.pr "== the COUNT bug ==@.%s@.@." count_q;
    List.iter
      (fun strategy ->
        match Core.Pipeline.run strategy cat count_q with
        | Ok v ->
          Fmt.pr "%-24s %d rows@."
            (Core.Pipeline.strategy_name strategy)
            (Cobj.Value.set_card v)
        | Error msg ->
          Fmt.pr "%-24s error: %s@."
            (Core.Pipeline.strategy_name strategy)
            msg)
      strategies;
    0
  in
  Cmd.v (Cmd.info "demo" ~doc:"Run the paper's flagship queries.")
    Term.(const demo $ const ())

(* --- server mode --------------------------------------------------------- *)

let socket_arg =
  Arg.(
    value & opt string "nestql.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (ignored when $(b,--port) is given).")

let port_arg =
  Arg.(
    value & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen on (or connect to) localhost TCP $(docv) instead of a \
              Unix socket.")

let bind_of ~socket ~port =
  match port with
  | Some p -> Server.Daemon.Tcp p
  | None -> Server.Daemon.Unix_socket socket

let timeout_arg =
  Arg.(
    value & opt (some int) None
    & info [ "timeout" ] ~docv:"MS"
        ~doc:
          "Per-request deadline in milliseconds. Cooperative: checked when \
           the request reaches the executor and between compile and \
           execute, never mid-operator. 0 expires every uncached request \
           deterministically.")

let serve_cmd =
  let serve socket port name file seed scale strategy jobs plan_cache
      result_cache timeout_ms slow_ms http_metrics trace quiet =
    setup_logs false;
    match jobs with
    | Some n when n < 1 ->
      Fmt.epr "nestql: --jobs expects a positive domain count, got %d@." n;
      1
    | _ ->
      with_catalog ?file name seed scale (fun catalog ->
          let catalog_name =
            match file with Some path -> path | None -> name
          in
          let jobs =
            match jobs with
            | Some j -> j
            | None -> Core.Pipeline.default_jobs ()
          in
          let config =
            {
              Server.Daemon.bind = bind_of ~socket ~port;
              catalog;
              catalog_name;
              strategy;
              jobs;
              plan_capacity = plan_cache;
              result_capacity = result_cache;
              timeout_ms;
              slow_ms;
              http_port = http_metrics;
              quiet;
            }
          in
          let with_trace f =
            match trace with
            | None -> f ()
            | Some path ->
              Obs.Metrics.enable ();
              Obs.Trace.start ~path;
              Fun.protect ~finally:Obs.Trace.stop f
          in
          with_trace (fun () -> Server.Daemon.serve config))
  in
  let plan_cache_arg =
    Arg.(
      value & opt int 128
      & info [ "plan-cache" ] ~docv:"N"
          ~doc:
            "Capacity of the compiled-plan LRU in entries, keyed on the \
             normalized query, strategy and catalog-statistics version. 0 \
             disables plan caching.")
  in
  let result_cache_arg =
    Arg.(
      value & opt int (4 * 1024 * 1024)
      & info [ "result-cache" ] ~docv:"BYTES"
          ~doc:
            "Budget of the result LRU in approximate bytes; entries are \
             invalidated when the catalog changes. 0 disables result \
             caching.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress the stderr lifecycle lines.")
  in
  let serve_slow_arg =
    Arg.(
      value & opt (some int) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-query log threshold: queries at or over $(docv) \
             milliseconds emit one structured \"slow.query\" line to the \
             query log ($(b,NESTQL_QUERY_LOG)) with the plan digest, \
             cache outcomes, top self-time operators and worst \
             misestimates. Queries run instrumented when set; results \
             are identical. 0 logs every query.")
  in
  let http_metrics_arg =
    Arg.(
      value & opt (some int) None
      & info [ "http-metrics" ] ~docv:"PORT"
          ~doc:
            "Serve the metrics registry over HTTP on \
             localhost:$(docv): $(b,GET /metrics) answers Prometheus \
             exposition text, $(b,GET /healthz) the readiness probe \
             (503 once shutdown begins). 0 picks an ephemeral port \
             (logged on stderr).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived query server: concurrent line-JSON sessions \
          over a Unix or localhost TCP socket, sharing a plan cache and an \
          optional result cache (see docs/SERVER.md for the protocol).")
    Term.(
      const serve $ socket_arg $ port_arg $ catalog_arg $ file_arg $ seed_arg
      $ scale_arg $ strategy_arg $ jobs_arg $ plan_cache_arg
      $ result_cache_arg $ timeout_arg $ serve_slow_arg $ http_metrics_arg
      $ trace_arg $ quiet_arg)

let client_cmd =
  let module Json = Engine.Json in
  let render_metrics = function
    | Json.Obj fields ->
      List.iter
        (fun (name, v) ->
          match v with
          | Json.Obj props -> (
            match List.assoc_opt "type" props with
            | Some (Json.String "counter") -> (
              match List.assoc_opt "value" props with
              | Some (Json.Int n) -> Fmt.pr "%s %d@." name n
              | _ -> ())
            | Some (Json.String "gauge") -> (
              match List.assoc_opt "value" props with
              | Some (Json.Float g) -> Fmt.pr "%s %g@." name g
              | _ -> ())
            | Some (Json.String "histogram") -> (
              match List.assoc_opt "count" props with
              | Some (Json.Int n) -> Fmt.pr "%s count=%d@." name n
              | _ -> ())
            | _ -> ())
          | _ -> ())
        fields
    | _ -> ()
  in
  let client socket port wait_ms strategy jobs no_cache no_bloom timeout_ms
      repeat raw json_out file seed scale op arg =
    setup_logs false;
    let fail msg =
      Fmt.epr "nestql: %s@." msg;
      1
    in
    let lines =
      match (raw, op, arg) with
      | true, line, _ -> Ok (List.init repeat (fun _ -> line))
      | false, "ping", _ -> Ok [ Server.Client.obj ~op:"ping" [] ]
      | false, "metrics", _ -> Ok [ Server.Client.obj ~op:"metrics" [] ]
      | false, ("metrics-prom" | "metrics_prom"), _ ->
        Ok [ Server.Client.obj ~op:"metrics_prom" [] ]
      | false, "shutdown", _ -> Ok [ Server.Client.obj ~op:"shutdown" [] ]
      | false, "query", Some q ->
        let q = if Sys.file_exists q then load_query_file q else q in
        let fields =
          [ ("q", Json.String q) ]
          @ (match strategy with
            | Some st ->
              [ ("strategy",
                 Json.String (Core.Pipeline.strategy_name st)) ]
            | None -> [])
          @ (match jobs with
            | Some j -> [ ("jobs", Json.Int j) ]
            | None -> [])
          @ (if no_cache then [ ("cache", Json.Bool false) ] else [])
          @ (if no_bloom then [ ("bloom", Json.Bool false) ] else [])
          @
          match timeout_ms with
          | Some ms -> [ ("timeout_ms", Json.Int ms) ]
          | None -> []
        in
        Ok (List.init repeat (fun i -> Server.Client.obj ~id:(i + 1) ~op:"query" fields))
      | false, "query", None -> Error "query expects a QUERY argument"
      | false, "catalog", name ->
        let fields =
          (match name with
          | Some n -> [ ("name", Json.String n) ]
          | None -> [])
          @ (match file with
            | Some f -> [ ("file", Json.String f) ]
            | None -> [])
          @ [ ("seed", Json.Int seed); ("scale", Json.Int scale) ]
        in
        if fields = [ ("seed", Json.Int seed); ("scale", Json.Int scale) ]
           && file = None && name = None
        then Error "catalog expects a NAME argument or --file"
        else Ok [ Server.Client.obj ~op:"catalog" fields ]
      | false, other, _ ->
        Error
          (Printf.sprintf
             "unknown op %s (try: ping, query, catalog, metrics, \
              metrics-prom, shutdown)"
             other)
    in
    match lines with
    | Error msg -> fail msg
    | Ok lines -> (
      match Server.Client.connect ~wait_ms (bind_of ~socket ~port) with
      | Error msg -> fail ("cannot connect: " ^ msg)
      | Ok conn ->
        Fun.protect
          ~finally:(fun () -> Server.Client.close conn)
          (fun () ->
            let rec send = function
              | [] -> 0
              | line :: rest -> (
                match Server.Client.request conn line with
                | Error msg -> fail msg
                | Ok reply -> (
                  if json_out then begin
                    print_endline (Json.to_string reply);
                    send rest
                  end
                  else
                    match Server.Protocol.member "ok" reply with
                    | Some (Json.Bool true) ->
                      (match Server.Protocol.member "prom" reply with
                      | Some (Json.String page) -> print_string page
                      | _ -> (
                        match Server.Protocol.member "metrics" reply with
                        | Some m -> render_metrics m
                        | None -> (
                          match Server.Protocol.member "result" reply with
                          | Some (Json.String s) -> print_endline s
                          | _ -> print_endline (Json.to_string reply))));
                      send rest
                    | _ ->
                      let code, message =
                        match Server.Protocol.member "error" reply with
                        | Some (Json.Obj e) ->
                          ( (match List.assoc_opt "code" e with
                            | Some (Json.String c) -> c
                            | _ -> "unknown"),
                            match List.assoc_opt "message" e with
                            | Some (Json.String m) -> m
                            | _ -> "" )
                        | _ -> ("unknown", Json.to_string reply)
                      in
                      Fmt.epr "error[%s]: %s@." code message;
                      1))
            in
            send lines))
  in
  let wait_arg =
    Arg.(
      value & opt int 0
      & info [ "wait" ] ~docv:"MS"
          ~doc:
            "Retry the connection for up to $(docv) milliseconds — for \
             scripts that start the server in the background and race its \
             bind.")
  in
  let strategy_opt_arg =
    Arg.(
      value & opt (some strategy_conv) None
      & info [ "s"; "strategy" ] ~docv:"STRATEGY"
          ~doc:"Per-request strategy override (server default otherwise).")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Send the query $(docv) times on one connection (cache-hit \
             paths stay warm).")
  in
  let raw_arg =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Treat OP as one raw protocol line and send it verbatim — for \
             exercising the server's error replies.")
  in
  let client_json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print each raw JSON response line.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Bypass the server's plan and result caches for this query.")
  in
  let op_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"OP"
          ~doc:"ping, query, catalog, metrics, metrics-prom (Prometheus \
                exposition text) or shutdown (or a raw line with \
                $(b,--raw)).")
  in
  let arg_arg =
    Arg.(
      value & pos 1 (some string) None
      & info [] ~docv:"ARG"
          ~doc:"The query text (or query file) for $(b,query); the catalog \
                name for $(b,catalog).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send requests to a running $(b,nestql serve) and print the \
          replies (results, pong, metric lines).")
    Term.(
      const client $ socket_arg $ port_arg $ wait_arg $ strategy_opt_arg
      $ jobs_arg $ no_cache_arg $ no_bloom_arg $ timeout_arg $ repeat_arg
      $ raw_arg $ client_json_arg $ file_arg $ seed_arg $ scale_arg $ op_arg
      $ arg_arg)

(* nestql top — a live monitor over a running serve: polls the [metrics]
   op and renders qps, latency quantiles, cache hit rates, queue depth
   and the hottest operators from deltas between successive dumps. All
   derivation is client-side; the server only ever serves its registry. *)
let top_cmd =
  let module Json = Engine.Json in
  (* Decode one [metrics] reply into scalars (counters + gauges) and
     sparse histogram buckets, both keyed by metric name. *)
  let decode_sample reply =
    match Server.Protocol.member "metrics" reply with
    | Some (Json.Obj fields) ->
      let scalars = ref [] and hists = ref [] in
      List.iter
        (fun (name, v) ->
          match v with
          | Json.Obj props -> (
            match List.assoc_opt "type" props with
            | Some (Json.String "counter") -> (
              match List.assoc_opt "value" props with
              | Some (Json.Int n) ->
                scalars := (name, float_of_int n) :: !scalars
              | _ -> ())
            | Some (Json.String "gauge") -> (
              match List.assoc_opt "value" props with
              | Some (Json.Float g) -> scalars := (name, g) :: !scalars
              | _ -> ())
            | Some (Json.String "histogram") ->
              let buckets =
                match List.assoc_opt "buckets" props with
                | Some (Json.List bs) ->
                  List.filter_map
                    (function
                      | Json.Obj p -> (
                        match
                          ( List.assoc_opt "bucket" p,
                            List.assoc_opt "count" p )
                        with
                        | Some (Json.Int i), Some (Json.Int c) ->
                          Some (i, c)
                        | _ -> None)
                      | _ -> None)
                    bs
                | _ -> []
              in
              hists := (name, buckets) :: !hists
            | _ -> ())
          | _ -> ())
        fields;
      Some (!scalars, !hists)
    | _ -> None
  in
  let scalar s name =
    match List.assoc_opt name s with Some v -> v | None -> 0.
  in
  (* Quantile over delta'd buckets: same log-scaled geometry and linear
     interpolation as Obs.Metrics.quantile, but client-side, over the
     window between two scrapes rather than the whole process life. *)
  let quantile_of q buckets =
    let buckets =
      List.sort compare (List.filter (fun (_, c) -> c > 0) buckets)
    in
    let total = List.fold_left (fun a (_, c) -> a + c) 0 buckets in
    if total = 0 then None
    else begin
      let target = q *. float_of_int total in
      let rec go cum = function
        | [] -> None
        | (i, c) :: rest ->
          let cum' = cum + c in
          if float_of_int cum' >= target then begin
            let lo = float_of_int (Obs.Metrics.bucket_lo i)
            and hi = float_of_int (Obs.Metrics.bucket_hi i) in
            let frac = (target -. float_of_int cum) /. float_of_int c in
            Some (lo +. ((hi -. lo) *. Float.max 0. frac))
          end
          else go cum' rest
      in
      go 0 buckets
    end
  in
  let hist_delta prev cur name =
    let get h =
      match List.assoc_opt name h with Some b -> b | None -> []
    in
    let pb = get prev in
    List.filter_map
      (fun (i, c) ->
        let p = match List.assoc_opt i pb with Some n -> n | None -> 0 in
        if c - p > 0 then Some (i, c - p) else None)
      (get cur)
  in
  let pct hits misses =
    let t = hits +. misses in
    if t <= 0. then "-" else Printf.sprintf "%.1f%%" (100. *. hits /. t)
  in
  let render ~clear ~n ~dt (ps, ph) (cs, ch) =
    if clear then Fmt.pr "\027[2J\027[H";
    let d name = Float.max 0. (scalar cs name -. scalar ps name) in
    Fmt.pr "nestql top — sample %d, %.1fs window@." n dt;
    let requests = d "server.requests" in
    Fmt.pr "  requests      %.0f total, %.0f in window (%.1f qps)@."
      (scalar cs "server.requests") requests
      (if dt > 0. then requests /. dt else 0.);
    let lat = hist_delta ph ch "server.request.us" in
    let p q =
      match quantile_of q lat with
      | Some us -> Printf.sprintf "%.2fms" (us /. 1000.)
      | None -> "-"
    in
    Fmt.pr "  latency       p50 %s  p95 %s  p99 %s@." (p 0.5) (p 0.95)
      (p 0.99);
    Fmt.pr "  plan cache    hit %s (%.0f hits / %.0f misses in window)@."
      (pct (d "server.cache.plan.hits") (d "server.cache.plan.misses"))
      (d "server.cache.plan.hits")
      (d "server.cache.plan.misses");
    Fmt.pr "  result cache  hit %s (%.0f hits / %.0f misses in window)@."
      (pct (d "server.cache.result.hits") (d "server.cache.result.misses"))
      (d "server.cache.result.hits")
      (d "server.cache.result.misses");
    Fmt.pr
      "  sessions      %.0f active, queue depth %.0f, slow %.0f, errors \
       %.0f@."
      (scalar cs "server.sessions.active")
      (scalar cs "server.queue.depth")
      (scalar cs "server.slow_queries")
      (scalar cs "server.request.errors");
    let prefix = "profile.self_us." in
    let plen = String.length prefix in
    let hot =
      List.filter_map
        (fun (name, v) ->
          if String.length name > plen && String.sub name 0 plen = prefix
          then begin
            let dv = v -. scalar ps name in
            if dv > 0. then
              Some (String.sub name plen (String.length name - plen), dv)
            else None
          end
          else None)
        cs
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    match hot with
    | [] -> ()
    | hot ->
      Fmt.pr "  hot operators (self-time in window):@.";
      List.iteri
        (fun i (op, us) ->
          if i < 5 then Fmt.pr "    %-24s %8.2fms@." op (us /. 1000.))
        hot
  in
  let top socket port wait_ms interval iterations no_clear =
    setup_logs false;
    match Server.Client.connect ~wait_ms (bind_of ~socket ~port) with
    | Error msg ->
      Fmt.epr "nestql: cannot connect: %s@." msg;
      1
    | Ok conn ->
      Fun.protect
        ~finally:(fun () -> Server.Client.close conn)
        (fun () ->
          let sample () =
            match
              Server.Client.request conn (Server.Client.obj ~op:"metrics" [])
            with
            | Error msg ->
              Fmt.epr "nestql: %s@." msg;
              None
            | Ok reply -> (
              match decode_sample reply with
              | Some s -> Some (Unix.gettimeofday (), s)
              | None ->
                Fmt.epr "nestql: malformed metrics reply@.";
                None)
          in
          let rec loop n prev =
            match sample () with
            | None -> 1
            | Some (at, cur) ->
              let pat, prev_sample =
                match prev with Some p -> p | None -> (at, ([], []))
              in
              render ~clear:(not no_clear) ~n ~dt:(at -. pat) prev_sample
                cur;
              if iterations > 0 && n >= iterations then 0
              else begin
                Unix.sleepf interval;
                loop (n + 1) (Some (at, cur))
              end
          in
          loop 1 None)
  in
  let wait_arg =
    Arg.(
      value & opt int 0
      & info [ "wait" ] ~docv:"MS"
          ~doc:"Retry the connection for up to $(docv) milliseconds.")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECS"
          ~doc:"Seconds between samples.")
  in
  let iterations_arg =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) samples (0: run until interrupted). The \
             first sample has an empty window — rates and quantiles show \
             from the second on.")
  in
  let no_clear_arg =
    Arg.(
      value & flag
      & info [ "no-clear" ]
          ~doc:
            "Do not clear the screen between samples; append them — for \
             piping and tests.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live monitor of a running $(b,nestql serve): polls the metrics \
          op and shows qps, latency quantiles, cache hit rates, queue \
          depth and the hottest operators, derived from deltas between \
          successive samples.")
    Term.(
      const top $ socket_arg $ port_arg $ wait_arg $ interval_arg
      $ iterations_arg $ no_clear_arg)

let () =
  let doc = "nested-query optimization in a complex object model" in
  let info = Cmd.info "nestql" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
       [ run_cmd; explain_cmd; check_cmd; stats_cmd; table2_cmd; catalog_cmd;
         repl_cmd; demo_cmd; serve_cmd; client_cmd; top_cmd ]))
