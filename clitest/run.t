The classification table (paper Table 2) is deterministic:

  $ ../bin/nestql.exe table2 | head -6
  name                       P(x, z)                                    verdict    rewritten
  --------------------------------------------------------------------------------------------------------------
  z = ∅                    z = {}                                     antijoin   ¬∃v ∈ z (true)
  z ≠ ∅                  z <> {}                                    semijoin   ∃v ∈ z (true)
  count(z) = 0               COUNT(z) = 0                               antijoin   ¬∃v ∈ z (true)
  count(z) ≠ 0             COUNT(z) <> 0                              semijoin   ∃v ∈ z (true)

Running a query against the deterministic table1 catalog:

  $ ../bin/nestql.exe run -c table1 "SELECT (e = x.e, s = (SELECT y FROM Y y WHERE y.b = x.d)) FROM X x"
  {(e = 1, s = {(a = 1, b = 1), (a = 2, b = 1)}), (e = 2, s = {}),
   (e = 3, s = {(a = 3, b = 3)})}

EXPLAIN shows both plans:

  $ ../bin/nestql.exe explain -c table1 "SELECT x.e FROM X x WHERE x.d IN (SELECT y.b FROM Y y WHERE y.a = x.e)"
  strategy: decorrelated
  query: SELECT x.e FROM X x WHERE x.d IN (SELECT y.b FROM Y y WHERE y.a = x.e)
  
  logical plan:
  result x.e
  └─ semijoin [y.a = x.e AND y.b = x.d]
         ├─ table X x
         └─ table Y y
  
  physical plan:
  result x.e
  └─ nl-semijoin [y.a = x.e AND y.b = x.d]
         ├─ scan X x
         └─ scan Y y
  
  estimated: 2 result rows, 12 cost units (see Core.Cost)
  
  lint:
  subquery q (WHERE clause, correlated, over Y y):
    predicate: x.d IN q
    verdict: semijoin-rewritable — EXISTS v IN q (v = x.d)
  1 subquery; 0 grouping-required, 0 with COUNT-bug risk under flattening

EXPLAIN ANALYZE annotates every operator with estimated vs actual
cardinality and work counters (--no-timing keeps the output stable):

  $ ../bin/nestql.exe run -c table1 --explain-analyze --no-timing "SELECT (e = x.e, s = (SELECT y FROM Y y WHERE y.b = x.d)) FROM X x"
  strategy: decorrelated
  query: SELECT (e = x.e, s = (SELECT y FROM Y y WHERE y.b = x.d)) FROM X x
  
  index-nestjoin [x.d → y.b] on Y y func=y label=q  (est=3 actual=3 loops=1 bounds=[3,3] keys={x} probes=3)
  └─ scan X x  (est=3 actual=3 loops=1 bounds=[3,3] keys={x})
  
  misestimation (worst est-vs-actual first):
    all 2 operators within 1.5× of estimate

The --json form is machine-readable, one object per operator:

  $ ../bin/nestql.exe run -c table1 --explain-analyze --json "SELECT x.e FROM X x WHERE x.d IN (SELECT y.b FROM Y y WHERE y.a = x.e)" | python3 -c "
  > import json, sys
  > def walk(n, d=0):
  >     print('  ' * d + f\"{n['op']} est={n['est_rows']} rows={n['rows_out']} loops={n['loops']} timed={n['time_ns'] >= 0}\")
  >     for c in n['children']: walk(c, d + 1)
  > walk(json.load(sys.stdin)['plan'])"
  nl-semijoin est=1.5 rows=2 loops=1 timed=True
    scan est=3 rows=3 loops=1 timed=True
    scan est=3 rows=3 loops=1 timed=True

The reference interpreter has no physical plan to instrument:

  $ ../bin/nestql.exe run -c table1 -s interp --explain-analyze "SELECT x.e FROM X x"
  error: explain-analyze needs a physical plan (strategy interp executes in the reference interpreter)
  [1]

Loading a catalog from a definition file:

  $ ../bin/nestql.exe run --file ../examples/movies.nql "SELECT m.title FROM MOVIES m WHERE \"De Niro\" IN m.cast"
  {"Heat", "Ronin"}

Kim's plan reproduces the COUNT bug (loses every dangling row):

  $ ../bin/nestql.exe run -c xy --seed 42 -n 50 -s kim "SELECT x.id FROM X x WHERE COUNT(SELECT y.id FROM Y y WHERE x.b = y.b) = 0"
  {}

  $ ../bin/nestql.exe run -c xy --seed 42 -n 50 -s decorrelated "SELECT x.id FROM X x WHERE COUNT(SELECT y.id FROM Y y WHERE x.b = y.b) = 0" | head -1
  {1, 5, 9, 11, 13, 14, 17, 26, 30, 39, 40, 43, 45, 46, 48}

Errors are reported, not crashed on:

  $ ../bin/nestql.exe run -c table1 "SELECT"
  error: parse error at offset 6: expected an expression (found <eof>)
  [1]

  $ ../bin/nestql.exe run -c table1 "SELECT q.nope FROM X q"
  error: type error: type (d : INT, e : INT) has no field nope
  in: q.nope
  env: (q : (d : INT, e : INT))
  [1]

Catalogs dump to the definition language and reload:

  $ ../bin/nestql.exe catalog -c table1 --dump > t1.nql
  $ ../bin/nestql.exe run --file t1.nql "SELECT x.e FROM X x WHERE x.d = 1"
  {1}

Variant types work through the CLI:

  $ ../bin/nestql.exe run --file ../examples/shapes.nql "SELECT d.id FROM DRAWINGS d WHERE d.shape IS circle"
  {1, 3, 5}

Type checking without execution:

  $ ../bin/nestql.exe check -c table1 "SELECT (e = x.e, ys = (SELECT y.a FROM Y y WHERE y.b = x.d)) FROM X x"
  type: P (e : INT, ys : P INT)
  subquery q (SELECT clause, correlated, over Y y):
    verdict: grouping-required — SELECT-clause nesting: the subquery value itself is the result attribute (§5: always grouped — nest join)
    note: COUNT-bug risk — a dangling outer row still contributes a tuple (with an empty group); join-based flattening would drop it
  1 subquery; 1 grouping-required, 1 with COUNT-bug risk under flattening

  $ ../bin/nestql.exe check -c table1 "SELECT x.nope FROM X x"
  error: type error: type (d : INT, e : INT) has no field nope
  in: x.nope
  env: (x : (d : INT, e : INT))
  [1]

The REPL processes commands from stdin:

  $ printf '.tables\nSELECT x.e FROM X x WHERE x.d < 3\n.strategy interp\nX\n.quit\n' | ../bin/nestql.exe repl -c table1
  nestql repl — tables: X, Y
  commands: .tables  .strategy NAME             .explain on|off  .quit
  > X                3 rows : (d : INT, e : INT)
  Y                3 rows : (a : INT, b : INT)
  > {1, 2}
  > > {(d = 1, e = 1), (d = 2, e = 2), (d = 3, e = 3)}
  > 
