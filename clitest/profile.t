Production telemetry surfaces: `--profile` prints per-operator
self-time attribution, `--slow-ms` writes a structured slow-query log
line, `client metrics-prom` serves the Prometheus exposition, and
`nestql top` renders a live view over a server's metrics dump. Times
and rates are masked; operator structure, row counts, digests and
Prometheus families are deterministic (fixed seed and scale, --jobs 1).

  $ Q="SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)"

The standalone profile prints the result, the self-time table and a
flame view. The flame view is plan preorder, so it is structurally
deterministic; the table's hottest-first order is timing-dependent, so
only its shape is asserted:

  $ ../bin/nestql.exe run -n 40 --jobs 1 --profile "$Q" > prof.out
  $ head -1 prof.out
  {16, 20, 22, 25, 35, 37, 38}
  $ sed -n '2p' prof.out | sed -E 's/[0-9.]+//g'
  profile: wall ms,  operators (self-time order)
  $ grep -Ec '^ +[0-9.]+ +[0-9.]+% ' prof.out
  3
  $ sed -n '/^flame:/,$p' prof.out | sed -E 's/[0-9]+\.[0-9]+/_/g'
  flame:
  hash-semijoin [(k0 = x.b, k1 = x.a) = (k0 = y.b, k1 = y.a)]  self=_ms total=_ms
    scan X x  self=_ms total=_ms
    scan Y y  self=_ms total=_ms

The JSON profile carries the telescoping-sum contract: per-operator
exclusive times never exceed the root's wall time, serial or parallel:

  $ ../bin/nestql.exe run -n 40 --jobs 1 --profile --json "$Q" | python3 -c "
  > import json, sys
  > doc = json.load(sys.stdin)
  > ops = doc['operators']
  > assert sum(o['self_ns'] for o in ops) <= doc['wall_ns']
  > assert all(o['self_ns'] <= o['total_ns'] for o in ops)
  > print(sorted((o['op'], o['rows_out']) for o in ops))"
  [('hash-semijoin', 7), ('scan', 40), ('scan', 40)]
  $ ../bin/nestql.exe run -n 40 --jobs 4 --profile --json "$Q" | python3 -c "
  > import json, sys
  > doc = json.load(sys.stdin)
  > ops = doc['operators']
  > assert sum(o['self_ns'] for o in ops) <= doc['wall_ns']
  > print(sorted((o['op'], o['rows_out']) for o in ops))"
  [('hash-semijoin', 7), ('scan', 40), ('scan', 40)]

With --explain-analyze the profile is embedded in the analysis output;
--no-timing suppresses it together with the other wall-clock fields:

  $ ../bin/nestql.exe run -n 40 --jobs 1 --explain-analyze --profile "$Q" | grep -c '^profile:'
  1
  $ ../bin/nestql.exe run -n 40 --jobs 1 --explain-analyze --profile --no-timing "$Q" | grep -c '^profile:'
  0
  [1]

A query at or over the --slow-ms threshold appends one slow.query line
to the query log with the plan digest, hot operators and worst
misestimates (threshold 0 forces it); under the threshold the log
stays quiet:

  $ NESTQL_QUERY_LOG=- ../bin/nestql.exe run -n 40 --jobs 1 --slow-ms 0 "$Q" 2>&1 >/dev/null | grep slow.query | sed -E 's/"ms":[0-9.e+-]+/"ms":_/; s/"hot":"[^"]*"/"hot":"..."/'
  {"event":"slow.query","strategy":"decorrelated","jobs":1,"rows":7,"ms":_,"threshold_ms":0,"plan_digest":"9defdfad1310b4e8bb0ec0b720a0a2d5","hot":"...","misest":"5.7x-over hash-semijoin;1.0x-over scan;1.0x-over scan"}
  $ NESTQL_QUERY_LOG=- ../bin/nestql.exe run -n 40 --jobs 1 --slow-ms 60000 "$Q" 2>&1 >/dev/null | grep -c slow.query
  0
  [1]

The slow line's hot field names the top self-time operators:

  $ NESTQL_QUERY_LOG=- ../bin/nestql.exe run -n 40 --jobs 1 --slow-ms 0 "$Q" 2>&1 >/dev/null | grep slow.query | grep -c 'hash-semijoin=[0-9.]*ms'
  1

Server mode: metrics-prom returns the same registry as the HTTP scrape
endpoint, in Prometheus text exposition format. The checker validates
the format, the family catalog and the strategy/cache labels on the
query-duration histogram:

  $ ../bin/nestql.exe serve --socket prof.sock -n 40 --quiet 2> server.log &
  $ ../bin/nestql.exe client --socket prof.sock --wait 5000 --repeat 2 query "$Q"
  {16, 20, 22, 25, 35, 37, 38}
  {16, 20, 22, 25, 35, 37, 38}
  $ ../bin/nestql.exe client --socket prof.sock metrics-prom | python3 ../tools/check_prom.py - --require-family nestql_server_requests --require-family nestql_server_request_us --require-family nestql_server_query_duration_us --require-label 'nestql_server_query_duration_us:strategy=decorrelated' --require-label 'nestql_server_query_duration_us:plan_cache=hit' | sed -E 's/[0-9]+/_/g'
  ok: _ samples across _ families (_ counter, _ gauge, _ histogram)

nestql top polls the metrics op and derives qps, latency quantiles and
cache hit rates client-side; one iteration with --no-clear is plain
text (numbers masked — they are counts and wall-clock):

  $ ../bin/nestql.exe top --socket prof.sock --iterations 1 --no-clear | sed -E 's/[0-9]+(\.[0-9]+)?/_/g'
  nestql top — sample _, _s window
    requests      _ total, _ in window (_ qps)
    latency       p_ _ms  p_ _ms  p_ _ms
    plan cache    hit _% (_ hits / _ misses in window)
    result cache  hit _% (_ hits / _ misses in window)
    sessions      _ active, queue depth _, slow _, errors _

  $ ../bin/nestql.exe client --socket prof.sock shutdown
  bye
  $ wait
