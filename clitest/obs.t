Observability surfaces: `--misest` ranks operators by estimation
divergence, `--trace` writes a Chrome trace-event file, and
NESTQL_QUERY_LOG emits one structured line per query. All output here is
deterministic: the generated catalog fixes both estimates and actuals,
and the runs pin --jobs 1 (the ambient NESTQL_JOBS of the tier-1 matrix
must not change them).

A standalone misestimation report prints the result, then the ranked
divergences with the responsible statistics named:

  $ ../bin/nestql.exe run -n 40 --misest "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)"
  {16, 20, 22, 25, 35, 37, 38}
  misestimation (worst est-vs-actual first):
    5.7× over  hash-semijoin [(k0 = x.b, k1 = x.a) = (k0 = y.b, k1 = y.a)]: est=40 actual=7
        inputs: match fraction min(1, ndv ratio): probe ndv(X.b)=15 × ndv(X.a)=16 vs build ndv(Y.b)=10 × ndv(Y.a)=16
    (2 more within 1.5× of estimate)

Tracing writes a schema-valid trace: phase spans for every compiler and
optimizer phase, operator spans from the instrumented executor, one
domain on the serial path:

  $ ../bin/nestql.exe run -n 40 --jobs 1 --trace trace.json "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)" > /dev/null
  $ python3 ../tools/check_trace.py trace.json --require-phase typecheck --require-phase decorrelate --require-phase plan --require-phase execute
  ok: 37 events, cats {'__metadata': 2, 'operator': 3, 'phase': 32}, 1 domain(s), phases ['certify.decorrelate', 'certify.plan', 'certify.reorder', 'certify.rewrite', 'certify.simplify', 'compile', 'decorrelate', 'execute', 'plan', 'reorder', 'rewrite', 'simplify', 'translate', 'typecheck', 'verify.decorrelate', 'verify.plan', 'verify.reorder', 'verify.rewrite', 'verify.simplify', 'verify.translate'], operators ['hash-semijoin', 'scan']

Tracing must not change the query result:

  $ ../bin/nestql.exe run -n 40 --jobs 1 "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)" > plain.out
  $ ../bin/nestql.exe run -n 40 --jobs 1 --trace t2.json "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)" > traced.out
  $ cmp plain.out traced.out

The query log appends one JSON line per query ("-" sends it to stderr);
the wall-clock field is masked, everything else is deterministic:

  $ NESTQL_QUERY_LOG=- ../bin/nestql.exe run -n 40 --jobs 1 "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)" 2>&1 >/dev/null | sed -E 's/"ms":[0-9.e+-]+/"ms":_/'
  {"event":"query","strategy":"decorrelated","jobs":1,"bloom":true,"rows":7,"ms":_,"bloom_prunes":33,"max_misest":5.71429}

An unset NESTQL_QUERY_LOG stays silent:

  $ ../bin/nestql.exe run -n 40 "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)" 2>&1 >/dev/null
