Bloom-filter sideways information passing: the hash-join family screens
probe keys against a build-side Bloom filter. --no-bloom disables it
with byte-identical results.

  $ ../bin/nestql.exe run -n 40 "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)" > bloom.out
  $ ../bin/nestql.exe run -n 40 --no-bloom "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)" > nobloom.out
  $ diff bloom.out nobloom.out
  $ ../bin/nestql.exe run -n 40 --jobs 4 "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)" > bloom4.out
  $ diff bloom.out bloom4.out
  $ ../bin/nestql.exe run -n 40 --jobs 4 --no-bloom "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)" > nobloom4.out
  $ diff bloom.out nobloom4.out

--stats shows the pruning: most probe keys of this semijoin are absent
from the build side, so the filter skips their hash lookups. A pruned
probe still counts in probes — only the bloom counters may differ
between the two runs.

  $ ../bin/nestql.exe run -n 40 --stats "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)"
  {16, 20, 22, 25, 35, 37, 38}
  -- rows=87 pred-evals=0 builds=40 probes=40 sorts=0 applies=0 apply-hits=0 bloom-checks=40 bloom-prunes=33 swaps=0
  $ ../bin/nestql.exe run -n 40 --no-bloom --stats "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)"
  {16, 20, 22, 25, 35, 37, 38}
  -- rows=87 pred-evals=0 builds=40 probes=40 sorts=0 applies=0 apply-hits=0 bloom-checks=0 bloom-prunes=0 swaps=0

The EXPLAIN ANALYZE tree attributes the pruning to the operator that
owns the filter:

  $ ../bin/nestql.exe run -n 40 --explain-analyze --no-timing "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)"
  strategy: decorrelated
  query: SELECT x.id
         FROM X x
         WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)
  
  hash-semijoin [(k0 = x.b, k1 = x.a) = (k0 = y.b, k1 = y.a)]  (est=40 actual=7 loops=1 bounds=[0,40] keys={x}|{x.id} builds=40 probes=40 bloom-checks=40 bloom-prunes=33)
  ├─ scan X x  (est=40 actual=40 loops=1 bounds=[40,40] keys={x}|{x.id})
  └─ scan Y y  (est=40 actual=40 loops=1 bounds=[40,40] keys={y}|{y.id})
  
  misestimation (worst est-vs-actual first):
    5.7× over  hash-semijoin [(k0 = x.b, k1 = x.a) = (k0 = y.b, k1 = y.a)]: est=40 actual=7
        inputs: match fraction min(1, ndv ratio): probe ndv(X.b)=15 × ndv(X.a)=16 vs build ndv(Y.b)=10 × ndv(Y.a)=16
    (2 more within 1.5× of estimate)


The JSON rendering carries the same counters; pruning disappears (and
nothing else changes) under --no-bloom, and is invariant in --jobs:

  $ cat > sum_bloom.py <<'EOF'
  > import json, sys
  > def walk(n):
  >     yield n
  >     for c in n['children']:
  >         yield from walk(c)
  > nodes = list(walk(json.load(sys.stdin)['plan']))
  > print('checks', sum(n['bloom_checks'] for n in nodes),
  >       'prunes', sum(n['bloom_prunes'] for n in nodes))
  > EOF
  $ ../bin/nestql.exe run -n 40 --explain-analyze --json --no-timing "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)" | python3 sum_bloom.py
  checks 40 prunes 33
  $ ../bin/nestql.exe run -n 40 --jobs 4 --explain-analyze --json --no-timing "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)" | python3 sum_bloom.py
  checks 40 prunes 33
  $ ../bin/nestql.exe run -n 40 --no-bloom --explain-analyze --json --no-timing "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)" | python3 sum_bloom.py
  checks 0 prunes 0

nestql stats prints the one-pass catalog statistics that drive the cost
model (row counts, per-attribute NDV, null/empty fractions, average set
cardinality):

  $ ../bin/nestql.exe stats -c xy -n 10
  table            rows  attribute     ndv   null   empty  avg-card
  X                  10  a               9   0.00       -         -
  X                  10  b               4   0.00       -         -
  X                  10  id             10   0.00       -         -
  X                  10  s               8   0.00    0.30      1.40
  Y                  10  a               8   0.00       -         -
  Y                  10  b               2   0.00       -         -
  Y                  10  id             10   0.00       -         -
