The shredding backend (-s shred) evaluates a nested query as a bounded
set of flat queries plus a stitch phase — no nest joins at runtime. On
the paper's Table 1 catalog it produces exactly the nest-join result,
including the dangling row's empty inner set (e = 2, s = {}):

  $ ../bin/nestql.exe run -c table1 -s shred "SELECT (e = x.e, s = (SELECT y.a FROM Y y WHERE y.b = x.d)) FROM X x"
  {(e = 1, s = {1, 2}), (e = 2, s = {}), (e = 3, s = {3})}

  $ ../bin/nestql.exe run -c table1 -s decorrelated "SELECT (e = x.e, s = (SELECT y.a FROM Y y WHERE y.b = x.d)) FROM X x"
  {(e = 1, s = {1, 2}), (e = 2, s = {}), (e = 3, s = {3})}

EXPLAIN shows the shredded program instead of a physical nest-join plan:
the flat query count, each flat query, and the stitch keys:

  $ ../bin/nestql.exe explain -c table1 -s shred "SELECT (e = x.e, s = (SELECT y.a FROM Y y WHERE y.b = x.d)) FROM X x" 2>/dev/null
  strategy: shred
  query: SELECT (e = x.e, s = (SELECT y.a FROM Y y WHERE y.b = x.d)) FROM X x
  
  logical plan:
  result (e = x.e, s = q)
  └─ nestjoin [y.b = x.d] func=y.a label=q
         ├─ table X x
         └─ table Y y
  
  shredded program:
  2 flat queries
  table X x
  stitch q by (x) = y.a from:
    join [y.b = x.d]
    ├─ table X x
    └─ table Y y
  result: (e = x.e, s = q)
  
  lint:
  subquery q (SELECT clause, correlated, over Y y):
    verdict: grouping-required — SELECT-clause nesting: the subquery value itself is the result attribute (§5: always grouped — nest join)
    note: COUNT-bug risk — a dangling outer row still contributes a tuple (with an empty group); join-based flattening would drop it
  1 subquery; 1 grouping-required, 1 with COUNT-bug risk under flattening

EXPLAIN ANALYZE roots the tree at the stitch, with one instrumented
subtree per flat query:

  $ ../bin/nestql.exe run -c table1 -s shred --explain-analyze --no-timing "SELECT (e = x.e, s = (SELECT y.a FROM Y y WHERE y.b = x.d)) FROM X x"
  strategy: shred
  query: SELECT (e = x.e, s = (SELECT y.a FROM Y y WHERE y.b = x.d)) FROM X x
  
  stitch 2 flat queries  (est=? actual=3 loops=1)
  ├─ scan X x  (est=3 actual=3 loops=1)
  └─ index-join [x.d → y.b] on Y y  (est=4 actual=3 loops=1 probes=3)
         └─ scan X x  (est=3 actual=3 loops=1)

Parallel execution goes through the same flat executor; the result is
identical:

  $ ../bin/nestql.exe run -c table1 -s shred --jobs 4 "SELECT (e = x.e, s = (SELECT y.a FROM Y y WHERE y.b = x.d)) FROM X x"
  {(e = 1, s = {1, 2}), (e = 2, s = {}), (e = 3, s = {3})}

Deep correlation (the inner FROM ranges over a set attribute of the
outer row) is outside the flat fragment; the backend says so and falls
back to the nest-join physical plan, still producing the right value:

  $ ../bin/nestql.exe explain -s shred "SELECT (i = x.id, n = COUNT(SELECT u FROM x.s u WHERE u < x.a)) FROM X x" 2>/dev/null | sed -n '12,13p'
  
  (outside the flat fragment: falling back to nest-join execution)

The check subcommand's --diff mode is the same differential oracle in
batch form (see check.t).
