Server mode: `nestql serve` holds a catalog and a plan/result cache
behind a Unix socket; `nestql client` speaks the line-JSON protocol to
it. The server runs in the background here; --wait retries the first
connect until the bind completes, and everything asserted is
deterministic (fixed seed, fixed scale, cache counters).

  $ ../bin/nestql.exe serve --socket srv.sock -n 40 --quiet 2> server.log &
  $ SRV=$!
  $ ../bin/nestql.exe client --socket srv.sock --wait 5000 ping
  pong

A query round trip returns exactly what the one-shot CLI returns:

  $ Q="SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)"
  $ ../bin/nestql.exe client --socket srv.sock query "$Q"
  {16, 20, 22, 25, 35, 37, 38}

Repeating the query (one connection, three sends) is served from the
caches — the first send above was the double miss that filled them:

  $ ../bin/nestql.exe client --socket srv.sock --repeat 3 query "$Q"
  {16, 20, 22, 25, 35, 37, 38}
  {16, 20, 22, 25, 35, 37, 38}
  {16, 20, 22, 25, 35, 37, 38}
  $ ../bin/nestql.exe client --socket srv.sock metrics | grep '^server\.cache\.'
  server.cache.plan.hits 3
  server.cache.plan.misses 1
  server.cache.result.hits 3
  server.cache.result.misses 1

Malformed input gets a structured error reply (and a nonzero client
exit), and the connection survives for the next request:

  $ ../bin/nestql.exe client --socket srv.sock --raw 'not json'
  error[parse_error]: invalid literal at offset 0
  [1]
  $ ../bin/nestql.exe client --socket srv.sock --raw '{"op":"frobnicate"}'
  error[bad_request]: unknown op "frobnicate"
  [1]

The per-request deadline is cooperative; a 0 ms budget expires before
the executor starts (cache bypassed so nothing can answer early):

  $ ../bin/nestql.exe client --socket srv.sock --timeout 0 --no-cache query "$Q"
  error[timeout]: request deadline expired before execution
  [1]

Switching the session's catalog bumps the statistics version (stale
plans become unreachable) and eagerly flushes the cached results:

  $ ../bin/nestql.exe client --socket srv.sock catalog xyz --scale 40
  {"ok":true,"catalog":"xyz","tables":["X","Y","Z"],"stats_version":2,"results_invalidated":1}
  $ ../bin/nestql.exe client --socket srv.sock metrics | grep 'invalidations\|catalog'
  server.cache.result.invalidations 1
  server.catalog.changes 1

Graceful shutdown: the shutdown op answers, the server drains its
sessions, removes the socket and exits 0:

  $ ../bin/nestql.exe client --socket srv.sock shutdown
  bye
  $ wait $SRV; echo "exit: $?"
  exit: 0
  $ test -e srv.sock || echo "socket removed"
  socket removed
  $ cat server.log
