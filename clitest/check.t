The query lint over the example query files. The semijoin class is clean
even under --strict:

  $ ../bin/nestql.exe check --strict ../examples/queries/semijoin_in.q
  type: P INT
  subquery q (WHERE clause, correlated, over Y y):
    predicate: x.a IN q
    verdict: semijoin-rewritable — EXISTS v IN q (v = x.a)
  1 subquery; 0 grouping-required, 0 with COUNT-bug risk under flattening

The ¬∃ class builds an antijoin — a COUNT-bug risk under flattening, but
not grouping-required, so --strict still passes:

  $ ../bin/nestql.exe check --strict ../examples/queries/antijoin_count.q
  type: P INT
  subquery q (WHERE clause, correlated, over Y y):
    predicate: COUNT(q) = 0
    verdict: antijoin-rewritable — NOT EXISTS v IN q (true)
    note: COUNT-bug risk — the predicate holds on an empty subquery result, so dangling outer rows contribute to the answer; Kim-style join flattening silently drops them
  1 subquery; 0 grouping-required, 1 with COUNT-bug risk under flattening

The canonical COUNT bug needs grouping; --strict exits 2:

  $ ../bin/nestql.exe check --strict ../examples/queries/count_equality.q
  type: P INT
  subquery q (WHERE clause, correlated, over Y y):
    predicate: x.a = COUNT(q)
    verdict: grouping-required — Theorem 1: no ∃/¬∃ rewrite (count(z) comparison needs the cardinality)
    note: COUNT-bug risk — the predicate holds on an empty subquery result, so dangling outer rows contribute to the answer; Kim-style join flattening silently drops them
  1 subquery; 1 grouping-required, 1 with COUNT-bug risk under flattening
  strict: 1 grouping-required correlated predicate(s) — COUNT-bug risk under flattening baselines
  [2]

Set-valued comparison also requires grouping:

  $ ../bin/nestql.exe check --strict ../examples/queries/subseteq.q
  type: P INT
  subquery q (WHERE clause, correlated, over Y y):
    predicate: x.s SUBSETEQ q
    verdict: grouping-required — Theorem 1: no ∃/¬∃ rewrite (e ⊆ z requires the whole subquery result)
    note: COUNT-bug risk — the predicate holds on an empty subquery result, so dangling outer rows contribute to the answer; Kim-style join flattening silently drops them
  1 subquery; 1 grouping-required, 1 with COUNT-bug risk under flattening
  strict: 1 grouping-required correlated predicate(s) — COUNT-bug risk under flattening baselines
  [2]

Without --strict the same file is only a diagnostic:

  $ ../bin/nestql.exe check ../examples/queries/count_equality.q
  type: P INT
  subquery q (WHERE clause, correlated, over Y y):
    predicate: x.a = COUNT(q)
    verdict: grouping-required — Theorem 1: no ∃/¬∃ rewrite (count(z) comparison needs the cardinality)
    note: COUNT-bug risk — the predicate holds on an empty subquery result, so dangling outer rows contribute to the answer; Kim-style join flattening silently drops them
  1 subquery; 1 grouping-required, 1 with COUNT-bug risk under flattening

A generated corpus lints and phase-verifies under every strategy:

  $ ../bin/nestql.exe check --gen 2 --seed 7 --verify
  -- corpus: 2 queries, seed 7
  -- SELECT (i = x.id, a = x.a) FROM X x WHERE x.a >= MAX(SELECT y.a FROM Y y WHERE x.b = y.b AND y.a IN (SELECT w.a FROM Y w WHERE w.b = y.b))
  type: P (a : INT, i : INT)
  subquery q' (WHERE clause, correlated, over Y w, over Y y):
    predicate: x.a >= MAX(q')
    verdict: grouping-required — Theorem 1: no ∃/¬∃ rewrite (MIN/MAX comparison in a direction needing the whole set)
    note: COUNT-bug risk — the predicate holds on an empty subquery result, so dangling outer rows contribute to the answer; Kim-style join flattening silently drops them
  subquery q (WHERE clause, correlated, over Y w):
    predicate: y.a IN q
    verdict: semijoin-rewritable — EXISTS v IN q (v = y.a)
  2 subqueries; 1 grouping-required, 1 with COUNT-bug risk under flattening
  
  -- SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b AND y.a < 0)) FROM X x
  type: P (i : INT, zs : P INT)
  subquery q (SELECT clause, correlated, over Y y):
    verdict: grouping-required — SELECT-clause nesting: the subquery value itself is the result attribute (§5: always grouped — nest join)
    note: COUNT-bug risk — a dangling outer row still contributes a tuple (with an empty group); join-based flattening would drop it
  1 subquery; 1 grouping-required, 1 with COUNT-bug risk under flattening
  
  phases verified: 2 queries under 8 strategies

--verify can be restricted to named strategies; an unknown name is a
clean usage error (exit 2) listing the valid ones:

  $ ../bin/nestql.exe check -s shred -s interp --verify "SELECT x.a FROM X x"
  type: P INT
  phases verified: 1 query under 2 strategies

  $ ../bin/nestql.exe check -s quantum --verify "SELECT x.a FROM X x"
  nestql: unknown strategy quantum (try: interp, naive, decorrelated, decorrelated-outerjoin, kim, ganski-wong, muralikrishna, shred)
  [2]

--diff cross-checks the nest-join and shredding backends against the
reference interpreter, reporting shred coverage:

  $ ../bin/nestql.exe check --gen 5 --seed 11 --diff 2>/dev/null | tail -1
  differential: 5 queries agree under interp, decorrelated, shred (5 shredded, 0 nest-join fallbacks)

Phase verification is also available on run:

  $ ../bin/nestql.exe run --verify "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE y.b = x.b)"
  {0, 18, 22, 31, 33, 34, 41, 49, 61, 65, 72, 74, 75, 85, 95}
