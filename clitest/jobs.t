Partition-parallel execution: --jobs N runs the engine on N domains with
results identical to serial execution.

--jobs 1 is exactly the default:

  $ ../bin/nestql.exe run -n 40 "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x" > serial.out
  $ ../bin/nestql.exe run -n 40 --jobs 1 "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x" > jobs1.out
  $ diff serial.out jobs1.out

--jobs 4 produces the same rows, and the merged EXPLAIN ANALYZE tree is
byte-identical to the serial one (counters are exact under parallelism;
--no-timing --json drops the only nondeterministic field):

  $ ../bin/nestql.exe run -n 40 --jobs 4 "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x" > jobs4.out
  $ diff serial.out jobs4.out
  $ ../bin/nestql.exe run -n 40 --explain-analyze --json --no-timing "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x" > ea-serial.json
  $ ../bin/nestql.exe run -n 40 --jobs 4 --explain-analyze --json --no-timing "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x" > ea-jobs4.json
  $ diff ea-serial.json ea-jobs4.json

The NESTQL_JOBS environment variable sets the default width:

  $ NESTQL_JOBS=4 ../bin/nestql.exe run -n 40 "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x" > env4.out
  $ diff serial.out env4.out

A non-positive domain count is a usage error:

  $ ../bin/nestql.exe run --jobs 0 "SELECT x.id FROM X x"
  nestql: --jobs expects a positive domain count, got 0
  [1]

  $ ../bin/nestql.exe run --jobs=-1 "SELECT x.id FROM X x"
  nestql: --jobs expects a positive domain count, got -1
  [1]
