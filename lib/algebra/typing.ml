module Ctype = Cobj.Ctype

type schema = (string * Ctype.t) list

let pp_schema ppf schema =
  Fmt.pf ppf "(@[%a@])"
    (Fmt.list ~sep:(Fmt.any ",@ ") (fun ppf (v, t) ->
         Fmt.pf ppf "%s : %a" v Ctype.pp t))
    schema

let ( let* ) = Result.bind

(* Bindings added by a plan shadow ambient ones; within a plan path variable
   names are unique (checked by [Plan.well_formed]). *)
let extend ambient additions =
  additions @ List.filter (fun (v, _) -> not (List.mem_assoc v additions)) ambient

let infer_expr catalog tenv e =
  Result.map_error
    (fun err -> Fmt.str "%a" Lang.Types.pp_error err)
    (Lang.Types.infer catalog tenv e)

let check_bool catalog tenv what e =
  let* t = infer_expr catalog tenv e in
  match t with
  | Ctype.TBool | Ctype.TAny -> Ok ()
  | _ ->
    Error
      (Fmt.str "%s must be boolean, got %a: %s" what Ctype.pp t
         (Lang.Pretty.to_string e))

let rec schema_of catalog ambient plan =
  match plan with
  | Plan.Unit -> Ok ambient
  | Plan.Table { name; var } -> begin
    match Cobj.Catalog.find name catalog with
    | Some table -> Ok (extend ambient [ (var, Cobj.Table.elt table) ])
    | None ->
      Error
        (Fmt.str "unknown extension %s (catalog: %s)" name
           (String.concat ", " (Cobj.Catalog.names catalog)))
  end
  | Plan.Select { pred; input } ->
    let* schema = schema_of catalog ambient input in
    let* () = check_bool catalog schema "selection predicate" pred in
    Ok schema
  | Plan.Join { pred; left; right }
  | Plan.Outerjoin { pred; left; right } ->
    let* ls = schema_of catalog ambient left in
    let* rs = schema_of catalog ambient right in
    let merged = extend ls (bindings_added ambient rs) in
    let* () = check_bool catalog merged "join predicate" pred in
    Ok merged
  | Plan.Semijoin { pred; left; right } | Plan.Antijoin { pred; left; right }
    ->
    let* ls = schema_of catalog ambient left in
    let* rs = schema_of catalog ambient right in
    let merged = extend ls (bindings_added ambient rs) in
    let* () = check_bool catalog merged "join predicate" pred in
    Ok ls
  | Plan.Nestjoin { pred; func; label; left; right } ->
    let* ls = schema_of catalog ambient left in
    let* rs = schema_of catalog ambient right in
    let merged = extend ls (bindings_added ambient rs) in
    let* () = check_bool catalog merged "nest join predicate" pred in
    let* tf = infer_expr catalog merged func in
    Ok (extend ls [ (label, Ctype.TSet tf) ])
  | Plan.Unnest { expr; var; input } ->
    let* schema = schema_of catalog ambient input in
    let* t = infer_expr catalog schema expr in
    begin
      match t with
      | Ctype.TSet elt | Ctype.TList elt ->
        Ok (extend schema [ (var, elt) ])
      | Ctype.TAny -> Ok (extend schema [ (var, Ctype.TAny) ])
      | _ ->
        Error
          (Fmt.str "unnest expects a collection, got %a: %s" Ctype.pp t
             (Lang.Pretty.to_string expr))
    end
  | Plan.Nest { by; label; func; nulls; input } ->
    let* schema = schema_of catalog ambient input in
    let* () =
      List.fold_left
        (fun acc v ->
          let* () = acc in
          if List.mem_assoc v schema then Ok ()
          else
            Error
              (Fmt.str "nest: unbound variable %s (schema %a)" v pp_schema
                 schema))
        (Ok ()) (by @ nulls)
    in
    let* tf = infer_expr catalog schema func in
    let kept = List.filter (fun (v, _) -> List.mem v by) schema in
    Ok (extend ambient (kept @ [ (label, Ctype.TSet tf) ]))
  | Plan.Extend { var; expr; input } ->
    let* schema = schema_of catalog ambient input in
    let* t = infer_expr catalog schema expr in
    Ok (extend schema [ (var, t) ])
  | Plan.Project { vars; input } ->
    let* schema = schema_of catalog ambient input in
    let* kept =
      List.fold_left
        (fun acc v ->
          let* kept = acc in
          match List.assoc_opt v schema with
          | Some t -> Ok ((v, t) :: kept)
          | None ->
            Error
              (Fmt.str "project: unbound variable %s (schema %a)" v pp_schema
                 schema))
        (Ok []) vars
    in
    Ok (extend ambient (List.rev kept))
  | Plan.Apply { var; subquery; input } ->
    let* schema = schema_of catalog ambient input in
    let* t = query_type catalog schema subquery in
    Ok (extend schema [ (var, t) ])
  | Plan.Union { left; right } ->
    let* ls = schema_of catalog ambient left in
    let* rs = schema_of catalog ambient right in
    (* join the operand schemas variable-wise *)
    let* joined =
      List.fold_left
        (fun acc (v, lt) ->
          let* acc = acc in
          match List.assoc_opt v rs with
          | None -> Error (Fmt.str "union: %s bound only on the left" v)
          | Some rt -> (
            match Ctype.join lt rt with
            | Some t -> Ok ((v, t) :: acc)
            | None ->
              Error
                (Fmt.str "union: %s has incompatible types %a and %a" v
                   Ctype.pp lt Ctype.pp rt)))
        (Ok []) ls
    in
    Ok (List.rev joined)

(* The bindings [inner] adds on top of [ambient]. *)
and bindings_added ambient inner =
  List.filter (fun (v, t) ->
      match List.assoc_opt v ambient with
      | Some t' -> not (Ctype.equal t t')
      | None -> true)
    inner

and query_type catalog ambient { Plan.plan; result } =
  let* schema = schema_of catalog ambient plan in
  let* t = infer_expr catalog schema result in
  Ok (Ctype.TSet t)

let query_type_exn catalog query =
  match query_type catalog [] query with
  | Ok t -> t
  | Error msg -> invalid_arg ("Algebra.Typing: " ^ msg)
