(** Minimal blocking client for the {!Daemon} wire protocol — one
    request line out, one response line back. Used by [nestql client]
    and the CI session scripts; sessions are stateful server-side, so a
    client holds its connection open across requests. *)

type t

val connect :
  ?wait_ms:int -> Daemon.bind -> (t, string) result
(** Connect to a server. [wait_ms] retries the connection (50 ms apart)
    until it succeeds or the budget elapses — for scripts that race the
    server's bind. *)

val request : t -> string -> (Engine.Json.t, string) result
(** Send one raw request line, read one response line, parse it. [Error]
    is transport-level only (EOF, I/O failure, unparseable response);
    protocol-level failures come back as [Ok] objects with
    ["ok": false]. *)

val close : t -> unit

val obj :
  ?id:int -> op:string -> (string * Engine.Json.t) list -> string
(** Build a request line: [op], optional [id], extra fields. *)
