(** A thread-safe, cost-bounded LRU map — the mechanism under both the
    plan cache (cost 1 per entry) and the result cache (cost ≈ bytes).

    All operations take one internal mutex, so a server's session threads
    can insert and look up concurrently; promotion to most-recently-used
    happens on every {!find} hit. Eviction is strict: after {!add}, the
    total cost never exceeds the capacity — an entry whose own cost
    exceeds the capacity is rejected on insert (and counted as an
    eviction, so a mis-sized cache is visible in the counters rather than
    silent). *)

type ('k, 'v) t

val create :
  ?on_evict:('k -> 'v -> unit) ->
  capacity:int ->
  cost:('k -> 'v -> int) ->
  unit ->
  ('k, 'v) t
(** [capacity] is in cost units ([cost = fun _ _ -> 1] gives an
    entry-count LRU; a byte estimator gives a byte-bounded one). Each
    entry's cost is computed once, at insert. [on_evict] fires for
    entries dropped by capacity eviction and by {!clear} — not for
    {!remove} or replacement by {!add} — while the internal lock is
    held, so it must not reenter the cache. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Promotes a hit to most-recently-used and counts a hit or a miss. *)

val mem : ('k, 'v) t -> 'k -> bool
(** No promotion, no hit/miss accounting. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert (or replace, keeping the entry most-recently-used), then evict
    least-recently-used entries until the total cost fits the capacity. *)

val remove : ('k, 'v) t -> 'k -> unit

val clear : ('k, 'v) t -> int
(** Drop everything; returns how many entries were dropped (the caller
    typically counts them as invalidations). *)

val length : ('k, 'v) t -> int
val total_cost : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

val keys : ('k, 'v) t -> 'k list
(** Most-recently-used first (for the eviction-order tests). *)

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val evictions : ('k, 'v) t -> int
