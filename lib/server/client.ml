module Json = Engine.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let sockaddr = function
  | Daemon.Unix_socket path -> Unix.ADDR_UNIX path
  | Daemon.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let connect_once bind =
  let domain =
    match bind with
    | Daemon.Unix_socket _ -> Unix.PF_UNIX
    | Daemon.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd (sockaddr bind) with
  | () ->
    Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Unix.error_message err)

let connect ?(wait_ms = 0) bind =
  let deadline = Unix.gettimeofday () +. (float_of_int wait_ms /. 1000.) in
  let rec go () =
    match connect_once bind with
    | Ok _ as ok -> ok
    | Error _ as e ->
      if Unix.gettimeofday () >= deadline then e
      else begin
        (try Unix.sleepf 0.05 with Unix.Unix_error _ -> ());
        go ()
      end
  in
  go ()

let request t line =
  match
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | reply -> (
    match Protocol.parse_json reply with
    | Ok json -> Ok json
    | Error msg -> Error (Printf.sprintf "bad response (%s): %s" msg reply))

let close t =
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let obj ?id ~op fields =
  let fields = ("op", Json.String op) :: fields in
  let fields =
    match id with Some i -> ("id", Json.Int i) :: fields | None -> fields
  in
  Json.to_string (Json.Obj fields)
