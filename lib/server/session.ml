type t = {
  id : int;
  mutable catalog : Cobj.Catalog.t;
  mutable catalog_name : string;
  mutable strategy : Core.Pipeline.strategy;
  mutable jobs : int;
  mutable requests : int;
  mutable errors : int;
}

let create ~id ~catalog ~catalog_name ~strategy ~jobs =
  { id; catalog; catalog_name; strategy; jobs; requests = 0; errors = 0 }

let catalog_of_name ~name ~seed ~scale =
  let xy =
    { Workload.Gen.default_xy with
      nx = scale;
      ny = scale;
      key_dom = max 1 (scale / 4);
      seed }
  in
  match name with
  | "xy" -> Ok (Workload.Gen.xy xy)
  | "xyz" ->
    Ok
      (Workload.Gen.xyz
         { base = xy; nz = scale; z_key_dom = max 1 (scale / 4) })
  | "company" ->
    Ok
      (Workload.Gen.company
         { Workload.Gen.default_company with
           ndepts = max 1 (scale / 10);
           company_seed = seed })
  | "table1" -> Ok (Workload.Gen.table1 ())
  | other ->
    Error
      (Printf.sprintf "unknown catalog %s (try: xy, xyz, company, table1)"
         other)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  contents

let load_catalog ?name ?file ~seed ~scale () =
  match file with
  | Some path -> (
    match read_file path with
    | contents -> (
      match Lang.Schema.catalog contents with
      | Ok catalog -> Ok (catalog, path)
      | Error msg -> Error msg)
    | exception Sys_error msg -> Error msg)
  | None ->
    let name = Option.value name ~default:"xy" in
    Result.map
      (fun catalog -> (catalog, name))
      (catalog_of_name ~name ~seed ~scale)
