(** Per-connection session state. Each accepted connection gets one
    session: its own catalog selection and execution defaults, mutated
    only by its own connection thread (the daemon publishes nothing
    session-local across threads), plus request counters for the
    close-time log line. *)

type t = {
  id : int;
  mutable catalog : Cobj.Catalog.t;
  mutable catalog_name : string;
  mutable strategy : Core.Pipeline.strategy;
  mutable jobs : int;
  mutable requests : int;  (** requests served, errors included *)
  mutable errors : int;  (** requests answered with ["ok": false] *)
}

val create :
  id:int ->
  catalog:Cobj.Catalog.t ->
  catalog_name:string ->
  strategy:Core.Pipeline.strategy ->
  jobs:int ->
  t

val catalog_of_name :
  name:string -> seed:int -> scale:int -> (Cobj.Catalog.t, string) result
(** The CLI's built-in generated catalogs ([xy], [xyz], [company],
    [table1]) — shared by [bin/nestql.ml] and the [catalog] op so the
    server offers exactly the catalogs the one-shot CLI does. *)

val load_catalog :
  ?name:string ->
  ?file:string ->
  seed:int ->
  scale:int ->
  unit ->
  (Cobj.Catalog.t * string, string) result
(** Resolve a catalog request: [file] (a catalog definition file, read
    server-side) wins over [name]; the returned string names the choice
    for logs and replies. *)
