(* Plan and result caches over Core.Pipeline — see cache.mli for the
   contract. Thread-safety comes from Lru's internal lock plus one
   mutex for the invalidation counter; the pipeline calls themselves are
   serialized by the daemon's executor lock, not here. *)

module Pipeline = Core.Pipeline

type outcome = Hit | Miss | Bypass

let outcome_name = function Hit -> "hit" | Miss -> "miss" | Bypass -> "bypass"

type cached_result = { r_value : Cobj.Value.t; r_rendered : string; r_rows : int }

type t = {
  plans : (string, Pipeline.compiled) Lru.t;
  results : (string, cached_result) Lru.t;
  admit_fraction : float;
  rewrite : bool;
  reorder : bool;
  m : Mutex.t;
  mutable invalidations : int;
}

let metric name = Obs.Metrics.incr name

(* One cost formula, shared between the LRU's accounting and the
   admission check — the two must agree or the admission bound drifts
   from what the cache actually charges. *)
let result_cost key r =
  Cobj.Value.approx_bytes r.r_value
  + String.length r.r_rendered + String.length key

let create ?(plan_capacity = 128) ?(result_capacity = 0)
    ?(admit_fraction = 0.25) ?(rewrite = true) ?(reorder = true) () =
  {
    plans =
      Lru.create ~capacity:plan_capacity
        ~cost:(fun _ _ -> 1)
        ~on_evict:(fun _ _ -> metric "server.cache.plan.evictions")
        ();
    results =
      Lru.create ~capacity:result_capacity ~cost:result_cost
        ~on_evict:(fun _ _ -> metric "server.cache.result.evictions")
        ();
    admit_fraction;
    rewrite;
    reorder;
    m = Mutex.create ();
    invalidations = 0;
  }

type reply = {
  value : Cobj.Value.t;
  rendered : string;
  rows : int;
  plan : outcome;
  result : outcome;
  digest : string;
  tree : Engine.Stats.node option;
  misest : Core.Misest.entry list;
}

type error = Parse of string | Compile of string | Runtime of string | Timeout

let ( let* ) = Result.bind

let key_of t strategy catalog expr =
  Pipeline.plan_key ~rewrite:t.rewrite ~reorder:t.reorder strategy catalog
    expr

let compile_expr t ~cache strategy catalog expr =
  let use = cache && Lru.capacity t.plans > 0 in
  if not use then
    match
      Pipeline.compile ~rewrite:t.rewrite ~reorder:t.reorder strategy catalog
        expr
    with
    | Ok compiled -> Ok (compiled, Bypass)
    | Error msg -> Error (Compile msg)
  else
    let key = key_of t strategy catalog expr in
    match Lru.find t.plans key with
    | Some compiled ->
      metric "server.cache.plan.hits";
      Ok (compiled, Hit)
    | None -> (
      metric "server.cache.plan.misses";
      match
        Pipeline.compile ~rewrite:t.rewrite ~reorder:t.reorder strategy
          catalog expr
      with
      | Ok compiled ->
        Lru.add t.plans key compiled;
        Ok (compiled, Miss)
      | Error msg -> Error (Compile msg))

let compile t ?(cache = true) strategy catalog src =
  match Lang.Parser.expr_result src with
  | Error msg -> Error (Parse msg)
  | Ok expr -> compile_expr t ~cache strategy catalog expr

let rows_of = function
  | Cobj.Value.Set l | Cobj.Value.List l -> List.length l
  | _ -> 1

let never_expired () = false

let query t ?(cache = true) ?(instrument = false) ?stats ?jobs ?bloom
    ?(deadline_expired = never_expired) strategy catalog src =
  let* expr =
    match Lang.Parser.expr_result src with
    | Ok e -> Ok e
    | Error msg -> Error (Parse msg)
  in
  let results_on = cache && Lru.capacity t.results > 0 in
  let key = key_of t strategy catalog expr in
  let digest = Pipeline.digest_of_key key in
  let cached =
    if results_on then Lru.find t.results key else None
  in
  match cached with
  | Some r ->
    metric "server.cache.result.hits";
    (* A stored result stands in for the stored plan: promote the plan
       entry so it stays warm for when the result is evicted, and report
       the request as a plan hit either way. *)
    (match Lru.find t.plans key with
    | Some _ -> metric "server.cache.plan.hits"
    | None -> ());
    Ok
      {
        value = r.r_value;
        rendered = r.r_rendered;
        rows = r.r_rows;
        plan = Hit;
        result = Hit;
        digest;
        tree = None;
        misest = [];
      }
  | None ->
    if results_on then metric "server.cache.result.misses";
    if deadline_expired () then Error Timeout
    else
      let* compiled, plan = compile_expr t ~cache strategy catalog expr in
      if deadline_expired () then Error Timeout
      else begin
        (* When a tracer is attached — or the caller asked for
           instrumentation (the daemon's slow-query log needs the
           annotated tree for self-time attribution) — run instrumented
           like `nestql run --trace`; the value is identical and [stats]
           is filled from the annotated tree. *)
        let execute () =
          if
            (instrument || Obs.Trace.enabled ())
            && compiled.Pipeline.physical <> None
          then
            match Pipeline.analyze ?jobs ?bloom catalog compiled with
            | Ok (value, tree) ->
              (match stats with
              | Some s -> Engine.Stats.sum_into s tree
              | None -> ());
              (value, Some tree)
            | Error msg -> raise (Cobj.Value.Type_error msg)
          else (Pipeline.execute ?stats ?jobs ?bloom catalog compiled, None)
        in
        match execute () with
        | value, tree ->
          let misest =
            (* Shredded annotation trees mirror the flat queries, not
               the nest-join plan — misestimation pairing does not
               apply (same rule as Pipeline.render_analysis). *)
            match tree, compiled.Pipeline.physical, compiled.Pipeline.shredded
            with
            | Some tr, Some pq, None -> Core.Misest.of_query catalog pq tr
            | _ -> []
          in
          let rendered = Fmt.str "%a" Cobj.Value.pp value in
          let rows = rows_of value in
          (* Admission policy: a result costing more than admit_fraction
             of the byte budget would evict most of the working set for
             one entry of dubious reuse value — serve it uncached. *)
          (if results_on then
             let entry =
               { r_value = value; r_rendered = rendered; r_rows = rows }
             in
             let budget =
               t.admit_fraction *. float_of_int (Lru.capacity t.results)
             in
             if float_of_int (result_cost key entry) > budget then
               metric "server.result_cache.skipped_large"
             else Lru.add t.results key entry);
          Ok
            {
              value;
              rendered;
              rows;
              plan;
              result = (if results_on then Miss else Bypass);
              digest;
              tree;
              misest;
            }
        | exception Cobj.Value.Type_error msg ->
          Error (Runtime ("runtime error: " ^ msg))
        | exception Lang.Interp.Undefined msg ->
          Error (Runtime ("undefined: " ^ msg))
      end

let invalidate_results t =
  let dropped = Lru.clear t.results in
  Mutex.lock t.m;
  t.invalidations <- t.invalidations + dropped;
  Mutex.unlock t.m;
  if dropped > 0 then
    Obs.Metrics.incr ~by:dropped "server.cache.result.invalidations";
  dropped

let plan_entries t = Lru.length t.plans
let result_entries t = Lru.length t.results
let result_bytes t = Lru.total_cost t.results
let plan_hits t = Lru.hits t.plans
let plan_misses t = Lru.misses t.plans
let plan_evictions t = Lru.evictions t.plans
let result_hits t = Lru.hits t.results
let result_misses t = Lru.misses t.results
let result_evictions t = Lru.evictions t.results

let invalidations t =
  Mutex.lock t.m;
  let n = t.invalidations in
  Mutex.unlock t.m;
  n
