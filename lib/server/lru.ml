(* Cost-bounded LRU: hash table for lookup, doubly-linked list for
   recency order (head = most recent). One mutex guards everything — the
   operations are O(1) pointer surgery plus the caller's cost function,
   so the lock is never held long. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable cost : int;
  mutable prev : ('k, 'v) node option; (* towards the MRU head *)
  mutable next : ('k, 'v) node option; (* towards the LRU tail *)
}

type ('k, 'v) t = {
  m : Mutex.t;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable total : int;
  capacity : int;
  cost : 'k -> 'v -> int;
  on_evict : 'k -> 'v -> unit;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(on_evict = fun _ _ -> ()) ~capacity ~cost () =
  {
    m = Mutex.create ();
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    total = 0;
    capacity = max 0 capacity;
    cost;
    on_evict;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* List surgery (lock held). *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let drop t n ~evicted =
  unlink t n;
  Hashtbl.remove t.tbl n.key;
  t.total <- t.total - n.cost;
  if evicted then begin
    t.evictions <- t.evictions + 1;
    t.on_evict n.key n.value
  end

let rec evict_to_fit t =
  if t.total > t.capacity then
    match t.tail with
    | None -> () (* total > capacity with no entries cannot happen *)
    | Some lru ->
      drop t lru ~evicted:true;
      evict_to_fit t

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some n ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_front t n;
        Some n.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let mem t k = locked t (fun () -> Hashtbl.mem t.tbl k)

let add t k v =
  locked t (fun () ->
      let c = t.cost k v in
      if c > t.capacity then begin
        (* Too big to ever fit: reject it (and drop any smaller entry it
           replaces) instead of evicting every resident entry first. One
           eviction tick makes the mis-sized insert visible. *)
        (match Hashtbl.find_opt t.tbl k with
        | Some n -> drop t n ~evicted:false
        | None -> ());
        t.evictions <- t.evictions + 1
      end
      else begin
        (match Hashtbl.find_opt t.tbl k with
        | Some n ->
          t.total <- t.total - n.cost + c;
          n.value <- v;
          n.cost <- c;
          unlink t n;
          push_front t n
        | None ->
          let n =
            { key = k; value = v; cost = c; prev = None; next = None }
          in
          Hashtbl.add t.tbl k n;
          t.total <- t.total + c;
          push_front t n);
        evict_to_fit t
      end)

let remove t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some n -> drop t n ~evicted:false
      | None -> ())

let clear t =
  locked t (fun () ->
      let n = Hashtbl.length t.tbl in
      let rec pop () =
        match t.tail with
        | Some lru ->
          drop t lru ~evicted:false;
          t.on_evict lru.key lru.value;
          pop ()
        | None -> ()
      in
      pop ();
      n)

let length t = locked t (fun () -> Hashtbl.length t.tbl)
let total_cost t = locked t (fun () -> t.total)
let capacity t = t.capacity

let keys t =
  locked t (fun () ->
      let rec walk acc = function
        | Some n -> walk (n.key :: acc) n.next
        | None -> List.rev acc
      in
      walk [] t.head)

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)
