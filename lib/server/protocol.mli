(** The wire protocol of [nestql serve]: one JSON object per line in each
    direction, UTF-8, '\n'-terminated. See docs/SERVER.md for the full
    request/response schema and error-code catalog.

    Requests: [{"op": "query" | "catalog" | "metrics" | "metrics_prom"
    | "ping" | "shutdown", "id": <int?>, ...op fields}]. Responses echo
    [id] and carry ["ok": true] with op-specific payload, or
    ["ok": false] with [{"error": {"code", "message"}}]. *)

val parse_json : string -> (Engine.Json.t, string) result
(** Strict parser for the protocol's JSON subset: objects, arrays,
    strings (with \-escapes incl. \uXXXX), numbers, booleans, null.
    Rejects trailing garbage. Numbers without fraction/exponent parse as
    [Int], others as [Float]. *)

val member : string -> Engine.Json.t -> Engine.Json.t option
(** Object field lookup; [None] on absent field or non-object. *)

(** {1 Requests} *)

type query_req = {
  q : string;
  strategy : Core.Pipeline.strategy option;  (** [None]: session default *)
  jobs : int option;
  bloom : bool;
  use_cache : bool;  (** [false] bypasses plan and result caches *)
  timeout_ms : int option;  (** overrides the server default *)
}

type catalog_req = {
  name : string option;  (** built-in generator name *)
  file : string option;  (** server-side catalog definition file *)
  seed : int option;
  scale : int option;
}

type op =
  | Query of query_req
  | Catalog of catalog_req
  | Metrics
  | Metrics_prom  (** Prometheus exposition text of the registry *)
  | Ping
  | Shutdown

type request = { id : int option; op : op }

val request_of_line : string -> (request, string * string) result
(** Decode one request line. [Error (code, message)] uses the protocol
    error codes: ["parse_error"] for malformed JSON or a non-object,
    ["bad_request"] for an unknown op or ill-typed fields. *)

(** {1 Responses} *)

val ok : id:int option -> (string * Engine.Json.t) list -> string
(** [{"id": .., "ok": true, <fields>}] — compact, single line, no
    trailing newline. [id] is omitted when the request carried none. *)

val error : id:int option -> code:string -> message:string -> string
(** [{"id": .., "ok": false, "error": {"code", "message"}}]. *)
