(* Line-JSON wire protocol: a strict recursive-descent JSON parser (the
   engine's Json module only prints) plus request decoding and response
   building. Error messages are deterministic — the cram suite asserts
   them verbatim. *)

module Json = Engine.Json

(* --- JSON parsing ------------------------------------------------------- *)

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    match v with Some v -> v | None -> fail "invalid \\u escape"
  in
  let utf8 buf cp =
    (* Minimal UTF-8 encoder for \uXXXX escapes (surrogate pairs are
       rejoined by the caller before reaching here). *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            let cp = hex4 () in
            let cp =
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                (* high surrogate: require the low half *)
                expect '\\';
                expect 'u';
                let lo = hex4 () in
                if lo < 0xDC00 || lo > 0xDFFF then fail "lone surrogate";
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else if cp >= 0xDC00 && cp <= 0xDFFF then fail "lone surrogate"
              else cp
            in
            utf8 buf cp
          | _ -> fail "invalid escape");
          loop ())
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_int = ref true in
    if peek () = Some '-' then advance ();
    let digits () =
      let had = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9') ->
          had := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !had then fail "invalid number"
    in
    digits ();
    if peek () = Some '.' then begin
      is_int := false;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_int := false;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_int then
      match int_of_string_opt text with
      | Some i -> Json.Int i
      | None -> Json.Float (float_of_string text)
    else Json.Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Json.Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Json.Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Json.List []
      end
      else begin
        let rec elts acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elts (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Json.List (elts [])
      end
    | Some '"' -> Json.String (parse_string ())
    | Some 't' -> literal "true" (Json.Bool true)
    | Some 'f' -> literal "false" (Json.Bool false)
    | Some 'n' -> literal "null" Json.Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Json.Obj fields -> List.assoc_opt key fields
  | _ -> None

(* --- request decoding --------------------------------------------------- *)

type query_req = {
  q : string;
  strategy : Core.Pipeline.strategy option;
  jobs : int option;
  bloom : bool;
  use_cache : bool;
  timeout_ms : int option;
}

type catalog_req = {
  name : string option;
  file : string option;
  seed : int option;
  scale : int option;
}

type op =
  | Query of query_req
  | Catalog of catalog_req
  | Metrics
  | Metrics_prom
  | Ping
  | Shutdown

type request = { id : int option; op : op }

exception Reject of string * string

let reject code fmt = Printf.ksprintf (fun m -> raise (Reject (code, m))) fmt

let as_string ~field = function
  | Json.String s -> s
  | _ -> reject "bad_request" "field %S must be a string" field

let as_int ~field = function
  | Json.Int i -> i
  | _ -> reject "bad_request" "field %S must be an integer" field

let as_bool ~field = function
  | Json.Bool b -> b
  | _ -> reject "bad_request" "field %S must be a boolean" field

let opt f ~field doc = Option.map (f ~field) (member field doc)

let strategy_of_name name =
  List.find_opt
    (fun st -> String.equal (Core.Pipeline.strategy_name st) name)
    Core.Pipeline.all_strategies

let request_of_line line =
  match parse_json line with
  | Error msg -> Error ("parse_error", msg)
  | Ok (Json.Obj _ as doc) -> (
    try
      let id = opt as_int ~field:"id" doc in
      let op =
        match member "op" doc with
        | None -> reject "bad_request" "missing field \"op\""
        | Some op_json -> (
          match as_string ~field:"op" op_json with
          | "ping" -> Ping
          | "metrics" -> Metrics
          | "metrics_prom" -> Metrics_prom
          | "shutdown" -> Shutdown
          | "query" ->
            let q =
              match member "q" doc with
              | None -> reject "bad_request" "query needs field \"q\""
              | Some v -> as_string ~field:"q" v
            in
            let strategy =
              match opt as_string ~field:"strategy" doc with
              | None -> None
              | Some name -> (
                match strategy_of_name name with
                | Some s -> Some s
                | None -> reject "bad_request" "unknown strategy %S" name)
            in
            Query
              {
                q;
                strategy;
                jobs = opt as_int ~field:"jobs" doc;
                bloom =
                  Option.value (opt as_bool ~field:"bloom" doc) ~default:true;
                use_cache =
                  Option.value (opt as_bool ~field:"cache" doc) ~default:true;
                timeout_ms = opt as_int ~field:"timeout_ms" doc;
              }
          | "catalog" ->
            Catalog
              {
                name = opt as_string ~field:"name" doc;
                file = opt as_string ~field:"file" doc;
                seed = opt as_int ~field:"seed" doc;
                scale = opt as_int ~field:"scale" doc;
              }
          | other -> reject "bad_request" "unknown op %S" other)
      in
      Ok { id; op }
    with Reject (code, msg) -> Error (code, msg))
  | Ok _ -> Error ("parse_error", "request must be a JSON object")

(* --- responses ---------------------------------------------------------- *)

let with_id id fields =
  match id with Some i -> ("id", Json.Int i) :: fields | None -> fields

let ok ~id fields =
  Json.to_string (Json.Obj (with_id id (("ok", Json.Bool true) :: fields)))

let error ~id ~code ~message =
  Json.to_string
    (Json.Obj
       (with_id id
          [
            ("ok", Json.Bool false);
            ( "error",
              Json.Obj
                [
                  ("code", Json.String code); ("message", Json.String message);
                ] );
          ]))
