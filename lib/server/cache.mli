(** The server's amortization layer: a plan cache and an optional
    byte-bounded result cache in front of [Core.Pipeline].

    Both caches are keyed on {!Core.Pipeline.plan_key} — strategy ⊕
    catalog statistics version ⊕ normalized AST — so a catalog change
    (a new statistics version, {!Cobj.Stats.version}) makes every stale
    entry unreachable; {!invalidate_results} additionally drops the
    result entries eagerly so their memory is returned at the moment of
    the change, not at eviction time.

    Correctness contract (proven by the qcheck differential oracle in
    [test/test_server.ml]): for any query, cached and uncached execution
    produce byte-identical values, and executions reached through a
    plan-cache hit fill [Engine.Stats] identically to a fresh compile —
    only the cache counters (kept here and in [Obs.Metrics], never in
    [Engine.Stats]) differ. A result-cache hit replays the stored value
    without executing at all.

    Metrics (when the registry is enabled): [server.cache.plan.hits /
    misses / evictions], [server.cache.result.hits / misses /
    evictions / invalidations] and [server.result_cache.skipped_large]
    (results denied admission by the size policy). *)

type outcome =
  | Hit
  | Miss
  | Bypass  (** caching skipped: per-request opt-out, or cache disabled *)

val outcome_name : outcome -> string
(** ["hit"], ["miss"], ["bypass"]. *)

type t

val create :
  ?plan_capacity:int ->
  ?result_capacity:int ->
  ?admit_fraction:float ->
  ?rewrite:bool ->
  ?reorder:bool ->
  unit ->
  t
(** [plan_capacity] (default 128) is in plans; 0 disables plan caching.
    [result_capacity] (default 0 — disabled) is in approximate bytes
    ({!Cobj.Value.approx_bytes} plus the rendered text).
    [admit_fraction] (default 0.25) is the admission policy: a result
    whose cost exceeds this fraction of [result_capacity] is served but
    never cached (it would evict most of the working set for one entry),
    counted by the [server.result_cache.skipped_large] metric. [rewrite]
    / [reorder] are baked into the key and passed to every compile. *)

type reply = {
  value : Cobj.Value.t;
  rendered : string;  (** [Cobj.Value.pp], one line, newline-free *)
  rows : int;  (** collection cardinality, 1 for scalar results *)
  plan : outcome;
  result : outcome;
  digest : string;
      (** {!Core.Pipeline.digest_of_key} of the cache key — the
          slow-query log's plan identifier *)
  tree : Engine.Stats.node option;
      (** the filled EXPLAIN ANALYZE tree when the query ran
          instrumented ([instrument:true] or a tracer attached); [None]
          on a result-cache replay or a plain execution *)
  misest : Core.Misest.entry list;
      (** misestimation report (worst first) when [tree] was paired
          with a nest-join physical plan; [[]] otherwise *)
}

type error =
  | Parse of string
  | Compile of string
  | Runtime of string
  | Timeout

val query :
  t ->
  ?cache:bool ->
  ?instrument:bool ->
  ?stats:Engine.Stats.t ->
  ?jobs:int ->
  ?bloom:bool ->
  ?deadline_expired:(unit -> bool) ->
  Core.Pipeline.strategy ->
  Cobj.Catalog.t ->
  string ->
  (reply, error) result
(** Parse, then serve from the result cache, else compile (through the
    plan cache) and execute. [cache:false] bypasses both caches for this
    request without touching them. [instrument:true] (default false)
    forces the EXPLAIN ANALYZE execution path when a physical plan
    exists, filling [reply.tree] and [reply.misest] — the daemon's
    slow-query log runs this way; the result value is identical.
    [deadline_expired] is consulted at the phase boundaries (before
    compile and before execute) — the timeout is cooperative, a running
    operator is never interrupted. [stats] is filled only when the
    query actually executes. *)

val compile :
  t ->
  ?cache:bool ->
  Core.Pipeline.strategy ->
  Cobj.Catalog.t ->
  string ->
  (Core.Pipeline.compiled * outcome, error) result
(** The plan-cache half of {!query} alone. *)

val invalidate_results : t -> int
(** Drop every cached result (the catalog changed); returns the number of
    entries dropped and counts them as
    [server.cache.result.invalidations]. *)

(** {2 Introspection (tests, benches, the [metrics] op)} *)

val plan_entries : t -> int
val result_entries : t -> int
val result_bytes : t -> int
val plan_hits : t -> int
val plan_misses : t -> int
val plan_evictions : t -> int
val result_hits : t -> int
val result_misses : t -> int
val result_evictions : t -> int
val invalidations : t -> int
