(* The nestql server. See daemon.mli for the concurrency and shutdown
   model; this file is deliberately plain Unix + threads: a select-based
   accept loop (select returns on its timeout, so the stop flag never
   needs to interrupt a blocking accept), a systhread per connection, and
   one executor mutex in front of the engine's domain pool. *)

module Pipeline = Core.Pipeline
module Json = Engine.Json

type bind = Unix_socket of string | Tcp of int

type config = {
  bind : bind;
  catalog : Cobj.Catalog.t;
  catalog_name : string;
  strategy : Pipeline.strategy;
  jobs : int;
  plan_capacity : int;
  result_capacity : int;
  timeout_ms : int option;
  slow_ms : int option;
  http_port : int option;
  quiet : bool;
}

let default_config =
  {
    bind = Unix_socket "nestql.sock";
    catalog = Workload.Gen.xy { Workload.Gen.default_xy with seed = 42 };
    catalog_name = "xy";
    strategy = Pipeline.Decorrelated;
    jobs = 1;
    plan_capacity = 128;
    result_capacity = 4 * 1024 * 1024;
    timeout_ms = None;
    slow_ms = None;
    http_port = None;
    quiet = false;
  }

type state = {
  config : config;
  cache : Cache.t;
  exec : Mutex.t; (* serializes compile + execute onto the domain pool *)
  stop : bool Atomic.t;
  listener : Unix.file_descr;
  sessions : (int, Unix.file_descr) Hashtbl.t; (* live connection fds *)
  sessions_m : Mutex.t;
  threads : Thread.t list ref; (* joined at shutdown *)
  next_session : int Atomic.t;
}

let log state fmt =
  if state.config.quiet then Printf.ifprintf stderr fmt
  else Printf.eprintf fmt

let now_ns () = Monotonic_clock.now ()
let ms_since t0 = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6

(* --- per-request work --------------------------------------------------- *)

let error_parts = function
  | Cache.Parse msg -> ("compile_error", "parse error: " ^ msg)
  | Cache.Compile msg -> ("compile_error", msg)
  | Cache.Runtime msg -> ("runtime_error", msg)
  | Cache.Timeout -> ("timeout", "request deadline expired before execution")

let cache_json reply =
  Json.Obj
    [
      ("plan", Json.String (Cache.outcome_name reply.Cache.plan));
      ("result", Json.String (Cache.outcome_name reply.Cache.result));
    ]

(* Compact single-field summaries for the slow-query log: the top-5
   self-time operators and the top-3 misestimates, each one greppable
   string rather than nested JSON (Qlog lines are flat). *)
let hot_summary = function
  | None -> ""
  | Some tree ->
    Engine.Profile.top ~k:5 (Engine.Profile.of_node tree)
    |> List.map (fun (r : Engine.Profile.row) ->
           Printf.sprintf "%s=%.3fms" r.Engine.Profile.op
             (Int64.to_float r.Engine.Profile.self_ns /. 1e6))
    |> String.concat ","

let misest_summary entries =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take 3 entries
  |> List.map (fun (e : Core.Misest.entry) ->
         Printf.sprintf "%.1fx-%s %s" e.Core.Misest.factor
           (if e.Core.Misest.under then "under" else "over")
           e.Core.Misest.op)
  |> String.concat ";"

(* One structured line per offending query — enough to diagnose it from
   the log alone: which plan (digest), how it was served (cache
   outcomes), where the time went (hot), and whether the optimizer was
   working from bad estimates (misest). *)
let emit_slow_line (session : Session.t) ~strategy ~jobs ~threshold_ms ~ms
    (reply : Cache.reply) =
  Obs.Qlog.emit
    [
      ("event", Obs.Trace.Str "slow.query");
      ("session", Obs.Trace.Int session.id);
      ("strategy", Obs.Trace.Str (Pipeline.strategy_name strategy));
      ("jobs", Obs.Trace.Int jobs);
      ("rows", Obs.Trace.Int reply.Cache.rows);
      ("ms", Obs.Trace.Num ms);
      ("threshold_ms", Obs.Trace.Int threshold_ms);
      ("plan_digest", Obs.Trace.Str reply.Cache.digest);
      ("plan_cache", Obs.Trace.Str (Cache.outcome_name reply.Cache.plan));
      ("result_cache", Obs.Trace.Str (Cache.outcome_name reply.Cache.result));
      ("hot", Obs.Trace.Str (hot_summary reply.Cache.tree));
      ("misest", Obs.Trace.Str (misest_summary reply.Cache.misest));
    ]

let do_query state (session : Session.t) ~id (q : Protocol.query_req) =
  let strategy = Option.value q.Protocol.strategy ~default:session.strategy in
  let jobs = Option.value q.Protocol.jobs ~default:session.jobs in
  let timeout_ms =
    match q.Protocol.timeout_ms with
    | Some ms -> Some ms
    | None -> state.config.timeout_ms
  in
  let t0 = now_ns () in
  let deadline_expired () =
    match timeout_ms with
    | None -> false
    | Some ms -> ms_since t0 > float_of_int ms
  in
  Obs.Metrics.add_gauge "server.queue.depth" 1.;
  Mutex.lock state.exec;
  Obs.Metrics.add_gauge "server.queue.depth" (-1.);
  let outcome =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock state.exec)
      (fun () ->
        (* With a slow-query threshold configured, run instrumented so a
           line over the threshold can carry self-time attribution (the
           result value is identical either way). *)
        Cache.query state.cache ~cache:q.Protocol.use_cache
          ~instrument:(state.config.slow_ms <> None)
          ~jobs ~bloom:q.Protocol.bloom ~deadline_expired strategy
          session.catalog q.Protocol.q)
  in
  let ms = ms_since t0 in
  Obs.Metrics.observe "server.request.us" (int_of_float (ms *. 1000.));
  (match outcome with
  | Ok reply ->
    (* The scrape endpoint's latency histogram, labeled by strategy and
       how the caches served the request (errors are counted separately
       by server.request.errors). *)
    Obs.Metrics.observe
      (Obs.Metrics.labeled "server.query.duration_us"
         [
           ("strategy", Pipeline.strategy_name strategy);
           ("plan_cache", Cache.outcome_name reply.Cache.plan);
           ("result_cache", Cache.outcome_name reply.Cache.result);
         ])
      (int_of_float (ms *. 1000.));
    Obs.Qlog.emit
      [
        ("event", Obs.Trace.Str "serve.query");
        ("session", Obs.Trace.Int session.id);
        ("strategy", Obs.Trace.Str (Pipeline.strategy_name strategy));
        ("jobs", Obs.Trace.Int jobs);
        ("rows", Obs.Trace.Int reply.Cache.rows);
        ("ms", Obs.Trace.Num ms);
        ("plan_cache", Obs.Trace.Str (Cache.outcome_name reply.Cache.plan));
        ( "result_cache",
          Obs.Trace.Str (Cache.outcome_name reply.Cache.result) )
      ];
    (match state.config.slow_ms with
    | Some threshold_ms when ms >= float_of_int threshold_ms ->
      Obs.Metrics.incr "server.slow_queries";
      emit_slow_line session ~strategy ~jobs ~threshold_ms ~ms reply
    | _ -> ())
  | Error _ -> ());
  match outcome with
  | Ok reply ->
    Ok
      (Protocol.ok ~id
         [
           ("result", Json.String reply.Cache.rendered);
           ("rows", Json.Int reply.Cache.rows);
           ("ms", Json.Float ms);
           ("strategy", Json.String (Pipeline.strategy_name strategy));
           ("cache", cache_json reply);
         ])
  | Error e ->
    let code, message = error_parts e in
    if e = Cache.Timeout then Obs.Metrics.incr "server.request.timeouts";
    Error (code, message)

let do_catalog state (session : Session.t) ~id (c : Protocol.catalog_req) =
  let seed = Option.value c.Protocol.seed ~default:42 in
  let scale = Option.value c.Protocol.scale ~default:100 in
  match
    Session.load_catalog ?name:c.Protocol.name ?file:c.Protocol.file ~seed
      ~scale ()
  with
  | Error msg -> Error ("bad_request", msg)
  | Ok (catalog, name) ->
    session.catalog <- catalog;
    session.catalog_name <- name;
    (* The new statistics version keys all future plans; the old results
       are flushed eagerly so a changed catalog frees its memory now. *)
    let dropped = Cache.invalidate_results state.cache in
    Obs.Metrics.incr "server.catalog.changes";
    Ok
      (Protocol.ok ~id
         [
           ("catalog", Json.String name);
           ("tables", Json.List
              (List.map (fun n -> Json.String n)
                 (Cobj.Catalog.names catalog)));
           ("stats_version", Json.Int (Cobj.Stats.version catalog));
           ("results_invalidated", Json.Int dropped);
         ])

let do_metrics ~id =
  Ok (Protocol.ok ~id [ ("metrics", Engine.Obs_json.metrics ()) ])

let do_metrics_prom ~id =
  Ok (Protocol.ok ~id [ ("prom", Json.String (Obs.Prom.page ())) ])

(* --- shutdown ----------------------------------------------------------- *)

let request_stop state =
  if Atomic.compare_and_set state.stop false true then begin
    (* Idle sessions are blocked reading their socket: shut the read half
       down so they see EOF and unwind; in-flight requests keep their
       write half and finish their reply. The listener needs no nudge —
       the accept loop polls the stop flag through select's timeout. *)
    Mutex.lock state.sessions_m;
    Hashtbl.iter
      (fun _ fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      state.sessions;
    Mutex.unlock state.sessions_m
  end

(* --- sessions ----------------------------------------------------------- *)

let op_name = function
  | Protocol.Ping -> "ping"
  | Protocol.Metrics -> "metrics"
  | Protocol.Metrics_prom -> "metrics_prom"
  | Protocol.Shutdown -> "shutdown"
  | Protocol.Query _ -> "query"
  | Protocol.Catalog _ -> "catalog"

let process state (session : Session.t) decoded =
  match decoded with
  | Error (code, message) -> (None, Error (code, message))
  | Ok { Protocol.id; op } -> (
    match op with
    | Protocol.Ping ->
      (id, Ok (Protocol.ok ~id [ ("result", Json.String "pong") ]))
    | Protocol.Metrics -> (id, do_metrics ~id)
    | Protocol.Metrics_prom -> (id, do_metrics_prom ~id)
    | Protocol.Shutdown ->
      (id, Ok (Protocol.ok ~id [ ("result", Json.String "bye") ]))
    | Protocol.Query q -> (id, do_query state session ~id q)
    | Protocol.Catalog c -> (id, do_catalog state session ~id c))

let handle_session state fd =
  let session =
    Session.create
      ~id:(Atomic.fetch_and_add state.next_session 1)
      ~catalog:state.config.catalog ~catalog_name:state.config.catalog_name
      ~strategy:state.config.strategy ~jobs:state.config.jobs
  in
  Mutex.lock state.sessions_m;
  Hashtbl.replace state.sessions session.id fd;
  Mutex.unlock state.sessions_m;
  Obs.Metrics.incr "server.sessions.opened";
  Obs.Metrics.add_gauge "server.sessions.active" 1.;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    if Atomic.get state.stop then ()
    else
      match input_line ic with
      | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
      | line when String.trim line = "" -> loop ()
      | line ->
        session.requests <- session.requests + 1;
        Obs.Metrics.incr "server.requests";
        let decoded = Protocol.request_of_line line in
        let opname =
          match decoded with
          | Error _ -> "invalid"
          | Ok { Protocol.op; _ } -> op_name op
        in
        let id, outcome =
          Obs.Trace.span ~cat:"request" opname
            ~args:(fun () ->
              [
                ("op", Obs.Trace.Str opname);
                ("session", Obs.Trace.Int session.id);
                ("request", Obs.Trace.Int session.requests);
              ])
            (fun () -> process state session decoded)
        in
        let shutdown_after = opname = "shutdown" && Result.is_ok outcome in
        (match outcome with
        | Ok reply -> respond reply
        | Error (code, message) ->
          session.errors <- session.errors + 1;
          Obs.Metrics.incr "server.request.errors";
          respond (Protocol.error ~id ~code ~message));
        if shutdown_after then request_stop state else loop ()
  in
  (match loop () with () -> () | exception _ -> ());
  Mutex.lock state.sessions_m;
  Hashtbl.remove state.sessions session.id;
  Mutex.unlock state.sessions_m;
  Obs.Metrics.add_gauge "server.sessions.active" (-1.);
  Obs.Metrics.incr "server.sessions.closed";
  log state "nestql: session %d closed (%d request(s), %d error(s))\n%!"
    session.id session.requests session.errors;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- listener ----------------------------------------------------------- *)

let bind_listener = function
  | Unix_socket path ->
    (* A stale socket file from a crashed server blocks the bind; remove
       it only if it is actually a socket (never clobber a regular
       file). *)
    (match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
    | _ -> ()
    | exception Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    fd
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    fd

let bind_name = function
  | Unix_socket path -> path
  | Tcp port -> Printf.sprintf "localhost:%d" port

let serve config =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  Obs.Metrics.enable ();
  match bind_listener config.bind with
  | exception Unix.Unix_error (err, _, _) ->
    Printf.eprintf "nestql: cannot bind %s: %s\n%!" (bind_name config.bind)
      (Unix.error_message err);
    1
  | listener ->
    Unix.listen listener 64;
    let stop_flag = Atomic.make false in
    let http =
      match config.http_port with
      | None -> Ok None
      | Some port -> (
        match
          Http.start ~port ~healthy:(fun () -> not (Atomic.get stop_flag))
        with
        | Ok h -> Ok (Some h)
        | Error msg -> Error msg)
    in
    match http with
    | Error msg ->
      Printf.eprintf "nestql: %s\n%!" msg;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      (match config.bind with
      | Unix_socket path -> (
        try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ());
      1
    | Ok http ->
    let state =
      {
        config;
        cache =
          Cache.create ~plan_capacity:config.plan_capacity
            ~result_capacity:config.result_capacity ();
        exec = Mutex.create ();
        stop = stop_flag;
        listener;
        sessions = Hashtbl.create 16;
        sessions_m = Mutex.create ();
        threads = ref [];
        next_session = Atomic.make 1;
      }
    in
    let on_signal _ = request_stop state in
    (try
       Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
       Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
     with Invalid_argument _ | Sys_error _ -> ());
    log state "nestql: serving on %s (jobs=%d, plan cache=%d, result \
               cache=%dB)\n%!"
      (bind_name config.bind) config.jobs config.plan_capacity
      config.result_capacity;
    (match http with
    | Some h -> log state "nestql: http metrics on localhost:%d\n%!" (Http.port h)
    | None -> ());
    (* Time-series snapshots for the sliding-window rate queries: one
       per minute, taken from the accept loop (its select timeout makes
       it the natural low-frequency ticker), plus a baseline at start. *)
    let last_window = ref neg_infinity in
    let window_tick () =
      let now = Unix.gettimeofday () in
      if now -. !last_window >= 60. then begin
        Obs.Metrics.window_record ~at_s:now;
        last_window := now
      end
    in
    let rec accept_loop () =
      if not (Atomic.get state.stop) then begin
        window_tick ();
        (match Unix.select [ listener ] [] [] 0.2 with
        | [], _, _ -> ()
        | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true listener with
          | fd, _addr ->
            if Atomic.get state.stop then Unix.close fd
            else
              state.threads :=
                Thread.create (handle_session state) fd :: !(state.threads)
          | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
          | exception Unix.Unix_error _ -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        accept_loop ()
      end
    in
    accept_loop ();
    (try Unix.close listener with Unix.Unix_error _ -> ());
    (match config.bind with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    (* Sessions were nudged by [request_stop]; wait for every connection
       thread to unwind so their replies are fully flushed. *)
    List.iter Thread.join !(state.threads);
    (match http with Some h -> Http.stop h | None -> ());
    log state "nestql: shutdown complete\n%!";
    0
