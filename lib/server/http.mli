(** Minimal HTTP listener for the server's scrape endpoint
    ([--http-metrics PORT]).

    Serves exactly two routes on loopback, HTTP/1.0, one request per
    connection:
    - [GET /metrics] — Prometheus exposition text of the {!Obs.Metrics}
      registry ({!Obs.Prom.page}), content type
      {!Obs.Prom.content_type};
    - [GET /healthz] — readiness probe: [200 ok] while [healthy ()]
      holds, [503] once shutdown begins.

    Unknown paths answer 404, non-GET methods 405. The accept loop runs
    on its own systhread (one more per in-flight connection) and polls
    a stop flag every 200 ms, mirroring the daemon's listener. *)

type t

val start : port:int -> healthy:(unit -> bool) -> (t, string) result
(** Bind loopback:[port] (0 picks an ephemeral port) and start the
    accept thread. [Error] with a diagnostic when the port cannot be
    bound. *)

val port : t -> int
(** The actually bound port (useful with [port:0] in tests). *)

val stop : t -> unit
(** Stop accepting, join the accept thread, close the listening
    socket. In-flight connection threads finish on their own. *)
