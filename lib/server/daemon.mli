(** The [nestql serve] daemon: a long-running server speaking the
    line-JSON protocol of {!Protocol} over a Unix-domain or localhost TCP
    socket, amortizing the optimizer across requests through
    {!Cache}.

    Concurrency model: one listener loop on the calling thread, one
    systhread per accepted connection (sessions are concurrent — parse,
    I/O and cache lookups interleave freely), and one process-wide
    executor lock serializing compile + execute. The lock keeps the
    engine's domain pool on its single-orchestrator contract
    ({!Engine.Pool.run} is called from one thread at a time); inside it,
    each query still fans out over [jobs] domains, so the pool provides
    the parallelism and the cache provides the amortization. Gauge
    [server.queue.depth] counts requests waiting on the lock.

    Timeouts are cooperative: the deadline is checked when the request
    reaches the executor and again between compile and execute — a
    running operator is never interrupted. A request whose deadline has
    already expired (e.g. [timeout_ms = 0], or a long queue wait) is
    answered with the ["timeout"] error code deterministically.

    Graceful shutdown — on the [shutdown] op or SIGTERM/SIGINT: stop
    accepting, nudge every idle session with [Unix.shutdown] (their next
    read sees EOF), let in-flight requests finish, join all session
    threads, and return exit code 0. *)

type bind = Unix_socket of string | Tcp of int

type config = {
  bind : bind;
  catalog : Cobj.Catalog.t;  (** initial catalog of every new session *)
  catalog_name : string;
  strategy : Core.Pipeline.strategy;  (** session default strategy *)
  jobs : int;  (** default execution width (per-request override) *)
  plan_capacity : int;  (** plans; 0 disables the plan cache *)
  result_capacity : int;  (** approximate bytes; 0 disables *)
  timeout_ms : int option;  (** default per-request deadline *)
  slow_ms : int option;
      (** slow-query log threshold: queries at or over this many
          milliseconds emit one ["slow.query"] {!Obs.Qlog} line with
          plan digest, cache outcomes, top self-time operators and the
          worst misestimates. Queries run instrumented when set (the
          log needs the annotated tree); results are identical. *)
  http_port : int option;
      (** start an {!Http} scrape listener on loopback at this port
          ([GET /metrics], [GET /healthz]); 0 picks an ephemeral
          port *)
  quiet : bool;  (** suppress the stderr lifecycle lines *)
}

val default_config : config
(** [xy] catalog (seed 42, scale 100), strategy [Decorrelated], jobs 1,
    128-plan cache, 4 MiB result cache, no timeout, no slow-query log,
    no http listener, binds ["nestql.sock"]. *)

val serve : config -> int
(** Run until shutdown; returns the process exit code (0 on graceful
    shutdown, 1 when the socket could not be bound). Enables
    {!Obs.Metrics}; emits one {!Obs.Trace} span per request (category
    ["request"]) and one {!Obs.Qlog} line per query when those sinks are
    active. *)
