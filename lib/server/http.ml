(* Minimal HTTP listener for the scrape endpoint: GET /metrics serves
   the Prometheus exposition of the Obs.Metrics registry, GET /healthz
   answers the readiness probe, everything else is 404. HTTP/1.0
   semantics — one request per connection, Connection: close — which is
   all a scraper needs and keeps the loop free of keep-alive state.

   Same shape as the daemon's listener: a select loop with a short
   timeout polling the stop flag, one short-lived thread per accepted
   connection (a stalled scraper must not block the next one). Binds
   loopback only: the metrics page is operational data, not a public
   endpoint. *)

type t = {
  sock : Unix.file_descr;
  port : int;
  stop : bool Atomic.t;
  mutable thread : Thread.t option;
}

let crlf = "\r\n"

let response ~status ~content_type body =
  String.concat ""
    [
      "HTTP/1.0 ";
      status;
      crlf;
      "Content-Type: ";
      content_type;
      crlf;
      "Content-Length: ";
      string_of_int (String.length body);
      crlf;
      "Connection: close";
      crlf;
      crlf;
      body;
    ]

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off < n then begin
      let w = Unix.write fd b off (n - off) in
      if w > 0 then go (off + w)
    end
  in
  try go 0 with Unix.Unix_error _ -> ()

(* Read the request head (through the blank line, 8 KiB cap) and return
   the request line. A client that trickles bytes is bounded by the
   socket receive timeout set by the acceptor. *)
let read_request_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else begin
      let seen = Buffer.contents buf in
      if
        String.length seen >= 4
        && (String.index_opt seen '\n' <> None)
        && (let l = String.length seen in
            String.sub seen (l - 4) 4 = "\r\n\r\n"
            || String.sub seen (l - 2) 2 = "\n\n")
      then Some seen
      else begin
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error _ -> None
      end
    end
  in
  match go () with
  | None -> None
  | Some head -> (
    match String.index_opt head '\r' with
    | Some i -> Some (String.sub head 0 i)
    | None -> (
      match String.index_opt head '\n' with
      | Some i -> Some (String.sub head 0 i)
      | None -> Some head))

let handle ~healthy fd =
  let reply =
    match read_request_line fd with
    | None -> response ~status:"400 Bad Request" ~content_type:"text/plain" ""
    | Some line -> (
      match String.split_on_char ' ' line with
      | [ "GET"; "/metrics"; _ ] | [ "GET"; "/metrics" ] ->
        response ~status:"200 OK" ~content_type:Obs.Prom.content_type
          (Obs.Prom.page ())
      | [ "GET"; "/healthz"; _ ] | [ "GET"; "/healthz" ] ->
        if healthy () then
          response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
        else
          response ~status:"503 Service Unavailable"
            ~content_type:"text/plain" "shutting down\n"
      | "GET" :: _ ->
        response ~status:"404 Not Found" ~content_type:"text/plain"
          "not found\n"
      | _ ->
        response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
          "")
  in
  write_all fd reply;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t ~healthy =
  while not (Atomic.get t.stop) do
    match Unix.select [ t.sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.sock with
      | fd, _ ->
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
         with Unix.Unix_error _ -> ());
        ignore (Thread.create (fun () -> handle ~healthy fd) ())
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  try Unix.close t.sock with Unix.Unix_error _ -> ()

let start ~port ~healthy =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  match
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen sock 16;
    Unix.getsockname sock
  with
  | Unix.ADDR_INET (_, bound_port) ->
    let t = { sock; port = bound_port; stop = Atomic.make false; thread = None } in
    t.thread <- Some (Thread.create (fun () -> accept_loop t ~healthy) ());
    Ok t
  | Unix.ADDR_UNIX _ ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error "unexpected socket domain"
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot bind http metrics port %d: %s" port
         (Unix.error_message e))

let port t = t.port

let stop t =
  Atomic.set t.stop true;
  match t.thread with Some th -> Thread.join th | None -> ()
