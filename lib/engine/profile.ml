(* Self-time attribution over an EXPLAIN ANALYZE tree. Stats.node.time_ns
   is inclusive wall-clock (children included, summed over loops); every
   child span nests inside its parent's span on the orchestrating domain
   (partition parallelism happens *inside* one operator, never by timing
   children on workers), so

     self(n) = time(n) - Σ time(child)

   is the time operator n spent doing its own work, and Σ self over the
   tree telescopes back to the root's wall time. The subtraction is
   clamped at zero to absorb clock jitter on sub-microsecond spans. *)

type row = {
  op : string;
  detail : string;
  self_ns : int64;
  total_ns : int64;
  rows_out : int;
  loops : int;
  vectorized : bool;
  bloom_prunes : int;
  partitions : int;
}

type t = { wall_ns : int64; rows : row list }

let self_ns (n : Stats.node) =
  let children =
    List.fold_left
      (fun acc (c : Stats.node) -> Int64.add acc c.time_ns)
      0L n.children
  in
  let d = Int64.sub n.time_ns children in
  if Int64.compare d 0L < 0 then 0L else d

let row_of (n : Stats.node) =
  {
    op = n.op;
    detail = n.detail;
    self_ns = self_ns n;
    total_ns = n.time_ns;
    rows_out = n.counters.Stats.rows_out;
    loops = n.loops;
    vectorized = n.vectorized;
    bloom_prunes = n.counters.Stats.bloom_prunes;
    partitions = n.counters.Stats.partitions;
  }

let of_node (root : Stats.node) =
  let rec collect acc (n : Stats.node) =
    List.fold_left collect (row_of n :: acc) n.children
  in
  let rows =
    collect [] root
    |> List.stable_sort (fun a b -> Int64.compare b.self_ns a.self_ns)
  in
  { wall_ns = root.Stats.time_ns; rows }

let ms ns = Int64.to_float ns /. 1e6

let annotations r =
  List.filter_map Fun.id
    [
      (if r.vectorized then Some "vectorized" else None);
      (if r.bloom_prunes > 0 then
         Some (Printf.sprintf "bloom=%d" r.bloom_prunes)
       else None);
      (if r.partitions > 0 then
         Some (Printf.sprintf "parts=%d" r.partitions)
       else None);
      (if r.loops > 1 then Some (Printf.sprintf "loops=%d" r.loops)
       else None);
    ]

(* Top-style report: one line per operator, hottest self-time first,
   with percentage of wall, throughput through the operator's own work,
   and engine annotations. *)
let pp ppf t =
  let wall = ms t.wall_ns in
  Fmt.pf ppf "profile: wall %.3fms, %d operators (self-time order)@." wall
    (List.length t.rows);
  Fmt.pf ppf "  %8s %6s %9s %10s  %s@." "self-ms" "%" "rows" "rows/ms"
    "operator";
  List.iter
    (fun r ->
      let self = ms r.self_ns in
      let pct = if wall > 0. then 100. *. self /. wall else 0. in
      let throughput =
        if self > 0. then Printf.sprintf "%.1f" (float_of_int r.rows_out /. self)
        else "-"
      in
      let ann = annotations r in
      Fmt.pf ppf "  %8.3f %5.1f%% %9d %10s  %s%s%s%s@." self pct r.rows_out
        throughput r.op
        (if r.detail = "" then "" else " " ^ r.detail)
        (if ann = [] then "" else " [")
        (if ann = [] then "" else String.concat " " ann ^ "]"))
    t.rows

(* Flame view: the tree in plan order, each node with self and total —
   the same numbers as the top report, arranged to show where inclusive
   time concentrates on the way down. *)
let pp_flame ppf (root : Stats.node) =
  let rec go depth (n : Stats.node) =
    Fmt.pf ppf "%s%s%s  self=%.3fms total=%.3fms@."
      (String.make (2 * depth) ' ')
      n.op
      (if n.detail = "" then "" else " " ^ n.detail)
      (ms (self_ns n)) (ms n.time_ns);
    List.iter (go (depth + 1)) n.children
  in
  go 0 root

let row_json r =
  Json.Obj
    [
      ("op", Json.String r.op);
      ("detail", Json.String r.detail);
      ("self_ns", Json.Int64 r.self_ns);
      ("total_ns", Json.Int64 r.total_ns);
      ("rows_out", Json.Int r.rows_out);
      ( "rows_per_ms",
        if Int64.compare r.self_ns 0L > 0 then
          Json.Float (float_of_int r.rows_out /. ms r.self_ns)
        else Json.Null );
      ("loops", Json.Int r.loops);
      ("vectorized", Json.Bool r.vectorized);
      ("bloom_prunes", Json.Int r.bloom_prunes);
      ("partitions", Json.Int r.partitions);
    ]

let to_json t =
  Json.Obj
    [
      ("wall_ns", Json.Int64 t.wall_ns);
      ("operators", Json.List (List.map row_json t.rows));
    ]

(* Aggregate self-time per operator kind into the metrics registry —
   the hottest-operator feed for the server's scrape endpoint and the
   [top] client. Gauges, not counters: the values are wall-clock and so
   jobs-dependent (the registry's profile.* prefix is excluded from the
   jobs-invariance contract). *)
let record_metrics t =
  if Obs.Metrics.enabled () then
    List.iter
      (fun r ->
        Obs.Metrics.add_gauge
          ("profile.self_us." ^ r.op)
          (Int64.to_float r.self_ns /. 1e3))
      t.rows

(* Top-k (op, detail, self_ns) summary for the slow-query log. *)
let top ?(k = 5) t =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take k t.rows
