(** Vectorized expression kernels over {!Batch} columns.

    [compile] covers the scalar / comparison / arithmetic fragment of
    [Lang.Ast]; anything else yields [None] and callers fall back to
    the row-compiled closure.  On the live rows of a batch a kernel
    computes exactly the values — and raises exactly the exceptions —
    the corresponding {!Compile} closure would, though cross-row
    evaluation order may differ; callers catch kernel exceptions and
    replay row-at-a-time to reproduce the row engine's first error and
    counter state. *)

type kernel = Batch.t -> Batch.col
(** Evaluates over the live slots of a batch; dead slots of the result
    are unspecified. *)

val compile : Cobj.Catalog.t -> Lang.Ast.expr -> kernel option
(** [None] when [e] falls outside the vectorizable fragment. *)

val truth_sel : kernel -> Batch.t -> int array
(** Live physical indices (ascending) where the kernel's result is
    true under [Value.as_bool] — the vectorized [Compile.pred]. *)
