type t = {
  mutable rows_out : int;
  mutable predicate_evals : int;
  mutable hash_builds : int;
  mutable hash_probes : int;
  mutable sorts : int;
  mutable applies : int;
  mutable apply_hits : int;
  mutable bloom_checks : int;
  mutable bloom_prunes : int;
  mutable build_side_swaps : int;
  mutable partitions : int;
  mutable partition_max_rows : int;
}

let create () =
  {
    rows_out = 0;
    predicate_evals = 0;
    hash_builds = 0;
    hash_probes = 0;
    sorts = 0;
    applies = 0;
    apply_hits = 0;
    bloom_checks = 0;
    bloom_prunes = 0;
    build_side_swaps = 0;
    partitions = 0;
    partition_max_rows = 0;
  }

let reset t =
  t.rows_out <- 0;
  t.predicate_evals <- 0;
  t.hash_builds <- 0;
  t.hash_probes <- 0;
  t.sorts <- 0;
  t.applies <- 0;
  t.apply_hits <- 0;
  t.bloom_checks <- 0;
  t.bloom_prunes <- 0;
  t.build_side_swaps <- 0;
  t.partitions <- 0;
  t.partition_max_rows <- 0

(* Bloom counters are observational (a pruned probe still counts as a
   probe) and swaps are plan-level events, so neither joins the work
   total — total_work stays comparable across bloom on/off runs. *)
let total_work t =
  t.rows_out + t.predicate_evals + t.hash_builds + t.hash_probes + t.sorts
  + t.applies

let add ~into src =
  into.rows_out <- into.rows_out + src.rows_out;
  into.predicate_evals <- into.predicate_evals + src.predicate_evals;
  into.hash_builds <- into.hash_builds + src.hash_builds;
  into.hash_probes <- into.hash_probes + src.hash_probes;
  into.sorts <- into.sorts + src.sorts;
  into.applies <- into.applies + src.applies;
  into.apply_hits <- into.apply_hits + src.apply_hits;
  into.bloom_checks <- into.bloom_checks + src.bloom_checks;
  into.bloom_prunes <- into.bloom_prunes + src.bloom_prunes;
  into.build_side_swaps <- into.build_side_swaps + src.build_side_swaps;
  into.partitions <- into.partitions + src.partitions;
  into.partition_max_rows <- max into.partition_max_rows src.partition_max_rows

(* Partition counters only exist under --jobs > 1 and are therefore
   jobs-dependent; the flat line stays jobs-invariant (the cram suite runs
   it under every NESTQL_JOBS), so they surface only in EXPLAIN ANALYZE
   output alongside the other timing-class fields. *)
let pp ppf t =
  Fmt.pf ppf
    "rows=%d pred-evals=%d builds=%d probes=%d sorts=%d applies=%d \
     apply-hits=%d bloom-checks=%d bloom-prunes=%d swaps=%d"
    t.rows_out t.predicate_evals t.hash_builds t.hash_probes t.sorts
    t.applies t.apply_hits t.bloom_checks t.bloom_prunes t.build_side_swaps

(* --- per-operator instrumentation tree ---------------------------------- *)

type node = {
  op : string;
  detail : string;
  counters : t;
  mutable loops : int;
  mutable time_ns : int64;
  mutable est_rows : float;
  mutable bounds : (float * float) option;
  mutable keys : string list;
  mutable gc : Obs.Memory.delta option;
  mutable vectorized : bool;
  children : node list;
}

let node ~op ~detail children =
  {
    op;
    detail;
    counters = create ();
    loops = 0;
    time_ns = 0L;
    est_rows = Float.nan;
    bounds = None;
    keys = [];
    gc = None;
    vectorized = false;
    children;
  }

let rec reset_node n =
  reset n.counters;
  n.loops <- 0;
  n.time_ns <- 0L;
  n.gc <- None;
  n.vectorized <- false;
  List.iter reset_node n.children

let rec sum_into acc n =
  add ~into:acc n.counters;
  List.iter (sum_into acc) n.children

let totals n =
  let acc = create () in
  sum_into acc n;
  acc
