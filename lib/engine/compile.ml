module Value = Cobj.Value
module Env = Cobj.Env
module Ast = Lang.Ast
module Interp = Lang.Interp

let enabled = ref true

(* The compiled form: environment to value. Construction happens before any
   row flows; every [fun env -> …] below closes over already-compiled
   children. *)
type t = Env.t -> Value.t

let cmp_op op : Value.t -> Value.t -> bool =
  match op with
  | Ast.Eq -> fun a b -> Value.compare a b = 0
  | Ast.Ne -> fun a b -> Value.compare a b <> 0
  | Ast.Lt -> fun a b -> Value.compare a b < 0
  | Ast.Le -> fun a b -> Value.compare a b <= 0
  | Ast.Gt -> fun a b -> Value.compare a b > 0
  | Ast.Ge -> fun a b -> Value.compare a b >= 0
  | _ -> invalid_arg "Compile.cmp_op"

let rec compile catalog e : t =
  match e with
  | Ast.Const v -> fun _ -> v
  | Ast.Var x -> fun env -> Env.find x env
  | Ast.TableRef name -> (
    (* Resolved eagerly: [Table.to_value] is O(1) and [Lazy.force] is not
       safe to race from worker domains. Unknown names still fail at
       evaluation time, matching the interpreter. *)
    match Cobj.Catalog.find name catalog with
    | Some table ->
      let v = Cobj.Table.to_value table in
      fun _ -> v
    | None -> fun _ -> Value.type_error "unknown extension %s" name)
  | Ast.Field (e1, l) ->
    let f = compile catalog e1 in
    fun env -> Value.field l (f env)
  | Ast.TupleE fields ->
    let compiled =
      List.map (fun (l, e1) -> (l, compile catalog e1)) fields
    in
    fun env -> Value.tuple (List.map (fun (l, f) -> (l, f env)) compiled)
  | Ast.SetE es ->
    let compiled = List.map (compile catalog) es in
    fun env -> Value.set (List.map (fun f -> f env) compiled)
  | Ast.ListE es ->
    let compiled = List.map (compile catalog) es in
    fun env -> Value.List (List.map (fun f -> f env) compiled)
  | Ast.Unop (Ast.Not, e1) ->
    let f = compile catalog e1 in
    fun env -> Value.Bool (not (Value.as_bool (f env)))
  | Ast.Unop (Ast.Neg, e1) ->
    let f = compile catalog e1 in
    fun env -> (
      match f env with
      | Value.Int n -> Value.Int (-n)
      | Value.Float x -> Value.Float (-.x)
      | v -> Value.type_error "cannot negate %s" (Value.to_string v))
  | Ast.Binop (Ast.And, a, b) ->
    let fa = compile catalog a and fb = compile catalog b in
    fun env -> if Value.as_bool (fa env) then fb env else Value.Bool false
  | Ast.Binop (Ast.Or, a, b) ->
    let fa = compile catalog a and fb = compile catalog b in
    fun env -> if Value.as_bool (fa env) then Value.Bool true else fb env
  | Ast.Binop (((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b)
    ->
    let fa = compile catalog a and fb = compile catalog b in
    let c = cmp_op op in
    fun env -> Value.Bool (c (fa env) (fb env))
  | Ast.Binop (Ast.Mem, a, b) ->
    let fa = compile catalog a and fb = compile catalog b in
    fun env -> (
      let x = fa env in
      match fb env with
      | Value.Set _ as s -> Value.Bool (Value.set_mem x s)
      | Value.List elems -> Value.Bool (List.exists (Value.equal x) elems)
      | v ->
        Value.type_error "IN expects a collection, got %s" (Value.to_string v))
  | Ast.Binop (Ast.Union, a, b) -> set_binop catalog Value.set_union a b
  | Ast.Binop (Ast.Inter, a, b) -> set_binop catalog Value.set_inter a b
  | Ast.Binop (Ast.Diff, a, b) -> set_binop catalog Value.set_diff a b
  | Ast.Binop (Ast.Subseteq, a, b) ->
    set_test catalog Value.set_subseteq a b
  | Ast.Binop (Ast.Subset, a, b) -> set_test catalog Value.set_subset a b
  | Ast.Binop (Ast.Supseteq, a, b) ->
    set_test catalog (fun x y -> Value.set_subseteq y x) a b
  | Ast.Binop (Ast.Supset, a, b) ->
    set_test catalog (fun x y -> Value.set_subset y x) a b
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op), a, b)
    ->
    let fa = compile catalog a and fb = compile catalog b in
    let prim =
      match op with
      | Ast.Add -> Interp.Prim.add
      | Ast.Sub -> Interp.Prim.sub
      | Ast.Mul -> Interp.Prim.mul
      | Ast.Div -> Interp.Prim.div
      | Ast.Mod -> Interp.Prim.modulo
      | _ -> assert false
    in
    fun env -> prim (fa env) (fb env)
  | Ast.Agg (agg, e1) ->
    let f = compile catalog e1 in
    fun env -> Interp.Prim.aggregate agg (f env)
  | Ast.Quant (q, v, s, p) ->
    let fs = compile catalog s in
    let fp = compile catalog p in
    let holds env x = Value.as_bool (fp (Env.bind v x env)) in
    (match q with
    | Ast.Exists ->
      fun env -> Value.Bool (List.exists (holds env) (Value.elements (fs env)))
    | Ast.Forall ->
      fun env ->
        Value.Bool (List.for_all (holds env) (Value.elements (fs env))))
  | Ast.Let (v, def, body) ->
    let fd = compile catalog def in
    let fb = compile catalog body in
    fun env -> fb (Env.bind v (fd env) env)
  | Ast.UnnestE e1 ->
    let f = compile catalog e1 in
    fun env ->
      List.fold_left Value.set_union (Value.Set [])
        (Value.elements (f env))
  | Ast.If (c, a, b) ->
    let fc = compile catalog c in
    let fa = compile catalog a in
    let fb = compile catalog b in
    fun env -> if Value.as_bool (fc env) then fa env else fb env
  | Ast.VariantE (tag, e1) ->
    let f = compile catalog e1 in
    fun env -> Value.Variant (tag, f env)
  | Ast.IsTag (e1, tag) ->
    let f = compile catalog e1 in
    fun env -> Value.Bool (String.equal (Value.variant_tag (f env)) tag)
  | Ast.AsTag (e1, tag) ->
    let f = compile catalog e1 in
    fun env -> Value.variant_payload tag (f env)
  | Ast.Sfw _ ->
    (* inline subquery: nested-loop evaluation via the interpreter *)
    fun env -> Interp.eval catalog env e

and set_binop catalog op a b =
  let fa = compile catalog a and fb = compile catalog b in
  fun env -> op (fa env) (fb env)

and set_test catalog test a b =
  let fa = compile catalog a and fb = compile catalog b in
  fun env -> Value.Bool (test (fa env) (fb env))

let expr catalog e =
  if !enabled then compile catalog e else fun env -> Interp.eval catalog env e

let pred catalog e =
  if !enabled then begin
    let f = compile catalog e in
    fun env ->
      match Value.as_bool (f env) with
      | b -> b
      | exception Interp.Undefined _ -> false
  end
  else fun env -> Interp.truth catalog env e
