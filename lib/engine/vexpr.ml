(* Vectorized expression kernels.

   [compile] translates the scalar / comparison / arithmetic fragment
   of [Lang.Ast] into per-batch kernels that evaluate column-at-a-time
   over a [Batch.t]; expressions outside the fragment yield [None] and
   the caller falls back to the row-compiled closure ([Compile]).

   Semantics contract: on the rows selected by the batch, a kernel
   computes exactly the values (and raises exactly the exceptions) the
   corresponding [Compile] closure would.  Evaluation *order* across
   rows may differ (all of [a] before any of [b] in [a AND b]), so a
   kernel raising is not itself observable: callers catch and replay
   the batch row-at-a-time, which reproduces the row engine's first
   error and counter state bit-for-bit.  Kernels therefore only need
   value-exactness on success.

   Conjunctions and disjunctions evaluate their second operand only on
   the selection where the first did not decide the result, mirroring
   the row engine's short-circuit on a per-batch selection vector. *)

module Value = Cobj.Value
module Env = Cobj.Env
module Ast = Lang.Ast

type kernel = Batch.t -> Batch.col

(* [as_bool] over the live slots; dead slots read as false. *)
let bool_bytes (b : Batch.t) (c : Batch.col) : Bytes.t =
  match c with
  | Batch.Bools by -> by
  | Batch.Const v ->
      if Value.as_bool v then Bytes.make b.Batch.len '\001'
      else Bytes.make b.Batch.len '\000'
  | c ->
      let by = Bytes.make b.Batch.len '\000' in
      Batch.iter_live b (fun i ->
          if Value.as_bool (Batch.get c i) then Bytes.unsafe_set by i '\001');
      by

(* Live indices whose boolean byte matches [keep]. *)
let select_where (b : Batch.t) (by : Bytes.t) keep =
  let n = ref 0 in
  Batch.iter_live b (fun i ->
      if Bytes.unsafe_get by i <> '\000' = keep then incr n);
  let out = Array.make !n 0 in
  let j = ref 0 in
  Batch.iter_live b (fun i ->
      if Bytes.unsafe_get by i <> '\000' = keep then begin
        Array.unsafe_set out !j i;
        incr j
      end);
  out

(* Recover a typed column from a boxed result when the live slots are
   uniformly typed, so downstream kernels keep their fast paths. *)
let compress (b : Batch.t) (c : Batch.col) =
  match c with
  | Batch.Boxed arr when Batch.live b > 0 ->
      let ints = ref true and bools = ref true and floats = ref true in
      Batch.iter_live b (fun i ->
          match arr.(i) with
          | Value.Int _ ->
              bools := false;
              floats := false
          | Value.Bool _ ->
              ints := false;
              floats := false
          | Value.Float _ ->
              ints := false;
              bools := false
          | _ ->
              ints := false;
              bools := false;
              floats := false);
      if !ints then begin
        let out = Array.make b.Batch.len 0 in
        Batch.iter_live b (fun i ->
            match arr.(i) with Value.Int x -> out.(i) <- x | _ -> ());
        Batch.Ints out
      end
      else if !bools then begin
        let out = Bytes.make b.Batch.len '\000' in
        Batch.iter_live b (fun i ->
            match arr.(i) with
            | Value.Bool true -> Bytes.unsafe_set out i '\001'
            | _ -> ());
        Batch.Bools out
      end
      else if !floats then begin
        let out = Float.Array.make b.Batch.len 0. in
        Batch.iter_live b (fun i ->
            match arr.(i) with
            | Value.Float x -> Float.Array.set out i x
            | _ -> ());
        Batch.Floats out
      end
      else c
  | c -> c

let generic_map2 (b : Batch.t) f ca cb =
  let out = Array.make b.Batch.len Value.Null in
  Batch.iter_live b (fun i -> out.(i) <- f (Batch.get ca i) (Batch.get cb i));
  Batch.Boxed out

let field_kernel l ka : kernel =
 fun b ->
  match ka b with
  | Batch.Const v -> Batch.Const (Value.field l v)
  | c -> (
      (* Optimistic single pass: filter operands and join keys are
         overwhelmingly INT, so extract straight into an unboxed column
         and only restart boxed (the [compress] path needs two extra
         passes) on the first non-int.  [Value.field] is pure, so the
         restart re-extracts the prefix at no semantic cost. *)
      let ints = Array.make b.Batch.len 0 in
      match
        Batch.iter_live b (fun i ->
            match Value.field l (Batch.get c i) with
            | Value.Int x -> Array.unsafe_set ints i x
            | _ -> raise_notrace Exit)
      with
      | () -> Batch.Ints ints
      | exception Exit ->
          let out = Array.make b.Batch.len Value.Null in
          Batch.iter_live b (fun i -> out.(i) <- Value.field l (Batch.get c i));
          compress b (Batch.Boxed out))

let not_kernel ka : kernel =
 fun b ->
  let ba = bool_bytes b (ka b) in
  let out = Bytes.make b.Batch.len '\000' in
  Batch.iter_live b (fun i ->
      if Bytes.unsafe_get ba i = '\000' then Bytes.unsafe_set out i '\001');
  Batch.Bools out

let neg1 = function
  | Value.Int n -> Value.Int (-n)
  | Value.Float x -> Value.Float (-.x)
  | v -> Value.type_error "cannot negate %s" (Value.to_string v)

let neg_kernel ka : kernel =
 fun b ->
  match ka b with
  | Batch.Ints xa ->
      let out = Array.make b.Batch.len 0 in
      Batch.iter_live b (fun i -> out.(i) <- -xa.(i));
      Batch.Ints out
  | Batch.Floats xa ->
      let out = Float.Array.make b.Batch.len 0. in
      Batch.iter_live b (fun i -> Float.Array.set out i (-.Float.Array.get xa i));
      Batch.Floats out
  | Batch.Const v -> Batch.Const (neg1 v)
  | c ->
      let out = Array.make b.Batch.len Value.Null in
      Batch.iter_live b (fun i -> out.(i) <- neg1 (Batch.get c i));
      Batch.Boxed out

(* [a AND b]: evaluate [b] only where [a] held; [a OR b]: only where it
   did not.  The evaluation set matches the row engine exactly. *)
let and_kernel ka kb : kernel =
 fun b ->
  let ba = bool_bytes b (ka b) in
  let sub = select_where b ba true in
  let out = Bytes.make b.Batch.len '\000' in
  if Array.length sub > 0 then begin
    let b' = Batch.narrow b sub in
    let bb = bool_bytes b' (kb b') in
    Array.iter (fun i -> Bytes.unsafe_set out i (Bytes.unsafe_get bb i)) sub
  end;
  Batch.Bools out

let or_kernel ka kb : kernel =
 fun b ->
  let ba = bool_bytes b (ka b) in
  let sub = select_where b ba false in
  let out = Bytes.make b.Batch.len '\000' in
  Batch.iter_live b (fun i ->
      if Bytes.unsafe_get ba i <> '\000' then Bytes.unsafe_set out i '\001');
  if Array.length sub > 0 then begin
    let b' = Batch.narrow b sub in
    let bb = bool_bytes b' (kb b') in
    Array.iter (fun i -> Bytes.unsafe_set out i (Bytes.unsafe_get bb i)) sub
  end;
  Batch.Bools out

let cmp_kernel op ka kb : kernel =
  let test : int -> bool =
    match op with
    | Ast.Eq -> fun c -> c = 0
    | Ast.Ne -> fun c -> c <> 0
    | Ast.Lt -> fun c -> c < 0
    | Ast.Le -> fun c -> c <= 0
    | Ast.Gt -> fun c -> c > 0
    | Ast.Ge -> fun c -> c >= 0
    | _ -> invalid_arg "Vexpr.cmp_kernel"
  in
  fun b ->
    let ca = ka b and cb = kb b in
    let out = Bytes.make b.Batch.len '\000' in
    let set i = Bytes.unsafe_set out i '\001' in
    (match (ca, cb) with
    | Batch.Ints xa, Batch.Ints xb ->
        Batch.iter_live b (fun i -> if test (Int.compare xa.(i) xb.(i)) then set i)
    | Batch.Ints xa, Batch.Const (Value.Int k) ->
        Batch.iter_live b (fun i -> if test (Int.compare xa.(i) k) then set i)
    | Batch.Const (Value.Int k), Batch.Ints xb ->
        Batch.iter_live b (fun i -> if test (Int.compare k xb.(i)) then set i)
    | _ ->
        Batch.iter_live b (fun i ->
            if test (Value.compare (Batch.get ca i) (Batch.get cb i)) then set i));
    Batch.Bools out

let arith_kernel op ka kb : kernel =
  let prim =
    match op with
    | Ast.Add -> Lang.Interp.Prim.add
    | Ast.Sub -> Lang.Interp.Prim.sub
    | Ast.Mul -> Lang.Interp.Prim.mul
    | Ast.Div -> Lang.Interp.Prim.div
    | Ast.Mod -> Lang.Interp.Prim.modulo
    | _ -> invalid_arg "Vexpr.arith_kernel"
  in
  (* Integer fast paths mirror [Interp.Prim] exactly, including the
     division- and modulo-by-zero type errors. *)
  let int_op : int -> int -> int =
    match op with
    | Ast.Add -> ( + )
    | Ast.Sub -> ( - )
    | Ast.Mul -> ( * )
    | Ast.Div ->
        fun x y -> if y = 0 then Value.type_error "division by zero" else x / y
    | Ast.Mod ->
        fun x y -> if y = 0 then Value.type_error "MOD by zero" else x mod y
    | _ -> assert false
  in
  fun b ->
    let ca = ka b and cb = kb b in
    let int_loop get_a get_b =
      let out = Array.make b.Batch.len 0 in
      Batch.iter_live b (fun i -> out.(i) <- int_op (get_a i) (get_b i));
      Batch.Ints out
    in
    match (ca, cb) with
    | Batch.Ints xa, Batch.Ints xb ->
        int_loop (Array.unsafe_get xa) (Array.unsafe_get xb)
    | Batch.Ints xa, Batch.Const (Value.Int k) ->
        int_loop (Array.unsafe_get xa) (fun _ -> k)
    | Batch.Const (Value.Int k), Batch.Ints xb ->
        int_loop (fun _ -> k) (Array.unsafe_get xb)
    | _ -> generic_map2 b prim ca cb

let if_kernel kc ka kb : kernel =
 fun b ->
  let bc = bool_bytes b (kc b) in
  let out = Array.make b.Batch.len Value.Null in
  let fill sub k =
    if Array.length sub > 0 then begin
      let c = k (Batch.narrow b sub) in
      Array.iter (fun i -> out.(i) <- Batch.get c i) sub
    end
  in
  fill (select_where b bc true) ka;
  fill (select_where b bc false) kb;
  compress b (Batch.Boxed out)

(* Field extraction is the dominant per-batch cost (a [Value.field]
   call per live row), and predicates routinely reference the same
   field several times ([x.a * x.a], both conjuncts probing [x.b]).
   Structurally equal [Field] subexpressions therefore share one
   kernel, and that kernel caches its last (batch, column) pair so
   repeated references within one batch extract once.

   The cache write is a single store of an immutable pair and every
   read is guarded by physical equality on the batch, so concurrent
   use from parallel probe domains can at worst miss (and recompute a
   pure extraction), never return another batch's column. *)
let batch_memo (k : kernel) : kernel =
  let cache = ref None in
  fun b ->
    match !cache with
    | Some (b', c) when b' == b -> c
    | _ ->
        let c = k b in
        cache := Some (b, c);
        c

let compile catalog (e : Ast.expr) : kernel option =
  let shared : (Ast.expr, kernel) Hashtbl.t = Hashtbl.create 8 in
  let rec compile (e : Ast.expr) : kernel option =
    match e with
    | Ast.Const v -> Some (fun _ -> Batch.Const v)
    | Ast.Var x ->
        Some
          (fun b ->
            match Batch.col b x with
            | Some c -> c
            | None -> Batch.Const (Env.find x (Batch.tail b)))
    | Ast.TableRef name -> (
        (* Resolved eagerly, like [Compile]: unknown names still fail at
           evaluation time, matching the interpreter. *)
        match Cobj.Catalog.find name catalog with
        | Some table ->
            let v = Cobj.Table.to_value table in
            Some (fun _ -> Batch.Const v)
        | None -> Some (fun _ -> Value.type_error "unknown extension %s" name))
    | Ast.Field (e1, l) -> (
        match Hashtbl.find_opt shared e with
        | Some k -> Some k
        | None ->
            Option.map
              (fun ka ->
                let k = batch_memo (field_kernel l ka) in
                Hashtbl.add shared e k;
                k)
              (compile e1))
    | Ast.Unop (Ast.Not, e1) -> Option.map not_kernel (compile e1)
    | Ast.Unop (Ast.Neg, e1) -> Option.map neg_kernel (compile e1)
    | Ast.Binop (Ast.And, a, b) -> compile2 and_kernel a b
    | Ast.Binop (Ast.Or, a, b) -> compile2 or_kernel a b
    | Ast.Binop
        (((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b)
      ->
        compile2 (cmp_kernel op) a b
    | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op), a, b)
      ->
        compile2 (arith_kernel op) a b
    | Ast.If (c, a, b) -> (
        match (compile c, compile a, compile b) with
        | Some kc, Some ka, Some kb -> Some (if_kernel kc ka kb)
        | _ -> None)
    | _ -> None
  and compile2 mk a b =
    match (compile a, compile b) with
    | Some ka, Some kb -> Some (mk ka kb)
    | _ -> None
  in
  compile e

(* Predicate form: live indices satisfying [k], ascending.  [as_bool]
   is applied per live row, as [Compile.pred] would. *)
let truth_sel (k : kernel) b = select_where b (bool_bytes b (k b)) true
