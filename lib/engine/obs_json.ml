(* Bridge from the Obs registry/accounting types to the engine's JSON
   representation, for the Analyze and bench artifacts. Lives in engine
   (not obs) so obs stays free of engine dependencies — the tracer is
   usable from Pool workers without a cycle. *)

let gc (d : Obs.Memory.delta) =
  Json.Obj
    [
      ("minor_words", Json.Float d.Obs.Memory.minor_words);
      ("major_words", Json.Float d.Obs.Memory.major_words);
      ("promoted_words", Json.Float d.Obs.Memory.promoted_words);
      ("top_heap_delta_words", Json.Int d.Obs.Memory.top_heap_words);
      ("heap_delta_words", Json.Int d.Obs.Memory.heap_words);
    ]

let value = function
  | Obs.Metrics.Counter n ->
    Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Obs.Metrics.Gauge g ->
    Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float g) ]
  | Obs.Metrics.Histogram h ->
    let buckets = ref [] in
    for i = Array.length h.Obs.Metrics.buckets - 1 downto 0 do
      let c = h.Obs.Metrics.buckets.(i) in
      if c > 0 then
        buckets :=
          Json.Obj
            [
              ("bucket", Json.Int i);
              ("lo", Json.Int (Obs.Metrics.bucket_lo i));
              ("count", Json.Int c);
            ]
          :: !buckets
    done;
    Json.Obj
      [
        ("type", Json.String "histogram");
        ("count", Json.Int h.Obs.Metrics.count);
        ("sum", Json.Float h.Obs.Metrics.sum);
        ("buckets", Json.List !buckets);
      ]

let metrics () =
  Json.Obj (List.map (fun (k, v) -> (k, value v)) (Obs.Metrics.dump ()))
