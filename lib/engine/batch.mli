(** Columnar batches with selection vectors.

    The representation is exposed: the vectorized evaluator
    ({!Vexpr}) and the executor ({!Exec}) pattern-match on it
    directly.  Invariants: [sel] is ascending and every index is
    [< len]; slots outside the selection hold unspecified values. *)

type col =
  | Ints of int array
  | Floats of floatarray
  | Bools of Bytes.t  (** ['\000'] = false, anything else = true *)
  | Boxed of Cobj.Value.t array
  | Const of Cobj.Value.t  (** broadcast: same value at every index *)

type data =
  | Cols of { cols : (string * col) list; tail : Cobj.Env.t }
      (** late-materialized: named columns (newest first) over a shared
          tail environment *)
  | Rows of Cobj.Env.t array  (** materialized rows *)

type t = { len : int; sel : int array option; data : data }

val get : col -> int -> Cobj.Value.t
(** [get c i] reads physical slot [i] of column [c]. *)

val live : t -> int
(** Number of live rows (length of the selection, or [len]). *)

val live_total : t list -> int

val iter_live : t -> (int -> unit) -> unit
(** Apply to each live physical index in ascending order. *)

val is_cols : t -> bool

val col : t -> string -> col option
(** Look up a column by name (newest binding wins); [None] for rows
    batches and unbound names. *)

val tail : t -> Cobj.Env.t
(** Shared tail environment of a [Cols] batch ([Env.empty] for rows
    batches, whose kernels never run). *)

val env_at : t -> int -> Cobj.Env.t
(** Materialize the full environment for physical slot [i].  Produces
    exactly the environment the row engine would have built. *)

val narrow : t -> int array -> t
(** Replace the selection vector (shares the underlying data). *)

val add_col : t -> string -> col -> t
(** Prepend a column to a [Cols] batch; raises [Invalid_argument] on a
    rows batch. *)

val to_rows : t -> Cobj.Env.t list
(** Live rows in selection order. *)

val rows_of_batches : t list -> Cobj.Env.t list

val of_rows_array : Cobj.Env.t array -> t

val of_rows : size:int -> Cobj.Env.t list -> t list
(** Chunk a row list into [Rows] batches of at most [size]. *)

val of_values : size:int -> string -> Cobj.Env.t -> Cobj.Value.t list -> t list
(** Scan constructor: batches with a single boxed column [var] over the
    shared scope, chunked to [size]. *)
