(** A tiny work-sharing domain pool — the morsel scheduler behind
    partition-parallel execution.

    [run ~jobs n body] evaluates [body i] for every [0 <= i < n] on at most
    [jobs] domains in total: the calling domain plus up to [jobs - 1]
    pooled workers. Worker domains are spawned lazily on first use, reused
    across calls, and joined at process exit. Items are claimed from a
    shared atomic counter, so scheduling is dynamic (morsel-style);
    [body] must be safe to run concurrently on distinct indices.
    Exceptions raised by [body] are re-raised in the caller once all items
    have finished (the first one wins).

    Intended usage is single-threaded orchestration: only the main domain
    calls [run], and [body] never calls [run] re-entrantly — the executor
    guarantees both (parallel regions hand worker bodies a serial
    execution context). *)

val max_jobs : int
(** Hard cap on [jobs]: the OCaml runtime limits live domains to 128, so
    requests beyond this are clamped. *)

val run : jobs:int -> int -> (int -> unit) -> unit
(** [run ~jobs n body] — see above. [jobs <= 1] (or [n <= 1]) degrades to a
    plain serial loop on the calling domain, spawning nothing. *)

val size : unit -> int
(** Number of worker domains currently alive (for tests). *)
