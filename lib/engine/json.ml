type t =
  | Null
  | Bool of bool
  | Int of int
  | Int64 of int64
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats must stay valid JSON: no nan/infinity literals, and always a
   number shape a strict parser accepts. *)
let float_repr x =
  if Float.is_nan x then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else if Float.is_finite x then Printf.sprintf "%.6g" x
  else "null"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Int64 n -> Buffer.add_string buf (Int64.to_string n)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

(* Indented rendering for artifacts meant to be read and diffed by humans
   (bench JSON); [to_string] stays compact for piping into tools. *)
let rec emit_pretty buf indent = function
  | (Null | Bool _ | Int _ | Int64 _ | Float _ | String _) as j -> emit buf j
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
    let pad = String.make indent ' ' in
    let pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        emit_pretty buf (indent + 2) x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    let pad = String.make indent ' ' in
    let pad' = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        emit_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'

let to_pretty_string j =
  let buf = Buffer.create 1024 in
  emit_pretty buf 0 j;
  Buffer.contents buf
