(* Blocked Bloom filter over precomputed value hashes. See bloom.mli.

   Each key touches exactly one machine word (cache-friendly "blocked"
   layout): a multiplicative mix of the key hash picks the word, and three
   disjoint slices of the mixed hash pick three bits inside it. OCaml ints
   give 62 usable bits per word (the top bit of a 63-bit int is avoided so
   bit arithmetic never overflows into the sign). *)

type t = { words : int array; mask : int }

let bits_per_word = 62

(* Fibonacci-hashing multiplier (2^63 / φ, truncated to an OCaml int);
   wrap-around multiplication is the intended mixing. *)
let mix h = h * 0x2E1E9F979B1E4B63

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

(* One word per ~8 expected keys keeps the per-word load around 3 set bits
   out of 62 for a ~0.01% false-positive rate at 1 byte/key. *)
let create expected =
  let nwords = pow2 (max 1 ((expected + 7) / 8)) 1 in
  { words = Array.make nwords 0; mask = nwords - 1 }

let slots t h =
  let m = mix h in
  let w = (m lsr 6) land t.mask in
  let b1 = (m lsr 20) land 63 mod bits_per_word in
  let b2 = (m lsr 32) land 63 mod bits_per_word in
  let b3 = (m lsr 44) land 63 mod bits_per_word in
  (w, (1 lsl b1) lor (1 lsl b2) lor (1 lsl b3))

let add t h =
  let w, bits = slots t h in
  t.words.(w) <- t.words.(w) lor bits

let mem t h =
  let w, bits = slots t h in
  t.words.(w) land bits = bits

let merge ~into src =
  if into.mask <> src.mask then
    invalid_arg "Bloom.merge: geometry mismatch (filters sized differently)";
  Array.iteri (fun i w -> into.words.(i) <- into.words.(i) lor w) src.words

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let fill_ratio t =
  let set = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words in
  float_of_int set /. float_of_int (bits_per_word * Array.length t.words)

let geometry t = Array.length t.words

let same_geometry a b = a.mask = b.mask
