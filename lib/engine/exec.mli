(** Executor for physical plans.

    Evaluation is oracle-faithful: for every physical plan [p] obtained from
    a logical plan [l], [rows] agrees with [Algebra.Sem.rows] on [l] up to
    row order (tests enforce this). Work counters are collected into an
    optional {!Stats.t}.

    {b Caveat} (§6 of the paper, exercised by the build-side bench):
    [Hash_nestjoin_left] streams the right operand against a left-side build
    table and is only correct when the right key expression is unique on the
    right input — the planner enforces this; calling it directly without the
    precondition produces un-grouped (wrong) output, which is the point of
    the experiment. *)

val rows :
  ?stats:Stats.t ->
  ?jobs:int ->
  ?bloom:bool ->
  ?vector:bool ->
  ?batch:int ->
  Cobj.Catalog.t ->
  Cobj.Env.t ->
  Physical.t ->
  Cobj.Env.t list
(** Rows produced under an ambient environment (for correlation variables),
    in implementation order (not canonicalized).

    [jobs] (default 1) is the partition-parallel width. With [jobs > 1],
    morsel-eligible operators (scan, filter, extend, project) fan per-row
    work over a domain pool and the hash-based joins (join, semijoin,
    antijoin, outerjoin, nest join) hash-partition both operands on the
    join key and run per-partition joins on worker domains. Results come
    back in serial row order and every counter lands on the same operator
    it would serially, so output and statistics are identical for every
    [jobs] value. Correlated apply subplans always execute serially inside
    their apply loop (classified with {!query_free_vars}); values above
    [Pool.max_jobs] are clamped.

    [bloom] (default true) enables sideways information passing in the
    hash-join family: every build side populates a blocked Bloom filter on
    its keys (hashes computed once and shared with the partition index and
    the hash table), and each probe key is screened against it first — a
    negative skips the hash lookup, and in the parallel path a pruned row
    never reaches the partition/scatter machinery at all (the filter is
    applied at the probe source, upstream of partitioning). Output is
    byte-identical with bloom on or off, and so is every [Stats] counter
    except [bloom_checks]/[bloom_prunes] (a pruned probe still counts in
    [hash_probes]). The commutative [Hash_join] additionally builds on the
    smaller operand at runtime ([build_side_swaps]); the one-sided
    operators — semijoin, antijoin, outerjoin, nest join — never swap (§7:
    their left operand is preserved and must stay on the probe side).

    [vector] (default {!default_vector}, i.e. on unless [NESTQL_VECTOR]
    disables it) runs the {!vectorizable} operators on the columnar
    batch engine: scans emit typed column batches, filters narrow
    selection vectors, and the hash-join family probes per batch with
    late materialization. Operators outside the fragment transparently
    execute on the row engine with batches (re)built at the boundary.
    Results, row order and every [Stats] counter are identical to the
    row engine at any [jobs] — the vector layer is a pure constant-
    factor optimization, enforced by the differential oracle in
    [test_batch]. Forced off when [Compile.enabled] is false (the
    kernels mirror the compiled closures, not the interpreter).

    [batch] (default {!default_batch}, i.e. [NESTQL_BATCH] or 1024) is
    the physical batch width; values below 1 are clamped to 1. *)

val rows_instrumented :
  ?jobs:int ->
  ?bloom:bool ->
  ?vector:bool ->
  ?batch:int ->
  Stats.node ->
  Cobj.Catalog.t ->
  Cobj.Env.t ->
  Physical.t ->
  Cobj.Env.t list
(** Like {!rows}, but collecting per-operator counters, loop counts and
    wall-clock into a {!Stats.node} tree (built with
    [Analyze.tree_of_plan] so its shape matches the plan). Summing the tree
    ({!Stats.totals}) yields exactly what {!rows} would have put in a
    global [Stats.t] — under any [jobs]: per-domain counter sets are merged
    back into the owning operator's node in deterministic partition
    order. *)

val run_instrumented :
  ?jobs:int ->
  ?bloom:bool ->
  ?vector:bool ->
  ?batch:int ->
  Cobj.Catalog.t ->
  Physical.query ->
  Cobj.Value.t * Stats.node
(** Execute a closed physical query under a fresh annotation tree; returns
    the result value and the filled-in tree (est_rows still [nan] — the
    cost model lives upstream, see [Core.Cost.annotate]). *)

val run :
  ?stats:Stats.t ->
  ?jobs:int ->
  ?bloom:bool ->
  ?vector:bool ->
  ?batch:int ->
  Cobj.Catalog.t ->
  Physical.query ->
  Cobj.Value.t
(** Set value of a closed physical query. *)

val run_under :
  ?stats:Stats.t ->
  ?jobs:int ->
  ?bloom:bool ->
  ?vector:bool ->
  ?batch:int ->
  Cobj.Catalog.t ->
  Cobj.Env.t ->
  Physical.query ->
  Cobj.Value.t

val query_free_vars : Physical.query -> Lang.Ast.String_set.t
(** Correlation variables a physical query needs from its enclosing scope
    (used for apply memoization). *)

val vectorizable : Physical.t -> bool
(** Whether the operator (shallowly — operands not considered) runs on
    the columnar batch engine when the vector layer is enabled. The
    verifier's [vector-fragment] rule cross-checks this against an
    independent list. *)

val default_vector : unit -> bool
(** Vector layer default: on, unless [NESTQL_VECTOR] is set to [0],
    [false], [no] or [off]. *)

val default_batch : unit -> int
(** Batch width default: [NESTQL_BATCH] when it parses as a positive
    integer, else 1024. *)
