(** Blocked Bloom filter for sideways information passing.

    Built over build-side join keys and consulted before each probe: a
    negative answer is definitive (the key is not in the build table), so
    the probe — and, in the partition-parallel path, the whole
    partition/scatter machinery for that row — can be skipped. Positives
    may be false; the hash-table probe stays authoritative.

    Filters are deterministic functions of (size at creation, inserted
    hashes): two filters created with the same [expected] count hold
    identical geometry, so per-partition filters built on worker domains
    and OR-[merge]d equal the filter a serial build would have produced
    bit-for-bit. The executor relies on this to keep bloom counters
    invariant under [--jobs]. *)

type t

val create : int -> t
(** [create expected] sizes the filter for [expected] keys (~1 byte/key,
    ≈0.01% false positives at that load). [expected] may be 0. *)

val add : t -> int -> unit
(** Insert a precomputed [Value.hash]. *)

val mem : t -> int -> bool
(** May return a false positive; never a false negative for added hashes. *)

val merge : into:t -> t -> unit
(** Bitwise OR. Raises [Invalid_argument] when geometries differ. *)

val fill_ratio : t -> float
(** Fraction of set bits — prune-rate diagnostics and saturation tests. *)

val geometry : t -> int
(** Number of words — filters [merge] only when geometries are equal.
    Deterministic in the [expected] count passed to {!create}: the plan
    verifier's bloom-geometry rule relies on equal counts producing equal
    geometry (the precondition for OR-merging per-partition filters). *)

val same_geometry : t -> t -> bool
(** The {!merge} precondition. *)
