(** EXPLAIN ANALYZE support: a {!Stats.node} annotation tree that mirrors a
    physical plan, plus renderers.

    The tree is built before execution ({!tree_of_query}), filled in during
    an instrumented run ({!Exec.run_instrumented}), optionally annotated
    with cost-model estimates (see [Core.Cost.annotate]), and rendered as a
    Postgres-style text tree or JSON. *)

val children : Physical.t -> Physical.t list
(** Operands in instrumentation order — the order of
    [Stats.node.children]: unary operators expose [input]; binary ones
    [left; right]; [Apply_op] exposes [input] then the subquery plan; index
    operators expose [left]. *)

val label : Physical.t -> string * string
(** [(op, detail)] display strings for one operator (not its operands). *)

val tree_of_plan : Physical.t -> Stats.node
val tree_of_query : Physical.query -> Stats.node
(** Fresh annotation tree with zeroed counters, shaped like the plan. *)

val pp : ?timing:bool -> Stats.node Fmt.t
(** Text tree, one operator per line:
    [op detail  (est=E actual=N loops=L time=T ...counters)].
    [~timing:false] omits the wall-clock field — output is then
    deterministic for a fixed catalog (used by the cram tests). *)

val to_string : ?timing:bool -> Stats.node -> string

val to_json : ?timing:bool -> Stats.node -> Json.t
(** Per-operator object with [op], [detail], [est_rows], [rows_out],
    [loops], [time_ns], the raw counters, and [children].
    [~timing:false] omits [time_ns] — like {!pp}, the document is then
    deterministic for a fixed catalog (used by the cram tests). *)
