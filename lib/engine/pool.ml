(* A tiny work-sharing domain pool — the morsel scheduler behind
   partition-parallel execution.

   One job is active at a time: the caller publishes an item count and a
   body, wakes the workers, then drains items itself alongside them. Items
   are claimed from a shared atomic counter (dynamic, morsel-style
   scheduling); a per-job ticket counter caps how many workers join, so a
   pool grown to 7 workers still runs a [~jobs:2] region on exactly two
   domains. Worker domains are spawned lazily on first use, reused across
   jobs, and joined at process exit. *)

type job = {
  body : int -> unit; (* never raises: exceptions are captured in [run] *)
  n : int;
  next : int Atomic.t; (* next unclaimed item *)
  remaining : int Atomic.t; (* items not yet finished *)
  tickets : int Atomic.t; (* worker slots left for this job *)
}

type pool = {
  m : Mutex.t;
  cv : Condition.t; (* new job / shutdown (workers); job finished (caller) *)
  mutable job : job option;
  mutable seq : int; (* job sequence number, to dedupe wake-ups *)
  mutable shutdown : bool;
  mutable workers : unit Domain.t list;
}

let pool =
  {
    m = Mutex.create ();
    cv = Condition.create ();
    job = None;
    seq = 0;
    shutdown = false;
    workers = [];
  }

(* The OCaml runtime caps live domains at 128; stay well below it. *)
let max_jobs = 64

let drain job =
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      job.body i;
      (* the finisher of the last item wakes the (possibly waiting) caller *)
      if Atomic.fetch_and_add job.remaining (-1) = 1 then begin
        Mutex.lock pool.m;
        Condition.broadcast pool.cv;
        Mutex.unlock pool.m
      end;
      loop ()
    end
  in
  loop ()

let rec worker_loop seen =
  Mutex.lock pool.m;
  while (not pool.shutdown) && (pool.job = None || pool.seq = seen) do
    Condition.wait pool.cv pool.m
  done;
  if pool.shutdown then Mutex.unlock pool.m
  else begin
    let job = Option.get pool.job in
    let seq = pool.seq in
    Mutex.unlock pool.m;
    if Atomic.fetch_and_add job.tickets (-1) > 0 then drain job;
    worker_loop seq
  end

let exit_hook_installed = ref false

(* Called from the main domain only, between jobs (pool.job = None). *)
let ensure_workers count =
  let missing = count - List.length pool.workers in
  if missing > 0 then begin
    if not !exit_hook_installed then begin
      exit_hook_installed := true;
      at_exit (fun () ->
          Mutex.lock pool.m;
          pool.shutdown <- true;
          Condition.broadcast pool.cv;
          Mutex.unlock pool.m;
          List.iter Domain.join pool.workers)
    end;
    for _ = 1 to missing do
      pool.workers <- Domain.spawn (fun () -> worker_loop 0) :: pool.workers
    done
  end

let run ~jobs n body =
  let jobs = min jobs max_jobs in
  if n > 0 then
    if jobs <= 1 || n = 1 then
      for i = 0 to n - 1 do
        body i
      done
    else begin
      ensure_workers (jobs - 1);
      (* Morsel spans are emitted per claimed item, from whichever domain
         claimed it — Perfetto renders one row per domain id, which is the
         worker-utilization / partition-skew view. Only the parallel path
         is wrapped: serial execution never reaches here, keeping trace
         span *structure* comparable across jobs for the "phase"/"operator"
         categories (morsel spans are jobs-dependent by nature). *)
      let body =
        if Obs.Trace.enabled () then fun i ->
          Obs.Trace.span ~cat:"morsel"
            ~args:(fun () -> [ ("item", Obs.Trace.Int i); ("of", Obs.Trace.Int n) ])
            "morsel"
            (fun () -> body i)
        else body
      in
      let first_exn = Atomic.make None in
      let guarded i =
        try body i
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set first_exn None (Some (e, bt)))
      in
      let job =
        {
          body = guarded;
          n;
          next = Atomic.make 0;
          remaining = Atomic.make n;
          tickets = Atomic.make (jobs - 1);
        }
      in
      Mutex.lock pool.m;
      pool.job <- Some job;
      pool.seq <- pool.seq + 1;
      Condition.broadcast pool.cv;
      Mutex.unlock pool.m;
      drain job;
      Mutex.lock pool.m;
      while Atomic.get job.remaining > 0 do
        Condition.wait pool.cv pool.m
      done;
      pool.job <- None;
      Mutex.unlock pool.m;
      match Atomic.get first_exn with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let size () = List.length pool.workers
