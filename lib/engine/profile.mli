(** Self-time attribution over an EXPLAIN ANALYZE tree.

    {!Stats.node.time_ns} is inclusive wall-clock: a node's span covers
    its children's spans (all timing happens on the orchestrating
    domain — partition parallelism lives {e inside} an operator, so
    child spans always nest). Exclusive (self) time is therefore

    [self(n) = max 0 (time(n) − Σ time(child))]

    and the per-operator self times telescope: their sum equals the
    root's wall time up to the clamping of sub-microsecond clock
    jitter, and never exceeds it by more than that jitter. Self time is
    wall-clock and thus {b jobs-dependent} — profile output is
    timing-class, like [time=] in EXPLAIN ANALYZE (see
    docs/OBSERVABILITY.md). *)

type row = {
  op : string;          (** operator name, e.g. ["hash-semijoin"] *)
  detail : string;      (** keys / predicate, as in EXPLAIN ANALYZE *)
  self_ns : int64;      (** exclusive wall-clock *)
  total_ns : int64;     (** inclusive wall-clock ({!Stats.node.time_ns}) *)
  rows_out : int;
  loops : int;          (** invocations (re-runs under Apply) *)
  vectorized : bool;    (** ran on the columnar batch engine *)
  bloom_prunes : int;
  partitions : int;     (** parallel hash partitions (0 in serial runs) *)
}

type t = {
  wall_ns : int64;  (** the root's inclusive time *)
  rows : row list;  (** every operator, hottest self-time first *)
}

val self_ns : Stats.node -> int64
(** Exclusive time of one node (clamped at zero). *)

val of_node : Stats.node -> t
(** Profile of a filled analyze tree (one row per operator instance,
    sorted by [self_ns] descending; ties keep plan preorder). *)

val pp : t Fmt.t
(** Top-style table: self-ms, percent of wall, rows out, rows per
    self-ms, operator with annotations ([vectorized], [bloom=n],
    [parts=n], [loops=n]). *)

val pp_flame : Stats.node Fmt.t
(** Flame view: the plan tree in preorder, each node annotated with
    self and total milliseconds. *)

val to_json : t -> Json.t
(** [{wall_ns, operators: [{op, detail, self_ns, total_ns, rows_out,
    rows_per_ms, loops, vectorized, bloom_prunes, partitions}]}] in
    self-time order. *)

val record_metrics : t -> unit
(** Accumulate per-operator-kind self time into gauges
    [profile.self_us.<op>] when the metrics registry is enabled (the
    server's hottest-operator feed; [profile.*] is excluded from the
    jobs-invariance contract). *)

val top : ?k:int -> t -> row list
(** The [k] (default 5) hottest rows — the slow-query log summary. *)
