module Value = Cobj.Value
module Env = Cobj.Env
module Ast = Lang.Ast
module Interp = Lang.Interp
module P = Physical

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

module Sset = Ast.String_set

(* Free (correlation) variables of physical plans, mirroring
   [Algebra.Plan.free_vars]. *)
let rec free_vars plan =
  let expr_free bound e = Sset.diff (Ast.free_vars e) bound in
  let bound_of p = Sset.of_list (P.vars_of p) in
  let binary_keys left right lkey rkey residual =
    let lb = bound_of left and rb = bound_of right in
    let both = Sset.union lb rb in
    Sset.union
      (Sset.union (free_vars left) (free_vars right))
      (Sset.union
         (Sset.union (expr_free lb lkey) (expr_free rb rkey))
         (match residual with
         | None -> Sset.empty
         | Some r -> expr_free both r))
  in
  match plan with
  | P.Unit_row | P.Scan _ -> Sset.empty
  | P.Filter { pred; input } ->
    Sset.union (free_vars input) (expr_free (bound_of input) pred)
  | P.Nl_join { pred; left; right }
  | P.Nl_semijoin { pred; left; right; _ }
  | P.Nl_outerjoin { pred; left; right } ->
    Sset.union
      (Sset.union (free_vars left) (free_vars right))
      (expr_free (Sset.union (bound_of left) (bound_of right)) pred)
  | P.Hash_join { lkey; rkey; residual; left; right }
  | P.Merge_join { lkey; rkey; residual; left; right }
  | P.Hash_semijoin { lkey; rkey; residual; left; right; _ }
  | P.Merge_semijoin { lkey; rkey; residual; left; right; _ }
  | P.Hash_outerjoin { lkey; rkey; residual; left; right }
  | P.Merge_outerjoin { lkey; rkey; residual; left; right } ->
    binary_keys left right lkey rkey residual
  | P.Nl_nestjoin { pred; func; left; right; _ } ->
    let both = Sset.union (bound_of left) (bound_of right) in
    Sset.union
      (Sset.union (free_vars left) (free_vars right))
      (Sset.union (expr_free both pred) (expr_free both func))
  | P.Hash_nestjoin { lkey; rkey; residual; func; left; right; _ }
  | P.Hash_nestjoin_left { lkey; rkey; residual; func; left; right; _ }
  | P.Merge_nestjoin { lkey; rkey; residual; func; left; right; _ } ->
    let both = Sset.union (bound_of left) (bound_of right) in
    Sset.union
      (binary_keys left right lkey rkey residual)
      (expr_free both func)
  | P.Unnest_op { expr; input; _ } ->
    Sset.union (free_vars input) (expr_free (bound_of input) expr)
  | P.Nest_op { func; input; _ } ->
    Sset.union (free_vars input) (expr_free (bound_of input) func)
  | P.Extend_op { expr; input; _ } ->
    Sset.union (free_vars input) (expr_free (bound_of input) expr)
  | P.Project_op { input; _ } -> free_vars input
  | P.Apply_op { subquery; input; _ } ->
    Sset.union (free_vars input)
      (Sset.diff (query_free_vars subquery) (bound_of input))
  | P.Union_op { left; right } ->
    Sset.union (free_vars left) (free_vars right)
  | P.Index_join { lkey; residual; left; var; _ }
  | P.Index_semijoin { lkey; residual; left; var; _ } ->
    let lb = bound_of left in
    Sset.union (free_vars left)
      (Sset.union (expr_free lb lkey)
         (match residual with
         | None -> Sset.empty
         | Some r -> expr_free (Sset.add var lb) r))
  | P.Index_nestjoin { lkey; residual; func; left; var; _ } ->
    let lb = bound_of left in
    let both = Sset.add var lb in
    Sset.union (free_vars left)
      (Sset.union (expr_free lb lkey)
         (Sset.union (expr_free both func)
            (match residual with
            | None -> Sset.empty
            | Some r -> expr_free both r)))

and query_free_vars { P.plan; result } =
  Sset.union (free_vars plan)
    (Sset.diff (Ast.free_vars result) (Sset.of_list (P.vars_of plan)))

let no_stats = Stats.create ()

let pad_nulls rvars l =
  List.fold_left (fun acc v -> Env.bind v Value.Null acc) l rvars

(* All scalar expressions appearing in a physical query (preds, keys,
   residuals, functions, results — including nested applies). *)
let rec exprs_of_plan plan acc =
  match plan with
  | P.Unit_row | P.Scan _ -> acc
  | P.Filter { pred; input } -> exprs_of_plan input (pred :: acc)
  | P.Nl_join { pred; left; right }
  | P.Nl_semijoin { pred; left; right; _ }
  | P.Nl_outerjoin { pred; left; right } ->
    exprs_of_plan left (exprs_of_plan right (pred :: acc))
  | P.Hash_join { lkey; rkey; residual; left; right }
  | P.Merge_join { lkey; rkey; residual; left; right }
  | P.Hash_semijoin { lkey; rkey; residual; left; right; _ }
  | P.Merge_semijoin { lkey; rkey; residual; left; right; _ }
  | P.Hash_outerjoin { lkey; rkey; residual; left; right }
  | P.Merge_outerjoin { lkey; rkey; residual; left; right } ->
    let acc = lkey :: rkey :: Option.to_list residual @ acc in
    exprs_of_plan left (exprs_of_plan right acc)
  | P.Nl_nestjoin { pred; func; left; right; _ } ->
    exprs_of_plan left (exprs_of_plan right (pred :: func :: acc))
  | P.Hash_nestjoin { lkey; rkey; residual; func; left; right; _ }
  | P.Hash_nestjoin_left { lkey; rkey; residual; func; left; right; _ }
  | P.Merge_nestjoin { lkey; rkey; residual; func; left; right; _ } ->
    let acc = lkey :: rkey :: func :: Option.to_list residual @ acc in
    exprs_of_plan left (exprs_of_plan right acc)
  | P.Unnest_op { expr; input; _ } | P.Extend_op { expr; input; _ } ->
    exprs_of_plan input (expr :: acc)
  | P.Nest_op { func; input; _ } -> exprs_of_plan input (func :: acc)
  | P.Project_op { input; _ } -> exprs_of_plan input acc
  | P.Apply_op { subquery; input; _ } ->
    exprs_of_plan input
      (exprs_of_plan subquery.P.plan (subquery.P.result :: acc))
  | P.Union_op { left; right } -> exprs_of_plan left (exprs_of_plan right acc)
  | P.Index_join { lkey; residual; left; _ }
  | P.Index_semijoin { lkey; residual; left; _ } ->
    exprs_of_plan left ((lkey :: Option.to_list residual) @ acc)
  | P.Index_nestjoin { lkey; residual; func; left; _ } ->
    exprs_of_plan left ((lkey :: func :: Option.to_list residual) @ acc)

let exprs_of_query { P.plan; result } = exprs_of_plan plan [ result ]

(* Correlation-column analysis for apply memoization: the cache key should
   be the values of the field paths through which the subquery reads the
   outer row (e.g. [x.b]), not the whole outer tuple — otherwise a cache
   keyed on distinct rows never hits. For each correlation variable we
   collect the maximal [Field] chains rooted at it; a bare occurrence
   forces keying on the whole variable. Occurrences shadowed by inner
   binders are collected too — that only refines the key, which is safe. *)
let correlation_key_exprs corr query =
  let bare = Hashtbl.create 8 in
  let paths = Hashtbl.create 8 in
  let rec root_chain e =
    match e with
    | Ast.Var v -> Some (v, "")
    | Ast.Field (e1, l) ->
      Option.map (fun (v, c) -> (v, c ^ "." ^ l)) (root_chain e1)
    | _ -> None
  in
  let rec collect e =
    match e with
    | Ast.Var v -> if Sset.mem v corr then Hashtbl.replace bare v ()
    | Ast.Field (e1, _) -> begin
      match root_chain e with
      | Some (v, chain) when Sset.mem v corr ->
        Hashtbl.replace paths (v, chain) e
      | Some _ -> ()
      | None -> collect e1
    end
    | Ast.Const _ | Ast.TableRef _ -> ()
    | Ast.TupleE fields -> List.iter (fun (_, e1) -> collect e1) fields
    | Ast.SetE es | Ast.ListE es -> List.iter collect es
    | Ast.Unop (_, e1) | Ast.Agg (_, e1) | Ast.UnnestE e1
    | Ast.VariantE (_, e1) | Ast.IsTag (e1, _) | Ast.AsTag (e1, _) ->
      collect e1
    | Ast.If (c, a, b) ->
      collect c;
      collect a;
      collect b
    | Ast.Binop (_, a, b) ->
      collect a;
      collect b
    | Ast.Quant (_, _, s, p) ->
      collect s;
      collect p
    | Ast.Let (_, d, b) ->
      collect d;
      collect b
    | Ast.Sfw { select; from; where } ->
      collect select;
      List.iter (fun (_, op) -> collect op) from;
      Option.iter collect where
  in
  List.iter collect (exprs_of_query query);
  Sset.elements corr
  |> List.concat_map (fun v ->
         if Hashtbl.mem bare v then [ Ast.Var v ]
         else begin
           let own =
             Hashtbl.fold
               (fun (v', _) e acc -> if String.equal v v' then e :: acc else acc)
               paths []
           in
           match own with [] -> [ Ast.Var v ] | _ :: _ -> own
         end)

(* --- instrumentation frames --------------------------------------------- *)

(* A frame names the counter sink for the operator being executed and, when
   instrumenting, the matching annotation node. Uninstrumented runs share a
   single global sink for every operator (the legacy [?stats] behaviour);
   instrumented runs give each operator its own [Stats.node], descending
   the annotation tree in lockstep with the plan ([Analyze.children]
   order). *)
type frame = { sink : Stats.t; node : Stats.node option }

let child_frame fr i =
  match fr.node with
  | None -> fr
  | Some n -> (
    match List.nth_opt n.Stats.children i with
    | Some c -> { sink = c.Stats.counters; node = Some c }
    | None -> fr)

let c0 fr = child_frame fr 0
let c1 fr = child_frame fr 1
let clock = Monotonic_clock.now

let rec rows_fr fr catalog env plan =
  match fr.node with
  | None -> exec_rows fr catalog env plan
  | Some n ->
    let t0 = clock () in
    let out = exec_rows fr catalog env plan in
    n.Stats.time_ns <- Int64.add n.Stats.time_ns (Int64.sub (clock ()) t0);
    n.Stats.loops <- n.Stats.loops + 1;
    out

and exec_rows fr catalog env plan =
  let stats = fr.sink in
  let out =
    match plan with
    | P.Unit_row -> [ env ]
    | P.Scan { table; var } ->
      let t = Cobj.Catalog.find_exn table catalog in
      List.map (fun v -> Env.bind var v env) (Cobj.Table.rows t)
    | P.Filter { pred; input } ->
      let predfn = Compile.pred catalog pred in
      rows_fr (c0 fr) catalog env input
      |> List.filter (fun r ->
             stats.Stats.predicate_evals <- stats.Stats.predicate_evals + 1;
             predfn r)
    | P.Nl_join { pred; left; right } ->
      let predfn = Compile.pred catalog pred in
      let rrows = rows_fr (c1 fr) catalog env right in
      rows_fr (c0 fr) catalog env left
      |> List.concat_map (fun l ->
             List.filter_map
               (fun r ->
                 stats.Stats.predicate_evals <-
                   stats.Stats.predicate_evals + 1;
                 let merged = Env.append r l in
                 if predfn merged then Some merged else None)
               rrows)
    | P.Hash_join { lkey; rkey; residual; left; right } ->
      let lkeyfn = Compile.expr catalog lkey in
      let rok = compile_residual ~stats catalog residual in
      let table = build ~stats (c1 fr) catalog env right rkey in
      rows_fr (c0 fr) catalog env left
      |> List.concat_map (fun l ->
             probe ~stats table (lkeyfn l)
             |> List.filter_map (fun r ->
                    let merged = Env.append r l in
                    if rok merged then Some merged else None))
    | P.Merge_join { lkey; rkey; residual; left; right } ->
      let rok = compile_residual ~stats catalog residual in
      let lgroups = sorted_groups ~stats (c0 fr) catalog env left lkey in
      let rgroups = sorted_groups ~stats (c1 fr) catalog env right rkey in
      merge_groups lgroups rgroups
      |> List.concat_map (fun (ls, rs) ->
             List.concat_map
               (fun l ->
                 List.filter_map
                   (fun r ->
                     let merged = Env.append r l in
                     if rok merged then Some merged else None)
                   rs)
               ls)
    | P.Nl_semijoin { pred; anti; left; right } ->
      let predfn = Compile.pred catalog pred in
      let rrows = rows_fr (c1 fr) catalog env right in
      rows_fr (c0 fr) catalog env left
      |> List.filter (fun l ->
             let found =
               List.exists
                 (fun r ->
                   stats.Stats.predicate_evals <-
                     stats.Stats.predicate_evals + 1;
                   predfn (Env.append r l))
                 rrows
             in
             if anti then not found else found)
    | P.Hash_semijoin { lkey; rkey; residual; anti; left; right } ->
      let lkeyfn = Compile.expr catalog lkey in
      let rok = compile_residual ~stats catalog residual in
      let table = build ~stats (c1 fr) catalog env right rkey in
      rows_fr (c0 fr) catalog env left
      |> List.filter (fun l ->
             let found =
               probe ~stats table (lkeyfn l)
               |> List.exists (fun r -> rok (Env.append r l))
             in
             if anti then not found else found)
    | P.Merge_semijoin { lkey; rkey; residual; anti; left; right } ->
      let rok = compile_residual ~stats catalog residual in
      let lgroups = sorted_groups ~stats (c0 fr) catalog env left lkey in
      let rgroups = sorted_groups ~stats (c1 fr) catalog env right rkey in
      (* march the two sorted group lists; every left group is emitted or
         dropped depending on whether a matching right member exists *)
      let rec go ls rs acc =
        match ls with
        | [] -> List.rev acc
        | (lk, lrows) :: ls' ->
          let rec advance rs =
            match rs with
            | (rk, _) :: rs' when Value.compare rk lk < 0 -> advance rs'
            | _ -> rs
          in
          let rs = advance rs in
          let rrows =
            match rs with
            | (rk, rrows) :: _ when Value.compare rk lk = 0 -> rrows
            | _ -> []
          in
          let keep l =
            let matched = List.exists (fun r -> rok (Env.append r l)) rrows in
            if anti then not matched else matched
          in
          go ls' rs (List.rev_append (List.filter keep lrows) acc)
      in
      go lgroups rgroups []
    | P.Nl_outerjoin { pred; left; right } ->
      let predfn = Compile.pred catalog pred in
      let rrows = rows_fr (c1 fr) catalog env right in
      let rvars = P.vars_of right in
      rows_fr (c0 fr) catalog env left
      |> List.concat_map (fun l ->
             let matches =
               List.filter_map
                 (fun r ->
                   stats.Stats.predicate_evals <-
                     stats.Stats.predicate_evals + 1;
                   let merged = Env.append r l in
                   if predfn merged then Some merged else None)
                 rrows
             in
             match matches with [] -> [ pad_nulls rvars l ] | _ :: _ -> matches)
    | P.Hash_outerjoin { lkey; rkey; residual; left; right } ->
      let lkeyfn = Compile.expr catalog lkey in
      let rok = compile_residual ~stats catalog residual in
      let table = build ~stats (c1 fr) catalog env right rkey in
      let rvars = P.vars_of right in
      rows_fr (c0 fr) catalog env left
      |> List.concat_map (fun l ->
             let matches =
               probe ~stats table (lkeyfn l)
               |> List.filter_map (fun r ->
                      let merged = Env.append r l in
                      if rok merged then Some merged else None)
             in
             match matches with [] -> [ pad_nulls rvars l ] | _ :: _ -> matches)
    | P.Merge_outerjoin { lkey; rkey; residual; left; right } ->
      let rok = compile_residual ~stats catalog residual in
      let rvars = P.vars_of right in
      let lgroups = sorted_groups ~stats (c0 fr) catalog env left lkey in
      let rgroups = sorted_groups ~stats (c1 fr) catalog env right rkey in
      (* every left row survives: matched rows merge, the rest pad *)
      let rec go ls rs acc =
        match ls, rs with
        | [], _ -> List.rev acc
        | (_, lrows) :: ls', [] ->
          go ls' []
            (List.rev_append (List.map (pad_nulls rvars) lrows) acc)
        | (lk, lrows) :: ls', (rk, rrows) :: rs' ->
          let c = Value.compare lk rk in
          if c = 0 then
            let out =
              List.concat_map
                (fun l ->
                  let matches =
                    List.filter_map
                      (fun r ->
                        let merged = Env.append r l in
                        if rok merged then Some merged else None)
                      rrows
                  in
                  match matches with
                  | [] -> [ pad_nulls rvars l ]
                  | _ :: _ -> matches)
                lrows
            in
            go ls' rs' (List.rev_append out acc)
          else if c < 0 then
            go ls' rs
              (List.rev_append (List.map (pad_nulls rvars) lrows) acc)
          else go ls rs' acc
      in
      go lgroups rgroups []
    | P.Nl_nestjoin { pred; func; label; left; right } ->
      let predfn = Compile.pred catalog pred in
      let funcfn = Compile.expr catalog func in
      let rrows = rows_fr (c1 fr) catalog env right in
      rows_fr (c0 fr) catalog env left
      |> List.map (fun l ->
             let members =
               List.filter_map
                 (fun r ->
                   stats.Stats.predicate_evals <-
                     stats.Stats.predicate_evals + 1;
                   let merged = Env.append r l in
                   if predfn merged then Some (funcfn merged) else None)
                 rrows
             in
             Env.bind label (Value.set members) l)
    | P.Hash_nestjoin { lkey; rkey; residual; func; label; left; right } ->
      let lkeyfn = Compile.expr catalog lkey in
      let rok = compile_residual ~stats catalog residual in
      let funcfn = Compile.expr catalog func in
      let table = build ~stats (c1 fr) catalog env right rkey in
      rows_fr (c0 fr) catalog env left
      |> List.map (fun l ->
             let members =
               probe ~stats table (lkeyfn l)
               |> List.filter_map (fun r ->
                      let merged = Env.append r l in
                      if rok merged then Some (funcfn merged) else None)
             in
             Env.bind label (Value.set members) l)
    | P.Hash_nestjoin_left { lkey; rkey; residual; func; label; left; right }
      ->
      (* Streaming right against a left build table: emits a group as soon
         as a right row matches, so it is only correct when [rkey] is unique
         on the right input (§6). Dangling left rows flush at the end. *)
      let lkeyfn = Compile.expr catalog lkey in
      let rkeyfn = Compile.expr catalog rkey in
      let rok = compile_residual ~stats catalog residual in
      let funcfn = Compile.expr catalog func in
      let lrows = rows_fr (c0 fr) catalog env left in
      let table = Vtbl.create 256 in
      List.iter
        (fun l ->
          stats.Stats.hash_builds <- stats.Stats.hash_builds + 1;
          let k = lkeyfn l in
          Vtbl.replace table k
            (l :: (try Vtbl.find table k with Not_found -> [])))
        lrows;
      let matched : (Env.t * Env.t list) list ref = ref [] in
      let matched_keys = Vtbl.create 256 in
      rows_fr (c1 fr) catalog env right
      |> List.iter (fun r ->
             let k = rkeyfn r in
             stats.Stats.hash_probes <- stats.Stats.hash_probes + 1;
             match Vtbl.find_opt table k with
             | None -> ()
             | Some ls ->
               List.iter
                 (fun l ->
                   let merged = Env.append r l in
                   if rok merged then begin
                     matched := (l, [ merged ]) :: !matched;
                     Vtbl.replace matched_keys (Env.to_value l) ()
                   end)
                 ls);
      let emitted =
        List.rev_map
          (fun (l, merged) ->
            Env.bind label (Value.set (List.map funcfn merged)) l)
          !matched
      in
      let dangling =
        List.filter_map
          (fun l ->
            if Vtbl.mem matched_keys (Env.to_value l) then None
            else Some (Env.bind label (Value.Set []) l))
          lrows
      in
      emitted @ dangling
    | P.Merge_nestjoin { lkey; rkey; residual; func; label; left; right } ->
      let rok = compile_residual ~stats catalog residual in
      let funcfn = Compile.expr catalog func in
      let lgroups = sorted_groups ~stats (c0 fr) catalog env left lkey in
      let rgroups = sorted_groups ~stats (c1 fr) catalog env right rkey in
      (* Unlike merge join, every left group survives (possibly with ∅). *)
      let rec go ls rs acc =
        match ls, rs with
        | [], _ -> List.rev acc
        | (lk, lrows) :: ls', [] ->
          let out = List.map (emit_group []) lrows in
          ignore lk;
          go ls' [] (List.rev_append out acc)
        | (lk, lrows) :: ls', (rk, rrows) :: rs' ->
          let c = Value.compare lk rk in
          if c = 0 then
            go ls' rs'
              (List.rev_append (List.map (emit_group rrows) lrows) acc)
          else if c < 0 then
            go ls' rs (List.rev_append (List.map (emit_group []) lrows) acc)
          else go ls rs' acc
      and emit_group rrows l =
        let members =
          List.filter_map
            (fun r ->
              let merged = Env.append r l in
              if rok merged then Some (funcfn merged) else None)
            rrows
        in
        Env.bind label (Value.set members) l
      in
      go lgroups rgroups []
    | P.Unnest_op { expr; var; input } ->
      let exprfn = Compile.expr catalog expr in
      rows_fr (c0 fr) catalog env input
      |> List.concat_map (fun r ->
             Value.elements (exprfn r)
             |> List.map (fun x -> Env.bind var x r))
    | P.Nest_op { by; label; func; nulls; input } ->
      let input_rows = rows_fr (c0 fr) catalog env input in
      let groups = Vtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun r ->
          stats.Stats.hash_builds <- stats.Stats.hash_builds + 1;
          let k = Env.to_value (Env.project by r) in
          match Vtbl.find_opt groups k with
          | Some members -> Vtbl.replace groups k (r :: members)
          | None ->
            order := (k, r) :: !order;
            Vtbl.add groups k [ r ])
        input_rows;
      let funcfn = Compile.expr catalog func in
      let padded r =
        nulls <> []
        && List.for_all (fun v -> Value.equal (Env.find v r) Value.Null) nulls
      in
      List.rev_map
        (fun (k, representative) ->
          let members = Vtbl.find groups k in
          let set =
            Value.set
              (List.filter_map
                 (fun r -> if padded r then None else Some (funcfn r))
                 members)
          in
          let base =
            List.fold_left
              (fun acc v -> Env.bind v (Env.find v representative) acc)
              env by
          in
          Env.bind label set base)
        !order
    | P.Extend_op { var; expr; input } ->
      let exprfn = Compile.expr catalog expr in
      rows_fr (c0 fr) catalog env input
      |> List.map (fun r -> Env.bind var (exprfn r) r)
    | P.Project_op { vars; input } ->
      rows_fr (c0 fr) catalog env input
      |> List.map (fun r -> Env.append (Env.project vars r) env)
      |> List.sort_uniq Env.compare
    | P.Apply_op { var; subquery; memo; input } ->
      let input_rows = rows_fr (c0 fr) catalog env input in
      let subfr = c1 fr in
      if not memo then
        List.map
          (fun r ->
            stats.Stats.applies <- stats.Stats.applies + 1;
            Env.bind var (run_under_fr subfr catalog r subquery) r)
          input_rows
      else begin
        let corr =
          Sset.inter (query_free_vars subquery)
            (Sset.of_list (P.vars_of input))
        in
        let key_exprs = correlation_key_exprs corr subquery in
        let cache = Vtbl.create 64 in
        let key_fns = List.map (Compile.expr catalog) key_exprs in
        List.map
          (fun r ->
            let k = Value.List (List.map (fun f -> f r) key_fns) in
            let v =
              match Vtbl.find_opt cache k with
              | Some v ->
                stats.Stats.apply_hits <- stats.Stats.apply_hits + 1;
                v
              | None ->
                stats.Stats.applies <- stats.Stats.applies + 1;
                let v = run_under_fr subfr catalog r subquery in
                Vtbl.add cache k v;
                v
            in
            Env.bind var v r)
          input_rows
      end
    | P.Index_join { lkey; table; var; field; residual; left } ->
      let lkeyfn = Compile.expr catalog lkey in
      let rok = compile_residual ~stats catalog residual in
      let t = Cobj.Catalog.find_exn table catalog in
      rows_fr (c0 fr) catalog env left
      |> List.concat_map (fun l ->
             stats.Stats.hash_probes <- stats.Stats.hash_probes + 1;
             Cobj.Table.index_lookup field t (lkeyfn l)
             |> List.filter_map (fun rv ->
                    let merged = Env.bind var rv l in
                    if rok merged then Some merged else None))
    | P.Index_semijoin { lkey; table; var; field; residual; anti; left } ->
      let lkeyfn = Compile.expr catalog lkey in
      let rok = compile_residual ~stats catalog residual in
      let t = Cobj.Catalog.find_exn table catalog in
      rows_fr (c0 fr) catalog env left
      |> List.filter (fun l ->
             stats.Stats.hash_probes <- stats.Stats.hash_probes + 1;
             let found =
               Cobj.Table.index_lookup field t (lkeyfn l)
               |> List.exists (fun rv -> rok (Env.bind var rv l))
             in
             if anti then not found else found)
    | P.Index_nestjoin { lkey; table; var; field; residual; func; label; left }
      ->
      let lkeyfn = Compile.expr catalog lkey in
      let rok = compile_residual ~stats catalog residual in
      let funcfn = Compile.expr catalog func in
      let t = Cobj.Catalog.find_exn table catalog in
      rows_fr (c0 fr) catalog env left
      |> List.map (fun l ->
             stats.Stats.hash_probes <- stats.Stats.hash_probes + 1;
             let members =
               Cobj.Table.index_lookup field t (lkeyfn l)
               |> List.filter_map (fun rv ->
                      let merged = Env.bind var rv l in
                      if rok merged then Some (funcfn merged) else None)
             in
             Env.bind label (Value.set members) l)
    | P.Union_op { left; right } ->
      List.sort_uniq Env.compare
        (rows_fr (c0 fr) catalog env left @ rows_fr (c1 fr) catalog env right)
  in
  stats.Stats.rows_out <- stats.Stats.rows_out + List.length out;
  out

(* [rok] below is the residual check compiled once per operator; [keyfn]
   likewise for key expressions. Hash/sort work counts on the operator that
   does it; the rows produced by the operand count on the operand's own
   frame. *)
and compile_residual ~stats catalog residual =
  match residual with
  | None -> fun _ -> true
  | Some pred ->
    let f = Compile.pred catalog pred in
    fun merged ->
      stats.Stats.predicate_evals <- stats.Stats.predicate_evals + 1;
      f merged

and build ~stats fr catalog env plan key_expr =
  let keyfn = Compile.expr catalog key_expr in
  let table = Vtbl.create 256 in
  let rrows = rows_fr fr catalog env plan in
  (* Preserve input order within buckets. *)
  List.iter
    (fun r ->
      stats.Stats.hash_builds <- stats.Stats.hash_builds + 1;
      let k = keyfn r in
      match Vtbl.find_opt table k with
      | Some bucket -> Vtbl.replace table k (r :: bucket)
      | None -> Vtbl.add table k [ r ])
    rrows;
  table

and probe ~stats table k =
  stats.Stats.hash_probes <- stats.Stats.hash_probes + 1;
  match Vtbl.find_opt table k with
  | Some bucket -> List.rev bucket
  | None -> []

and sorted_groups ~stats fr catalog env plan key_expr =
  let keyfn = Compile.expr catalog key_expr in
  let produced = rows_fr fr catalog env plan in
  stats.Stats.sorts <- stats.Stats.sorts + List.length produced;
  let keyed = List.map (fun r -> (keyfn r, r)) produced in
  let sorted =
    List.sort (fun (k1, _) (k2, _) -> Value.compare k1 k2) keyed
  in
  (* Linear pass over the sorted list, grouping equal adjacent keys. *)
  let rec group = function
    | [] -> []
    | (k, r) :: rest ->
      let rec take acc = function
        | (k', r') :: more when Value.equal k k' -> take (r' :: acc) more
        | remaining -> (List.rev acc, remaining)
      in
      let same, others = take [ r ] rest in
      (k, same) :: group others
  in
  group sorted

and merge_groups ls rs =
  match ls, rs with
  | [], _ | _, [] -> []
  | (lk, lrows) :: ls', (rk, rrows) :: rs' ->
    let c = Value.compare lk rk in
    if c = 0 then (lrows, rrows) :: merge_groups ls' rs'
    else if c < 0 then merge_groups ls' rs
    else merge_groups ls rs'

and run_under_fr fr catalog env { P.plan; result } =
  let resultfn = Compile.expr catalog result in
  let produced = rows_fr fr catalog env plan in
  Value.set (List.map resultfn produced)

let frame_of_stats stats = { sink = stats; node = None }
let frame_of_node node = { sink = node.Stats.counters; node = Some node }

let rows ?(stats = no_stats) catalog env plan =
  rows_fr (frame_of_stats stats) catalog env plan

let rows_instrumented node catalog env plan =
  rows_fr (frame_of_node node) catalog env plan

let run_under ?(stats = no_stats) catalog env query =
  run_under_fr (frame_of_stats stats) catalog env query

let run ?stats catalog query = run_under ?stats catalog Env.empty query

let run_instrumented catalog query =
  let tree = Analyze.tree_of_query query in
  let v = run_under_fr (frame_of_node tree) catalog Env.empty query in
  (v, tree)
