module Value = Cobj.Value
module Env = Cobj.Env
module Ast = Lang.Ast
module Interp = Lang.Interp
module P = Physical

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* A join key paired with its [Value.hash], computed exactly once per row
   and reused for the Bloom filter, the partition index and the hash-table
   insert/probe (Hashtbl.Make calls [Hkey.hash], which is now a field
   read — no rehash of the value). *)
module Hkey = struct
  type t = { h : int; v : Value.t }

  let equal a b = a.h = b.h && Value.equal a.v b.v
  let hash k = k.h
end

module Htbl = Hashtbl.Make (Hkey)

let hkey v = { Hkey.h = Value.hash v; v }

module Sset = Ast.String_set

(* Free (correlation) variables of physical plans, mirroring
   [Algebra.Plan.free_vars]. *)
let rec free_vars plan =
  let expr_free bound e = Sset.diff (Ast.free_vars e) bound in
  let bound_of p = Sset.of_list (P.vars_of p) in
  let binary_keys left right lkey rkey residual =
    let lb = bound_of left and rb = bound_of right in
    let both = Sset.union lb rb in
    Sset.union
      (Sset.union (free_vars left) (free_vars right))
      (Sset.union
         (Sset.union (expr_free lb lkey) (expr_free rb rkey))
         (match residual with
         | None -> Sset.empty
         | Some r -> expr_free both r))
  in
  match plan with
  | P.Unit_row | P.Scan _ -> Sset.empty
  | P.Filter { pred; input } ->
    Sset.union (free_vars input) (expr_free (bound_of input) pred)
  | P.Nl_join { pred; left; right }
  | P.Nl_semijoin { pred; left; right; _ }
  | P.Nl_outerjoin { pred; left; right } ->
    Sset.union
      (Sset.union (free_vars left) (free_vars right))
      (expr_free (Sset.union (bound_of left) (bound_of right)) pred)
  | P.Hash_join { lkey; rkey; residual; left; right }
  | P.Merge_join { lkey; rkey; residual; left; right }
  | P.Hash_semijoin { lkey; rkey; residual; left; right; _ }
  | P.Merge_semijoin { lkey; rkey; residual; left; right; _ }
  | P.Hash_outerjoin { lkey; rkey; residual; left; right }
  | P.Merge_outerjoin { lkey; rkey; residual; left; right } ->
    binary_keys left right lkey rkey residual
  | P.Nl_nestjoin { pred; func; left; right; _ } ->
    let both = Sset.union (bound_of left) (bound_of right) in
    Sset.union
      (Sset.union (free_vars left) (free_vars right))
      (Sset.union (expr_free both pred) (expr_free both func))
  | P.Hash_nestjoin { lkey; rkey; residual; func; left; right; _ }
  | P.Hash_nestjoin_left { lkey; rkey; residual; func; left; right; _ }
  | P.Merge_nestjoin { lkey; rkey; residual; func; left; right; _ } ->
    let both = Sset.union (bound_of left) (bound_of right) in
    Sset.union
      (binary_keys left right lkey rkey residual)
      (expr_free both func)
  | P.Unnest_op { expr; input; _ } ->
    Sset.union (free_vars input) (expr_free (bound_of input) expr)
  | P.Nest_op { func; input; _ } ->
    Sset.union (free_vars input) (expr_free (bound_of input) func)
  | P.Extend_op { expr; input; _ } ->
    Sset.union (free_vars input) (expr_free (bound_of input) expr)
  | P.Project_op { input; _ } -> free_vars input
  | P.Apply_op { subquery; input; _ } ->
    Sset.union (free_vars input)
      (Sset.diff (query_free_vars subquery) (bound_of input))
  | P.Union_op { left; right } ->
    Sset.union (free_vars left) (free_vars right)
  | P.Index_join { lkey; residual; left; var; _ }
  | P.Index_semijoin { lkey; residual; left; var; _ } ->
    let lb = bound_of left in
    Sset.union (free_vars left)
      (Sset.union (expr_free lb lkey)
         (match residual with
         | None -> Sset.empty
         | Some r -> expr_free (Sset.add var lb) r))
  | P.Index_nestjoin { lkey; residual; func; left; var; _ } ->
    let lb = bound_of left in
    let both = Sset.add var lb in
    Sset.union (free_vars left)
      (Sset.union (expr_free lb lkey)
         (Sset.union (expr_free both func)
            (match residual with
            | None -> Sset.empty
            | Some r -> expr_free both r)))

and query_free_vars { P.plan; result } =
  Sset.union (free_vars plan)
    (Sset.diff (Ast.free_vars result) (Sset.of_list (P.vars_of plan)))

let no_stats = Stats.create ()

let pad_nulls rvars l =
  List.fold_left (fun acc v -> Env.bind v Value.Null acc) l rvars

(* All scalar expressions appearing in a physical query (preds, keys,
   residuals, functions, results — including nested applies). *)
let rec exprs_of_plan plan acc =
  match plan with
  | P.Unit_row | P.Scan _ -> acc
  | P.Filter { pred; input } -> exprs_of_plan input (pred :: acc)
  | P.Nl_join { pred; left; right }
  | P.Nl_semijoin { pred; left; right; _ }
  | P.Nl_outerjoin { pred; left; right } ->
    exprs_of_plan left (exprs_of_plan right (pred :: acc))
  | P.Hash_join { lkey; rkey; residual; left; right }
  | P.Merge_join { lkey; rkey; residual; left; right }
  | P.Hash_semijoin { lkey; rkey; residual; left; right; _ }
  | P.Merge_semijoin { lkey; rkey; residual; left; right; _ }
  | P.Hash_outerjoin { lkey; rkey; residual; left; right }
  | P.Merge_outerjoin { lkey; rkey; residual; left; right } ->
    let acc = lkey :: rkey :: Option.to_list residual @ acc in
    exprs_of_plan left (exprs_of_plan right acc)
  | P.Nl_nestjoin { pred; func; left; right; _ } ->
    exprs_of_plan left (exprs_of_plan right (pred :: func :: acc))
  | P.Hash_nestjoin { lkey; rkey; residual; func; left; right; _ }
  | P.Hash_nestjoin_left { lkey; rkey; residual; func; left; right; _ }
  | P.Merge_nestjoin { lkey; rkey; residual; func; left; right; _ } ->
    let acc = lkey :: rkey :: func :: Option.to_list residual @ acc in
    exprs_of_plan left (exprs_of_plan right acc)
  | P.Unnest_op { expr; input; _ } | P.Extend_op { expr; input; _ } ->
    exprs_of_plan input (expr :: acc)
  | P.Nest_op { func; input; _ } -> exprs_of_plan input (func :: acc)
  | P.Project_op { input; _ } -> exprs_of_plan input acc
  | P.Apply_op { subquery; input; _ } ->
    exprs_of_plan input
      (exprs_of_plan subquery.P.plan (subquery.P.result :: acc))
  | P.Union_op { left; right } -> exprs_of_plan left (exprs_of_plan right acc)
  | P.Index_join { lkey; residual; left; _ }
  | P.Index_semijoin { lkey; residual; left; _ } ->
    exprs_of_plan left ((lkey :: Option.to_list residual) @ acc)
  | P.Index_nestjoin { lkey; residual; func; left; _ } ->
    exprs_of_plan left ((lkey :: func :: Option.to_list residual) @ acc)

let exprs_of_query { P.plan; result } = exprs_of_plan plan [ result ]

(* Correlation-column analysis for apply memoization: the cache key should
   be the values of the field paths through which the subquery reads the
   outer row (e.g. [x.b]), not the whole outer tuple — otherwise a cache
   keyed on distinct rows never hits. For each correlation variable we
   collect the maximal [Field] chains rooted at it; a bare occurrence
   forces keying on the whole variable. Occurrences shadowed by inner
   binders are collected too — that only refines the key, which is safe. *)
let correlation_key_exprs corr query =
  let bare = Hashtbl.create 8 in
  let paths = Hashtbl.create 8 in
  let rec root_chain e =
    match e with
    | Ast.Var v -> Some (v, "")
    | Ast.Field (e1, l) ->
      Option.map (fun (v, c) -> (v, c ^ "." ^ l)) (root_chain e1)
    | _ -> None
  in
  let rec collect e =
    match e with
    | Ast.Var v -> if Sset.mem v corr then Hashtbl.replace bare v ()
    | Ast.Field (e1, _) -> begin
      match root_chain e with
      | Some (v, chain) when Sset.mem v corr ->
        Hashtbl.replace paths (v, chain) e
      | Some _ -> ()
      | None -> collect e1
    end
    | Ast.Const _ | Ast.TableRef _ -> ()
    | Ast.TupleE fields -> List.iter (fun (_, e1) -> collect e1) fields
    | Ast.SetE es | Ast.ListE es -> List.iter collect es
    | Ast.Unop (_, e1) | Ast.Agg (_, e1) | Ast.UnnestE e1
    | Ast.VariantE (_, e1) | Ast.IsTag (e1, _) | Ast.AsTag (e1, _) ->
      collect e1
    | Ast.If (c, a, b) ->
      collect c;
      collect a;
      collect b
    | Ast.Binop (_, a, b) ->
      collect a;
      collect b
    | Ast.Quant (_, _, s, p) ->
      collect s;
      collect p
    | Ast.Let (_, d, b) ->
      collect d;
      collect b
    | Ast.Sfw { select; from; where } ->
      collect select;
      List.iter (fun (_, op) -> collect op) from;
      Option.iter collect where
  in
  List.iter collect (exprs_of_query query);
  Sset.elements corr
  |> List.concat_map (fun v ->
         if Hashtbl.mem bare v then [ Ast.Var v ]
         else begin
           let own =
             Hashtbl.fold
               (fun (v', _) e acc -> if String.equal v v' then e :: acc else acc)
               paths []
           in
           match own with [] -> [ Ast.Var v ] | _ :: _ -> own
         end)

(* --- instrumentation frames --------------------------------------------- *)

(* A frame names the counter sink for the operator being executed and, when
   instrumenting, the matching annotation node. Uninstrumented runs share a
   single global sink for every operator (the legacy [?stats] behaviour);
   instrumented runs give each operator its own [Stats.node], descending
   the annotation tree in lockstep with the plan ([Analyze.children]
   order). [jobs] is the partition-parallel width: 1 executes everything on
   the calling domain, larger values let eligible operators fan their own
   per-row work out over a domain pool (operands are still produced
   serially, so child counters and timings are untouched). [bloom] enables
   sideways information passing in the hash-join family: build sides
   populate a Bloom filter consulted before each probe. Pruned probes still
   count in [hash_probes], so disabling bloom changes only the bloom
   counters, never the rest of a Stats tree. *)
(* [vector] flips the hot operators onto the columnar batch engine
   ([exec_batches]); it is forced off when [Compile] is disabled, since
   the kernels mirror the compiled closures, not the interpreter.
   [batch] is the physical batch width. *)
type frame = { sink : Stats.t; node : Stats.node option; jobs : int;
               bloom : bool; vector : bool; batch : int }

let child_frame fr i =
  match fr.node with
  | None -> fr
  | Some n -> (
    match List.nth_opt n.Stats.children i with
    | Some c -> { fr with sink = c.Stats.counters; node = Some c }
    | None -> fr)

let c0 fr = child_frame fr 0
let c1 fr = child_frame fr 1
let clock = Monotonic_clock.now

(* --- columnar batch engine ------------------------------------------------ *)

let default_batch_size = 1024

let default_vector () =
  match Sys.getenv_opt "NESTQL_VECTOR" with
  | Some ("0" | "false" | "no" | "off") -> false
  | _ -> true

let default_batch () =
  match Sys.getenv_opt "NESTQL_BATCH" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | _ -> default_batch_size)
  | None -> default_batch_size

(* The vectorizable fragment: operators [exec_batches] implements.
   Everything else transparently falls back to the row engine, with
   batches materialized at the boundary. *)
let vectorizable = function
  | P.Scan _ | P.Filter _ | P.Extend_op _ | P.Project_op _ | P.Hash_join _
  | P.Hash_semijoin _ | P.Hash_outerjoin _ | P.Hash_nestjoin _ ->
    true
  | _ -> false

(* Kernel fallbacks are only recorded by operators that never delegate
   on [jobs] (filter, extend), keeping every [exec.batch.*] counter
   invariant under the domain count. *)
let note_fallback () =
  if Obs.Metrics.enabled () then Obs.Metrics.incr "exec.batch.kernel_fallbacks"

(* Evaluate a key expression over a batch: kernel when possible, row
   closure otherwise.  A kernel that raises is discarded before any
   probe ran, so replaying row-at-a-time reproduces the row engine's
   counters and first error exactly. *)
let key_col kern b =
  match kern with
  | Some k when Batch.is_cols b -> (
    match k b with
    | c -> `Col c
    | exception (Value.Type_error _ | Interp.Undefined _) -> `RowWise)
  | _ -> `RowWise

let key_at keyv keyfn b i =
  match keyv with
  | `Col c -> Batch.get c i
  | `RowWise -> keyfn (Batch.env_at b i)

(* --- partition-parallel helpers ------------------------------------------ *)

(* Parallel sections run operator-local work (probes, predicate and
   function evaluation) on pool domains. Each worker partition gets a
   private [Stats.t], merged into the operator's own sink in deterministic
   partition order afterwards, so instrumented trees and global totals are
   identical to a serial run. Output comes back in serial row order:
   morsels are index ranges and hash partitions scatter per-left-row
   results into a dense array indexed by the left row's input position.
   Operands are always produced serially before a region starts, and
   worker bodies never re-enter the executor, so regions never nest. *)

let morsel_min = 16 (* fewer input rows than this: scheduling isn't worth it *)
let join_min = 2 (* partitioned joins parallelize from this many left rows *)

let merge_parts stats parts =
  Array.iter (fun p -> Stats.add ~into:stats p) parts

(* Order-preserving parallel map over index-range morsels. [f] receives the
   morsel's private counter sink. *)
let par_map ~jobs ~stats f rows =
  let arr = Array.of_list rows in
  let n = Array.length arr in
  let k = min (jobs * 4) n in
  let out = Array.make k [] in
  let parts = Array.init k (fun _ -> Stats.create ()) in
  Pool.run ~jobs k (fun c ->
      let lo = c * n / k and hi = (c + 1) * n / k in
      let st = parts.(c) in
      let acc = ref [] in
      for i = hi - 1 downto lo do
        acc := f st arr.(i) :: !acc
      done;
      out.(c) <- !acc);
  merge_parts stats parts;
  List.concat (Array.to_list out)

(* Order-preserving parallel filter. *)
let par_filter ~jobs ~stats pred rows =
  let arr = Array.of_list rows in
  let n = Array.length arr in
  let keep = Array.make n false in
  let k = min (jobs * 4) n in
  let parts = Array.init k (fun _ -> Stats.create ()) in
  Pool.run ~jobs k (fun c ->
      let lo = c * n / k and hi = (c + 1) * n / k in
      let st = parts.(c) in
      for i = lo to hi - 1 do
        keep.(i) <- pred st arr.(i)
      done);
  merge_parts stats parts;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then out := arr.(i) :: !out
  done;
  !out

(* Residual compiled once per operator; evaluation counts into the
   partition's sink (the parallel counterpart of [compile_residual]). *)
let residual_fn catalog = function
  | None -> None
  | Some pred -> Some (Compile.pred catalog pred)

let rok_part st rokfn merged =
  match rokfn with
  | None -> true
  | Some f ->
    st.Stats.predicate_evals <- st.Stats.predicate_evals + 1;
    f merged

(* Hash-partitioned parallel join core: both sides split on the
   precomputed key hash; each partition builds and probes its own table on
   a worker, exactly as the serial operator would over that key subset.
   [emit st l matches] produces the output rows for one probe row (matches
   arrive in build-input order, like a serial probe); results scatter back
   into probe-input order, so the concatenation is the serial output,
   dangling tuples included.

   With [bloom], each build partition populates its own filter, all sized
   from the *total* build count — the same geometry a serial build uses —
   so their OR-merge is bit-identical to the serial filter and the prune
   counters are invariant under [jobs]. The merged filter screens probe
   rows before partitioning: a pruned row emits its (empty-match) output
   immediately and never touches a partition list, a worker, or the
   scatter machinery. This is the sideways-information-passing pushdown —
   probe rows are filtered at the source, upstream of partitioning. *)
let par_hash_partitioned ~jobs ~bloom ~stats ~lkeyfn ~rkeyfn ~emit lrows rrows
    =
  let nparts = jobs * 2 in
  let part h = h land max_int mod nparts in
  let rparts = Array.make nparts [] in
  let nbuild =
    List.fold_left
      (fun n r ->
        let k = hkey (rkeyfn r) in
        let p = part k.Hkey.h in
        rparts.(p) <- (r, k) :: rparts.(p);
        n + 1)
      0 rrows
  in
  let tables = Array.init nparts (fun _ -> Htbl.create 64) in
  let filters =
    if bloom then Some (Array.init nparts (fun _ -> Bloom.create nbuild))
    else None
  in
  let bparts = Array.init nparts (fun _ -> Stats.create ()) in
  Pool.run ~jobs nparts (fun p ->
      let st = bparts.(p) in
      let table = tables.(p) in
      List.iter
        (fun (r, k) ->
          st.Stats.hash_builds <- st.Stats.hash_builds + 1;
          (match filters with
          | Some fs -> Bloom.add fs.(p) k.Hkey.h
          | None -> ());
          match Htbl.find_opt table k with
          | Some bucket -> Htbl.replace table k (r :: bucket)
          | None -> Htbl.add table k [ r ])
        (List.rev rparts.(p)));
  merge_parts stats bparts;
  (* Skew accounting: the largest build partition bounds the parallel
     speedup of the whole join, so record max rows (per-operator via the
     sink) and the full per-partition distribution (metrics histogram). *)
  stats.Stats.partitions <- stats.Stats.partitions + nparts;
  Array.iter
    (fun l ->
      let rows = List.length l in
      if rows > stats.Stats.partition_max_rows then
        stats.Stats.partition_max_rows <- rows)
    rparts;
  if Obs.Metrics.enabled () then
    Array.iter
      (fun l -> Obs.Metrics.observe "par.partition_build_rows" (List.length l))
      rparts;
  let filter =
    Option.map
      (fun fs ->
        let global = Bloom.create nbuild in
        Array.iter (fun f -> Bloom.merge ~into:global f) fs;
        global)
      filters
  in
  let nl = List.length lrows in
  let out = Array.make nl [] in
  let lparts = Array.make nparts [] in
  List.iteri
    (fun i l ->
      let k = hkey (lkeyfn l) in
      let enqueue () =
        let p = part k.Hkey.h in
        lparts.(p) <- (i, l, k) :: lparts.(p)
      in
      match filter with
      | None -> enqueue ()
      | Some f ->
        stats.Stats.bloom_checks <- stats.Stats.bloom_checks + 1;
        if Bloom.mem f k.Hkey.h then enqueue ()
        else begin
          stats.Stats.bloom_prunes <- stats.Stats.bloom_prunes + 1;
          stats.Stats.hash_probes <- stats.Stats.hash_probes + 1;
          out.(i) <- emit stats l []
        end)
    lrows;
  let pparts = Array.init nparts (fun _ -> Stats.create ()) in
  Pool.run ~jobs nparts (fun p ->
      let st = pparts.(p) in
      let table = tables.(p) in
      List.iter
        (fun (i, l, k) ->
          st.Stats.hash_probes <- st.Stats.hash_probes + 1;
          let matches =
            match Htbl.find_opt table k with
            | Some bucket -> List.rev bucket
            | None -> []
          in
          out.(i) <- emit st l matches)
        lparts.(p));
  merge_parts stats pparts;
  List.concat (Array.to_list out)

let rec rows_fr fr catalog env plan =
  if fr.vector && vectorizable plan then
    (* The vectorized operator already timed and traced itself inside
       [batches_fr]; materialization at the boundary is not charged. *)
    Batch.rows_of_batches (batches_fr fr catalog env plan)
  else
    match fr.node with
    | None -> exec_rows fr catalog env plan
    | Some n ->
      let t0 = clock () in
      let out = exec_rows fr catalog env plan in
      let t1 = clock () in
      n.Stats.time_ns <- Int64.add n.Stats.time_ns (Int64.sub t1 t0);
      n.Stats.loops <- n.Stats.loops + 1;
      (* Instrumented operators double as trace spans — same clock readings,
         so the timeline agrees with EXPLAIN ANALYZE to the nanosecond. *)
      if Obs.Trace.enabled () then
        Obs.Trace.complete ~cat:"operator" ~start_ns:t0 ~stop_ns:t1
          ~args:(fun () ->
            [
              ("detail", Obs.Trace.Str n.Stats.detail);
              ("rows_out", Obs.Trace.Int (List.length out));
              ("loop", Obs.Trace.Int n.Stats.loops);
              ("est_rows", Obs.Trace.Num n.Stats.est_rows);
            ])
          n.Stats.op;
      out

(* Batch-flow entry: vectorizable operators produce batches natively;
   anything else runs on the row engine and is chunked at the boundary.
   Timing, loop counts and trace spans attach here for vectorized
   operators, symmetrically with [rows_fr] for row operators. *)
and batches_fr fr catalog env plan =
  if fr.vector && vectorizable plan then begin
    let out =
      match fr.node with
      | None -> exec_batches fr catalog env plan
      | Some n ->
        let t0 = clock () in
        let out = exec_batches fr catalog env plan in
        let t1 = clock () in
        n.Stats.time_ns <- Int64.add n.Stats.time_ns (Int64.sub t1 t0);
        n.Stats.loops <- n.Stats.loops + 1;
        n.Stats.vectorized <- true;
        if Obs.Trace.enabled () then
          Obs.Trace.complete ~cat:"operator" ~start_ns:t0 ~stop_ns:t1
            ~args:(fun () ->
              [
                ("detail", Obs.Trace.Str n.Stats.detail);
                ("rows_out", Obs.Trace.Int (Batch.live_total out));
                ("loop", Obs.Trace.Int n.Stats.loops);
                ("est_rows", Obs.Trace.Num n.Stats.est_rows);
              ])
            n.Stats.op;
        out
    in
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.incr ~by:(List.length out) "exec.batch.batches";
      Obs.Metrics.incr ~by:(Batch.live_total out) "exec.batch.rows"
    end;
    out
  end
  else Batch.of_rows ~size:fr.batch (rows_fr fr catalog env plan)

(* The columnar engine proper.  Contract with the row engine: for every
   operator below, the produced rows (in order) and every [Stats]
   counter are identical to [exec_rows] at any [jobs] — the qcheck
   differential oracle in [test_batch] enforces this.  Expression
   kernels that miss or raise fall back to the row-compiled closures,
   replayed in row order. *)
and exec_batches fr catalog env plan =
  let stats = fr.sink in
  let out, nout =
    match plan with
    | P.Scan { table; var } ->
      let t = Cobj.Catalog.find_exn table catalog in
      let trows = Cobj.Table.rows t in
      (Batch.of_values ~size:fr.batch var env trows, List.length trows)
    | P.Filter { pred; input } ->
      let predfn = Compile.pred catalog pred in
      let kern = Vexpr.compile catalog pred in
      let inb = batches_fr (c0 fr) catalog env input in
      let n = ref 0 in
      let out =
        List.filter_map
          (fun b ->
            let row_sel () =
              note_fallback ();
              let acc = ref [] in
              Batch.iter_live b (fun i ->
                  stats.Stats.predicate_evals <-
                    stats.Stats.predicate_evals + 1;
                  if predfn (Batch.env_at b i) then acc := i :: !acc);
              Array.of_list (List.rev !acc)
            in
            let sel =
              match kern with
              | Some k when Batch.is_cols b -> (
                match Vexpr.truth_sel k b with
                | sel ->
                  stats.Stats.predicate_evals <-
                    stats.Stats.predicate_evals + Batch.live b;
                  sel
                | exception (Value.Type_error _ | Interp.Undefined _) ->
                  row_sel ())
              | _ -> row_sel ()
            in
            n := !n + Array.length sel;
            if Array.length sel = 0 then None else Some (Batch.narrow b sel))
          inb
      in
      (out, !n)
    | P.Extend_op { var; expr; input } ->
      let exprfn = Compile.expr catalog expr in
      let kern = Vexpr.compile catalog expr in
      let inb = batches_fr (c0 fr) catalog env input in
      let n = ref 0 in
      let out =
        List.map
          (fun b ->
            n := !n + Batch.live b;
            let row_ext () =
              note_fallback ();
              let acc = ref [] in
              Batch.iter_live b (fun i ->
                  let r = Batch.env_at b i in
                  acc := Env.bind var (exprfn r) r :: !acc);
              Batch.of_rows_array (Array.of_list (List.rev !acc))
            in
            match kern with
            | Some k when Batch.is_cols b -> (
              match k b with
              | c -> Batch.add_col b var c
              | exception (Value.Type_error _ | Interp.Undefined _) ->
                row_ext ())
            | _ -> row_ext ())
          inb
      in
      (out, !n)
    | P.Project_op { vars; input } ->
      let inb = batches_fr (c0 fr) catalog env input in
      let acc = ref [] in
      List.iter
        (fun b ->
          Batch.iter_live b (fun i ->
              acc :=
                Env.append (Env.project vars (Batch.env_at b i)) env :: !acc))
        inb;
      let rows = List.sort_uniq Env.compare (List.rev !acc) in
      (Batch.of_rows ~size:fr.batch rows, List.length rows)
    | P.Hash_join { lkey; rkey; residual; left; right } ->
      let lb = batches_fr (c0 fr) catalog env left in
      let rb = batches_fr (c1 fr) catalog env right in
      let nl = Batch.live_total lb and nr = Batch.live_total rb in
      let swap = nr > nl in
      if swap then
        stats.Stats.build_side_swaps <- stats.Stats.build_side_swaps + 1;
      let probe_b, build_b, probe_key, build_key =
        if swap then (rb, lb, rkey, lkey) else (lb, rb, lkey, rkey)
      in
      let merged_of p m = if swap then Env.append p m else Env.append m p in
      let pkeyfn = Compile.expr catalog probe_key in
      let nprobe = if swap then nr else nl in
      let out_rows =
        if fr.jobs > 1 && nprobe >= join_min then
          let bkeyfn = Compile.expr catalog build_key in
          let rokfn = residual_fn catalog residual in
          par_hash_partitioned ~jobs:fr.jobs ~bloom:fr.bloom ~stats
            ~lkeyfn:pkeyfn ~rkeyfn:bkeyfn
            ~emit:(fun st p matches ->
              List.filter_map
                (fun m ->
                  let merged = merged_of p m in
                  if rok_part st rokfn merged then Some merged else None)
                matches)
            (Batch.rows_of_batches probe_b)
            (Batch.rows_of_batches build_b)
        else begin
          let rok = compile_residual ~stats catalog residual in
          let table =
            build_rows_table ~stats ~bloom:fr.bloom
              (Compile.expr catalog build_key)
              (Batch.rows_of_batches build_b)
          in
          let kern = Vexpr.compile catalog probe_key in
          let acc = ref [] in
          List.iter
            (fun b ->
              let keyv = key_col kern b in
              Batch.iter_live b (fun i ->
                  let kv = key_at keyv pkeyfn b i in
                  match probe ~stats table (hkey kv) with
                  | [] -> ()
                  | ms ->
                    (* Late materialization: the probe env is only built
                       once the Bloom screen and table lookup found
                       matches. *)
                    let p = Batch.env_at b i in
                    List.iter
                      (fun m ->
                        let merged = merged_of p m in
                        if rok merged then acc := merged :: !acc)
                      ms))
            probe_b;
          List.rev !acc
        end
      in
      (Batch.of_rows ~size:fr.batch out_rows, List.length out_rows)
    | P.Hash_semijoin { lkey; rkey; residual; anti; left; right } ->
      let lkeyfn = Compile.expr catalog lkey in
      let lb = batches_fr (c0 fr) catalog env left in
      let nl = Batch.live_total lb in
      if fr.jobs > 1 && nl >= join_min then begin
        (* Delegate to the partitioned core over (batch, slot) pairs so
           the output keeps the serial shape — narrowed input batches —
           and the batch metrics stay jobs-invariant. *)
        let pairs =
          List.concat_map
            (fun b ->
              let acc = ref [] in
              Batch.iter_live b (fun i -> acc := (b, i) :: !acc);
              List.rev !acc)
            lb
        in
        let kept =
          par_hash_partitioned ~jobs:fr.jobs ~bloom:fr.bloom ~stats
            ~lkeyfn:(fun (b, i) -> lkeyfn (Batch.env_at b i))
            ~rkeyfn:(Compile.expr catalog rkey)
            ~emit:
              (let rokfn = residual_fn catalog residual in
               fun st (b, i) matches ->
                 let found =
                   match matches with
                   | [] -> false
                   | _ ->
                     let l = Batch.env_at b i in
                     List.exists
                       (fun r -> rok_part st rokfn (Env.append r l))
                       matches
                 in
                 if (if anti then not found else found) then [ (b, i) ]
                 else [])
            pairs
            (rows_fr (c1 fr) catalog env right)
        in
        (* [kept] preserves input order: split it back per source batch. *)
        let rem = ref kept in
        let out =
          List.filter_map
            (fun b ->
              let rec take acc = function
                | (b', i) :: tl when b' == b -> take (i :: acc) tl
                | tl -> (Array.of_list (List.rev acc), tl)
              in
              let sel, tl = take [] !rem in
              rem := tl;
              if Array.length sel = 0 then None else Some (Batch.narrow b sel))
            lb
        in
        (out, List.length kept)
      end
      else begin
        let rok = compile_residual ~stats catalog residual in
        let table =
          build ~stats ~bloom:fr.bloom (c1 fr) catalog env right rkey
        in
        let kern = Vexpr.compile catalog lkey in
        let n = ref 0 in
        let out =
          List.filter_map
            (fun b ->
              let keyv = key_col kern b in
              let acc = ref [] in
              Batch.iter_live b (fun i ->
                  let kv = key_at keyv lkeyfn b i in
                  let ms = probe ~stats table (hkey kv) in
                  let found =
                    match residual with
                    | None -> ms <> []
                    | Some _ ->
                      let l = Batch.env_at b i in
                      List.exists (fun r -> rok (Env.append r l)) ms
                  in
                  if (if anti then not found else found) then acc := i :: !acc);
              let sel = Array.of_list (List.rev !acc) in
              n := !n + Array.length sel;
              if Array.length sel = 0 then None else Some (Batch.narrow b sel))
            lb
        in
        (out, !n)
      end
    | P.Hash_outerjoin { lkey; rkey; residual; left; right } ->
      let lkeyfn = Compile.expr catalog lkey in
      let rvars = P.vars_of right in
      let lb = batches_fr (c0 fr) catalog env left in
      let nl = Batch.live_total lb in
      let out_rows =
        if fr.jobs > 1 && nl >= join_min then
          par_hash_partitioned ~jobs:fr.jobs ~bloom:fr.bloom ~stats ~lkeyfn
            ~rkeyfn:(Compile.expr catalog rkey)
            ~emit:
              (let rokfn = residual_fn catalog residual in
               fun st l matches ->
                 let kept =
                   List.filter_map
                     (fun r ->
                       let merged = Env.append r l in
                       if rok_part st rokfn merged then Some merged else None)
                     matches
                 in
                 match kept with
                 | [] -> [ pad_nulls rvars l ]
                 | _ :: _ -> kept)
            (Batch.rows_of_batches lb)
            (rows_fr (c1 fr) catalog env right)
        else begin
          let rok = compile_residual ~stats catalog residual in
          let table =
            build ~stats ~bloom:fr.bloom (c1 fr) catalog env right rkey
          in
          let kern = Vexpr.compile catalog lkey in
          let acc = ref [] in
          List.iter
            (fun b ->
              let keyv = key_col kern b in
              Batch.iter_live b (fun i ->
                  let kv = key_at keyv lkeyfn b i in
                  let ms = probe ~stats table (hkey kv) in
                  let l = Batch.env_at b i in
                  let matches =
                    List.filter_map
                      (fun r ->
                        let merged = Env.append r l in
                        if rok merged then Some merged else None)
                      ms
                  in
                  match matches with
                  | [] -> acc := pad_nulls rvars l :: !acc
                  | _ :: _ ->
                    List.iter (fun m -> acc := m :: !acc) matches))
            lb;
          List.rev !acc
        end
      in
      (Batch.of_rows ~size:fr.batch out_rows, List.length out_rows)
    | P.Hash_nestjoin { lkey; rkey; residual; func; label; left; right } ->
      let lkeyfn = Compile.expr catalog lkey in
      let funcfn = Compile.expr catalog func in
      let lb = batches_fr (c0 fr) catalog env left in
      let nl = Batch.live_total lb in
      let out_rows =
        if fr.jobs > 1 && nl >= join_min then
          par_hash_partitioned ~jobs:fr.jobs ~bloom:fr.bloom ~stats ~lkeyfn
            ~rkeyfn:(Compile.expr catalog rkey)
            ~emit:
              (let rokfn = residual_fn catalog residual in
               fun st l matches ->
                 let members =
                   List.filter_map
                     (fun r ->
                       let merged = Env.append r l in
                       if rok_part st rokfn merged then Some (funcfn merged)
                       else None)
                     matches
                 in
                 [ Env.bind label (Value.set members) l ])
            (Batch.rows_of_batches lb)
            (rows_fr (c1 fr) catalog env right)
        else begin
          let rok = compile_residual ~stats catalog residual in
          let table =
            build ~stats ~bloom:fr.bloom (c1 fr) catalog env right rkey
          in
          let kern = Vexpr.compile catalog lkey in
          let acc = ref [] in
          List.iter
            (fun b ->
              let keyv = key_col kern b in
              Batch.iter_live b (fun i ->
                  let kv = key_at keyv lkeyfn b i in
                  let ms = probe ~stats table (hkey kv) in
                  let l = Batch.env_at b i in
                  let members =
                    List.filter_map
                      (fun r ->
                        let merged = Env.append r l in
                        if rok merged then Some (funcfn merged) else None)
                      ms
                  in
                  acc := Env.bind label (Value.set members) l :: !acc))
            lb;
          List.rev !acc
        end
      in
      (Batch.of_rows ~size:fr.batch out_rows, List.length out_rows)
    | _ ->
      (* [vectorizable] gates every entry into this function. *)
      assert false
  in
  stats.Stats.rows_out <- stats.Stats.rows_out + nout;
  out

and exec_rows fr catalog env plan =
  let stats = fr.sink in
  let out =
    match plan with
    | P.Unit_row -> [ env ]
    | P.Scan { table; var } ->
      let t = Cobj.Catalog.find_exn table catalog in
      let trows = Cobj.Table.rows t in
      if fr.jobs > 1 && List.length trows >= morsel_min then
        par_map ~jobs:fr.jobs ~stats (fun _st v -> Env.bind var v env) trows
      else List.map (fun v -> Env.bind var v env) trows
    | P.Filter { pred; input } ->
      let predfn = Compile.pred catalog pred in
      let input_rows = rows_fr (c0 fr) catalog env input in
      if fr.jobs > 1 && List.length input_rows >= morsel_min then
        par_filter ~jobs:fr.jobs ~stats
          (fun st r ->
            st.Stats.predicate_evals <- st.Stats.predicate_evals + 1;
            predfn r)
          input_rows
      else
        input_rows
        |> List.filter (fun r ->
               stats.Stats.predicate_evals <- stats.Stats.predicate_evals + 1;
               predfn r)
    | P.Nl_join { pred; left; right } ->
      let predfn = Compile.pred catalog pred in
      let rrows = rows_fr (c1 fr) catalog env right in
      rows_fr (c0 fr) catalog env left
      |> List.concat_map (fun l ->
             List.filter_map
               (fun r ->
                 stats.Stats.predicate_evals <-
                   stats.Stats.predicate_evals + 1;
                 let merged = Env.append r l in
                 if predfn merged then Some merged else None)
               rrows)
    | P.Hash_join { lkey; rkey; residual; left; right } ->
      let lrows = rows_fr (c0 fr) catalog env left in
      let rrows = rows_fr (c1 fr) catalog env right in
      (* The join is commutative, so build on whichever operand turned out
         smaller (the planner orients statically from estimates; this is
         the runtime safety net). The decision uses full materialized
         cardinalities — identical in the serial and parallel paths, so
         counters stay jobs-invariant. Only row order can change, and the
         final result is a canonicalized set. *)
      let swap = List.length rrows > List.length lrows in
      if swap then
        stats.Stats.build_side_swaps <- stats.Stats.build_side_swaps + 1;
      let probe_rows, build_rows, probe_key, build_key =
        if swap then (rrows, lrows, rkey, lkey) else (lrows, rrows, lkey, rkey)
      in
      (* [p] is the probe row, [m] the build-side match; the merged env is
         always append(right-row, left-row), independent of orientation. *)
      let merged_of p m = if swap then Env.append p m else Env.append m p in
      let pkeyfn = Compile.expr catalog probe_key in
      if fr.jobs > 1 && List.length probe_rows >= join_min then
        let bkeyfn = Compile.expr catalog build_key in
        let rokfn = residual_fn catalog residual in
        par_hash_partitioned ~jobs:fr.jobs ~bloom:fr.bloom ~stats
          ~lkeyfn:pkeyfn ~rkeyfn:bkeyfn
          ~emit:(fun st p matches ->
            List.filter_map
              (fun m ->
                let merged = merged_of p m in
                if rok_part st rokfn merged then Some merged else None)
              matches)
          probe_rows build_rows
      else
        let rok = compile_residual ~stats catalog residual in
        let table =
          build_rows_table ~stats ~bloom:fr.bloom
            (Compile.expr catalog build_key)
            build_rows
        in
        probe_rows
        |> List.concat_map (fun p ->
               probe ~stats table (hkey (pkeyfn p))
               |> List.filter_map (fun m ->
                      let merged = merged_of p m in
                      if rok merged then Some merged else None))
    | P.Merge_join { lkey; rkey; residual; left; right } ->
      let rok = compile_residual ~stats catalog residual in
      let lgroups = sorted_groups ~stats (c0 fr) catalog env left lkey in
      let rgroups = sorted_groups ~stats (c1 fr) catalog env right rkey in
      merge_groups lgroups rgroups
      |> List.concat_map (fun (ls, rs) ->
             List.concat_map
               (fun l ->
                 List.filter_map
                   (fun r ->
                     let merged = Env.append r l in
                     if rok merged then Some merged else None)
                   rs)
               ls)
    | P.Nl_semijoin { pred; anti; left; right } ->
      let predfn = Compile.pred catalog pred in
      let rrows = rows_fr (c1 fr) catalog env right in
      rows_fr (c0 fr) catalog env left
      |> List.filter (fun l ->
             let found =
               List.exists
                 (fun r ->
                   stats.Stats.predicate_evals <-
                     stats.Stats.predicate_evals + 1;
                   predfn (Env.append r l))
                 rrows
             in
             if anti then not found else found)
    | P.Hash_semijoin { lkey; rkey; residual; anti; left; right } ->
      let lkeyfn = Compile.expr catalog lkey in
      let lrows = rows_fr (c0 fr) catalog env left in
      if fr.jobs > 1 && List.length lrows >= join_min then
        par_hash_partitioned ~jobs:fr.jobs ~bloom:fr.bloom ~stats ~lkeyfn
          ~rkeyfn:(Compile.expr catalog rkey)
          ~emit:
            (let rokfn = residual_fn catalog residual in
             fun st l matches ->
               let found =
                 List.exists
                   (fun r -> rok_part st rokfn (Env.append r l))
                   matches
               in
               if (if anti then not found else found) then [ l ] else [])
          lrows
          (rows_fr (c1 fr) catalog env right)
      else
        let rok = compile_residual ~stats catalog residual in
        let table = build ~stats ~bloom:fr.bloom (c1 fr) catalog env right rkey in
        lrows
        |> List.filter (fun l ->
               let found =
                 probe ~stats table (hkey (lkeyfn l))
                 |> List.exists (fun r -> rok (Env.append r l))
               in
               if anti then not found else found)
    | P.Merge_semijoin { lkey; rkey; residual; anti; left; right } ->
      let rok = compile_residual ~stats catalog residual in
      let lgroups = sorted_groups ~stats (c0 fr) catalog env left lkey in
      let rgroups = sorted_groups ~stats (c1 fr) catalog env right rkey in
      (* march the two sorted group lists; every left group is emitted or
         dropped depending on whether a matching right member exists *)
      let rec go ls rs acc =
        match ls with
        | [] -> List.rev acc
        | (lk, lrows) :: ls' ->
          let rec advance rs =
            match rs with
            | (rk, _) :: rs' when Value.compare rk lk < 0 -> advance rs'
            | _ -> rs
          in
          let rs = advance rs in
          let rrows =
            match rs with
            | (rk, rrows) :: _ when Value.compare rk lk = 0 -> rrows
            | _ -> []
          in
          let keep l =
            let matched = List.exists (fun r -> rok (Env.append r l)) rrows in
            if anti then not matched else matched
          in
          go ls' rs (List.rev_append (List.filter keep lrows) acc)
      in
      go lgroups rgroups []
    | P.Nl_outerjoin { pred; left; right } ->
      let predfn = Compile.pred catalog pred in
      let rrows = rows_fr (c1 fr) catalog env right in
      let rvars = P.vars_of right in
      rows_fr (c0 fr) catalog env left
      |> List.concat_map (fun l ->
             let matches =
               List.filter_map
                 (fun r ->
                   stats.Stats.predicate_evals <-
                     stats.Stats.predicate_evals + 1;
                   let merged = Env.append r l in
                   if predfn merged then Some merged else None)
                 rrows
             in
             match matches with [] -> [ pad_nulls rvars l ] | _ :: _ -> matches)
    | P.Hash_outerjoin { lkey; rkey; residual; left; right } ->
      let lkeyfn = Compile.expr catalog lkey in
      let rvars = P.vars_of right in
      let lrows = rows_fr (c0 fr) catalog env left in
      if fr.jobs > 1 && List.length lrows >= join_min then
        par_hash_partitioned ~jobs:fr.jobs ~bloom:fr.bloom ~stats ~lkeyfn
          ~rkeyfn:(Compile.expr catalog rkey)
          ~emit:
            (let rokfn = residual_fn catalog residual in
             fun st l matches ->
               let kept =
                 List.filter_map
                   (fun r ->
                     let merged = Env.append r l in
                     if rok_part st rokfn merged then Some merged else None)
                   matches
               in
               match kept with
               | [] -> [ pad_nulls rvars l ]
               | _ :: _ -> kept)
          lrows
          (rows_fr (c1 fr) catalog env right)
      else
        let rok = compile_residual ~stats catalog residual in
        let table = build ~stats ~bloom:fr.bloom (c1 fr) catalog env right rkey in
        lrows
        |> List.concat_map (fun l ->
               let matches =
                 probe ~stats table (hkey (lkeyfn l))
                 |> List.filter_map (fun r ->
                        let merged = Env.append r l in
                        if rok merged then Some merged else None)
               in
               match matches with
               | [] -> [ pad_nulls rvars l ]
               | _ :: _ -> matches)
    | P.Merge_outerjoin { lkey; rkey; residual; left; right } ->
      let rok = compile_residual ~stats catalog residual in
      let rvars = P.vars_of right in
      let lgroups = sorted_groups ~stats (c0 fr) catalog env left lkey in
      let rgroups = sorted_groups ~stats (c1 fr) catalog env right rkey in
      (* every left row survives: matched rows merge, the rest pad *)
      let rec go ls rs acc =
        match ls, rs with
        | [], _ -> List.rev acc
        | (_, lrows) :: ls', [] ->
          go ls' []
            (List.rev_append (List.map (pad_nulls rvars) lrows) acc)
        | (lk, lrows) :: ls', (rk, rrows) :: rs' ->
          let c = Value.compare lk rk in
          if c = 0 then
            let out =
              List.concat_map
                (fun l ->
                  let matches =
                    List.filter_map
                      (fun r ->
                        let merged = Env.append r l in
                        if rok merged then Some merged else None)
                      rrows
                  in
                  match matches with
                  | [] -> [ pad_nulls rvars l ]
                  | _ :: _ -> matches)
                lrows
            in
            go ls' rs' (List.rev_append out acc)
          else if c < 0 then
            go ls' rs
              (List.rev_append (List.map (pad_nulls rvars) lrows) acc)
          else go ls rs' acc
      in
      go lgroups rgroups []
    | P.Nl_nestjoin { pred; func; label; left; right } ->
      let predfn = Compile.pred catalog pred in
      let funcfn = Compile.expr catalog func in
      let rrows = rows_fr (c1 fr) catalog env right in
      rows_fr (c0 fr) catalog env left
      |> List.map (fun l ->
             let members =
               List.filter_map
                 (fun r ->
                   stats.Stats.predicate_evals <-
                     stats.Stats.predicate_evals + 1;
                   let merged = Env.append r l in
                   if predfn merged then Some (funcfn merged) else None)
                 rrows
             in
             Env.bind label (Value.set members) l)
    | P.Hash_nestjoin { lkey; rkey; residual; func; label; left; right } ->
      let lkeyfn = Compile.expr catalog lkey in
      let funcfn = Compile.expr catalog func in
      let lrows = rows_fr (c0 fr) catalog env left in
      if fr.jobs > 1 && List.length lrows >= join_min then
        par_hash_partitioned ~jobs:fr.jobs ~bloom:fr.bloom ~stats ~lkeyfn
          ~rkeyfn:(Compile.expr catalog rkey)
          ~emit:
            (let rokfn = residual_fn catalog residual in
             fun st l matches ->
               let members =
                 List.filter_map
                   (fun r ->
                     let merged = Env.append r l in
                     if rok_part st rokfn merged then Some (funcfn merged)
                     else None)
                   matches
               in
               [ Env.bind label (Value.set members) l ])
          lrows
          (rows_fr (c1 fr) catalog env right)
      else
        let rok = compile_residual ~stats catalog residual in
        let table = build ~stats ~bloom:fr.bloom (c1 fr) catalog env right rkey in
        lrows
        |> List.map (fun l ->
               let members =
                 probe ~stats table (hkey (lkeyfn l))
                 |> List.filter_map (fun r ->
                        let merged = Env.append r l in
                        if rok merged then Some (funcfn merged) else None)
               in
               Env.bind label (Value.set members) l)
    | P.Hash_nestjoin_left { lkey; rkey; residual; func; label; left; right }
      ->
      (* Streaming right against a left build table: emits a group as soon
         as a right row matches, so it is only correct when [rkey] is unique
         on the right input (§6). Dangling left rows flush at the end. *)
      let lkeyfn = Compile.expr catalog lkey in
      let rkeyfn = Compile.expr catalog rkey in
      let rok = compile_residual ~stats catalog residual in
      let funcfn = Compile.expr catalog func in
      let lrows = rows_fr (c0 fr) catalog env left in
      let table = Htbl.create 256 in
      let filter =
        if fr.bloom then Some (Bloom.create (List.length lrows)) else None
      in
      List.iter
        (fun l ->
          stats.Stats.hash_builds <- stats.Stats.hash_builds + 1;
          let k = hkey (lkeyfn l) in
          Option.iter (fun f -> Bloom.add f k.Hkey.h) filter;
          Htbl.replace table k
            (l :: (try Htbl.find table k with Not_found -> [])))
        lrows;
      let matched : (Env.t * Env.t list) list ref = ref [] in
      let matched_keys = Vtbl.create 256 in
      rows_fr (c1 fr) catalog env right
      |> List.iter (fun r ->
             let k = hkey (rkeyfn r) in
             stats.Stats.hash_probes <- stats.Stats.hash_probes + 1;
             let pruned =
               match filter with
               | None -> false
               | Some f ->
                 stats.Stats.bloom_checks <- stats.Stats.bloom_checks + 1;
                 not (Bloom.mem f k.Hkey.h)
             in
             if pruned then
               stats.Stats.bloom_prunes <- stats.Stats.bloom_prunes + 1
             else
               match Htbl.find_opt table k with
               | None -> ()
               | Some ls ->
                 List.iter
                   (fun l ->
                     let merged = Env.append r l in
                     if rok merged then begin
                       matched := (l, [ merged ]) :: !matched;
                       Vtbl.replace matched_keys (Env.to_value l) ()
                     end)
                   ls);
      let emitted =
        List.rev_map
          (fun (l, merged) ->
            Env.bind label (Value.set (List.map funcfn merged)) l)
          !matched
      in
      let dangling =
        List.filter_map
          (fun l ->
            if Vtbl.mem matched_keys (Env.to_value l) then None
            else Some (Env.bind label (Value.Set []) l))
          lrows
      in
      emitted @ dangling
    | P.Merge_nestjoin { lkey; rkey; residual; func; label; left; right } ->
      let rok = compile_residual ~stats catalog residual in
      let funcfn = Compile.expr catalog func in
      let lgroups = sorted_groups ~stats (c0 fr) catalog env left lkey in
      let rgroups = sorted_groups ~stats (c1 fr) catalog env right rkey in
      (* Unlike merge join, every left group survives (possibly with ∅). *)
      let rec go ls rs acc =
        match ls, rs with
        | [], _ -> List.rev acc
        | (lk, lrows) :: ls', [] ->
          let out = List.map (emit_group []) lrows in
          ignore lk;
          go ls' [] (List.rev_append out acc)
        | (lk, lrows) :: ls', (rk, rrows) :: rs' ->
          let c = Value.compare lk rk in
          if c = 0 then
            go ls' rs'
              (List.rev_append (List.map (emit_group rrows) lrows) acc)
          else if c < 0 then
            go ls' rs (List.rev_append (List.map (emit_group []) lrows) acc)
          else go ls rs' acc
      and emit_group rrows l =
        let members =
          List.filter_map
            (fun r ->
              let merged = Env.append r l in
              if rok merged then Some (funcfn merged) else None)
            rrows
        in
        Env.bind label (Value.set members) l
      in
      go lgroups rgroups []
    | P.Unnest_op { expr; var; input } ->
      let exprfn = Compile.expr catalog expr in
      rows_fr (c0 fr) catalog env input
      |> List.concat_map (fun r ->
             Value.elements (exprfn r)
             |> List.map (fun x -> Env.bind var x r))
    | P.Nest_op { by; label; func; nulls; input } ->
      let input_rows = rows_fr (c0 fr) catalog env input in
      let groups = Vtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun r ->
          stats.Stats.hash_builds <- stats.Stats.hash_builds + 1;
          let k = Env.to_value (Env.project by r) in
          match Vtbl.find_opt groups k with
          | Some members -> Vtbl.replace groups k (r :: members)
          | None ->
            order := (k, r) :: !order;
            Vtbl.add groups k [ r ])
        input_rows;
      let funcfn = Compile.expr catalog func in
      let padded r =
        nulls <> []
        && List.for_all (fun v -> Value.equal (Env.find v r) Value.Null) nulls
      in
      List.rev_map
        (fun (k, representative) ->
          let members = Vtbl.find groups k in
          let set =
            Value.set
              (List.filter_map
                 (fun r -> if padded r then None else Some (funcfn r))
                 members)
          in
          let base =
            List.fold_left
              (fun acc v -> Env.bind v (Env.find v representative) acc)
              env by
          in
          Env.bind label set base)
        !order
    | P.Extend_op { var; expr; input } ->
      let exprfn = Compile.expr catalog expr in
      let input_rows = rows_fr (c0 fr) catalog env input in
      if fr.jobs > 1 && List.length input_rows >= morsel_min then
        par_map ~jobs:fr.jobs ~stats
          (fun _st r -> Env.bind var (exprfn r) r)
          input_rows
      else List.map (fun r -> Env.bind var (exprfn r) r) input_rows
    | P.Project_op { vars; input } ->
      let input_rows = rows_fr (c0 fr) catalog env input in
      (if fr.jobs > 1 && List.length input_rows >= morsel_min then
         par_map ~jobs:fr.jobs ~stats
           (fun _st r -> Env.append (Env.project vars r) env)
           input_rows
       else List.map (fun r -> Env.append (Env.project vars r) env) input_rows)
      |> List.sort_uniq Env.compare
    | P.Apply_op { var; subquery; memo; input } ->
      let input_rows = rows_fr (c0 fr) catalog env input in
      (* A correlated subplan re-runs inside the apply loop with per-row
         bindings; it conservatively executes serially (its apply loop is
         already the unit of work, and the memo cache is unsynchronized).
         An uncorrelated subplan runs once and may parallelize freely. *)
      let corr =
        Sset.inter (query_free_vars subquery)
          (Sset.of_list (P.vars_of input))
      in
      let subfr =
        let sub = c1 fr in
        if Sset.is_empty corr then sub else { sub with jobs = 1 }
      in
      if not memo then
        List.map
          (fun r ->
            stats.Stats.applies <- stats.Stats.applies + 1;
            Env.bind var (run_under_fr subfr catalog r subquery) r)
          input_rows
      else begin
        let key_exprs = correlation_key_exprs corr subquery in
        let cache = Vtbl.create 64 in
        let key_fns = List.map (Compile.expr catalog) key_exprs in
        List.map
          (fun r ->
            let k = Value.List (List.map (fun f -> f r) key_fns) in
            let v =
              match Vtbl.find_opt cache k with
              | Some v ->
                stats.Stats.apply_hits <- stats.Stats.apply_hits + 1;
                v
              | None ->
                stats.Stats.applies <- stats.Stats.applies + 1;
                let v = run_under_fr subfr catalog r subquery in
                Vtbl.add cache k v;
                v
            in
            Env.bind var v r)
          input_rows
      end
    | P.Index_join { lkey; table; var; field; residual; left } ->
      let lkeyfn = Compile.expr catalog lkey in
      let rok = compile_residual ~stats catalog residual in
      let t = Cobj.Catalog.find_exn table catalog in
      rows_fr (c0 fr) catalog env left
      |> List.concat_map (fun l ->
             stats.Stats.hash_probes <- stats.Stats.hash_probes + 1;
             Cobj.Table.index_lookup field t (lkeyfn l)
             |> List.filter_map (fun rv ->
                    let merged = Env.bind var rv l in
                    if rok merged then Some merged else None))
    | P.Index_semijoin { lkey; table; var; field; residual; anti; left } ->
      let lkeyfn = Compile.expr catalog lkey in
      let rok = compile_residual ~stats catalog residual in
      let t = Cobj.Catalog.find_exn table catalog in
      rows_fr (c0 fr) catalog env left
      |> List.filter (fun l ->
             stats.Stats.hash_probes <- stats.Stats.hash_probes + 1;
             let found =
               Cobj.Table.index_lookup field t (lkeyfn l)
               |> List.exists (fun rv -> rok (Env.bind var rv l))
             in
             if anti then not found else found)
    | P.Index_nestjoin { lkey; table; var; field; residual; func; label; left }
      ->
      let lkeyfn = Compile.expr catalog lkey in
      let rok = compile_residual ~stats catalog residual in
      let funcfn = Compile.expr catalog func in
      let t = Cobj.Catalog.find_exn table catalog in
      rows_fr (c0 fr) catalog env left
      |> List.map (fun l ->
             stats.Stats.hash_probes <- stats.Stats.hash_probes + 1;
             let members =
               Cobj.Table.index_lookup field t (lkeyfn l)
               |> List.filter_map (fun rv ->
                      let merged = Env.bind var rv l in
                      if rok merged then Some (funcfn merged) else None)
             in
             Env.bind label (Value.set members) l)
    | P.Union_op { left; right } ->
      List.sort_uniq Env.compare
        (rows_fr (c0 fr) catalog env left @ rows_fr (c1 fr) catalog env right)
  in
  stats.Stats.rows_out <- stats.Stats.rows_out + List.length out;
  out

(* [rok] below is the residual check compiled once per operator; [keyfn]
   likewise for key expressions. Hash/sort work counts on the operator that
   does it; the rows produced by the operand count on the operand's own
   frame. *)
and compile_residual ~stats catalog residual =
  match residual with
  | None -> fun _ -> true
  | Some pred ->
    let f = Compile.pred catalog pred in
    fun merged ->
      stats.Stats.predicate_evals <- stats.Stats.predicate_evals + 1;
      f merged

and build_rows_table ~stats ~bloom keyfn rows =
  let table = Htbl.create 256 in
  let filter = if bloom then Some (Bloom.create (List.length rows)) else None in
  (* Preserve input order within buckets. *)
  List.iter
    (fun r ->
      stats.Stats.hash_builds <- stats.Stats.hash_builds + 1;
      let k = hkey (keyfn r) in
      Option.iter (fun f -> Bloom.add f k.Hkey.h) filter;
      match Htbl.find_opt table k with
      | Some bucket -> Htbl.replace table k (r :: bucket)
      | None -> Htbl.add table k [ r ])
    rows;
  (table, filter)

and build ~stats ~bloom fr catalog env plan key_expr =
  build_rows_table ~stats ~bloom
    (Compile.expr catalog key_expr)
    (rows_fr fr catalog env plan)

and probe ~stats (table, filter) k =
  stats.Stats.hash_probes <- stats.Stats.hash_probes + 1;
  let pruned =
    match filter with
    | None -> false
    | Some f ->
      stats.Stats.bloom_checks <- stats.Stats.bloom_checks + 1;
      not (Bloom.mem f k.Hkey.h)
  in
  if pruned then begin
    stats.Stats.bloom_prunes <- stats.Stats.bloom_prunes + 1;
    []
  end
  else
    match Htbl.find_opt table k with
    | Some bucket -> List.rev bucket
    | None -> []

and sorted_groups ~stats fr catalog env plan key_expr =
  let keyfn = Compile.expr catalog key_expr in
  let produced = rows_fr fr catalog env plan in
  stats.Stats.sorts <- stats.Stats.sorts + List.length produced;
  let keyed = List.map (fun r -> (keyfn r, r)) produced in
  let sorted =
    List.sort (fun (k1, _) (k2, _) -> Value.compare k1 k2) keyed
  in
  (* Linear pass over the sorted list, grouping equal adjacent keys. *)
  let rec group = function
    | [] -> []
    | (k, r) :: rest ->
      let rec take acc = function
        | (k', r') :: more when Value.equal k k' -> take (r' :: acc) more
        | remaining -> (List.rev acc, remaining)
      in
      let same, others = take [ r ] rest in
      (k, same) :: group others
  in
  group sorted

and merge_groups ls rs =
  match ls, rs with
  | [], _ | _, [] -> []
  | (lk, lrows) :: ls', (rk, rrows) :: rs' ->
    let c = Value.compare lk rk in
    if c = 0 then (lrows, rrows) :: merge_groups ls' rs'
    else if c < 0 then merge_groups ls' rs
    else merge_groups ls rs'

and run_under_fr fr catalog env { P.plan; result } =
  let resultfn = Compile.expr catalog result in
  let produced = rows_fr fr catalog env plan in
  Value.set (List.map resultfn produced)

let clamp_jobs jobs = max 1 (min jobs Pool.max_jobs)

(* The kernels mirror [Compile]'s semantics; when compilation is
   globally disabled (interpreted mode) the vector layer shuts off with
   it rather than diverge. *)
let opts ~vector ~batch =
  let vector = Option.value vector ~default:(default_vector ()) in
  let batch = Option.value batch ~default:(default_batch ()) in
  (vector && !Compile.enabled, max 1 batch)

let frame_of_stats ~jobs ~bloom ~vector ~batch stats =
  { sink = stats; node = None; jobs; bloom; vector; batch }

let frame_of_node ~jobs ~bloom ~vector ~batch node =
  { sink = node.Stats.counters; node = Some node; jobs; bloom; vector; batch }

let rows ?(stats = no_stats) ?(jobs = 1) ?(bloom = true) ?vector ?batch
    catalog env plan =
  let vector, batch = opts ~vector ~batch in
  rows_fr
    (frame_of_stats ~jobs:(clamp_jobs jobs) ~bloom ~vector ~batch stats)
    catalog env plan

let rows_instrumented ?(jobs = 1) ?(bloom = true) ?vector ?batch node catalog
    env plan =
  let vector, batch = opts ~vector ~batch in
  rows_fr
    (frame_of_node ~jobs:(clamp_jobs jobs) ~bloom ~vector ~batch node)
    catalog env plan

let run_under ?(stats = no_stats) ?(jobs = 1) ?(bloom = true) ?vector ?batch
    catalog env query =
  let vector, batch = opts ~vector ~batch in
  run_under_fr
    (frame_of_stats ~jobs:(clamp_jobs jobs) ~bloom ~vector ~batch stats)
    catalog env query

let run ?stats ?jobs ?bloom ?vector ?batch catalog query =
  run_under ?stats ?jobs ?bloom ?vector ?batch catalog Env.empty query

let run_instrumented ?(jobs = 1) ?(bloom = true) ?vector ?batch catalog query
    =
  let vector, batch = opts ~vector ~batch in
  let tree = Analyze.tree_of_query query in
  let fr = frame_of_node ~jobs:(clamp_jobs jobs) ~bloom ~vector ~batch tree in
  let v = run_under_fr fr catalog Env.empty query in
  (v, tree)
