module P = Physical

let e = Lang.Pretty.pp

(* Operands in the order the executor descends them (and the order of
   [Stats.node.children]): unary → [input]; binary → [left; right];
   apply → [input; subquery plan]; index ops → [left]. [Core] relies on
   this order to annotate estimated cardinalities. *)
let children = function
  | P.Unit_row | P.Scan _ -> []
  | P.Filter { input; _ }
  | P.Unnest_op { input; _ }
  | P.Nest_op { input; _ }
  | P.Extend_op { input; _ }
  | P.Project_op { input; _ } ->
    [ input ]
  | P.Nl_join { left; right; _ }
  | P.Hash_join { left; right; _ }
  | P.Merge_join { left; right; _ }
  | P.Nl_semijoin { left; right; _ }
  | P.Hash_semijoin { left; right; _ }
  | P.Merge_semijoin { left; right; _ }
  | P.Nl_outerjoin { left; right; _ }
  | P.Hash_outerjoin { left; right; _ }
  | P.Merge_outerjoin { left; right; _ }
  | P.Nl_nestjoin { left; right; _ }
  | P.Hash_nestjoin { left; right; _ }
  | P.Hash_nestjoin_left { left; right; _ }
  | P.Merge_nestjoin { left; right; _ }
  | P.Union_op { left; right } ->
    [ left; right ]
  | P.Apply_op { subquery; input; _ } -> [ input; subquery.P.plan ]
  | P.Index_join { left; _ }
  | P.Index_semijoin { left; _ }
  | P.Index_nestjoin { left; _ } ->
    [ left ]

let keys_detail lkey rkey residual =
  Fmt.str "[%a = %a]%a" e lkey e rkey
    (fun ppf -> function
      | None -> ()
      | Some r -> Fmt.pf ppf " residual=[%a]" e r)
    residual

let label = function
  | P.Unit_row -> ("unit", "")
  | P.Scan { table; var } -> ("scan", Printf.sprintf "%s %s" table var)
  | P.Filter { pred; _ } -> ("filter", Fmt.str "[%a]" e pred)
  | P.Nl_join { pred; _ } -> ("nl-join", Fmt.str "[%a]" e pred)
  | P.Hash_join { lkey; rkey; residual; _ } ->
    ("hash-join", keys_detail lkey rkey residual)
  | P.Merge_join { lkey; rkey; residual; _ } ->
    ("merge-join", keys_detail lkey rkey residual)
  | P.Nl_semijoin { pred; anti; _ } ->
    ((if anti then "nl-antijoin" else "nl-semijoin"), Fmt.str "[%a]" e pred)
  | P.Hash_semijoin { lkey; rkey; residual; anti; _ } ->
    ( (if anti then "hash-antijoin" else "hash-semijoin"),
      keys_detail lkey rkey residual )
  | P.Merge_semijoin { lkey; rkey; residual; anti; _ } ->
    ( (if anti then "merge-antijoin" else "merge-semijoin"),
      keys_detail lkey rkey residual )
  | P.Nl_outerjoin { pred; _ } -> ("nl-outerjoin", Fmt.str "[%a]" e pred)
  | P.Hash_outerjoin { lkey; rkey; residual; _ } ->
    ("hash-outerjoin", keys_detail lkey rkey residual)
  | P.Merge_outerjoin { lkey; rkey; residual; _ } ->
    ("merge-outerjoin", keys_detail lkey rkey residual)
  | P.Nl_nestjoin { pred; func; label; _ } ->
    ("nl-nestjoin", Fmt.str "[%a] func=%a label=%s" e pred e func label)
  | P.Hash_nestjoin { lkey; rkey; residual; func; label; _ } ->
    ( "hash-nestjoin",
      Fmt.str "%s func=%a label=%s" (keys_detail lkey rkey residual) e func
        label )
  | P.Hash_nestjoin_left { lkey; rkey; residual; func; label; _ } ->
    ( "hash-nestjoin(build=left)",
      Fmt.str "%s func=%a label=%s" (keys_detail lkey rkey residual) e func
        label )
  | P.Merge_nestjoin { lkey; rkey; residual; func; label; _ } ->
    ( "merge-nestjoin",
      Fmt.str "%s func=%a label=%s" (keys_detail lkey rkey residual) e func
        label )
  | P.Unnest_op { expr; var; _ } ->
    ("unnest", Fmt.str "%s in %a" var e expr)
  | P.Nest_op { by; label; func; nulls; _ } ->
    ( (if nulls = [] then "nest" else "nest*"),
      Fmt.str "by=[%s] label=%s func=%a" (String.concat ", " by) label e func
    )
  | P.Extend_op { var; expr; _ } -> ("extend", Fmt.str "%s = %a" var e expr)
  | P.Project_op { vars; _ } ->
    ("project", Printf.sprintf "[%s]" (String.concat ", " vars))
  | P.Apply_op { var; subquery; memo; _ } ->
    ( (if memo then "apply(memo)" else "apply"),
      Fmt.str "%s = (result %a)" var e subquery.P.result )
  | P.Index_join { lkey; table; var; field; _ } ->
    ("index-join", Fmt.str "[%a → %s.%s] on %s %s" e lkey var field table var)
  | P.Index_semijoin { lkey; table; var; field; anti; _ } ->
    ( (if anti then "index-antijoin" else "index-semijoin"),
      Fmt.str "[%a → %s.%s] on %s %s" e lkey var field table var )
  | P.Index_nestjoin { lkey; table; var; field; func; label; _ } ->
    ( "index-nestjoin",
      Fmt.str "[%a → %s.%s] on %s %s func=%a label=%s" e lkey var field table
        var e func label )
  | P.Union_op _ -> ("union", "")

let rec tree_of_plan plan =
  let op, detail = label plan in
  Stats.node ~op ~detail (List.map tree_of_plan (children plan))

let tree_of_query { P.plan; _ } = tree_of_plan plan

(* --- rendering ---------------------------------------------------------- *)

let pp_est ppf est =
  if Float.is_nan est then Fmt.string ppf "?"
  else Fmt.pf ppf "%.0f" est

let pp_counters ~timing ppf (c : Stats.t) =
  let field name v = if v > 0 then Some (name, v) else None in
  let fields =
    List.filter_map Fun.id
      [
        field "pred-evals" c.Stats.predicate_evals;
        field "builds" c.Stats.hash_builds;
        field "probes" c.Stats.hash_probes;
        field "sorts" c.Stats.sorts;
        field "applies" c.Stats.applies;
        field "apply-hits" c.Stats.apply_hits;
        field "bloom-checks" c.Stats.bloom_checks;
        field "bloom-prunes" c.Stats.bloom_prunes;
        field "swaps" c.Stats.build_side_swaps;
      ]
    (* partition counters are jobs-dependent, so like wall-clock they hide
       behind --no-timing (which promises jobs-invariant output) *)
    @ (if timing then
         List.filter_map Fun.id
           [
             field "partitions" c.Stats.partitions;
             field "part-max" c.Stats.partition_max_rows;
           ]
       else [])
  in
  List.iter (fun (name, v) -> Fmt.pf ppf " %s=%d" name v) fields

let pp_bound ppf b =
  if Float.is_finite b then Fmt.pf ppf "%.0f" b else Fmt.string ppf "∞"

let pp_annot ~timing ppf (n : Stats.node) =
  Fmt.pf ppf "(est=%a actual=%d loops=%d" pp_est n.Stats.est_rows
    n.Stats.counters.Stats.rows_out n.Stats.loops;
  (* Property annotations appear only when an annotator stamped them
     ([Analysis.Certify]), so un-certified output is unchanged. *)
  (match n.Stats.bounds with
  | Some (lo, hi) -> Fmt.pf ppf " bounds=[%a,%a]" pp_bound lo pp_bound hi
  | None -> ());
  (match n.Stats.keys with
  | [] -> ()
  | keys ->
    Fmt.pf ppf " keys=%s"
      (String.concat "|" (List.map (Printf.sprintf "{%s}") keys)));
  if timing then begin
    Fmt.pf ppf " time=%.3fms" (Int64.to_float n.Stats.time_ns /. 1e6);
    (* Like the partition counters, the engine marker hides behind
       --no-timing, whose output is promised identical between the row
       and vector engines. *)
    if n.Stats.vectorized then Fmt.string ppf " vectorized"
  end;
  Fmt.pf ppf "%a)" (pp_counters ~timing) n.Stats.counters

let rec pp_node ~timing ppf (n : Stats.node) =
  let header ppf n =
    match n.Stats.detail with
    | "" -> Fmt.pf ppf "%s  %a" n.Stats.op (pp_annot ~timing) n
    | d -> Fmt.pf ppf "%s %s  %a" n.Stats.op d (pp_annot ~timing) n
  in
  match n.Stats.children with
  | [] -> header ppf n
  | children ->
    Fmt.pf ppf "@[<v>%a" header n;
    List.iteri
      (fun i c ->
        let branch =
          if i = List.length children - 1 then "└─" else "├─"
        in
        Fmt.pf ppf "@,%s @[<v>%a@]" branch (pp_node ~timing) c)
      children;
    Fmt.pf ppf "@]"

let pp ?(timing = true) ppf n = Fmt.pf ppf "@[<v>%a@]" (pp_node ~timing) n

let to_string ?timing n = Fmt.str "%a" (pp ?timing) n

let rec to_json ?(timing = true) (n : Stats.node) =
  let c = n.Stats.counters in
  Json.Obj
    (List.concat
       [
         [
           ("op", Json.String n.Stats.op);
           ("detail", Json.String n.Stats.detail);
           ("est_rows", Json.Float n.Stats.est_rows);
           ("rows_out", Json.Int c.Stats.rows_out);
           ("loops", Json.Int n.Stats.loops);
         ];
         (* Property annotations, present only when a certifying annotator
            stamped the tree. An unbounded hi renders as null (valid JSON
            stands in for ∞ — see Json.float_repr). *)
         (match n.Stats.bounds with
         | Some (lo, hi) ->
           [
             ("bounds_lo", Json.Float lo);
             ("bounds_hi", if Float.is_finite hi then Json.Float hi else Json.Null);
           ]
         | None -> []);
         (match n.Stats.keys with
         | [] -> []
         | keys ->
           [ ("keys", Json.List (List.map (fun k -> Json.String k) keys)) ]);
         (* Partition and Gc fields ride under the [timing] flag: like
            wall-clock they are jobs/load-dependent, and --no-timing is the
            documented way to get jobs-invariant, diffable JSON. *)
         (if timing then
            [
              ("time_ns", Json.Int64 n.Stats.time_ns);
              ("vectorized", Json.Bool n.Stats.vectorized);
              ("partitions", Json.Int c.Stats.partitions);
              ("partition_max_rows", Json.Int c.Stats.partition_max_rows);
            ]
          else []);
         (match n.Stats.gc with
         | Some d when timing -> [ ("gc", Obs_json.gc d) ]
         | _ -> []);
         [
           ("predicate_evals", Json.Int c.Stats.predicate_evals);
           ("hash_builds", Json.Int c.Stats.hash_builds);
           ("hash_probes", Json.Int c.Stats.hash_probes);
           ("sorts", Json.Int c.Stats.sorts);
           ("applies", Json.Int c.Stats.applies);
           ("apply_hits", Json.Int c.Stats.apply_hits);
           ("bloom_checks", Json.Int c.Stats.bloom_checks);
           ("bloom_prunes", Json.Int c.Stats.bloom_prunes);
           ("build_side_swaps", Json.Int c.Stats.build_side_swaps);
           ("children", Json.List (List.map (to_json ~timing) n.Stats.children));
         ];
       ])
