(* Columnar batches with selection vectors.

   A batch is a fixed-size window of rows flowing between vectorized
   operators.  Two storage layouts coexist:

   - [Cols]: late-materialized form.  Each named binding is a column
     (typed and unboxed where possible), layered over a shared [tail]
     environment that holds the bindings common to every row of the
     batch (the enclosing scope, correlation bindings, ...).  A full
     [Env.t] row is only built on demand via [env_at].
   - [Rows]: materialized form, produced by operators whose output is
     not columnar (projections, join results) or by the row-engine
     fallback.  Kernels do not run on [Rows] batches; expressions are
     evaluated row-at-a-time there.

   [sel] is an ascending selection vector of live physical indices;
   [None] means all [len] slots are live.  Filtering narrows [sel]
   without copying the underlying columns.  Slots outside the
   selection hold unspecified values and must never be read. *)

module Value = Cobj.Value
module Env = Cobj.Env

type col =
  | Ints of int array
  | Floats of floatarray
  | Bools of Bytes.t (* '\000' = false, anything else = true *)
  | Boxed of Value.t array
  | Const of Value.t (* same value at every index *)

type data =
  | Cols of { cols : (string * col) list; tail : Env.t }
  | Rows of Env.t array

type t = { len : int; sel : int array option; data : data }

let get (c : col) i =
  match c with
  | Ints a -> Value.Int (Array.unsafe_get a i)
  | Floats a -> Value.Float (Float.Array.get a i)
  | Bools b -> Value.Bool (Bytes.unsafe_get b i <> '\000')
  | Boxed a -> Array.unsafe_get a i
  | Const v -> v

let live b = match b.sel with None -> b.len | Some s -> Array.length s

let iter_live b f =
  match b.sel with
  | None ->
      for i = 0 to b.len - 1 do
        f i
      done
  | Some s -> Array.iter f s

let is_cols b = match b.data with Cols _ -> true | Rows _ -> false

let col b x =
  match b.data with
  | Cols { cols; _ } -> List.assoc_opt x cols
  | Rows _ -> None

let tail b = match b.data with Cols { tail; _ } -> tail | Rows _ -> Env.empty

(* Materialize the environment for physical slot [i].  For [Cols] the
   columns are bound oldest-first so the newest column shadows both the
   tail and older columns, exactly like the nested [Env.bind] calls the
   row engine would have performed. *)
let env_at b i =
  match b.data with
  | Rows rows -> rows.(i)
  | Cols { cols; tail } ->
      List.fold_left
        (fun acc (x, c) -> Env.bind x (get c i) acc)
        tail (List.rev cols)

let narrow b sel = { b with sel = Some sel }

let add_col b x c =
  match b.data with
  | Cols { cols; tail } -> { b with data = Cols { cols = (x, c) :: cols; tail } }
  | Rows _ -> invalid_arg "Batch.add_col: rows batch"

let to_rows b =
  let acc = ref [] in
  iter_live b (fun i -> acc := env_at b i :: !acc);
  List.rev !acc

let rows_of_batches bs = List.concat_map to_rows bs

let of_rows_array rows = { len = Array.length rows; sel = None; data = Rows rows }

(* Split a list into chunks of at most [size], mapping each chunk
   through [mk] on its array form. *)
let chunked ~size xs mk =
  let size = max 1 size in
  let rec take n xs acc =
    if n = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> (List.rev acc, [])
      | x :: tl -> take (n - 1) tl (x :: acc)
  in
  let rec go xs acc =
    match xs with
    | [] -> List.rev acc
    | _ ->
        let chunk, rest = take size xs [] in
        go rest (mk (Array.of_list chunk) :: acc)
  in
  go xs []

let of_rows ~size rows = chunked ~size rows of_rows_array

(* Scan constructor: one boxed column [var] over the shared scope
   [tail], chunked into batches of [size]. *)
let of_values ~size var tail values =
  chunked ~size values (fun arr ->
      {
        len = Array.length arr;
        sel = None;
        data = Cols { cols = [ (var, Boxed arr) ]; tail };
      })

let live_total bs = List.fold_left (fun n b -> n + live b) 0 bs
