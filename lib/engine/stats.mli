(** Work counters collected during execution — machine-independent cost
    evidence for the benches (tuple comparisons, hash activity, subquery
    re-evaluations).

    Two granularities share the same counter record:
    - a single {!t} accumulates totals across a whole plan (the legacy
      behaviour of [Exec.rows ?stats]);
    - a {!node} tree mirrors the physical plan shape and holds one {!t} per
      operator, plus wall-clock time, invocation counts, and the cost
      model's estimated cardinality — the data behind EXPLAIN ANALYZE. *)

type t = {
  mutable rows_out : int;     (** rows emitted by all operators *)
  mutable predicate_evals : int;  (** join/filter predicate evaluations *)
  mutable hash_builds : int;  (** rows inserted into hash tables *)
  mutable hash_probes : int;
  mutable sorts : int;        (** rows passed through sort operators *)
  mutable applies : int;      (** correlated subquery evaluations *)
  mutable apply_hits : int;   (** memoized apply cache hits *)
  mutable bloom_checks : int;  (** probe keys tested against a Bloom filter *)
  mutable bloom_prunes : int;
      (** probes the filter answered negatively (hash lookup skipped) *)
  mutable build_side_swaps : int;
      (** commutative hash joins that built on the left operand because it
          was the smaller one at runtime *)
  mutable partitions : int;
      (** hash partitions built by parallel joins (0 in serial runs) *)
  mutable partition_max_rows : int;
      (** largest build partition seen — with [partitions] and
          [hash_builds] this exposes partition skew (max vs mean rows),
          which bounds parallel speedup. [add] takes the max, not the
          sum. *)
}

val create : unit -> t
val reset : t -> unit
val total_work : t -> int
(** A single scalar work summary. Bloom counters and swaps are excluded: a
    pruned probe still counts in [hash_probes], so totals are comparable
    across bloom on/off runs. *)

val add : into:t -> t -> unit
(** [add ~into src] accumulates [src]'s counters into [into]. *)

val pp : t Fmt.t
(** One flat line of the jobs-invariant counters. The partition counters
    are jobs-dependent and deliberately excluded — they surface in
    EXPLAIN ANALYZE output when timing is requested. *)

(** {1 Per-operator nodes} *)

type node = {
  op : string;          (** operator name, e.g. ["hash-nestjoin"] *)
  detail : string;      (** keys / predicate / labels, pretty-printed *)
  counters : t;         (** this operator's own work, summed over loops *)
  mutable loops : int;  (** times the operator ran (re-runs under Apply) *)
  mutable time_ns : int64;
      (** inclusive wall-clock (children included), summed over loops *)
  mutable est_rows : float;
      (** cost-model estimate; [nan] until annotated (see [Core.Cost]) *)
  mutable bounds : (float * float) option;
      (** proven [lo, hi] output-cardinality bounds per invocation;
          [None] until a property annotator fills them in
          ([Analysis.Certify] via [Core.Pipeline.set_annotator]) *)
  mutable keys : string list;
      (** proven candidate keys of the output rows, pretty-printed
          (e.g. ["x.a"]; [[]] until annotated) *)
  mutable gc : Obs.Memory.delta option;
      (** Gc delta over this node's execution; only the root is filled
          in (by [Core.Pipeline.analyze]) — per-operator deltas would
          double-count children *)
  mutable vectorized : bool;
      (** the operator ran on the columnar batch engine (set by
          [Exec] when the vector layer handled it); rendered only in
          timing-class EXPLAIN ANALYZE output so the flat annotation
          line stays identical between the row and vector engines *)
  children : node list; (** same order as the physical operands *)
}

val node : op:string -> detail:string -> node list -> node
(** Fresh node with zeroed counters and [est_rows = nan]. *)

val reset_node : node -> unit
(** Zero counters, loops and timings over the whole tree (keeps
    [est_rows], [bounds] and [keys]). *)

val sum_into : t -> node -> unit
(** Accumulate every node's counters of the tree into a flat total. *)

val totals : node -> t
(** Fresh flat total of the whole tree — equals what an uninstrumented run
    with a global {!t} would have collected. *)
