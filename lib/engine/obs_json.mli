(** Serialization of [Obs] registry/accounting values into {!Json.t},
    for Analyze output and bench artifacts. *)

val gc : Obs.Memory.delta -> Json.t

val value : Obs.Metrics.value -> Json.t
(** One metric as a tagged object; histograms list only non-empty
    buckets (with each bucket's lower bound). *)

val metrics : unit -> Json.t
(** The whole registry ({!Obs.Metrics.dump}) as one object keyed by
    metric name. *)
