(** Minimal JSON document builder for the EXPLAIN ANALYZE output and the
    bench artifacts. Emits strictly valid JSON: strings are escaped,
    non-finite floats serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Int64 of int64
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_pretty_string : t -> string
(** Two-space indented rendering (for diffable artifacts). *)
