module Ctype = Cobj.Ctype

type tenv = (string * Ctype.t) list

type error = {
  message : string;
  context : Ast.expr;
  tenv : tenv;
}

let pp_tenv ppf tenv =
  Fmt.pf ppf "(@[%a@])"
    (Fmt.list ~sep:(Fmt.any ",@ ") (fun ppf (v, t) ->
         Fmt.pf ppf "%s : %a" v Cobj.Ctype.pp t))
    tenv

let pp_error ppf { message; context; tenv } =
  match tenv with
  | [] -> Fmt.pf ppf "@[<v>type error: %s@,in: %a@]" message Pretty.pp context
  | _ :: _ ->
    Fmt.pf ppf "@[<v>type error: %s@,in: %a@,env: %a@]" message Pretty.pp
      context pp_tenv tenv

exception Error of error

let fail tenv context fmt =
  Format.kasprintf (fun message -> raise (Error { message; context; tenv })) fmt

(* The element type a value of type [t] yields when iterated by a FROM
   clause or a quantifier. *)
let element_of tenv context t =
  match t with
  | Ctype.TSet e | Ctype.TList e -> e
  | Ctype.TAny -> Ctype.TAny
  | Ctype.(TBool | TInt | TFloat | TString | TTuple _ | TVariant _) ->
    fail tenv context "expected a collection, got %a" Ctype.pp t

let join_or_fail tenv context a b =
  match Ctype.join a b with
  | Some t -> t
  | None ->
    fail tenv context "incompatible types %a and %a" Ctype.pp a Ctype.pp b

let rec infer_exn catalog tenv e =
  let recur = infer_exn catalog in
  match e with
  | Ast.Const v -> begin
    match Ctype.infer v with
    | Some t -> t
    | None -> fail tenv e "untypable literal"
  end
  | Ast.Var x -> begin
    match List.assoc_opt x tenv with
    | Some t -> t
    | None -> fail tenv e "unbound variable %s" x
  end
  | Ast.TableRef name -> begin
    match Cobj.Catalog.find name catalog with
    | Some table -> Ctype.TSet (Cobj.Table.elt table)
    | None -> fail tenv e "unknown extension %s" name
  end
  | Ast.Field (e1, l) -> begin
    let t1 = recur tenv e1 in
    match t1 with
    | Ctype.TAny -> Ctype.TAny
    | _ -> (
      match Ctype.field l t1 with
      | Some t -> t
      | None -> fail tenv e "type %a has no field %s" Ctype.pp t1 l)
  end
  | Ast.TupleE fields ->
    let tfields = List.map (fun (l, e1) -> (l, recur tenv e1)) fields in
    begin
      match Ctype.ttuple tfields with
      | t -> t
      | exception Invalid_argument msg -> fail tenv e "%s" msg
    end
  | Ast.SetE es ->
    let elt =
      List.fold_left
        (fun acc e1 -> join_or_fail tenv e acc (recur tenv e1))
        Ctype.TAny es
    in
    Ctype.TSet elt
  | Ast.ListE es ->
    let elt =
      List.fold_left
        (fun acc e1 -> join_or_fail tenv e acc (recur tenv e1))
        Ctype.TAny es
    in
    Ctype.TList elt
  | Ast.Unop (Ast.Not, e1) ->
    expect_bool catalog tenv e1;
    Ctype.TBool
  | Ast.Unop (Ast.Neg, e1) -> begin
    match recur tenv e1 with
    | (Ctype.TInt | Ctype.TFloat | Ctype.TAny) as t -> t
    | t -> fail tenv e "cannot negate %a" Ctype.pp t
  end
  | Ast.Binop (op, a, b) -> infer_binop catalog tenv e op a b
  | Ast.Agg (agg, e1) -> begin
    let t1 = recur tenv e1 in
    let elt = element_of tenv e t1 in
    match agg with
    | Ast.Count -> Ctype.TInt
    | Ast.Sum ->
      if Ctype.is_numeric elt || elt = Ctype.TAny then elt
      else fail tenv e "SUM over non-numeric elements %a" Ctype.pp elt
    | Ast.Min | Ast.Max -> elt
    | Ast.Avg ->
      if Ctype.is_numeric elt || elt = Ctype.TAny then Ctype.TFloat
      else fail tenv e "AVG over non-numeric elements %a" Ctype.pp elt
  end
  | Ast.Quant (_, v, s, p) ->
    let ts = recur tenv s in
    let elt = element_of tenv e ts in
    expect_bool catalog ((v, elt) :: tenv) p;
    Ctype.TBool
  | Ast.Let (v, def, body) ->
    let td = recur tenv def in
    recur ((v, td) :: tenv) body
  | Ast.UnnestE e1 -> begin
    let t1 = recur tenv e1 in
    match element_of tenv e t1 with
    | Ctype.TSet t | Ctype.TList t -> Ctype.TSet t
    | Ctype.TAny -> Ctype.TSet Ctype.TAny
    | elt -> fail tenv e "UNNEST expects a set of sets, got %a" Ctype.pp (TSet elt)
  end
  | Ast.If (c, a, b) ->
    expect_bool catalog tenv c;
    join_or_fail tenv e (recur tenv a) (recur tenv b)
  | Ast.VariantE (tag, e1) -> Ctype.tvariant [ (tag, recur tenv e1) ]
  | Ast.IsTag (e1, tag) -> begin
    match recur tenv e1 with
    | Ctype.TAny -> Ctype.TBool
    | Ctype.TVariant cases ->
      if List.mem_assoc tag cases then Ctype.TBool
      else fail tenv e "variant type %a has no tag %s" Ctype.pp (Ctype.TVariant cases) tag
    | t -> fail tenv e "IS expects a variant, got %a" Ctype.pp t
  end
  | Ast.AsTag (e1, tag) -> begin
    match recur tenv e1 with
    | Ctype.TAny -> Ctype.TAny
    | Ctype.TVariant cases -> begin
      match List.assoc_opt tag cases with
      | Some t -> t
      | None ->
        fail tenv e "variant type %a has no tag %s" Ctype.pp (Ctype.TVariant cases)
          tag
    end
    | t -> fail tenv e "AS expects a variant, got %a" Ctype.pp t
  end
  | Ast.Sfw { select; from; where } ->
    let tenv' =
      List.fold_left
        (fun tenv' (v, operand) ->
          let top = recur tenv' operand in
          (v, element_of tenv' operand top) :: tenv')
        tenv from
    in
    Option.iter (expect_bool catalog tenv') where;
    Ctype.TSet (recur tenv' select)

and expect_bool catalog tenv e =
  match infer_exn catalog tenv e with
  | Ctype.TBool | Ctype.TAny -> ()
  | t -> fail tenv e "expected a boolean, got %a" Ctype.pp t

and infer_binop catalog tenv e op a b =
  let recur = infer_exn catalog in
  let ta = recur tenv a in
  let tb = recur tenv b in
  let join () = join_or_fail tenv e ta tb in
  let numeric () =
    let t = join () in
    if Ctype.is_numeric t || t = Ctype.TAny then t
    else fail tenv e "expected numeric operands, got %a and %a" Ctype.pp ta Ctype.pp tb
  in
  let set_operands () =
    match ta, tb with
    | (Ctype.TSet _ | Ctype.TAny), (Ctype.TSet _ | Ctype.TAny) -> begin
      match Ctype.join ta tb with
      | Some (Ctype.TSet _ as t) -> t
      | Some Ctype.TAny -> Ctype.TSet Ctype.TAny
      | Some t -> fail tenv e "expected set operands, got %a" Ctype.pp t
      | None ->
        fail tenv e "incompatible set types %a and %a" Ctype.pp ta Ctype.pp tb
    end
    | _, _ ->
      fail tenv e "expected set operands, got %a and %a" Ctype.pp ta Ctype.pp tb
  in
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul -> numeric ()
  | Ast.Div -> numeric ()
  | Ast.Mod -> begin
    match ta, tb with
    | (Ctype.TInt | Ctype.TAny), (Ctype.TInt | Ctype.TAny) -> Ctype.TInt
    | _, _ -> fail tenv e "MOD expects integers"
  end
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    ignore (join ());
    Ctype.TBool
  | Ast.And | Ast.Or ->
    expect_bool catalog tenv a;
    expect_bool catalog tenv b;
    Ctype.TBool
  | Ast.Mem -> begin
    let elt = element_of tenv e tb in
    ignore (join_or_fail tenv e ta elt);
    Ctype.TBool
  end
  | Ast.Union | Ast.Inter | Ast.Diff -> set_operands ()
  | Ast.Subset | Ast.Subseteq | Ast.Supset | Ast.Supseteq ->
    ignore (set_operands ());
    Ctype.TBool

let infer catalog tenv e =
  match infer_exn catalog tenv e with
  | t -> Ok t
  | exception Error err -> Error err

let check_query catalog e =
  let resolved = Ast.resolve_tables catalog e in
  match infer_exn catalog [] resolved with
  | t -> Ok (resolved, t)
  | exception Error err -> Error err

let typecheck_exn catalog e =
  match check_query catalog e with
  | Ok r -> r
  | Error err -> invalid_arg (Fmt.str "%a" pp_error err)
