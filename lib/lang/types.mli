(** Type checking of TM expressions against a catalog.

    The checker follows the orthogonality of the language: any correctly
    typed expression is allowed in any position. It also resolves table
    references (a free identifier naming a catalog extension denotes that
    extension). *)

type tenv = (string * Cobj.Ctype.t) list
(** Typing environment for query variables, innermost first. *)

type error = {
  message : string;
  context : Ast.expr;  (** the subexpression that failed *)
  tenv : tenv;  (** the typing environment at the point of failure *)
}

val pp_tenv : tenv Fmt.t

val pp_error : error Fmt.t
(** Renders the message, the {!Pretty}-printed offending subexpression and —
    when non-empty — the typing environment it was checked under. *)

val infer : Cobj.Catalog.t -> tenv -> Ast.expr -> (Cobj.Ctype.t, error) result
(** Type of an expression under a typing environment. The expression must
    already be table-resolved (see {!Ast.resolve_tables}); unresolved free
    variables are errors. *)

val check_query :
  Cobj.Catalog.t -> Ast.expr -> (Ast.expr * Cobj.Ctype.t, error) result
(** Resolve table references in a closed query and infer its type; returns
    the resolved expression. *)

val typecheck_exn : Cobj.Catalog.t -> Ast.expr -> Ast.expr * Cobj.Ctype.t
(** Like {!check_query}; raises [Invalid_argument] with the rendered error. *)
