(* Span tracer emitting Chrome trace-event JSON (chrome://tracing,
   https://ui.perfetto.dev). One global sink, guarded by a mutex so worker
   domains can emit morsel spans concurrently; every event is tagged with
   the emitting domain's id as its [tid], which is what makes worker
   utilization and partition skew visible on the timeline.

   Disabled (the default) the tracer is a single ref read per call site:
   [span name f] is [f ()] and [complete]/[instant] return immediately, so
   instrumented code paths cost nothing in production runs. *)

type arg = Str of string | Int of int | Num of float | Bool of bool
type view = { name : string; cat : string; ph : char; tid : int }

type state = {
  path : string;
  buf : Buffer.t;
  m : Mutex.t;
  t0 : int64;
  mutable count : int;
  mutable seen : view list; (* reverse emission order *)
  mutable tids : int list; (* distinct, for thread_name metadata *)
}

let state : state option ref = ref None
let open_count = Atomic.make 0
let clock = Monotonic_clock.now
let enabled () = Option.is_some !state
let open_spans () = Atomic.get open_count

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Trace files must stay parseable: nan/inf have no JSON literal. *)
let num_repr x =
  if Float.is_nan x then "null"
  else if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x

let add_arg buf (k, v) =
  Buffer.add_char buf '"';
  Buffer.add_string buf (escape k);
  Buffer.add_string buf "\":";
  match v with
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Num x -> Buffer.add_string buf (num_repr x)
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let args_to_json args =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      add_arg buf a)
    args;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Append one event object to the sink. [tid] defaults to the calling
   domain. Takes the sink mutex: called from worker domains. *)
let emit st ?tid ~name ~cat ~ph ~ts ?dur ?(args = []) () =
  let tid =
    match tid with Some t -> t | None -> (Domain.self () :> int)
  in
  Mutex.lock st.m;
  if st.count > 0 then Buffer.add_string st.buf ",\n";
  st.count <- st.count + 1;
  st.seen <- { name; cat; ph; tid } :: st.seen;
  if ph <> 'M' && not (List.mem tid st.tids) then st.tids <- tid :: st.tids;
  let b = st.buf in
  Buffer.add_string b "{\"name\":\"";
  Buffer.add_string b (escape name);
  Buffer.add_string b "\",\"cat\":\"";
  Buffer.add_string b (escape cat);
  Buffer.add_string b "\",\"ph\":\"";
  Buffer.add_char b ph;
  Buffer.add_string b "\",\"pid\":1,\"tid\":";
  Buffer.add_string b (string_of_int tid);
  Buffer.add_string b ",\"ts\":";
  Buffer.add_string b (num_repr ts);
  (match dur with
  | Some d ->
    Buffer.add_string b ",\"dur\":";
    Buffer.add_string b (num_repr d)
  | None -> ());
  (match args with
  | [] -> ()
  | _ :: _ ->
    Buffer.add_string b ",\"args\":";
    Buffer.add_string b (args_to_json args));
  Buffer.add_char b '}';
  Mutex.unlock st.m

let rel st t = Int64.to_float (Int64.sub t st.t0) /. 1e3 (* ns → µs *)

let start ~path =
  match !state with
  | Some _ -> invalid_arg "Obs.Trace.start: tracing is already active"
  | None ->
    let st =
      {
        path;
        buf = Buffer.create 4096;
        m = Mutex.create ();
        t0 = clock ();
        count = 0;
        seen = [];
        tids = [];
      }
    in
    state := Some st;
    emit st ~name:"process_name" ~cat:"__metadata" ~ph:'M' ~ts:0.0
      ~args:[ ("name", Str "nestql") ]
      ()

let stop () =
  match !state with
  | None -> ()
  | Some st ->
    state := None;
    List.iter
      (fun tid ->
        emit st ~tid ~name:"thread_name" ~cat:"__metadata" ~ph:'M' ~ts:0.0
          ~args:[ ("name", Str (Printf.sprintf "domain-%d" tid)) ]
          ())
      (List.sort compare st.tids);
    let oc = open_out st.path in
    output_string oc "{\"traceEvents\":[\n";
    Buffer.output_buffer oc st.buf;
    output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n";
    close_out oc

let events () =
  match !state with None -> [] | Some st -> List.rev st.seen

let event_count () = match !state with None -> 0 | Some st -> st.count

(* Complete event from timestamps taken by the caller (the executor already
   clocks every operator; this converts those readings into a span without
   clocking twice). *)
let complete ?(cat = "span") ?args ~start_ns ~stop_ns name =
  match !state with
  | None -> ()
  | Some st ->
    let args = match args with None -> [] | Some f -> f () in
    emit st ~name ~cat ~ph:'X' ~ts:(rel st start_ns)
      ~dur:(Int64.to_float (Int64.sub stop_ns start_ns) /. 1e3)
      ~args ()

let instant ?(cat = "instant") ?(args = []) name =
  match !state with
  | None -> ()
  | Some st -> emit st ~name ~cat ~ph:'i' ~ts:(rel st (clock ())) ~args ()

(* Span around [f]: one complete event recorded when [f] returns *or*
   raises ([Fun.protect]), with wall-clock duration and the [Gc.quick_stat]
   word deltas as arguments — per-span memory accounting for free. *)
let span ?(cat = "phase") ?args name f =
  match !state with
  | None -> f ()
  | Some st ->
    let g0 = Gc.quick_stat () in
    let t0 = clock () in
    Atomic.incr open_count;
    Fun.protect
      ~finally:(fun () ->
        Atomic.decr open_count;
        let t1 = clock () in
        let g1 = Gc.quick_stat () in
        let gc_args =
          [
            ("minor_words", Num (g1.minor_words -. g0.minor_words));
            ("major_words", Num (g1.major_words -. g0.major_words));
            ("promoted_words", Num (g1.promoted_words -. g0.promoted_words));
            ("top_heap_delta_words", Int (g1.top_heap_words - g0.top_heap_words));
          ]
        in
        let user = match args with None -> [] | Some f -> f () in
        match !state with
        | Some st' when st' == st ->
          emit st ~name ~cat ~ph:'X' ~ts:(rel st t0)
            ~dur:(Int64.to_float (Int64.sub t1 t0) /. 1e3)
            ~args:(user @ gc_args) ()
        | _ -> ())
      f
