(** Structured one-line-JSON query log, controlled by the
    [NESTQL_QUERY_LOG] environment variable: unset — disabled; ["-"] —
    append to stderr; any other value — append to that file. *)

val enabled : unit -> bool

val emit : (string * Trace.arg) list -> unit
(** Append one JSON object line with the given fields. No-op when the
    log is disabled. *)
