(** Span tracer emitting Chrome trace-event JSON (viewable in
    chrome://tracing or https://ui.perfetto.dev).

    The tracer is a process-global sink: {!start} opens it, instrumented
    code emits spans, {!stop} writes the file. When no sink is active
    every entry point is a single [ref] read — instrumentation left in
    hot paths costs nothing.

    Events are tagged with the emitting domain's id as their [tid], so a
    parallel run renders one timeline row per worker domain. *)

type arg = Str of string | Int of int | Num of float | Bool of bool
(** Span argument values. [Num nan] and infinities serialize as [null]
    (JSON has no literal for them). *)

type view = { name : string; cat : string; ph : char; tid : int }
(** In-memory view of an emitted event, for tests: name, category,
    trace-event phase character ([X] complete, [i] instant, [M]
    metadata), and emitting domain id. *)

val start : path:string -> unit
(** Open the global sink; the file is written by {!stop}. Raises
    [Invalid_argument] if tracing is already active. *)

val stop : unit -> unit
(** Write [{"traceEvents":[...]}] to the path given to {!start} and
    deactivate the sink. No-op when tracing is inactive. *)

val enabled : unit -> bool

val span : ?cat:string -> ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when tracing is active, records one
    complete event covering its execution — including when [f] raises.
    [args] is only evaluated when tracing is active, at span close.
    Every span also records the [Gc.quick_stat] minor/major/promoted
    word deltas and the top-heap watermark delta as arguments.
    Default category: ["phase"]. *)

val complete :
  ?cat:string ->
  ?args:(unit -> (string * arg) list) ->
  start_ns:int64 ->
  stop_ns:int64 ->
  string ->
  unit
(** Record a complete event from timestamps the caller already took with
    [Monotonic_clock.now] (the executor clocks operators anyway; this
    avoids clocking twice). No-op when tracing is inactive. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
(** Record a zero-duration instant event. *)

val args_to_json : (string * arg) list -> string
(** Serialize an argument list as a JSON object (used by {!Qlog}). *)

(** {2 Test accessors} *)

val open_spans : unit -> int
(** Number of {!span} calls currently on the stack (across all domains).
    Zero whenever no span body is executing — including after a span
    body raised. *)

val events : unit -> view list
(** Events emitted so far, in emission order. Empty when inactive. *)

val event_count : unit -> int
