(* Gc accounting helpers built on [Gc.quick_stat] (counters only — no
   heap traversal, safe to call per phase/operator). *)

type snapshot = Gc.stat

type delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  top_heap_words : int;
  heap_words : int;
}

let snapshot () = Gc.quick_stat ()

let delta ~(before : Gc.stat) ~(after : Gc.stat) =
  {
    minor_words = after.minor_words -. before.minor_words;
    major_words = after.major_words -. before.major_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    top_heap_words = after.top_heap_words - before.top_heap_words;
    heap_words = after.heap_words - before.heap_words;
  }

let measure f =
  let before = snapshot () in
  let v = f () in
  (v, delta ~before ~after:(snapshot ()))

let fields d =
  [
    ("minor_words", d.minor_words);
    ("major_words", d.major_words);
    ("promoted_words", d.promoted_words);
    ("top_heap_delta_words", float_of_int d.top_heap_words);
    ("heap_delta_words", float_of_int d.heap_words);
  ]
