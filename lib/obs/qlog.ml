(* Structured query log: one JSON object per executed query, appended to
   $NESTQL_QUERY_LOG (a path, or "-" for stderr). Gives fleet-style
   visibility — strategy, jobs, rows, milliseconds, prune counts, worst
   misestimation — without parsing EXPLAIN ANALYZE output. *)

let path () = Sys.getenv_opt "NESTQL_QUERY_LOG"
let enabled () = path () <> None

let emit fields =
  match path () with
  | None -> ()
  | Some p ->
    let line = Trace.args_to_json fields ^ "\n" in
    if p = "-" then (
      output_string stderr line;
      flush stderr)
    else begin
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 p in
      output_string oc line;
      close_out oc
    end
