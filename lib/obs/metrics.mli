(** Process-global metrics registry: counters, gauges, and log-scaled
    histograms keyed by dotted names.

    Off by default — every recording call checks one atomic flag first,
    so instrumentation left in hot paths is free until a consumer
    ([--trace], the bench harness, [nestql serve]) calls {!enable}.

    Domain safety: counters and histograms are sharded by the recording
    domain's id (each shard has its own lock), so concurrent worker
    domains never lose updates and never contend on a global mutex;
    {!dump}, {!counter} and {!quantile} merge the shards. Gauges are a
    single locked table ([set_gauge] is last-write-wins).

    Naming convention (see docs/OBSERVABILITY.md): metrics under the
    [par.], [gc.] and [profile.] prefixes are jobs-, allocation- or
    wall-clock-dependent; all other metrics are invariant in the domain
    count. *)

type hist = { mutable count : int; mutable sum : float; buckets : int array }
type value = Counter of int | Gauge of float | Histogram of hist

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded metrics and window snapshots (the enabled flag is
    unchanged). *)

val incr : ?by:int -> string -> unit
val set_gauge : string -> float -> unit
val add_gauge : string -> float -> unit

val observe : string -> int -> unit
(** Record one observation into a log-scaled histogram: bucket index is
    the bit length of the value, so 0 and negatives land in bucket 0,
    1 in bucket 1, 2..3 in bucket 2, ..., [max_int] in bucket 62. *)

val dump : unit -> (string * value) list
(** Snapshot of all metrics, sorted by name; per-domain shards are
    merged (counters and histogram buckets summed). Histogram buckets
    are copied; mutating the result does not affect the registry. *)

val bucket_of : int -> int
(** The histogram bucket an observation lands in (exposed for tests). *)

val bucket_lo : int -> int
(** Smallest value mapping to the given bucket (0 for bucket 0). *)

val bucket_hi : int -> int
(** Largest value mapping to the given bucket (0 for bucket 0). *)

val nbuckets : int

val counter : string -> int
(** Current value of a counter summed across shards, 0 when absent (or
    not a counter). Reads work even while the registry is disabled —
    tests and the server's cache assertions read back what
    instrumentation recorded. *)

val gauge : string -> float
(** Current value of a gauge, 0.0 when absent (or not a gauge). *)

val quantile : string -> float -> float
(** [quantile name q] estimates the [q]-quantile (q in [0,1]) of the
    named histogram from its bucket geometry: the bucket holding the
    [q·count]-th observation is found and the value interpolated
    linearly between {!bucket_lo} and {!bucket_hi} — exact for bucket 0,
    within one power of two otherwise. 0.0 for an absent or empty
    histogram. [q] outside [0,1] is clamped. *)

val labeled : string -> (string * string) list -> string
(** [labeled name [("k","v");…]] builds the canonical labeled metric key
    [name{k="v",…}]: keys sorted, values escaped Prometheus-style
    (backslash, double quote, newline). The same label set always
    produces the same key, so labeled series aggregate correctly; the
    {!Prom} renderer emits the label block verbatim. [labeled name []]
    is [name]. *)

(** {1 Sliding window}

    A fixed-capacity ring of scalar snapshots (counter values and
    histogram counts; gauges are instantaneous and excluded). A producer
    — the server daemon, once a minute — calls {!window_record}; readers
    ask for the delta or rate of a metric over the last [span_s]
    seconds, measured against the oldest snapshot inside the span.
    Timestamps are supplied by the caller so tests can drive the
    clock. *)

val window_capacity : int
(** Ring capacity (64 snapshots — a bit over an hour at one per
    minute); older snapshots are overwritten. *)

val window_record : at_s:float -> unit
(** Snapshot all counters and histogram counts at time [at_s]
    (seconds, any monotonic origin shared with the query calls). *)

val window_delta : string -> now_s:float -> span_s:float -> int option
(** Increase of a counter (or histogram count) since the oldest
    snapshot within [[now_s - span_s, now_s]]; [None] when no snapshot
    falls in the span. A metric absent from the snapshot counts as 0. *)

val window_rate : string -> now_s:float -> span_s:float -> float option
(** {!window_delta} divided by the actual snapshot age in seconds. *)

val window_times : unit -> float list
(** Timestamps of the retained snapshots, oldest first (for tests and
    the [top] client). *)
