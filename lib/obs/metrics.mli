(** Process-global metrics registry: counters, gauges, and log-scaled
    histograms keyed by dotted names.

    Off by default — every recording call checks one atomic flag first,
    so instrumentation left in hot paths is free until a consumer
    ([--trace], the bench harness) calls {!enable}.

    Naming convention (see docs/OBSERVABILITY.md): metrics under the
    [par.] and [gc.] prefixes are jobs- or allocation-dependent; all
    other metrics are invariant in the domain count. *)

type hist = { mutable count : int; mutable sum : float; buckets : int array }
type value = Counter of int | Gauge of float | Histogram of hist

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded metrics (the enabled flag is unchanged). *)

val incr : ?by:int -> string -> unit
val set_gauge : string -> float -> unit
val add_gauge : string -> float -> unit

val observe : string -> int -> unit
(** Record one observation into a log-scaled histogram: bucket index is
    the bit length of the value, so 0 and negatives land in bucket 0,
    1 in bucket 1, 2..3 in bucket 2, ..., [max_int] in bucket 62. *)

val dump : unit -> (string * value) list
(** Snapshot of all metrics, sorted by name. Histogram buckets are
    copied; mutating the result does not affect the registry. *)

val bucket_of : int -> int
(** The histogram bucket an observation lands in (exposed for tests). *)

val bucket_lo : int -> int
(** Smallest value mapping to the given bucket (0 for bucket 0). *)

val nbuckets : int

val counter : string -> int
(** Current value of a counter, 0 when absent (or not a counter). Reads
    work even while the registry is disabled — tests and the server's
    cache assertions read back what instrumentation recorded. *)

val gauge : string -> float
(** Current value of a gauge, 0.0 when absent (or not a gauge). *)
