(** Gc accounting from [Gc.quick_stat] deltas (counters only — cheap
    enough to take per pipeline phase or per operator). *)

type snapshot = Gc.stat

type delta = {
  minor_words : float;  (** words allocated in the minor heap *)
  major_words : float;  (** words allocated in the major heap *)
  promoted_words : float;
  top_heap_words : int;  (** top-heap watermark growth (words) *)
  heap_words : int;  (** major-heap size change (words) *)
}

val snapshot : unit -> snapshot
val delta : before:snapshot -> after:snapshot -> delta

val measure : (unit -> 'a) -> 'a * delta
(** Run a thunk and return its result with the Gc delta it incurred. *)

val fields : delta -> (string * float) list
(** Flat field list, for serialization. *)
