(* Prometheus text exposition (text/plain; version=0.0.4) over a
   Metrics dump. Dotted registry names are mangled to a metric family
   name (dots and other illegal characters become underscores) under the
   nestql_ prefix; a label block produced by Metrics.labeled is split
   off the key and passed through verbatim. Histograms render as
   cumulative le-buckets derived from the registry's power-of-two bucket
   geometry, plus _sum and _count. *)

let family_prefix = "nestql_"

let legal_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let mangle name =
  family_prefix
  ^ String.map (fun c -> if legal_char c then c else '_') name

(* "name{k=\"v\"}" -> ("name", Some "k=\"v\""); plain names pass
   through. Only the first '{' can open a label block — names from the
   registry never contain one otherwise. *)
let split_key key =
  match String.index_opt key '{' with
  | None -> (key, None)
  | Some i ->
    let name = String.sub key 0 i in
    let rest = String.sub key (i + 1) (String.length key - i - 1) in
    let labels =
      match String.rindex_opt rest '}' with
      | Some j -> String.sub rest 0 j
      | None -> rest
    in
    (name, if labels = "" then None else Some labels)

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let type_name = function
  | Metrics.Counter _ -> "counter"
  | Metrics.Gauge _ -> "gauge"
  | Metrics.Histogram _ -> "histogram"

let add_sample buf family labels suffix extra value =
  Buffer.add_string buf (family ^ suffix);
  let label_block =
    match (labels, extra) with
    | None, None -> ""
    | Some l, None -> "{" ^ l ^ "}"
    | None, Some e -> "{" ^ e ^ "}"
    | Some l, Some e -> "{" ^ l ^ "," ^ e ^ "}"
  in
  Buffer.add_string buf label_block;
  Buffer.add_char buf ' ';
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

let render_hist buf family labels (h : Metrics.hist) =
  (* Cumulative buckets up to the highest populated one; le bounds come
     from the power-of-two geometry (bucket i covers up to bucket_hi i). *)
  let top = ref (-1) in
  Array.iteri (fun i c -> if c > 0 then top := i) h.buckets;
  let cum = ref 0 in
  for i = 0 to !top do
    cum := !cum + h.buckets.(i);
    add_sample buf family labels "_bucket"
      (Some (Printf.sprintf "le=\"%d\"" (Metrics.bucket_hi i)))
      (string_of_int !cum)
  done;
  add_sample buf family labels "_bucket" (Some "le=\"+Inf\"")
    (string_of_int h.count);
  add_sample buf family labels "_sum" None (float_repr h.sum);
  add_sample buf family labels "_count" None (string_of_int h.count)

let render dump =
  let buf = Buffer.create 4096 in
  (* Group label variants of a family into one TYPE block even when an
     unrelated key ("name.x" sorts between "name" and "name{…") would
     otherwise split them. *)
  let dump =
    List.stable_sort
      (fun (a, _) (b, _) ->
        let fa = mangle (fst (split_key a))
        and fb = mangle (fst (split_key b)) in
        match String.compare fa fb with
        | 0 -> String.compare a b
        | c -> c)
      dump
  in
  let last_family = ref "" in
  List.iter
    (fun (key, v) ->
      let name, labels = split_key key in
      let family = mangle name in
      if family <> !last_family then begin
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" family (type_name v));
        last_family := family
      end;
      match v with
      | Metrics.Counter n -> add_sample buf family labels "" None (string_of_int n)
      | Metrics.Gauge g -> add_sample buf family labels "" None (float_repr g)
      | Metrics.Histogram h -> render_hist buf family labels h)
    dump;
  Buffer.contents buf

let page () = render (Metrics.dump ())

let content_type = "text/plain; version=0.0.4; charset=utf-8"
