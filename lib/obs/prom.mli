(** Prometheus text exposition (format version 0.0.4) for the
    {!Metrics} registry.

    Registry names are mangled into metric family names: every
    character outside [[a-zA-Z0-9_:]] becomes an underscore and the
    [nestql_] prefix is prepended, so ["server.cache.plan.hits"]
    exposes as [nestql_server_cache_plan_hits]. A label block attached
    by {!Metrics.labeled} ([name{k="v"}]) is split off the registry key
    and emitted verbatim; label variants of one family share a single
    [# TYPE] block.

    Histograms render as cumulative [_bucket{le="…"}] samples derived
    from the registry's power-of-two bucket geometry (bucket [i] covers
    values up to {!Metrics.bucket_hi}[ i]), closed by [le="+Inf"],
    [_sum] and [_count]. *)

val render : (string * Metrics.value) list -> string
(** Render a {!Metrics.dump} as Prometheus exposition text. *)

val page : unit -> string
(** [render (Metrics.dump ())]. *)

val content_type : string
(** The exposition content type:
    ["text/plain; version=0.0.4; charset=utf-8"]. *)

val mangle : string -> string
(** The family-name mangling, exposed for tests and the checker. *)
