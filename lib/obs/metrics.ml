(* Process-global metrics registry: counters, gauges, and log-scaled
   histograms keyed by dotted names ("optimizer.rewrite.passes",
   "par.partition_build_rows", ...). Off by default; every recording
   entry point checks one atomic flag and returns, so instrumented code
   costs nothing unless a consumer (--trace, bench, the server) enabled
   the registry.

   Concurrency: counters and histograms are sharded by the recording
   domain's id — each shard owns a mutex and a table, so worker domains
   recording partition histograms under --jobs never contend on a global
   lock (a shard's mutex only serializes systhreads of the same domain,
   which cannot run concurrently anyway). Gauges keep one global locked
   table: set_gauge is last-write-wins, and summing per-shard values
   would be wrong. dump/counter/quantile merge the shards. *)

type hist = { mutable count : int; mutable sum : float; buckets : int array }

type value = Counter of int | Gauge of float | Histogram of hist

type cell = Ccell of int ref | Hcell of hist

(* Power-of-two buckets: index = bit length of the observed value, so
   0 (and negatives) land in bucket 0, 1 in bucket 1, 2..3 in bucket 2,
   and max_int (62 significant bits on 64-bit) in bucket 62. *)
let nbuckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits acc n = if n = 0 then acc else bits (acc + 1) (n lsr 1) in
    bits 0 v
  end

let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)

let bucket_hi i = if i <= 0 then 0 else (1 lsl i) - 1

let on = Atomic.make false

let nshards = 8

type shard = { lock : Mutex.t; tbl : (string, cell) Hashtbl.t }

let shards =
  Array.init nshards (fun _ ->
      { lock = Mutex.create (); tbl = Hashtbl.create 64 })

let gauges_lock = Mutex.create ()
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 32

let my_shard () = shards.((Domain.self () :> int) land (nshards - 1))

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let locked l f =
  Mutex.lock l;
  Fun.protect ~finally:(fun () -> Mutex.unlock l) f

let cell tbl name mk =
  match Hashtbl.find_opt tbl name with
  | Some c -> c
  | None ->
    let c = mk () in
    Hashtbl.add tbl name c;
    c

let incr ?(by = 1) name =
  if Atomic.get on then begin
    let s = my_shard () in
    locked s.lock (fun () ->
        match cell s.tbl name (fun () -> Ccell (ref 0)) with
        | Ccell r -> r := !r + by
        | Hcell _ -> invalid_arg (name ^ " is not a counter"))
  end

let set_gauge name v =
  if Atomic.get on then
    locked gauges_lock (fun () ->
        match Hashtbl.find_opt gauges name with
        | Some r -> r := v
        | None -> Hashtbl.add gauges name (ref v))

let add_gauge name v =
  if Atomic.get on then
    locked gauges_lock (fun () ->
        match Hashtbl.find_opt gauges name with
        | Some r -> r := !r +. v
        | None -> Hashtbl.add gauges name (ref v))

let observe name v =
  if Atomic.get on then begin
    let s = my_shard () in
    locked s.lock (fun () ->
        match
          cell s.tbl name (fun () ->
              Hcell { count = 0; sum = 0.; buckets = Array.make nbuckets 0 })
        with
        | Hcell h ->
          h.count <- h.count + 1;
          h.sum <- h.sum +. float_of_int v;
          let b = bucket_of v in
          h.buckets.(b) <- h.buckets.(b) + 1
        | Ccell _ -> invalid_arg (name ^ " is not a histogram"))
  end

let dump () =
  let acc : (string, value) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      locked s.lock (fun () ->
          Hashtbl.iter
            (fun name c ->
              match (c, Hashtbl.find_opt acc name) with
              | Ccell r, None -> Hashtbl.replace acc name (Counter !r)
              | Ccell r, Some (Counter n) ->
                Hashtbl.replace acc name (Counter (n + !r))
              | Hcell h, None ->
                Hashtbl.replace acc name
                  (Histogram
                     {
                       count = h.count;
                       sum = h.sum;
                       buckets = Array.copy h.buckets;
                     })
              | Hcell h, Some (Histogram g) ->
                g.count <- g.count + h.count;
                g.sum <- g.sum +. h.sum;
                Array.iteri
                  (fun i v -> g.buckets.(i) <- g.buckets.(i) + v)
                  h.buckets
              | _, Some _ -> ())
            s.tbl))
    shards;
  locked gauges_lock (fun () ->
      Hashtbl.iter
        (fun name r ->
          if not (Hashtbl.mem acc name) then
            Hashtbl.replace acc name (Gauge !r))
        gauges);
  Hashtbl.fold (fun n v l -> (n, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counter name =
  Array.fold_left
    (fun total s ->
      locked s.lock (fun () ->
          match Hashtbl.find_opt s.tbl name with
          | Some (Ccell r) -> total + !r
          | Some (Hcell _) | None -> total))
    0 shards

let gauge name =
  locked gauges_lock (fun () ->
      match Hashtbl.find_opt gauges name with Some r -> !r | None -> 0.)

let merged_hist name =
  let out = { count = 0; sum = 0.; buckets = Array.make nbuckets 0 } in
  Array.iter
    (fun s ->
      locked s.lock (fun () ->
          match Hashtbl.find_opt s.tbl name with
          | Some (Hcell h) ->
            out.count <- out.count + h.count;
            out.sum <- out.sum +. h.sum;
            Array.iteri
              (fun i v -> out.buckets.(i) <- out.buckets.(i) + v)
              h.buckets
          | Some (Ccell _) | None -> ()))
    shards;
  if out.count = 0 then None else Some out

(* Quantile from bucket geometry: find the bucket holding the q·count-th
   observation and interpolate linearly between the bucket's bounds.
   Exact for bucket 0 (all zeros); within one power of two otherwise. *)
let quantile_of_hist h q =
  let q = if q < 0. then 0. else if q > 1. then 1. else q in
  let target = q *. float_of_int h.count in
  let rec go i cum =
    if i >= nbuckets then float_of_int (bucket_hi (nbuckets - 1))
    else begin
      let c = h.buckets.(i) in
      let cum' = cum + c in
      if c > 0 && float_of_int cum' >= target then begin
        let lo = float_of_int (bucket_lo i)
        and hi = float_of_int (bucket_hi i) in
        let frac = (target -. float_of_int cum) /. float_of_int c in
        lo +. ((hi -. lo) *. max 0. frac)
      end
      else go (i + 1) cum'
    end
  in
  go 0 0

let quantile name q =
  match merged_hist name with None -> 0. | Some h -> quantile_of_hist h q

(* Canonical labeled metric key: name{k="v",...} with keys sorted and
   values escaped Prometheus-style (backslash, quote, newline). The Prom
   renderer passes the label block through verbatim. *)
let labeled name labels =
  match labels with
  | [] -> name
  | _ ->
    let esc v =
      let buf = Buffer.create (String.length v) in
      String.iter
        (fun c ->
          match c with
          | '\\' -> Buffer.add_string buf "\\\\"
          | '"' -> Buffer.add_string buf "\\\""
          | '\n' -> Buffer.add_string buf "\\n"
          | c -> Buffer.add_char buf c)
        v;
      Buffer.contents buf
    in
    let labels =
      List.sort (fun (a, _) (b, _) -> String.compare a b) labels
    in
    name ^ "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ "=\"" ^ esc v ^ "\"") labels)
    ^ "}"

(* Sliding-window ring: periodic scalar snapshots (counter values and
   histogram counts — gauges are instantaneous and excluded) against
   which delta / rate queries answer "what happened over the last N
   seconds". The daemon records one snapshot per minute; tests drive
   the clock explicitly. *)

let window_capacity = 64

type snap = { at_s : float; vals : (string, int) Hashtbl.t }

let window_lock = Mutex.create ()
let window_ring : snap option array = Array.make window_capacity None
let window_next = ref 0

let scalar_of = function
  | Counter n -> Some n
  | Histogram h -> Some h.count
  | Gauge _ -> None

let window_record ~at_s =
  let vals = Hashtbl.create 64 in
  List.iter
    (fun (name, v) ->
      match scalar_of v with
      | Some n -> Hashtbl.replace vals name n
      | None -> ())
    (dump ());
  locked window_lock (fun () ->
      window_ring.(!window_next mod window_capacity) <- Some { at_s; vals };
      window_next := !window_next + 1)

let oldest_within ~now_s ~span_s =
  locked window_lock (fun () ->
      let best = ref None in
      Array.iter
        (function
          | Some s when s.at_s >= now_s -. span_s && s.at_s <= now_s -> (
            match !best with
            | Some b when b.at_s <= s.at_s -> ()
            | _ -> best := Some s)
          | _ -> ())
        window_ring;
      !best)

let current_scalar name =
  let total = ref 0 and found = ref false in
  Array.iter
    (fun s ->
      locked s.lock (fun () ->
          match Hashtbl.find_opt s.tbl name with
          | Some (Ccell r) ->
            found := true;
            total := !total + !r
          | Some (Hcell h) ->
            found := true;
            total := !total + h.count
          | None -> ()))
    shards;
  if !found then Some !total else None

let window_delta name ~now_s ~span_s =
  match oldest_within ~now_s ~span_s with
  | None -> None
  | Some snap ->
    let now_v = Option.value ~default:0 (current_scalar name) in
    let then_v =
      match Hashtbl.find_opt snap.vals name with Some n -> n | None -> 0
    in
    Some (now_v - then_v)

let window_rate name ~now_s ~span_s =
  match oldest_within ~now_s ~span_s with
  | None -> None
  | Some snap ->
    let dt = now_s -. snap.at_s in
    if dt <= 0. then None
    else begin
      let now_v = Option.value ~default:0 (current_scalar name) in
      let then_v =
        match Hashtbl.find_opt snap.vals name with Some n -> n | None -> 0
      in
      Some (float_of_int (now_v - then_v) /. dt)
    end

let window_times () =
  locked window_lock (fun () ->
      Array.to_list window_ring
      |> List.filter_map (Option.map (fun s -> s.at_s))
      |> List.sort compare)

let reset () =
  Array.iter (fun s -> locked s.lock (fun () -> Hashtbl.reset s.tbl)) shards;
  locked gauges_lock (fun () -> Hashtbl.reset gauges);
  locked window_lock (fun () ->
      Array.fill window_ring 0 window_capacity None;
      window_next := 0)
