(* Process-global metrics registry: counters, gauges, and log-scaled
   histograms keyed by dotted names ("optimizer.rewrite.passes",
   "par.partition_build_rows", ...). Off by default; every recording
   entry point checks one atomic flag and returns, so instrumented code
   costs nothing unless a consumer (--trace, bench) enabled the
   registry. The table is mutex-guarded: worker domains record partition
   histograms concurrently. *)

type hist = { mutable count : int; mutable sum : float; buckets : int array }

type value = Counter of int | Gauge of float | Histogram of hist

type cell =
  | Ccell of int ref
  | Gcell of float ref
  | Hcell of hist

(* Power-of-two buckets: index = bit length of the observed value, so
   0 (and negatives) land in bucket 0, 1 in bucket 1, 2..3 in bucket 2,
   and max_int (62 significant bits on 64-bit) in bucket 62. *)
let nbuckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits acc n = if n = 0 then acc else bits (acc + 1) (n lsr 1) in
    bits 0 v
  end

let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)

let on = Atomic.make false
let m = Mutex.create ()
let tbl : (string, cell) Hashtbl.t = Hashtbl.create 64

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let reset () =
  Mutex.lock m;
  Hashtbl.reset tbl;
  Mutex.unlock m

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let cell name mk =
  match Hashtbl.find_opt tbl name with
  | Some c -> c
  | None ->
    let c = mk () in
    Hashtbl.add tbl name c;
    c

let incr ?(by = 1) name =
  if Atomic.get on then
    locked (fun () ->
        match cell name (fun () -> Ccell (ref 0)) with
        | Ccell r -> r := !r + by
        | _ -> invalid_arg (name ^ " is not a counter"))

let set_gauge name v =
  if Atomic.get on then
    locked (fun () ->
        match cell name (fun () -> Gcell (ref 0.)) with
        | Gcell r -> r := v
        | _ -> invalid_arg (name ^ " is not a gauge"))

let add_gauge name v =
  if Atomic.get on then
    locked (fun () ->
        match cell name (fun () -> Gcell (ref 0.)) with
        | Gcell r -> r := !r +. v
        | _ -> invalid_arg (name ^ " is not a gauge"))

let observe name v =
  if Atomic.get on then
    locked (fun () ->
        match
          cell name (fun () ->
              Hcell { count = 0; sum = 0.; buckets = Array.make nbuckets 0 })
        with
        | Hcell h ->
          h.count <- h.count + 1;
          h.sum <- h.sum +. float_of_int v;
          let b = bucket_of v in
          h.buckets.(b) <- h.buckets.(b) + 1
        | _ -> invalid_arg (name ^ " is not a histogram"))

let dump () =
  locked (fun () ->
      Hashtbl.fold
        (fun name c acc ->
          let v =
            match c with
            | Ccell r -> Counter !r
            | Gcell r -> Gauge !r
            | Hcell h ->
              Histogram
                { count = h.count; sum = h.sum; buckets = Array.copy h.buckets }
          in
          (name, v) :: acc)
        tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some (Ccell r) -> !r
      | Some _ | None -> 0)

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some (Gcell r) -> !r
      | Some _ | None -> 0.)
