(** Workload generators: catalogs with controlled join behaviour.

    All generators are deterministic in their [seed]. The central knobs are
    the join-key domain (which fixes the expected fan-out |Y| / dom) and the
    fraction of dangling outer rows (rows whose key matches nothing — the
    rows that COUNT-bug plans lose). *)

type xy_spec = {
  nx : int;          (** |X| *)
  ny : int;          (** |Y| *)
  key_dom : int;     (** join keys are drawn from [0, key_dom) *)
  dangling : float;  (** fraction of X rows given a key outside Y's domain *)
  set_max : int;     (** max cardinality of the set-valued attribute [x.s] *)
  val_dom : int;     (** domain of the value attributes [x.a], [y.a] *)
  seed : int;
}

val default_xy : xy_spec

val xy : xy_spec -> Cobj.Catalog.t
(** Two tables:
    - [X (a : INT, b : INT, s : P INT)] — [b] is the join key;
    - [Y (a : INT, b : INT)] — [b] is the join key, [a] the payload.
    A dangling X row gets [b ≥ key_dom], unmatched in Y. *)

type xyz_spec = {
  base : xy_spec;
  nz : int;
  z_key_dom : int;   (** domain of the Y–Z join key [d] *)
}

val default_xyz : xyz_spec

val xyz : xyz_spec -> Cobj.Catalog.t
(** Three tables for §8-style linear queries:
    - [X (a : P INT, b : INT)];
    - [Y (a : INT, b : INT, c : P INT, d : INT)];
    - [Z (c : INT, d : INT)]. *)

val table1 : unit -> Cobj.Catalog.t
(** The instances of the paper's Table 1. The OCR leaves the operand columns
    partially garbled, but the printed nest-join result — per-row sets
    [{(1,1), (2,1)}], [∅], [{(3,3)}] — pins them down uniquely:
    [X (e, d)] = {(1,1), (2,2), (3,3)} and [Y (a, b)] = {(1,1), (2,1),
    (3,3)}, nest-equijoined on the second attribute with the identity
    function. *)

type company_spec = {
  ndepts : int;
  nemps_per_dept : int;
  ncities : int;
  nstreets : int;
  max_children : int;
  company_seed : int;
}

val default_company : company_spec

val company : company_spec -> Cobj.Catalog.t
(** The paper's §3.2 schema: extensions [DEPT] and [EMP].
    - [EMP (name, address (street, nr, city), sal, children : P (name, age),
      dept : STRING)];
    - [DEPT (name, address, emps : P <employee>)] — employees are embedded
      as complex values (the conceptual materialized join the paper
      mentions), and are consistent with the rows of [EMP]. *)

type shop_spec = {
  ncustomers : int;
  norders : int;
  nskus : int;
  max_items : int;
  shop_seed : int;
}

val default_shop : shop_spec

val shop : shop_spec -> Cobj.Catalog.t
(** An order-management schema for the application-mix benchmark:
    - [CUSTOMERS (id : INT, name : STRING, city : STRING, vip : BOOL)];
    - [ORDERS (id : INT, cust : INT, status : STRING,
       items : P (sku : STRING, qty : INT, price : INT))] — items embedded
      as complex values. Roughly 20% of customers have no orders. *)

val queries : ?count:int -> seed:int -> unit -> string list
(** A deterministic corpus of random nested queries over the {!xy} schema
    (WHERE-clause nesting under every Table 2 predicate family, extra
    z-free conjuncts, double subqueries, SELECT-clause nesting, UNNEST,
    nested-in-nested SELECT, quantified predicates ranging over nested
    sets, and empty-inner-collection witnesses — the rows the COUNT bug
    loses and the shredding stitch must preserve) — equal seeds give equal
    corpora. Used by the phase-verification property tests, the
    cross-backend differential oracle and [nestql check --gen]. [count]
    defaults to 50. *)
