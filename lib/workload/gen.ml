module Value = Cobj.Value
module Ctype = Cobj.Ctype
module Table = Cobj.Table
module Catalog = Cobj.Catalog

type xy_spec = {
  nx : int;
  ny : int;
  key_dom : int;
  dangling : float;
  set_max : int;
  val_dom : int;
  seed : int;
}

let default_xy =
  {
    nx = 100;
    ny = 100;
    key_dom = 25;
    dangling = 0.2;
    set_max = 4;
    val_dom = 20;
    seed = 42;
  }

let ints_upto rng dom k =
  List.init k (fun _ -> Value.Int (Prng.int rng dom))

(* Rows are generated with a distinct [id] component so that requested
   cardinalities survive set deduplication, then the id is kept as part of
   the tuple (a perfectly ordinary surrogate key). *)
let x_elt =
  Ctype.ttuple
    [
      ("id", Ctype.TInt);
      ("a", Ctype.TInt);
      ("b", Ctype.TInt);
      ("s", Ctype.TSet Ctype.TInt);
    ]

let y_elt =
  Ctype.ttuple [ ("id", Ctype.TInt); ("a", Ctype.TInt); ("b", Ctype.TInt) ]

let xy spec =
  let rng = Prng.create spec.seed in
  let xrows =
    List.init spec.nx (fun i ->
        let dangling = Prng.bool rng spec.dangling in
        let b =
          if dangling then spec.key_dom + Prng.int rng (max spec.key_dom 1)
          else Prng.int rng spec.key_dom
        in
        let set_card = Prng.int rng (spec.set_max + 1) in
        Value.tuple
          [
            ("id", Value.Int i);
            ("a", Value.Int (Prng.int rng spec.val_dom));
            ("b", Value.Int b);
            ("s", Value.set (ints_upto rng spec.val_dom set_card));
          ])
  in
  let yrows =
    List.init spec.ny (fun i ->
        Value.tuple
          [
            ("id", Value.Int i);
            ("a", Value.Int (Prng.int rng spec.val_dom));
            ("b", Value.Int (Prng.int rng spec.key_dom));
          ])
  in
  Catalog.of_tables
    [
      Table.create ~key:[ "id" ] ~name:"X" ~elt:x_elt xrows;
      Table.create ~key:[ "id" ] ~name:"Y" ~elt:y_elt yrows;
    ]

type xyz_spec = {
  base : xy_spec;
  nz : int;
  z_key_dom : int;
}

let default_xyz = { base = default_xy; nz = 100; z_key_dom = 25 }

let xyz spec =
  let b = spec.base in
  let rng = Prng.create b.seed in
  let x_elt =
    Ctype.ttuple
      [ ("id", Ctype.TInt); ("a", Ctype.TSet Ctype.TInt); ("b", Ctype.TInt) ]
  in
  let y_elt =
    Ctype.ttuple
      [
        ("id", Ctype.TInt);
        ("a", Ctype.TInt);
        ("b", Ctype.TInt);
        ("c", Ctype.TSet Ctype.TInt);
        ("d", Ctype.TInt);
      ]
  in
  let z_elt =
    Ctype.ttuple [ ("id", Ctype.TInt); ("c", Ctype.TInt); ("d", Ctype.TInt) ]
  in
  let key dangling dom =
    if Prng.bool rng dangling then dom + Prng.int rng (max dom 1)
    else Prng.int rng dom
  in
  let xrows =
    List.init b.nx (fun i ->
        Value.tuple
          [
            ("id", Value.Int i);
            ("a", Value.set (ints_upto rng b.val_dom (Prng.int rng (b.set_max + 1))));
            ("b", Value.Int (key b.dangling b.key_dom));
          ])
  in
  let yrows =
    List.init b.ny (fun i ->
        Value.tuple
          [
            ("id", Value.Int i);
            ("a", Value.Int (Prng.int rng b.val_dom));
            ("b", Value.Int (Prng.int rng b.key_dom));
            ("c", Value.set (ints_upto rng b.val_dom (Prng.int rng (b.set_max + 1))));
            ("d", Value.Int (key b.dangling spec.z_key_dom));
          ])
  in
  let zrows =
    List.init spec.nz (fun i ->
        Value.tuple
          [
            ("id", Value.Int i);
            ("c", Value.Int (Prng.int rng b.val_dom));
            ("d", Value.Int (Prng.int rng spec.z_key_dom));
          ])
  in
  Catalog.of_tables
    [
      Table.create ~key:[ "id" ] ~name:"X" ~elt:x_elt xrows;
      Table.create ~key:[ "id" ] ~name:"Y" ~elt:y_elt yrows;
      Table.create ~key:[ "id" ] ~name:"Z" ~elt:z_elt zrows;
    ]

let table1 () =
  let x_elt = Ctype.ttuple [ ("e", Ctype.TInt); ("d", Ctype.TInt) ] in
  let y_elt = Ctype.ttuple [ ("a", Ctype.TInt); ("b", Ctype.TInt) ] in
  let xrow e d = Value.tuple [ ("e", Value.Int e); ("d", Value.Int d) ] in
  let yrow a b = Value.tuple [ ("a", Value.Int a); ("b", Value.Int b) ] in
  Catalog.of_tables
    [
      Table.create ~name:"X" ~elt:x_elt [ xrow 1 1; xrow 2 2; xrow 3 3 ];
      Table.create ~name:"Y" ~elt:y_elt [ yrow 1 1; yrow 2 1; yrow 3 3 ];
    ]

type company_spec = {
  ndepts : int;
  nemps_per_dept : int;
  ncities : int;
  nstreets : int;
  max_children : int;
  company_seed : int;
}

let default_company =
  {
    ndepts = 10;
    nemps_per_dept = 20;
    ncities = 5;
    nstreets = 12;
    max_children = 3;
    company_seed = 7;
  }

let address_elt =
  Ctype.ttuple
    [ ("street", Ctype.TString); ("nr", Ctype.TString); ("city", Ctype.TString) ]

let child_elt = Ctype.ttuple [ ("name", Ctype.TString); ("age", Ctype.TInt) ]

let emp_elt =
  Ctype.ttuple
    [
      ("name", Ctype.TString);
      ("address", address_elt);
      ("sal", Ctype.TInt);
      ("children", Ctype.TSet child_elt);
      ("dept", Ctype.TString);
    ]

let dept_elt =
  Ctype.ttuple
    [ ("name", Ctype.TString); ("address", address_elt); ("emps", Ctype.TSet emp_elt) ]

let company spec =
  let rng = Prng.create spec.company_seed in
  let city i = Printf.sprintf "city%d" i in
  let street i = Printf.sprintf "street%d" i in
  let address () =
    Value.tuple
      [
        ("street", Value.String (street (Prng.int rng spec.nstreets)));
        ("nr", Value.String (string_of_int (1 + Prng.int rng 99)));
        ("city", Value.String (city (Prng.int rng spec.ncities)));
      ]
  in
  let emp dept_name i j =
    let nchildren = Prng.int rng (spec.max_children + 1) in
    let children =
      List.init nchildren (fun k ->
          Value.tuple
            [
              ("name", Value.String (Printf.sprintf "child%d_%d_%d" i j k));
              ("age", Value.Int (Prng.int rng 18));
            ])
    in
    Value.tuple
      [
        ("name", Value.String (Printf.sprintf "emp%d_%d" i j));
        ("address", address ());
        ("sal", Value.Int (20_000 + (1_000 * Prng.int rng 80)));
        ("children", Value.set children);
        ("dept", Value.String dept_name);
      ]
  in
  let depts_with_emps =
    List.init spec.ndepts (fun i ->
        let dname = Printf.sprintf "dept%d" i in
        let emps = List.init spec.nemps_per_dept (fun j -> emp dname i j) in
        ( Value.tuple
            [
              ("name", Value.String dname);
              ("address", address ());
              ("emps", Value.set emps);
            ],
          emps ))
  in
  let dept_rows = List.map fst depts_with_emps in
  let emp_rows = List.concat_map snd depts_with_emps in
  Catalog.of_tables
    [
      Table.create ~key:[ "name" ] ~name:"DEPT" ~elt:dept_elt dept_rows;
      Table.create ~key:[ "name" ] ~name:"EMP" ~elt:emp_elt emp_rows;
    ]

type shop_spec = {
  ncustomers : int;
  norders : int;
  nskus : int;
  max_items : int;
  shop_seed : int;
}

let default_shop =
  { ncustomers = 100; norders = 300; nskus = 25; max_items = 4; shop_seed = 13 }

let customer_elt =
  Ctype.ttuple
    [
      ("id", Ctype.TInt);
      ("name", Ctype.TString);
      ("city", Ctype.TString);
      ("vip", Ctype.TBool);
    ]

let item_elt =
  Ctype.ttuple
    [ ("sku", Ctype.TString); ("qty", Ctype.TInt); ("price", Ctype.TInt) ]

let order_elt =
  Ctype.ttuple
    [
      ("id", Ctype.TInt);
      ("cust", Ctype.TInt);
      ("status", Ctype.TString);
      ("items", Ctype.TSet item_elt);
    ]

let shop spec =
  let rng = Prng.create spec.shop_seed in
  let customers =
    List.init spec.ncustomers (fun i ->
        Value.tuple
          [
            ("id", Value.Int i);
            ("name", Value.String (Printf.sprintf "cust%d" i));
            ("city", Value.String (Printf.sprintf "city%d" (Prng.int rng 8)));
            ("vip", Value.Bool (Prng.bool rng 0.15));
          ])
  in
  (* ~20% of customers never appear as an order's cust *)
  let active = max 1 (spec.ncustomers * 4 / 5) in
  let orders =
    List.init spec.norders (fun i ->
        let nitems = 1 + Prng.int rng spec.max_items in
        let items =
          List.init nitems (fun _ ->
              Value.tuple
                [
                  ("sku", Value.String (Printf.sprintf "sku%d" (Prng.int rng spec.nskus)));
                  ("qty", Value.Int (1 + Prng.int rng 9));
                  ("price", Value.Int (5 + Prng.int rng 95));
                ])
        in
        Value.tuple
          [
            ("id", Value.Int i);
            ("cust", Value.Int (Prng.int rng active));
            ( "status",
              Value.String (Prng.pick rng [ "done"; "done"; "open"; "shipped" ]) );
            ("items", Value.set items);
          ])
  in
  Catalog.of_tables
    [
      Table.create ~key:[ "id" ] ~name:"CUSTOMERS" ~elt:customer_elt customers;
      Table.create ~key:[ "id" ] ~name:"ORDERS" ~elt:order_elt orders;
    ]

(* --- random nested-query corpus ----------------------------------------- *)

(* Shapes mirror the paper's Table 2 families (and the qcheck generator of
   the differential tests): WHERE-clause nesting under every predicate
   family, z-free extra conjuncts, two subqueries per WHERE clause,
   SELECT-clause nesting, UNNEST over a nested result. All queries run
   against the {!xy} catalog. *)
let queries ?(count = 50) ~seed () =
  let rng = Prng.create seed in
  let inner_pred () =
    Prng.pick rng
      [
        "x.b = y.b";
        "y.b = x.b";
        "x.b = y.b AND y.a > 2";
        "y.b < x.b";
        "x.b + 1 = y.b";
        "x.a = y.a AND x.b = y.b";
        "y.b = 3" (* uncorrelated *);
      ]
  in
  let inner_result () =
    Prng.pick rng [ "y.a"; "y.b"; "y.a + y.b"; "y.id MOD 7" ]
  in
  let subquery () =
    let result = inner_result () and pred = inner_pred () in
    if Prng.bool rng 0.25 then
      Printf.sprintf
        "SELECT %s FROM Y y WHERE %s AND y.a IN (SELECT w.a FROM Y w WHERE \
         w.b = y.b)"
        result pred
    else Printf.sprintf "SELECT %s FROM Y y WHERE %s" result pred
  in
  let where_shape () =
    Prng.pick rng
      [
        Printf.sprintf "x.a IN (%s)";
        Printf.sprintf "x.a NOT IN (%s)";
        Printf.sprintf "COUNT(%s) = 0";
        Printf.sprintf "COUNT(%s) <> 0";
        Printf.sprintf "x.a = COUNT(%s)";
        Printf.sprintf "x.s SUBSETEQ (%s)";
        Printf.sprintf "x.s SUPSETEQ (%s)";
        Printf.sprintf "x.s = (%s)";
        Printf.sprintf "x.a < MAX(%s)";
        Printf.sprintf "x.a > MIN(%s)";
        Printf.sprintf "x.a >= MAX(%s)";
        Printf.sprintf "EXISTS v IN (%s) (v = x.a)";
        Printf.sprintf "FORALL v IN (%s) (v > x.a)";
        Printf.sprintf "EXISTS v IN (%s) (v < x.a)";
        Printf.sprintf "EXISTS v IN (%s) (v <> x.a)";
        Printf.sprintf "FORALL v IN (%s) (v <> x.a)";
        Printf.sprintf "FORALL v IN (%s) (v >= x.a)";
        Printf.sprintf "x.s SUBSET (%s)";
        Printf.sprintf "(%s) SUBSETEQ x.s";
        Printf.sprintf "x.s SUPSET (%s)";
        Printf.sprintf "(%s) = {}";
        Printf.sprintf "(%s) <> {}";
        Printf.sprintf "x.s INTERSECT (%s) = {}";
      ]
  in
  let extra_conjunct () =
    Prng.pick rng [ ""; " AND x.a > 2"; " AND x.id MOD 2 = 0"; " AND x.b < 4" ]
  in
  let select_clause () =
    Prng.pick rng [ "x.id"; "x"; "(i = x.id, a = x.a)" ]
  in
  let where_query () =
    let shape = where_shape () and sub = subquery () in
    let extra = extra_conjunct () and select = select_clause () in
    Printf.sprintf "SELECT %s FROM X x WHERE %s%s" select (shape sub) extra
  in
  let double_where_query () =
    let s1 = where_shape () and q1 = subquery () in
    let s2 = where_shape () and q2 = subquery () in
    Printf.sprintf "SELECT x.id FROM X x WHERE %s AND %s" (s1 q1) (s2 q2)
  in
  let select_query () =
    let sub = subquery () and agg = Prng.pick rng [ "COUNT"; "SUM" ] in
    Printf.sprintf "SELECT (i = x.id, v = %s(%s)) FROM X x" agg sub
  in
  let unnest_query () =
    Printf.sprintf "UNNEST(SELECT (%s) FROM X x)" (subquery ())
  in
  let nested_select_query () =
    (* nested-in-nested SELECT: each outer tuple carries a set of tuples
       each holding its own inner set — two stitch levels when shredded *)
    let inner2 =
      Prng.pick rng
        [
          "SELECT w.a FROM Y w WHERE w.b = y.b";
          "SELECT w.id FROM Y w WHERE w.b = y.b AND w.a > 1";
          "SELECT w.a + w.b FROM Y w WHERE w.a = y.a";
        ]
    in
    Printf.sprintf
      "SELECT (i = x.id, ys = (SELECT (a = y.a, ws = (%s)) FROM Y y WHERE \
       %s)) FROM X x"
      inner2 (inner_pred ())
  in
  let quantified_nested_query () =
    (* quantifier ranging over a set of sets built by a nested SELECT *)
    let shape =
      Prng.pick rng
        [
          Printf.sprintf "EXISTS s IN (%s) (x.a IN s)";
          Printf.sprintf "EXISTS s IN (%s) (COUNT(s) = 0)";
          Printf.sprintf "FORALL s IN (%s) (COUNT(s) <= x.a)";
          Printf.sprintf "FORALL s IN (%s) (x.a NOT IN s)";
        ]
    in
    let sets =
      Printf.sprintf
        "SELECT (SELECT w.a FROM Y w WHERE w.b = y.b) FROM Y y WHERE %s"
        (inner_pred ())
    in
    Printf.sprintf "SELECT %s FROM X x WHERE %s" (select_clause ())
      (shape sets)
  in
  let empty_inner_query () =
    (* inner collections empty for many (or all) outer rows — the exact
       rows the COUNT bug loses and the shredding stitch must preserve *)
    Prng.pick rng
      [
        "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b AND \
         y.a < 0)) FROM X x";
        "SELECT (i = x.id, n = COUNT(SELECT y.id FROM Y y WHERE y.b = \
         x.b)) FROM X x";
        "SELECT x.id FROM X x WHERE COUNT(SELECT y.a FROM Y y WHERE y.b = \
         x.b AND y.b < 0) = 0";
        "SELECT (i = x.id, zs = (SELECT (SELECT w.id FROM Y w WHERE w.b = \
         y.b AND w.a < 0) FROM Y y WHERE y.b = x.b)) FROM X x";
      ]
  in
  List.init count (fun _ ->
      match Prng.int rng 13 with
      | 0 | 1 | 2 | 3 | 4 -> where_query ()
      | 5 | 6 -> double_where_query ()
      | 7 | 8 -> select_query ()
      | 9 -> nested_select_query ()
      | 10 -> quantified_nested_query ()
      | 11 -> empty_inner_query ()
      | _ -> unnest_query ())
