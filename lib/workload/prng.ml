type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64 (Steele, Lea, Flood 2014). *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the 62-bit draw: plain [v mod n] over-weights
     the first [2^62 mod n] residues. Draws land in the rejected tail with
     probability < n / 2^62, so streams for small [n] are, in practice,
     the same as before the fix. *)
  let rem = ((max_int mod n) + 1) mod n in
  let limit = max_int - rem in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
    if v <= limit then v mod n else draw ()
  in
  draw ()

let bool t p = float_of_int (int t 1_000_000) /. 1_000_000.0 < p

let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ :: _ -> List.nth xs (int t (List.length xs))

let sample t k xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let k = min k n in
  (* partial Fisher–Yates *)
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 k)

let split t = { state = next t }
