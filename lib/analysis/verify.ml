module Ast = Lang.Ast
module Sset = Ast.String_set
module Plan = Algebra.Plan
module Typing = Algebra.Typing
module Ctype = Cobj.Ctype
module P = Engine.Physical

type violation = {
  phase : string;
  rule : string;
  detail : string;
  subplan : string;
}

let pp_violation ppf v =
  Fmt.pf ppf
    "@[<v>plan verification failed [phase %s, rule %s]:@,%s@,offending \
     subplan:@,%s@]"
    v.phase v.rule v.detail v.subplan

let to_string v = Fmt.str "%a" pp_violation v

exception Violation of violation

type ctx = { phase : string; catalog : Cobj.Catalog.t }

let viol ctx rule sub fmt =
  Format.kasprintf
    (fun detail ->
      raise (Violation { phase = ctx.phase; rule; detail; subplan = sub () }))
    fmt

(* Schema plumbing mirrors [Algebra.Typing]: additions shadow ambient
   bindings; [added] is what an independently-walked operand contributed on
   top of the shared ambient. *)
let extend ambient additions =
  additions
  @ List.filter (fun (v, _) -> not (List.mem_assoc v additions)) ambient

let added ambient inner =
  List.filter
    (fun (v, t) ->
      match List.assoc_opt v ambient with
      | Some t' -> not (Ctype.equal t t')
      | None -> true)
    inner

let scope_of schema = Sset.of_list (List.map fst schema)

let pp_scope ppf schema =
  Fmt.(list ~sep:(any ", ") string) ppf (List.map fst schema)

(* [what] names the expression's role in the violation message. Inline [Sfw]
   blocks are legal operator arguments (non-hoistable subqueries stay
   inline), so no plan-freeness is enforced — [Lang.Types.infer] types them
   structurally. *)
let infer_under ctx sub schema what e =
  let unbound = Sset.diff (Ast.free_vars e) (scope_of schema) in
  (match Sset.min_elt_opt unbound with
  | Some v ->
    viol ctx "unbound-var" sub
      "%s references %s, which no operand binds (in scope: %a): %s" what v
      pp_scope schema
      (Lang.Pretty.to_string e)
  | None -> ());
  match Lang.Types.infer ctx.catalog schema e with
  | Ok t -> t
  | Error err ->
    viol ctx "ill-typed" sub "%s does not typecheck: %a" what
      Lang.Types.pp_error err

let check_pred ctx sub schema what e =
  match infer_under ctx sub schema what e with
  | Ctype.TBool | Ctype.TAny -> ()
  | t ->
    viol ctx "predicate-not-boolean" sub "%s must be boolean, got %a: %s"
      what Ctype.pp t
      (Lang.Pretty.to_string e)

let bind ctx sub local what v =
  if Sset.mem v local then
    viol ctx "shadowed-binding" sub
      "%s rebinds %s, which its input already binds" what v
  else Sset.add v local

let disjoint ctx sub ll rl =
  match Sset.min_elt_opt (Sset.inter ll rl) with
  | Some v -> viol ctx "duplicate-binding" sub "both join operands bind %s" v
  | None -> ()

let check_label ctx sub what ll label =
  if Sset.mem label ll then
    viol ctx "shadowed-label" sub
      "%s label %s shadows a variable bound by the left operand (labels \
       must be fresh — a shadowed label silently overwrites a live \
       attribute)"
      what label

(* --- logical plans ------------------------------------------------------ *)

(* Returns the schema of output rows plus the set of variables this plan
   itself binds (plan-local: an Apply subquery is a fresh scope, so outer
   names may legitimately reappear inside it). *)
let rec go_logical ctx ambient plan : Typing.schema * Sset.t =
  let sub () = Plan.to_string plan in
  match plan with
  | Plan.Unit -> (ambient, Sset.empty)
  | Plan.Table { name; var } -> begin
    match Cobj.Catalog.find name ctx.catalog with
    | Some table ->
      (extend ambient [ (var, Cobj.Table.elt table) ], Sset.singleton var)
    | None ->
      viol ctx "unknown-table" sub
        "extension %s is not in the catalog (extensions: %s)" name
        (String.concat ", " (Cobj.Catalog.names ctx.catalog))
  end
  | Plan.Select { pred; input } ->
    let s, l = go_logical ctx ambient input in
    check_pred ctx sub s "selection predicate" pred;
    (s, l)
  | Plan.Join { pred; left; right } | Plan.Outerjoin { pred; left; right } ->
    let ls, ll = go_logical ctx ambient left in
    let rs, rl = go_logical ctx ambient right in
    disjoint ctx sub ll rl;
    let merged = extend ls (added ambient rs) in
    check_pred ctx sub merged "join predicate" pred;
    (merged, Sset.union ll rl)
  | Plan.Semijoin { pred; left; right } | Plan.Antijoin { pred; left; right }
    ->
    let ls, ll = go_logical ctx ambient left in
    let rs, rl = go_logical ctx ambient right in
    disjoint ctx sub ll rl;
    let merged = extend ls (added ambient rs) in
    check_pred ctx sub merged "semijoin/antijoin predicate" pred;
    (* output schema is the left schema — right bindings must not escape *)
    (ls, ll)
  | Plan.Nestjoin { pred; func; label; left; right } ->
    let ls, ll = go_logical ctx ambient left in
    let rs, rl = go_logical ctx ambient right in
    disjoint ctx sub ll rl;
    let merged = extend ls (added ambient rs) in
    check_pred ctx sub merged "nest join predicate" pred;
    let tf = infer_under ctx sub merged "nest join function" func in
    check_label ctx sub "nest join" ll label;
    (extend ls [ (label, Ctype.TSet tf) ], Sset.add label ll)
  | Plan.Unnest { expr; var; input } ->
    let s, l = go_logical ctx ambient input in
    let elt =
      match infer_under ctx sub s "unnest operand" expr with
      | Ctype.TSet elt | Ctype.TList elt -> elt
      | Ctype.TAny -> Ctype.TAny
      | t ->
        viol ctx "unnest-not-collection" sub
          "unnest operand must be a set or list, got %a: %s" Ctype.pp t
          (Lang.Pretty.to_string expr)
    in
    let l = bind ctx sub l "unnest" var in
    (extend s [ (var, elt) ], l)
  | Plan.Nest { by; label; func; nulls; input } ->
    let s, _l = go_logical ctx ambient input in
    let grouped what v =
      if not (List.mem_assoc v s) then
        viol ctx "nest-unbound" sub
          "nest %s %s, which the input does not bind (schema %a)" what v
          Typing.pp_schema s
    in
    List.iter (grouped "groups by") by;
    List.iter (grouped "null-tests (ν*)") nulls;
    let tf = infer_under ctx sub s "nest function" func in
    if List.mem label by then
      viol ctx "shadowed-label" sub
        "nest label %s collides with a grouping variable" label;
    let kept = List.filter (fun (v, _) -> List.mem v by) s in
    ( extend ambient (kept @ [ (label, Ctype.TSet tf) ]),
      Sset.add label (Sset.of_list by) )
  | Plan.Extend { var; expr; input } ->
    let s, l = go_logical ctx ambient input in
    let t = infer_under ctx sub s "extend expression" expr in
    let l = bind ctx sub l "extend" var in
    (extend s [ (var, t) ], l)
  | Plan.Project { vars; input } ->
    let s, _l = go_logical ctx ambient input in
    let kept =
      List.map
        (fun v ->
          match List.assoc_opt v s with
          | Some t -> (v, t)
          | None ->
            viol ctx "project-unbound" sub
              "project keeps %s, which the input does not bind (schema %a)"
              v Typing.pp_schema s)
        vars
    in
    (extend ambient kept, Sset.of_list vars)
  | Plan.Apply { var; subquery; input } ->
    let s, l = go_logical ctx ambient input in
    let unbound = Sset.diff (Plan.query_free_vars subquery) (scope_of s) in
    (match Sset.min_elt_opt unbound with
    | Some v ->
      viol ctx "apply-free-vars" sub
        "apply subquery references %s, which the outer plan does not bind \
         (in scope: %a)"
        v pp_scope s
    | None -> ());
    (* the subquery is its own scope: the current schema is its ambient *)
    let ss, _sl = go_logical ctx s subquery.Plan.plan in
    let tr =
      infer_under ctx sub ss "apply subquery result" subquery.Plan.result
    in
    let l = bind ctx sub l "apply" var in
    (extend s [ (var, Ctype.TSet tr) ], l)
  | Plan.Union { left; right } ->
    let ls, ll = go_logical ctx ambient left in
    let rs, rl = go_logical ctx ambient right in
    if not (Sset.equal ll rl) then begin
      let d = Sset.union (Sset.diff ll rl) (Sset.diff rl ll) in
      viol ctx "union-mismatch" sub
        "union operands bind different variables (%s only on one side)"
        (String.concat ", " (Sset.elements d))
    end;
    let joined =
      List.map
        (fun (v, lt) ->
          match List.assoc_opt v rs with
          | None -> viol ctx "union-mismatch" sub "%s bound only on the left" v
          | Some rt -> (
            match Ctype.join lt rt with
            | Some t -> (v, t)
            | None ->
              viol ctx "union-mismatch" sub
                "union binds %s at incompatible types %a and %a" v Ctype.pp
                lt Ctype.pp rt))
        ls
    in
    (joined, ll)

let check_plan ~phase ?(ambient = []) catalog plan =
  let ctx = { phase; catalog } in
  match go_logical ctx ambient plan with
  | schema, _locals -> begin
    (* backstop: the independent schema inference must agree *)
    match Typing.schema_of catalog ambient plan with
    | Ok _ -> Ok schema
    | Error msg ->
      Error { phase; rule = "schema"; detail = msg; subplan = Plan.to_string plan }
  end
  | exception Violation v -> Error v

let check_query ~phase ?(ambient = []) catalog (q : Plan.query) =
  let ctx = { phase; catalog } in
  match
    let s, _ = go_logical ctx ambient q.Plan.plan in
    ignore
      (infer_under ctx
         (fun () -> Plan.to_string q.Plan.plan)
         s "result expression" q.Plan.result)
  with
  | () -> begin
    match Typing.query_type catalog ambient q with
    | Ok _ -> Ok ()
    | Error msg ->
      Error
        {
          phase;
          rule = "schema";
          detail = msg;
          subplan = Plan.to_string q.Plan.plan;
        }
  end
  | exception Violation v -> Error v

(* --- physical plans ----------------------------------------------------- *)

(* §6: building the hash nest join on the left (streaming the right) is only
   sound when the right key is unique per right row — we require it to be a
   declared key of the scanned right operand, exactly as the planner does. *)
let right_key_declared catalog right rkey =
  match right with
  | P.Scan { table; var } -> begin
    match Cobj.Catalog.find table catalog with
    | Some t -> begin
      match (Cobj.Table.key t, rkey) with
      | Some [ field ], Ast.Field (Ast.Var v, f) ->
        String.equal v var && String.equal f field
      | _, _ -> false
    end
    | None -> false
  end
  | _ -> false

let rec go_physical ctx ambient plan : Typing.schema * Sset.t =
  let sub () = P.to_string plan in
  let check_keys rule ls rs lkey rkey =
    let lt = infer_under ctx sub ls "left key" lkey in
    let rt = infer_under ctx sub rs "right key" rkey in
    match Ctype.join lt rt with
    | Some _ -> ()
    | None ->
      viol ctx rule sub
        "join keys have incomparable types: %s : %a vs %s : %a"
        (Lang.Pretty.to_string lkey)
        Ctype.pp lt
        (Lang.Pretty.to_string rkey)
        Ctype.pp rt
  in
  let check_residual merged = function
    | None -> ()
    | Some r -> check_pred ctx sub merged "residual predicate" r
  in
  (* Bloom sideways information passing: the filter over the build side is
     sized from the build cardinality estimate; per-partition filters are
     OR-merged, which requires [Bloom.create] to be geometry-deterministic
     for that size and the size itself to be well defined. *)
  let check_bloom build =
    let est = Core.Cost.card_physical ctx.catalog build in
    if not (Float.is_finite est) || est < 0. then
      viol ctx "bloom-geometry" sub
        "build-side cardinality estimate is %f — the Bloom filter geometry \
         (word count) would be undefined"
        est;
    let n = int_of_float (Float.min est 1_000_000.) in
    let a = Engine.Bloom.create n and b = Engine.Bloom.create n in
    if not (Engine.Bloom.same_geometry a b) then
      viol ctx "bloom-geometry" sub
        "Bloom.create %d is not geometry-deterministic (%d vs %d words) — \
         per-partition filters could not be OR-merged"
        n
        (Engine.Bloom.geometry a)
        (Engine.Bloom.geometry b)
  in
  let binary left right =
    let ls, ll = go_physical ctx ambient left in
    let rs, rl = go_physical ctx ambient right in
    disjoint ctx sub ll rl;
    (ls, ll, rs, rl, extend ls (added ambient rs))
  in
  match plan with
  | P.Unit_row -> (ambient, Sset.empty)
  | P.Scan { table; var } -> begin
    match Cobj.Catalog.find table ctx.catalog with
    | Some t ->
      (extend ambient [ (var, Cobj.Table.elt t) ], Sset.singleton var)
    | None ->
      viol ctx "unknown-table" sub
        "extension %s is not in the catalog (extensions: %s)" table
        (String.concat ", " (Cobj.Catalog.names ctx.catalog))
  end
  | P.Filter { pred; input } ->
    let s, l = go_physical ctx ambient input in
    check_pred ctx sub s "filter predicate" pred;
    (s, l)
  | P.Nl_join { pred; left; right } ->
    let _ls, ll, _rs, rl, merged = binary left right in
    check_pred ctx sub merged "join predicate" pred;
    (merged, Sset.union ll rl)
  | P.Hash_join { lkey; rkey; residual; left; right } ->
    let ls, ll, rs, rl, merged = binary left right in
    check_keys "hash-key-type" ls rs lkey rkey;
    check_residual merged residual;
    check_bloom right;
    (merged, Sset.union ll rl)
  | P.Merge_join { lkey; rkey; residual; left; right } ->
    let ls, ll, rs, rl, merged = binary left right in
    check_keys "merge-key-type" ls rs lkey rkey;
    check_residual merged residual;
    (merged, Sset.union ll rl)
  | P.Nl_semijoin { pred; anti = _; left; right } ->
    let ls, ll, _rs, _rl, merged = binary left right in
    check_pred ctx sub merged "semijoin predicate" pred;
    (ls, ll)
  | P.Hash_semijoin { lkey; rkey; residual; anti = _; left; right } ->
    let ls, ll, rs, _rl, merged = binary left right in
    check_keys "hash-key-type" ls rs lkey rkey;
    check_residual merged residual;
    check_bloom right;
    (ls, ll)
  | P.Merge_semijoin { lkey; rkey; residual; anti = _; left; right } ->
    let ls, ll, rs, _rl, merged = binary left right in
    check_keys "merge-key-type" ls rs lkey rkey;
    check_residual merged residual;
    (ls, ll)
  | P.Nl_outerjoin { pred; left; right } ->
    let _ls, ll, _rs, rl, merged = binary left right in
    check_pred ctx sub merged "outerjoin predicate" pred;
    (merged, Sset.union ll rl)
  | P.Hash_outerjoin { lkey; rkey; residual; left; right } ->
    let ls, ll, rs, rl, merged = binary left right in
    check_keys "hash-key-type" ls rs lkey rkey;
    check_residual merged residual;
    check_bloom right;
    (merged, Sset.union ll rl)
  | P.Merge_outerjoin { lkey; rkey; residual; left; right } ->
    let ls, ll, rs, rl, merged = binary left right in
    check_keys "merge-key-type" ls rs lkey rkey;
    check_residual merged residual;
    (merged, Sset.union ll rl)
  | P.Nl_nestjoin { pred; func; label; left; right } ->
    let ls, ll, _rs, _rl, merged = binary left right in
    check_pred ctx sub merged "nest join predicate" pred;
    let tf = infer_under ctx sub merged "nest join function" func in
    check_label ctx sub "nest join" ll label;
    (extend ls [ (label, Ctype.TSet tf) ], Sset.add label ll)
  | P.Hash_nestjoin { lkey; rkey; residual; func; label; left; right } ->
    let ls, ll, rs, _rl, merged = binary left right in
    check_keys "hash-key-type" ls rs lkey rkey;
    check_residual merged residual;
    let tf = infer_under ctx sub merged "nest join function" func in
    check_label ctx sub "nest join" ll label;
    check_bloom right;
    (extend ls [ (label, Ctype.TSet tf) ], Sset.add label ll)
  | P.Hash_nestjoin_left { lkey; rkey; residual; func; label; left; right }
    ->
    let ls, ll, rs, _rl, merged = binary left right in
    check_keys "hash-key-type" ls rs lkey rkey;
    check_residual merged residual;
    let tf = infer_under ctx sub merged "nest join function" func in
    check_label ctx sub "nest join" ll label;
    if not (right_key_declared ctx.catalog right rkey) then
      viol ctx "nestjoin-build-side" sub
        "hash nest join may only build on the left when the right key %s is \
         a declared key of the scanned right operand (§6: otherwise \
         streamed right rows cannot regroup by left row)"
        (Lang.Pretty.to_string rkey);
    check_bloom left;
    (extend ls [ (label, Ctype.TSet tf) ], Sset.add label ll)
  | P.Merge_nestjoin { lkey; rkey; residual; func; label; left; right } ->
    let ls, ll, rs, _rl, merged = binary left right in
    check_keys "merge-key-type" ls rs lkey rkey;
    check_residual merged residual;
    let tf = infer_under ctx sub merged "nest join function" func in
    check_label ctx sub "nest join" ll label;
    (extend ls [ (label, Ctype.TSet tf) ], Sset.add label ll)
  | P.Unnest_op { expr; var; input } ->
    let s, l = go_physical ctx ambient input in
    let elt =
      match infer_under ctx sub s "unnest operand" expr with
      | Ctype.TSet elt | Ctype.TList elt -> elt
      | Ctype.TAny -> Ctype.TAny
      | t ->
        viol ctx "unnest-not-collection" sub
          "unnest operand must be a set or list, got %a: %s" Ctype.pp t
          (Lang.Pretty.to_string expr)
    in
    let l = bind ctx sub l "unnest" var in
    (extend s [ (var, elt) ], l)
  | P.Nest_op { by; label; func; nulls; input } ->
    let s, _l = go_physical ctx ambient input in
    let grouped what v =
      if not (List.mem_assoc v s) then
        viol ctx "nest-unbound" sub
          "nest %s %s, which the input does not bind (schema %a)" what v
          Typing.pp_schema s
    in
    List.iter (grouped "groups by") by;
    List.iter (grouped "null-tests (ν*)") nulls;
    let tf = infer_under ctx sub s "nest function" func in
    if List.mem label by then
      viol ctx "shadowed-label" sub
        "nest label %s collides with a grouping variable" label;
    let kept = List.filter (fun (v, _) -> List.mem v by) s in
    ( extend ambient (kept @ [ (label, Ctype.TSet tf) ]),
      Sset.add label (Sset.of_list by) )
  | P.Extend_op { var; expr; input } ->
    let s, l = go_physical ctx ambient input in
    let t = infer_under ctx sub s "extend expression" expr in
    let l = bind ctx sub l "extend" var in
    (extend s [ (var, t) ], l)
  | P.Project_op { vars; input } ->
    let s, _l = go_physical ctx ambient input in
    let kept =
      List.map
        (fun v ->
          match List.assoc_opt v s with
          | Some t -> (v, t)
          | None ->
            viol ctx "project-unbound" sub
              "project keeps %s, which the input does not bind (schema %a)"
              v Typing.pp_schema s)
        vars
    in
    (extend ambient kept, Sset.of_list vars)
  | P.Apply_op { var; subquery; memo = _; input } ->
    let s, l = go_physical ctx ambient input in
    let unbound =
      Sset.diff (Engine.Exec.query_free_vars subquery) (scope_of s)
    in
    (match Sset.min_elt_opt unbound with
    | Some v ->
      viol ctx "apply-free-vars" sub
        "apply subquery references %s, which the outer plan does not bind \
         (in scope: %a)"
        v pp_scope s
    | None -> ());
    let ss, _sl = go_physical ctx s subquery.P.plan in
    let tr = infer_under ctx sub ss "apply subquery result" subquery.P.result in
    let l = bind ctx sub l "apply" var in
    (extend s [ (var, Ctype.TSet tr) ], l)
  | P.Index_join { lkey; table; var; field; residual; left } ->
    let ls, ll, elt, ft = index_probe ctx sub ambient lkey table var field left in
    let merged = extend ls (added ambient [ (var, elt) ]) in
    ignore ft;
    check_residual merged residual;
    (merged, bind ctx sub ll "index join" var)
  | P.Index_semijoin { lkey; table; var; field; residual; anti = _; left } ->
    let ls, ll, elt, _ft =
      index_probe ctx sub ambient lkey table var field left
    in
    let merged = extend ls (added ambient [ (var, elt) ]) in
    check_residual merged residual;
    (* semijoin: the probed variable does not escape *)
    (ls, ll)
  | P.Index_nestjoin { lkey; table; var; field; residual; func; label; left }
    ->
    let ls, ll, elt, _ft =
      index_probe ctx sub ambient lkey table var field left
    in
    let merged = extend ls (added ambient [ (var, elt) ]) in
    check_residual merged residual;
    let tf = infer_under ctx sub merged "nest join function" func in
    check_label ctx sub "index nest join" ll label;
    (extend ls [ (label, Ctype.TSet tf) ], Sset.add label ll)
  | P.Union_op { left; right } ->
    let ls, ll = go_physical ctx ambient left in
    let rs, rl = go_physical ctx ambient right in
    if not (Sset.equal ll rl) then begin
      let d = Sset.union (Sset.diff ll rl) (Sset.diff rl ll) in
      viol ctx "union-mismatch" sub
        "union operands bind different variables (%s only on one side)"
        (String.concat ", " (Sset.elements d))
    end;
    let joined =
      List.map
        (fun (v, lt) ->
          match List.assoc_opt v rs with
          | None -> viol ctx "union-mismatch" sub "%s bound only on the left" v
          | Some rt -> (
            match Ctype.join lt rt with
            | Some t -> (v, t)
            | None ->
              viol ctx "union-mismatch" sub
                "union binds %s at incompatible types %a and %a" v Ctype.pp
                lt Ctype.pp rt))
        ls
    in
    (joined, ll)

(* Shared checks of the index-join family: the table exists, the indexed
   field exists, and the probe key is comparable with it. *)
and index_probe ctx sub ambient lkey table var field left =
  let ls, ll = go_physical ctx ambient left in
  let elt =
    match Cobj.Catalog.find table ctx.catalog with
    | Some t -> Cobj.Table.elt t
    | None ->
      viol ctx "unknown-table" sub
        "index join probes extension %s, which is not in the catalog \
         (extensions: %s)"
        table
        (String.concat ", " (Cobj.Catalog.names ctx.catalog))
  in
  let ft =
    match Ctype.field field elt with
    | Some t -> t
    | None ->
      viol ctx "index-field" sub
        "index join probes field %s, which rows of %s (%a) do not have"
        field table Ctype.pp elt
  in
  let lt = infer_under ctx sub ls "probe key" lkey in
  (match Ctype.join lt ft with
  | Some _ -> ()
  | None ->
    viol ctx "hash-key-type" sub
      "probe key %s : %a is incomparable with indexed field %s.%s : %a"
      (Lang.Pretty.to_string lkey)
      Ctype.pp lt table field Ctype.pp ft);
  ignore var;
  (ls, ll, elt, ft)

let check_physical ~phase ?(ambient = []) catalog plan =
  let ctx = { phase; catalog } in
  match go_physical ctx ambient plan with
  | schema, _locals -> Ok schema
  | exception Violation v -> Error v

let check_physical_query ~phase ?(ambient = []) catalog (pq : P.query) =
  let ctx = { phase; catalog } in
  match
    let s, _ = go_physical ctx ambient pq.P.plan in
    ignore
      (infer_under ctx
         (fun () -> P.to_string pq.P.plan)
         s "result expression" pq.P.result)
  with
  | () -> Ok ()
  | exception Violation v -> Error v

(* --- the flat fragment (query shredding) --------------------------------- *)

(* Rule [shred-flat]: the flat queries a shredded program executes must not
   contain any nesting operator — no nest join, no ν, no Apply. Nesting is
   reintroduced only by the stitch phase, outside the algebra. Checked for
   every plan verified under a phase named ["shred"] or ["shred-plan"]. *)
let shred_phase phase =
  String.length phase >= 5 && String.sub phase 0 5 = "shred"

let check_flat_logical ctx (q : Plan.query) =
  Plan.fold
    (fun () node ->
      match node with
      | Plan.Nestjoin { label; _ } ->
        viol ctx "shred-flat"
          (fun () -> Plan.to_string node)
          "nest join (label %s) inside a shredded flat query" label
      | Plan.Nest { label; _ } ->
        viol ctx "shred-flat"
          (fun () -> Plan.to_string node)
          "nest operator (label %s) inside a shredded flat query" label
      | Plan.Apply { var; _ } ->
        viol ctx "shred-flat"
          (fun () -> Plan.to_string node)
          "apply (variable %s) inside a shredded flat query" var
      | _ -> ())
    () q.Plan.plan

let check_flat_physical ctx (pq : P.query) =
  let rec go plan =
    (match plan with
    | P.Nl_nestjoin { label; _ }
    | P.Hash_nestjoin { label; _ }
    | P.Hash_nestjoin_left { label; _ }
    | P.Merge_nestjoin { label; _ }
    | P.Index_nestjoin { label; _ } ->
      viol ctx "shred-flat"
        (fun () -> P.to_string plan)
        "nest join (label %s) inside a shredded flat plan" label
    | P.Nest_op { label; _ } ->
      viol ctx "shred-flat"
        (fun () -> P.to_string plan)
        "nest operator (label %s) inside a shredded flat plan" label
    | P.Apply_op { var; _ } ->
      viol ctx "shred-flat"
        (fun () -> P.to_string plan)
        "apply (variable %s) inside a shredded flat plan" var
    | _ -> ());
    List.iter go (Engine.Analyze.children plan)
  in
  go pq.P.plan

(* --- the vector fragment ------------------------------------------------- *)

(* Rule [vector-fragment]: the executor's {!Engine.Exec.vectorizable}
   classification must match this independent duplicate of the columnar
   engine's coverage — exactly the scan, filter, extend, project and
   hash-join family operators; everything else falls back to the row
   engine. A divergence means the fragment grew (or shrank) on one side
   only: an operator claiming batch execution the engine cannot give it,
   or silently losing vectorization without the differential oracle and
   the fallback contract (docs/VECTORIZATION.md) being updated. *)
let in_vector_fragment = function
  | P.Scan _ | P.Filter _ | P.Extend_op _ | P.Project_op _ | P.Hash_join _
  | P.Hash_semijoin _ | P.Hash_outerjoin _ | P.Hash_nestjoin _ ->
    true
  | P.Unit_row | P.Nl_join _ | P.Merge_join _ | P.Nl_semijoin _
  | P.Merge_semijoin _ | P.Nl_outerjoin _ | P.Merge_outerjoin _
  | P.Nl_nestjoin _ | P.Hash_nestjoin_left _ | P.Merge_nestjoin _
  | P.Unnest_op _ | P.Nest_op _ | P.Apply_op _ | P.Index_join _
  | P.Index_semijoin _ | P.Index_nestjoin _ | P.Union_op _ ->
    false

let check_vector_fragment ctx (pq : P.query) =
  let rec go plan =
    let claimed = Engine.Exec.vectorizable plan in
    let expected = in_vector_fragment plan in
    if claimed <> expected then
      viol ctx "vector-fragment"
        (fun () -> P.to_string plan)
        "executor %s this operator as vectorizable, but the fragment \
         whitelist %s it — row-engine fallback operators must be exactly \
         the non-vectorizable ones"
        (if claimed then "classifies" else "does not classify")
        (if expected then "includes" else "excludes");
    List.iter go (Engine.Analyze.children plan)
  in
  go pq.P.plan

let verifier : Core.Pipeline.verifier =
 fun ~phase catalog plan ->
  let checked =
    match plan with
    | Core.Pipeline.Logical q -> (
      match
        if shred_phase phase then
          check_flat_logical { phase; catalog } q
      with
      | () -> check_query ~phase catalog q
      | exception Violation v -> Error v)
    | Core.Pipeline.Physical pq -> (
      match
        if shred_phase phase then
          check_flat_physical { phase; catalog } pq;
        check_vector_fragment { phase; catalog } pq
      with
      | () -> check_physical_query ~phase catalog pq
      | exception Violation v -> Error v)
  in
  Result.map_error to_string checked

let install () = Core.Pipeline.set_verifier (Some verifier)
