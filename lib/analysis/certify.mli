(** Per-step rewrite certification — translation validation for the
    optimizer.

    Where {!Verify} checks structural invariants of each phase's {e output},
    the certifier checks the phase's {e work}: while an optimizer phase runs
    under [Pipeline.compile ~certify:true], every applied rewrite is
    recorded as a [(rule, before, after)] step ({!Core.Steps}), and each
    rule's proof obligation is discharged against the recorded pair:

    - {b select-fuse} / {b select-merge-into-join} /
      {b select-pushdown-join} / {b select-pushdown-left} — conjunct-set
      preservation (nothing dropped, nothing invented) plus the one-sidedness
      conditions that make the pushdown legal;
    - {b select-true-elim} — the eliminated predicate provably simplifies to
      [true] (re-running {!Core.Simplify.expr});
    - {b dead-nestjoin-elim} / {b unit-elim} — the result is exactly the
      surviving operand and only the advertised binding disappears;
    - {b sink-below-join} (§6 join reorder) — the sunk operator is the
      original one re-rooted over one join operand, its expressions read
      only that operand, and a nest-join label stays fresh;
    - {b apply-to-semijoin} / {b apply-to-antijoin} — the COUNT-bug safety
      proof, upgraded from the lint heuristic to a property-backed
      obligation: {!Core.Classify.classify} must yield the ∃ / ¬∃ verdict
      that justifies the flattening (rule {b count-bug-safety} on failure);
    - {b apply-to-nestjoin} / {b unnest-apply-to-join} — binding
      discipline of the grouping and collapsing forms.

    On top of the steps, whole-phase obligations compare the phase's input
    and output queries: result-type preservation ({b phase-type}), no new
    free variables ({b phase-free-vars}), and intersection of the
    {!Props}-inferred cardinality bounds ({b phase-bounds}).

    Physical plans are certified against inferred properties: the §6
    build-side restriction for [Hash_nestjoin_left] is discharged by
    {!Props.key_of} — a {e proven} key of the whole right operand, strictly
    generalizing the verifier's declared-scan-key check
    ({b nestjoin-build-side}).

    Violations carry the phase, the rule, the step index within the phase
    (when a specific step is at fault) and the offending subplan. *)

type violation = {
  phase : string;  (** pipeline phase whose rewrites were certified *)
  rule : string;   (** rewrite rule or obligation name *)
  step : int option;
      (** 0-based index into the phase's recorded steps; [None] for
          whole-phase and physical obligations *)
  detail : string;
  subplan : string;
}

val pp_violation : violation Fmt.t
val to_string : violation -> string

val check_steps :
  phase:string ->
  Cobj.Catalog.t ->
  Core.Steps.step list ->
  (unit, violation) result
(** Discharge each step's per-rule obligation, in order; the first failure
    reports its step index. *)

val check_logical :
  phase:string ->
  Cobj.Catalog.t ->
  before:Algebra.Plan.query ->
  after:Algebra.Plan.query ->
  Core.Steps.step list ->
  (unit, violation) result
(** {!check_steps} plus the whole-phase obligations. *)

val check_physical_query :
  phase:string ->
  Cobj.Catalog.t ->
  Engine.Physical.query ->
  (unit, violation) result

val certifier : Core.Pipeline.certifier
(** The hook implementation: dispatches on {!Core.Pipeline.cert_target} and
    renders violations with {!to_string}. *)

val install : unit -> unit
(** Register {!certifier} with {!Core.Pipeline.set_certifier}, the
    {!Props.annotate}-based EXPLAIN ANALYZE annotator with
    {!Core.Pipeline.set_annotator} (which arms the actual-vs-proven
    cardinality cross-check), and {!Props.key_of} as the cost model's
    proven-key oracle ({!Core.Cost.set_key_hint}). *)
