module Ast = Lang.Ast
module Value = Cobj.Value
module Plan = Algebra.Plan
module P = Engine.Physical
module Sset = Ast.String_set
module Steps = Core.Steps

type violation = {
  phase : string;
  rule : string;
  step : int option;
  detail : string;
  subplan : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "certification failed [phase %s, rule %s%a]: %s@,%s" v.phase
    v.rule
    (fun ppf -> function
      | None -> ()
      | Some i -> Fmt.pf ppf ", step %d" i)
    v.step v.detail v.subplan

let to_string v = Fmt.str "@[<v>%a@]" pp_violation v

exception Violation of violation

type ctx = { phase : string; catalog : Cobj.Catalog.t; step : int option }

let viol ctx rule subplan fmt =
  Format.kasprintf
    (fun detail ->
      raise
        (Violation
           {
             phase = ctx.phase;
             rule;
             step = ctx.step;
             detail;
             subplan = subplan ();
           }))
    fmt

(* --- small plan algebra -------------------------------------------------- *)

let plan_equal (a : Plan.plan) (b : Plan.plan) = a == b || a = b

let rec conjuncts = function
  | Ast.Binop (Ast.And, a, b) -> conjuncts a @ conjuncts b
  | Ast.Const (Value.Bool true) -> []
  | e -> [ e ]

(* Conjunct-set equality, order-insensitive (pushdown reorders but never
   invents or drops conjuncts). *)
let union_is pieces whole =
  let sort = List.sort Stdlib.compare in
  sort (List.concat_map conjuncts pieces) = sort (conjuncts whole)

let vset p = Sset.of_list (Plan.vars_of p)

let one_sided pred operand =
  Sset.subset (Ast.free_vars pred) (vset operand)

(* Peel an optional selection: [Select {pred; input}] → [(pred, input)],
   anything else → [(true, plan)]. The rewriter's [select] smart
   constructor emits either form depending on the conjunct split. *)
let peel_select = function
  | Plan.Select { pred; input } -> (pred, input)
  | p -> (Ast.Const (Value.Bool true), p)

(* The left operand of a dangling-preserving binary operator, and the
   operator rebuilt over a replacement left operand (for field-wise
   comparison in the pushdown obligations). *)
let left_of = function
  | Plan.Semijoin { left; _ }
  | Plan.Antijoin { left; _ }
  | Plan.Outerjoin { left; _ }
  | Plan.Nestjoin { left; _ } ->
    Some left
  | _ -> None

let with_left plan left =
  match plan with
  | Plan.Semijoin r -> Some (Plan.Semijoin { r with left })
  | Plan.Antijoin r -> Some (Plan.Antijoin { r with left })
  | Plan.Outerjoin r -> Some (Plan.Outerjoin { r with left })
  | Plan.Nestjoin r -> Some (Plan.Nestjoin { r with left })
  | _ -> None

(* --- per-rule obligations ------------------------------------------------ *)

(* Each recorded step carries the (before, after) pair of the rewrite rule
   it claims to have applied; the obligation re-derives the rule's side
   conditions from the pair. For the structural rules the pair is an exact
   local equivalence; for the decorrelation rules the [after] embeds
   recursively-rewritten operands, so the obligation checks the
   classification side conditions (the COUNT-bug proof) and the binding
   discipline instead of structural identity — the phase obligations and
   the phase verifier cover the rest. *)
let check_step ctx (s : Steps.step) =
  let err fmt = viol ctx s.Steps.rule (fun () -> Plan.to_string s.Steps.after) fmt in
  let meta_label () =
    match List.assoc_opt "label" s.Steps.meta with
    | Some l -> l
    | None -> err "step is missing its label metadata"
  in
  match s.Steps.rule with
  | "select-fuse" -> begin
    (* σ_p(σ_q(E)) = σ_{q ∧ p}(E) *)
    match s.Steps.before, s.Steps.after with
    | ( Plan.Select { pred = p; input = Plan.Select { pred = q; input } },
        Plan.Select { pred = fused; input = input' } ) ->
      if not (plan_equal input input') then
        err "fused selection changed the underlying operand";
      if not (union_is [ q; p ] fused) then
        err "fused predicate is not the conjunction of the two selections"
    | _ -> err "step shape is not a selection over a selection"
  end
  | "select-true-elim" -> begin
    (* σ_true(E) = E; the predicate must provably simplify to true *)
    match s.Steps.before with
    | Plan.Select { pred; input } ->
      if not (plan_equal s.Steps.after input) then
        err "eliminated selection changed the underlying operand";
      let provably_true =
        conjuncts pred = []
        ||
        match Core.Simplify.expr ctx.catalog pred with
        | Ast.Const (Value.Bool true) -> true
        | _ -> false
      in
      if not provably_true then
        err "eliminated predicate %s does not simplify to true"
          (Lang.Pretty.to_string pred)
    | _ -> err "step shape is not a selection"
  end
  | "select-merge-into-join" -> begin
    (* σ_p(A ⋈_j B) = A ⋈_{j ∧ p} B *)
    match s.Steps.before, s.Steps.after with
    | ( Plan.Select { pred; input = Plan.Join { pred = jp; left; right } },
        Plan.Join { pred = jp'; left = left'; right = right' } ) ->
      if not (plan_equal left left' && plan_equal right right') then
        err "merge changed a join operand";
      if not (union_is [ jp; pred ] jp') then
        err "merged join predicate lost or invented a conjunct"
    | _ -> err "step shape is not a selection over a join"
  end
  | "select-pushdown-join" -> begin
    (* σ_p(A ⋈_j B) = σ_rest(σ_ls(A) ⋈_j σ_rs(B)), fv(ls) ⊆ A, fv(rs) ⊆ B *)
    match s.Steps.before with
    | Plan.Select { pred; input = Plan.Join { pred = jp; left; right } } -> begin
      let rest, joined = peel_select s.Steps.after in
      match joined with
      | Plan.Join { pred = jp'; left = pl; right = pr } ->
        let ls, left' = peel_select pl in
        let rs, right' = peel_select pr in
        if not (plan_equal left left' && plan_equal right right') then
          err "pushdown changed a join operand";
        if jp' <> jp then err "pushdown altered the join predicate";
        if not (union_is [ rest; ls; rs ] pred) then
          err "pushed conjuncts do not repartition the original predicate";
        if not (one_sided ls left) then
          err "conjunct pushed into the left operand references other \
               variables";
        if not (one_sided rs right) then
          err "conjunct pushed into the right operand references other \
               variables"
      | _ -> err "pushdown result is not a join"
    end
    | _ -> err "step shape is not a selection over a join"
  end
  | "select-pushdown-left" -> begin
    (* σ_p(A ⋉ B) = σ_rest(σ_ls(A) ⋉ B) for the dangling-preserving
       operators (semi/anti/outer/nest join): left rows pass through, so a
       left-only conjunct commutes with the operator. *)
    match s.Steps.before with
    | Plan.Select { pred; input = op } -> begin
      match left_of op with
      | None -> err "step shape is not a selection over a join-like operator"
      | Some left ->
        let rest, op' = peel_select s.Steps.after in
        let ls, left' = peel_select (Option.value (left_of op') ~default:op') in
        if not (plan_equal left left') then
          err "pushdown changed the left operand";
        (match with_left op' left with
        | Some rebuilt when plan_equal rebuilt op -> ()
        | _ -> err "pushdown altered the operator above the left operand");
        if not (union_is [ rest; ls ] pred) then
          err "pushed conjuncts do not repartition the original predicate";
        if not (one_sided ls left) then
          err "conjunct pushed below the operator references non-left \
               variables"
    end
    | _ -> err "step shape is not a selection"
  end
  | "dead-nestjoin-elim" -> begin
    (* π-style: X Δ Y = X when the grouped label is dead above. Liveness
       is a context property; here we check the structural half (the
       result is exactly the left operand and only the label binding is
       dropped) — a live label would fail the phase verifier's
       unbound-variable check on the phase output. *)
    let label = meta_label () in
    match s.Steps.before with
    | Plan.Nestjoin { label = l; left; _ } ->
      if l <> label then err "label metadata disagrees with the plan";
      if not (plan_equal s.Steps.after left) then
        err "elimination did not return the left operand";
      if not
           (Sset.equal
              (Sset.add label (vset s.Steps.after))
              (vset s.Steps.before))
      then err "elimination dropped more than the %s binding" label
    | _ -> err "step shape is not a nest join"
  end
  | "unit-elim" -> begin
    (* A ⋈_true 1 = A = 1 ⋈_true A *)
    match s.Steps.before with
    | Plan.Join { pred; left = Plan.Unit; right = other }
    | Plan.Join { pred; left = other; right = Plan.Unit } ->
      if conjuncts pred <> [] then
        err "unit elimination under a non-trivial join predicate";
      if not (plan_equal s.Steps.after other) then
        err "elimination did not return the non-unit operand"
    | _ -> err "step shape is not a join against Unit"
  end
  | "sink-below-join" -> begin
    (* (A ⋈_j B) op Z = (A op Z) ⋈_j B when op's expressions touch only
       A (symmetrically B) — op dangling-preserving, so it commutes with
       the join on the side it actually reads. *)
    match s.Steps.before, s.Steps.after with
    | ( (Plan.Nestjoin { left = Plan.Join { pred = jp; left = a; right = b }; _ }
        | Plan.Semijoin { left = Plan.Join { pred = jp; left = a; right = b }; _ }
        | Plan.Antijoin { left = Plan.Join { pred = jp; left = a; right = b }; _ }),
        Plan.Join { pred = jp'; left = a'; right = b' } ) ->
      if jp' <> jp then err "sink altered the join predicate";
      let check_sunk sunk ~into ~kept_orig ~kept_now =
        (* [sunk] must be the original operator re-rooted over [into] *)
        if not (plan_equal kept_orig kept_now) then
          err "sink changed the operand it did not sink into";
        match with_left s.Steps.before into with
        | Some rebuilt when plan_equal rebuilt sunk -> ()
        | _ -> err "sunk operator differs from the original"
      in
      let op_free op =
        match op with
        | Plan.Nestjoin { pred; func; right; _ } ->
          Sset.diff
            (Sset.union (Ast.free_vars pred) (Ast.free_vars func))
            (vset right)
        | Plan.Semijoin { pred; right; _ } | Plan.Antijoin { pred; right; _ }
          ->
          Sset.diff (Ast.free_vars pred) (vset right)
        | _ -> Sset.empty
      in
      let label_ok op other =
        match op with
        | Plan.Nestjoin { label; _ } ->
          (not (Sset.mem label (vset other)))
          && not (Sset.mem label (Ast.free_vars jp))
        | _ -> true
      in
      (match left_of a', left_of b' with
      | Some al, _ when plan_equal al a ->
        check_sunk a' ~into:a ~kept_orig:b ~kept_now:b';
        if not (Sset.subset (op_free a') (vset a)) then
          err "sunk operator reads variables of the operand it left behind";
        if not (label_ok a' b') then
          err "sunk nest-join label collides with the other operand"
      | _, Some bl when plan_equal bl b ->
        check_sunk b' ~into:b ~kept_orig:a ~kept_now:a';
        if not (Sset.subset (op_free b') (vset b)) then
          err "sunk operator reads variables of the operand it left behind";
        if not (label_ok b' a') then
          err "sunk nest-join label collides with the other operand"
      | _ -> err "neither join operand embeds the sunk operator")
    | _ -> err "step shape is not a join-like operator over a join"
  end
  | "apply-to-semijoin" | "apply-to-antijoin" -> begin
    (* Theorem 1, no-grouping cases. The recorded [before] is the local
       redex σ_zpred(Apply_z(E)); legality is exactly the classifier's
       verdict on zpred, which proves the predicate is (¬)∃-rewritable —
       the property-backed COUNT-bug safety proof (a Needs_grouping
       predicate flattened to a (anti)semijoin would drop dangling rows:
       the COUNT bug). *)
    let z = meta_label () in
    match s.Steps.before with
    | Plan.Select { pred = zpred; input = Plan.Apply { var; _ } } ->
      if var <> z then err "label metadata disagrees with the Apply binder";
      (let verdict = Core.Classify.classify ~z zpred in
       let expected =
         match verdict, s.Steps.rule with
         | Core.Classify.Exists _, "apply-to-semijoin" -> true
         | Core.Classify.Not_exists _, "apply-to-antijoin" -> true
         | _ -> false
       in
       if not expected then
         viol ctx "count-bug-safety"
           (fun () -> Plan.to_string s.Steps.before)
           "predicate %s classifies as %a, which does not justify %s — \
            flattening would exhibit the COUNT bug on dangling rows"
           (Lang.Pretty.to_string zpred)
           Core.Classify.pp_verdict verdict s.Steps.rule);
      (match s.Steps.rule, s.Steps.after with
      | "apply-to-semijoin", Plan.Semijoin _
      | "apply-to-antijoin", Plan.Antijoin _ ->
        ()
      | _ -> err "flattening produced the wrong operator");
      if Sset.mem z (vset s.Steps.after) then
        err "flattening was supposed to drop the %s binding" z
    | _ -> err "step shape is not a selection over Apply"
  end
  | "apply-to-nestjoin" -> begin
    (* Theorem 1, grouping case: Apply_z(E) = E Δ_z Q. The nest join keeps
       [z] bound to the whole grouped set, so it is COUNT-safe by
       construction; the obligation checks the binding discipline. *)
    let z = meta_label () in
    match s.Steps.before, s.Steps.after with
    | Plan.Apply { var; _ }, Plan.Nestjoin { label; _ } ->
      if var <> z then err "label metadata disagrees with the Apply binder";
      if label <> z then
        err "nest join rebinds %s instead of the subquery variable %s" label
          z
    | Plan.Apply _, _ -> err "grouping form is not a nest join"
    | _ -> err "step shape is not an Apply"
  end
  | "unnest-apply-to-join" -> begin
    (* §5 collapsible case: μ_v(z)(Apply_z(E)) = ε_v(E ⋈_corr Q). The
       subquery value is consumed whole-set by the unnest, so no grouping
       is needed and dangling rows are dropped on both sides alike. *)
    let z = meta_label () in
    match s.Steps.before, s.Steps.after with
    | ( Plan.Unnest { expr = Ast.Var zv; var = v;
                      input = Plan.Apply { var; input; _ } },
        Plan.Extend { var = v'; input = Plan.Join { left; _ }; _ } ) ->
      if not (zv = z && var = z) then
        err "label metadata disagrees with the Apply binder";
      if v' <> v then err "collapse rebinds %s instead of %s" v' v;
      if not (plan_equal left input) then
        err "collapse changed the outer operand";
      if Sset.mem z (vset s.Steps.after) then
        err "collapse was supposed to drop the %s binding" z
    | _ -> err "step shape is not an unnest over Apply"
  end
  | rule ->
    viol ctx rule
      (fun () -> Plan.to_string s.Steps.after)
      "unknown rewrite rule — no certification obligation registered"

(* --- whole-phase obligations --------------------------------------------- *)

let query_type ctx q =
  match Algebra.Typing.query_type ctx.catalog [] q with
  | Ok t -> t
  | Error e ->
    viol ctx "phase-type"
      (fun () -> Plan.to_string q.Plan.plan)
      "phase output does not typecheck: %s" e

let check_phase ctx (before : Plan.query) (after : Plan.query) =
  (* result-type preservation *)
  let tb = query_type ctx before and ta = query_type ctx after in
  if not (Cobj.Ctype.equal tb ta) then
    viol ctx "phase-type"
      (fun () -> Plan.to_string after.Plan.plan)
      "phase changed the query type from %a to %a" Cobj.Ctype.pp tb
      Cobj.Ctype.pp ta;
  (* no new correlation requirements *)
  let fvb = Plan.query_free_vars before and fva = Plan.query_free_vars after in
  if not (Sset.subset fva fvb) then
    viol ctx "phase-free-vars"
      (fun () -> Plan.to_string after.Plan.plan)
      "phase introduced free variables {%s}"
      (String.concat ", " (Sset.elements (Sset.diff fva fvb)));
  (* property preservation: both plans enumerate the same rows (modulo
     dropped bindings), so their proven cardinality intervals must
     intersect *)
  let pb = Props.of_plan ctx.catalog before.Plan.plan in
  let pa = Props.of_plan ctx.catalog after.Plan.plan in
  if not (Props.compatible pb pa) then
    viol ctx "phase-bounds"
      (fun () -> Plan.to_string after.Plan.plan)
      "phase moved the proven cardinality bounds from %a to a disjoint %a"
      Props.pp pb Props.pp pa

(* --- physical obligations ------------------------------------------------ *)

(* §6 build-side legality, upgraded: Hash_nestjoin_left builds on the left
   and streams the right, which only groups correctly when each left row
   has at most one match — i.e. the right key covers a {e proven} candidate
   key of the whole right operand (the verifier's declared-scan-key check
   is the special case of a bare keyed scan). *)
let rec check_physical ctx plan =
  (match plan with
  | P.Hash_nestjoin_left { rkey; right; _ } ->
    if not (Props.key_of ctx.catalog right rkey) then
      viol ctx "nestjoin-build-side"
        (fun () -> P.to_string plan)
        "build-on-left nest join streams the right operand, but %s is not \
         a proven key of it"
        (Lang.Pretty.to_string rkey)
  | _ -> ());
  List.iter (check_physical ctx) (Engine.Analyze.children plan)

(* --- entry points -------------------------------------------------------- *)

let check_steps ~phase catalog steps =
  let run i s =
    match check_step { phase; catalog; step = Some i } s with
    | () -> None
    | exception Violation v -> Some v
  in
  let rec go i = function
    | [] -> Ok ()
    | s :: rest -> (
      match run i s with Some v -> Error v | None -> go (i + 1) rest)
  in
  go 0 steps

let check_logical ~phase catalog ~before ~after steps =
  let ( let* ) = Result.bind in
  let* () = check_steps ~phase catalog steps in
  match check_phase { phase; catalog; step = None } before after with
  | () -> Ok ()
  | exception Violation v -> Error v

let check_physical_query ~phase catalog (pq : P.query) =
  match check_physical { phase; catalog; step = None } pq.P.plan with
  | () -> Ok ()
  | exception Violation v -> Error v

let certifier : Core.Pipeline.certifier =
 fun ~phase catalog target ->
  let checked =
    match target with
    | Core.Pipeline.Cert_logical { before; after; steps } ->
      check_logical ~phase catalog ~before ~after steps
    | Core.Pipeline.Cert_physical pq -> check_physical_query ~phase catalog pq
  in
  Result.map_error to_string checked

let annotator : Core.Pipeline.annotator =
 fun catalog pq tree -> Props.annotate catalog pq.P.plan tree

let install () =
  Core.Pipeline.set_certifier (Some certifier);
  Core.Pipeline.set_annotator (Some annotator);
  Core.Cost.set_key_hint (Some Props.key_of)
