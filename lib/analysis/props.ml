module Ast = Lang.Ast
module Plan = Algebra.Plan
module P = Engine.Physical
module Sset = Ast.String_set
module Cstats = Cobj.Stats

type bounds = { lo : float; hi : float }

type t = {
  keys : Sset.t list;
  null_free : Sset.t;
  non_empty : Sset.t;
  distinct : bool;
  bounds : bounds;
}

let inf = Float.infinity

(* Everything unknown: the lattice top. Sound for any operator. *)
let top = {
  keys = [];
  null_free = Sset.empty;
  non_empty = Sset.empty;
  distinct = false;
  bounds = { lo = 0.0; hi = inf };
}

(* --- paths --------------------------------------------------------------- *)

let path v = v
let field_path v f = v ^ "." ^ f
let root p = match String.index_opt p '.' with
  | None -> p
  | Some i -> String.sub p 0 i

(* The paths a key expression denotes, when every component resolves to a
   variable or a field of one. [None] for opaque (computed) keys. *)
let rec paths_of_key_expr e =
  match e with
  | Ast.Var v -> Some [ path v ]
  | Ast.Field (Ast.Var v, f) -> Some [ field_path v f ]
  | Ast.TupleE fields ->
    List.fold_left
      (fun acc (_, e1) ->
        match acc, paths_of_key_expr e1 with
        | Some ps, Some qs -> Some (ps @ qs)
        | _ -> None)
      (Some []) fields
  | _ -> None

(* --- lattice operations -------------------------------------------------- *)

let key_mem k keys = List.exists (Sset.equal k) keys
let add_key k keys = if key_mem k keys then keys else keys @ [ k ]

let join a b = {
  keys = List.filter (fun k -> key_mem k b.keys) a.keys;
  null_free = Sset.inter a.null_free b.null_free;
  non_empty = Sset.inter a.non_empty b.non_empty;
  distinct = a.distinct && b.distinct;
  bounds = { lo = Float.min a.bounds.lo b.bounds.lo;
             hi = Float.max a.bounds.hi b.bounds.hi };
}

let meet a b = {
  keys = List.fold_left (fun acc k -> add_key k acc) a.keys b.keys;
  null_free = Sset.union a.null_free b.null_free;
  non_empty = Sset.union a.non_empty b.non_empty;
  distinct = a.distinct || b.distinct;
  bounds = { lo = Float.max a.bounds.lo b.bounds.lo;
             hi = Float.min a.bounds.hi b.bounds.hi };
}

let compatible a b =
  a.bounds.lo <= b.bounds.hi && b.bounds.lo <= a.bounds.hi

(* Keep only facts about paths rooted in [vars] (Project, Nest). *)
let restrict vars p =
  let keep s = Sset.filter (fun q -> Sset.mem (root q) vars) s in
  {
    p with
    keys = List.filter (fun k -> Sset.for_all (fun q -> Sset.mem (root q) vars) k) p.keys;
    null_free = keep p.null_free;
    non_empty = keep p.non_empty;
  }

(* --- per-operator transfer functions ------------------------------------- *)

let unit_props = {
  keys = [ Sset.empty ];  (* the empty column set: at most one row *)
  null_free = Sset.empty;
  non_empty = Sset.empty;
  distinct = true;
  bounds = { lo = 1.0; hi = 1.0 };
}

(* Catalog facts are exact: tables are immutable and the one-pass statistics
   ([Cobj.Stats.scan]) cover every row — so a scan's row count is an exact
   bound and null_frac = 0 / empty_frac = 0 are proofs, not estimates. *)
let scan_props catalog table var =
  let stats = Cstats.of_catalog catalog in
  let bounds =
    match Cstats.row_count catalog table with
    | Some n -> { lo = float_of_int n; hi = float_of_int n }
    | None -> { lo = 0.0; hi = inf }
  in
  (* rows are deduplicated sets, so the whole row is always a key *)
  let keys = [ Sset.singleton (path var) ] in
  let keys =
    match Option.bind (Cobj.Catalog.find table catalog) Cobj.Table.key with
    | Some fields ->
      add_key (Sset.of_list (List.map (field_path var) fields)) keys
    | None -> keys
  in
  let null_free, non_empty =
    match Cstats.table stats table with
    | None -> (Sset.singleton (path var), Sset.empty)
    | Some t ->
      List.fold_left
        (fun (nf, ne) (f, (a : Cstats.attr)) ->
          if String.equal f "" then (nf, ne)
          else
            let nf =
              if a.Cstats.null_frac = 0.0 then
                Sset.add (field_path var f) nf
              else nf
            in
            let ne =
              match a.Cstats.empty_frac with
              | Some 0.0 when a.Cstats.null_frac = 0.0 ->
                Sset.add (field_path var f) ne
              | _ -> ne
            in
            (nf, ne))
        (Sset.singleton (path var), Sset.empty)
        t.Cstats.attrs
  in
  { keys; null_free; non_empty; distinct = true; bounds }

let select_props p = { p with bounds = { p.bounds with lo = 0.0 } }

(* Does some key of [p] resolve through the equi-key expression [e]?  Then
   distinct values of [e] identify rows of the operand: at most one match
   per probe value. *)
let expr_is_key p e =
  match paths_of_key_expr e with
  | None -> false
  | Some paths ->
    let ps = Sset.of_list paths in
    List.exists (fun k -> Sset.subset k ps) p.keys

(* Unique-side detection over a list of equi pairs: the union of one side's
   key expressions covers a candidate key of that operand. *)
let pairs_unique side_of p pairs =
  match
    List.fold_left
      (fun acc pair ->
        match acc, paths_of_key_expr (side_of pair) with
        | Some ps, Some qs -> Some (ps @ qs)
        | _ -> None)
      (Some []) pairs
  with
  | None -> false
  | Some paths ->
    let ps = Sset.of_list paths in
    p.keys <> [] && List.exists (fun k -> Sset.subset k ps) p.keys

let equi_pairs_of_logical left right pred =
  match pred with
  | Ast.Const (Cobj.Value.Bool true) -> None
  | _ ->
    Option.map fst
      (Core.Kim.equi_split ~left_vars:(Plan.vars_of left)
         ~right_vars:(Plan.vars_of right) pred)

(* Inner-join combination: cross keys pairwise; a unique build side
   preserves the probe side's keys and caps the output at the probe side's
   cardinality. *)
let join_props ?(outer = false) ~runique ~lunique pl pr =
  let cross =
    List.concat_map (fun lk -> List.map (Sset.union lk) pr.keys) pl.keys
  in
  let keys = cross in
  let keys = if runique then List.fold_left (fun acc k -> add_key k acc) keys pl.keys else keys in
  let keys = if lunique && not outer then List.fold_left (fun acc k -> add_key k acc) keys pr.keys else keys in
  let hi =
    if runique then pl.bounds.hi
    else if lunique && not outer then pr.bounds.hi
    else if outer then pl.bounds.hi *. Float.max 1.0 pr.bounds.hi
    else pl.bounds.hi *. pr.bounds.hi
  in
  let lo = if outer then pl.bounds.lo else 0.0 in
  let null_free =
    if outer then pl.null_free
    else Sset.union pl.null_free pr.null_free
  in
  let non_empty =
    if outer then pl.non_empty else Sset.union pl.non_empty pr.non_empty
  in
  {
    keys;
    null_free;
    non_empty;
    distinct = pl.distinct && pr.distinct;
    bounds = { lo; hi };
  }

let semi_props pl = { pl with bounds = { pl.bounds with lo = 0.0 } }

let nestjoin_props label pl = {
  pl with
  null_free = Sset.add (path label) pl.null_free;
  (* one output row per left row: bounds preserved exactly *)
}

let unnest_props ~proven_non_empty pin = {
  keys = [];
  null_free = pin.null_free;
  non_empty = pin.non_empty;
  distinct = false;
  bounds =
    { lo = (if proven_non_empty then pin.bounds.lo else 0.0); hi = inf };
}

let nest_props ~by ~label ~nulls pin =
  let byset = Sset.of_list by in
  let kept = restrict byset pin in
  {
    keys = [ Sset.of_list (List.map path by) ];
    null_free = Sset.add (path label) kept.null_free;
    non_empty =
      (if nulls = [] then Sset.add (path label) kept.non_empty
       else kept.non_empty);
    distinct = true;
    bounds =
      { lo = (if pin.bounds.lo > 0.0 then 1.0 else 0.0); hi = pin.bounds.hi };
  }

let extend_props var pin =
  { pin with null_free = Sset.remove (path var) pin.null_free }

let project_props vars pin =
  let vset = Sset.of_list vars in
  let kept = restrict vset pin in
  {
    keys = add_key (Sset.of_list (List.map path vars)) kept.keys;
    null_free = kept.null_free;
    non_empty = kept.non_empty;
    distinct = true;
    bounds =
      { lo = (if pin.bounds.lo > 0.0 then 1.0 else 0.0); hi = pin.bounds.hi };
  }

let apply_props var pin =
  (* the subquery value is a set (possibly empty), never Null *)
  { pin with null_free = Sset.add (path var) pin.null_free }

let union_props pl pr = {
  keys = [];
  null_free = Sset.inter pl.null_free pr.null_free;
  non_empty = Sset.inter pl.non_empty pr.non_empty;
  distinct = pl.distinct && pr.distinct;
  bounds =
    {
      lo = Float.max pl.bounds.lo pr.bounds.lo;
      hi = pl.bounds.hi +. pr.bounds.hi;
    };
}

(* --- logical plans ------------------------------------------------------- *)

let rec of_plan catalog plan =
  let go = of_plan catalog in
  match plan with
  | Plan.Unit -> unit_props
  | Plan.Table { name; var } -> scan_props catalog name var
  | Plan.Select { input; _ } -> select_props (go input)
  | Plan.Join { pred; left; right } ->
    let pl = go left and pr = go right in
    let runique, lunique =
      match equi_pairs_of_logical left right pred with
      | Some pairs -> (pairs_unique snd pr pairs, pairs_unique fst pl pairs)
      | None -> (false, false)
    in
    let p = join_props ~runique ~lunique pl pr in
    (* any predicate can reject rows *)
    { p with bounds = { p.bounds with lo = 0.0 } }
  | Plan.Semijoin { left; _ } | Plan.Antijoin { left; _ } ->
    semi_props (go left)
  | Plan.Outerjoin { pred; left; right } ->
    let pl = go left and pr = go right in
    let runique =
      match equi_pairs_of_logical left right pred with
      | Some pairs -> pairs_unique snd pr pairs
      | None -> false
    in
    join_props ~outer:true ~runique ~lunique:false pl pr
  | Plan.Nestjoin { label; left; _ } -> nestjoin_props label (go left)
  | Plan.Unnest { expr; input; _ } ->
    let pin = go input in
    let proven =
      match expr with
      | Ast.Field (Ast.Var v, f) ->
        let p = field_path v f in
        Sset.mem p pin.non_empty && Sset.mem p pin.null_free
      | _ -> false
    in
    unnest_props ~proven_non_empty:proven pin
  | Plan.Nest { by; label; nulls; input; _ } ->
    nest_props ~by ~label ~nulls (go input)
  | Plan.Extend { var; input; _ } -> extend_props var (go input)
  | Plan.Project { vars; input } -> project_props vars (go input)
  | Plan.Apply { var; input; _ } -> apply_props var (go input)
  | Plan.Union { left; right } -> union_props (go left) (go right)

(* --- physical plans ------------------------------------------------------ *)

let rec of_physical catalog plan =
  let go = of_physical catalog in
  let equi_join ?(outer = false) left right lkey rkey =
    let pl = go left and pr = go right in
    let pairs = [ (lkey, rkey) ] in
    let runique = pairs_unique snd pr pairs in
    let lunique = pairs_unique fst pl pairs in
    let p = join_props ~outer ~runique ~lunique pl pr in
    if outer then p else { p with bounds = { p.bounds with lo = 0.0 } }
  in
  match plan with
  | P.Unit_row -> unit_props
  | P.Scan { table; var } -> scan_props catalog table var
  | P.Filter { input; _ } -> select_props (go input)
  | P.Nl_join { left; right; _ } ->
    let p = join_props ~runique:false ~lunique:false (go left) (go right) in
    { p with bounds = { p.bounds with lo = 0.0 } }
  | P.Hash_join { left; right; lkey; rkey; _ }
  | P.Merge_join { left; right; lkey; rkey; _ } ->
    equi_join left right lkey rkey
  | P.Nl_semijoin { left; _ }
  | P.Hash_semijoin { left; _ }
  | P.Merge_semijoin { left; _ } ->
    semi_props (go left)
  | P.Nl_outerjoin { left; right; _ } ->
    join_props ~outer:true ~runique:false ~lunique:false (go left) (go right)
  | P.Hash_outerjoin { left; right; lkey; rkey; _ }
  | P.Merge_outerjoin { left; right; lkey; rkey; _ } ->
    equi_join ~outer:true left right lkey rkey
  | P.Nl_nestjoin { label; left; _ }
  | P.Hash_nestjoin { label; left; _ }
  | P.Hash_nestjoin_left { label; left; _ }
  | P.Merge_nestjoin { label; left; _ } ->
    nestjoin_props label (go left)
  | P.Unnest_op { expr; input; _ } ->
    let pin = go input in
    let proven =
      match expr with
      | Ast.Field (Ast.Var v, f) ->
        let p = field_path v f in
        Sset.mem p pin.non_empty && Sset.mem p pin.null_free
      | _ -> false
    in
    unnest_props ~proven_non_empty:proven pin
  | P.Nest_op { by; label; nulls; input; _ } ->
    nest_props ~by ~label ~nulls (go input)
  | P.Extend_op { var; input; _ } -> extend_props var (go input)
  | P.Project_op { vars; input } -> project_props vars (go input)
  | P.Apply_op { var; input; _ } -> apply_props var (go input)
  | P.Union_op { left; right } -> union_props (go left) (go right)
  | P.Index_join { table; var; field; left; _ } ->
    let pl = go left in
    let pt = scan_props catalog table var in
    let runique = expr_is_key pt (Ast.Field (Ast.Var var, field)) in
    let p = join_props ~runique ~lunique:false pl pt in
    { p with bounds = { p.bounds with lo = 0.0 } }
  | P.Index_semijoin { left; _ } -> semi_props (go left)
  | P.Index_nestjoin { label; left; _ } -> nestjoin_props label (go left)

(* The §6 build-side obligation, generalized from "declared key of a bare
   scan" to "proven key of the whole right operand": Hash_nestjoin_left
   streams the right side, so output stays grouped by left rows only when
   each left row matches at most one right row — i.e. [rkey] covers a
   candidate key of the right operand. *)
let key_of catalog plan key_expr = expr_is_key (of_physical catalog plan) key_expr

(* --- rendering ----------------------------------------------------------- *)

let key_strings p =
  List.filter_map
    (fun k ->
      if Sset.is_empty k then None
      else Some (String.concat "," (Sset.elements k)))
    p.keys

let pp_bound ppf b =
  if Float.is_finite b then Fmt.pf ppf "%.0f" b else Fmt.string ppf "∞"

let pp ppf p =
  Fmt.pf ppf "bounds=[%a,%a]" pp_bound p.bounds.lo pp_bound p.bounds.hi;
  (match key_strings p with
  | [] -> ()
  | ks ->
    Fmt.pf ppf " keys=%s" (String.concat "|" (List.map (Printf.sprintf "{%s}") ks)));
  if not (Sset.is_empty p.null_free) then
    Fmt.pf ppf " null-free={%s}" (String.concat "," (Sset.elements p.null_free));
  if not (Sset.is_empty p.non_empty) then
    Fmt.pf ppf " non-empty={%s}" (String.concat "," (Sset.elements p.non_empty));
  if p.distinct then Fmt.string ppf " distinct"

let to_json p =
  let module J = Engine.Json in
  J.Obj
    [
      ("bounds_lo", J.Float p.bounds.lo);
      ( "bounds_hi",
        if Float.is_finite p.bounds.hi then J.Float p.bounds.hi else J.Null );
      ( "keys",
        J.List (List.map (fun k -> J.String k) (key_strings p)) );
      ( "null_free",
        J.List
          (List.map (fun v -> J.String v) (Sset.elements p.null_free)) );
      ( "non_empty",
        J.List
          (List.map (fun v -> J.String v) (Sset.elements p.non_empty)) );
      ("distinct", J.Bool p.distinct);
    ]

(* --- EXPLAIN ANALYZE annotation ------------------------------------------ *)

(* Stamp bounds and keys onto an annotation tree; shape and operand order
   from [Engine.Analyze.children], exactly like [Core.Cost.annotate]. The
   per-node recomputation is quadratic in plan size, which is irrelevant at
   EXPLAIN ANALYZE frequency. *)
let rec annotate catalog plan (node : Engine.Stats.node) =
  let p = of_physical catalog plan in
  node.Engine.Stats.bounds <- Some (p.bounds.lo, p.bounds.hi);
  node.Engine.Stats.keys <- key_strings p;
  let operands = Engine.Analyze.children plan in
  if List.length operands = List.length node.Engine.Stats.children then
    List.iter2 (annotate catalog) operands node.Engine.Stats.children
