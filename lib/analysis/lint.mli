(** Query lint: per-subquery predicate classification and COUNT-bug-risk
    diagnostics (the [nestql check] subcommand).

    The linter typechecks a query, translates it naively (so every nested
    subquery is an [Apply] node) and mirrors [Core.Decorrelate]'s dispatch
    to report, for every subquery, what the optimizer will do with it:

    - {b semijoin-rewritable} — the WHERE predicate over the subquery
      result classifies as [∃v ∈ z (P')] (Theorem 1 / Table 2): flattening
      is safe, dangling outer rows are excluded by the predicate itself;
    - {b antijoin-rewritable} — it classifies as [¬∃v ∈ z (P')]: flattening
      to an antijoin is safe, but the predicate {e holds} on an empty
      subquery result, so Kim-style join flattening (which drops dangling
      rows) is wrong — the COUNT bug;
    - {b grouping-required} — no rewrite without grouping exists (nest join
      territory): count-equality tests, set-valued comparisons,
      SELECT-clause nesting, deep correlation. Under a flattening baseline
      these silently lose dangling outer rows — flagged as COUNT-bug risk;
    - {b uncorrelated} — a constant subquery; memoized, never a bug risk.

    [nestql check --strict] exits non-zero when any correlated
    grouping-required predicate is found. *)

type kind =
  | Semijoin of { var : string; body : Lang.Ast.expr }
      (** flattens to a semijoin on [body] *)
  | Antijoin of { var : string; body : Lang.Ast.expr }
  | Grouping of { reason : string }
  | Uncorrelated

type clause = Where | Select_clause

type diagnostic = {
  z : string;  (** the subquery variable (binder of the Apply node) *)
  clause : clause;
  correlated : bool;
  predicate : Lang.Ast.expr option;
      (** the WHERE conjunct(s) testing the subquery result, if any *)
  tables : (string * string) list;
      (** extensions the subquery scans, as [(name, var)] *)
  kind : kind;
  kim_risk : bool;
      (** the predicate can hold on an empty subquery result, so dangling
          outer rows are observable: Kim-style flattening drops them *)
}

val kind_name : kind -> string
(** ["semijoin-rewritable"], ["antijoin-rewritable"], ["grouping-required"]
    or ["uncorrelated"]. *)

val query :
  Cobj.Catalog.t ->
  Lang.Ast.expr ->
  (Cobj.Ctype.t * diagnostic list, string) result
(** Typecheck, translate and lint a query; diagnostics appear
    outermost-first. *)

val query_string :
  Cobj.Catalog.t -> string -> (Cobj.Ctype.t * diagnostic list, string) result

val warnings : diagnostic list -> diagnostic list
(** The strict-mode subset: correlated grouping-required diagnostics. *)

val pp_diagnostic : diagnostic Fmt.t
val render : diagnostic list -> string
(** Multi-line report (one block per diagnostic plus a summary line);
    [""] when there are no subqueries at all. *)
