(** Phase-by-phase plan verification (the static-analysis half of the
    optimizer's soundness story).

    Every intermediate plan the pipeline produces — after translation, after
    each decorrelation / simplification / rewrite / reorder round, after the
    baseline transformations and after physical planning — can be checked
    against the structural invariants the rewrites are supposed to preserve:

    - every variable an operator expression references is bound by its
      operand schemas or by the ambient correlation environment, and the
      expression typechecks ({b unbound-var}, {b ill-typed});
    - predicates are boolean ({b predicate-not-boolean});
    - scans name catalog extensions ({b unknown-table});
    - binders introduced along a plan path are unique — no operand binds a
      variable its input already binds, and the two sides of a join bind
      disjoint variables ({b shadowed-binding}, {b duplicate-binding});
    - nest-join and nest labels are fresh with respect to the rows they
      extend ({b shadowed-label} — a shadowed label would silently overwrite
      a live attribute, the failure mode Theorem 1's grouped rewrites must
      avoid);
    - [Project] and [Nest.by]/[Nest.nulls] only reference variables the
      input binds ({b project-unbound}, {b nest-unbound});
    - [Unnest] operands are collections ({b unnest-not-collection});
    - [Union] operands bind the same variables at compatible types
      ({b union-mismatch});
    - [Apply] subquery free variables are bound by the outer plan
      ({b apply-free-vars});
    - independently of the rule walk, {!Algebra.Typing.schema_of} is
      re-run as a backstop — any residual disagreement surfaces as rule
      {b schema}.

    Physical plans are additionally checked for:

    - hash / merge / index join key comparability — the two key expressions
      must have a common type under {!Cobj.Ctype.join} ({b hash-key-type},
      {b merge-key-type});
    - the paper's §6 build-side restriction: [Hash_nestjoin_left] (build on
      the left, stream the right) is only sound when the right key is a
      declared key of the scanned right operand ({b nestjoin-build-side});
    - index joins probe an existing field of the indexed extension
      ({b index-field});
    - Bloom-filter geometry consistency: the build-side cardinality
      estimate sizing the filter is finite, and {!Engine.Bloom.create} is
      geometry-deterministic for it — the precondition for OR-merging
      per-partition filters ({b bloom-geometry});
    - columnar-engine coverage: {!Engine.Exec.vectorizable} must agree
      with an independent whitelist of the vector fragment (scan, filter,
      extend, project, and the hash-join family), so the operators that
      fall back to the row engine are exactly the non-vectorizable ones
      ({b vector-fragment}).

    Violations are reported with the phase that produced the plan, the
    specific rule, a detail message and the pretty-printed offending
    subplan. See [docs/VERIFIER.md] for the paper justification of each
    rule. *)

type violation = {
  phase : string;  (** pipeline phase that produced the offending plan *)
  rule : string;   (** rule identifier, e.g. ["unbound-var"] *)
  detail : string; (** human-readable explanation *)
  subplan : string;  (** pretty-printed offending subplan *)
}

val pp_violation : violation Fmt.t
val to_string : violation -> string

val check_plan :
  phase:string ->
  ?ambient:Algebra.Typing.schema ->
  Cobj.Catalog.t ->
  Algebra.Plan.plan ->
  (Algebra.Typing.schema, violation) result
(** Walk a logical plan, enforcing every structural invariant; returns the
    inferred schema. [ambient] types correlation variables available from
    an enclosing scope (empty for closed plans). *)

val check_query :
  phase:string ->
  ?ambient:Algebra.Typing.schema ->
  Cobj.Catalog.t ->
  Algebra.Plan.query ->
  (unit, violation) result
(** {!check_plan} plus the result expression under the plan's schema. *)

val check_physical :
  phase:string ->
  ?ambient:Algebra.Typing.schema ->
  Cobj.Catalog.t ->
  Engine.Physical.t ->
  (Algebra.Typing.schema, violation) result

val check_physical_query :
  phase:string ->
  ?ambient:Algebra.Typing.schema ->
  Cobj.Catalog.t ->
  Engine.Physical.query ->
  (unit, violation) result

val verifier : Core.Pipeline.verifier
(** The hook implementation: dispatches on {!Core.Pipeline.phase_plan} and
    renders violations with {!to_string}. *)

val install : unit -> unit
(** Register {!verifier} with {!Core.Pipeline.set_verifier} so every
    [Pipeline.compile ~verify:true] (and, under dune, every compile at all —
    see {!Core.Pipeline.verify_default}) checks each phase. *)
