module Ast = Lang.Ast
module Sset = Ast.String_set
module Plan = Algebra.Plan

type kind =
  | Semijoin of { var : string; body : Ast.expr }
  | Antijoin of { var : string; body : Ast.expr }
  | Grouping of { reason : string }
  | Uncorrelated

type clause = Where | Select_clause

type diagnostic = {
  z : string;
  clause : clause;
  correlated : bool;
  predicate : Ast.expr option;
  tables : (string * string) list;
  kind : kind;
  kim_risk : bool;
}

let kind_name = function
  | Semijoin _ -> "semijoin-rewritable"
  | Antijoin _ -> "antijoin-rewritable"
  | Grouping _ -> "grouping-required"
  | Uncorrelated -> "uncorrelated"

let split_conjuncts pred =
  let rec go acc = function
    | Ast.Binop (Ast.And, a, b) -> go (go acc b) a
    | p -> p :: acc
  in
  match pred with
  | Ast.Const (Cobj.Value.Bool true) -> []
  | _ -> go [] pred

let tables_of plan =
  List.rev
    (Plan.fold
       (fun acc node ->
         match node with
         | Plan.Table { name; var } -> (name, var) :: acc
         | _ -> acc)
       [] plan)

(* Mirrors [Core.Decorrelate.consume]/[flatten_one]: same split, same
   classification, same liveness test — so the report states what the
   optimizer actually does, not a parallel opinion (the agreement is
   enforced by tests). *)
let diagnose live ~conjs z (subquery : Plan.query) input acc =
  let outer = Sset.of_list (Plan.vars_of input) in
  let correlated =
    not (Sset.is_empty (Sset.inter (Plan.query_free_vars subquery) outer))
  in
  let z_live = Sset.mem z live in
  let classify zpred =
    match Core.Decorrelate.split_subquery_for_baselines outer subquery with
    | None ->
      if correlated then
        Grouping
          {
            reason =
              "deep correlation: the subquery does not split into an \
               uncorrelated base plus correlation conjuncts";
          }
      else Uncorrelated
    | Some _ -> (
      match Core.Classify.classify ~z zpred with
      | Core.Classify.Exists { var; body } -> Semijoin { var; body }
      | Core.Classify.Not_exists { var; body } -> Antijoin { var; body }
      | Core.Classify.Needs_grouping why ->
        Grouping { reason = "Theorem 1: no ∃/¬∃ rewrite (" ^ why ^ ")" })
  in
  let kind, predicate =
    match conjs with
    | None ->
      ( (if correlated then
           Grouping
             {
               reason =
                 "SELECT-clause nesting: the subquery value itself is the \
                  result attribute (§5: always grouped — nest join)";
             }
         else Uncorrelated),
        None )
    | Some [] ->
      ( (if correlated then
           Grouping
             {
               reason =
                 "no WHERE conjunct tests the subquery result (nest join \
                  keeps it bound)";
             }
         else Uncorrelated),
        None )
    | Some [ zpred ] ->
      ( (if z_live then
           Grouping
             {
               reason =
                 "the subquery result is also referenced outside its WHERE \
                  conjunct";
             }
         else classify zpred),
        Some zpred )
    | Some multi ->
      ( Grouping
          {
            reason =
              Printf.sprintf "%d WHERE conjuncts test the subquery result"
                (List.length multi);
          },
        Some (Ast.conj multi) )
  in
  let kim_risk =
    correlated
    && (match kind with
       | Antijoin _ | Grouping _ -> true
       | Semijoin _ | Uncorrelated -> false)
  in
  {
    z;
    clause = (match conjs with None -> Select_clause | Some _ -> Where);
    correlated;
    predicate;
    tables = tables_of subquery.Plan.plan;
    kind;
    kim_risk;
  }
  :: acc

let rec walk live acc plan =
  match plan with
  | Plan.Select { pred; input = Plan.Apply _ as chain } ->
    consume live (split_conjuncts pred) acc chain
  | Plan.Apply { var = z; subquery; input } ->
    let acc = diagnose live ~conjs:None z subquery input acc in
    let acc = walk (Ast.free_vars subquery.Plan.result) acc subquery.Plan.plan in
    walk live acc input
  | Plan.Unit | Plan.Table _ -> acc
  | Plan.Select { input; _ } | Plan.Unnest { input; _ }
  | Plan.Nest { input; _ } | Plan.Extend { input; _ }
  | Plan.Project { input; _ } ->
    walk live acc input
  | Plan.Join { left; right; _ } | Plan.Semijoin { left; right; _ }
  | Plan.Antijoin { left; right; _ } | Plan.Outerjoin { left; right; _ }
  | Plan.Nestjoin { left; right; _ } | Plan.Union { left; right } ->
    walk live (walk live acc left) right

(* Walk a Select-over-Apply chain outermost-first, pairing each subquery
   with the conjuncts that mention its variable (as the decorrelator does). *)
and consume live conjs acc plan =
  match plan with
  | Plan.Apply { var = z; subquery; input } ->
    let z_conjs, rest = List.partition (Ast.occurs_free z) conjs in
    let acc = diagnose live ~conjs:(Some z_conjs) z subquery input acc in
    let acc = walk (Ast.free_vars subquery.Plan.result) acc subquery.Plan.plan in
    consume live rest acc input
  | _ -> walk live acc plan

let query catalog expr =
  match Lang.Types.check_query catalog expr with
  | Error err -> Error (Fmt.str "%a" Lang.Types.pp_error err)
  | Ok (resolved, ty) -> (
    match Core.Translate.query catalog resolved with
    | Error msg -> Error msg
    | Ok q ->
      Ok (ty, List.rev (walk (Ast.free_vars q.Plan.result) [] q.Plan.plan)))

let query_string catalog src =
  match Lang.Parser.expr_result src with
  | Error msg -> Error msg
  | Ok expr -> query catalog expr

let warnings diags =
  List.filter
    (fun d ->
      d.correlated && match d.kind with Grouping _ -> true | _ -> false)
    diags

let pp_kind ~z ppf kind =
  match kind with
  | Semijoin { var; body } ->
    let rewritten =
      Core.Classify.to_expr ~z (Core.Classify.Exists { var; body })
    in
    Fmt.pf ppf "semijoin-rewritable — %a"
      Fmt.(option Lang.Pretty.pp)
      rewritten
  | Antijoin { var; body } ->
    let rewritten =
      Core.Classify.to_expr ~z (Core.Classify.Not_exists { var; body })
    in
    Fmt.pf ppf "antijoin-rewritable — %a"
      Fmt.(option Lang.Pretty.pp)
      rewritten
  | Grouping { reason } -> Fmt.pf ppf "grouping-required — %s" reason
  | Uncorrelated -> Fmt.pf ppf "uncorrelated — memoized constant"

let pp_diagnostic ppf d =
  let clause =
    match d.clause with Where -> "WHERE clause" | Select_clause -> "SELECT clause"
  in
  Fmt.pf ppf "@[<v2>subquery %s (%s, %s%a):" d.z clause
    (if d.correlated then "correlated" else "uncorrelated")
    Fmt.(
      list ~sep:nop (fun ppf (name, var) -> Fmt.pf ppf ", over %s %s" name var))
    d.tables;
  (match d.predicate with
  | Some p -> Fmt.pf ppf "@,predicate: %a" Lang.Pretty.pp p
  | None -> ());
  Fmt.pf ppf "@,verdict: %a" (pp_kind ~z:d.z) d.kind;
  if d.kim_risk then
    (match d.predicate with
    | Some _ ->
      Fmt.pf ppf
        "@,note: COUNT-bug risk — the predicate holds on an empty subquery \
         result, so dangling outer rows contribute to the answer; \
         Kim-style join flattening silently drops them"
    | None ->
      Fmt.pf ppf
        "@,note: COUNT-bug risk — a dangling outer row still contributes a \
         tuple (with an empty group); join-based flattening would drop it");
  Fmt.pf ppf "@]"

let render diags =
  match diags with
  | [] -> ""
  | _ :: _ ->
    let w = List.length (warnings diags) in
    let risky = List.length (List.filter (fun d -> d.kim_risk) diags) in
    Fmt.str "@[<v>%a@,%d subquer%s; %d grouping-required, %d with COUNT-bug \
             risk under flattening@]"
      Fmt.(list ~sep:(any "@,") pp_diagnostic)
      diags (List.length diags)
      (if List.length diags = 1 then "y" else "ies")
      w risky
