(** Plan-property inference: a bottom-up abstract interpretation over
    logical and physical plans.

    For every plan node the analysis infers a conservative summary of the
    rows it can produce:

    - {b candidate keys} — sets of paths (["x"] for a whole row variable,
      ["x.f"] for a field) whose values are distinct across output rows;
      seeded from the duplicate-free table extensions (the whole row) and
      verified declared keys ({!Cobj.Table.key}), and propagated through
      joins (a unique build side preserves the probe side's keys),
      nest joins, grouping and projection;
    - {b null-free} / {b non-empty} paths — proven from the exact one-pass
      catalog statistics ([null_frac = 0], [empty_frac = 0]; tables are
      immutable, so these are facts, not estimates) and propagated (an
      outer join's right-hand paths lose null-freeness, a nest-join label
      is always bound to a set);
    - {b duplicate-freeness} of whole rows;
    - {b \[lo, hi\] output-cardinality bounds} per invocation — exact for
      scans ([\[n, n\]]) and row-preserving operators (nest join, extend,
      apply), interval arithmetic elsewhere, with unique-key join caps
      ([hi(A ⋈ B) = hi(A)] when the join key covers a candidate key
      of [B]).

    All facts are {e proofs} relative to the catalog: the certifier
    ({!Certify}) uses them to discharge rewrite obligations, the cost model
    consumes proven keys for exact join cardinalities
    ({!Core.Cost.set_key_hint}), and EXPLAIN ANALYZE cross-checks actual
    row counts against the bounds ({!Core.Pipeline.set_annotator}). *)

type bounds = { lo : float; hi : float }

type t = {
  keys : Lang.Ast.String_set.t list;
      (** candidate keys: each element is a set of paths whose combination
          is unique across output rows *)
  null_free : Lang.Ast.String_set.t;  (** paths proven never [Null] *)
  non_empty : Lang.Ast.String_set.t;
      (** collection-valued paths proven never empty (and never [Null]) *)
  distinct : bool;  (** output rows are duplicate-free *)
  bounds : bounds;  (** proven per-invocation output-cardinality interval *)
}

val top : t
(** No facts: the lattice top ([\[0, ∞\]], no keys). Sound for any node. *)

val join : t -> t -> t
(** Least upper bound — keeps only facts valid in both (interval hull). *)

val meet : t -> t -> t
(** Greatest lower bound — combines facts (interval intersection). *)

val compatible : t -> t -> bool
(** The two bound intervals intersect — necessary for two plans to have a
    common true cardinality (the certifier's phase obligation). *)

val of_plan : Cobj.Catalog.t -> Algebra.Plan.plan -> t
val of_physical : Cobj.Catalog.t -> Engine.Physical.t -> t

val paths_of_key_expr : Lang.Ast.expr -> string list option
(** The paths a key expression denotes ([Var v] → ["v"],
    [Field (Var v, f)] → ["v.f"], tuples componentwise); [None] when a
    component is computed. *)

val key_of : Cobj.Catalog.t -> Engine.Physical.t -> Lang.Ast.expr -> bool
(** [key_of catalog plan e] — does [e] cover a proven candidate key of
    [plan]'s output? This is the §6 build-side obligation generalized from
    "declared key of a bare scan" to "proven key of the whole operand"
    (e.g. a filter or projection over a keyed scan keeps the key). *)

val key_strings : t -> string list
(** Candidate keys rendered ["p1,p2"], for EXPLAIN ANALYZE annotations. *)

val pp : t Fmt.t
val to_json : t -> Engine.Json.t

val annotate : Cobj.Catalog.t -> Engine.Physical.t -> Engine.Stats.node -> unit
(** Stamp {!Engine.Stats.node.bounds} and [keys] over an EXPLAIN ANALYZE
    tree (operand order of {!Engine.Analyze.children}, like
    [Core.Cost.annotate]). *)
