type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Tuple of (string * t) list
  | Set of t list
  | List of t list
  | Variant of string * t

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

(* Constructor rank for the total order across constructors. [Int] and
   [Float] share a rank so that they compare numerically. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | String _ -> 3
  | Tuple _ -> 4
  | Set _ -> 5
  | List _ -> 6
  | Variant _ -> 7

let rec compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | Tuple xs, Tuple ys -> compare_fields xs ys
  | Set xs, Set ys | List xs, List ys -> compare_lists xs ys
  | Variant (t1, v1), Variant (t2, v2) ->
    let c = String.compare t1 t2 in
    if c <> 0 then c else compare v1 v2
  | ( ( Null | Bool _ | Int _ | Float _ | String _ | Tuple _ | Set _ | List _
      | Variant _ ),
      _ ) ->
    Int.compare (rank a) (rank b)

and compare_lists xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_lists xs' ys'

and compare_fields xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (lx, x) :: xs', (ly, y) :: ys' ->
    let c = String.compare lx ly in
    if c <> 0 then c
    else
      let c = compare x y in
      if c <> 0 then c else compare_fields xs' ys'

let equal a b = compare a b = 0

let rec hash v =
  match v with
  | Null -> 17
  | Bool b -> if b then 3 else 5
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s
  | Tuple fields ->
    List.fold_left
      (fun acc (l, x) -> (acc * 31) + Hashtbl.hash l + hash x)
      7 fields
  | Set xs -> List.fold_left (fun acc x -> (acc * 37) + hash x) 11 xs
  | List xs -> List.fold_left (fun acc x -> (acc * 41) + hash x) 13 xs
  | Variant (tag, v) -> (Hashtbl.hash tag * 43) + hash v

let tuple fields =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) fields
  in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then
        invalid_arg (Printf.sprintf "Value.tuple: duplicate label %S" a)
      else check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  Tuple sorted

let set elems = Set (List.sort_uniq compare elems)
let set_of_seq seq = set (List.of_seq seq)

let field_opt l = function
  | Tuple fields -> List.assoc_opt l fields
  | Null | Bool _ | Int _ | Float _ | String _ | Set _ | List _ | Variant _ ->
    None

let rec pp ppf v =
  match v with
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%F" f
  | String s -> Fmt.pf ppf "%S" s
  | Tuple fields ->
    Fmt.pf ppf "(@[%a@])"
      (Fmt.list ~sep:(Fmt.any ",@ ") pp_field)
      fields
  | Set xs -> Fmt.pf ppf "{@[%a@]}" (Fmt.list ~sep:(Fmt.any ",@ ") pp) xs
  | List xs -> Fmt.pf ppf "[@[%a@]]" (Fmt.list ~sep:(Fmt.any ",@ ") pp) xs
  | Variant (tag, v) -> Fmt.pf ppf "%s!(%a)" tag pp v

and pp_field ppf (l, v) = Fmt.pf ppf "%s = %a" l pp v

let to_string v = Fmt.str "%a" pp v

let field l v =
  match field_opt l v with
  | Some x -> x
  | None -> type_error "no field %S in %s" l (to_string v)

let elements = function
  | Set xs | List xs -> xs
  | (Null | Bool _ | Int _ | Float _ | String _ | Tuple _ | Variant _) as v ->
    type_error "expected a collection, got %s" (to_string v)

let variant_tag = function
  | Variant (tag, _) -> tag
  | v -> type_error "expected a variant, got %s" (to_string v)

let variant_payload tag = function
  | Variant (t, payload) when String.equal t tag -> payload
  | Variant (t, _) -> type_error "variant tagged %s, expected %s" t tag
  | v -> type_error "expected a variant, got %s" (to_string v)

let as_bool = function
  | Bool b -> b
  | v -> type_error "expected a boolean, got %s" (to_string v)

let as_int = function
  | Int i -> i
  | v -> type_error "expected an integer, got %s" (to_string v)

let as_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> type_error "expected a number, got %s" (to_string v)

let as_string = function
  | String s -> s
  | v -> type_error "expected a string, got %s" (to_string v)

let as_set = function
  | Set xs -> xs
  | v -> type_error "expected a set, got %s" (to_string v)

(* Set operations exploit the sortedness invariant for linear merges. *)

let set_mem x s =
  let rec mem = function
    | [] -> false
    | y :: rest ->
      let c = compare x y in
      if c = 0 then true else if c < 0 then false else mem rest
  in
  mem (as_set s)

let set_union a b =
  let rec merge xs ys =
    match xs, ys with
    | [], rest | rest, [] -> rest
    | x :: xs', y :: ys' ->
      let c = compare x y in
      if c = 0 then x :: merge xs' ys'
      else if c < 0 then x :: merge xs' ys
      else y :: merge xs ys'
  in
  Set (merge (as_set a) (as_set b))

let set_inter a b =
  let rec inter xs ys =
    match xs, ys with
    | [], _ | _, [] -> []
    | x :: xs', y :: ys' ->
      let c = compare x y in
      if c = 0 then x :: inter xs' ys'
      else if c < 0 then inter xs' ys
      else inter xs ys'
  in
  Set (inter (as_set a) (as_set b))

let set_diff a b =
  let rec diff xs ys =
    match xs, ys with
    | [], _ -> []
    | rest, [] -> rest
    | x :: xs', y :: ys' ->
      let c = compare x y in
      if c = 0 then diff xs' ys
      else if c < 0 then x :: diff xs' ys
      else diff xs ys'
  in
  Set (diff (as_set a) (as_set b))

let set_subseteq a b =
  let rec sub xs ys =
    match xs, ys with
    | [], _ -> true
    | _ :: _, [] -> false
    | x :: xs', y :: ys' ->
      let c = compare x y in
      if c = 0 then sub xs' ys' else if c < 0 then false else sub xs ys'
  in
  sub (as_set a) (as_set b)

let set_card s = List.length (as_set s)
let set_is_empty s = as_set s = []

let set_subset a b =
  set_subseteq a b && set_card a < set_card b

(* Approximate heap footprint in bytes (64-bit words), for byte-bounded
   caches: block headers plus one word per field/element cons, strings
   rounded up to whole words. An estimate, not Obj.reachable_words — it is
   stable across sharing and cheap enough to run on every cache insert. *)
let rec approx_bytes = function
  | Null | Bool _ | Int _ -> 8
  | Float _ -> 16
  | String s -> 16 + (String.length s + 7) / 8 * 8
  | Variant (tag, v) -> 24 + approx_bytes (String tag) + approx_bytes v
  | Tuple fields ->
    List.fold_left
      (fun acc (label, v) ->
        acc + 32 + approx_bytes (String label) + approx_bytes v)
      8 fields
  | Set elts | List elts ->
    List.fold_left (fun acc v -> acc + 24 + approx_bytes v) 8 elts
