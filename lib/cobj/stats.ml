(* One-pass catalog statistics: per-table row counts and per-attribute
   NDV / null / empty-set summaries. See stats.mli. *)

type attr = {
  ndv : int option;
  null_frac : float;
  empty_frac : float option;
  avg_card : float option;
}

type table = { name : string; rows : int; attrs : (string * attr) list }
type t = table list

(* Attribute labels come from the declared element type when it is a tuple
   (the common case for base tables); a non-tuple element type yields a
   single anonymous attribute describing the whole element. *)
let labels_of_elt elt =
  match elt with
  | Ctype.TTuple fields -> List.map fst fields
  | _ -> [ "" ]

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let attr_value label row =
  match label, row with
  | "", v -> Some v
  | l, Value.Tuple _ -> Value.field_opt l row
  | _, _ -> None

let scan_table t =
  let rows = Table.rows t in
  let n = List.length rows in
  let attrs =
    List.map
      (fun label ->
        let nulls = ref 0 in
        let collections = ref 0 in
        let empties = ref 0 in
        let members = ref 0 in
        let distinct = Vtbl.create 64 in
        List.iter
          (fun row ->
            match attr_value label row with
            | None | Some Value.Null -> incr nulls
            | Some v ->
              Vtbl.replace distinct v ();
              (match v with
              | Value.Set elts | Value.List elts ->
                incr collections;
                members := !members + List.length elts;
                if elts = [] then incr empties
              | _ -> ()))
          rows;
        let frac num den =
          if den = 0 then 0.0 else float_of_int num /. float_of_int den
        in
        let attr =
          {
            ndv = (if n = 0 then None else Some (Vtbl.length distinct));
            null_frac = frac !nulls n;
            empty_frac =
              (if !collections = 0 then None
               else Some (frac !empties !collections));
            avg_card =
              (if !collections = 0 then None
               else Some (frac !members !collections));
          }
        in
        (label, attr))
      (labels_of_elt (Table.elt t))
  in
  { name = Table.name t; rows = n; attrs }

let scan catalog = List.map scan_table (Catalog.tables catalog)

(* Catalogs are immutable and planning happens on the calling domain, so a
   single physically-keyed entry is a sound memo: re-planning the same
   catalog (the common case in benches and the REPL) scans it once. *)
let memo : (Catalog.t * t) option ref = ref None

let of_catalog catalog =
  match !memo with
  | Some (c, s) when c == catalog -> s
  | _ ->
    let s = scan catalog in
    memo := Some (catalog, s);
    s

(* Version stamps are keyed on physical identity like the memo above, but
   must survive more than one live catalog (a server hosts one catalog per
   session) and be readable from concurrent session threads — hence the
   small mutex-guarded association list. The list is capped: entries for
   catalogs nobody asks about any more age out, and a re-seen catalog would
   simply be stamped afresh (stamps only ever grow, so a re-stamp can never
   resurrect a stale cache entry). *)
let version_mutex = Mutex.create ()
let version_counter = ref 0
let versions : (Catalog.t * int) list ref = ref []
let max_versions = 64

let version catalog =
  Mutex.lock version_mutex;
  let stamp =
    match List.assq_opt catalog !versions with
    | Some v -> v
    | None ->
      incr version_counter;
      let v = !version_counter in
      let keep =
        if List.length !versions >= max_versions then
          List.filteri (fun i _ -> i < max_versions - 1) !versions
        else !versions
      in
      versions := (catalog, v) :: keep;
      v
  in
  Mutex.unlock version_mutex;
  stamp

let table stats name = List.find_opt (fun t -> String.equal t.name name) stats

let attr stats tname aname =
  match table stats tname with
  | None -> None
  | Some t -> List.assoc_opt aname t.attrs

let row_count catalog name =
  Option.map (fun t -> t.rows) (table (of_catalog catalog) name)

let ndv catalog ~table:tname ~field =
  match attr (of_catalog catalog) tname field with
  | Some { ndv = Some d; _ } when d > 0 -> Some d
  | _ -> None

let avg_set_card catalog ~table:tname ~field =
  match attr (of_catalog catalog) tname field with
  | Some { avg_card; _ } -> avg_card
  | None -> None

let fopt = function None -> "-" | Some f -> Printf.sprintf "%.2f" f
let iopt = function None -> "-" | Some i -> string_of_int i

let pp ppf stats =
  Fmt.pf ppf "%-12s %8s  %-10s %6s %6s %7s %9s@." "table" "rows" "attribute"
    "ndv" "null" "empty" "avg-card";
  List.iter
    (fun t ->
      List.iter
        (fun (name, a) ->
          Fmt.pf ppf "%-12s %8d  %-10s %6s %6.2f %7s %9s@." t.name t.rows
            (if name = "" then "(elt)" else name)
            (iopt a.ndv) a.null_frac (fopt a.empty_frac) (fopt a.avg_card))
        t.attrs)
    stats
