(** Complex-object values.

    The TM data model of the paper supports arbitrarily nested tuple, set and
    list constructors over basic types. Sets contain no duplicates. A [Null]
    value exists only as padding produced by the relational outerjoin operator
    (the paper stresses that the complex object model itself does not need
    NULL: the empty set is part of the model); it is used here to implement
    the algebraic equivalence "nest join = outerjoin followed by ν*". *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Tuple of (string * t) list  (** fields sorted by label, labels unique *)
  | Set of t list               (** sorted by [compare], duplicate-free *)
  | List of t list
  | Variant of string * t       (** tagged value, e.g. [circle!(1.5)] *)

(** {1 Smart constructors}

    [Tuple] and [Set] carry invariants (label-sorted fields, sorted dup-free
    elements); always build them through these functions. *)

val tuple : (string * t) list -> t
(** Sorts fields by label. Raises [Invalid_argument] on duplicate labels. *)

val set : t list -> t
(** Sorts elements and removes duplicates. *)

val set_of_seq : t Seq.t -> t

(** {1 Total order, equality, hashing}

    [compare] is a total order on all values, used to maintain set invariants
    and by sort-based join implementations. Values of different constructors
    are ordered by an arbitrary fixed constructor rank; [Int] and [Float]
    compare numerically against each other. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** {1 Accessors} *)

val field : string -> t -> t
(** [field l v] projects field [l] of tuple [v]. Raises [Type_error]. *)

val field_opt : string -> t -> t option

val elements : t -> t list
(** Elements of a [Set] or [List]. Raises [Type_error] otherwise. *)

val as_bool : t -> bool
val as_int : t -> int
val as_float : t -> float
(** [as_float] accepts both [Int] and [Float]. *)

val as_string : t -> string

exception Type_error of string
(** Raised by accessors and by evaluation when a value has the wrong shape. *)

val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [type_error fmt ...] raises {!Type_error} with a formatted message. *)

(** {1 Set operations} (operands must be [Set]) *)

val set_mem : t -> t -> bool
(** [set_mem x s] is x ∈ s. *)

val set_union : t -> t -> t
val set_inter : t -> t -> t
val set_diff : t -> t -> t
val set_subseteq : t -> t -> bool
val set_subset : t -> t -> bool
val set_card : t -> int
val set_is_empty : t -> bool

(** {1 Pretty printing} *)

val variant_tag : t -> string
(** Tag of a [Variant]. Raises [Type_error]. *)

val variant_payload : string -> t -> t
(** [variant_payload tag v] — payload of [v] if tagged [tag]; raises
    [Type_error] otherwise (including on a different tag). *)

val pp : t Fmt.t
(** Renders in TM-like concrete syntax: [(a = 1, b = {2, 3})]. The output is
    parseable back by [Lang.Parser] for literal values. *)

val to_string : t -> string

val approx_bytes : t -> int
(** Approximate heap footprint in bytes (headers + per-element cons cells,
    strings rounded to whole words). Used by byte-bounded caches; an
    estimate — sharing is counted once per occurrence. *)
