(** One-pass catalog statistics for the cost model and the CLI.

    [scan] walks every table of a catalog exactly once and records, per
    table, the row count and per-attribute summaries: distinct-value count
    (NDV, over non-null values), fraction of null/missing values, and — for
    set- or list-valued attributes — the fraction of empty collections and
    the average collection cardinality. The planner consumes these through
    {!of_catalog}, which memoizes the scan per catalog (physical identity:
    catalogs are immutable and planning runs on the calling domain). *)

type attr = {
  ndv : int option;  (** distinct non-null values; [None] on empty tables *)
  null_frac : float;  (** fraction of rows whose value is null or missing *)
  empty_frac : float option;
      (** among collection-valued rows, the empty fraction; [None] when the
          attribute is never a collection *)
  avg_card : float option;
      (** average collection cardinality; [None] like [empty_frac] *)
}

type table = {
  name : string;
  rows : int;
  attrs : (string * attr) list;
      (** one entry per declared tuple field, in declaration (sorted) order;
          a non-tuple element type yields a single [""] entry *)
}

type t = table list

val scan : Catalog.t -> t
(** Fresh statistics: one full pass over every table. *)

val of_catalog : Catalog.t -> t
(** Memoized {!scan} — repeated calls on the same catalog are free. *)

val version : Catalog.t -> int
(** Monotonic statistics-version stamp for cache keying: the first call on
    a catalog assigns the next version number; later calls on the same
    catalog (physical identity — catalogs are immutable, so a changed
    catalog is a different value) return the same stamp. Plan-cache keys
    embed this stamp, so any catalog change invalidates every cached plan
    and result derived from the old statistics. Thread-safe. *)

val table : t -> string -> table option
val attr : t -> string -> string -> attr option

val row_count : Catalog.t -> string -> int option
val ndv : Catalog.t -> table:string -> field:string -> int option
(** [Some d] only when the table exists, is non-empty and [d > 0]. *)

val avg_set_card : Catalog.t -> table:string -> field:string -> float option

val pp : t Fmt.t
(** Aligned grid, one line per attribute (the [nestql stats] output). *)
