(** End-to-end query processing: parse → typecheck → translate → optimize →
    plan → execute, with selectable strategies for the benches and the CLI.

    Strategies:
    - [Interp] — the reference interpreter (pure nested-loop semantics, no
      algebra at all);
    - [Naive] — translate to the algebra, keep Apply nodes, execute (the
      algebraic image of nested-loop processing);
    - [Decorrelated] — the paper's approach: Apply removal into semijoin /
      antijoin / nest join, logical rewrites, cost-based physical planning;
    - [Decorrelated_outerjoin] — like [Decorrelated] but nest joins are
      executed as ν* ∘ outerjoin (the relational encoding of §6; for the
      equivalence benches);
    - [Kim_baseline] — Kim's algorithm ({b intentionally exhibits the COUNT
      bug} on dangling tuples; falls back to [Naive] when inapplicable);
    - [Ganski_wong] — outerjoin + ν* fix (falls back likewise);
    - [Muralikrishna] — group-first plan with an antijoin predicate for the
      dangling tuples, expressed as a union of a matched and a dangling
      branch (falls back likewise);
    - [Shredded] — query shredding ({!Shred}): the decorrelated plan is
      flattened into a bounded set of flat queries (no nest join, no Apply)
      whose results are stitched back into the nested value by group keys;
      plans outside the flat fragment fall back to nest-join execution. *)

type strategy =
  | Interp
  | Naive
  | Decorrelated
  | Decorrelated_outerjoin
  | Kim_baseline
  | Ganski_wong
  | Muralikrishna
  | Shredded

val strategy_name : strategy -> string
val all_strategies : strategy list

type compiled = {
  source : Lang.Ast.expr;        (** resolved input expression *)
  logical : Algebra.Plan.query option;  (** [None] for [Interp] *)
  physical : Engine.Physical.query option;
  shredded : Shred.executable option;
      (** [Shredded] only, and only when the decorrelated plan fits the
          flat fragment; [None] there means nest-join fallback (counted by
          the [shred.fallbacks] metric) *)
  strategy : strategy;
}

(** {1 Phase verification}

    Every optimizer phase (logical rewrites and physical planning) can be
    checked by a registered verifier: after each phase the intermediate plan
    is handed to the hook together with the phase name, and a verification
    failure aborts compilation with the hook's message. The checker itself
    lives in the [analysis] library ([Analysis.Verify.install] registers
    it); [core] only defines the hook so the dependency stays one-way. *)

type phase_plan =
  | Logical of Algebra.Plan.query
  | Physical of Engine.Physical.query

type verifier =
  phase:string -> Cobj.Catalog.t -> phase_plan -> (unit, string) result
(** Phase names: ["translate"], ["decorrelate"], ["simplify"], ["rewrite"],
    ["reorder"] (per fixpoint round), ["nestjoin-as-outerjoin"], the
    baseline strategy names (["kim"], ["ganski-wong"], ["muralikrishna"]),
    ["shred"] (once per flat query of a shredded program, [Logical]), and
    ["plan"] / ["shred-plan"] (the [Physical] phases). Under the
    ["shred"]-prefixed phases the verifier additionally rejects any
    nesting operator — the flat fragment must stay flat. *)

val set_verifier : verifier option -> unit
(** Register (or clear) the global verification hook. *)

val verify_default : unit -> bool
(** Default for [?verify]: [NESTQL_VERIFY] when set ([0]/[false]/[no]/[off]
    disable, anything else enables), else on exactly when running under
    dune ([INSIDE_DUNE] — so [dune runtest] and the cram suite verify every
    phase by default). *)

(** {1 Per-step certification (translation validation)}

    Beyond phase-output verification, each optimizer phase can be
    {e certified}: while the phase runs, every applied rewrite is recorded
    as a [(rule, before, after)] step ({!Steps}), and the registered
    certifier discharges per-rule proof obligations over the steps plus
    whole-phase obligations over the before/after queries. Physical plans
    are certified against inferred plan properties (the §6 nest-join
    build-side legality via proven keys). Like the verifier, the certifier
    lives in [analysis] ([Analysis.Certify.install]) and [core] only
    defines the hook. *)

type cert_target =
  | Cert_logical of {
      before : Algebra.Plan.query;  (** phase input *)
      after : Algebra.Plan.query;   (** phase output *)
      steps : Steps.step list;      (** rewrites applied, in order *)
    }
  | Cert_physical of Engine.Physical.query

type certifier =
  phase:string -> Cobj.Catalog.t -> cert_target -> (unit, string) result
(** Certified phases: ["decorrelate"], ["simplify"], ["rewrite"],
    ["reorder"] (per fixpoint round), ["nestjoin-as-outerjoin"]
    ([Cert_logical]), and ["plan"] ([Cert_physical]). The intentionally
    COUNT-buggy baselines (kim / ganski-wong / muralikrishna) are verified
    but not certified. A certification failure aborts compilation with the
    hook's message. *)

val set_certifier : certifier option -> unit
(** Register (or clear) the global certification hook. *)

val certify_default : unit -> bool
(** Default for [?certify]: [NESTQL_CERTIFY] when set (same spelling as
    [NESTQL_VERIFY]), else {!verify_default} — so certification is on
    under dune and under [NESTQL_VERIFY] exactly like the verifier. *)

type annotator =
  Cobj.Catalog.t -> Engine.Physical.query -> Engine.Stats.node -> unit
(** Fills {!Engine.Stats.node.bounds} / [keys] property annotations into an
    EXPLAIN ANALYZE tree before execution; {!analyze} then cross-checks the
    actual row counts against the proven bounds and errors on any
    violation. Registered by [Analysis.Certify.install]. *)

val set_annotator : annotator option -> unit

val compile :
  ?options:Planner.options ->
  ?rewrite:bool ->
  ?reorder:bool ->
  ?verify:bool ->
  ?certify:bool ->
  strategy ->
  Cobj.Catalog.t ->
  Lang.Ast.expr ->
  (compiled, string) result
(** [rewrite] (default true) applies simplification and the logical rewriter
    after each decorrelation round; [reorder] (default true) additionally
    applies the §6 join-reordering equivalences. Both exist for the
    ablation benches. [verify] (default {!verify_default}) runs the
    registered phase verifier after every optimizer phase. [certify]
    (default {!certify_default}) additionally records each rewrite step and
    runs the registered certifier per phase. *)

val compile_string :
  ?options:Planner.options ->
  ?rewrite:bool ->
  ?reorder:bool ->
  ?verify:bool ->
  ?certify:bool ->
  strategy ->
  Cobj.Catalog.t ->
  string ->
  (compiled, string) result

(** {1 Cache keys}

    The plan cache in [Server.Cache] keys compiled plans on the strategy,
    the normalized AST and the catalog's statistics version — see
    {!Cobj.Stats.version}. Exposed here so the key derivation lives next
    to the compiler it indexes. *)

val normalized_ast : Lang.Ast.expr -> string
(** Canonical pretty-print of a parsed query: texts differing only in
    whitespace, comments or redundant parentheses normalize identically. *)

val plan_key :
  ?rewrite:bool ->
  ?reorder:bool ->
  strategy ->
  Cobj.Catalog.t ->
  Lang.Ast.expr ->
  string
(** [strategy ⊕ stats version ⊕ ablation flags ⊕ normalized AST]. Two
    queries share a key exactly when {!compile} would produce the same
    plan for them against the same catalog statistics. *)

val plan_key_string :
  ?rewrite:bool ->
  ?reorder:bool ->
  strategy ->
  Cobj.Catalog.t ->
  string ->
  (string, string) result
(** {!plan_key} from query text ([Error] on a parse failure). *)

val digest_of_key : string -> string
(** Short stable hex digest of a plan-cache key — the [plan_digest]
    field of the slow-query log, so "same plan, different run" is
    greppable without shipping the normalized AST in every line. *)

val plan_digest :
  ?rewrite:bool ->
  ?reorder:bool ->
  strategy ->
  Cobj.Catalog.t ->
  Lang.Ast.expr ->
  string
(** [digest_of_key ∘ plan_key]. *)

val default_jobs : unit -> int
(** Partition-parallel width used when [?jobs] is omitted: the value of the
    [NESTQL_JOBS] environment variable when it parses as a positive
    integer, else 1 (serial). *)

val execute :
  ?stats:Engine.Stats.t ->
  ?jobs:int ->
  ?bloom:bool ->
  ?vector:bool ->
  ?batch:int ->
  Cobj.Catalog.t ->
  compiled ->
  Cobj.Value.t

val run :
  ?options:Planner.options ->
  ?rewrite:bool ->
  ?reorder:bool ->
  ?verify:bool ->
  ?certify:bool ->
  ?stats:Engine.Stats.t ->
  ?jobs:int ->
  ?bloom:bool ->
  ?vector:bool ->
  ?batch:int ->
  strategy ->
  Cobj.Catalog.t ->
  string ->
  (Cobj.Value.t, string) result
(** Parse, compile and execute a query string. [jobs] (default
    {!default_jobs}) is the partition-parallel domain count — results and
    statistics are identical for every value, see {!Engine.Exec.rows}.
    [bloom] (default true) toggles Bloom-filter sideways information
    passing in the hash-join family; results are identical either way and
    only the [bloom_*] counters differ. [vector] (default
    {!Engine.Exec.default_vector}) and [batch] (default
    {!Engine.Exec.default_batch}) control the columnar batch engine —
    results and statistics are identical with the vector layer on or
    off. *)

val explain : ?costs:bool -> Cobj.Catalog.t -> compiled -> string
(** Logical and physical plans, pretty-printed. For a shredded query the
    physical-plan section is replaced by the shredded program (flat
    queries + stitch recipe). With [costs] (default false), each physical
    operator is annotated with the cost model's estimated output
    cardinality and cumulative cost. *)

val analyze :
  ?jobs:int ->
  ?bloom:bool ->
  ?vector:bool ->
  ?batch:int ->
  Cobj.Catalog.t ->
  compiled ->
  (Cobj.Value.t * Engine.Stats.node, string) result
(** EXPLAIN ANALYZE: run the physical plan once under per-operator
    instrumentation, with [est_rows] annotated from {!Cost}, and return the
    result value together with the filled annotation tree. For a shredded
    query the tree has a synthetic [stitch] root over the per-flat-query
    operator trees ({!Shred.analyze}). Errors when the strategy has no
    physical plan ([Interp]). *)

val render_analysis :
  ?json:bool ->
  ?timing:bool ->
  ?profile:bool ->
  ?misest_floor:float ->
  ?catalog:Cobj.Catalog.t ->
  compiled ->
  Engine.Stats.node ->
  string
(** Render an {!analyze} tree — a Postgres-style text tree by default, or a
    single-line JSON document with per-operator
    [{rows_out, est_rows, time_ns, ...}] objects. [~timing:false] omits
    wall-clock and the other jobs/load-dependent fields ([time=] in text
    mode; [time_ns], partition and [gc] fields in JSON) for deterministic
    output. [~profile:true] appends the {!Engine.Profile} self-time
    report (top table + flame view in text, a ["profile"] key in JSON);
    profile output is timing-class, so [~timing:false] suppresses it. With [catalog], a {!Misest} report is appended (text) or
    included under a ["misest"] key (JSON); [misest_floor] (default
    {!Misest.noise}, 1.5) sets the divergence ratio under which operators
    are summarized rather than listed in the text report. *)
