module Plan = Algebra.Plan

type step = {
  rule : string;
  before : Plan.plan;
  after : Plan.plan;
  meta : (string * string) list;
}

(* The buffer is a plain global: compilation is single-domain (see
   Pipeline.phase), and [collect] additionally serializes concurrent
   compilers (server sessions) behind a mutex so one phase's steps never
   interleave with another's. *)
let lock = Mutex.create ()
let buffer : step list ref option ref = ref None

let recording () = !buffer <> None

let record ~rule ?(meta = []) ~before ~after () =
  match !buffer with
  | None -> ()
  | Some b -> b := { rule; before; after; meta } :: !b

let collect f =
  Mutex.lock lock;
  buffer := Some (ref []);
  match f () with
  | v ->
    let steps =
      match !buffer with Some b -> List.rev !b | None -> []
    in
    buffer := None;
    Mutex.unlock lock;
    (v, steps)
  | exception e ->
    buffer := None;
    Mutex.unlock lock;
    raise e
