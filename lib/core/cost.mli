(** Cardinality estimation and a simple cost model.

    Deliberately coarse — its only job is to rank physical alternatives
    (nested-loop vs hash vs sort-merge vs memoized apply, and the build
    orientation of commutative hash joins), and the benches validate the
    ranking empirically. Estimates come from one-pass catalog statistics
    ({!Cobj.Stats}): row counts, NDV-based equi-join selectivity
    (1/max(ndv)), containment-based semijoin/antijoin match fractions
    (min(1, ndv_r/ndv_l)) and measured average set cardinalities for
    unnest. Keys that don't resolve to a base-table attribute fall back to
    fixed constants. Hash costs weight the build side heavier than the
    probe side, so the cheaper orientation of a commutative [Hash_join]
    builds on the (estimated) smaller operand. *)

val set_key_hint :
  (Cobj.Catalog.t -> Engine.Physical.t -> Lang.Ast.expr -> bool) option ->
  unit
(** Register a proven-key oracle: [f catalog operand key] answers whether
    [key] covers a proven candidate key of [operand]'s output. When
    statistics cannot resolve a join key's NDV, a proven key makes the
    estimate exact (ndv = operand cardinality) instead of the fallback
    constants. Registered by [Analysis.Certify.install] with
    [Analysis.Props.key_of]; the hook keeps [core] → [analysis]
    dependency-free. *)

val card : Cobj.Catalog.t -> Algebra.Plan.plan -> float
(** Estimated output cardinality of a logical plan. *)

val cost : Cobj.Catalog.t -> Engine.Physical.t -> float
(** Estimated total work of a physical plan (rows touched). *)

val card_physical : Cobj.Catalog.t -> Engine.Physical.t -> float
(** Estimated output cardinality of a physical operator — the "est" column
    of EXPLAIN ANALYZE. *)

val annotate : Cobj.Catalog.t -> Engine.Physical.t -> Engine.Stats.node -> unit
(** Fill [est_rows] over a whole annotation tree (shape from
    [Engine.Analyze.tree_of_plan]) so instrumented runs can report
    estimated vs. actual cardinality per operator. *)

val query_cost : Cobj.Catalog.t -> Engine.Physical.query -> float
val query_card : Cobj.Catalog.t -> Engine.Physical.query -> float
(** Estimated result cardinality. *)

val explain : Cobj.Catalog.t -> Engine.Physical.t -> string
(** One-line account of where the root operator's estimate comes from,
    naming the resolved {!Cobj.Stats} inputs (["ndv(Y.b)=13"],
    ["rows(X)=40"]) or the fallback constant used when a key didn't
    resolve. Feeds the misestimation report ({!Misest}). *)
