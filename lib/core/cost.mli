(** Cardinality estimation and a simple cost model.

    Deliberately coarse — its only job is to rank physical alternatives
    (nested-loop vs hash vs sort-merge vs memoized apply), and the benches
    validate the ranking empirically. Estimates use true base-table
    cardinalities from the catalog and fixed selectivity constants. *)

val card : Cobj.Catalog.t -> Algebra.Plan.plan -> float
(** Estimated output cardinality of a logical plan. *)

val cost : Cobj.Catalog.t -> Engine.Physical.t -> float
(** Estimated total work of a physical plan (rows touched). *)

val card_physical : Cobj.Catalog.t -> Engine.Physical.t -> float
(** Estimated output cardinality of a physical operator — the "est" column
    of EXPLAIN ANALYZE. *)

val annotate : Cobj.Catalog.t -> Engine.Physical.t -> Engine.Stats.node -> unit
(** Fill [est_rows] over a whole annotation tree (shape from
    [Engine.Analyze.tree_of_plan]) so instrumented runs can report
    estimated vs. actual cardinality per operator. *)

val query_cost : Cobj.Catalog.t -> Engine.Physical.query -> float
val query_card : Cobj.Catalog.t -> Engine.Physical.query -> float
(** Estimated result cardinality. *)
