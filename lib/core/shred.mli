(** Query shredding: the flat-relational backend.

    A decorrelated nested query is compiled into a bounded set of {e flat}
    algebra queries — no [Nestjoin], [Nest] or [Apply] operators — plus a
    stitching recipe reassembling the flat result tables into the same
    nested [Cobj.Value] the nest-join backend produces (after Cheney,
    Lindley & Wadler, arXiv:1404.7078, adapted to the paper's algebra).

    Nesting constructors become {!child} entries: the child's rows are
    grouped by the parent's [key] columns and every parent row is extended
    with [label := {func m | m in its group}]; a key with no group is the
    {e empty set}, so the rows the Kim COUNT bug loses survive by
    construction. Expressions that mention stitched labels are deferred to
    {!step}s applied after stitching.

    Plans outside the supported fragment (residual correlated [Apply],
    nesting under [Union]/[Outerjoin], nest-join heads over the outer
    side's stitched columns) are reported by {!of_query}; the pipeline
    then falls back to nest-join execution. *)

type step =
  | Bind of string * Lang.Ast.expr   (** extend each row: v := e *)
  | Keep of Lang.Ast.expr            (** keep rows satisfying the predicate *)
  | Unfold of string * Lang.Ast.expr
      (** per element x of e, emit row + v := x *)

type node = {
  plan : Algebra.Plan.plan;  (** flat: no Nestjoin / Nest / Apply *)
  children : child list;
  post : step list;
}

and child = {
  label : string;
  key : string list;    (** parent flat columns forming the group key *)
  nulls : string list;
      (** ν*: members all-[Null] on these columns contribute nothing *)
  func : Lang.Ast.expr; (** member expression over stitched body rows *)
  body : node;
}

type program = { body : node; result : Lang.Ast.expr }

val of_query : Algebra.Plan.query -> (program, string) result
(** Shred a (decorrelated) logical query. [Error reason] means the plan is
    outside the supported flat fragment. *)

val flat_count : program -> int
(** Number of flat queries — bounded by the plan size, independent of the
    data. *)

val flat_queries : program -> Algebra.Plan.query list
(** The flat queries in execution (preorder) order, each given a synthetic
    identity head (the tuple of its columns) so the plan verifier can
    check it like any logical query. *)

val pp_program : program Fmt.t

(** {1 Planning and execution} *)

type executable

val plan : ?options:Planner.options -> Cobj.Catalog.t -> program -> executable
(** Physical-plan every flat query with the ordinary planner. *)

val physical_queries : executable -> Engine.Physical.query list
(** Physical counterparts of {!flat_queries}, for phase verification. *)

val executable_flat_count : executable -> int

val program_of : executable -> program
(** The logical program the executable was planned from. *)

val run_under :
  ?stats:Engine.Stats.t ->
  ?jobs:int ->
  ?bloom:bool ->
  ?vector:bool ->
  ?batch:int ->
  Cobj.Catalog.t ->
  Cobj.Env.t ->
  executable ->
  Cobj.Value.t
(** Execute every flat query ([jobs]/[bloom]/[vector]/[batch] apply to
    each), stitch, and build the result set — the exact value
    [Exec.run_under] produces for the nest-join plan of the same query. *)

val run :
  ?stats:Engine.Stats.t ->
  ?jobs:int ->
  ?bloom:bool ->
  ?vector:bool ->
  ?batch:int ->
  Cobj.Catalog.t ->
  executable ->
  Cobj.Value.t

val analyze :
  ?jobs:int ->
  ?bloom:bool ->
  ?vector:bool ->
  ?batch:int ->
  Cobj.Catalog.t ->
  executable ->
  Cobj.Value.t * Engine.Stats.node
(** Instrumented run for EXPLAIN ANALYZE: the annotation tree has a
    synthetic [stitch] root whose children are the cost-annotated
    per-flat-query operator trees in execution order. *)
