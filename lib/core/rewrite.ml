module Ast = Lang.Ast
module Plan = Algebra.Plan
module Sset = Ast.String_set

let split_conjuncts pred =
  let rec go acc = function
    | Ast.Binop (Ast.And, a, b) -> go (go acc b) a
    | p -> p :: acc
  in
  match pred with
  | Ast.Const (Cobj.Value.Bool true) -> []
  | _ -> go [] pred

let is_true = function
  | Ast.Const (Cobj.Value.Bool true) -> true
  | _ -> false

(* Partition conjuncts of [pred] by which operand's variables they touch.
   Conjuncts touching neither side go [`Left] (cheapest: filter early). *)
let partition_pred left_vars right_vars pred =
  let lset = Sset.of_list left_vars and rset = Sset.of_list right_vars in
  List.fold_left
    (fun (ls, rs, both) c ->
      let fv = Ast.free_vars c in
      let uses_l = not (Sset.is_empty (Sset.inter fv lset)) in
      let uses_r = not (Sset.is_empty (Sset.inter fv rset)) in
      match uses_l, uses_r with
      | _, false -> (c :: ls, rs, both)
      | false, true -> (ls, c :: rs, both)
      | true, true -> (ls, rs, c :: both))
    ([], [], []) (List.rev (split_conjuncts pred))

let select pred input =
  match split_conjuncts pred with
  | [] -> input
  | conjs -> Plan.Select { pred = Ast.conj conjs; input }

let step rule ?meta before after =
  if Steps.recording () then Steps.record ~rule ?meta ~before ~after ()

(* One bottom-up pass; [live] = variables referenced above this node. *)
let rec pass live plan =
  let plan = pass_children live plan in
  match plan with
  (* selection fusion *)
  | Plan.Select { pred = p; input = Plan.Select { pred = q; input } } ->
    let after = Plan.Select { pred = Ast.Binop (Ast.And, q, p); input } in
    step "select-fuse" plan after;
    pass live after
  (* selection pushdown *)
  | Plan.Select { pred; input = Plan.Join { pred = jp; left; right } } ->
    let ls, rs, both =
      partition_pred (Plan.vars_of left) (Plan.vars_of right) pred
    in
    if ls = [] && rs = [] && both = [] then begin
      let after = Plan.Join { pred = jp; left; right } in
      step "select-true-elim" plan after;
      after
    end
    else if ls = [] && rs = [] then begin
      (* merge two-sided conjuncts into the join predicate *)
      let after =
        Plan.Join { pred = Ast.conj (split_conjuncts jp @ both); left; right }
      in
      step "select-merge-into-join" plan after;
      after
    end
    else begin
      let after =
        Plan.Select
          {
            pred = Ast.conj both;
            input =
              Plan.Join
                { pred = jp; left = select (Ast.conj ls) left;
                  right = select (Ast.conj rs) right };
          }
      in
      step "select-pushdown-join" plan after;
      pass live after
    end
  | Plan.Select { pred; input = Plan.Semijoin jr }
    when pushable_left pred jr.left ->
    push_into_left live plan pred (fun left -> Plan.Semijoin { jr with left })
      jr.left
  | Plan.Select { pred; input = Plan.Antijoin jr }
    when pushable_left pred jr.left ->
    push_into_left live plan pred (fun left -> Plan.Antijoin { jr with left })
      jr.left
  | Plan.Select { pred; input = Plan.Outerjoin jr }
    when pushable_left pred jr.left ->
    push_into_left live plan pred (fun left -> Plan.Outerjoin { jr with left })
      jr.left
  | Plan.Select { pred; input = Plan.Nestjoin jr }
    when pushable_left pred jr.left ->
    push_into_left live plan pred (fun left -> Plan.Nestjoin { jr with left })
      jr.left
  (* dead nest join elimination: π_X (X Δ Y) = X *)
  | Plan.Nestjoin { label; left; _ } when not (Sset.mem label live) ->
    step "dead-nestjoin-elim" ~meta:[ ("label", label) ] plan left;
    left
  (* unit elimination *)
  | Plan.Join { pred; left = Plan.Unit; right } when is_true pred ->
    step "unit-elim" plan right;
    right
  | Plan.Join { pred; left; right = Plan.Unit } when is_true pred ->
    step "unit-elim" plan left;
    left
  | _ -> plan

and pushable_left pred left =
  (* at least one conjunct references only left-side variables *)
  let lset = Sset.of_list (Plan.vars_of left) in
  List.exists
    (fun c -> Sset.subset (Ast.free_vars c) lset)
    (split_conjuncts pred)

and push_into_left live before pred rebuild left =
  let lset = Sset.of_list (Plan.vars_of left) in
  let ls, rest =
    List.partition
      (fun c -> Sset.subset (Ast.free_vars c) lset)
      (split_conjuncts pred)
  in
  step "select-pushdown-left" before
    (select (Ast.conj rest) (rebuild (select (Ast.conj ls) left)));
  let pushed = rebuild (pass live (select (Ast.conj ls) left)) in
  select (Ast.conj rest) pushed

and pass_children live plan =
  let child_live v = Sset.union live v in
  match plan with
  | Plan.Unit | Plan.Table _ -> plan
  | Plan.Select r ->
    Plan.Select
      { r with input = pass (child_live (Ast.free_vars r.pred)) r.input }
  | Plan.Join r ->
    let l = child_live (Ast.free_vars r.pred) in
    Plan.Join { r with left = pass l r.left; right = pass l r.right }
  | Plan.Semijoin r ->
    let l = child_live (Ast.free_vars r.pred) in
    Plan.Semijoin { r with left = pass l r.left; right = pass l r.right }
  | Plan.Antijoin r ->
    let l = child_live (Ast.free_vars r.pred) in
    Plan.Antijoin { r with left = pass l r.left; right = pass l r.right }
  | Plan.Outerjoin r ->
    let l = child_live (Ast.free_vars r.pred) in
    Plan.Outerjoin { r with left = pass l r.left; right = pass l r.right }
  | Plan.Nestjoin r ->
    let l =
      child_live
        (Sset.union (Ast.free_vars r.pred) (Ast.free_vars r.func))
    in
    Plan.Nestjoin { r with left = pass l r.left; right = pass l r.right }
  | Plan.Unnest r ->
    Plan.Unnest
      { r with input = pass (child_live (Ast.free_vars r.expr)) r.input }
  | Plan.Nest r ->
    let l =
      child_live
        (Sset.union (Ast.free_vars r.func)
           (Sset.of_list (r.by @ r.nulls)))
    in
    Plan.Nest { r with input = pass l r.input }
  | Plan.Extend r ->
    Plan.Extend
      { r with input = pass (child_live (Ast.free_vars r.expr)) r.input }
  | Plan.Project r ->
    Plan.Project { r with input = pass (child_live (Sset.of_list r.vars)) r.input }
  | Plan.Apply r ->
    Plan.Apply
      {
        r with
        input = pass (child_live (Plan.query_free_vars r.subquery)) r.input;
        subquery =
          {
            plan =
              pass (Ast.free_vars r.subquery.Plan.result) r.subquery.Plan.plan;
            result = r.subquery.result;
          };
      }
  | Plan.Union r -> Plan.Union { left = pass live r.left; right = pass live r.right }

let plan ~live p =
  (* Iterate to a small fixpoint; each pass only shrinks or reshuffles, so a
     few rounds suffice. *)
  let rec iterate n p =
    if n = 0 then p
    else begin
      Obs.Metrics.incr "optimizer.rewrite.passes";
      let p' = pass live p in
      if p' = p then p
      else begin
        Obs.Metrics.incr "optimizer.rewrite.passes_changed";
        iterate (n - 1) p'
      end
    end
  in
  iterate 8 p

let query { Plan.plan = p; result } =
  { Plan.plan = plan ~live:(Ast.free_vars result) p; result }
