module Ast = Lang.Ast
module Plan = Algebra.Plan

let log_src = Logs.Src.create "nestql.optimizer" ~doc:"query optimization"

module Log = (val Logs.src_log log_src : Logs.LOG)

type strategy =
  | Interp
  | Naive
  | Decorrelated
  | Decorrelated_outerjoin
  | Kim_baseline
  | Ganski_wong
  | Muralikrishna
  | Shredded

let strategy_name = function
  | Interp -> "interp"
  | Naive -> "naive"
  | Decorrelated -> "decorrelated"
  | Decorrelated_outerjoin -> "decorrelated-outerjoin"
  | Kim_baseline -> "kim"
  | Ganski_wong -> "ganski-wong"
  | Muralikrishna -> "muralikrishna"
  | Shredded -> "shred"

let all_strategies =
  [
    Interp; Naive; Decorrelated; Decorrelated_outerjoin; Kim_baseline;
    Ganski_wong; Muralikrishna; Shredded;
  ]

type compiled = {
  source : Ast.expr;
  logical : Plan.query option;
  physical : Engine.Physical.query option;
  shredded : Shred.executable option;
      (** [Shredded] only, and only when the decorrelated plan fits the
          flat fragment; [None] there means nest-join fallback *)
  strategy : strategy;
}

type phase_plan =
  | Logical of Plan.query
  | Physical of Engine.Physical.query

type verifier =
  phase:string -> Cobj.Catalog.t -> phase_plan -> (unit, string) result

(* The verifier is an optional hook so [core] stays independent of the
   analysis library implementing it: [Analysis.Verify.install] registers the
   real checker; without a registration every phase check is a no-op. *)
let verifier_hook : verifier option ref = ref None
let set_verifier v = verifier_hook := v

let verify_default () =
  match Sys.getenv_opt "NESTQL_VERIFY" with
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ -> true
  | None ->
    (* default-on under dune (runtest, cram, dune exec) so every compiled
       plan in the test suite is phase-verified *)
    Sys.getenv_opt "INSIDE_DUNE" <> None

(* --- translation validation (the certifier hook) ------------------------ *)

type cert_target =
  | Cert_logical of {
      before : Plan.query;
      after : Plan.query;
      steps : Steps.step list;
    }
  | Cert_physical of Engine.Physical.query

type certifier =
  phase:string -> Cobj.Catalog.t -> cert_target -> (unit, string) result

(* Like the verifier: an optional hook so [core] stays independent of the
   analysis library. [Analysis.Certify.install] registers the real
   certifier; without a registration certification is a no-op. *)
let certifier_hook : certifier option ref = ref None
let set_certifier c = certifier_hook := c

let certify_default () =
  match Sys.getenv_opt "NESTQL_CERTIFY" with
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ -> true
  | None -> verify_default ()

(* Fills property annotations (cardinality bounds, proven keys) into an
   EXPLAIN ANALYZE tree; registered by [Analysis.Certify.install] alongside
   the certifier. *)
type annotator =
  Cobj.Catalog.t -> Engine.Physical.query -> Engine.Stats.node -> unit

let annotator_hook : annotator option ref = ref None
let set_annotator a = annotator_hook := a

let ( let* ) = Result.bind

(* Every pipeline phase goes through this wrapper: a trace span (with Gc
   args) when tracing is active, a phase counter plus per-phase
   allocation gauges when the metrics registry is on, and a plain call
   otherwise. Compilation is single-domain, so phase metrics are
   jobs-invariant by construction; the gc.* gauges are load-dependent
   and documented as such (docs/OBSERVABILITY.md). *)
let phase name f =
  let traced () = Obs.Trace.span ~cat:"phase" name f in
  if not (Obs.Metrics.enabled ()) then traced ()
  else begin
    Obs.Metrics.incr ("phase." ^ name);
    let v, d = Obs.Memory.measure traced in
    Obs.Metrics.add_gauge
      ("gc.phase." ^ name ^ ".minor_words")
      d.Obs.Memory.minor_words;
    Obs.Metrics.add_gauge
      ("gc.phase." ^ name ^ ".major_words")
      d.Obs.Memory.major_words;
    v
  end

let logical_of ~check ~cert ~cert_on ~rewrite ~reorder strategy catalog
    resolved =
  let translate () = phase "translate" (fun () -> Translate.query catalog resolved) in
  (* Run one optimizer phase with rewrite-step recording (when certifying),
     then verify the phase output and certify the recorded steps. *)
  let run_phase name f q0 =
    let q, steps =
      if cert_on then Steps.collect (fun () -> phase name (fun () -> f q0))
      else (phase name (fun () -> f q0), [])
    in
    let* () = check ~phase:name (Logical q) in
    let* () =
      cert ~phase:name (Cert_logical { before = q0; after = q; steps })
    in
    Ok q
  in
  match strategy with
  | Interp -> Ok None
  | Naive ->
    let* q = translate () in
    let* () = check ~phase:"translate" (Logical q) in
    Ok (Some q)
  | Decorrelated | Decorrelated_outerjoin | Shredded ->
    let* naive = translate () in
    let* () = check ~phase:"translate" (Logical naive) in
    (* Iterate decorrelation and rewriting to a fixpoint: pushing a
       selection below a join can expose the Select-over-Apply pattern of a
       second subquery in the same WHERE clause (multiple subqueries per
       block — listed as future work in the paper, handled here). *)
    let step q =
      Obs.Metrics.incr "optimizer.decorrelate.rounds";
      let* q = run_phase "decorrelate" Decorrelate.query q in
      let* q =
        if rewrite then begin
          let* q = run_phase "simplify" (Simplify.query catalog) q in
          let* q = run_phase "rewrite" Rewrite.query q in
          Ok q
        end
        else Ok q
      in
      if reorder then run_phase "reorder" (Reorder.query catalog) q
      else Ok q
    in
    let rec fixpoint n q =
      if n = 0 then Ok q
      else
        let* q' = step q in
        if q' = q then Ok q
        else begin
          Log.debug (fun m ->
              m "optimization round %d:@.%a" (6 - n) Plan.pp_query q');
          fixpoint (n - 1) q'
        end
    in
    Log.debug (fun m -> m "naive translation:@.%a" Plan.pp_query naive);
    let* q = fixpoint 5 naive in
    let* q =
      if strategy = Decorrelated_outerjoin then
        run_phase "nestjoin-as-outerjoin"
          (fun q -> { q with Plan.plan = Kim.nestjoin_as_outerjoin q.Plan.plan })
          q
      else Ok q
    in
    Ok (Some q)
  | Kim_baseline | Ganski_wong | Muralikrishna ->
    let* naive = translate () in
    let* () = check ~phase:"translate" (Logical naive) in
    let baseline =
      match strategy with
      | Kim_baseline -> Kim.kim
      | Ganski_wong -> Kim.ganski_wong
      | _ -> Kim.muralikrishna
    in
    let q =
      phase (strategy_name strategy) (fun () ->
          Result.value (baseline naive) ~default:naive)
    in
    let* () = check ~phase:(strategy_name strategy) (Logical q) in
    Ok (Some q)

let compile ?options ?(rewrite = true) ?(reorder = true) ?verify ?certify
    strategy catalog expr =
  let options =
    match options, strategy with
    | Some options, _ -> options
    | None, (Decorrelated | Decorrelated_outerjoin | Shredded) ->
      (* a residual Apply after decorrelation (deep / non-neighbour
         correlation, set-valued operands) is at least memoized: the cache
         key is the correlation columns, so duplicate outer values share
         one evaluation *)
      { Planner.default_options with Planner.memo_applies = true }
    | None, _ -> Planner.default_options
  in
  let verify =
    match verify with Some v -> v | None -> verify_default ()
  in
  let certify =
    match certify with Some c -> c | None -> certify_default ()
  in
  let check ~phase:ph plan =
    if not verify then Ok ()
    else
      match !verifier_hook with
      | None -> Ok ()
      | Some f -> phase ("verify." ^ ph) (fun () -> f ~phase:ph catalog plan)
  in
  let cert_on = certify && !certifier_hook <> None in
  let cert ~phase:ph target =
    if not cert_on then Ok ()
    else
      match !certifier_hook with
      | None -> Ok ()
      | Some f -> phase ("certify." ^ ph) (fun () -> f ~phase:ph catalog target)
  in
  phase "compile" (fun () ->
      match phase "typecheck" (fun () -> Lang.Types.check_query catalog expr) with
      | Error err -> Error (Fmt.str "%a" Lang.Types.pp_error err)
      | Ok (resolved, _ty) ->
        let* logical =
          logical_of ~check ~cert ~cert_on ~rewrite ~reorder strategy catalog
            resolved
        in
        let physical =
          Option.map
            (fun lq -> phase "plan" (fun () -> Planner.query ~options catalog lq))
            logical
        in
        let* () =
          match physical with
          | Some pq ->
            let* () = check ~phase:"plan" (Physical pq) in
            cert ~phase:"plan" (Cert_physical pq)
          | None -> Ok ()
        in
        let* shredded =
          match strategy, logical with
          | Shredded, Some lq -> (
            match phase "shred" (fun () -> Shred.of_query lq) with
            | Error reason ->
              (* Outside the flat fragment: execute the nest-join physical
                 plan instead — correct either way, and visible in
                 metrics and EXPLAIN output. *)
              Obs.Metrics.incr "shred.fallbacks";
              Log.info (fun m ->
                  m "shredding fell back to nest join: %s" reason);
              Ok None
            | Ok program ->
              let rec all_ok ~phase:ph mk = function
                | [] -> Ok ()
                | q :: qs ->
                  let* () = check ~phase:ph (mk q) in
                  all_ok ~phase:ph mk qs
              in
              let* () =
                all_ok ~phase:"shred"
                  (fun q -> Logical q)
                  (Shred.flat_queries program)
              in
              let exe =
                phase "shred-plan" (fun () ->
                    Shred.plan ~options catalog program)
              in
              let* () =
                all_ok ~phase:"shred-plan"
                  (fun q -> Physical q)
                  (Shred.physical_queries exe)
              in
              Ok (Some exe))
          | _ -> Ok None
        in
        Ok { source = resolved; logical; physical; shredded; strategy })

let compile_string ?options ?rewrite ?reorder ?verify ?certify strategy
    catalog src =
  let* expr = Lang.Parser.expr_result src in
  compile ?options ?rewrite ?reorder ?verify ?certify strategy catalog expr

(* Cache keys. The normalized form is the canonical pretty-print of the
   parsed AST, so texts differing only in whitespace, comments or
   redundant parentheses share one plan-cache entry; the full key adds the
   strategy, the rewrite/reorder ablation flags (they change the plan) and
   the catalog's statistics version — any catalog change moves the stamp,
   so stale plans are unreachable rather than merely suspect. *)
let normalized_ast expr = Fmt.str "%a" Lang.Pretty.pp expr

let plan_key ?(rewrite = true) ?(reorder = true) strategy catalog expr =
  Printf.sprintf "s=%s;v=%d;rw=%b;ro=%b;q=%s" (strategy_name strategy)
    (Cobj.Stats.version catalog)
    rewrite reorder (normalized_ast expr)

let plan_key_string ?rewrite ?reorder strategy catalog src =
  let* expr = Lang.Parser.expr_result src in
  Ok (plan_key ?rewrite ?reorder strategy catalog expr)

(* Short stable identifier of a plan-cache key for logs (the slow-query
   log carries it so "same plan, different constants" is visible without
   shipping the normalized AST in every line). *)
let digest_of_key key = Digest.to_hex (Digest.string key)

let plan_digest ?rewrite ?reorder strategy catalog expr =
  digest_of_key (plan_key ?rewrite ?reorder strategy catalog expr)

let default_jobs () =
  match Sys.getenv_opt "NESTQL_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)

(* Flat execution counters become exec.* metrics (par.* for the
   jobs-dependent partition counters) so bench artifacts and --trace runs
   carry them without EXPLAIN ANALYZE. *)
let record_exec_metrics (s : Engine.Stats.t) =
  let c name v = if v > 0 then Obs.Metrics.incr ~by:v name in
  c "exec.rows_out" s.Engine.Stats.rows_out;
  c "exec.predicate_evals" s.Engine.Stats.predicate_evals;
  c "exec.hash_builds" s.Engine.Stats.hash_builds;
  c "exec.hash_probes" s.Engine.Stats.hash_probes;
  c "exec.sorts" s.Engine.Stats.sorts;
  c "exec.applies" s.Engine.Stats.applies;
  c "exec.apply_hits" s.Engine.Stats.apply_hits;
  c "exec.bloom_checks" s.Engine.Stats.bloom_checks;
  c "exec.bloom_prunes" s.Engine.Stats.bloom_prunes;
  c "exec.build_side_swaps" s.Engine.Stats.build_side_swaps;
  c "par.partitions" s.Engine.Stats.partitions;
  if s.Engine.Stats.partition_max_rows > 0 then
    Obs.Metrics.observe "par.partition_max_rows"
      s.Engine.Stats.partition_max_rows

let execute ?stats ?jobs ?bloom ?vector ?batch catalog compiled =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let stats =
    match stats with
    | Some _ -> stats
    | None when Obs.Metrics.enabled () && compiled.physical <> None ->
      Some (Engine.Stats.create ())
    | None -> None
  in
  let v =
    phase "execute" (fun () ->
        match compiled.shredded, compiled.physical with
        | Some exe, _ ->
          Shred.run ?stats ~jobs ?bloom ?vector ?batch catalog exe
        | None, Some pq ->
          Engine.Exec.run ?stats ~jobs ?bloom ?vector ?batch catalog pq
        | None, None -> Lang.Interp.run catalog compiled.source)
  in
  (match stats with
  | Some s when Obs.Metrics.enabled () -> record_exec_metrics s
  | _ -> ());
  v

let run ?options ?rewrite ?reorder ?verify ?certify ?stats ?jobs ?bloom
    ?vector ?batch strategy catalog src =
  let* compiled =
    compile_string ?options ?rewrite ?reorder ?verify ?certify strategy
      catalog src
  in
  match execute ?stats ?jobs ?bloom ?vector ?batch catalog compiled with
  | v -> Ok v
  | exception Cobj.Value.Type_error msg -> Error ("runtime error: " ^ msg)
  | exception Lang.Interp.Undefined msg -> Error ("undefined: " ^ msg)

(* How much of the annotation tree the columnar engine handled, as a
   fraction of operator nodes — the headline observability signal for the
   vector layer (CI's structural gate asserts it is positive on the smoke
   suite). Jobs-invariant: the vector layer covers the same operators at
   every [jobs]. *)
let record_vectorized_fraction tree =
  if Obs.Metrics.enabled () then begin
    let total = ref 0 and vec = ref 0 in
    let rec walk n =
      incr total;
      if n.Engine.Stats.vectorized then incr vec;
      List.iter walk n.Engine.Stats.children
    in
    walk tree;
    if !total > 0 then
      Obs.Metrics.set_gauge "exec.vectorized_fraction"
        (float_of_int !vec /. float_of_int !total)
  end

(* Cross-check the certifier's proven [lo, hi] per-loop cardinality bounds
   against the rows each operator actually produced: a violated bound means
   the property inference was unsound — surfaced as a hard error, exactly
   like a verifier violation. Only nodes the annotator stamped (bounds =
   Some) and that actually ran (loops > 0) are checked; counters accumulate
   across loops, so the interval scales by the loop count. *)
let bounds_violation tree =
  let fin f = if Float.is_finite f then Printf.sprintf "%.0f" f else "inf" in
  let rec walk (n : Engine.Stats.node) =
    let deeper () = List.find_map walk n.Engine.Stats.children in
    match n.Engine.Stats.bounds with
    | Some (lo, hi) when n.Engine.Stats.loops > 0 ->
      let loops = float_of_int n.Engine.Stats.loops in
      let actual =
        float_of_int n.Engine.Stats.counters.Engine.Stats.rows_out
      in
      if actual < (lo *. loops) -. 0.5 || actual > (hi *. loops) +. 0.5 then
        Some
          (Printf.sprintf
             "certified cardinality bound violated at %s %s: actual rows %.0f \
              outside [%s, %s] × %d loops"
             n.Engine.Stats.op n.Engine.Stats.detail actual (fin lo) (fin hi)
             n.Engine.Stats.loops)
      else deeper ()
    | _ -> deeper ()
  in
  walk tree

let analyze ?jobs ?bloom ?vector ?batch catalog compiled =
  match compiled.shredded, compiled.physical with
  | Some exe, _ -> (
    let jobs = match jobs with Some j -> j | None -> default_jobs () in
    let before = Obs.Memory.snapshot () in
    match
      phase "execute" (fun () ->
          Shred.analyze ~jobs ?bloom ?vector ?batch catalog exe)
    with
    | v, tree ->
      tree.Engine.Stats.gc <-
        Some (Obs.Memory.delta ~before ~after:(Obs.Memory.snapshot ()));
      if Obs.Metrics.enabled () then begin
        record_exec_metrics (Engine.Stats.totals tree);
        Engine.Profile.record_metrics (Engine.Profile.of_node tree)
      end;
      record_vectorized_fraction tree;
      Ok (v, tree)
    | exception Cobj.Value.Type_error msg -> Error ("runtime error: " ^ msg)
    | exception Lang.Interp.Undefined msg -> Error ("undefined: " ^ msg))
  | None, None ->
    Error
      (Printf.sprintf
         "explain-analyze needs a physical plan (strategy %s executes in \
          the reference interpreter)"
         (strategy_name compiled.strategy))
  | None, Some pq -> (
    let jobs = match jobs with Some j -> j | None -> default_jobs () in
    let tree = Engine.Analyze.tree_of_query pq in
    Cost.annotate catalog pq.Engine.Physical.plan tree;
    (match !annotator_hook with
    | Some f -> f catalog pq tree
    | None -> ());
    let before = Obs.Memory.snapshot () in
    match
      phase "execute" (fun () ->
          Engine.Exec.rows_instrumented ~jobs ?bloom ?vector ?batch tree
            catalog Cobj.Env.empty pq.Engine.Physical.plan)
    with
    | produced ->
      (* Whole-run Gc delta on the root node: per-operator deltas would
         double-count children, and under --jobs the workers' allocation
         is not attributable to one operator anyway. *)
      tree.Engine.Stats.gc <-
        Some (Obs.Memory.delta ~before ~after:(Obs.Memory.snapshot ()));
      if Obs.Metrics.enabled () then begin
        record_exec_metrics (Engine.Stats.totals tree);
        Engine.Profile.record_metrics (Engine.Profile.of_node tree)
      end;
      record_vectorized_fraction tree;
      begin
        match bounds_violation tree with
        | Some msg -> Error msg
        | None ->
          let resultfn =
            Engine.Compile.expr catalog pq.Engine.Physical.result
          in
          Ok (Cobj.Value.set (List.map resultfn produced), tree)
      end
    | exception Cobj.Value.Type_error msg -> Error ("runtime error: " ^ msg)
    | exception Lang.Interp.Undefined msg -> Error ("undefined: " ^ msg))

let render_analysis ?(json = false) ?(timing = true) ?(profile = false)
    ?misest_floor ?catalog compiled tree =
  (* Self-time attribution is wall-clock and therefore timing-class: the
     --no-timing promise of jobs- and engine-invariant output silently
     wins over --profile. *)
  let profile = profile && timing in
  let misest =
    (* The shredded annotation tree mirrors the flat queries, not the
       nest-join physical plan — misestimation pairing does not apply. *)
    match catalog, compiled.physical, compiled.shredded with
    | Some cat, Some pq, None -> Some (Misest.of_query cat pq tree)
    | _ -> None
  in
  if json then
    Engine.Json.to_string
      (Engine.Json.Obj
         ([
            ("strategy", Engine.Json.String (strategy_name compiled.strategy));
            ( "query",
              Engine.Json.String (Fmt.str "%a" Lang.Pretty.pp compiled.source)
            );
            ("plan", Engine.Analyze.to_json ~timing tree);
          ]
         @ (if profile then
              [
                ( "profile",
                  Engine.Profile.to_json (Engine.Profile.of_node tree) );
              ]
            else [])
         @ (match misest with
           | Some entries -> [ ("misest", Misest.to_json entries) ]
           | None -> [])))
  else begin
    let buf = Buffer.create 512 in
    let ppf = Format.formatter_of_buffer buf in
    Fmt.pf ppf "strategy: %s@.query: %a@.@.%a@."
      (strategy_name compiled.strategy)
      Lang.Pretty.pp compiled.source
      (Engine.Analyze.pp ~timing)
      tree;
    (match misest with
    | Some entries ->
      Fmt.pf ppf "@.%a@." (Misest.pp ?floor:misest_floor) entries
    | None -> ());
    if profile then begin
      Fmt.pf ppf "@.%a" Engine.Profile.pp
        (Engine.Profile.of_node tree);
      Fmt.pf ppf "@.flame:@.%a" Engine.Profile.pp_flame tree
    end;
    (match tree.Engine.Stats.gc with
    | Some d when timing ->
      Fmt.pf ppf
        "@.gc: minor=%.0f major=%.0f promoted=%.0f top-heap-delta=%d words@."
        d.Obs.Memory.minor_words d.Obs.Memory.major_words
        d.Obs.Memory.promoted_words d.Obs.Memory.top_heap_words
    | _ -> ());
    Format.pp_print_flush ppf ();
    Buffer.contents buf
  end

let explain ?(costs = false) catalog compiled =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Fmt.pf ppf "strategy: %s@." (strategy_name compiled.strategy);
  Fmt.pf ppf "query: %a@." Lang.Pretty.pp compiled.source;
  (match compiled.logical with
  | Some lq -> Fmt.pf ppf "@.logical plan:@.%a@." Plan.pp_query lq
  | None -> Fmt.pf ppf "@.(no algebraic plan: reference interpreter)@.");
  (if compiled.strategy = Shredded && compiled.shredded = None then
     Fmt.pf ppf
       "@.(outside the flat fragment: falling back to nest-join \
        execution)@.");
  (match compiled.shredded with
  | Some exe ->
    Fmt.pf ppf "@.shredded program:@.%a@." Shred.pp_program
      (Shred.program_of exe)
  | None -> ());
  (match compiled.physical with
  | Some pq when compiled.shredded = None ->
    Fmt.pf ppf "@.physical plan:@.%a@." Engine.Physical.pp_query pq;
    if costs then
      Fmt.pf ppf
        "@.estimated: %.0f result rows, %.0f cost units (see Core.Cost)@."
        (Cost.query_card catalog pq) (Cost.query_cost catalog pq)
  | Some _ | None -> ());
  Format.pp_print_flush ppf ();
  Buffer.contents buf
