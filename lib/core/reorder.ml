module Ast = Lang.Ast
module Plan = Algebra.Plan
module Sset = Ast.String_set

(* The free variables a dangling-preserving operator's own expressions use. *)
let op_vars = function
  | `Nestjoin (pred, func) ->
    Sset.union (Ast.free_vars pred) (Ast.free_vars func)
  | `Semi pred | `Anti pred -> Ast.free_vars pred

(* Rebuild the operator over a new left operand. *)
let rebuild op left right =
  match op with
  | `Nestjoin (pred, func), label ->
    Plan.Nestjoin { pred; func; label = Option.get label; left; right }
  | `Semi pred, _ -> Plan.Semijoin { pred; left; right }
  | `Anti pred, _ -> Plan.Antijoin { pred; left; right }

(* Sink [op] (over operand [z]) below the join [A ⋈_jp B] when the
   operator's expressions touch only one side, and that side is estimated
   smaller than the join output. *)
let sink catalog op label jp a b z =
  let fv = op_vars op in
  let zvars = Sset.of_list (Plan.vars_of z) in
  let needed = Sset.diff fv zvars in
  let avars = Sset.of_list (Plan.vars_of a) in
  let bvars = Sset.of_list (Plan.vars_of b) in
  let join_card =
    Cost.card catalog (Plan.Join { pred = jp; left = a; right = b })
  in
  if Sset.subset needed avars && Cost.card catalog a < join_card then
    Some
      (Plan.Join { pred = jp; left = rebuild (op, label) a z; right = b })
  else if Sset.subset needed bvars && Cost.card catalog b < join_card then
    Some
      (Plan.Join { pred = jp; left = a; right = rebuild (op, label) b z })
  else None

let record_sink before after =
  if Steps.recording () then
    Steps.record ~rule:"sink-below-join" ~before ~after ()

let rec pass catalog plan =
  let plan = Plan.map_children (pass catalog) plan in
  match plan with
  | Plan.Nestjoin
      { pred; func; label; left = Plan.Join { pred = jp; left = a; right = b };
        right = z } -> begin
    match sink catalog (`Nestjoin (pred, func)) (Some label) jp a b z with
    | Some p ->
      record_sink plan p;
      pass catalog p
    | None -> plan
  end
  | Plan.Semijoin
      { pred; left = Plan.Join { pred = jp; left = a; right = b }; right = z }
    -> begin
    match sink catalog (`Semi pred) None jp a b z with
    | Some p ->
      record_sink plan p;
      pass catalog p
    | None -> plan
  end
  | Plan.Antijoin
      { pred; left = Plan.Join { pred = jp; left = a; right = b }; right = z }
    -> begin
    match sink catalog (`Anti pred) None jp a b z with
    | Some p ->
      record_sink plan p;
      pass catalog p
    | None -> plan
  end
  | _ -> plan

let plan = pass

let query catalog { Plan.plan = p; result } =
  { Plan.plan = pass catalog p; result }
