(** Rewrite-step recording for translation validation.

    Each optimizer pass ([Decorrelate], [Simplify], [Rewrite], [Reorder])
    records every applied rewrite as a [(rule, before, after)] triple while
    a {!collect} scope is active; outside a scope {!record} is free (one
    pointer test). The certifier ([Analysis.Certify]) replays the recorded
    steps and discharges per-rule proof obligations — see
    [docs/VERIFIER.md].

    [before]/[after] are the local subplans around the rewrite site. For
    the local algebraic identities (selection fusion and pushdown, dead
    nest-join elimination, unit elimination, join reordering) the pair is
    an exact equivalence: both sides denote the same row set. For the
    decorrelation steps [before] is the original Select-over-Apply (resp.
    Apply) shape and [after] the flattened join whose left operand has
    already consumed the remaining conjuncts — the per-rule obligations
    account for that (they check the classification side conditions rather
    than row-set equality of the operands). *)

type step = {
  rule : string;  (** rule identifier, e.g. ["apply-to-semijoin"] *)
  before : Algebra.Plan.plan;
  after : Algebra.Plan.plan;
  meta : (string * string) list;
      (** rule-specific payload (e.g. [("label", z)]) *)
}

val recording : unit -> bool
(** Whether a {!collect} scope is active (so callers can skip building the
    [before]/[after] witnesses entirely when not). *)

val record :
  rule:string ->
  ?meta:(string * string) list ->
  before:Algebra.Plan.plan ->
  after:Algebra.Plan.plan ->
  unit ->
  unit
(** Append a step to the active scope; no-op outside one. *)

val collect : (unit -> 'a) -> 'a * step list
(** Run [f] with an empty step buffer and return its result together with
    the steps recorded, in application order. Scopes are serialized by a
    mutex (concurrent server compilations do not interleave steps). *)
