module Ast = Lang.Ast
module Plan = Algebra.Plan
module P = Engine.Physical
module Sset = Ast.String_set

type impl_force =
  | Auto
  | Force_nl
  | Force_hash
  | Force_merge

type options = {
  force : impl_force;
  memo_applies : bool;
  use_indexes : bool;
}

let default_options = { force = Auto; memo_applies = false; use_indexes = true }

(* Combine equi pairs into single key expressions: one pair stays as-is,
   several become parallel tuples with positional labels. *)
let keys_of_pairs pairs =
  match pairs with
  | [ (l, r) ] -> (l, r)
  | _ ->
    let label i = Printf.sprintf "k%d" i in
    ( Ast.TupleE (List.mapi (fun i (l, _) -> (label i, l)) pairs),
      Ast.TupleE (List.mapi (fun i (_, r) -> (label i, r)) pairs) )

let residual_of = function
  | [] -> None
  | conjs -> Some (Ast.conj conjs)

(* Does the right operand admit index probing: a bare base-table scan whose
   key is a plain field of the scan variable? Returns the (table, var,
   field) triple. *)
let indexable right rkey =
  match right, rkey with
  | P.Scan { table; var }, Ast.Field (Ast.Var v, field)
    when String.equal var v ->
    Some (table, var, field)
  | _, _ -> None

(* Is [rkey] a declared key of the right operand? Only the simple base-table
   single-field case is recognized — enough for the §6 build-side rule. *)
let rkey_is_key_of catalog right rkey =
  match right with
  | P.Scan { table; var } -> begin
    match Cobj.Catalog.find table catalog with
    | Some t -> begin
      match Cobj.Table.key t, rkey with
      | Some [ field ], Ast.Field (Ast.Var v, f) ->
        String.equal v var && String.equal f field
      | _, _ -> false
    end
    | None -> false
  end
  | _ -> false

let cheapest catalog candidates =
  match candidates with
  | [] -> invalid_arg "Planner.cheapest: no candidates"
  | first :: rest ->
    List.fold_left
      (fun best cand ->
        if Cost.cost catalog cand < Cost.cost catalog best then cand else best)
      first rest

let allowed force candidates ~nl =
  match force with
  | Auto -> candidates
  | Force_nl -> [ nl ]
  | Force_hash ->
    let hash_only =
      List.filter
        (fun c ->
          match c with
          | P.Hash_join _ | P.Hash_semijoin _ | P.Hash_outerjoin _
          | P.Hash_nestjoin _ | P.Hash_nestjoin_left _ ->
            true
          | _ -> false)
        candidates
    in
    if hash_only = [] then [ nl ] else hash_only
  | Force_merge ->
    let merge_only =
      List.filter
        (fun c ->
          match c with
          | P.Merge_join _ | P.Merge_nestjoin _ | P.Merge_semijoin _
          | P.Merge_outerjoin _ ->
            true
          | _ -> false)
        candidates
    in
    if merge_only = [] then [ nl ] else merge_only

let rec plan_aux options catalog lp =
  let recur = plan_aux options catalog in
  let pick candidates ~nl =
    cheapest catalog (allowed options.force candidates ~nl)
  in
  match lp with
  | Plan.Unit -> P.Unit_row
  | Plan.Table { name; var } -> P.Scan { table = name; var }
  | Plan.Select { pred; input } -> P.Filter { pred; input = recur input }
  | Plan.Join { pred; left; right } -> begin
    let l = recur left and r = recur right in
    let nl = P.Nl_join { pred; left = l; right = r } in
    match
      Kim.equi_split ~left_vars:(Plan.vars_of left)
        ~right_vars:(Plan.vars_of right) pred
    with
    | None -> nl
    | Some (pairs, residual) ->
      let lkey, rkey = keys_of_pairs pairs in
      let residual = residual_of residual in
      let candidates =
        [
          nl;
          P.Hash_join { lkey; rkey; residual; left = l; right = r };
          (* The join is commutative, so both build orientations are
             candidates: the statistics-driven cost model weights the build
             (right) side heavier, so the cheaper orientation builds on the
             estimated-smaller operand. The unswapped form comes first —
             ties keep the source orientation. *)
          P.Hash_join
            { lkey = rkey; rkey = lkey; residual; left = r; right = l };
          P.Merge_join { lkey; rkey; residual; left = l; right = r };
        ]
      in
      let candidates =
        match indexable r rkey with
        | Some (table, var, field) when options.use_indexes ->
          P.Index_join { lkey; table; var; field; residual; left = l }
          :: candidates
        | _ -> candidates
      in
      pick ~nl candidates
  end
  | Plan.Semijoin { pred; left; right } ->
    plan_semi options catalog ~anti:false pred left right
  | Plan.Antijoin { pred; left; right } ->
    plan_semi options catalog ~anti:true pred left right
  | Plan.Outerjoin { pred; left; right } -> begin
    let l = recur left and r = recur right in
    let nl = P.Nl_outerjoin { pred; left = l; right = r } in
    match
      Kim.equi_split ~left_vars:(Plan.vars_of left)
        ~right_vars:(Plan.vars_of right) pred
    with
    | None -> nl
    | Some (pairs, residual) ->
      let lkey, rkey = keys_of_pairs pairs in
      let residual = residual_of residual in
      pick ~nl
        [
          nl;
          P.Hash_outerjoin { lkey; rkey; residual; left = l; right = r };
          P.Merge_outerjoin { lkey; rkey; residual; left = l; right = r };
        ]
  end
  | Plan.Nestjoin { pred; func; label; left; right } -> begin
    let l = recur left and r = recur right in
    let nl = P.Nl_nestjoin { pred; func; label; left = l; right = r } in
    match
      Kim.equi_split ~left_vars:(Plan.vars_of left)
        ~right_vars:(Plan.vars_of right) pred
    with
    | None -> nl
    | Some (pairs, residual) ->
      let lkey, rkey = keys_of_pairs pairs in
      let residual = residual_of residual in
      let candidates =
        [
          nl;
          P.Hash_nestjoin
            { lkey; rkey; residual; func; label; left = l; right = r };
          P.Merge_nestjoin
            { lkey; rkey; residual; func; label; left = l; right = r };
        ]
      in
      let candidates =
        (* Left-build streaming variant is only legal when the right key is
           unique on the right operand (§6). *)
        if rkey_is_key_of catalog r rkey then
          P.Hash_nestjoin_left
            { lkey; rkey; residual; func; label; left = l; right = r }
          :: candidates
        else candidates
      in
      let candidates =
        match indexable r rkey with
        | Some (table, var, field) when options.use_indexes ->
          P.Index_nestjoin
            { lkey; table; var; field; residual; func; label; left = l }
          :: candidates
        | _ -> candidates
      in
      (* §7: the nest join's left operand is preserved (every left row
         survives, extended with its grouped set), so it must stay on the
         probe side — unlike the commutative join, no swapped orientation
         may ever be generated for Δ. Asserted so a future "swap
         everywhere" refactor trips loudly. *)
      List.iter
        (function
          | P.Hash_nestjoin { left; _ }
          | P.Hash_nestjoin_left { left; _ }
          | P.Merge_nestjoin { left; _ }
          | P.Nl_nestjoin { left; _ } ->
            assert (left == l)
          | _ -> ())
        candidates;
      pick ~nl candidates
  end
  | Plan.Unnest { expr; var; input } ->
    P.Unnest_op { expr; var; input = recur input }
  | Plan.Nest { by; label; func; nulls; input } ->
    P.Nest_op { by; label; func; nulls; input = recur input }
  | Plan.Extend { var; expr; input } ->
    P.Extend_op { var; expr; input = recur input }
  | Plan.Project { vars; input } -> P.Project_op { vars; input = recur input }
  | Plan.Union { left; right } ->
    P.Union_op { left = recur left; right = recur right }
  | Plan.Apply { var; subquery; input } ->
    let input = recur input in
    let subquery = query_aux options catalog subquery in
    let uncorrelated =
      Sset.is_empty
        (Sset.inter
           (Engine.Exec.query_free_vars subquery)
           (Sset.of_list (P.vars_of input)))
    in
    let memo = uncorrelated || options.memo_applies in
    P.Apply_op { var; subquery; memo; input }

and plan_semi options catalog ~anti pred left right =
  let recur = plan_aux options catalog in
  let l = recur left and r = recur right in
  let nl = P.Nl_semijoin { pred; anti; left = l; right = r } in
  match
    Kim.equi_split ~left_vars:(Plan.vars_of left)
      ~right_vars:(Plan.vars_of right) pred
  with
  | None -> nl
  | Some (pairs, residual) ->
    let lkey, rkey = keys_of_pairs pairs in
    let residual = residual_of residual in
    let candidates =
      [
        nl;
        P.Hash_semijoin { lkey; rkey; residual; anti; left = l; right = r };
        P.Merge_semijoin { lkey; rkey; residual; anti; left = l; right = r };
      ]
    in
    let candidates =
      match indexable r rkey with
      | Some (table, var, field) when options.use_indexes ->
        P.Index_semijoin { lkey; table; var; field; residual; anti; left = l }
        :: candidates
      | _ -> candidates
    in
    cheapest catalog (allowed options.force ~nl candidates)

and query_aux options catalog { Plan.plan = lp; result } =
  { P.plan = plan_aux options catalog lp; result }

let plan ?(options = default_options) catalog lp = plan_aux options catalog lp

let query ?(options = default_options) catalog q = query_aux options catalog q
