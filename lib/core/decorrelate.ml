module Ast = Lang.Ast
module Plan = Algebra.Plan
module Sset = Ast.String_set


let split_conjuncts pred =
  let rec go acc = function
    | Ast.Binop (Ast.And, a, b) -> go (go acc b) a
    | p -> p :: acc
  in
  match pred with
  | Ast.Const (Cobj.Value.Bool true) -> []
  | _ -> go [] pred

(* --- variable renaming inside a query ---------------------------------- *)

let binders_of_plan plan =
  Plan.fold
    (fun acc node ->
      match node with
      | Plan.Table { var; _ }
      | Plan.Unnest { var; _ }
      | Plan.Extend { var; _ }
      | Plan.Apply { var; _ } ->
        var :: acc
      | Plan.Nestjoin { label; _ } | Plan.Nest { label; _ } -> label :: acc
      | Plan.Unit | Plan.Select _ | Plan.Join _ | Plan.Semijoin _
      | Plan.Antijoin _ | Plan.Outerjoin _ | Plan.Project _ | Plan.Union _ ->
        acc)
    [] plan

let rename_everywhere v v' query =
  let sub e = Ast.subst v (Ast.Var v') e in
  let rb x = if String.equal x v then v' else x in
  let rec rp plan =
    match plan with
    | Plan.Unit -> plan
    | Plan.Table r -> Plan.Table { r with var = rb r.var }
    | Plan.Select r -> Plan.Select { pred = sub r.pred; input = rp r.input }
    | Plan.Join r ->
      Plan.Join { pred = sub r.pred; left = rp r.left; right = rp r.right }
    | Plan.Semijoin r ->
      Plan.Semijoin { pred = sub r.pred; left = rp r.left; right = rp r.right }
    | Plan.Antijoin r ->
      Plan.Antijoin { pred = sub r.pred; left = rp r.left; right = rp r.right }
    | Plan.Outerjoin r ->
      Plan.Outerjoin
        { pred = sub r.pred; left = rp r.left; right = rp r.right }
    | Plan.Nestjoin r ->
      Plan.Nestjoin
        {
          pred = sub r.pred;
          func = sub r.func;
          label = rb r.label;
          left = rp r.left;
          right = rp r.right;
        }
    | Plan.Unnest r ->
      Plan.Unnest { expr = sub r.expr; var = rb r.var; input = rp r.input }
    | Plan.Nest r ->
      Plan.Nest
        {
          by = List.map rb r.by;
          label = rb r.label;
          func = sub r.func;
          nulls = List.map rb r.nulls;
          input = rp r.input;
        }
    | Plan.Extend r ->
      Plan.Extend { var = rb r.var; expr = sub r.expr; input = rp r.input }
    | Plan.Project r ->
      Plan.Project { vars = List.map rb r.vars; input = rp r.input }
    | Plan.Apply r ->
      Plan.Apply
        {
          var = rb r.var;
          subquery =
            { plan = rp r.subquery.Plan.plan; result = sub r.subquery.result };
          input = rp r.input;
        }
    | Plan.Union r -> Plan.Union { left = rp r.left; right = rp r.right }
  in
  { Plan.plan = rp query.Plan.plan; result = sub query.Plan.result }

(* Rename subquery binders clashing with [avoid]. Renaming [v] globally is
   only sound when [v] is bound exactly once in the subquery and is not also
   a free (correlation) reference of it; otherwise give up. *)
let freshen_clashes avoid query =
  let binders = binders_of_plan query.Plan.plan in
  let clashes = List.filter (fun v -> Sset.mem v avoid) binders in
  let all_used =
    ref
      (Sset.union avoid
         (Sset.union
            (Sset.of_list binders)
            (Sset.union
               (Plan.query_free_vars query)
               (Classify.all_vars_of query.Plan.result))))
  in
  let rec go query = function
    | [] -> Some query
    | v :: rest ->
      let occurrences =
        List.length (List.filter (String.equal v) binders)
      in
      if occurrences <> 1 || Sset.mem v (Plan.query_free_vars query) then None
      else begin
        let v' = Ast.fresh !all_used v in
        all_used := Sset.add v' !all_used;
        go (rename_everywhere v v' query) rest
      end
  in
  go query clashes

(* --- subquery splitting ------------------------------------------------- *)

(* Split a subquery into an uncorrelated base plan plus the conjunction of
   correlation predicates referencing [outer] variables.

   Peeling passes through selections and through row-preserving,
   outer-independent wrappers (Apply for a residual inner subquery, Extend,
   Unnest) — re-wrapping them onto the reduced base. Moving the collected
   selections above those wrappers is sound: Apply and Extend preserve rows
   1:1, and a conjunct that does not mention the unnest variable commutes
   with Unnest. *)
let split_subquery outer query =
  let avoid = outer in
  match freshen_clashes avoid query with
  | None -> None
  | Some query ->
    let outer_free e =
      not (Sset.is_empty (Sset.inter (Ast.free_vars e) outer))
    in
    let rec peel conjs wrap plan =
      match plan with
      | Plan.Select { pred; input } ->
        peel (split_conjuncts pred @ conjs) wrap input
      | Plan.Apply r
        when Sset.is_empty
               (Sset.inter (Plan.query_free_vars r.subquery) outer) ->
        peel conjs
          (fun base -> wrap (Plan.Apply { r with input = base }))
          r.input
      | Plan.Extend r when not (outer_free r.expr) ->
        peel conjs
          (fun base -> wrap (Plan.Extend { r with input = base }))
          r.input
      | Plan.Unnest r when not (outer_free r.expr) ->
        (* conjuncts gathered so far may not mention the unnest variable if
           they are to move above it — they cannot: they were collected
           above this node, where [r.var] was already in scope… conjuncts
           mentioning it simply stay in [conjs] and end up either in the
           join predicate (fine: merged rows bind it) or in the top
           selection over the wrapped base (also fine). *)
        peel conjs
          (fun base -> wrap (Plan.Unnest { r with input = base }))
          r.input
      | _ -> (conjs, wrap, plan)
    in
    let conjs, wrap, core = peel [] Fun.id query.Plan.plan in
    let base = wrap core in
    if not (Sset.is_empty (Sset.inter (Plan.free_vars base) outer)) then
      None (* deep correlation inside the base plan *)
    else begin
      let corr, uncorr = List.partition outer_free conjs in
      let base =
        match uncorr with
        | [] -> base
        | _ :: _ -> Plan.Select { pred = Ast.conj uncorr; input = base }
      in
      Some (base, Ast.conj corr, query.Plan.result)
    end

(* --- the rewrite -------------------------------------------------------- *)

(* Live variables a node's own expressions contribute for its children. *)
let node_expr_vars = function
  | Plan.Unit | Plan.Table _ -> Sset.empty
  | Plan.Select { pred; _ } -> Ast.free_vars pred
  | Plan.Join { pred; _ }
  | Plan.Semijoin { pred; _ }
  | Plan.Antijoin { pred; _ }
  | Plan.Outerjoin { pred; _ } ->
    Ast.free_vars pred
  | Plan.Nestjoin { pred; func; _ } ->
    Sset.union (Ast.free_vars pred) (Ast.free_vars func)
  | Plan.Unnest { expr; _ } | Plan.Extend { expr; _ } -> Ast.free_vars expr
  | Plan.Nest { func; by; _ } ->
    Sset.union (Ast.free_vars func) (Sset.of_list by)
  | Plan.Project { vars; _ } -> Sset.of_list vars
  | Plan.Apply { subquery; _ } -> Plan.query_free_vars subquery
  | Plan.Union _ -> Sset.empty

let rec rewrite live plan =
  match plan with
  | Plan.Select { pred; input = Plan.Apply _ as chain } ->
    (* A WHERE clause above one or more hoisted subqueries. [consume] walks
       the Apply chain outermost-first, dispatching to each subquery the
       conjuncts that mention its variable; leftover conjuncts (z-free
       ones, and those whose nest join keeps the variable bound) are
       re-applied on top. Handling the whole chain at once supports
       multiple subqueries per WHERE clause (future work in the paper). *)
    let flattened, leftover = consume live (split_conjuncts pred) chain in
    let plan' =
      match leftover with
      | [] -> flattened
      | _ :: _ -> Plan.Select { pred = Ast.conj leftover; input = flattened }
    in
    rewrite_children live plan'
  | Plan.Unnest { expr = Ast.Var zv; var = v; input = Plan.Apply { var = z; subquery; input } }
    when String.equal zv z && not (Sset.mem z live) ->
    (* UNNEST over a subquery result: §5's collapsible case — join+extend. *)
    let outer = Sset.of_list (Plan.vars_of input) in
    begin
      match split_subquery outer subquery with
      | Some (base, corr, result) ->
        let after =
          Plan.Extend
            {
              var = v;
              expr = result;
              input = Plan.Join { pred = corr; left = input; right = base };
            }
        in
        if Steps.recording () then
          Steps.record ~rule:"unnest-apply-to-join"
            ~meta:[ ("label", z) ]
            ~before:plan ~after ();
        rewrite_children live after
      | None -> rewrite_children live plan
    end
  | Plan.Apply { var = z; subquery; input } ->
    let outer = Sset.of_list (Plan.vars_of input) in
    if Sset.is_empty (Sset.inter (Plan.query_free_vars subquery) outer) then
      (* Uncorrelated: a constant per ambient environment; the planner
         memoizes it into one evaluation. *)
      rewrite_children live plan
    else begin
      match split_subquery outer subquery with
      | Some (base, corr, result) ->
        let after =
          Plan.Nestjoin
            { pred = corr; func = result; label = z; left = input; right = base }
        in
        if Steps.recording () then
          Steps.record ~rule:"apply-to-nestjoin"
            ~meta:[ ("label", z) ]
            ~before:plan ~after ();
        rewrite_children live after
      | None -> rewrite_children live plan
    end
  | _ -> rewrite_children live plan

(* Walk an Apply chain under a selection. Returns the flattened plan and
   the conjuncts that must remain as a selection above it. *)
and consume live conjs plan =
  match plan with
  | Plan.Apply { var = z; subquery; input } ->
    let z_conjs, rest = List.partition (fun c -> Ast.occurs_free z c) conjs in
    let outer = Sset.of_list (Plan.vars_of input) in
    let correlated =
      not
        (Sset.is_empty
           (Sset.inter (Plan.query_free_vars subquery) outer))
    in
    let grouping_form split_result =
      (* nest join keeps [z] bound: its conjuncts stay above *)
      match split_result with
      | Some (base, corr, result) ->
        let inner, leftover = consume live rest input in
        let nj =
          Plan.Nestjoin
            { pred = corr; func = result; label = z; left = inner;
              right = base }
        in
        if Steps.recording () then
          Steps.record ~rule:"apply-to-nestjoin"
            ~meta:[ ("label", z) ]
            ~before:(Plan.Apply { var = z; subquery; input })
            ~after:nj ();
        (nj, z_conjs @ leftover)
      | None ->
        let inner, leftover = consume live rest input in
        (Plan.Apply { var = z; subquery; input = inner }, z_conjs @ leftover)
    in
    if not correlated then
      (* constant subquery: leave the Apply (memoized by the planner) —
         unless its predicate still flattens it into a join below *)
      match z_conjs, split_subquery outer subquery with
      | [ zpred ], (Some _ as split_result) when not (Sset.mem z live) ->
        flatten_one live z ~subquery zpred rest input split_result
          grouping_form
      | _, _ ->
        let inner, leftover = consume live rest input in
        (Plan.Apply { var = z; subquery; input = inner }, z_conjs @ leftover)
    else begin
      match z_conjs, split_subquery outer subquery with
      | [ zpred ], (Some _ as split_result) when not (Sset.mem z live) ->
        flatten_one live z ~subquery zpred rest input split_result
          grouping_form
      | _, split_result -> grouping_form split_result
    end
  | _ -> (rewrite live plan, conjs)

and flatten_one live z ~subquery zpred rest input split_result grouping_form =
  match split_result with
  | None -> grouping_form None
  | Some (base, corr, result) -> begin
    match Classify.classify ~z zpred with
    | Classify.Needs_grouping _ -> grouping_form split_result
    | (Classify.Exists { var; body } | Classify.Not_exists { var; body }) as
      verdict ->
      (* the join predicate may reference variables of deeper applies in
         the chain; keep them alive for the recursion below *)
      let extra_live = Sset.remove z (Ast.free_vars body) in
      let inner, leftover = consume (Sset.union live extra_live) rest input in
      let joinpred =
        Ast.conj (split_conjuncts corr @ [ Ast.subst var result body ])
      in
      let join =
        match verdict with
        | Classify.Exists _ ->
          Plan.Semijoin { pred = joinpred; left = inner; right = base }
        | Classify.Not_exists _ ->
          Plan.Antijoin { pred = joinpred; left = inner; right = base }
        | Classify.Needs_grouping _ -> assert false
      in
      if Steps.recording () then
        Steps.record
          ~rule:
            (match verdict with
            | Classify.Exists _ -> "apply-to-semijoin"
            | _ -> "apply-to-antijoin")
          ~meta:[ ("label", z) ]
          ~before:
            (Plan.Select
               {
                 pred = zpred;
                 input = Plan.Apply { var = z; subquery; input };
               })
          ~after:join ();
      (join, leftover)
  end

and rewrite_children live plan =
  let child_live = Sset.union live (node_expr_vars plan) in
  match plan with
  | Plan.Apply r ->
    (* The subquery is its own scope: its applies see liveness from its
       result expression only. *)
    Plan.Apply
      {
        r with
        input = rewrite child_live r.input;
        subquery =
          {
            plan =
              rewrite (Ast.free_vars r.subquery.Plan.result) r.subquery.Plan.plan;
            result = r.subquery.result;
          };
      }
  | _ -> Plan.map_children (rewrite child_live) plan

let plan_with_live ~live plan = rewrite live plan

let query { Plan.plan; result } =
  { Plan.plan = rewrite (Ast.free_vars result) plan; result }

let split_subquery_for_baselines = split_subquery
