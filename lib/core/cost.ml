module Plan = Algebra.Plan
module P = Engine.Physical
module Ast = Lang.Ast
module Cstats = Cobj.Stats

(* Fallback selectivity constants, used when catalog statistics cannot
   resolve a key (computed keys, intermediate operands): coarse but stable
   across benches. *)
let sel_filter = 0.33
let sel_equi = 0.1
let sel_semi = 0.5
let avg_set = 4.0

(* Hash builds are costlier than probes (allocation, bucket chaining), and
   the build table has to be resident — weighting the build side steers the
   planner toward building on the smaller operand when the statistics can
   tell the operands apart (the [Hash_join] orientation candidates in
   [Planner]). *)
let build_weight = 2.0

let table_card catalog name =
  match Cstats.row_count catalog name with
  | Some n -> float_of_int n
  | None -> 1000.0

(* --- resolving key expressions to base-table statistics ------------------ *)

(* The base table whose scan binds [v] somewhere in the subtree. Variable
   names are unique per query (the translator generates fresh ones), so a
   loose subtree search is sound for estimation. Index operators bind their
   probe variable themselves. *)
let rec pvar_table plan v =
  let here =
    match plan with
    | P.Scan { table; var }
    | P.Index_join { table; var; _ }
    | P.Index_nestjoin { table; var; _ } ->
      if String.equal var v then Some table else None
    | _ -> None
  in
  match here with
  | Some _ -> here
  | None ->
    List.find_map (fun c -> pvar_table c v) (Engine.Analyze.children plan)

let rec lvar_table plan v =
  match plan with
  | Plan.Unit -> None
  | Plan.Table { name; var } -> if String.equal var v then Some name else None
  | Plan.Select { input; _ }
  | Plan.Unnest { input; _ }
  | Plan.Nest { input; _ }
  | Plan.Extend { input; _ }
  | Plan.Project { input; _ } ->
    lvar_table input v
  | Plan.Join { left; right; _ }
  | Plan.Semijoin { left; right; _ }
  | Plan.Antijoin { left; right; _ }
  | Plan.Outerjoin { left; right; _ }
  | Plan.Nestjoin { left; right; _ }
  | Plan.Union { left; right } -> (
    match lvar_table left v with
    | Some _ as r -> r
    | None -> lvar_table right v)
  | Plan.Apply { subquery; input; _ } -> (
    match lvar_table input v with
    | Some _ as r -> r
    | None -> lvar_table subquery.Plan.plan v)

(* NDV of a key expression over an operand, via catalog statistics:
   [x.f] resolves to the field's NDV, a bare [x] to the table's row count,
   and a parallel tuple of resolvable keys to the product (independence).
   [None] when any component is opaque. [var_table] abstracts over
   logical/physical operands. *)
let rec key_ndv catalog var_table key =
  match key with
  | Ast.Field (Ast.Var v, f) -> (
    match var_table v with
    | Some table ->
      Option.map float_of_int (Cstats.ndv catalog ~table ~field:f)
    | None -> None)
  | Ast.Var v ->
    Option.map float_of_int
      (Option.bind (var_table v) (fun t -> Cstats.row_count catalog t))
  | Ast.TupleE fields ->
    List.fold_left
      (fun acc (_, e) ->
        match acc, key_ndv catalog var_table e with
        | Some a, Some b -> Some (a *. b)
        | _ -> None)
      (Some 1.0) fields
  | _ -> None

(* NDV capped by the operand's own cardinality (a side cannot carry more
   distinct keys than rows). *)
let capped_ndv ndv side_card =
  Option.map (fun d -> Float.max 1.0 (Float.min d (Float.max 1.0 side_card))) ndv

(* Equi-join selectivity 1/max(ndv_l, ndv_r) — the classic System-R
   estimate, generalized to take whichever side resolves. *)
let equi_sel dl dr =
  match dl, dr with
  | Some dl, Some dr -> Some (1.0 /. Float.max dl dr)
  | Some d, None | None, Some d -> Some (1.0 /. d)
  | None, None -> None

(* Fraction of left rows with at least one right match, under key-domain
   containment: min(dl, dr) left key values find partners. Dangling-heavy
   workloads show up as dl >> dr, which is exactly when the estimate
   drops. *)
let semi_frac dl dr =
  match dl, dr with
  | Some dl, Some dr when dl > 0.0 -> Some (Float.min 1.0 (dr /. dl))
  | _ -> None

let avg_card_of catalog var_table expr =
  match expr with
  | Ast.Field (Ast.Var v, f) ->
    Option.bind (var_table v) (fun table ->
        Cstats.avg_set_card catalog ~table ~field:f)
  | _ -> None

(* --- logical cardinalities ----------------------------------------------- *)

let split_keys left right pred =
  Kim.equi_split ~left_vars:(Plan.vars_of left)
    ~right_vars:(Plan.vars_of right) pred

(* Combined per-side NDV over all equi pairs (independence product),
   [None] when any pair fails to resolve on that side. *)
let pairs_ndv catalog var_table side pairs =
  List.fold_left
    (fun acc pair ->
      let e = side pair in
      match acc, key_ndv catalog var_table e with
      | Some a, Some b -> Some (a *. b)
      | _ -> None)
    (Some 1.0) pairs

let rec card catalog plan =
  match plan with
  | Plan.Unit -> 1.0
  | Plan.Table { name; _ } -> table_card catalog name
  | Plan.Select { input; _ } -> sel_filter *. card catalog input
  | Plan.Join { pred; left; right } ->
    let l = card catalog left and r = card catalog right in
    let sel =
      match pred with
      | Ast.Const (Cobj.Value.Bool true) -> 1.0
      | _ -> (
        match split_keys left right pred with
        | Some (pairs, _) -> (
          let dl =
            capped_ndv (pairs_ndv catalog (lvar_table left) fst pairs) l
          in
          let dr =
            capped_ndv (pairs_ndv catalog (lvar_table right) snd pairs) r
          in
          match equi_sel dl dr with Some s -> s | None -> sel_equi)
        | None -> sel_equi)
    in
    l *. r *. sel
  | Plan.Semijoin { pred; left; right } ->
    lsemi_frac catalog pred left right *. card catalog left
  | Plan.Antijoin { pred; left; right } ->
    (1.0 -. lsemi_frac catalog pred left right) *. card catalog left
  | Plan.Outerjoin { left; right; _ } ->
    Float.max (card catalog left)
      (card catalog left *. card catalog right *. sel_equi)
  | Plan.Nestjoin { left; _ } -> card catalog left
  | Plan.Unnest { expr; input; _ } ->
    let per_row =
      match avg_card_of catalog (lvar_table input) expr with
      | Some c -> Float.max 1.0 c
      | None -> avg_set
    in
    per_row *. card catalog input
  | Plan.Nest { input; _ } -> 0.5 *. card catalog input
  | Plan.Extend { input; _ } | Plan.Apply { input; _ } -> card catalog input
  | Plan.Project { input; _ } -> 0.8 *. card catalog input
  | Plan.Union { left; right } -> card catalog left +. card catalog right

and lsemi_frac catalog pred left right =
  match split_keys left right pred with
  | Some (pairs, _) -> (
    let dl =
      capped_ndv
        (pairs_ndv catalog (lvar_table left) fst pairs)
        (card catalog left)
    in
    let dr =
      capped_ndv
        (pairs_ndv catalog (lvar_table right) snd pairs)
        (card catalog right)
    in
    match semi_frac dl dr with Some f -> f | None -> sel_semi)
  | None -> sel_semi

let log2 x = if x < 2.0 then 1.0 else Float.log x /. Float.log 2.0

(* --- proven-key oracle --------------------------------------------------- *)

(* When catalog statistics cannot resolve a key expression (computed keys,
   intermediate operands), a proven candidate key of the operand still gives
   an exact answer: a key has one row per distinct value, so
   ndv(key) = |operand|. The oracle lives in the [analysis] library
   ([Analysis.Certify.install] registers [Analysis.Props.key_of]); the hook
   keeps the dependency one-way, like the pipeline's verifier hook. *)
let key_hint : (Cobj.Catalog.t -> P.t -> Ast.expr -> bool) option ref =
  ref None

let set_key_hint h = key_hint := h

let proven_key catalog side key =
  match !key_hint with Some f -> f catalog side key | None -> false

(* --- physical cardinalities (mirrors [card]) ----------------------------- *)

let rec pcard catalog plan =
  let side_ndv side key =
    let ndv =
      match key_ndv catalog (pvar_table side) key with
      | Some _ as d -> d
      | None ->
        (* statistics failed — fall back to the proven-key oracle, which
           turns the estimate exact instead of the [sel_*] constants *)
        if proven_key catalog side key then Some (pcard catalog side)
        else None
    in
    capped_ndv ndv (pcard catalog side)
  in
  let equi left right lkey rkey =
    match equi_sel (side_ndv left lkey) (side_ndv right rkey) with
    | Some s -> s
    | None -> sel_equi
  in
  let semi left right lkey rkey =
    match semi_frac (side_ndv left lkey) (side_ndv right rkey) with
    | Some f -> f
    | None -> sel_semi
  in
  match plan with
  | P.Unit_row -> 1.0
  | P.Scan { table; _ } -> table_card catalog table
  | P.Filter { input; _ } -> sel_filter *. pcard catalog input
  | P.Nl_join { left; right; _ } ->
    pcard catalog left *. pcard catalog right *. sel_equi
  | P.Hash_join { left; right; lkey; rkey; _ }
  | P.Merge_join { left; right; lkey; rkey; _ } ->
    pcard catalog left *. pcard catalog right *. equi left right lkey rkey
  | P.Nl_semijoin { anti; left; _ } ->
    (if anti then 1.0 -. sel_semi else sel_semi) *. pcard catalog left
  | P.Hash_semijoin { anti; left; right; lkey; rkey; _ }
  | P.Merge_semijoin { anti; left; right; lkey; rkey; _ } ->
    let f = semi left right lkey rkey in
    (if anti then 1.0 -. f else f) *. pcard catalog left
  | P.Nl_outerjoin { left; right; _ }
  | P.Hash_outerjoin { left; right; _ }
  | P.Merge_outerjoin { left; right; _ } ->
    Float.max (pcard catalog left)
      (pcard catalog left *. pcard catalog right *. sel_equi)
  | P.Nl_nestjoin { left; _ }
  | P.Hash_nestjoin { left; _ }
  | P.Hash_nestjoin_left { left; _ }
  | P.Merge_nestjoin { left; _ } ->
    pcard catalog left
  | P.Unnest_op { expr; input; _ } ->
    let per_row =
      match avg_card_of catalog (pvar_table input) expr with
      | Some c -> Float.max 1.0 c
      | None -> avg_set
    in
    per_row *. pcard catalog input
  | P.Nest_op { input; _ } -> 0.5 *. pcard catalog input
  | P.Extend_op { input; _ } | P.Apply_op { input; _ } -> pcard catalog input
  | P.Project_op { input; _ } -> 0.8 *. pcard catalog input
  | P.Union_op { left; right } -> pcard catalog left +. pcard catalog right
  | P.Index_join { table; field; left; _ } ->
    let sel =
      match Cstats.ndv catalog ~table ~field with
      | Some d -> 1.0 /. float_of_int d
      | None -> sel_equi
    in
    pcard catalog left *. table_card catalog table *. sel
  | P.Index_semijoin { anti; left; _ } ->
    (if anti then 1.0 -. sel_semi else sel_semi) *. pcard catalog left
  | P.Index_nestjoin { left; _ } -> pcard catalog left

let rec cost catalog plan =
  let c = cost catalog and n = pcard catalog in
  (* probe side + weighted build side: what every hash operator pays on top
     of producing its operands *)
  let hash_work ~probe ~build = n probe +. (build_weight *. n build) in
  match plan with
  | P.Unit_row -> 1.0
  | P.Scan { table; _ } -> table_card catalog table
  | P.Filter { pred = _; input } -> c input +. n input
  | P.Nl_join { left; right; _ } -> c left +. c right +. (n left *. n right)
  | P.Hash_join { left; right; _ } ->
    c left +. c right +. hash_work ~probe:left ~build:right +. n plan
  | P.Merge_join { left; right; _ } ->
    c left +. c right
    +. (n left *. log2 (n left))
    +. (n right *. log2 (n right))
    +. n plan
  | P.Nl_semijoin { left; right; _ } ->
    c left +. c right +. (0.5 *. n left *. n right)
  | P.Hash_semijoin { left; right; _ } ->
    c left +. c right +. hash_work ~probe:left ~build:right
  | P.Merge_semijoin { left; right; _ } ->
    c left +. c right
    +. (n left *. log2 (n left))
    +. (n right *. log2 (n right))
  | P.Nl_outerjoin { left; right; _ } ->
    c left +. c right +. (n left *. n right)
  | P.Hash_outerjoin { left; right; _ } ->
    c left +. c right +. hash_work ~probe:left ~build:right +. n plan
  | P.Merge_outerjoin { left; right; _ } ->
    c left +. c right
    +. (n left *. log2 (n left))
    +. (n right *. log2 (n right))
    +. n plan
  | P.Nl_nestjoin { left; right; _ } -> c left +. c right +. (n left *. n right)
  | P.Hash_nestjoin { left; right; _ } ->
    c left +. c right +. hash_work ~probe:left ~build:right +. n plan
  | P.Hash_nestjoin_left { left; right; _ } ->
    (* §6 variant: the build side is the left operand *)
    c left +. c right +. hash_work ~probe:right ~build:left +. n plan
  | P.Merge_nestjoin { left; right; _ } ->
    c left +. c right
    +. (n left *. log2 (n left))
    +. (n right *. log2 (n right))
    +. n plan
  | P.Unnest_op { input; _ } -> c input +. n plan
  | P.Nest_op { input; _ } -> c input +. n input
  | P.Extend_op { input; _ } | P.Project_op { input; _ } -> c input +. n input
  | P.Apply_op { subquery; memo; input; _ } ->
    let per = query_cost_aux catalog subquery in
    let evaluations = if memo then Float.min (n input) 64.0 else n input in
    c input +. (evaluations *. per)
  | P.Union_op { left; right } ->
    c left +. c right +. n plan
  | P.Index_join { table; field; left; _ }
  | P.Index_semijoin { table; field; left; _ }
  | P.Index_nestjoin { table; field; left; _ } ->
    (* probing is O(1) per left row; a cold index pays one build pass *)
    let build =
      match Cobj.Catalog.find table catalog with
      | Some t when Cobj.Table.has_index field t -> 0.0
      | _ -> table_card catalog table
    in
    c left +. n left +. build +. n plan

and query_cost_aux catalog { P.plan; _ } = cost catalog plan +. pcard catalog plan

let query_cost = query_cost_aux

let query_card catalog { P.plan; _ } = pcard catalog plan

let card_physical = pcard

(* Fill a [Stats.node] annotation tree with estimated cardinalities. The
   tree shape comes from [Engine.Analyze.tree_of_plan], so operands line up
   with [Engine.Analyze.children]. *)
let rec annotate catalog plan (node : Engine.Stats.node) =
  node.Engine.Stats.est_rows <- pcard catalog plan;
  let operands = Engine.Analyze.children plan in
  if List.length operands = List.length node.Engine.Stats.children then
    List.iter2 (annotate catalog) operands node.Engine.Stats.children

(* --- naming the inputs behind an estimate -------------------------------- *)

let pp_e = Lang.Pretty.pp

(* Which statistic a key expression resolved to — [ndv(T.f)=13],
   [rows(T)=40] — or why it fell back to a constant. This is the
   "responsible input" line of the misestimation report: when an operator's
   estimate is off, it says which [Cobj.Stats] number (or which fallback)
   produced it. *)
let rec describe_key catalog side key =
  match key with
  | Ast.Field (Ast.Var v, f) -> (
    match pvar_table side v with
    | Some table -> (
      match Cstats.ndv catalog ~table ~field:f with
      | Some d -> Printf.sprintf "ndv(%s.%s)=%d" table f d
      | None -> Printf.sprintf "ndv(%s.%s) unknown" table f)
    | None -> Fmt.str "[%a] not bound to a base table" pp_e key)
  | Ast.Var v -> (
    match pvar_table side v with
    | Some table ->
      Printf.sprintf "rows(%s)=%.0f" table (table_card catalog table)
    | None -> Fmt.str "[%a] not bound to a base table" pp_e key)
  | Ast.TupleE fields ->
    String.concat " × "
      (List.map (fun (_, e) -> describe_key catalog side e) fields)
  | _ -> Fmt.str "[%a] opaque, fallback constants" pp_e key

let explain catalog plan =
  let key = describe_key catalog in
  match plan with
  | P.Unit_row -> "constant single row"
  | P.Scan { table; _ } ->
    Printf.sprintf "rows(%s)=%.0f from catalog statistics" table
      (table_card catalog table)
  | P.Filter _ ->
    Printf.sprintf
      "|input| × fixed filter selectivity %.2f (predicates are not analyzed)"
      sel_filter
  | P.Nl_join _ ->
    Printf.sprintf
      "|left| × |right| × fixed selectivity %.2f (nl-join keys are not \
       analyzed)"
      sel_equi
  | P.Hash_join { left; right; lkey; rkey; _ }
  | P.Merge_join { left; right; lkey; rkey; _ } ->
    Printf.sprintf "|left| × |right| / max ndv: %s, %s" (key left lkey)
      (key right rkey)
  | P.Nl_semijoin { anti; _ } ->
    Printf.sprintf "|left| × fixed %s fraction (nl predicate not analyzed), \
                    sel=%.2f"
      (if anti then "antijoin" else "semijoin")
      (if anti then 1.0 -. sel_semi else sel_semi)
  | P.Hash_semijoin { left; right; lkey; rkey; anti; _ }
  | P.Merge_semijoin { left; right; lkey; rkey; anti; _ } ->
    Printf.sprintf "%smatch fraction min(1, ndv ratio): probe %s vs build %s"
      (if anti then "1 − " else "")
      (key left lkey) (key right rkey)
  | P.Nl_outerjoin _ | P.Hash_outerjoin _ | P.Merge_outerjoin _ ->
    Printf.sprintf
      "max(|left|, |left| × |right| × fixed selectivity %.2f)" sel_equi
  | P.Nl_nestjoin _ | P.Hash_nestjoin _ | P.Hash_nestjoin_left _
  | P.Merge_nestjoin _ | P.Index_nestjoin _ ->
    "nest join preserves |left| (one output row per left row)"
  | P.Unnest_op { expr; input; _ } -> (
    match avg_card_of catalog (pvar_table input) expr with
    | Some c ->
      Fmt.str "|input| × avg set card %.1f measured for [%a]" (Float.max 1.0 c)
        pp_e expr
    | None ->
      Fmt.str "|input| × fixed avg set card %.1f ([%a] unresolved)" avg_set
        pp_e expr)
  | P.Nest_op _ ->
    "0.5 × |input| (fixed grouping factor; group keys are not analyzed)"
  | P.Extend_op _ | P.Apply_op _ -> "|input| (one output row per input row)"
  | P.Project_op _ -> "0.8 × |input| (fixed dedup factor)"
  | P.Union_op _ -> "|left| + |right|"
  | P.Index_join { table; field; _ } -> (
    match Cstats.ndv catalog ~table ~field with
    | Some d ->
      Printf.sprintf "|left| × rows(%s)=%.0f / ndv(%s.%s)=%d" table
        (table_card catalog table) table field d
    | None ->
      Printf.sprintf
        "|left| × rows(%s)=%.0f × fixed selectivity %.2f (ndv(%s.%s) \
         unknown)"
        table (table_card catalog table) sel_equi table field)
  | P.Index_semijoin { anti; _ } ->
    Printf.sprintf "|left| × fixed %s fraction %.2f (index key ndv unused)"
      (if anti then "antijoin" else "semijoin")
      (if anti then 1.0 -. sel_semi else sel_semi)
