module Plan = Algebra.Plan
module P = Engine.Physical

(* Fixed selectivity constants: coarse but stable across benches. *)
let sel_filter = 0.33
let sel_equi = 0.1
let sel_semi = 0.5
let avg_set = 4.0

let table_card catalog name =
  match Cobj.Catalog.find name catalog with
  | Some t -> float_of_int (Cobj.Table.cardinality t)
  | None -> 1000.0

(* Selectivity of an equi-join keyed by [rkey] against the right operand:
   1 / distinct(rkey) when the right side is a base-table scan and the key
   is a plain field — the classic System-R estimate; [sel_equi] otherwise. *)
let equi_selectivity catalog right rkey =
  match right, rkey with
  | P.Scan { table; var }, Lang.Ast.Field (Lang.Ast.Var v, f)
    when String.equal var v -> begin
    match Cobj.Catalog.find table catalog with
    | Some t -> begin
      match Cobj.Table.distinct_count f t with
      | Some d when d > 0 -> 1.0 /. float_of_int d
      | _ -> sel_equi
    end
    | None -> sel_equi
  end
  | _, _ -> sel_equi

let rec card catalog plan =
  match plan with
  | Plan.Unit -> 1.0
  | Plan.Table { name; _ } -> table_card catalog name
  | Plan.Select { input; _ } -> sel_filter *. card catalog input
  | Plan.Join { pred; left; right } ->
    let l = card catalog left and r = card catalog right in
    let sel =
      match pred with
      | Lang.Ast.Const (Cobj.Value.Bool true) -> 1.0
      | _ -> sel_equi
    in
    l *. r *. sel
  | Plan.Semijoin { left; _ } | Plan.Antijoin { left; _ } ->
    sel_semi *. card catalog left
  | Plan.Outerjoin { left; right; _ } ->
    Float.max (card catalog left) (card catalog left *. card catalog right *. sel_equi)
  | Plan.Nestjoin { left; _ } -> card catalog left
  | Plan.Unnest { input; _ } -> avg_set *. card catalog input
  | Plan.Nest { input; _ } -> 0.5 *. card catalog input
  | Plan.Extend { input; _ } | Plan.Apply { input; _ } -> card catalog input
  | Plan.Project { input; _ } -> 0.8 *. card catalog input
  | Plan.Union { left; right } -> card catalog left +. card catalog right

let log2 x = if x < 2.0 then 1.0 else Float.log x /. Float.log 2.0

(* Estimated output cardinality of a physical plan (mirrors [card]). *)
let rec pcard catalog plan =
  match plan with
  | P.Unit_row -> 1.0
  | P.Scan { table; _ } -> table_card catalog table
  | P.Filter { input; _ } -> sel_filter *. pcard catalog input
  | P.Nl_join { left; right; _ } ->
    pcard catalog left *. pcard catalog right *. sel_equi
  | P.Hash_join { left; right; rkey; _ }
  | P.Merge_join { left; right; rkey; _ } ->
    pcard catalog left *. pcard catalog right
    *. equi_selectivity catalog right rkey
  | P.Nl_semijoin { left; _ } | P.Hash_semijoin { left; _ }
  | P.Merge_semijoin { left; _ } ->
    sel_semi *. pcard catalog left
  | P.Nl_outerjoin { left; right; _ }
  | P.Hash_outerjoin { left; right; _ }
  | P.Merge_outerjoin { left; right; _ } ->
    Float.max (pcard catalog left)
      (pcard catalog left *. pcard catalog right *. sel_equi)
  | P.Nl_nestjoin { left; _ }
  | P.Hash_nestjoin { left; _ }
  | P.Hash_nestjoin_left { left; _ }
  | P.Merge_nestjoin { left; _ } ->
    pcard catalog left
  | P.Unnest_op { input; _ } -> avg_set *. pcard catalog input
  | P.Nest_op { input; _ } -> 0.5 *. pcard catalog input
  | P.Extend_op { input; _ } | P.Apply_op { input; _ } -> pcard catalog input
  | P.Project_op { input; _ } -> 0.8 *. pcard catalog input
  | P.Union_op { left; right } -> pcard catalog left +. pcard catalog right
  | P.Index_join { table; field; left; _ } ->
    let sel =
      match Cobj.Catalog.find table catalog with
      | Some t -> begin
        match Cobj.Table.distinct_count field t with
        | Some d when d > 0 -> 1.0 /. float_of_int d
        | _ -> sel_equi
      end
      | None -> sel_equi
    in
    pcard catalog left *. table_card catalog table *. sel
  | P.Index_semijoin { left; _ } -> sel_semi *. pcard catalog left
  | P.Index_nestjoin { left; _ } -> pcard catalog left

let rec cost catalog plan =
  let c = cost catalog and n = pcard catalog in
  match plan with
  | P.Unit_row -> 1.0
  | P.Scan { table; _ } -> table_card catalog table
  | P.Filter { pred = _; input } -> c input +. n input
  | P.Nl_join { left; right; _ } -> c left +. c right +. (n left *. n right)
  | P.Hash_join { left; right; _ } ->
    c left +. c right +. n left +. n right +. n plan
  | P.Merge_join { left; right; _ } ->
    c left +. c right
    +. (n left *. log2 (n left))
    +. (n right *. log2 (n right))
    +. n plan
  | P.Nl_semijoin { left; right; _ } ->
    c left +. c right +. (0.5 *. n left *. n right)
  | P.Hash_semijoin { left; right; _ } -> c left +. c right +. n left +. n right
  | P.Merge_semijoin { left; right; _ } ->
    c left +. c right
    +. (n left *. log2 (n left))
    +. (n right *. log2 (n right))
  | P.Nl_outerjoin { left; right; _ } ->
    c left +. c right +. (n left *. n right)
  | P.Hash_outerjoin { left; right; _ } ->
    c left +. c right +. n left +. n right +. n plan
  | P.Merge_outerjoin { left; right; _ } ->
    c left +. c right
    +. (n left *. log2 (n left))
    +. (n right *. log2 (n right))
    +. n plan
  | P.Nl_nestjoin { left; right; _ } -> c left +. c right +. (n left *. n right)
  | P.Hash_nestjoin { left; right; _ } | P.Hash_nestjoin_left { left; right; _ }
    ->
    c left +. c right +. n left +. n right +. n plan
  | P.Merge_nestjoin { left; right; _ } ->
    c left +. c right
    +. (n left *. log2 (n left))
    +. (n right *. log2 (n right))
    +. n plan
  | P.Unnest_op { input; _ } -> c input +. n plan
  | P.Nest_op { input; _ } -> c input +. n input
  | P.Extend_op { input; _ } | P.Project_op { input; _ } -> c input +. n input
  | P.Apply_op { subquery; memo; input; _ } ->
    let per = query_cost_aux catalog subquery in
    let evaluations = if memo then Float.min (n input) 64.0 else n input in
    c input +. (evaluations *. per)
  | P.Union_op { left; right } ->
    c left +. c right +. n plan
  | P.Index_join { table; field; left; _ }
  | P.Index_semijoin { table; field; left; _ }
  | P.Index_nestjoin { table; field; left; _ } ->
    (* probing is O(1) per left row; a cold index pays one build pass *)
    let build =
      match Cobj.Catalog.find table catalog with
      | Some t when Cobj.Table.has_index field t -> 0.0
      | _ -> table_card catalog table
    in
    c left +. n left +. build +. n plan

and query_cost_aux catalog { P.plan; _ } = cost catalog plan +. pcard catalog plan

let query_cost = query_cost_aux

let query_card catalog { P.plan; _ } = pcard catalog plan

let card_physical = pcard

(* Fill a [Stats.node] annotation tree with estimated cardinalities. The
   tree shape comes from [Engine.Analyze.tree_of_plan], so operands line up
   with [Engine.Analyze.children]. *)
let rec annotate catalog plan (node : Engine.Stats.node) =
  node.Engine.Stats.est_rows <- pcard catalog plan;
  let operands = Engine.Analyze.children plan in
  if List.length operands = List.length node.Engine.Stats.children then
    List.iter2 (annotate catalog) operands node.Engine.Stats.children
