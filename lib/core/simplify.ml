module Ast = Lang.Ast
module Value = Cobj.Value
module Plan = Algebra.Plan

let vtrue = Ast.vbool true
let vfalse = Ast.vbool false

let is_const = function Ast.Const _ -> true | _ -> false

let is_empty_set = function
  | Ast.SetE [] | Ast.Const (Value.Set []) -> true
  | _ -> false

(* Foldable: closed, no table references (folding would inline table
   contents), no SFW blocks (evaluation could be expensive). *)
let rec foldable e =
  match e with
  | Ast.Const _ -> true
  | Ast.Var _ | Ast.TableRef _ | Ast.Sfw _ -> false
  | Ast.Field (e1, _) | Ast.Unop (_, e1) | Ast.Agg (_, e1) | Ast.UnnestE e1
  | Ast.VariantE (_, e1) | Ast.IsTag (e1, _) | Ast.AsTag (e1, _) ->
    foldable e1
  | Ast.If (c, a, b) -> foldable c && foldable a && foldable b
  | Ast.TupleE fields -> List.for_all (fun (_, e1) -> foldable e1) fields
  | Ast.SetE es | Ast.ListE es -> List.for_all foldable es
  | Ast.Binop (_, a, b) -> foldable a && foldable b
  | Ast.Quant (_, v, s, p) ->
    foldable s && Ast.String_set.subset (Ast.free_vars p)
                    (Ast.String_set.singleton v)
    && plain p
  | Ast.Let (v, d, b) ->
    foldable d
    && Ast.String_set.subset (Ast.free_vars b) (Ast.String_set.singleton v)
    && plain b

(* Sub-binder bodies must still avoid tables/SFW to stay cheap. *)
and plain e =
  match e with
  | Ast.TableRef _ | Ast.Sfw _ -> false
  | Ast.Const _ | Ast.Var _ -> true
  | Ast.Field (e1, _) | Ast.Unop (_, e1) | Ast.Agg (_, e1) | Ast.UnnestE e1
  | Ast.VariantE (_, e1) | Ast.IsTag (e1, _) | Ast.AsTag (e1, _) ->
    plain e1
  | Ast.If (c, a, b) -> plain c && plain a && plain b
  | Ast.TupleE fields -> List.for_all (fun (_, e1) -> plain e1) fields
  | Ast.SetE es | Ast.ListE es -> List.for_all plain es
  | Ast.Binop (_, a, b) -> plain a && plain b
  | Ast.Quant (_, _, s, p) -> plain s && plain p
  | Ast.Let (_, d, b) -> plain d && plain b

(* [total e]: evaluation cannot raise under a well-typed binding — used to
   guard identities that would discard a possibly-raising operand (e.g.
   [p AND false → false] must not hide an Undefined aggregate in [p]).
   Excluded: partial aggregates, division, field access (Null padding),
   table references and SFW blocks (cost), unbound-variable risk is covered
   by well-formedness. *)
let rec total e =
  match e with
  | Ast.Const _ | Ast.Var _ -> true
  | Ast.TableRef _ | Ast.Sfw _ -> false
  | Ast.Field (e1, _) ->
    (* sound for well-typed rows; a NULL-padded binding (outerjoin
       internals) could make this raise, but no plan we build evaluates
       fields of padded rows — see the mli caveat *)
    total e1
  | Ast.Agg ((Ast.Min | Ast.Max | Ast.Avg), _) -> false
  | Ast.Agg ((Ast.Count | Ast.Sum), e1) -> total e1
  | Ast.Binop ((Ast.Div | Ast.Mod), _, _) -> false
  | Ast.Unop (_, e1) | Ast.UnnestE e1 | Ast.VariantE (_, e1) -> total e1
  | Ast.IsTag (e1, _) -> total e1 (* raises on non-variants only *)
  | Ast.AsTag _ -> false (* raises on a different tag *)
  | Ast.If (c, a, b) -> total c && total a && total b
  | Ast.TupleE fields -> List.for_all (fun (_, e1) -> total e1) fields
  | Ast.SetE es | Ast.ListE es -> List.for_all total es
  | Ast.Binop (_, a, b) -> total a && total b
  | Ast.Quant (_, _, s, p) -> total s && total p
  | Ast.Let (_, d, b) -> total d && total b

let try_fold catalog e =
  if is_const e || not (foldable e) then e
  else
    match Lang.Interp.eval catalog Cobj.Env.empty e with
    | v -> Ast.Const v
    | exception Lang.Interp.Undefined _ -> e (* preserve the partial reading *)
    | exception Value.Type_error _ -> e

let rec expr catalog e =
  let e = map_children catalog e in
  let simplified =
    match e with
    (* boolean identities *)
    | Ast.Binop (Ast.And, Ast.Const (Value.Bool true), p)
    | Ast.Binop (Ast.And, p, Ast.Const (Value.Bool true)) ->
      p
    | Ast.Binop (Ast.And, (Ast.Const (Value.Bool false) as f), _) -> f
    | Ast.Binop (Ast.And, p, (Ast.Const (Value.Bool false) as f))
      when total p ->
      f
    | Ast.Binop (Ast.Or, (Ast.Const (Value.Bool true) as t), _) -> t
    | Ast.Binop (Ast.Or, p, (Ast.Const (Value.Bool true) as t))
      when total p ->
      t
    | Ast.Binop (Ast.Or, Ast.Const (Value.Bool false), p)
    | Ast.Binop (Ast.Or, p, Ast.Const (Value.Bool false)) ->
      p
    | Ast.Unop (Ast.Not, Ast.Unop (Ast.Not, p)) -> p
    | Ast.Unop (Ast.Not, Ast.Const (Value.Bool b)) -> Ast.vbool (not b)
    (* set identities *)
    | Ast.Binop (Ast.Union, s, e1) when is_empty_set e1 -> s
    | Ast.Binop (Ast.Union, e1, s) when is_empty_set e1 -> s
    | Ast.Binop (Ast.Inter, s, (e1 as empty))
      when is_empty_set e1 && total s ->
      empty
    | Ast.Binop (Ast.Inter, (e1 as empty), s)
      when is_empty_set e1 && total s ->
      empty
    | Ast.Binop (Ast.Diff, s, e1) when is_empty_set e1 -> s
    | Ast.Binop (Ast.Mem, x, e1) when is_empty_set e1 && total x -> vfalse
    | Ast.Binop (Ast.Subseteq, e1, s) when is_empty_set e1 && total s -> vtrue
    (* self-comparison: only on effect-free atoms (a raising subterm must
       keep raising) *)
    | Ast.Binop (Ast.Eq, (Ast.Var _ as a), b) when Ast.equal a b -> vtrue
    | Ast.Binop (Ast.Ne, (Ast.Var _ as a), b) when Ast.equal a b -> vfalse
    (* conditionals on constant conditions: the untaken branch was never
       evaluated, dropping it is safe *)
    | Ast.If (Ast.Const (Value.Bool true), a, _) -> a
    | Ast.If (Ast.Const (Value.Bool false), _, b) -> b
    (* tag test/projection on a syntactic construction *)
    | Ast.IsTag (Ast.VariantE (t, e1), tag) when total e1 ->
      Ast.vbool (String.equal t tag)
    | Ast.AsTag (Ast.VariantE (t, e1), tag) when String.equal t tag -> e1
    (* quantifiers over the empty set (the body never runs, safe to drop) *)
    | Ast.Quant (Ast.Exists, _, e1, _) when is_empty_set e1 -> vfalse
    | Ast.Quant (Ast.Forall, _, e1, _) when is_empty_set e1 -> vtrue
    | _ -> e
  in
  try_fold catalog simplified

and map_children catalog e =
  let recur = expr catalog in
  match e with
  | Ast.Const _ | Ast.Var _ | Ast.TableRef _ -> e
  | Ast.Field (e1, l) -> Ast.Field (recur e1, l)
  | Ast.TupleE fields ->
    Ast.TupleE (List.map (fun (l, e1) -> (l, recur e1)) fields)
  | Ast.SetE es -> Ast.SetE (List.map recur es)
  | Ast.ListE es -> Ast.ListE (List.map recur es)
  | Ast.Unop (op, e1) -> Ast.Unop (op, recur e1)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, recur a, recur b)
  | Ast.Agg (a, e1) -> Ast.Agg (a, recur e1)
  | Ast.UnnestE e1 -> Ast.UnnestE (recur e1)
  | Ast.If (c, a, b) -> Ast.If (recur c, recur a, recur b)
  | Ast.VariantE (tag, e1) -> Ast.VariantE (tag, recur e1)
  | Ast.IsTag (e1, tag) -> Ast.IsTag (recur e1, tag)
  | Ast.AsTag (e1, tag) -> Ast.AsTag (recur e1, tag)
  | Ast.Quant (q, v, s, p) -> Ast.Quant (q, v, recur s, recur p)
  | Ast.Let (v, d, b) -> Ast.Let (v, recur d, recur b)
  | Ast.Sfw { select; from; where } ->
    Ast.Sfw
      {
        select = recur select;
        from = List.map (fun (v, op) -> (v, recur op)) from;
        where = Option.map recur where;
      }

let rec plan catalog p =
  let p = Plan.map_children (plan catalog) p in
  match p with
  | Plan.Select { pred; input } -> begin
    match expr catalog pred with
    | Ast.Const (Value.Bool true) ->
      if Steps.recording () then
        Steps.record ~rule:"select-true-elim"
          ~before:(Plan.Select { pred; input })
          ~after:input ();
      input
    | pred -> Plan.Select { pred; input }
  end
  | Plan.Join r -> Plan.Join { r with pred = expr catalog r.pred }
  | Plan.Semijoin r -> Plan.Semijoin { r with pred = expr catalog r.pred }
  | Plan.Antijoin r -> Plan.Antijoin { r with pred = expr catalog r.pred }
  | Plan.Outerjoin r -> Plan.Outerjoin { r with pred = expr catalog r.pred }
  | Plan.Nestjoin r ->
    Plan.Nestjoin
      { r with pred = expr catalog r.pred; func = expr catalog r.func }
  | Plan.Unnest r -> Plan.Unnest { r with expr = expr catalog r.expr }
  | Plan.Nest r -> Plan.Nest { r with func = expr catalog r.func }
  | Plan.Extend r -> Plan.Extend { r with expr = expr catalog r.expr }
  | Plan.Apply r ->
    Plan.Apply
      {
        r with
        subquery =
          { r.subquery with Plan.result = expr catalog r.subquery.Plan.result };
      }
  | Plan.Unit | Plan.Table _ | Plan.Project _ | Plan.Union _ -> p

let query catalog { Plan.plan = p; result } =
  { Plan.plan = plan catalog p; result = expr catalog result }
