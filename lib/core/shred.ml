(* Query shredding: compile a decorrelated nested query into a bounded set
   of *flat* algebra queries plus a stitching recipe that reassembles the
   flat result tables into the same nested value the nest-join backend
   produces (Cheney, Lindley & Wadler, arXiv:1404.7078, adapted to the
   paper's algebra).

   The shredded form of a plan is a [node]: one flat plan (no Nestjoin,
   Nest or Apply operators) plus
   - [children]: one per nesting constructor met on the way up. A child
     carries its own shredded [body] (recursively), the [key] columns of
     the parent rows it groups under, and the member expression [func].
     At stitch time the child's rows are grouped by [key] into a hash
     table of [Value] keys and every parent row is extended with
     [label := { func m | m in group(key(row)) }] — a missing key is the
     *empty set*, which is exactly how shredding preserves the rows the
     COUNT bug loses.
   - [post]: deferred row transformations whose expressions mention
     stitched labels and therefore cannot run inside the flat plan
     (filters, extensions and unnestings over nested results).

   Everything downstream of a plan is consumed through [Value.set] (labels
   here, the query result in [Exec.run_under]), so row multiplicity is
   never observable; this is what lets the pass drop [Project] nodes over
   shredded inputs and merge join operands' children without changing any
   result.

   Plans that re-correlate after decorrelation (a residual correlated
   Apply, nesting under a Union or Outerjoin) are out of the supported
   fragment: [of_query] reports them and the pipeline falls back to the
   nest-join physical plan for execution. *)

module Ast = Lang.Ast
module Plan = Algebra.Plan
module Sset = Ast.String_set
module Value = Cobj.Value
module Env = Cobj.Env

type step =
  | Bind of string * Ast.expr   (** extend each row: v := e *)
  | Keep of Ast.expr            (** keep rows satisfying the predicate *)
  | Unfold of string * Ast.expr (** per element x of e, emit row + v := x *)

type node = { plan : Plan.plan; children : child list; post : step list }

and child = {
  label : string;
  key : string list;    (** parent flat columns forming the group key *)
  nulls : string list;  (** ν*: members all-[Null] on these contribute nothing *)
  func : Ast.expr;      (** member expression, evaluated on stitched body rows *)
  body : node;
}

type program = { body : node; result : Ast.expr }

(* --- the shredding pass ------------------------------------------------- *)

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

let step_var = function Bind (v, _) | Unfold (v, _) -> Some v | Keep _ -> None

(* Variables a node's rows only acquire during stitching — anything the
   flat plan itself does not bind. *)
let deferred_vars n =
  Sset.of_list
    (List.map (fun c -> c.label) n.children
    @ List.filter_map step_var n.post)

let flat_ok deferred e =
  Sset.is_empty (Sset.inter (Ast.free_vars e) deferred)

let pure n = n.children = [] && n.post = []

let rec shred (plan : Plan.plan) : node =
  match plan with
  | Plan.Unit | Plan.Table _ -> { plan; children = []; post = [] }
  | Plan.Select { pred; input } ->
    let n = shred input in
    if flat_ok (deferred_vars n) pred then
      { n with plan = Plan.Select { pred; input = n.plan } }
    else { n with post = n.post @ [ Keep pred ] }
  | Plan.Extend { var; expr; input } ->
    let n = shred input in
    if flat_ok (deferred_vars n) expr then
      { n with plan = Plan.Extend { var; expr; input = n.plan } }
    else { n with post = n.post @ [ Bind (var, expr) ] }
  | Plan.Unnest { expr; var; input } ->
    let n = shred input in
    if flat_ok (deferred_vars n) expr then
      { n with plan = Plan.Unnest { expr; var; input = n.plan } }
    else { n with post = n.post @ [ Unfold (var, expr) ] }
  | Plan.Project { vars; input } ->
    let n = shred input in
    if pure n then { n with plan = Plan.Project { vars; input = n.plan } }
    else
      (* Dropping the projection keeps extra columns and duplicate rows;
         both are unobservable behind the [Value.set]s every consumer
         applies. Narrowing [n.plan] instead would strand the columns the
         stitch keys and deferred steps still need. *)
      n
  | Plan.Join { pred; left; right } ->
    let l = shred left and r = shred right in
    if not (flat_ok (Sset.union (deferred_vars l) (deferred_vars r)) pred)
    then unsupported "join predicate over stitched columns";
    (* Child keys are subsets of their own side's columns, which the
       joined rows still bind, and each label is a function of its key —
       so both sides' stitch work transfers to the join unchanged. *)
    {
      plan = Plan.Join { pred; left = l.plan; right = r.plan };
      children = l.children @ r.children;
      post = l.post @ r.post;
    }
  | Plan.Semijoin { pred; left; right } ->
    semi ~name:"semijoin" pred left right (fun pred left right ->
        Plan.Semijoin { pred; left; right })
  | Plan.Antijoin { pred; left; right } ->
    semi ~name:"antijoin" pred left right (fun pred left right ->
        Plan.Antijoin { pred; left; right })
  | Plan.Outerjoin { pred; left; right } ->
    let l = shred left and r = shred right in
    if not (pure l && pure r) then
      unsupported "outer join over shredded operands";
    {
      plan = Plan.Outerjoin { pred; left = l.plan; right = r.plan };
      children = [];
      post = [];
    }
  | Plan.Nestjoin { pred; func; label; left; right } ->
    let l = shred left and r = shred right in
    let dl = deferred_vars l in
    if not (flat_ok (Sset.union dl (deferred_vars r)) pred) then
      unsupported "nest-join predicate over stitched columns";
    if not (flat_ok dl func) then
      unsupported "nest-join head over the outer side's stitched columns";
    if
      not
        (Sset.is_empty
           (Sset.inter
              (Plan.free_vars r.plan)
              (Sset.of_list (Plan.vars_of l.plan))))
    then unsupported "nest-join inner plan correlated with outer columns";
    (* The member table is the plain flat join: it loses the left
       operand's row preservation, and the stitch restores it — a parent
       key absent from the member table yields the empty set. *)
    let body =
      {
        plan = Plan.Join { pred; left = l.plan; right = r.plan };
        children = r.children;
        post = r.post;
      }
    in
    let child =
      { label; key = Plan.vars_of l.plan; nulls = []; func; body }
    in
    { plan = l.plan; children = l.children @ [ child ]; post = l.post }
  | Plan.Nest { by; label; func; nulls; input } ->
    let n = shred input in
    (* The group table must equal the projection of the *final* member
       rows: deferred filters/unnests would change it after the fact. *)
    if
      not
        (List.for_all
           (function Bind _ -> true | Keep _ | Unfold _ -> false)
           n.post)
    then unsupported "nest over deferred filters";
    let flat = Sset.of_list (Plan.vars_of n.plan) in
    if not (List.for_all (fun v -> Sset.mem v flat) (by @ nulls)) then
      unsupported "nest keys over stitched columns";
    {
      plan = Plan.Project { vars = by; input = n.plan };
      children = [ { label; key = by; nulls; func; body = n } ];
      post = [];
    }
  | Plan.Apply { var; subquery; input } ->
    let n = shred input in
    let avail =
      Sset.union (Sset.of_list (Plan.vars_of n.plan)) (deferred_vars n)
    in
    if not (Sset.is_empty (Sset.inter (Plan.query_free_vars subquery) avail))
    then unsupported "residual correlated apply";
    (* Uncorrelated: one shared group (empty key) every parent row binds. *)
    let child =
      {
        label = var;
        key = [];
        nulls = [];
        func = subquery.Plan.result;
        body = shred subquery.Plan.plan;
      }
    in
    { n with children = n.children @ [ child ] }
  | Plan.Union { left; right } ->
    let l = shred left and r = shred right in
    if not (pure l && pure r) then
      unsupported "union of shredded operands";
    {
      plan = Plan.Union { left = l.plan; right = r.plan };
      children = [];
      post = [];
    }

and semi ~name pred left right mk =
  let l = shred left and r = shred right in
  if not (pure r) then unsupported "%s right operand is nested" name;
  if not (flat_ok (deferred_vars l) pred) then
    unsupported "%s predicate over stitched columns" name;
  { l with plan = mk pred l.plan r.plan }

let of_query { Plan.plan; result } =
  match shred plan with
  | body -> Ok { body; result }
  | exception Unsupported reason -> Error reason

(* --- flat-query views ---------------------------------------------------- *)

(* Preorder over a node's flat plans: the node's own plan first, then each
   child body's, recursively. This is also execution order. *)
let rec nodes (n : node) =
  n :: List.concat_map (fun (c : child) -> nodes c.body) n.children

let flat_count p = List.length (nodes p.body)

(* A flat plan has no result expression of its own; for the verifier we
   give it the identity head — the tuple of every column it binds. *)
let synthetic_result vars =
  Ast.TupleE (List.map (fun v -> (v, Ast.Var v)) vars)

let flat_queries p =
  List.map
    (fun n -> { Plan.plan = n.plan; result = synthetic_result (Plan.vars_of n.plan) })
    (nodes p.body)

(* --- pretty printing ----------------------------------------------------- *)

let pp_step ppf = function
  | Bind (v, e) -> Fmt.pf ppf "@[<2>bind %s :=@ %a@]" v Lang.Pretty.pp e
  | Keep e -> Fmt.pf ppf "@[<2>keep@ %a@]" Lang.Pretty.pp e
  | Unfold (v, e) ->
    Fmt.pf ppf "@[<2>unfold %s in@ %a@]" v Lang.Pretty.pp e

let rec pp_node ppf n =
  Fmt.pf ppf "@[<v>%a" Plan.pp n.plan;
  List.iter
    (fun c ->
      Fmt.pf ppf "@,@[<v2>stitch %s by (%a)%a = %a from:@,%a@]" c.label
        Fmt.(list ~sep:comma string)
        c.key
        (fun ppf -> function
          | [] -> ()
          | nulls ->
            Fmt.pf ppf " nulls (%a)" Fmt.(list ~sep:comma string) nulls)
        c.nulls Lang.Pretty.pp c.func pp_node c.body)
    n.children;
  List.iter (fun s -> Fmt.pf ppf "@,%a" pp_step s) n.post;
  Fmt.pf ppf "@]"

let pp_program ppf p =
  Fmt.pf ppf "@[<v>%d flat quer%s@,%a@,@[<2>result:@ %a@]@]" (flat_count p)
    (if flat_count p = 1 then "y" else "ies")
    pp_node p.body Lang.Pretty.pp p.result

(* --- planning ------------------------------------------------------------ *)

type xnode = {
  id : int;  (** preorder index, keys the analyze tree *)
  xplan : Engine.Physical.t;
  xchildren : xchild list;
  xpost : step list;
}

and xchild = {
  xlabel : string;
  xkey : string list;
  xnulls : string list;
  xfunc : Ast.expr;
  xbody : xnode;
}

type executable = {
  xbody : xnode;
  xresult : Ast.expr;
  xcount : int;
  xprogram : program;  (** the logical program, kept for EXPLAIN *)
}

let plan ?options catalog (p : program) =
  let counter = ref 0 in
  let rec go n =
    let id = !counter in
    incr counter;
    let xplan = Planner.plan ?options catalog n.plan in
    let xchildren =
      List.map
        (fun c ->
          {
            xlabel = c.label;
            xkey = c.key;
            xnulls = c.nulls;
            xfunc = c.func;
            xbody = go c.body;
          })
        n.children
    in
    { id; xplan; xchildren; xpost = n.post }
  in
  let xbody = go p.body in
  { xbody; xresult = p.result; xcount = !counter; xprogram = p }

let rec xnodes (n : xnode) =
  n :: List.concat_map (fun (c : xchild) -> xnodes c.xbody) n.xchildren

let physical_queries exe =
  List.map
    (fun n ->
      {
        Engine.Physical.plan = n.xplan;
        result = synthetic_result (Engine.Physical.vars_of n.xplan);
      })
    (xnodes exe.xbody)

let executable_flat_count exe = exe.xcount
let program_of exe = exe.xprogram

(* --- stitched execution -------------------------------------------------- *)

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let key_value key env = Env.to_value (Env.project key env)

let all_null nulls env =
  nulls <> []
  && List.for_all
       (fun v -> match Env.find v env with Value.Null -> true | _ -> false)
       nulls

let apply_step catalog rows = function
  | Bind (v, e) ->
    let f = Engine.Compile.expr catalog e in
    List.map (fun r -> Env.bind v (f r) r) rows
  | Keep p ->
    let f = Engine.Compile.pred catalog p in
    List.filter f rows
  | Unfold (v, e) ->
    let f = Engine.Compile.expr catalog e in
    List.concat_map
      (fun r -> List.map (fun x -> Env.bind v x r) (Value.elements (f r)))
      rows

(* [exec] abstracts how one flat plan produces rows, so the plain and
   instrumented runners share the stitch. *)
let rec run_node ~exec catalog env n =
  let rows = exec n env in
  let rows =
    List.fold_left
      (fun rows c -> stitch_child ~exec catalog env rows c)
      rows n.xchildren
  in
  List.fold_left (apply_step catalog) rows n.xpost

and stitch_child ~exec catalog env rows c =
  let members = run_node ~exec catalog env c.xbody in
  let funcfn = Engine.Compile.expr catalog c.xfunc in
  let tbl = Vtbl.create (max 16 (List.length members)) in
  List.iter
    (fun m ->
      if not (all_null c.xnulls m) then
        Vtbl.add tbl (key_value c.xkey m) (funcfn m))
    members;
  List.map
    (fun r ->
      (* find_all on an absent key is [] — the empty inner set. *)
      let v = Value.set (Vtbl.find_all tbl (key_value c.xkey r)) in
      Env.bind c.xlabel v r)
    rows

let finish catalog result rows =
  let resultfn = Engine.Compile.expr catalog result in
  Value.set (List.map resultfn rows)

let run_under ?stats ?jobs ?bloom ?vector ?batch catalog env exe =
  let exec n env =
    Engine.Exec.rows ?stats ?jobs ?bloom ?vector ?batch catalog env n.xplan
  in
  finish catalog exe.xresult (run_node ~exec catalog env exe.xbody)

let run ?stats ?jobs ?bloom ?vector ?batch catalog exe =
  run_under ?stats ?jobs ?bloom ?vector ?batch catalog Env.empty exe

(* --- EXPLAIN ANALYZE ------------------------------------------------------ *)

(* The annotation tree has a synthetic [stitch] root whose children are the
   per-flat-query operator trees in execution (preorder) order. *)
let analyze ?jobs ?bloom ?vector ?batch catalog exe =
  let flats = xnodes exe.xbody in
  let trees =
    List.map
      (fun n ->
        let t = Engine.Analyze.tree_of_plan n.xplan in
        Cost.annotate catalog n.xplan t;
        t)
      flats
  in
  let arr = Array.of_list trees in
  let root =
    Engine.Stats.node ~op:"stitch"
      ~detail:
        (Printf.sprintf "%d flat quer%s" exe.xcount
           (if exe.xcount = 1 then "y" else "ies"))
      trees
  in
  let exec n env =
    Engine.Exec.rows_instrumented ?jobs ?bloom ?vector ?batch arr.(n.id)
      catalog env n.xplan
  in
  let t0 = Monotonic_clock.now () in
  let v =
    finish catalog exe.xresult (run_node ~exec catalog Env.empty exe.xbody)
  in
  let t1 = Monotonic_clock.now () in
  root.Engine.Stats.loops <- 1;
  root.Engine.Stats.time_ns <- Int64.sub t1 t0;
  root.Engine.Stats.counters.Engine.Stats.rows_out <-
    (match v with Value.Set l | Value.List l -> List.length l | _ -> 1);
  (v, root)
