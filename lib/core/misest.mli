(** Misestimation report: operators of an instrumented run ranked by
    est-vs-actual cardinality divergence, with the responsible
    [Cobj.Stats]/{!Cost} inputs named — the feedback signal for the
    ROADMAP's adaptive re-optimization item. *)

type entry = {
  op : string;
  detail : string;
  est : float;
  actual : int;
  loops : int;
  factor : float;
      (** symmetric divergence [max(est/actual, actual/est)], both sides
          floored at one row, so always ≥ 1.0 *)
  under : bool;  (** the model underestimated (actual > est) *)
  inputs : string;  (** where the estimate came from ({!Cost.explain}) *)
}

val of_query :
  Cobj.Catalog.t ->
  Engine.Physical.query ->
  Engine.Stats.node ->
  entry list
(** Entries for every annotated operator, worst divergence first. The
    annotation tree must mirror the plan ([Engine.Analyze.tree_of_query]
    after [Cost.annotate] and an instrumented run). *)

val max_factor : entry list -> float
(** Divergence of the worst operator (1.0 for an empty report). *)

val noise : float
(** Default noise floor (1.5): entries within this divergence of their
    estimate are considered well-estimated. *)

val pp : ?floor:float -> entry list Fmt.t
(** Ranked text report; operators within [floor] (default {!noise}) of
    their estimate are summarized in one line rather than listed. Floors
    below 1.0 are clamped to 1.0 (a divergence factor is never smaller). *)

val to_json : entry list -> Engine.Json.t
