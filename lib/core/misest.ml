(* Misestimation report: operators ranked by how far the cost model's
   cardinality estimate diverged from the measured row count, each with
   the statistics input responsible for the estimate named
   ([Cost.explain]). This is the feedback signal adaptive
   re-optimization needs — the ROADMAP item this seeds: a re-planner
   would read the top entry and know *which* NDV or fallback constant to
   distrust. *)

module P = Engine.Physical
module Stats = Engine.Stats
module Json = Engine.Json

type entry = {
  op : string;
  detail : string;
  est : float;
  actual : int;
  loops : int;
  factor : float;  (** max(est/actual, actual/est), both floored at 1 *)
  under : bool;  (** true: model underestimated (actual > est) *)
  inputs : string;  (** responsible statistics, from [Cost.explain] *)
}

(* Symmetric divergence ratio ≥ 1.0; both sides floored at one row so
   "estimated 3, saw 0" is 3× rather than infinite and exact matches on
   empty operators are 1×. *)
let divergence ~est ~actual =
  let e = Float.max 1.0 est and a = Float.max 1.0 (float_of_int actual) in
  Float.max (e /. a) (a /. e)

(* Walk plan and annotation tree in lockstep (same shape by
   construction: [Engine.Analyze.tree_of_plan] + [Cost.annotate]).
   Unannotated nodes (est = nan) are skipped. *)
let rec collect catalog plan (n : Stats.node) acc =
  let acc =
    if Float.is_nan n.Stats.est_rows then acc
    else
      let actual = n.Stats.counters.Stats.rows_out in
      {
        op = n.Stats.op;
        detail = n.Stats.detail;
        est = n.Stats.est_rows;
        actual;
        loops = n.Stats.loops;
        factor = divergence ~est:n.Stats.est_rows ~actual;
        under = float_of_int actual > n.Stats.est_rows;
        inputs = Cost.explain catalog plan;
      }
      :: acc
  in
  let operands = Engine.Analyze.children plan in
  if List.length operands = List.length n.Stats.children then
    List.fold_left2
      (fun acc p c -> collect catalog p c acc)
      acc operands n.Stats.children
  else acc

let of_query catalog { P.plan; _ } tree =
  collect catalog plan tree []
  |> List.stable_sort (fun a b -> Float.compare b.factor a.factor)

let max_factor = function [] -> 1.0 | e :: _ -> e.factor

(* Entries within this ratio are "fine"; the report lists only the ones
   above it and summarizes the rest, so well-estimated plans stay
   one line. Overridable per report (CLI: --misest-floor). *)
let noise = 1.5

let pp ?(floor = noise) ppf entries =
  let noise = Float.max 1.0 floor in
  let bad = List.filter (fun e -> e.factor >= noise) entries in
  let ok = List.length entries - List.length bad in
  Fmt.pf ppf "@[<v>misestimation (worst est-vs-actual first):";
  List.iter
    (fun e ->
      Fmt.pf ppf "@,  %.1f× %s  %s%s: est=%.0f actual=%d%s@,      inputs: %s"
        e.factor
        (if e.under then "under" else "over")
        e.op
        (if e.detail = "" then "" else " " ^ e.detail)
        e.est e.actual
        (if e.loops > 1 then Printf.sprintf " (over %d loops)" e.loops else "")
        e.inputs)
    bad;
  (match bad, ok with
  | [], 0 -> Fmt.pf ppf "@,  (no annotated operators)"
  | [], n -> Fmt.pf ppf "@,  all %d operators within %.1f× of estimate" n noise
  | _, 0 -> ()
  | _, n -> Fmt.pf ppf "@,  (%d more within %.1f× of estimate)" n noise);
  Fmt.pf ppf "@]"

let entry_to_json e =
  Json.Obj
    [
      ("op", Json.String e.op);
      ("detail", Json.String e.detail);
      ("est_rows", Json.Float e.est);
      ("rows_out", Json.Int e.actual);
      ("loops", Json.Int e.loops);
      ("factor", Json.Float e.factor);
      ("direction", Json.String (if e.under then "under" else "over"));
      ("inputs", Json.String e.inputs);
    ]

let to_json entries = Json.List (List.map entry_to_json entries)
