(* Differential testing on randomly generated nested queries.

   A generator assembles queries from the paper's shapes — WHERE-clause
   nesting with every Table 2 predicate family, SELECT-clause nesting,
   extra z-free conjuncts, multiple subqueries, two nesting levels — and
   every strategy must agree with the reference interpreter. A second
   property checks that the optimizer's output still type-checks against
   the algebra's schema inference (no rewrite may produce an ill-formed
   plan). *)

open Helpers
module Value = Cobj.Value

let make_catalog ~dangling =
  (* the XY tables plus a variant-typed attribute table for the tagged
     query templates *)
  let base =
    Workload.Gen.xy
      { Workload.Gen.default_xy with
        nx = 20; ny = 20; key_dom = 5; dangling; val_dom = 5; seed = 99 }
  in
  let tag_elt =
    Cobj.Ctype.ttuple
      [
        ("k", Cobj.Ctype.TInt);
        ( "v",
          Cobj.Ctype.tvariant
            [ ("num", Cobj.Ctype.TInt); ("txt", Cobj.Ctype.TString) ] );
      ]
  in
  let rng = Workload.Prng.create 7 in
  let rows =
    List.init 15 (fun i ->
        let v =
          if Workload.Prng.bool rng 0.5 then
            Cobj.Value.Variant ("num", Cobj.Value.Int (Workload.Prng.int rng 5))
          else
            Cobj.Value.Variant
              ("txt", Cobj.Value.String (Printf.sprintf "t%d" (Workload.Prng.int rng 3)))
        in
        Cobj.Value.tuple [ ("k", Cobj.Value.Int (i mod 6)); ("v", v) ])
  in
  Cobj.Catalog.add
    (Cobj.Table.create ~name:"TAGS" ~elt:tag_elt rows)
    base

let catalog = make_catalog ~dangling:0.25

(* every X row dangling: all hash-partitioned joins must reproduce the
   Δ-semantics tuples (empty sets / NULL pads / antijoin survivors) exactly *)
let all_dangling_catalog = make_catalog ~dangling:1.0

(* --- query generator ----------------------------------------------------- *)

open QCheck2.Gen

let inner_pred =
  oneofl
    [
      "x.b = y.b";
      "y.b = x.b";
      "x.b = y.b AND y.a > 2";
      "y.b < x.b";
      "x.b + 1 = y.b";
      "x.a = y.a AND x.b = y.b";
      "y.b = 3";
      (* uncorrelated *)
    ]

let inner_result = oneofl [ "y.a"; "y.b"; "y.a + y.b"; "y.id MOD 7" ]

(* an inner subquery over Y, possibly with a second nesting level *)
let subquery =
  let flat =
    map2
      (fun result pred -> Printf.sprintf "SELECT %s FROM Y y WHERE %s" result pred)
      inner_result inner_pred
  in
  let deep =
    map2
      (fun result pred ->
        Printf.sprintf
          "SELECT %s FROM Y y WHERE %s AND y.a IN (SELECT w.a FROM Y w WHERE \
           w.b = y.b)"
          result pred)
      inner_result inner_pred
  in
  frequency [ (3, flat); (1, deep) ]

let where_shape =
  oneofl
    [
      Printf.sprintf "x.a IN (%s)";
      Printf.sprintf "x.a NOT IN (%s)";
      Printf.sprintf "COUNT(%s) = 0";
      Printf.sprintf "COUNT(%s) <> 0";
      Printf.sprintf "x.a = COUNT(%s)";
      Printf.sprintf "x.s SUBSETEQ (%s)";
      Printf.sprintf "x.s SUPSETEQ (%s)";
      Printf.sprintf "x.s = (%s)";
      Printf.sprintf "x.a < MAX(%s)";
      Printf.sprintf "x.a > MIN(%s)";
      Printf.sprintf "x.a >= MAX(%s)";
      Printf.sprintf "EXISTS v IN (%s) (v = x.a)";
      Printf.sprintf "FORALL v IN (%s) (v > x.a)";
      (* quantified Table 2 families: SOME/ALL θ-comparisons spelled with
         EXISTS/FORALL, exercising the semijoin/antijoin split *)
      Printf.sprintf "EXISTS v IN (%s) (v < x.a)";
      Printf.sprintf "EXISTS v IN (%s) (v <> x.a)";
      Printf.sprintf "FORALL v IN (%s) (v <> x.a)";
      Printf.sprintf "FORALL v IN (%s) (v >= x.a)";
      (* strict set-containment variants alongside the SUBSETEQ ones above *)
      Printf.sprintf "x.s SUBSET (%s)";
      Printf.sprintf "(%s) SUBSETEQ x.s";
      Printf.sprintf "x.s SUPSET (%s)";
      Printf.sprintf "(%s) = {}";
      Printf.sprintf "(%s) <> {}";
      Printf.sprintf "x.s INTERSECT (%s) = {}";
    ]

let extra_conjunct =
  oneofl [ ""; " AND x.a > 2"; " AND x.id MOD 2 = 0"; " AND x.b < 4" ]

let select_clause = oneofl [ "x.id"; "x"; "(i = x.id, a = x.a)" ]

let where_query =
  map2
    (fun (shape, sub) (extra, select) ->
      Printf.sprintf "SELECT %s FROM X x WHERE %s%s" select (shape sub) extra)
    (pair where_shape subquery)
    (pair extra_conjunct select_clause)

let double_where_query =
  map2
    (fun (s1, q1) (s2, q2) ->
      Printf.sprintf "SELECT x.id FROM X x WHERE %s AND %s" (s1 q1) (s2 q2))
    (pair where_shape subquery)
    (pair where_shape subquery)

let select_query =
  map2
    (fun sub agg ->
      Printf.sprintf "SELECT (i = x.id, v = %s(%s)) FROM X x" agg sub)
    subquery
    (oneofl [ "COUNT"; "SUM" ])

let unnest_query =
  map
    (fun sub ->
      Printf.sprintf "UNNEST(SELECT (%s) FROM X x)" sub)
    subquery

(* templates exercising variants and conditionals through the optimizer *)
let variant_query =
  map2
    (fun shape k ->
      match shape with
      | 0 ->
        Printf.sprintf
          "SELECT x.id FROM X x WHERE EXISTS t IN (SELECT t FROM TAGS t \
           WHERE t.k = x.b) (t.v IS num)"
      | 1 ->
        Printf.sprintf
          "SELECT x.id FROM X x WHERE %d IN (SELECT IF t.v IS num THEN t.v \
           AS num ELSE 0 FROM TAGS t WHERE t.k = x.b)"
          k
      | _ ->
        Printf.sprintf
          "SELECT (i = x.id, vs = (SELECT t.v FROM TAGS t WHERE t.k = x.b \
           AND t.v IS txt)) FROM X x")
    (int_range 0 2) (int_range 0 4)

let query_gen =
  frequency
    [ (5, where_query); (2, double_where_query); (2, select_query);
      (1, unnest_query); (2, variant_query) ]

(* --- properties ---------------------------------------------------------- *)

let prop_strategies_agree =
  qcheck ~count:250 "all strategies agree with the interpreter on random queries"
    query_gen
    (fun src ->
      match Core.Pipeline.run Core.Pipeline.Interp catalog src with
      | Error msg -> QCheck2.Test.fail_reportf "interp failed on %s: %s" src msg
      | Ok reference ->
        List.for_all
          (fun strategy ->
            match Core.Pipeline.run strategy catalog src with
            | Ok v ->
              Value.equal reference v
              || QCheck2.Test.fail_reportf "%s differs on %s:@.ref = %a@.got = %a"
                   (Core.Pipeline.strategy_name strategy)
                   src Value.pp reference Value.pp v
            | Error msg ->
              QCheck2.Test.fail_reportf "%s failed on %s: %s"
                (Core.Pipeline.strategy_name strategy)
                src msg)
          Core.Pipeline.
            [ Naive; Decorrelated; Decorrelated_outerjoin; Ganski_wong ])

let prop_optimized_plans_typecheck =
  qcheck ~count:250 "optimized logical plans type-check" query_gen (fun src ->
      match
        Core.Pipeline.compile_string Core.Pipeline.Decorrelated catalog src
      with
      | Error msg -> QCheck2.Test.fail_reportf "compile failed on %s: %s" src msg
      | Ok { logical = Some q; _ } -> begin
        match Algebra.Typing.query_type catalog [] q with
        | Ok _ -> true
        | Error msg ->
          QCheck2.Test.fail_reportf "ill-typed optimized plan for %s: %s" src
            msg
      end
      | Ok { logical = None; _ } -> true)

let prop_optimized_plans_well_formed =
  qcheck ~count:250 "optimized logical plans are well-formed" query_gen
    (fun src ->
      match
        Core.Pipeline.compile_string Core.Pipeline.Decorrelated catalog src
      with
      | Error msg -> QCheck2.Test.fail_reportf "compile failed on %s: %s" src msg
      | Ok { logical = Some q; _ } -> begin
        match Algebra.Plan.well_formed q.Algebra.Plan.plan with
        | Ok () -> true
        | Error msg ->
          QCheck2.Test.fail_reportf "ill-formed optimized plan for %s: %s" src
            msg
      end
      | Ok { logical = None; _ } -> true)

(* forced physical implementations agree too, on a smaller sample *)
let prop_forced_impls_agree =
  qcheck ~count:80 "forced physical implementations agree" query_gen
    (fun src ->
      let run force =
        Core.Pipeline.run
          ~options:{ Core.Planner.default_options with Core.Planner.force }
          Core.Pipeline.Decorrelated catalog src
      in
      match run Core.Planner.Auto with
      | Error msg -> QCheck2.Test.fail_reportf "auto failed on %s: %s" src msg
      | Ok reference ->
        List.for_all
          (fun force ->
            match run force with
            | Ok v -> Value.equal reference v
            | Error msg ->
              QCheck2.Test.fail_reportf "forced impl failed on %s: %s" src msg)
          Core.Planner.[ Force_nl; Force_hash; Force_merge ])

(* --- partition-parallel execution ---------------------------------------- *)

(* Three-way differential oracle: reference interpreter vs serial engine vs
   partition-parallel engine at 2 and 4 domains, on the mixed catalog and
   on an all-dangling one. [Decorrelated] exercises the parallel hash
   joins; [Naive] keeps Apply nodes, exercising the correlated-stays-serial
   classification under a parallel outer plan. *)
let prop_parallel_agrees =
  qcheck ~count:120 "parallel execution agrees with serial and interpreter"
    query_gen
    (fun src ->
      List.for_all
        (fun (cname, cat) ->
          match Core.Pipeline.run Core.Pipeline.Interp cat src with
          | Error msg ->
            QCheck2.Test.fail_reportf "interp failed on %s (%s): %s" src cname
              msg
          | Ok reference ->
            List.for_all
              (fun strategy ->
                List.for_all
                  (fun jobs ->
                    match Core.Pipeline.run ~jobs strategy cat src with
                    | Ok v ->
                      Value.equal reference v
                      || QCheck2.Test.fail_reportf
                           "%s jobs=%d differs on %s (%s):@.ref = %a@.got = \
                            %a"
                           (Core.Pipeline.strategy_name strategy)
                           jobs src cname Value.pp reference Value.pp v
                    | Error msg ->
                      QCheck2.Test.fail_reportf "%s jobs=%d failed on %s (%s): %s"
                        (Core.Pipeline.strategy_name strategy)
                        jobs src cname msg)
                  [ 1; 2; 4 ])
              Core.Pipeline.[ Naive; Decorrelated ])
        [ ("mixed", catalog); ("all-dangling", all_dangling_catalog) ])

(* Merged parallel instrumentation is exact: the flat totals of the
   annotation tree and every node's rows_out are invariant in the domain
   count. *)
let prop_parallel_stats_exact =
  let module Stats = Engine.Stats in
  let rec same_shape_rows (a : Stats.node) (b : Stats.node) =
    a.Stats.op = b.Stats.op
    && a.Stats.counters.Stats.rows_out = b.Stats.counters.Stats.rows_out
    && a.Stats.loops = b.Stats.loops
    && List.length a.Stats.children = List.length b.Stats.children
    && List.for_all2 same_shape_rows a.Stats.children b.Stats.children
  in
  let totals_equal (a : Stats.t) (b : Stats.t) =
    a.Stats.rows_out = b.Stats.rows_out
    && a.Stats.predicate_evals = b.Stats.predicate_evals
    && a.Stats.hash_builds = b.Stats.hash_builds
    && a.Stats.hash_probes = b.Stats.hash_probes
    && a.Stats.sorts = b.Stats.sorts
    && a.Stats.applies = b.Stats.applies
    && a.Stats.apply_hits = b.Stats.apply_hits
    (* bloom counters are jobs-invariant by design: per-partition filters
       are sized from the total build count and OR-merged *)
    && a.Stats.bloom_checks = b.Stats.bloom_checks
    && a.Stats.bloom_prunes = b.Stats.bloom_prunes
    && a.Stats.build_side_swaps = b.Stats.build_side_swaps
  in
  qcheck ~count:120 "merged parallel stats equal serial stats" query_gen
    (fun src ->
      match
        Core.Pipeline.compile_string Core.Pipeline.Decorrelated catalog src
      with
      | Error msg -> QCheck2.Test.fail_reportf "compile failed on %s: %s" src msg
      | Ok { physical = None; _ } -> true
      | Ok { physical = Some pq; _ } ->
        let instrument jobs =
          let tree = Engine.Analyze.tree_of_query pq in
          ignore
            (Engine.Exec.rows_instrumented ~jobs tree catalog Cobj.Env.empty
               pq.Engine.Physical.plan);
          tree
        in
        let serial = instrument 1 in
        List.for_all
          (fun jobs ->
            let par = instrument jobs in
            (totals_equal (Stats.totals serial) (Stats.totals par)
            || QCheck2.Test.fail_reportf
                 "totals differ at jobs=%d on %s:@.serial %a@.parallel %a" jobs
                 src Stats.pp (Stats.totals serial) Stats.pp (Stats.totals par))
            && (same_shape_rows serial par
               || QCheck2.Test.fail_reportf
                    "per-node rows_out differs at jobs=%d on %s" jobs src))
          [ 2; 4 ])

let suite =
  [
    prop_strategies_agree;
    prop_optimized_plans_typecheck;
    prop_optimized_plans_well_formed;
    prop_forced_impls_agree;
    prop_parallel_agrees;
    prop_parallel_stats_exact;
  ]
