(* Cross-backend differential harness for the shredding backend.

   Query shredding (Core.Shred) is a second, independent evaluation path:
   flat queries plus a stitch phase instead of nest joins. These tests run
   the seeded Workload.Gen corpus through the reference interpreter, the
   nest-join backend (serial and jobs=4) and the shredding backend (serial
   and jobs=4) and require identical values *and* identical rendering —
   the strongest correctness oracle the suite has. Deterministic cases pin
   the shapes that must actually shred (no nest-join fallback), the Kim
   COUNT-bug witness through the stitch phase, and the fallback path for
   plans outside the flat fragment. *)

open Helpers
module Value = Cobj.Value
module Plan = Algebra.Plan
module Pipeline = Core.Pipeline
module Shred = Core.Shred
module Gen = Workload.Gen

let gen_catalog =
  Gen.xy
    { Gen.default_xy with
      nx = 30; ny = 30; key_dom = 8; dangling = 0.3; val_dom = 5; seed = 42 }

(* every X row dangling: every inner collection the stitch builds is empty *)
let all_dangling_catalog =
  Gen.xy
    { Gen.default_xy with
      nx = 20; ny = 20; key_dom = 5; dangling = 1.0; val_dom = 5; seed = 43 }

let compile_shredded catalog src =
  match Pipeline.compile_string Pipeline.Shredded catalog src with
  | Ok c -> c
  | Error msg -> Alcotest.failf "shred compile failed on %s: %s" src msg

let render v = Fmt.str "%a" Value.pp v

(* --- deterministic shredding shapes -------------------------------------- *)

(* Representative nested shapes must genuinely shred — no fallback — and
   their flat queries must be nest-join/Nest/Apply-free. *)
let test_shreds_flat () =
  let cases =
    [
      (* SELECT-clause nesting: one stitch level, two flat queries *)
      ( "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) \
         FROM X x",
        2 );
      (* nested-in-nested SELECT: two stitch levels, three flat queries *)
      ( "SELECT (i = x.id, ys = (SELECT (a = y.a, ws = (SELECT w.id FROM \
         Y w WHERE w.b = y.b)) FROM Y y WHERE y.b = x.b)) FROM X x",
        3 );
      (* WHERE-clause grouping (COUNT) *)
      ( "SELECT x.id FROM X x WHERE x.a = COUNT(SELECT y.id FROM Y y \
         WHERE x.b = y.b)",
        2 );
      (* semijoin/antijoin classes stay single-query (fully flat) *)
      ("SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE y.b \
        = x.b)",
       1);
      ("SELECT x.id FROM X x WHERE x.a NOT IN (SELECT y.a FROM Y y WHERE \
        y.b = x.b)",
       1);
    ]
  in
  List.iter
    (fun (src, expected_flats) ->
      let compiled = compile_shredded gen_catalog src in
      (match compiled.Pipeline.shredded with
      | None -> Alcotest.failf "expected %s to shred, got fallback" src
      | Some exe ->
        Alcotest.(check int)
          (Printf.sprintf "flat count of %s" src)
          expected_flats
          (Shred.executable_flat_count exe));
      (* the flat queries really are flat *)
      match compiled.Pipeline.logical with
      | None -> Alcotest.failf "no logical plan for %s" src
      | Some lq -> (
        match Shred.of_query lq with
        | Error reason -> Alcotest.failf "of_query failed on %s: %s" src reason
        | Ok program ->
          List.iter
            (fun (fq : Plan.query) ->
              Plan.fold
                (fun () node ->
                  match node with
                  | Plan.Nestjoin _ | Plan.Nest _ | Plan.Apply _ ->
                    Alcotest.failf "nesting operator in flat query of %s" src
                  | _ -> ())
                () fq.Plan.plan)
            (Shred.flat_queries program)))
    cases

(* --- the Kim COUNT-bug witness through the stitch phase ------------------- *)

(* The witness family from test_lint: a dangling outer row must survive
   with COUNT = 0 / an empty inner set. Shredding preserves it by
   construction (a group key absent from the member table stitches to the
   empty set); assert value-for-value agreement with the interpreter and
   that the witness rows are actually present. *)
let bug_catalog =
  Gen.xy
    { Gen.default_xy with
      nx = 40; ny = 40; key_dom = 10; dangling = 0.3; val_dom = 5;
      seed = 2024 }

let test_count_bug_witness () =
  let src =
    "SELECT x.id FROM X x WHERE x.a = COUNT(SELECT y.id FROM Y y WHERE \
     x.b = y.b)"
  in
  let compiled = compile_shredded bug_catalog src in
  if compiled.Pipeline.shredded = None then
    Alcotest.failf "COUNT witness fell back to nest join";
  let interp = run_strategy Pipeline.Interp bug_catalog src in
  let shred = Pipeline.execute bug_catalog compiled in
  Alcotest.check value "shredded COUNT witness = interp" interp shred;
  (* the predicate only holds for a = 0 on dangling rows, so a lossy
     backend would return a strict subset; make sure witnesses exist *)
  (match interp with
  | Value.Set (_ :: _) -> ()
  | v -> Alcotest.failf "witness query selected nothing: %a" Value.pp v);
  (* and the SELECT-clause form keeps its empty inner sets *)
  let src_sets =
    "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM \
     X x"
  in
  let compiled = compile_shredded bug_catalog src_sets in
  if compiled.Pipeline.shredded = None then
    Alcotest.failf "SELECT-clause witness fell back to nest join";
  let interp = run_strategy Pipeline.Interp bug_catalog src_sets in
  let shred = Pipeline.execute bug_catalog compiled in
  Alcotest.check value "shredded nested sets = interp" interp shred;
  let has_empty_inner = function
    | Value.Set rows ->
      List.exists
        (fun row -> Value.equal (Value.field "zs" row) (Value.set []))
        rows
    | _ -> false
  in
  if not (has_empty_inner shred) then
    Alcotest.failf "no empty inner collection in the witness result"

(* --- fallback path -------------------------------------------------------- *)

(* Deep correlation (the inner FROM iterates a set attribute of the outer
   row) leaves a residual correlated Apply; shredding must decline and the
   fallback must still produce the interpreter's value. *)
let test_fallback () =
  let src =
    "SELECT (i = x.id, n = COUNT(SELECT u FROM x.s u WHERE u < x.a)) \
     FROM X x"
  in
  let compiled = compile_shredded gen_catalog src in
  (match compiled.Pipeline.shredded with
  | Some _ -> Alcotest.failf "expected fallback for deep correlation"
  | None -> ());
  let interp = run_strategy Pipeline.Interp gen_catalog src in
  let got = Pipeline.execute gen_catalog compiled in
  Alcotest.check value "fallback value = interp" interp got

(* --- the differential oracle ---------------------------------------------- *)

(* The full seeded Workload.Gen corpus (including the deeper nesting and
   empty-inner-collection shapes), on a mixed and an all-dangling catalog:
   interp ≡ nest join (serial, jobs=4) ≡ shredding (serial, jobs=4), as
   values and as rendered text. Also requires that shredding genuinely
   engages on a healthy share of the corpus, so the oracle cannot rot into
   testing the fallback path only. *)
let corpus = Gen.queries ~count:120 ~seed:0x5eed ()

let test_differential_corpus () =
  let shredded_count = ref 0 in
  List.iter
    (fun (cname, catalog) ->
      List.iter
        (fun src ->
          let interp = run_strategy Pipeline.Interp catalog src in
          let reference = render interp in
          let check_backend strategy jobs =
            match
              Pipeline.compile_string strategy catalog src
            with
            | Error msg ->
              Alcotest.failf "%s compile failed on %s: %s"
                (Pipeline.strategy_name strategy) src msg
            | Ok compiled ->
              (if strategy = Pipeline.Shredded && jobs = 1
               && cname = "mixed" && compiled.Pipeline.shredded <> None
              then incr shredded_count);
              let v = Pipeline.execute ~jobs catalog compiled in
              if not (Value.equal interp v) then
                Alcotest.failf "%s jobs=%d differs on %s (%s):@.ref %a@.got %a"
                  (Pipeline.strategy_name strategy)
                  jobs src cname Value.pp interp Value.pp v;
              let rendered = render v in
              if not (String.equal reference rendered) then
                Alcotest.failf
                  "%s jobs=%d renders differently on %s (%s):@.%s@.vs@.%s"
                  (Pipeline.strategy_name strategy)
                  jobs src cname reference rendered
          in
          List.iter
            (fun strategy ->
              List.iter (check_backend strategy) [ 1; 4 ])
            Pipeline.[ Decorrelated; Shredded ])
        corpus)
    [ ("mixed", gen_catalog); ("all-dangling", all_dangling_catalog) ];
  let n = List.length corpus in
  if !shredded_count * 2 < n then
    Alcotest.failf "only %d/%d corpus queries shredded — oracle degraded"
      !shredded_count n

(* Random corpora from other seeds, value-only, smaller sample: guards the
   generator extensions against seed-specific luck. *)
let prop_shred_agrees =
  qcheck ~count:60 "shredding agrees with interp on random seeds"
    QCheck2.Gen.(int_range 0 1000)
  @@ fun seed ->
  List.for_all
    (fun src ->
      match Pipeline.run Pipeline.Interp gen_catalog src with
      | Error msg ->
        QCheck2.Test.fail_reportf "interp failed on %s: %s" src msg
      | Ok reference -> (
        match Pipeline.run Pipeline.Shredded gen_catalog src with
        | Ok v ->
          Value.equal reference v
          || QCheck2.Test.fail_reportf "shred differs on %s:@.ref %a@.got %a"
               src Value.pp reference Value.pp v
        | Error msg ->
          QCheck2.Test.fail_reportf "shred failed on %s: %s" src msg))
    (Gen.queries ~count:4 ~seed ())

let suite =
  [
    Alcotest.test_case "representative shapes shred flat" `Quick
      test_shreds_flat;
    Alcotest.test_case "COUNT-bug witness survives the stitch" `Quick
      test_count_bug_witness;
    Alcotest.test_case "deep correlation falls back soundly" `Quick
      test_fallback;
    Alcotest.test_case "differential corpus: interp = nest join = shred"
      `Slow test_differential_corpus;
    prop_shred_agrees;
  ]
