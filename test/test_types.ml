(* Type checker tests. *)

open Helpers
module Ctype = Cobj.Ctype

let cat = xy_catalog ()

let typ src =
  match Lang.Types.check_query cat (parse src) with
  | Ok (_, t) -> Ok t
  | Error e -> Error (Fmt.str "%a" Lang.Types.pp_error e)

let check_type name src expected =
  Alcotest.test_case name `Quick (fun () ->
      match typ src with
      | Ok t -> Alcotest.check ctype src expected t
      | Error msg -> Alcotest.failf "unexpected type error on %s: %s" src msg)

let check_ill_typed name src =
  Alcotest.test_case name `Quick (fun () ->
      match typ src with
      | Ok t -> Alcotest.failf "%s should be ill-typed, got %s" src
                  (Ctype.to_string t)
      | Error _ -> ())

let x_elt =
  Ctype.ttuple
    [ ("a", Ctype.TInt); ("b", Ctype.TInt); ("s", Ctype.TSet Ctype.TInt) ]

(* Errors carry the typing environment at the point of failure and render
   it; closed expressions fail without one. *)
let error_of src =
  match Lang.Types.check_query cat (parse src) with
  | Ok (_, t) ->
    Alcotest.failf "%s should be ill-typed, got %s" src (Ctype.to_string t)
  | Error e -> e

let contains rendered needle =
  Alcotest.(check bool)
    (Printf.sprintf "%S in %S" needle rendered)
    true
    (Astring.String.is_infix ~affix:needle rendered)

let test_error_env () =
  let e = error_of "SELECT x.nope FROM X x" in
  Alcotest.(check bool) "tenv binds x" true
    (List.mem_assoc "x" e.Lang.Types.tenv);
  let rendered = Fmt.str "%a" Lang.Types.pp_error e in
  List.iter (contains rendered) [ "nope"; "in:"; "env:"; "x :" ]

let test_error_env_innermost () =
  (* the environment is the one at the failure point: the quantifier-bound
     [v] is in scope alongside the FROM-bound [x] *)
  let e = error_of "SELECT x FROM X x WHERE EXISTS v IN x.s (v.f = 1)" in
  Alcotest.(check bool) "tenv binds v" true
    (List.mem_assoc "v" e.Lang.Types.tenv);
  Alcotest.(check bool) "tenv binds x" true
    (List.mem_assoc "x" e.Lang.Types.tenv);
  let rendered = Fmt.str "%a" Lang.Types.pp_error e in
  List.iter (contains rendered) [ "env:"; "v : INT" ]

let test_closed_error_no_env () =
  let e = error_of {|SUM({"a", "b"})|} in
  Alcotest.(check int) "empty tenv" 0 (List.length e.Lang.Types.tenv);
  let rendered = Fmt.str "%a" Lang.Types.pp_error e in
  Alcotest.(check bool) "no env line" false
    (Astring.String.is_infix ~affix:"env:" rendered)

let suite =
  [
    check_type "table type" "X" (Ctype.TSet x_elt);
    check_type "select result" "SELECT x.a FROM X x" Ctype.(TSet TInt);
    check_type "tuple result" "SELECT (u = x.a, v = x.s) FROM X x"
      (Ctype.TSet
         (Ctype.ttuple [ ("u", Ctype.TInt); ("v", Ctype.TSet Ctype.TInt) ]));
    check_type "nested sfw"
      "SELECT (SELECT y.c FROM Y y WHERE y.d = x.b) FROM X x"
      Ctype.(TSet (TSet TInt));
    check_type "unnest flattens" "UNNEST(SELECT x.s FROM X x)"
      Ctype.(TSet TInt);
    check_type "count" "SELECT COUNT(x.s) FROM X x" Ctype.(TSet TInt);
    check_type "avg is float" "SELECT AVG(x.s) FROM X x" Ctype.(TSet TFloat);
    check_type "empty set literal joins" "{1} UNION {}" Ctype.(TSet TInt);
    check_type "dependent from" "SELECT w FROM X x, x.s w" Ctype.(TSet TInt);
    check_type "quantifier binds" "SELECT x FROM X x WHERE EXISTS v IN x.s (v = x.a)"
      (Ctype.TSet x_elt);
    check_type "with binds in its predicate"
      "SELECT x.a FROM X x WHERE x.a = z WITH z = 1" Ctype.(TSet TInt);
    check_ill_typed "unknown table" "SELECT q FROM NOPE q";
    check_ill_typed "unknown field" "SELECT x.nope FROM X x";
    check_ill_typed "unbound variable" "SELECT x.a FROM X x WHERE y.c = 1";
    check_ill_typed "where not boolean" "SELECT x FROM X x WHERE x.a";
    check_ill_typed "sum of strings" {|SUM({"a", "b"})|};
    check_ill_typed "arith on sets" "SELECT x.s + 1 FROM X x";
    check_ill_typed "membership type clash" {|SELECT x FROM X x WHERE "s" IN x.s|};
    check_ill_typed "union type clash" {|{1} UNION {"a"}|};
    check_ill_typed "iterating a scalar" "SELECT v FROM X x, x.a v";
    check_ill_typed "quantifier over scalar" "EXISTS v IN 3 (true)";
    check_ill_typed "duplicate tuple label" "SELECT (a = 1, a = 2) FROM X x";
    check_ill_typed "subset on scalars" "SELECT x FROM X x WHERE x.a SUBSETEQ x.b";
    Alcotest.test_case "errors render the environment" `Quick test_error_env;
    Alcotest.test_case "errors carry the innermost scope" `Quick
      test_error_env_innermost;
    Alcotest.test_case "closed errors omit the environment" `Quick
      test_closed_error_no_env;
  ]
