(* Bloom-filter sideways information passing: filter unit properties,
   one-pass catalog statistics, the runtime build-side swap, and a
   differential property that pruning is invisible — same values, same
   counters modulo the bloom-specific ones — across bloom on/off and
   every domain count. *)

open Helpers
module Value = Cobj.Value
module Env = Cobj.Env
module Cstats = Cobj.Stats
module P = Engine.Physical
module Exec = Engine.Exec
module Stats = Engine.Stats
module Bloom = Engine.Bloom
module Pipeline = Core.Pipeline

let parse = Lang.Parser.expr

(* --- the filter itself --------------------------------------------------- *)

let hashes n = List.init n (fun i -> Value.hash (Value.Int (i * 7919)))

(* A filter driven past 1/2 fill ratio must still answer [mem] for every
   inserted hash — false positives are allowed, false negatives never. *)
let no_false_negatives () =
  let f = Bloom.create 16 in
  let hs = hashes 400 in
  List.iter (Bloom.add f) hs;
  Alcotest.(check bool) "saturated past 1/2" true (Bloom.fill_ratio f >= 0.5);
  List.iter
    (fun h -> Alcotest.(check bool) "added hash is member" true (Bloom.mem f h))
    hs

(* OR-merging per-partition filters reproduces the serial filter exactly:
   same members, same fill ratio (the geometries are identical, so equal
   fill ratio on the same inserts means equal bits). *)
let merge_is_or () =
  let expected = 32 in
  let evens, odds =
    List.partition (fun h -> h land 1 = 0) (hashes 64)
  in
  let f1 = Bloom.create expected
  and f2 = Bloom.create expected
  and serial = Bloom.create expected in
  List.iter (Bloom.add f1) evens;
  List.iter (Bloom.add f2) odds;
  List.iter (Bloom.add serial) (evens @ odds);
  Bloom.merge ~into:f1 f2;
  List.iter
    (fun h -> Alcotest.(check bool) "merged membership" true (Bloom.mem f1 h))
    (evens @ odds);
  Alcotest.(check (float 1e-9)) "merged = serial bits"
    (Bloom.fill_ratio serial) (Bloom.fill_ratio f1)

let merge_rejects_mismatch () =
  Alcotest.check_raises "different geometries"
    (Invalid_argument "Bloom.merge: geometry mismatch (filters sized differently)")
    (fun () -> Bloom.merge ~into:(Bloom.create 8) (Bloom.create 10_000))

(* --- catalog statistics -------------------------------------------------- *)

(* Hand-checked numbers on the fixture catalog: X.a = {1,2,0,3,2},
   X.b = {1,1,5,3,3}, X.s = {{1,2},{1},∅,{3},{2,3}}, Y.c = {1,2,3,2,9},
   Y.d = {1,1,3,3,9}. *)
let catalog_stats () =
  let catalog = xy_catalog () in
  let s = Cstats.scan catalog in
  let check_rows name n =
    Alcotest.(check (option int)) (name ^ " rows") (Some n)
      (Cstats.row_count catalog name)
  in
  check_rows "X" 5;
  check_rows "Y" 5;
  let check_ndv table field n =
    Alcotest.(check (option int))
      (Printf.sprintf "%s.%s ndv" table field)
      (Some n)
      (Cstats.ndv catalog ~table ~field)
  in
  check_ndv "X" "a" 4;
  check_ndv "X" "b" 3;
  check_ndv "Y" "c" 4;
  check_ndv "Y" "d" 3;
  Alcotest.(check (option (float 1e-9))) "X.s avg set cardinality"
    (Some 1.2)
    (Cstats.avg_set_card catalog ~table:"X" ~field:"s");
  (match Cstats.attr s "X" "s" with
  | None -> Alcotest.fail "no stats for X.s"
  | Some a ->
    Alcotest.(check (option (float 1e-9))) "X.s empty fraction" (Some 0.2)
      a.Cstats.empty_frac;
    Alcotest.(check (float 1e-9)) "X.s null fraction" 0.0 a.Cstats.null_frac);
  Alcotest.(check (option int)) "missing table" None
    (Cstats.row_count catalog "NOPE");
  Alcotest.(check bool) "of_catalog memoizes" true
    (Cstats.of_catalog catalog == Cstats.of_catalog catalog)

(* --- runtime build-side swap --------------------------------------------- *)

let swap_catalog =
  Workload.Gen.xy
    { Workload.Gen.default_xy with nx = 8; ny = 40; key_dom = 5; seed = 11 }

let join ~left ~right =
  let lv, rv = if left = "X" then ("x", "y") else ("y", "x") in
  P.Hash_join
    {
      lkey = parse (lv ^ ".b");
      rkey = parse (rv ^ ".b");
      residual = None;
      left = P.Scan { table = left; var = lv };
      right = P.Scan { table = right; var = rv };
    }

let canonical rows = List.sort Env.compare rows

let run_counted ?(jobs = 1) plan =
  let stats = Stats.create () in
  let rows = Exec.rows ~stats ~jobs swap_catalog Env.empty plan in
  (rows, stats)

(* The commutative hash join builds on the smaller operand whichever side
   it appears on; the merged rows are identical to an unswapped plan. *)
let build_side_swap () =
  List.iter
    (fun jobs ->
      let tag s = Printf.sprintf "jobs=%d: %s" jobs s in
      (* X (8 rows) on the left, Y (40 rows) on the right: the estimated
         build side (right) is bigger, so the executor swaps. *)
      let rows_xy, st_xy = run_counted ~jobs (join ~left:"X" ~right:"Y") in
      Alcotest.(check int) (tag "swapped once") 1 st_xy.Stats.build_side_swaps;
      Alcotest.(check int) (tag "builds on the 8-row side") 8
        st_xy.Stats.hash_builds;
      Alcotest.(check int) (tag "probes with the 40-row side") 40
        st_xy.Stats.hash_probes;
      (* Y on the left: the right side is already the smaller one. *)
      let rows_yx, st_yx = run_counted ~jobs (join ~left:"Y" ~right:"X") in
      Alcotest.(check int) (tag "no swap needed") 0 st_yx.Stats.build_side_swaps;
      Alcotest.(check int) (tag "still builds on 8") 8 st_yx.Stats.hash_builds;
      Alcotest.(check int) (tag "still probes with 40") 40
        st_yx.Stats.hash_probes;
      (* Both orientations and a nested-loop reference agree on the rows. *)
      let nl =
        P.Nl_join
          {
            pred = parse "x.b = y.b";
            left = P.Scan { table = "X"; var = "x" };
            right = P.Scan { table = "Y"; var = "y" };
          }
      in
      let rows_nl = Exec.rows swap_catalog Env.empty nl in
      let check_same name a b =
        Alcotest.(check bool) (tag name) true
          (List.length a = List.length b
          && List.for_all2 Env.equal (canonical a) (canonical b))
      in
      check_same "swapped = nested loop" rows_nl rows_xy;
      check_same "orientations agree" rows_xy rows_yx)
    [ 1; 4 ]

(* §7: the nest join's left operand is preserved, so it must stay on the
   probe side no matter how lopsided the cardinalities are. *)
let nestjoin_never_swaps () =
  let nj =
    P.Hash_nestjoin
      {
        lkey = parse "x.b";
        rkey = parse "y.b";
        residual = None;
        func = parse "y.a";
        label = "g";
        left = P.Scan { table = "X"; var = "x" };
        right = P.Scan { table = "Y"; var = "y" };
      }
  in
  List.iter
    (fun jobs ->
      let rows, st = run_counted ~jobs nj in
      Alcotest.(check int) "never swaps" 0 st.Stats.build_side_swaps;
      Alcotest.(check int) "builds on the 40-row right side" 40
        st.Stats.hash_builds;
      Alcotest.(check int) "probes with the 8 left rows" 8
        st.Stats.hash_probes;
      Alcotest.(check int) "left rows preserved" 8 (List.length rows))
    [ 1; 4 ]

(* --- bloom pruning is observable but invisible --------------------------- *)

(* On an all-dangling catalog most probes miss, so the filter must prune;
   with bloom off the counters must read zero and nothing else changes. *)
let pruning_observable () =
  let catalog =
    Workload.Gen.xy
      { Workload.Gen.default_xy with
        nx = 60; ny = 30; dangling = 1.0; seed = 4 }
  in
  let semi =
    P.Hash_semijoin
      {
        lkey = parse "x.b";
        rkey = parse "y.b";
        residual = None;
        anti = false;
        left = P.Scan { table = "X"; var = "x" };
        right = P.Scan { table = "Y"; var = "y" };
      }
  in
  let run ~bloom ~jobs =
    let stats = Stats.create () in
    let rows = Exec.rows ~stats ~jobs ~bloom catalog Env.empty semi in
    (rows, stats)
  in
  let rows_on, on = run ~bloom:true ~jobs:1 in
  Alcotest.(check int) "every probe checked" 60 on.Stats.bloom_checks;
  Alcotest.(check bool) "most dangling probes pruned" true
    (on.Stats.bloom_prunes > 40);
  Alcotest.(check int) "pruned probes still counted" 60 on.Stats.hash_probes;
  let rows_off, off = run ~bloom:false ~jobs:1 in
  Alcotest.(check int) "no checks when disabled" 0 off.Stats.bloom_checks;
  Alcotest.(check int) "no prunes when disabled" 0 off.Stats.bloom_prunes;
  Alcotest.(check int) "probes unchanged" 60 off.Stats.hash_probes;
  Alcotest.(check bool) "same rows" true
    (List.length rows_on = List.length rows_off
    && List.for_all2 Env.equal (canonical rows_on) (canonical rows_off));
  (* jobs-invariance: per-partition filters are sized from the total build
     count and OR-merged, so parallel pruning equals serial pruning. *)
  List.iter
    (fun jobs ->
      let _, par = run ~bloom:true ~jobs in
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d same checks" jobs)
        on.Stats.bloom_checks par.Stats.bloom_checks;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d same prunes" jobs)
        on.Stats.bloom_prunes par.Stats.bloom_prunes)
    [ 2; 4 ]

(* Differential property over the random-query corpus: bloom on/off ×
   jobs 1/2/4 all return the same value, and the stats trees agree on
   every counter except the bloom ones (equal when both runs have bloom
   on, zero when off). *)
let counters_mod_bloom (a : Stats.t) (b : Stats.t) =
  a.Stats.rows_out = b.Stats.rows_out
  && a.Stats.predicate_evals = b.Stats.predicate_evals
  && a.Stats.hash_builds = b.Stats.hash_builds
  && a.Stats.hash_probes = b.Stats.hash_probes
  && a.Stats.sorts = b.Stats.sorts
  && a.Stats.applies = b.Stats.applies
  && a.Stats.apply_hits = b.Stats.apply_hits
  && a.Stats.build_side_swaps = b.Stats.build_side_swaps

let prop_bloom_invisible =
  qcheck ~count:100 "bloom on/off x jobs: same values, same non-bloom counters"
    Test_random_queries.query_gen
    (fun src ->
      List.for_all
        (fun (cname, cat) ->
          match Pipeline.compile_string Pipeline.Decorrelated cat src with
          | Error msg ->
            QCheck2.Test.fail_reportf "compile failed on %s: %s" src msg
          | Ok { Pipeline.physical = None; _ } -> true
          | Ok { Pipeline.physical = Some pq; _ } ->
            let run ~bloom ~jobs =
              let stats = Stats.create () in
              let v = Exec.run_under ~stats ~jobs ~bloom cat Env.empty pq in
              (v, stats)
            in
            let ref_v, ref_s = run ~bloom:true ~jobs:1 in
            List.for_all
              (fun (bloom, jobs) ->
                let v, s = run ~bloom ~jobs in
                (Value.equal ref_v v
                || QCheck2.Test.fail_reportf
                     "value differs (%s bloom=%b jobs=%d) on %s" cname bloom
                     jobs src)
                && (counters_mod_bloom ref_s s
                   || QCheck2.Test.fail_reportf
                        "non-bloom counters differ (%s bloom=%b jobs=%d) on \
                         %s:@.ref %a@.got %a"
                        cname bloom jobs src Stats.pp ref_s Stats.pp s)
                && ((not bloom)
                    || (s.Stats.bloom_checks = ref_s.Stats.bloom_checks
                       && s.Stats.bloom_prunes = ref_s.Stats.bloom_prunes)
                    || QCheck2.Test.fail_reportf
                         "bloom counters not jobs-invariant (%s jobs=%d) on %s"
                         cname jobs src)
                && (bloom
                    || (s.Stats.bloom_checks = 0 && s.Stats.bloom_prunes = 0)
                    || QCheck2.Test.fail_reportf
                         "bloom counters nonzero with bloom off (%s) on %s"
                         cname src))
              [ (false, 1); (true, 2); (false, 4); (true, 4) ])
        [ ("mixed", Test_random_queries.catalog);
          ("all-dangling", Test_random_queries.all_dangling_catalog) ])

let suite =
  [
    Alcotest.test_case "no false negatives at 1/2 fill" `Quick
      no_false_negatives;
    Alcotest.test_case "merge is bitwise or" `Quick merge_is_or;
    Alcotest.test_case "merge rejects geometry mismatch" `Quick
      merge_rejects_mismatch;
    Alcotest.test_case "catalog statistics" `Quick catalog_stats;
    Alcotest.test_case "build-side swap" `Quick build_side_swap;
    Alcotest.test_case "nest join never swaps" `Quick nestjoin_never_swaps;
    Alcotest.test_case "pruning observable and invisible" `Quick
      pruning_observable;
    prop_bloom_invisible;
  ]
