(* The columnar batch engine (Engine.Batch / Engine.Vexpr / the vector
   paths in Engine.Exec).

   Two layers of evidence:
   - unit tests pinning the batch representation itself — chunking at the
     batch boundary, selection-vector narrowing, late-materialized
     environments — on the edge cases (empty batch, all-selected,
     singleton, rows straddling a batch boundary);
   - the differential oracle: for random nested queries over the mixed
     and the all-dangling catalogs, the vector engine must produce the
     same value AND the same Engine.Stats work profile as the row engine,
     serially and at 4 domains. The vector layer is a pure constant-
     factor optimization; any observable difference is a bug. *)

open Helpers
module Batch = Engine.Batch
module Exec = Engine.Exec
module Stats = Engine.Stats

(* --- batch representation ------------------------------------------------ *)

let values_of batches =
  List.map (Env.find "v") (Batch.rows_of_batches batches)

let test_batch_chunking () =
  (* A scan constructor splits at the batch boundary and preserves row
     order; the last batch straddles nothing and is short. *)
  let vals = List.init 5 (fun i -> Value.Int i) in
  let bs = Batch.of_values ~size:2 "v" Env.empty vals in
  Alcotest.(check (list int)) "chunk lengths" [ 2; 2; 1 ]
    (List.map Batch.live bs);
  Alcotest.(check int) "live total" 5 (Batch.live_total bs);
  Alcotest.(check (list value)) "row order preserved" vals (values_of bs);
  (* the empty input produces no batches at all *)
  Alcotest.(check int) "empty: no batches" 0
    (List.length (Batch.of_values ~size:2 "v" Env.empty []));
  Alcotest.(check int) "empty rows: no batches" 0
    (List.length (Batch.of_rows ~size:4 []));
  (* a singleton input is one short batch *)
  let one = Batch.of_values ~size:1024 "v" Env.empty [ Value.Int 7 ] in
  Alcotest.(check (list int)) "singleton" [ 1 ] (List.map Batch.live one)

let test_selection_vectors () =
  let vals = List.init 4 (fun i -> Value.Int i) in
  let b = List.hd (Batch.of_values ~size:8 "v" Env.empty vals) in
  (* all-selected: an explicit full selection behaves like none at all *)
  let full = Batch.narrow b [| 0; 1; 2; 3 |] in
  Alcotest.(check int) "all selected" 4 (Batch.live full);
  Alcotest.(check (list value)) "all rows" vals (values_of [ full ]);
  (* a sparse selection keeps ascending live order *)
  let odd = Batch.narrow b [| 1; 3 |] in
  Alcotest.(check (list value)) "narrowed"
    [ Value.Int 1; Value.Int 3 ]
    (values_of [ odd ]);
  (* the empty selection is a live batch of zero rows *)
  let none = Batch.narrow b [||] in
  Alcotest.(check int) "none selected" 0 (Batch.live none);
  Alcotest.(check int) "no rows materialized" 0
    (List.length (Batch.to_rows none));
  (* a singleton selection *)
  let one = Batch.narrow b [| 2 |] in
  Alcotest.(check (list value)) "singleton selection" [ Value.Int 2 ]
    (values_of [ one ])

let test_late_materialization () =
  (* env_at layers columns over the shared tail exactly like the row
     engine's Env.bind nesting: newest column found first. *)
  let tail = Env.bind "outer" (Value.Int 99) Env.empty in
  let b = List.hd (Batch.of_values ~size:8 "v" tail [ Value.Int 0 ]) in
  let b = Batch.add_col b "w" (Batch.Const (Value.Int 5)) in
  let env = Batch.env_at b 0 in
  Alcotest.check value "new column" (Value.Int 5) (Env.find "w" env);
  Alcotest.check value "scan column" (Value.Int 0) (Env.find "v" env);
  Alcotest.check value "ambient tail" (Value.Int 99) (Env.find "outer" env)

(* --- executor edge cases -------------------------------------------------- *)

(* Compare the vector engine against the row engine on one query at
   several batch widths: identical value and identical full Stats
   (partition counters included — same jobs on both sides). *)
let differential ?(jobs = 1) ?(batches = [ 1; 2; 3; 64 ]) catalog src =
  match
    Core.Pipeline.compile_string Core.Pipeline.Decorrelated catalog src
  with
  | Error msg -> Alcotest.failf "compile failed on %s: %s" src msg
  | Ok { Core.Pipeline.physical = None; _ } ->
    Alcotest.failf "no physical plan for %s" src
  | Ok { Core.Pipeline.physical = Some pq; _ } ->
    let run ~vector ~batch =
      let stats = Stats.create () in
      let v = Exec.run_under ~stats ~jobs ~vector ~batch catalog Env.empty pq in
      (v, stats)
    in
    let vref, sref = run ~vector:false ~batch:1024 in
    List.iter
      (fun batch ->
        let v, s = run ~vector:true ~batch in
        Alcotest.check value
          (Printf.sprintf "value (batch=%d) on %s" batch src)
          vref v;
        Alcotest.(check bool)
          (Printf.sprintf "stats (batch=%d) on %s" batch src)
          true (s = sref))
      batches

let test_filter_edges () =
  let catalog = xy_catalog () in
  (* all five X rows pass: every batch fully selected *)
  differential catalog "SELECT x.a FROM X x WHERE x.a >= 0";
  (* none pass: every batch narrows to empty and is dropped *)
  differential catalog "SELECT x.a FROM X x WHERE x.a > 100";
  (* exactly one passes (the dangling b = 5 row): singleton selection *)
  differential catalog "SELECT x.a FROM X x WHERE x.b = 5";
  (* a predicate whose matching rows straddle the batch-2 boundary *)
  differential catalog "SELECT x.b FROM X x WHERE x.a = 2"

let test_join_edges () =
  let catalog = xy_catalog () in
  differential catalog
    "SELECT x.a FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE y.d = x.b)";
  differential catalog
    "SELECT (a = x.a, cs = (SELECT y.c FROM Y y WHERE y.d = x.b)) FROM X x";
  differential catalog
    "SELECT x.a FROM X x WHERE COUNT(SELECT y.c FROM Y y WHERE y.d = x.b) \
     = 0";
  (* arithmetic + comparison kernels in the extend/filter fragment *)
  differential catalog
    "SELECT x.a + x.b FROM X x WHERE x.a * 2 < x.b + 10 AND x.a MOD 2 = 0"

(* --- the differential oracle --------------------------------------------- *)

(* For random queries: at each jobs value, the vector run must match the
   row run on the value (or fail with the identical error) and on the
   complete Stats record — partitions included, since both sides run at
   the same jobs. *)
let prop_vector_oracle =
  qcheck ~count:120 "vector engine ≡ row engine (value + stats, jobs 1/4)"
    Test_random_queries.query_gen
    (fun src ->
      List.for_all
        (fun (cname, cat) ->
          match
            Core.Pipeline.compile_string Core.Pipeline.Decorrelated cat src
          with
          | Error msg ->
            QCheck2.Test.fail_reportf "compile failed on %s: %s" src msg
          | Ok { Core.Pipeline.physical = None; _ } -> true
          | Ok { Core.Pipeline.physical = Some pq; _ } ->
            let run ~vector ~jobs =
              let stats = Stats.create () in
              let outcome =
                match Exec.run_under ~stats ~jobs ~vector cat Env.empty pq with
                | v -> Ok v
                | exception Cobj.Value.Type_error m -> Error ("type: " ^ m)
                | exception Lang.Interp.Undefined m -> Error ("undefined: " ^ m)
              in
              (outcome, stats)
            in
            List.for_all
              (fun jobs ->
                let rv, rs = run ~vector:false ~jobs in
                let vv, vs = run ~vector:true ~jobs in
                let same_outcome =
                  match (rv, vv) with
                  | Ok a, Ok b -> Value.equal a b
                  | Error a, Error b -> String.equal a b
                  | _ -> false
                in
                (same_outcome
                || QCheck2.Test.fail_reportf
                     "value differs at jobs=%d on %s (%s)" jobs src cname)
                && (vs = rs
                   || QCheck2.Test.fail_reportf
                        "stats differ at jobs=%d on %s (%s):@.row    %a@.\
                         vector %a"
                        jobs src cname Stats.pp rs Stats.pp vs))
              [ 1; 4 ])
        [
          ("mixed", Test_random_queries.catalog);
          ("all-dangling", Test_random_queries.all_dangling_catalog);
        ])

(* Batch-width sensitivity on random queries: the width is physical
   layout only, never semantics. *)
let prop_batch_width_invariant =
  qcheck ~count:60 "batch width never changes value or stats"
    Test_random_queries.query_gen
    (fun src ->
      let cat = Test_random_queries.catalog in
      match
        Core.Pipeline.compile_string Core.Pipeline.Decorrelated cat src
      with
      | Error msg ->
        QCheck2.Test.fail_reportf "compile failed on %s: %s" src msg
      | Ok { Core.Pipeline.physical = None; _ } -> true
      | Ok { Core.Pipeline.physical = Some pq; _ } ->
        let run ~vector ~batch =
          let stats = Stats.create () in
          let outcome =
            match
              Exec.run_under ~stats ~jobs:1 ~vector ~batch cat Env.empty pq
            with
            | v -> Ok v
            | exception Cobj.Value.Type_error m -> Error m
            | exception Lang.Interp.Undefined m -> Error m
          in
          (outcome, stats)
        in
        let rv, rs = run ~vector:false ~batch:1024 in
        List.for_all
          (fun batch ->
            let vv, vs = run ~vector:true ~batch in
            let same =
              match (rv, vv) with
              | Ok a, Ok b -> Value.equal a b
              | Error a, Error b -> String.equal a b
              | _ -> false
            in
            (same && vs = rs)
            || QCheck2.Test.fail_reportf "batch=%d differs on %s" batch src)
          [ 1; 7; 1024 ])

let suite =
  [
    Alcotest.test_case "batch chunking" `Quick test_batch_chunking;
    Alcotest.test_case "selection vectors" `Quick test_selection_vectors;
    Alcotest.test_case "late materialization" `Quick test_late_materialization;
    Alcotest.test_case "filter edge cases" `Quick test_filter_edges;
    Alcotest.test_case "join edge cases" `Quick test_join_edges;
    prop_vector_oracle;
    prop_batch_width_invariant;
  ]
