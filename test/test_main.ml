let () =
  Alcotest.run "nestjoin"
    [
      ("value", Test_value.suite);
      ("ctype", Test_ctype.suite);
      ("env", Test_env.suite);
      ("parser", Test_parser.suite);
      ("types", Test_types.suite);
      ("interp", Test_interp.suite);
      ("algebra", Test_algebra.suite);
      ("engine", Test_engine.suite);
      ("classify", Test_classify.suite);
      ("decorrelate", Test_decorrelate.suite);
      ("planner", Test_planner.suite);
      ("workload", Test_workload.suite);
      ("e2e", Test_e2e.suite);
      ("random-queries", Test_random_queries.suite);
      ("schema", Test_schema.suite);
      ("rewrite", Test_rewrite.suite);
      ("build", Test_build.suite);
      ("equivalences", Test_equivalences.suite);
      ("compile", Test_compile.suite);
      ("simplify", Test_simplify.suite);
      ("reorder", Test_reorder.suite);
      ("variants", Test_variants.suite);
      ("stats", Test_stats.suite);
      ("bloom", Test_bloom.suite);
      ("batch", Test_batch.suite);
      ("verify", Test_verify.suite);
      ("certify", Test_certify.suite);
      ("lint", Test_lint.suite);
      ("obs", Test_obs.suite);
      ("profile", Test_profile.suite);
      ("shred", Test_shred.suite);
      ("server", Test_server.suite);
    ]
