(* Logical algebra tests: operator semantics against hand-computed results,
   schema inference, and the paper's §6 algebraic equivalences. *)

open Helpers
module Value = Cobj.Value
module Plan = Algebra.Plan
module Sem = Algebra.Sem

let cat = xy_catalog ()
let table n v = Plan.Table { name = n; var = v }
let x = table "X" "x"
let y = table "Y" "y"

let rows plan = Sem.rows cat Cobj.Env.empty plan

let rows_agree name p1 p2 =
  let r1 = rows p1 and r2 = rows p2 in
  let pp = Fmt.Dump.list Cobj.Env.pp in
  if not (List.length r1 = List.length r2 && List.for_all2 Cobj.Env.equal r1 r2)
  then
    Alcotest.failf "%s:@.left  = %a@.right = %a" name pp r1 pp r2

let card plan = List.length (rows plan)

let test_select () =
  let p = Plan.Select { pred = parse "x.b = 1"; input = x } in
  Alcotest.check Alcotest.int "two rows with b=1" 2 (card p)

let test_join_product () =
  let p = Plan.Join { pred = Lang.Ast.vbool true; left = x; right = y } in
  Alcotest.check Alcotest.int "product 5x5" 25 (card p);
  let eq = Plan.Join { pred = parse "x.b = y.d"; left = x; right = y } in
  (* b=1 rows: 2 X-rows x 2 Y-rows; b=3: 2 x 2; b=5: 0 *)
  Alcotest.check Alcotest.int "equijoin" 8 (card eq)

let test_semijoin_antijoin () =
  let semi = Plan.Semijoin { pred = parse "x.b = y.d"; left = x; right = y } in
  let anti = Plan.Antijoin { pred = parse "x.b = y.d"; left = x; right = y } in
  Alcotest.check Alcotest.int "semi keeps matched" 4 (card semi);
  Alcotest.check Alcotest.int "anti keeps dangling" 1 (card anti);
  Alcotest.check Alcotest.int "semi + anti = all" 5 (card semi + card anti)

let test_outerjoin () =
  let oj = Plan.Outerjoin { pred = parse "x.b = y.d"; left = x; right = y } in
  (* matched rows as in the join (8) plus 1 padded dangling row *)
  Alcotest.check Alcotest.int "outerjoin" 9 (card oj);
  let padded =
    rows oj
    |> List.filter (fun r -> Value.equal (Cobj.Env.find "y" r) Value.Null)
  in
  Alcotest.check Alcotest.int "one padded row" 1 (List.length padded)

let nj =
  Plan.Nestjoin
    { pred = parse "x.b = y.d"; func = parse "y.c"; label = "zs"; left = x;
      right = y }

let test_nestjoin () =
  Alcotest.check Alcotest.int "every left row survives" 5 (card nj);
  let dangling =
    rows nj
    |> List.filter (fun r -> Value.equal (Cobj.Env.find "zs" r) (vset []))
  in
  Alcotest.check Alcotest.int "dangling row gets empty set" 1
    (List.length dangling)

let test_nestjoin_func () =
  (* the nest join function may combine both sides *)
  let p =
    Plan.Nestjoin
      { pred = parse "x.b = y.d"; func = parse "x.a + y.c"; label = "zs";
        left = x; right = y }
  in
  let row =
    rows p
    |> List.find (fun r ->
           Value.equal (Cobj.Env.find "x" r)
             (tup [ ("a", vi 1); ("b", vi 1); ("s", vset [ vi 1; vi 2 ]) ]))
  in
  Alcotest.check value "G(x,y) = x.a + y.c over matches"
    (vset [ vi 2; vi 3 ])
    (Cobj.Env.find "zs" row)

let test_unnest () =
  let p = Plan.Unnest { expr = parse "x.s"; var = "w"; input = x } in
  (* set cardinalities: 2 + 1 + 0 + 1 + 2 = 6 *)
  Alcotest.check Alcotest.int "unnest multiplies" 6 (card p)

let test_nest_and_nest_star () =
  let oj = Plan.Outerjoin { pred = parse "x.b = y.d"; left = x; right = y } in
  let plain =
    Plan.Nest
      { by = [ "x" ]; label = "zs"; func = parse "y.c"; nulls = []; input = oj }
  in
  let star =
    Plan.Nest
      { by = [ "x" ]; label = "zs"; func = parse "y.c"; nulls = [ "y" ];
        input = oj }
  in
  (* plain ν groups the padded row into {NULL-projected garbage}: here
     y.c of a NULL y raises, so use a func robust to it: count groups. *)
  ignore plain;
  rows_agree "ν* ∘ outerjoin ≡ nest join (§6)" star nj

let test_project_dedups () =
  let p =
    Plan.Project
      { vars = [ "k" ];
        input = Plan.Extend { var = "k"; expr = parse "x.b"; input = x } }
  in
  (* b values: 1, 1, 5, 3, 3 → 3 distinct *)
  Alcotest.check Alcotest.int "project dedups" 3 (card p)

let test_apply () =
  let sub =
    {
      Plan.plan = Plan.Select { pred = parse "y.d = x.b"; input = y };
      result = parse "y.c";
    }
  in
  let p = Plan.Apply { var = "z"; subquery = sub; input = x } in
  Alcotest.check Alcotest.int "apply binds per row" 5 (card p);
  let dangling =
    rows p
    |> List.filter (fun r -> Value.equal (Cobj.Env.find "z" r) (vset []))
  in
  Alcotest.check Alcotest.int "dangling row binds empty set" 1
    (List.length dangling)

(* --- §6 equivalences ----------------------------------------------------- *)

(* π_X (X Δ Y) = X *)
let test_project_nestjoin_elim () =
  rows_agree "π_x (X Δ Y) = X"
    (Plan.Project { vars = [ "x" ]; input = nj })
    x

(* (X ⋈_{r(x,y)} Y) Δ_{r(x,z)} Z ≡ (X Δ_{r(x,z)} Z) ⋈_{r(x,y)} Y *)
let test_nestjoin_join_commute_left () =
  let z = table "Y" "w" in
  let lhs =
    Plan.Nestjoin
      { pred = parse "x.a = w.c"; func = parse "w.d"; label = "g";
        left = Plan.Join { pred = parse "x.b = y.d"; left = x; right = y };
        right = z }
  in
  let rhs =
    Plan.Join
      { pred = parse "x.b = y.d";
        left =
          Plan.Nestjoin
            { pred = parse "x.a = w.c"; func = parse "w.d"; label = "g";
              left = x; right = z };
        right = y }
  in
  (* same multiset of bindings, possibly different variable order: compare
     projections over a common variable list *)
  let proj p = Plan.Project { vars = [ "x"; "y"; "g" ]; input = p } in
  rows_agree "(X ⋈ Y) Δ Z ≡ (X Δ Z) ⋈ Y" (proj lhs) (proj rhs)

(* (X ⋈_{r(x,y)} Y) Δ_{r(y,z)} Z ≡ X ⋈_{r(x,y)} (Y Δ_{r(y,z)} Z) *)
let test_nestjoin_join_commute_right () =
  let z = table "Y" "w" in
  let lhs =
    Plan.Nestjoin
      { pred = parse "y.c = w.c"; func = parse "w.d"; label = "g";
        left = Plan.Join { pred = parse "x.b = y.d"; left = x; right = y };
        right = z }
  in
  let rhs =
    Plan.Join
      { pred = parse "x.b = y.d"; left = x;
        right =
          Plan.Nestjoin
            { pred = parse "y.c = w.c"; func = parse "w.d"; label = "g";
              left = y; right = z } }
  in
  let proj p = Plan.Project { vars = [ "x"; "y"; "g" ]; input = p } in
  rows_agree "(X ⋈ Y) Δ Z ≡ X ⋈ (Y Δ Z)" (proj lhs) (proj rhs)

(* The nest join is NOT commutative: exhibit the asymmetry. *)
let test_nestjoin_not_commutative () =
  let ab =
    Plan.Nestjoin
      { pred = parse "x.b = y.d"; func = parse "y.c"; label = "g"; left = x;
        right = y }
  in
  let ba =
    Plan.Nestjoin
      { pred = parse "x.b = y.d"; func = parse "y.c"; label = "g"; left = y;
        right = x }
  in
  Alcotest.check Alcotest.bool "X Δ Y ≠ Y Δ X (already differently typed)"
    false
    (match Algebra.Typing.(schema_of cat [] ab, schema_of cat [] ba) with
    | Ok sa, Ok sb -> sa = sb
    | _, _ -> true)

(* --- typing -------------------------------------------------------------- *)

let test_schema_inference () =
  match Algebra.Typing.schema_of cat [] nj with
  | Error msg -> Alcotest.fail msg
  | Ok schema ->
    Alcotest.(check (list string))
      "nest join schema vars" [ "x"; "zs" ] (List.map fst schema |> List.sort compare);
    Alcotest.check ctype "label type"
      Cobj.Ctype.(TSet TInt)
      (List.assoc "zs" schema)

let test_query_typing () =
  let q = { Plan.plan = nj; result = parse "COUNT(zs) + x.a" } in
  Alcotest.check ctype "query type"
    Cobj.Ctype.(TSet TInt)
    (Algebra.Typing.query_type_exn cat q)

let test_typing_errors () =
  let bad = Plan.Select { pred = parse "x.a"; input = x } in
  (match Algebra.Typing.schema_of cat [] bad with
  | Ok _ -> Alcotest.fail "non-boolean predicate accepted"
  | Error _ -> ());
  let bad2 = Plan.Project { vars = [ "nope" ]; input = x } in
  match Algebra.Typing.schema_of cat [] bad2 with
  | Ok _ -> Alcotest.fail "projection on unbound variable accepted"
  | Error _ -> ()

(* The error paths carry enough context to debug a broken rewrite: the
   failing variable, the schema it was checked against, the catalog. *)
let test_typing_error_messages () =
  let expect_err needle plan =
    match Algebra.Typing.schema_of cat [] plan with
    | Ok _ -> Alcotest.failf "expected an error mentioning %S" needle
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S in %S" needle msg)
        true
        (Astring.String.is_infix ~affix:needle msg)
  in
  expect_err "unknown extension NOPE (catalog:"
    (Plan.Table { name = "NOPE"; var = "n" });
  expect_err "project: unbound variable nope (schema"
    (Plan.Project { vars = [ "nope" ]; input = x });
  expect_err "nest: unbound variable g (schema"
    (Plan.Nest
       { by = [ "g" ]; label = "l"; func = parse "x.a"; nulls = []; input = x });
  expect_err "unnest expects a collection"
    (Plan.Unnest { expr = parse "x.a"; var = "v"; input = x });
  expect_err "bound only on the left" (Plan.Union { left = x; right = y })

let test_union () =
  let low = Plan.Select { pred = parse "x.b = 1"; input = x } in
  let high = Plan.Select { pred = parse "x.b = 3"; input = x } in
  let u = Plan.Union { left = low; right = high } in
  Alcotest.check Alcotest.int "union of disjoint selections" 4 (card u);
  (* idempotence *)
  rows_agree "X \xe2\x88\xaa X = X" (Plan.Union { left = x; right = x }) x;
  (match Plan.well_formed (Plan.Union { left = x; right = y }) with
  | Ok () -> Alcotest.fail "union of different schemas accepted"
  | Error _ -> ());
  match Algebra.Typing.schema_of cat [] u with
  | Ok schema ->
    Alcotest.(check (list string)) "union schema" [ "x" ] (List.map fst schema)
  | Error msg -> Alcotest.fail msg

let test_well_formed () =
  (match Plan.well_formed nj with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let dup = Plan.Join { pred = parse "true"; left = x; right = x } in
  match Plan.well_formed dup with
  | Ok () -> Alcotest.fail "duplicate binding accepted"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "select" `Quick test_select;
    Alcotest.test_case "join and product" `Quick test_join_product;
    Alcotest.test_case "semijoin / antijoin" `Quick test_semijoin_antijoin;
    Alcotest.test_case "outerjoin pads" `Quick test_outerjoin;
    Alcotest.test_case "nest join" `Quick test_nestjoin;
    Alcotest.test_case "nest join function" `Quick test_nestjoin_func;
    Alcotest.test_case "unnest" `Quick test_unnest;
    Alcotest.test_case "ν* over outerjoin = nest join" `Quick
      test_nest_and_nest_star;
    Alcotest.test_case "project dedups" `Quick test_project_dedups;
    Alcotest.test_case "apply" `Quick test_apply;
    Alcotest.test_case "π eliminates dead nest join" `Quick
      test_project_nestjoin_elim;
    Alcotest.test_case "nest join commutes with join (left)" `Quick
      test_nestjoin_join_commute_left;
    Alcotest.test_case "nest join commutes with join (right)" `Quick
      test_nestjoin_join_commute_right;
    Alcotest.test_case "nest join not commutative" `Quick
      test_nestjoin_not_commutative;
    Alcotest.test_case "schema inference" `Quick test_schema_inference;
    Alcotest.test_case "query typing" `Quick test_query_typing;
    Alcotest.test_case "typing errors" `Quick test_typing_errors;
    Alcotest.test_case "typing error messages carry context" `Quick
      test_typing_error_messages;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "well-formedness" `Quick test_well_formed;
  ]
