(* The query lint: Table 2 agreement (lint classification = classifier
   verdict = what the decorrelator actually builds), and COUNT-bug-risk
   flagging on queries that demonstrably lose rows under the Kim
   baseline. *)

module Ast = Lang.Ast
module Plan = Algebra.Plan
module Lint = Analysis.Lint
module Value = Cobj.Value

(* Table 2 assumes x.a : P INT and x.b : INT — the xyz schema's X. The
   subquery result z = SELECT y.a ... : P INT, correlated on x.b. *)
let catalog =
  Workload.Gen.xyz
    { Workload.Gen.default_xyz with
      base = { Workload.Gen.default_xy with nx = 12; ny = 12; seed = 5 } }

let subquery_src = "SELECT y.a FROM Y y WHERE y.b = x.b"

let query_for_row (row : Core.Table2.row) =
  let sub = Lang.Parser.expr subquery_src in
  let pred = Ast.subst "z" sub (Core.Table2.predicate row) in
  Ast.sfw ~where:pred ~select:(Ast.path "x" [ "id" ])
    [ ("x", Ast.TableRef "X") ]

let kind_matches (expected : Core.Table2.expected) (kind : Lint.kind) =
  match (expected, kind) with
  | Core.Table2.Semijoin, Lint.Semijoin _
  | Core.Table2.Antijoin, Lint.Antijoin _
  | Core.Table2.Grouping, Lint.Grouping _ ->
    true
  | _ -> false

let plan_has pred q = Plan.fold (fun acc node -> acc || pred node) false q.Plan.plan

let decorrelate_matches expected q =
  (* rewrite/reorder off: the logical plan is the decorrelator's own
     output, so the node kind is exactly what [flatten_one] chose *)
  match
    Core.Pipeline.compile ~rewrite:false ~reorder:false ~verify:true
      Core.Pipeline.Decorrelated catalog q
  with
  | Error msg -> Alcotest.failf "compile failed: %s" msg
  | Ok { logical = None; _ } -> Alcotest.fail "no logical plan"
  | Ok { logical = Some lq; _ } -> (
    match (expected : Core.Table2.expected) with
    | Core.Table2.Semijoin ->
      plan_has (function Plan.Semijoin _ -> true | _ -> false) lq
    | Core.Table2.Antijoin ->
      plan_has (function Plan.Antijoin _ -> true | _ -> false) lq
    | Core.Table2.Grouping ->
      plan_has (function Plan.Nestjoin _ | Plan.Apply _ -> true | _ -> false)
        lq)

let test_table2_agreement () =
  let participating = ref 0 in
  List.iter
    (fun (row : Core.Table2.row) ->
      let q = query_for_row row in
      match Lint.query catalog q with
      | Error _ ->
        (* a few rows need a differently-typed z (e.g. variant-valued) and
           do not typecheck against this template — they are skipped, and
           the participation floor below keeps the skip honest *)
        ()
      | Ok (_t, diags) -> (
        incr participating;
        match diags with
        | [ d ] ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: lint agrees with Table 2 (%s, got %s)"
               row.Core.Table2.name
               (Core.Table2.expected_to_string row.Core.Table2.expected)
               (Lint.kind_name d.Lint.kind))
            true
            (kind_matches row.Core.Table2.expected d.Lint.kind);
          Alcotest.(check bool)
            (Printf.sprintf "%s: decorrelate built the lint verdict"
               row.Core.Table2.name)
            true
            (decorrelate_matches row.Core.Table2.expected q);
          (* semijoin-class predicates are never COUNT-bug risks; the
             antijoin/grouping classes always are (they hold on z = ∅) *)
          Alcotest.(check bool)
            (Printf.sprintf "%s: kim_risk" row.Core.Table2.name)
            (match row.Core.Table2.expected with
            | Core.Table2.Semijoin -> false
            | Core.Table2.Antijoin | Core.Table2.Grouping -> true)
            d.Lint.kim_risk
        | _ ->
          Alcotest.failf "%s: expected exactly one diagnostic, got %d"
            row.Core.Table2.name (List.length diags)))
    Core.Table2.rows;
  Alcotest.(check bool)
    (Printf.sprintf "enough Table 2 rows participate (%d)" !participating)
    true (!participating >= 20)

(* --- COUNT-bug flagging on an actual Kim-bug witness --------------------- *)

let bug_catalog =
  Workload.Gen.xy
    { Workload.Gen.default_xy with
      nx = 40; ny = 40; key_dom = 10; dangling = 0.3; val_dom = 5;
      seed = 2024 }

let test_flags_actual_count_bug () =
  let src =
    "SELECT x.id FROM X x WHERE x.a = COUNT(SELECT y.id FROM Y y WHERE x.b \
     = y.b)"
  in
  (* the lint must flag it... *)
  (match Lint.query_string bug_catalog src with
  | Error msg -> Alcotest.failf "lint failed: %s" msg
  | Ok (_, [ d ]) ->
    Alcotest.(check bool) "grouping-required" true
      (match d.Lint.kind with Lint.Grouping _ -> true | _ -> false);
    Alcotest.(check bool) "correlated" true d.Lint.correlated;
    Alcotest.(check bool) "kim_risk" true d.Lint.kim_risk
  | Ok (_, ds) -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
  (* ...and the flag corresponds to rows Kim actually loses *)
  let run strategy =
    match Core.Pipeline.run strategy bug_catalog src with
    | Ok v -> v
    | Error msg -> Alcotest.failf "%s failed: %s" (Core.Pipeline.strategy_name strategy) msg
  in
  let reference = run Core.Pipeline.Interp in
  let kim = run Core.Pipeline.Kim_baseline in
  let lost = Value.set_diff reference kim in
  Alcotest.(check bool) "Kim drops dangling rows here" false
    (Value.set_is_empty lost);
  let fixed = run Core.Pipeline.Decorrelated in
  Alcotest.(check bool) "nest join keeps them" true
    (Value.equal reference fixed)

let test_semijoin_not_flagged () =
  let src =
    "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)"
  in
  match Lint.query_string bug_catalog src with
  | Error msg -> Alcotest.failf "lint failed: %s" msg
  | Ok (_, [ d ]) ->
    Alcotest.(check bool) "semijoin-rewritable" true
      (match d.Lint.kind with Lint.Semijoin _ -> true | _ -> false);
    Alcotest.(check bool) "no kim risk" false d.Lint.kim_risk;
    Alcotest.(check int) "not a strict warning" 0
      (List.length (Lint.warnings [ d ]))
  | Ok (_, ds) -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_select_clause_nesting () =
  let src =
    "SELECT (i = x.id, vs = (SELECT y.a FROM Y y WHERE x.b = y.b)) FROM X x"
  in
  match Lint.query_string bug_catalog src with
  | Error msg -> Alcotest.failf "lint failed: %s" msg
  | Ok (_, [ d ]) ->
    Alcotest.(check bool) "select-clause" true (d.Lint.clause = Lint.Select_clause);
    Alcotest.(check bool) "grouping-required" true
      (match d.Lint.kind with Lint.Grouping _ -> true | _ -> false)
  | Ok (_, ds) -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_uncorrelated () =
  let src = "SELECT x.id FROM X x WHERE COUNT(SELECT y.a FROM Y y WHERE y.b = 3) = x.a" in
  match Lint.query_string bug_catalog src with
  | Error msg -> Alcotest.failf "lint failed: %s" msg
  | Ok (_, [ d ]) ->
    Alcotest.(check bool) "uncorrelated, no risk" false d.Lint.kim_risk;
    Alcotest.(check bool) "not correlated" false d.Lint.correlated
  | Ok (_, ds) -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_render_mentions_risk () =
  let src =
    "SELECT x.id FROM X x WHERE x.s SUBSETEQ (SELECT y.a FROM Y y WHERE x.b \
     = y.b)"
  in
  match Lint.query_string bug_catalog src with
  | Error msg -> Alcotest.failf "lint failed: %s" msg
  | Ok (_, diags) ->
    let s = Lint.render diags in
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "render mentions %S" needle)
          true
          (Astring.String.is_infix ~affix:needle s))
      [ "grouping-required"; "COUNT-bug risk"; "SUBSETEQ" ]

let suite =
  [
    Alcotest.test_case "Table 2 agreement (lint = classifier = decorrelator)"
      `Quick test_table2_agreement;
    Alcotest.test_case "flags a real Kim COUNT bug" `Quick
      test_flags_actual_count_bug;
    Alcotest.test_case "semijoin class is not flagged" `Quick
      test_semijoin_not_flagged;
    Alcotest.test_case "SELECT-clause nesting groups" `Quick
      test_select_clause_nesting;
    Alcotest.test_case "uncorrelated subqueries carry no risk" `Quick
      test_uncorrelated;
    Alcotest.test_case "render mentions the risk" `Quick
      test_render_mentions_risk;
  ]
