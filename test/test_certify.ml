(* The rewrite certifier: mutation tests (each hand-broken rewrite step is
   caught by its specific rule, with the phase and step index preserved),
   the §6 build-side proof obligation in both directions, the whole-phase
   obligations, and a property that a random query corpus certifies clean
   under every strategy with the EXPLAIN ANALYZE bounds cross-check armed. *)

open Helpers
module Plan = Algebra.Plan
module P = Engine.Physical
module C = Analysis.Certify
module Steps = Core.Steps

(* Register the certifier (and annotator + cost key hint) for the whole
   test binary: with INSIDE_DUNE set, [Pipeline.compile] then certifies
   every rewrite step recorded anywhere in the suite. *)
let () = Analysis.Certify.install ()

let catalog = xy_catalog ()
let scan_x = Plan.Table { name = "X"; var = "x" }
let scan_y = Plan.Table { name = "Y"; var = "y" }

let expect_rule ?step ~phase ~rule = function
  | Ok () ->
    Alcotest.failf "expected a %s violation, but the steps certified" rule
  | Error (v : C.violation) ->
    Alcotest.(check string) "rule" rule v.C.rule;
    Alcotest.(check string) "phase" phase v.C.phase;
    Alcotest.(check (option int)) "step index" step v.C.step;
    (* the report must carry a pretty-printed subplan *)
    Alcotest.(check bool) "subplan rendered" true (String.length v.C.subplan > 0)

let step ?(meta = []) rule before after =
  { Steps.rule; before; after; meta }

(* A step that genuinely certifies — used as a prefix to check that the
   reported index points at the broken step, not the first one. *)
let valid_step =
  step "select-true-elim"
    (Plan.Select { pred = Lang.Ast.vbool true; input = scan_x })
    scan_x

(* --- mutation tests: one hand-broken step per optimizer pass ------------- *)

(* decorrelate: flattening a COUNT-bound predicate to a semijoin is the
   literal COUNT bug — the classifier's ¬∃ verdict does not justify it. *)
let test_count_bug_flattening () =
  let subquery = { Plan.plan = scan_y; result = parse "y.c" } in
  let broken =
    step ~meta:[ ("label", "z") ] "apply-to-semijoin"
      (Plan.Select
         {
           pred = parse "COUNT(z) = 0";
           input = Plan.Apply { var = "z"; subquery; input = scan_x };
         })
      (Plan.Semijoin { pred = parse "x.b = y.c"; left = scan_x; right = scan_y })
  in
  expect_rule ~step:0 ~phase:"decorrelate" ~rule:"count-bug-safety"
    (C.check_steps ~phase:"decorrelate" catalog [ broken ])

(* decorrelate, grouping form: the nest join must rebind the Apply
   variable, not a fresh label. *)
let test_nestjoin_rebinds_wrong_label () =
  let subquery = { Plan.plan = scan_y; result = parse "y.c" } in
  let broken =
    step ~meta:[ ("label", "z") ] "apply-to-nestjoin"
      (Plan.Apply { var = "z"; subquery; input = scan_x })
      (Plan.Nestjoin
         {
           pred = parse "x.b = y.c";
           func = parse "y.c";
           label = "g";
           left = scan_x;
           right = scan_y;
         })
  in
  expect_rule ~step:0 ~phase:"decorrelate" ~rule:"apply-to-nestjoin"
    (C.check_steps ~phase:"decorrelate" catalog [ broken ])

(* rewrite: fusing two selections while dropping a conjunct. The broken
   step sits at index 1 behind a valid one — the index must point at it. *)
let test_select_fuse_drops_conjunct () =
  let broken =
    step "select-fuse"
      (Plan.Select
         {
           pred = parse "x.a = 1";
           input = Plan.Select { pred = parse "x.b = 2"; input = scan_x };
         })
      (Plan.Select { pred = parse "x.a = 1"; input = scan_x })
  in
  expect_rule ~step:1 ~phase:"rewrite" ~rule:"select-fuse"
    (C.check_steps ~phase:"rewrite" catalog [ valid_step; broken ])

(* rewrite: eliminating a dead nest join must return the *left* operand. *)
let test_dead_nestjoin_returns_wrong_operand () =
  let broken =
    step ~meta:[ ("label", "g") ] "dead-nestjoin-elim"
      (Plan.Nestjoin
         {
           pred = parse "x.b = y.c";
           func = parse "y.d";
           label = "g";
           left = scan_x;
           right = scan_y;
         })
      scan_y
  in
  expect_rule ~step:0 ~phase:"rewrite" ~rule:"dead-nestjoin-elim"
    (C.check_steps ~phase:"rewrite" catalog [ broken ])

(* simplify: eliminating a selection whose predicate is not provably true. *)
let test_select_true_elim_non_true () =
  let broken =
    step "select-true-elim"
      (Plan.Select { pred = parse "x.a > 1"; input = scan_x })
      scan_x
  in
  expect_rule ~step:0 ~phase:"simplify" ~rule:"select-true-elim"
    (C.check_steps ~phase:"simplify" catalog [ broken ])

(* reorder: sinking a semijoin below a join into the operand whose
   variables its predicate does NOT read. *)
let test_sink_below_join_wrong_side () =
  let scan_w = Plan.Table { name = "Y"; var = "w" } in
  let jp = parse "x.b = y.c" in
  let op_pred = parse "y.d = w.d" (* reads y, the operand left behind *) in
  let broken =
    step "sink-below-join"
      (Plan.Semijoin
         {
           pred = op_pred;
           left = Plan.Join { pred = jp; left = scan_x; right = scan_y };
           right = scan_w;
         })
      (Plan.Join
         {
           pred = jp;
           left =
             Plan.Semijoin { pred = op_pred; left = scan_x; right = scan_w };
           right = scan_y;
         })
  in
  expect_rule ~step:0 ~phase:"reorder" ~rule:"sink-below-join"
    (C.check_steps ~phase:"reorder" catalog [ broken ])

(* a rule name with no registered obligation must not certify silently *)
let test_unknown_rule_rejected () =
  expect_rule ~step:0 ~phase:"rewrite" ~rule:"fuse-everything"
    (C.check_steps ~phase:"rewrite" catalog
       [ step "fuse-everything" scan_x scan_x ])

(* --- whole-phase obligations --------------------------------------------- *)

let test_phase_type_change () =
  expect_rule ~phase:"simplify" ~rule:"phase-type"
    (C.check_logical ~phase:"simplify" catalog
       ~before:{ Plan.plan = scan_x; result = parse "x.a" }
       ~after:{ Plan.plan = scan_x; result = parse "x.s" }
       [])

let test_phase_disjoint_bounds () =
  (* scan X is proven [5,5]; Unit is proven [1,1] — disjoint intervals *)
  expect_rule ~phase:"rewrite" ~rule:"phase-bounds"
    (C.check_logical ~phase:"rewrite" catalog
       ~before:{ Plan.plan = scan_x; result = parse "1" }
       ~after:{ Plan.plan = Plan.Unit; result = parse "1" }
       [])

(* --- §6 build-side obligation, both directions --------------------------- *)

let test_nestjoin_build_side_unproven () =
  (* helpers' Y declares no key, so y.c is not a proven key of the right
     operand: building the hash nest join on the left is illegal *)
  expect_rule ~phase:"plan" ~rule:"nestjoin-build-side"
    (C.check_physical_query ~phase:"plan" catalog
       {
         P.plan =
           P.Hash_nestjoin_left
             {
               lkey = parse "x.b";
               rkey = parse "y.c";
               residual = None;
               func = parse "y.d";
               label = "g";
               left = P.Scan { table = "X"; var = "x" };
               right = P.Scan { table = "Y"; var = "y" };
             };
         result = parse "x.a";
       })

let keyed_catalog =
  let k_elt = Cobj.Ctype.ttuple [ ("id", Cobj.Ctype.TInt); ("v", Cobj.Ctype.TInt) ] in
  let krow id v = tup [ ("id", vi id); ("v", vi v) ] in
  Cobj.Catalog.of_tables
    [
      Cobj.Table.create ~key:[ "id" ] ~name:"K" ~elt:k_elt
        [ krow 1 10; krow 2 20; krow 3 30 ];
      Cobj.Table.create ~name:"L" ~elt:k_elt [ krow 1 1; krow 2 2 ];
    ]

let test_nestjoin_build_side_proven_through_filter () =
  (* the §6 upgrade: the right operand is a *filter* over the keyed scan,
     which the verifier's declared-scan-key special case cannot justify —
     the property inference proves the key survives the selection *)
  match
    C.check_physical_query ~phase:"plan" keyed_catalog
      {
        P.plan =
          P.Hash_nestjoin_left
            {
              lkey = parse "l.id";
              rkey = parse "k.id";
              residual = None;
              func = parse "k.v";
              label = "g";
              left = P.Scan { table = "L"; var = "l" };
              right =
                P.Filter
                  {
                    pred = parse "k.v > 0";
                    input = P.Scan { table = "K"; var = "k" };
                  };
            };
        result = parse "l.id";
      }
  with
  | Ok () -> ()
  | Error v ->
    Alcotest.failf "proven-key build side rejected: %s" (C.to_string v)

(* --- real compilations certify ------------------------------------------- *)

let test_fixed_queries_certify () =
  List.iter
    (fun src ->
      List.iter
        (fun strategy ->
          match
            Core.Pipeline.compile_string ~verify:true ~certify:true strategy
              catalog src
          with
          | Ok _ -> ()
          | Error msg ->
            Alcotest.failf "%s failed certification on %s: %s"
              (Core.Pipeline.strategy_name strategy)
              src msg)
        Core.Pipeline.all_strategies)
    [
      "SELECT x.a FROM X x WHERE x.b IN (SELECT y.d FROM Y y WHERE y.c = \
       x.a)";
      "SELECT x.a FROM X x WHERE COUNT(SELECT y.c FROM Y y WHERE y.d = x.b) \
       = 0";
      "SELECT (a = x.a, m = (SELECT y.c FROM Y y WHERE y.d = x.b)) FROM X x";
      "SELECT x.a FROM X x WHERE x.s SUBSETEQ (SELECT y.c FROM Y y WHERE \
       y.d = x.b)";
    ]

(* --- property: random corpus certifies clean, bounds hold under EA ------- *)

let gen_catalog =
  Workload.Gen.xy
    { Workload.Gen.default_xy with
      nx = 20; ny = 20; key_dom = 5; dangling = 0.25; val_dom = 5; seed = 99 }

let corpus = Workload.Gen.queries ~count:80 ~seed:0x5eed ()

let prop_corpus_certifies =
  qcheck ~count:40
    "corpus certifies under every strategy; EA bounds hold at jobs ∈ {1,4}"
    (QCheck2.Gen.oneofl corpus)
    (fun src ->
      List.for_all
        (fun strategy ->
          match
            Core.Pipeline.compile_string ~verify:true ~certify:true strategy
              gen_catalog src
          with
          | Error msg ->
            QCheck2.Test.fail_reportf "%s failed certification on %s: %s"
              (Core.Pipeline.strategy_name strategy)
              src msg
          | Ok compiled ->
            (* EXPLAIN ANALYZE cross-checks the proven [lo,hi] bounds
               against the actual per-operator row counts — a violation
               surfaces as an Error here *)
            List.for_all
              (fun jobs ->
                if strategy = Core.Pipeline.Interp then
                  (* no physical plan to instrument — execution suffices *)
                  match Core.Pipeline.execute ~jobs gen_catalog compiled with
                  | _ -> true
                else
                  match Core.Pipeline.analyze ~jobs gen_catalog compiled with
                  | Ok _ -> true
                  | Error msg ->
                    QCheck2.Test.fail_reportf
                      "%s jobs=%d bounds cross-check failed on %s: %s"
                      (Core.Pipeline.strategy_name strategy)
                      jobs src msg)
              [ 1; 4 ])
        Core.Pipeline.all_strategies)

let suite =
  [
    Alcotest.test_case "COUNT-bug flattening caught (decorrelate)" `Quick
      test_count_bug_flattening;
    Alcotest.test_case "nest join rebinds the wrong label (decorrelate)"
      `Quick test_nestjoin_rebinds_wrong_label;
    Alcotest.test_case "selection fusion drops a conjunct (rewrite)" `Quick
      test_select_fuse_drops_conjunct;
    Alcotest.test_case "dead nest-join elim keeps wrong operand (rewrite)"
      `Quick test_dead_nestjoin_returns_wrong_operand;
    Alcotest.test_case "non-true selection eliminated (simplify)" `Quick
      test_select_true_elim_non_true;
    Alcotest.test_case "operator sunk into the wrong side (reorder)" `Quick
      test_sink_below_join_wrong_side;
    Alcotest.test_case "unknown rule rejected" `Quick test_unknown_rule_rejected;
    Alcotest.test_case "phase changes the result type" `Quick
      test_phase_type_change;
    Alcotest.test_case "phase moves the proven bounds" `Quick
      test_phase_disjoint_bounds;
    Alcotest.test_case "unproven nest-join build side rejected (§6)" `Quick
      test_nestjoin_build_side_unproven;
    Alcotest.test_case "proven key through a filter accepted (§6)" `Quick
      test_nestjoin_build_side_proven_through_filter;
    Alcotest.test_case "fixed queries certify under every strategy" `Quick
      test_fixed_queries_certify;
    prop_corpus_certifies;
  ]
