(* Server subsystem: LRU mechanics, the wire protocol, the plan/result
   cache correctness contract (the qcheck differential oracle from
   docs/SERVER.md), stats-version invalidation, cross-domain races, and
   one in-process socket round trip through the real daemon. *)

open Helpers

module Lru = Server.Lru
module Cache = Server.Cache
module Protocol = Server.Protocol
module Json = Engine.Json

(* --- LRU ----------------------------------------------------------------- *)

let count_lru capacity = Lru.create ~capacity ~cost:(fun _ _ -> 1) ()

let test_lru_eviction_order () =
  let l = count_lru 3 in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  Lru.add l "c" 3;
  Alcotest.(check (list string)) "mru first" [ "c"; "b"; "a" ] (Lru.keys l);
  (* A hit promotes: "a" is saved, "b" becomes the victim. *)
  Alcotest.(check (option int)) "hit" (Some 1) (Lru.find l "a");
  Lru.add l "d" 4;
  Alcotest.(check (list string)) "b evicted" [ "d"; "a"; "c" ] (Lru.keys l);
  Alcotest.(check (option int)) "b gone" None (Lru.find l "b");
  Alcotest.(check int) "evictions" 1 (Lru.evictions l);
  Alcotest.(check int) "hits" 1 (Lru.hits l);
  Alcotest.(check int) "misses" 1 (Lru.misses l)

let test_lru_cost_bound () =
  let l = Lru.create ~capacity:10 ~cost:(fun _ v -> v) () in
  Lru.add l "a" 4;
  Lru.add l "b" 4;
  Alcotest.(check int) "cost 8" 8 (Lru.total_cost l);
  (* 4 more does not fit: the LRU tail ("a") goes. *)
  Lru.add l "c" 4;
  Alcotest.(check (list string)) "a evicted" [ "c"; "b" ] (Lru.keys l);
  Alcotest.(check int) "cost still 8" 8 (Lru.total_cost l);
  (* An entry larger than the whole cache is rejected, visibly. *)
  Lru.add l "huge" 11;
  Alcotest.(check bool) "huge rejected" false (Lru.mem l "huge");
  Alcotest.(check int) "rejection counted" 2 (Lru.evictions l)

let test_lru_replace () =
  let l = count_lru 3 in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  Lru.add l "a" 10;
  Alcotest.(check int) "no duplicate" 2 (Lru.length l);
  Alcotest.(check (list string)) "replaced entry is mru" [ "a"; "b" ]
    (Lru.keys l);
  Alcotest.(check (option int)) "new value" (Some 10) (Lru.find l "a")

let test_lru_on_evict () =
  let evicted = ref [] in
  let l =
    Lru.create
      ~on_evict:(fun k _ -> evicted := k :: !evicted)
      ~capacity:2
      ~cost:(fun _ _ -> 1)
      ()
  in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  Lru.add l "c" 3;
  Lru.add l "d" 4;
  Alcotest.(check (list string)) "evicted in lru order" [ "b"; "a" ]
    !evicted;
  (* remove does not fire the hook; clear does. *)
  Lru.remove l "c";
  Alcotest.(check int) "remove silent" 2 (List.length !evicted);
  Alcotest.(check int) "clear count" 1 (Lru.clear l);
  Alcotest.(check int) "clear fires hook" 3 (List.length !evicted)

let test_lru_cross_domain () =
  (* Four domains hammer one byte-bounded LRU; the invariants (bounded
     cost, no crash, sane counters) must hold under the races. *)
  let l = Lru.create ~capacity:64 ~cost:(fun _ v -> v) () in
  let worker seed () =
    let st = Random.State.make [| seed |] in
    for _ = 1 to 5_000 do
      let k = Random.State.int st 32 in
      if Random.State.bool st then Lru.add l k (1 + Random.State.int st 8)
      else ignore (Lru.find l k)
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker (0x5eed + i))) in
  List.iter Domain.join domains;
  Alcotest.(check bool) "cost bounded" true (Lru.total_cost l <= 64);
  Alcotest.(check bool) "length sane" true (Lru.length l <= 64);
  Alcotest.(check bool) "lookups were accounted" true
    (Lru.hits l + Lru.misses l > 0
    && Lru.hits l + Lru.misses l <= 20_000)

(* --- protocol ------------------------------------------------------------ *)

let test_protocol_parse () =
  let ok s = Result.get_ok (Protocol.parse_json s) in
  Alcotest.(check bool) "object" true
    (ok {|{"op":"query","q":"x","jobs":2}|}
    = Json.Obj
        [ ("op", Json.String "query"); ("q", Json.String "x");
          ("jobs", Json.Int 2) ]);
  Alcotest.(check bool) "nested + escapes" true
    (ok {|{"a":[1,-2.5,true,null,"q\nxA"]}|}
    = Json.Obj
        [ ( "a",
            Json.List
              [ Json.Int 1; Json.Float (-2.5); Json.Bool true; Json.Null;
                Json.String "q\nxA" ] ) ]);
  let err s =
    match Protocol.parse_json s with
    | Error m -> m
    | Ok _ -> Alcotest.failf "parsed %S" s
  in
  Alcotest.(check string) "junk" "invalid literal at offset 0" (err "nope");
  Alcotest.(check string) "trailing" "trailing garbage at offset 3"
    (err "{} x");
  Alcotest.(check bool) "lone surrogate rejected" true
    (Result.is_error (Protocol.parse_json {|"\udc00"|}))

let test_protocol_requests () =
  (match Protocol.request_of_line {|{"id":7,"op":"ping"}|} with
  | Ok { Protocol.id = Some 7; op = Protocol.Ping } -> ()
  | _ -> Alcotest.fail "ping decode");
  (match
     Protocol.request_of_line
       {|{"op":"query","q":"SELECT 1","strategy":"kim","cache":false}|}
   with
  | Ok { Protocol.op = Protocol.Query q; _ } ->
    Alcotest.(check string) "q" "SELECT 1" q.Protocol.q;
    Alcotest.(check bool) "strategy" true
      (q.Protocol.strategy = Some Core.Pipeline.Kim_baseline);
    Alcotest.(check bool) "cache off" false q.Protocol.use_cache;
    Alcotest.(check bool) "bloom defaults on" true q.Protocol.bloom
  | _ -> Alcotest.fail "query decode");
  let expect_error line code =
    match Protocol.request_of_line line with
    | Error (c, _) -> Alcotest.(check string) line code c
    | Ok _ -> Alcotest.failf "accepted %s" line
  in
  expect_error "not json" "parse_error";
  expect_error {|[1,2]|} "parse_error";
  expect_error {|{"q":"x"}|} "bad_request";
  expect_error {|{"op":"frobnicate"}|} "bad_request";
  expect_error {|{"op":"query"}|} "bad_request";
  expect_error {|{"op":"query","q":"x","strategy":"quantum"}|} "bad_request";
  expect_error {|{"op":"query","q":"x","jobs":"many"}|} "bad_request";
  Alcotest.(check string) "error shape"
    {|{"id":3,"ok":false,"error":{"code":"timeout","message":"late"}}|}
    (Protocol.error ~id:(Some 3) ~code:"timeout" ~message:"late")

(* --- cache correctness --------------------------------------------------- *)

let gen_catalog = Workload.Gen.xy Workload.Gen.default_xy
let corpus = Array.of_list (Workload.Gen.queries ~count:60 ~seed:0x5eed ())

let stats_of f =
  let stats = Engine.Stats.create () in
  let r = f stats in
  (r, stats)

(* The differential oracle: for any corpus query, (1) a cache-off run,
   (2) the cache-miss run that fills the cache, and (3) the plan-hit run
   agree on the value, the rendering, and the full Engine.Stats work
   profile; (4) the result-cache hit replays the same value. *)
let oracle_prop idx =
  let src = corpus.(idx mod Array.length corpus) in
  let strategy = Core.Pipeline.Decorrelated in
  let cache = Cache.create ~plan_capacity:8 ~result_capacity:(1 lsl 20) () in
  let run ?cache:(c = true) t =
    stats_of (fun stats ->
        Cache.query t ~cache:c ~stats ~jobs:1 strategy gen_catalog src)
  in
  let off, off_stats = run ~cache:false cache in
  let miss, miss_stats = run cache in
  let hit, hit_stats =
    (* Drop only the result entry so this run re-executes through the
       cached plan. *)
    ignore (Cache.invalidate_results cache);
    run cache
  in
  let replay, _ = run cache in
  match (off, miss, hit, replay) with
  | Ok off, Ok miss, Ok hit, Ok replay ->
    Value.equal off.Cache.value miss.Cache.value
    && Value.equal off.Cache.value hit.Cache.value
    && Value.equal off.Cache.value replay.Cache.value
    && String.equal off.Cache.rendered replay.Cache.rendered
    && off_stats = miss_stats && off_stats = hit_stats
    && off.Cache.plan = Cache.Bypass
    && miss.Cache.plan = Cache.Miss
    && hit.Cache.plan = Cache.Hit
    && replay.Cache.result = Cache.Hit
  | Error a, Error b, Error c, Error d ->
    (* Failing queries must fail identically with and without caching. *)
    a = b && a = c && a = d
  | _ -> false

let test_cache_outcomes () =
  let cache = Cache.create ~plan_capacity:8 ~result_capacity:4096 () in
  let q =
    "SELECT x.id FROM X x WHERE x.id IN (SELECT y.id FROM Y y WHERE y.b = \
     x.b)"
  in
  let run () =
    Result.get_ok
      (Cache.query cache Core.Pipeline.Decorrelated gen_catalog q)
  in
  let first = run () in
  Alcotest.(check string) "first is a double miss" "miss/miss"
    (Cache.outcome_name first.Cache.plan ^ "/"
    ^ Cache.outcome_name first.Cache.result);
  let second = run () in
  Alcotest.(check string) "second is a double hit" "hit/hit"
    (Cache.outcome_name second.Cache.plan ^ "/"
    ^ Cache.outcome_name second.Cache.result);
  Alcotest.check value "same value" first.Cache.value second.Cache.value;
  (* Whitespace and comments normalize into the same plan key. *)
  let third =
    Result.get_ok
      (Cache.query cache Core.Pipeline.Decorrelated gen_catalog
         ("SELECT   x.id FROM X x\n  WHERE x.id IN (SELECT y.id FROM Y y \
           WHERE y.b = x.b)"))
  in
  Alcotest.(check bool) "normalized plan key hits" true
    (third.Cache.plan = Cache.Hit);
  Alcotest.(check int) "result entries" 1 (Cache.result_entries cache);
  Alcotest.(check bool) "result bytes accounted" true
    (Cache.result_bytes cache > 0)

let test_result_admission_policy () =
  (* The admission policy: a result costing more than admit_fraction
     (default 1/4) of the byte budget is served but never cached — the
     second identical query re-executes (result miss through a plan
     hit) instead of replaying, and each denial is counted. *)
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  let cache = Cache.create ~plan_capacity:8 ~result_capacity:4096 () in
  let big = "SELECT x FROM X x" in
  let small = "SELECT x.id FROM X x WHERE x.id = 1" in
  let run q =
    Result.get_ok (Cache.query cache Core.Pipeline.Decorrelated gen_catalog q)
  in
  let first = run big in
  Alcotest.(check int) "oversized result not admitted" 0
    (Cache.result_entries cache);
  let second = run big in
  Alcotest.(check string) "re-executes: plan hit, result miss" "hit/miss"
    (Cache.outcome_name second.Cache.plan ^ "/"
    ^ Cache.outcome_name second.Cache.result);
  Alcotest.check value "served identically" first.Cache.value
    second.Cache.value;
  Alcotest.(check int) "denials counted" 2
    (Obs.Metrics.counter "server.result_cache.skipped_large");
  let s1 = run small in
  let s2 = run small in
  Alcotest.(check int) "small result admitted" 1 (Cache.result_entries cache);
  Alcotest.(check bool) "and replayed" true (s2.Cache.result = Cache.Hit);
  Alcotest.check value "replay agrees" s1.Cache.value s2.Cache.value;
  Alcotest.(check int) "no further denials" 2
    (Obs.Metrics.counter "server.result_cache.skipped_large");
  Obs.Metrics.disable ();
  Obs.Metrics.reset ()

let test_stats_version_invalidation () =
  let cache = Cache.create ~plan_capacity:8 ~result_capacity:(1 lsl 20) () in
  let q = "SELECT x.id FROM X x WHERE x.a > 0" in
  let run catalog =
    Result.get_ok (Cache.query cache Core.Pipeline.Decorrelated catalog q)
  in
  ignore (run gen_catalog);
  let again = run gen_catalog in
  Alcotest.(check bool) "same catalog hits" true
    (again.Cache.plan = Cache.Hit && again.Cache.result = Cache.Hit);
  (* A new catalog value — even with identical content — carries a new
     statistics version, so every old key is unreachable. *)
  let rebuilt = Workload.Gen.xy Workload.Gen.default_xy in
  Alcotest.(check bool) "fresh stats version" true
    (Cobj.Stats.version rebuilt <> Cobj.Stats.version gen_catalog);
  let after = run rebuilt in
  Alcotest.(check bool) "catalog change misses" true
    (after.Cache.plan = Cache.Miss && after.Cache.result = Cache.Miss);
  Alcotest.check value "but agrees" again.Cache.value after.Cache.value;
  let dropped = Cache.invalidate_results cache in
  Alcotest.(check int) "eager flush" 2 dropped;
  Alcotest.(check int) "counted" 2 (Cache.invalidations cache);
  Alcotest.(check int) "empty" 0 (Cache.result_entries cache)

let test_strategy_cache_keying () =
  (* The plan key includes the strategy, so the same query text under the
     nest-join and shredding backends must occupy distinct slots — a hit
     must never replay a plan compiled for the other backend. *)
  let cache = Cache.create ~plan_capacity:8 ~result_capacity:(1 lsl 20) () in
  let q =
    "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x"
  in
  let run strategy =
    Result.get_ok (Cache.query cache strategy gen_catalog q)
  in
  let nest = run Core.Pipeline.Decorrelated in
  Alcotest.(check string) "nest-join first run misses" "miss"
    (Cache.outcome_name nest.Cache.plan);
  let shred = run Core.Pipeline.Shredded in
  Alcotest.(check string) "shredding misses despite the warm cache" "miss"
    (Cache.outcome_name shred.Cache.plan);
  Alcotest.(check int) "one plan slot per backend" 2
    (Cache.plan_entries cache);
  Alcotest.check value "backends agree" nest.Cache.value shred.Cache.value;
  let nest2 = run Core.Pipeline.Decorrelated in
  let shred2 = run Core.Pipeline.Shredded in
  Alcotest.(check string) "nest-join replays its own plan" "hit"
    (Cache.outcome_name nest2.Cache.plan);
  Alcotest.(check string) "shredding replays its own plan" "hit"
    (Cache.outcome_name shred2.Cache.plan);
  Alcotest.(check int) "no extra slots on replay" 2
    (Cache.plan_entries cache);
  Alcotest.check value "replayed values agree" nest2.Cache.value
    shred2.Cache.value

let test_cache_cross_domain () =
  (* Concurrent sessions share one cache; hammer it from four domains
     with a mix of queries and invalidations. *)
  let cache = Cache.create ~plan_capacity:4 ~result_capacity:8192 () in
  let queries =
    [|
      "SELECT x.id FROM X x WHERE x.a > 0";
      "SELECT y.id FROM Y y WHERE y.b = 1";
      "SELECT x.id FROM X x WHERE x.id IN (SELECT y.id FROM Y y WHERE y.b \
       = x.b)";
      "SELECT x.a FROM X x";
      "SELECT x.id FROM X x WHERE COUNT(SELECT y.id FROM Y y WHERE y.b = \
       x.b) = 0";
    |]
  in
  let expected =
    Array.map
      (fun q ->
        (Result.get_ok
           (Cache.query cache ~cache:false Core.Pipeline.Decorrelated
              gen_catalog q))
          .Cache.value)
      queries
  in
  let failures = Atomic.make 0 in
  let worker seed () =
    let st = Random.State.make [| seed |] in
    for _ = 1 to 200 do
      let i = Random.State.int st (Array.length queries) in
      if Random.State.int st 20 = 0 then
        ignore (Cache.invalidate_results cache)
      else
        match
          Cache.query cache Core.Pipeline.Decorrelated gen_catalog
            queries.(i)
        with
        | Ok r when Value.equal r.Cache.value expected.(i) -> ()
        | _ -> Atomic.incr failures
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker (77 + i))) in
  List.iter Domain.join domains;
  Alcotest.(check int) "all racing lookups agree" 0 (Atomic.get failures);
  Alcotest.(check bool) "plan cache bounded" true
    (Cache.plan_entries cache <= 4)

(* --- daemon round trip --------------------------------------------------- *)

let test_daemon_round_trip () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nestql-test-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  let config =
    {
      Server.Daemon.default_config with
      Server.Daemon.bind = Server.Daemon.Unix_socket path;
      catalog = gen_catalog;
      quiet = true;
    }
  in
  let exit_code = ref (-1) in
  let server = Thread.create (fun () -> exit_code := Server.Daemon.serve config) () in
  match
    Server.Client.connect ~wait_ms:5000 (Server.Daemon.Unix_socket path)
  with
  | Error msg -> Alcotest.failf "connect: %s" msg
  | Ok conn ->
    let ask line = Result.get_ok (Server.Client.request conn line) in
    let field name reply =
      match Protocol.member name reply with
      | Some v -> v
      | None -> Alcotest.failf "reply lacks %s" name
    in
    let pong = ask (Server.Client.obj ~op:"ping" []) in
    Alcotest.(check bool) "pong" true
      (field "result" pong = Json.String "pong");
    let q = "SELECT x.id FROM X x WHERE x.a > 0" in
    let r1 = ask (Server.Client.obj ~op:"query" [ ("q", Json.String q) ]) in
    let r2 = ask (Server.Client.obj ~op:"query" [ ("q", Json.String q) ]) in
    Alcotest.(check bool) "same result" true
      (field "result" r1 = field "result" r2);
    (match field "cache" r2 with
    | Json.Obj c ->
      Alcotest.(check bool) "second query hits" true
        (List.assoc_opt "plan" c = Some (Json.String "hit"))
    | _ -> Alcotest.fail "cache field");
    let bye = ask (Server.Client.obj ~op:"shutdown" []) in
    Alcotest.(check bool) "bye" true (field "result" bye = Json.String "bye");
    Server.Client.close conn;
    Thread.join server;
    Alcotest.(check int) "graceful exit" 0 !exit_code;
    Alcotest.(check bool) "socket removed" true (not (Sys.file_exists path));
    (* The daemon enabled the global metrics registry; put it back so
       later suites see the default-off state. *)
    Obs.Metrics.disable ();
    Obs.Metrics.reset ()

(* --- instrumented replies ------------------------------------------------ *)

(* instrument:true must change only the observability payload of the
   reply (tree, misest, digest), never the result. *)
let test_instrument_identity () =
  let cache = Cache.create ~plan_capacity:8 ~result_capacity:0 () in
  let q = "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y)" in
  let ask instrument =
    match
      Cache.query cache ~instrument Core.Pipeline.Decorrelated gen_catalog q
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "query failed"
  in
  let plain = ask false and instrumented = ask true in
  Alcotest.(check string) "rendered results byte-identical"
    plain.Cache.rendered instrumented.Cache.rendered;
  Alcotest.(check int) "row counts equal" plain.Cache.rows
    instrumented.Cache.rows;
  Alcotest.(check bool) "plain run has no tree" true
    (plain.Cache.tree = None);
  Alcotest.(check bool) "instrumented run has a tree" true
    (instrumented.Cache.tree <> None);
  Alcotest.(check bool) "digest is stable" true
    (String.length plain.Cache.digest = 32
    && plain.Cache.digest = instrumented.Cache.digest)

(* --- slow-query accounting ----------------------------------------------- *)

(* One daemon with slow_ms = Some 0 (every query is slow) and one with a
   huge threshold: slow.query lines and the server.slow_queries counter
   appear iff duration >= threshold. The qlog sink is routed to a temp
   file through the environment, as in production. *)
let daemon_qlog ~slow_ms ~queries =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nestql-slow-%d-%d.sock" (Unix.getpid ())
         (Option.value slow_ms ~default:(-1)))
  in
  if Sys.file_exists sock then Sys.remove sock;
  let qlog = Filename.temp_file "nestql" ".qlog.jsonl" in
  let saved = Sys.getenv_opt "NESTQL_QUERY_LOG" in
  Unix.putenv "NESTQL_QUERY_LOG" qlog;
  let config =
    {
      Server.Daemon.default_config with
      Server.Daemon.bind = Server.Daemon.Unix_socket sock;
      catalog = gen_catalog;
      slow_ms;
      quiet = true;
    }
  in
  let server = Thread.create (fun () -> ignore (Server.Daemon.serve config)) () in
  let lines =
    match
      Server.Client.connect ~wait_ms:5000 (Server.Daemon.Unix_socket sock)
    with
    | Error msg -> Alcotest.failf "connect: %s" msg
    | Ok conn ->
      List.iter
        (fun q ->
          ignore
            (Result.get_ok
               (Server.Client.request conn
                  (Server.Client.obj ~op:"query" [ ("q", Json.String q) ]))))
        queries;
      let slow_counter = Obs.Metrics.counter "server.slow_queries" in
      ignore
        (Result.get_ok
           (Server.Client.request conn (Server.Client.obj ~op:"shutdown" [])));
      Server.Client.close conn;
      Thread.join server;
      let ic = open_in qlog in
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let lines = read [] in
      close_in ic;
      (lines, slow_counter)
  in
  Sys.remove qlog;
  (* There is no unsetenv; /dev/null keeps a stray later emit harmless
     when the variable was not set before the test. *)
  Unix.putenv "NESTQL_QUERY_LOG" (Option.value saved ~default:"/dev/null");
  Obs.Metrics.disable ();
  Obs.Metrics.reset ();
  lines

let test_slow_query_log () =
  let q = "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y)" in
  let has affix line = Astring.String.is_infix ~affix line in
  (* threshold 0: every query is slow *)
  let lines, slow_counter = daemon_qlog ~slow_ms:(Some 0) ~queries:[ q; q ] in
  let serve_lines = List.filter (has "\"event\":\"serve.query\"") lines in
  let slow_lines = List.filter (has "\"event\":\"slow.query\"") lines in
  Alcotest.(check int) "one serve.query per query" 2
    (List.length serve_lines);
  Alcotest.(check int) "every query over a 0ms threshold is slow" 2
    (List.length slow_lines);
  Alcotest.(check int) "server.slow_queries counts them" 2 slow_counter;
  List.iter
    (fun line ->
      Alcotest.(check bool) "serve.query carries cache outcomes" true
        (has "\"plan_cache\":" line && has "\"result_cache\":" line))
    serve_lines;
  (match slow_lines with
  | first :: _ ->
    Alcotest.(check bool) "slow line carries the plan digest" true
      (has "\"plan_digest\":" first);
    Alcotest.(check bool) "slow line carries the threshold" true
      (has "\"threshold_ms\":0" first);
    Alcotest.(check bool) "slow line carries cache outcomes" true
      (has "\"plan_cache\":" first);
    (* the first execution is uncached and instrumented: hot operators
       and misestimates are populated *)
    Alcotest.(check bool) "slow line names hot operators" true
      (has "\"hot\":\"" first && not (has "\"hot\":\"\"" first))
  | [] -> Alcotest.fail "no slow line");
  (* a threshold no real query reaches: nothing is slow *)
  let lines, slow_counter =
    daemon_qlog ~slow_ms:(Some 3_600_000) ~queries:[ q ]
  in
  Alcotest.(check int) "serve.query still logged" 1
    (List.length (List.filter (has "\"event\":\"serve.query\"") lines));
  Alcotest.(check int) "no slow lines under threshold" 0
    (List.length (List.filter (has "\"event\":\"slow.query\"") lines));
  Alcotest.(check int) "counter untouched" 0 slow_counter

(* --- prometheus endpoint ------------------------------------------------- *)

let http_get port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      Buffer.contents buf)

let test_http_metrics_endpoint () =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Obs.Metrics.incr ~by:7 "http.test.counter";
  let healthy = Atomic.make true in
  match Server.Http.start ~port:0 ~healthy:(fun () -> Atomic.get healthy) with
  | Error msg -> Alcotest.failf "http start: %s" msg
  | Ok listener ->
    let port = Server.Http.port listener in
    let page = http_get port "/metrics" in
    Alcotest.(check bool) "200 with prometheus content type" true
      (Astring.String.is_prefix ~affix:"HTTP/1.0 200 OK" page
      && Astring.String.is_infix ~affix:Obs.Prom.content_type page);
    Alcotest.(check bool) "registry rendered" true
      (Astring.String.is_infix
         ~affix:"# TYPE nestql_http_test_counter counter" page
      && Astring.String.is_infix ~affix:"nestql_http_test_counter 7" page);
    Alcotest.(check bool) "healthz ok" true
      (Astring.String.is_prefix ~affix:"HTTP/1.0 200 OK"
         (http_get port "/healthz"));
    Atomic.set healthy false;
    Alcotest.(check bool) "healthz 503 once draining" true
      (Astring.String.is_prefix ~affix:"HTTP/1.0 503"
         (http_get port "/healthz"));
    Alcotest.(check bool) "unknown path 404" true
      (Astring.String.is_prefix ~affix:"HTTP/1.0 404"
         (http_get port "/nope"));
    Server.Http.stop listener;
    Obs.Metrics.reset ();
    Obs.Metrics.disable ();
    (* the listener socket is closed: a fresh connect must fail *)
    Alcotest.(check bool) "listener closed after stop" true
      (match http_get port "/metrics" with
      | _ -> false
      | exception Unix.Unix_error _ -> true)

(* --- metrics_prom protocol op -------------------------------------------- *)

let test_metrics_prom_op () =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nestql-prom-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists sock then Sys.remove sock;
  let config =
    {
      Server.Daemon.default_config with
      Server.Daemon.bind = Server.Daemon.Unix_socket sock;
      catalog = gen_catalog;
      quiet = true;
    }
  in
  let server =
    Thread.create (fun () -> ignore (Server.Daemon.serve config)) ()
  in
  (match
     Server.Client.connect ~wait_ms:5000 (Server.Daemon.Unix_socket sock)
   with
  | Error msg -> Alcotest.failf "connect: %s" msg
  | Ok conn ->
    let ask line = Result.get_ok (Server.Client.request conn line) in
    ignore
      (ask
         (Server.Client.obj ~op:"query"
            [ ("q", Json.String "SELECT x.id FROM X x WHERE x.a > 0") ]));
    let reply = ask (Server.Client.obj ~op:"metrics_prom" []) in
    (match Protocol.member "prom" reply with
    | Some (Json.String page) ->
      Alcotest.(check bool) "page has the requests family" true
        (Astring.String.is_infix
           ~affix:"# TYPE nestql_server_requests counter" page);
      Alcotest.(check bool) "page has the latency histogram" true
        (Astring.String.is_infix
           ~affix:"# TYPE nestql_server_request_us histogram" page);
      Alcotest.(check bool) "labeled duration histogram present" true
        (Astring.String.is_infix ~affix:"nestql_server_query_duration_us"
           page)
    | _ -> Alcotest.fail "metrics_prom reply lacks prom text");
    ignore (ask (Server.Client.obj ~op:"shutdown" []));
    Server.Client.close conn);
  Thread.join server;
  Obs.Metrics.disable ();
  Obs.Metrics.reset ()

let suite =
  [
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru cost bound" `Quick test_lru_cost_bound;
    Alcotest.test_case "lru replace" `Quick test_lru_replace;
    Alcotest.test_case "lru on_evict" `Quick test_lru_on_evict;
    Alcotest.test_case "lru cross-domain races" `Quick test_lru_cross_domain;
    Alcotest.test_case "protocol json parser" `Quick test_protocol_parse;
    Alcotest.test_case "protocol requests" `Quick test_protocol_requests;
    qcheck ~count:120 "cache differential oracle"
      QCheck2.Gen.(int_range 0 (Array.length corpus - 1))
      oracle_prop;
    Alcotest.test_case "cache outcomes" `Quick test_cache_outcomes;
    Alcotest.test_case "result-cache admission policy" `Quick
      test_result_admission_policy;
    Alcotest.test_case "stats-version invalidation" `Quick
      test_stats_version_invalidation;
    Alcotest.test_case "strategy-keyed plan cache" `Quick
      test_strategy_cache_keying;
    Alcotest.test_case "cache cross-domain races" `Quick
      test_cache_cross_domain;
    Alcotest.test_case "daemon round trip" `Quick test_daemon_round_trip;
    Alcotest.test_case "instrumented replies are identical" `Quick
      test_instrument_identity;
    Alcotest.test_case "slow-query log iff threshold" `Quick
      test_slow_query_log;
    Alcotest.test_case "http metrics endpoint" `Quick
      test_http_metrics_endpoint;
    Alcotest.test_case "metrics_prom protocol op" `Quick test_metrics_prom_op;
  ]
