(* Workload generator tests: determinism, declared keys, knob behaviour. *)

module Gen = Workload.Gen
module Value = Cobj.Value
module Table = Cobj.Table
module Catalog = Cobj.Catalog

let card cat name = Table.cardinality (Catalog.find_exn name cat)

let test_determinism () =
  let c1 = Gen.xy Gen.default_xy and c2 = Gen.xy Gen.default_xy in
  List.iter2
    (fun t1 t2 ->
      Alcotest.check Alcotest.bool
        ("same rows for " ^ Table.name t1)
        true
        (Value.equal (Table.to_value t1) (Table.to_value t2)))
    (Catalog.tables c1) (Catalog.tables c2)

let test_seed_changes_data () =
  let c1 = Gen.xy Gen.default_xy in
  let c2 = Gen.xy { Gen.default_xy with seed = 43 } in
  Alcotest.check Alcotest.bool "different seeds differ" false
    (Value.equal
       (Table.to_value (Catalog.find_exn "X" c1))
       (Table.to_value (Catalog.find_exn "X" c2)))

let test_cardinalities () =
  let spec = { Gen.default_xy with nx = 57; ny = 123 } in
  let cat = Gen.xy spec in
  Alcotest.check Alcotest.int "|X|" 57 (card cat "X");
  Alcotest.check Alcotest.int "|Y|" 123 (card cat "Y")

let test_dangling_fraction () =
  let spec = { Gen.default_xy with nx = 1000; dangling = 0.3; seed = 5 } in
  let cat = Gen.xy spec in
  let xs = Table.rows (Catalog.find_exn "X" cat) in
  let dangling =
    List.length
      (List.filter
         (fun r -> Value.as_int (Value.field "b" r) >= spec.Gen.key_dom)
         xs)
  in
  let frac = float_of_int dangling /. 1000.0 in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "dangling fraction %.2f near 0.3" frac)
    true
    (frac > 0.22 && frac < 0.38)

let test_xyz_schema () =
  let cat = Gen.xyz Gen.default_xyz in
  Alcotest.(check (list string)) "tables" [ "X"; "Y"; "Z" ] (Catalog.names cat)

let test_company_consistency () =
  let cat = Gen.company Gen.default_company in
  let depts = Table.rows (Catalog.find_exn "DEPT" cat) in
  let emps = Table.rows (Catalog.find_exn "EMP" cat) in
  Alcotest.check Alcotest.int "10 departments" 10 (List.length depts);
  Alcotest.check Alcotest.int "200 employees" 200 (List.length emps);
  (* every embedded employee appears in the EMP extension *)
  let all_embedded =
    List.concat_map (fun d -> Value.elements (Value.field "emps" d)) depts
  in
  Alcotest.check Alcotest.int "embedding is consistent" 200
    (List.length all_embedded);
  List.iter
    (fun e ->
      if not (List.exists (Value.equal e) emps) then
        Alcotest.fail "embedded employee missing from EMP")
    all_embedded

let test_table1_instances () =
  let cat = Gen.table1 () in
  Alcotest.check Alcotest.int "|X| = 3" 3 (card cat "X");
  Alcotest.check Alcotest.int "|Y| = 3" 3 (card cat "Y")

let test_prng_stability () =
  (* lock the splitmix64 stream: a regression here would silently change
     every bench workload *)
  let rng = Workload.Prng.create 42 in
  let observed = List.init 6 (fun _ -> Workload.Prng.int rng 1000) in
  Alcotest.(check (list int))
    "fixed stream for seed 42"
    [ 853; 72; 964; 941; 812; 265 ]
    observed

(* The pre-fix [Prng.int] folded the whole 62-bit draw with [v mod n],
   over-weighting the first [2^62 mod n] residues. The reference stream
   below replays splitmix64 with that fold; for a bound of [2^61 + 1] about
   half of all draws land in the rejected tail, so the fixed generator must
   diverge from it (while staying in range and deterministic). For small
   bounds the tail is hit with probability < n / 2^62 — streams like the
   one pinned above are unchanged. *)
let splitmix_biased seed =
  let state = ref (Int64.of_int seed) in
  fun n ->
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.shift_right_logical z 2) mod n

let test_prng_rejection () =
  let n = (1 lsl 61) + 1 in
  let rng = Workload.Prng.create 7 in
  let fixed = List.init 64 (fun _ -> Workload.Prng.int rng n) in
  List.iter
    (fun v ->
      Alcotest.check Alcotest.bool "in range" true (v >= 0 && v < n))
    fixed;
  let biased =
    let draw = splitmix_biased 7 in
    List.init 64 (fun _ -> draw n)
  in
  Alcotest.check Alcotest.bool "rejection sampling diverges from mod fold"
    false (fixed = biased)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed changes data" `Quick test_seed_changes_data;
    Alcotest.test_case "cardinalities" `Quick test_cardinalities;
    Alcotest.test_case "dangling fraction" `Quick test_dangling_fraction;
    Alcotest.test_case "xyz schema" `Quick test_xyz_schema;
    Alcotest.test_case "company consistency" `Quick test_company_consistency;
    Alcotest.test_case "table 1 instances" `Quick test_table1_instances;
    Alcotest.test_case "prng stability" `Quick test_prng_stability;
    Alcotest.test_case "prng rejection sampling" `Quick test_prng_rejection;
  ]

let test_distinct_count () =
  let cat = Gen.table1 () in
  let x = Catalog.find_exn "X" cat in
  Alcotest.(check (option int)) "distinct e" (Some 3)
    (Table.distinct_count "e" x);
  Alcotest.(check (option int)) "missing field" None
    (Table.distinct_count "nope" x);
  let y = Catalog.find_exn "Y" cat in
  Alcotest.(check (option int)) "distinct b in Y" (Some 2)
    (Table.distinct_count "b" y);
  (* cached second call agrees *)
  Alcotest.(check (option int)) "cached" (Some 2) (Table.distinct_count "b" y)

let suite = suite @ [ Alcotest.test_case "distinct count" `Quick test_distinct_count ]
