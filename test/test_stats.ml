(* Per-operator instrumentation: the EXPLAIN ANALYZE annotation tree must
   attribute counters to the right node, agree across physical variants of
   the same operator, and sum to exactly what the legacy global [Stats.t]
   records. *)

open Helpers
module Env = Cobj.Env
module P = Engine.Physical
module Exec = Engine.Exec
module Stats = Engine.Stats
module Analyze = Engine.Analyze
module Pipeline = Core.Pipeline

let parse = Lang.Parser.expr
let sx = P.Scan { table = "X"; var = "x" }
let sy = P.Scan { table = "Y"; var = "y" }

let nl_nestjoin =
  P.Nl_nestjoin
    { pred = parse "x.b = y.b"; func = parse "y.a"; label = "s";
      left = sx; right = sy }

let hash_nestjoin =
  P.Hash_nestjoin
    { lkey = parse "x.b"; rkey = parse "y.b"; residual = None;
      func = parse "y.a"; label = "s"; left = sx; right = sy }

let catalogs =
  [
    ("default", Workload.Gen.xy Workload.Gen.default_xy);
    ( "all dangling",
      Workload.Gen.xy
        { Workload.Gen.default_xy with dangling = 1.0; nx = 20; ny = 20; seed = 2 } );
    ( "empty inner",
      Workload.Gen.xy { Workload.Gen.default_xy with ny = 0; nx = 15; seed = 3 } );
    ( "dense keys",
      Workload.Gen.xy
        { Workload.Gen.default_xy with key_dom = 3; nx = 40; ny = 40; seed = 1 } );
  ]

let instrument catalog plan =
  let tree = Analyze.tree_of_plan plan in
  let rows = Exec.rows_instrumented tree catalog Env.empty plan in
  (rows, tree)

let table_size catalog name =
  List.length (Cobj.Table.rows (Cobj.Catalog.find_exn name catalog))

(* Counters land on the node doing the work: the nest-join node owns the
   build and the probes, each scan child owns its own row production. *)
let per_node_attribution () =
  let catalog = List.assoc "default" catalogs in
  let nx = table_size catalog "X" and ny = table_size catalog "Y" in
  let rows, tree = instrument catalog hash_nestjoin in
  Alcotest.(check int) "nestjoin preserves left rows" nx (List.length rows);
  Alcotest.(check int) "root rows_out" nx tree.Stats.counters.Stats.rows_out;
  Alcotest.(check int) "one build insertion per right row" ny
    tree.Stats.counters.Stats.hash_builds;
  Alcotest.(check int) "one probe per left row" nx
    tree.Stats.counters.Stats.hash_probes;
  (match tree.Stats.children with
  | [ l; r ] ->
    Alcotest.(check string) "left child op" "scan" l.Stats.op;
    Alcotest.(check int) "left scan rows" nx l.Stats.counters.Stats.rows_out;
    Alcotest.(check int) "right scan rows" ny r.Stats.counters.Stats.rows_out;
    Alcotest.(check int) "scans do no hash work" 0
      (l.Stats.counters.Stats.hash_probes
      + l.Stats.counters.Stats.hash_builds
      + r.Stats.counters.Stats.hash_probes
      + r.Stats.counters.Stats.hash_builds)
  | cs -> Alcotest.failf "expected 2 children, got %d" (List.length cs));
  Alcotest.(check int) "each node ran once" 1 tree.Stats.loops

(* Hash and nested-loop nest-join must agree on rows_out everywhere in the
   tree — including catalogs where every left row is dangling, i.e. the
   nest-join emits [a = ∅] rows instead of dropping them. *)
let variants_agree () =
  List.iter
    (fun (cname, catalog) ->
      let nl_rows, nl_tree = instrument catalog nl_nestjoin in
      let h_rows, h_tree = instrument catalog hash_nestjoin in
      let canonical rows = List.sort Env.compare rows in
      Alcotest.(check bool)
        (cname ^ ": same result rows") true
        (List.length nl_rows = List.length h_rows
        && List.for_all2 Env.equal (canonical nl_rows) (canonical h_rows));
      Alcotest.(check int)
        (cname ^ ": rows_out agree")
        nl_tree.Stats.counters.Stats.rows_out
        h_tree.Stats.counters.Stats.rows_out;
      Alcotest.(check int)
        (cname ^ ": rows_out = left size (dangling rows kept)")
        (table_size catalog "X")
        h_tree.Stats.counters.Stats.rows_out)
    catalogs

(* Summing the annotation tree reproduces the legacy global counters
   field-for-field, on every operator the planner can emit. *)
let totals_match_global () =
  let queries =
    [
      "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)";
      "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x";
      "SELECT x.id FROM X x WHERE COUNT(SELECT y.id FROM Y y WHERE x.b = y.b) = 0";
    ]
  in
  let strategies =
    Pipeline.[ Naive; Decorrelated; Decorrelated_outerjoin; Ganski_wong ]
  in
  let catalog = Workload.Gen.xy Workload.Gen.default_xy in
  List.iter
    (fun strategy ->
      List.iter
        (fun src ->
          let compiled =
            match Pipeline.compile_string strategy catalog src with
            | Ok c -> c
            | Error msg -> Alcotest.failf "compile %s: %s" src msg
          in
          let plan =
            match compiled.Pipeline.physical with
            | Some q -> q
            | None -> Alcotest.fail "no physical plan"
          in
          let global = Stats.create () in
          ignore (Exec.run ~stats:global catalog plan);
          let _, tree = Exec.run_instrumented catalog plan in
          let t = Stats.totals tree in
          let name field = Printf.sprintf "%s/%s: %s"
              (Pipeline.strategy_name strategy) src field in
          Alcotest.(check int) (name "rows_out")
            global.Stats.rows_out t.Stats.rows_out;
          Alcotest.(check int) (name "predicate_evals")
            global.Stats.predicate_evals t.Stats.predicate_evals;
          Alcotest.(check int) (name "hash_builds")
            global.Stats.hash_builds t.Stats.hash_builds;
          Alcotest.(check int) (name "hash_probes")
            global.Stats.hash_probes t.Stats.hash_probes;
          Alcotest.(check int) (name "sorts") global.Stats.sorts t.Stats.sorts;
          Alcotest.(check int) (name "applies")
            global.Stats.applies t.Stats.applies;
          Alcotest.(check int) (name "apply_hits")
            global.Stats.apply_hits t.Stats.apply_hits;
          Alcotest.(check int) (name "bloom_checks")
            global.Stats.bloom_checks t.Stats.bloom_checks;
          Alcotest.(check int) (name "bloom_prunes")
            global.Stats.bloom_prunes t.Stats.bloom_prunes;
          Alcotest.(check int) (name "build_side_swaps")
            global.Stats.build_side_swaps t.Stats.build_side_swaps)
        queries)
    strategies

let rec iter_nodes f node =
  f node;
  List.iter (iter_nodes f) node.Stats.children

(* Pipeline.analyze must leave no node without an estimate or an actual:
   est_rows comes from the cost model, rows_out/loops from execution. *)
let estimates_populated () =
  let catalog = xy_catalog () in
  let compiled =
    match
      Pipeline.compile_string Pipeline.Decorrelated catalog
        "SELECT (a = x.a, ys = (SELECT y.c FROM Y y WHERE y.d = x.b)) FROM X x"
    with
    | Ok c -> c
    | Error msg -> Alcotest.fail msg
  in
  match Pipeline.analyze catalog compiled with
  | Error msg -> Alcotest.fail msg
  | Ok (value, tree) ->
    let expected = run_strategy Pipeline.Interp catalog
        "SELECT (a = x.a, ys = (SELECT y.c FROM Y y WHERE y.d = x.b)) FROM X x"
    in
    Alcotest.check Helpers.value "analyze returns the query result"
      expected value;
    iter_nodes
      (fun n ->
        Alcotest.(check bool)
          (n.Stats.op ^ ": est_rows is a number") false
          (Float.is_nan n.Stats.est_rows);
        Alcotest.(check bool)
          (n.Stats.op ^ ": executed at least once") true (n.Stats.loops >= 1);
        Alcotest.(check bool)
          (n.Stats.op ^ ": time accumulated") true
          (Int64.compare n.Stats.time_ns 0L >= 0))
      tree

(* Under a naive (correlated) plan the subquery side of apply re-runs per
   outer row: its loop counter is the outer cardinality. *)
let apply_loops () =
  let catalog = xy_catalog () in
  let compiled =
    match
      Pipeline.compile_string Pipeline.Naive catalog
        "SELECT x.a FROM X x WHERE COUNT(SELECT y FROM Y y WHERE y.d = x.b) = 0"
    with
    | Ok c -> c
    | Error msg -> Alcotest.fail msg
  in
  match Pipeline.analyze catalog compiled with
  | Error msg -> Alcotest.fail msg
  | Ok (_, tree) ->
    let apply_node = ref None in
    iter_nodes
      (fun n ->
        if Astring.String.is_prefix ~affix:"apply" n.Stats.op then
          apply_node := Some n)
      tree;
    (match !apply_node with
    | None -> Alcotest.fail "no apply node in naive plan"
    | Some n -> (
      match n.Stats.children with
      | [ _input; sub ] ->
        Alcotest.(check int) "subplan loops = outer rows" 5 sub.Stats.loops
      | cs -> Alcotest.failf "apply arity %d" (List.length cs)))

(* The JSON rendering is self-contained and machine-safe: every required
   key present, no bare nan/inf tokens (est_rows of an unannotated tree
   serializes as null). *)
let json_shape () =
  let catalog = List.assoc "default" catalogs in
  let _, tree = instrument catalog hash_nestjoin in
  let doc = Engine.Json.to_string (Analyze.to_json tree) in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("has " ^ key) true
        (Astring.String.is_infix ~affix:(Printf.sprintf "%S" key) doc))
    [ "op"; "detail"; "est_rows"; "rows_out"; "loops"; "time_ns";
      "predicate_evals"; "hash_builds"; "hash_probes"; "sorts"; "applies";
      "apply_hits"; "bloom_checks"; "bloom_prunes"; "build_side_swaps";
      "children" ];
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("no bare " ^ bad) false
        (Astring.String.is_infix ~affix:bad doc))
    [ "nan"; "inf" ]

(* Re-running an instrumented tree without reset accumulates; after
   [reset_node] the counters match a fresh run. *)
let reset_node () =
  let catalog = List.assoc "default" catalogs in
  let tree = Analyze.tree_of_plan hash_nestjoin in
  ignore (Exec.rows_instrumented tree catalog Env.empty hash_nestjoin);
  let once = tree.Stats.counters.Stats.rows_out in
  ignore (Exec.rows_instrumented tree catalog Env.empty hash_nestjoin);
  Alcotest.(check int) "accumulates" (2 * once)
    tree.Stats.counters.Stats.rows_out;
  Alcotest.(check int) "loops accumulate" 2 tree.Stats.loops;
  Stats.reset_node tree;
  Alcotest.(check int) "reset clears counters" 0
    tree.Stats.counters.Stats.rows_out;
  Alcotest.(check int) "reset clears loops" 0 tree.Stats.loops;
  ignore (Exec.rows_instrumented tree catalog Env.empty hash_nestjoin);
  Alcotest.(check int) "fresh after reset" once
    tree.Stats.counters.Stats.rows_out

let suite =
  [
    Alcotest.test_case "per-node attribution" `Quick per_node_attribution;
    Alcotest.test_case "hash vs nl nestjoin agree" `Quick variants_agree;
    Alcotest.test_case "tree totals = global stats" `Quick totals_match_global;
    Alcotest.test_case "est and actual populated" `Quick estimates_populated;
    Alcotest.test_case "apply subplan loop count" `Quick apply_loops;
    Alcotest.test_case "json shape" `Quick json_shape;
    Alcotest.test_case "reset_node" `Quick reset_node;
  ]
