(* Observability subsystem: histogram bucketing edges, span open/close
   balance under exceptions, zero-cost disabled paths, and the
   jobs-invariance contract — trace span structure (phase/operator
   categories) and metrics are identical for jobs ∈ {1, 4}, and tracing
   must not change the query result. *)

open Helpers
module Value = Cobj.Value
module Trace = Obs.Trace
module Metrics = Obs.Metrics

(* --- histogram bucketing ------------------------------------------------- *)

let test_bucketing () =
  Alcotest.(check int) "0 → bucket 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "negative → bucket 0" 0 (Metrics.bucket_of (-7));
  Alcotest.(check int) "1 → bucket 1" 1 (Metrics.bucket_of 1);
  Alcotest.(check int) "2 → bucket 2" 2 (Metrics.bucket_of 2);
  Alcotest.(check int) "3 → bucket 2" 2 (Metrics.bucket_of 3);
  Alcotest.(check int) "4 → bucket 3" 3 (Metrics.bucket_of 4);
  Alcotest.(check int) "1023 → bucket 10" 10 (Metrics.bucket_of 1023);
  Alcotest.(check int) "1024 → bucket 11" 11 (Metrics.bucket_of 1024);
  Alcotest.(check int) "max_int → last bucket" (Metrics.nbuckets - 1)
    (Metrics.bucket_of max_int);
  (* bucket lower bounds are consistent with bucket_of: lo lands in its
     own bucket, lo - 1 in the previous one *)
  for i = 1 to Metrics.nbuckets - 1 do
    let lo = Metrics.bucket_lo i in
    Alcotest.(check int) (Printf.sprintf "lo(%d) in bucket %d" i i) i
      (Metrics.bucket_of lo);
    if i > 1 then
      Alcotest.(check int)
        (Printf.sprintf "lo(%d)-1 in bucket %d" i (i - 1))
        (i - 1)
        (Metrics.bucket_of (lo - 1))
  done

let test_observe_roundtrip () =
  Metrics.enable ();
  Metrics.reset ();
  List.iter (Metrics.observe "h") [ 0; 1; 1; 3; max_int ];
  (match List.assoc_opt "h" (Metrics.dump ()) with
  | Some (Metrics.Histogram h) ->
    Alcotest.(check int) "count" 5 h.Metrics.count;
    Alcotest.(check int) "bucket 0" 1 h.Metrics.buckets.(0);
    Alcotest.(check int) "bucket 1" 2 h.Metrics.buckets.(1);
    Alcotest.(check int) "bucket 2" 1 h.Metrics.buckets.(2);
    Alcotest.(check int) "last bucket" 1
      h.Metrics.buckets.(Metrics.nbuckets - 1)
  | _ -> Alcotest.fail "histogram not recorded");
  Metrics.reset ();
  Metrics.disable ()

let test_disabled_noop () =
  Metrics.disable ();
  Metrics.reset ();
  Metrics.incr "c";
  Metrics.observe "h" 3;
  Metrics.set_gauge "g" 1.0;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Metrics.dump ()))

let test_counters_gauges () =
  Metrics.enable ();
  Metrics.reset ();
  Metrics.incr "c";
  Metrics.incr ~by:4 "c";
  Metrics.add_gauge "g" 1.5;
  Metrics.add_gauge "g" 2.0;
  Metrics.set_gauge "s" 9.0;
  Metrics.set_gauge "s" 3.0;
  (match List.assoc_opt "c" (Metrics.dump ()) with
  | Some (Metrics.Counter n) -> Alcotest.(check int) "counter" 5 n
  | _ -> Alcotest.fail "counter missing");
  (match List.assoc_opt "g" (Metrics.dump ()) with
  | Some (Metrics.Gauge g) -> Alcotest.(check (float 1e-9)) "gauge" 3.5 g
  | _ -> Alcotest.fail "gauge missing");
  (match List.assoc_opt "s" (Metrics.dump ()) with
  | Some (Metrics.Gauge g) -> Alcotest.(check (float 1e-9)) "set" 3.0 g
  | _ -> Alcotest.fail "set gauge missing");
  Metrics.reset ();
  Metrics.disable ()

(* --- quantile estimation ------------------------------------------------- *)

let test_quantile () =
  Metrics.enable ();
  Metrics.reset ();
  (* 100 observations of 1000 all land in bucket 10 ([512, 1023]):
     linear interpolation inside the bucket is pinned exactly. *)
  for _ = 1 to 100 do
    Metrics.observe "q" 1000
  done;
  Alcotest.(check (float 1e-9)) "p50 interpolates" 767.5
    (Metrics.quantile "q" 0.5);
  Alcotest.(check (float 1e-9)) "p95 interpolates" 997.45
    (Metrics.quantile "q" 0.95);
  Alcotest.(check (float 1e-9)) "p100 is the bucket hi" 1023.
    (Metrics.quantile "q" 1.0);
  Alcotest.(check (float 1e-9)) "q clamps above 1" 1023.
    (Metrics.quantile "q" 7.0);
  Alcotest.(check (float 1e-9)) "q clamps below 0" 512.
    (Metrics.quantile "q" (-1.0));
  (* bucket 0 is exact: lo = hi = 0 *)
  for _ = 1 to 10 do
    Metrics.observe "z" 0
  done;
  Alcotest.(check (float 1e-9)) "all-zero p99" 0. (Metrics.quantile "z" 0.99);
  (* two populated buckets: the target walks the cumulative counts *)
  for _ = 1 to 50 do
    Metrics.observe "m" 1
  done;
  for _ = 1 to 50 do
    Metrics.observe "m" 6
  done;
  Alcotest.(check (float 1e-9)) "p50 exhausts bucket 1" 1.
    (Metrics.quantile "m" 0.5);
  Alcotest.(check (float 1e-9)) "p75 interpolates bucket 3 [4,7]" 5.5
    (Metrics.quantile "m" 0.75);
  Alcotest.(check (float 1e-9)) "missing histogram" 0.
    (Metrics.quantile "absent" 0.5);
  Metrics.reset ();
  Metrics.disable ()

(* --- labeled keys -------------------------------------------------------- *)

let test_labeled () =
  Alcotest.(check string) "no labels is the bare name" "m" (Metrics.labeled "m" []);
  Alcotest.(check string) "keys sorted, values escaped"
    "m{a=\"x\\\"y\\n\",b=\"2\"}"
    (Metrics.labeled "m" [ ("b", "2"); ("a", "x\"y\n") ]);
  Alcotest.(check string) "backslash escaped" "m{p=\"a\\\\b\"}"
    (Metrics.labeled "m" [ ("p", "a\\b") ]);
  (* label variants are distinct registry keys *)
  Metrics.enable ();
  Metrics.reset ();
  Metrics.incr (Metrics.labeled "lab" [ ("k", "a") ]);
  Metrics.incr ~by:2 (Metrics.labeled "lab" [ ("k", "b") ]);
  Alcotest.(check int) "variant a" 1
    (Metrics.counter (Metrics.labeled "lab" [ ("k", "a") ]));
  Alcotest.(check int) "variant b" 2
    (Metrics.counter (Metrics.labeled "lab" [ ("k", "b") ]));
  Metrics.reset ();
  Metrics.disable ()

(* --- sliding window ------------------------------------------------------ *)

let test_window () =
  Metrics.enable ();
  Metrics.reset ();
  Alcotest.(check (option int)) "empty ring" None
    (Metrics.window_delta "w.c" ~now_s:100. ~span_s:60.);
  Metrics.incr ~by:5 "w.c";
  Metrics.observe "w.h" 3;
  Metrics.window_record ~at_s:100.;
  Metrics.incr ~by:7 "w.c";
  Metrics.observe "w.h" 9;
  Metrics.observe "w.h" 10;
  Alcotest.(check (option int)) "counter delta vs snapshot" (Some 7)
    (Metrics.window_delta "w.c" ~now_s:130. ~span_s:60.);
  Alcotest.(check (option int)) "histogram delta counts observations"
    (Some 2)
    (Metrics.window_delta "w.h" ~now_s:130. ~span_s:60.);
  (match Metrics.window_rate "w.c" ~now_s:130. ~span_s:60. with
  | Some r -> Alcotest.(check (float 1e-9)) "rate over 30s" (7. /. 30.) r
  | None -> Alcotest.fail "rate expected");
  (* a narrower span excludes the snapshot *)
  Alcotest.(check (option int)) "span too narrow" None
    (Metrics.window_delta "w.c" ~now_s:130. ~span_s:10.);
  (* delta measures against the OLDEST snapshot inside the span *)
  Metrics.window_record ~at_s:160.;
  Metrics.incr ~by:100 "w.c";
  Alcotest.(check (option int)) "oldest snapshot wins" (Some 107)
    (Metrics.window_delta "w.c" ~now_s:170. ~span_s:100.);
  Alcotest.(check (option int)) "newer snapshot when span narrows"
    (Some 100)
    (Metrics.window_delta "w.c" ~now_s:170. ~span_s:30.);
  Alcotest.(check (list (float 1e-9))) "ring times" [ 100.; 160. ]
    (Metrics.window_times ());
  (* the ring wraps at capacity without growing *)
  for i = 1 to Metrics.window_capacity + 5 do
    Metrics.window_record ~at_s:(200. +. float_of_int i)
  done;
  Alcotest.(check int) "ring bounded" Metrics.window_capacity
    (List.length (Metrics.window_times ()));
  Metrics.reset ();
  Alcotest.(check (list (float 1e-9))) "reset clears the ring" []
    (Metrics.window_times ());
  Metrics.disable ()

(* --- domain safety ------------------------------------------------------- *)

(* Four domains hammer one counter and one histogram concurrently while
   the main domain dumps; totals must be exact (no lost updates) and the
   dump internally consistent. *)
let test_domain_hammer () =
  Metrics.enable ();
  Metrics.reset ();
  let domains = 4 and iters = 5_000 in
  let spawned =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to iters do
              Metrics.incr "ham.c";
              Metrics.observe "ham.h" ((d * iters) + i)
            done))
  in
  (* concurrent dumps must not deadlock or tear *)
  for _ = 1 to 20 do
    ignore (Metrics.dump ())
  done;
  List.iter Domain.join spawned;
  let expect = domains * iters in
  Alcotest.(check int) "counter exact" expect (Metrics.counter "ham.c");
  (match List.assoc_opt "ham.c" (Metrics.dump ()) with
  | Some (Metrics.Counter n) ->
    Alcotest.(check int) "dump agrees with counter" expect n
  | _ -> Alcotest.fail "hammered counter missing from dump");
  (match List.assoc_opt "ham.h" (Metrics.dump ()) with
  | Some (Metrics.Histogram h) ->
    Alcotest.(check int) "histogram count exact" expect h.Metrics.count;
    Alcotest.(check int) "buckets sum to count" expect
      (Array.fold_left ( + ) 0 h.Metrics.buckets);
    (* Σ i over all domains: d*iters + i for d in 0..3, i in 1..iters *)
    let expect_sum =
      float_of_int
        (List.fold_left ( + ) 0
           (List.concat_map
              (fun d -> List.init iters (fun i -> (d * iters) + i + 1))
              [ 0; 1; 2; 3 ]))
    in
    Alcotest.(check (float 1e-3)) "sum exact" expect_sum h.Metrics.sum
  | _ -> Alcotest.fail "hammered histogram missing from dump");
  Metrics.reset ();
  Metrics.disable ()

(* --- Prometheus exposition ----------------------------------------------- *)

let test_prom_render () =
  Metrics.enable ();
  Metrics.reset ();
  Metrics.incr ~by:3 "t.requests";
  Metrics.set_gauge "t.depth" 2.5;
  Metrics.observe (Metrics.labeled "t.lat" [ ("s", "a") ]) 0;
  Metrics.observe (Metrics.labeled "t.lat" [ ("s", "a") ]) 5;
  Metrics.observe (Metrics.labeled "t.lat" [ ("s", "b") ]) 5;
  let page = Obs.Prom.page () in
  Metrics.reset ();
  Metrics.disable ();
  let has affix = Astring.String.is_infix ~affix page in
  Alcotest.(check bool) "counter family" true
    (has "# TYPE nestql_t_requests counter");
  Alcotest.(check bool) "counter sample" true (has "nestql_t_requests 3");
  Alcotest.(check bool) "gauge sample" true (has "nestql_t_depth 2.5");
  Alcotest.(check bool) "histogram family" true
    (has "# TYPE nestql_t_lat histogram");
  Alcotest.(check bool) "bucket 0 cumulative, labeled" true
    (has "nestql_t_lat_bucket{s=\"a\",le=\"0\"} 1");
  Alcotest.(check bool) "bucket for 5 cumulative" true
    (has "nestql_t_lat_bucket{s=\"a\",le=\"7\"} 2");
  Alcotest.(check bool) "+Inf bucket" true
    (has "nestql_t_lat_bucket{s=\"a\",le=\"+Inf\"} 2");
  Alcotest.(check bool) "sum and count" true
    (has "nestql_t_lat_sum{s=\"a\"} 5" && has "nestql_t_lat_count{s=\"a\"} 2");
  Alcotest.(check bool) "second label variant shares the family" true
    (has "nestql_t_lat_count{s=\"b\"} 1");
  (* TYPE is declared once per family even with two label variants *)
  let occurrences affix =
    let n = String.length page and m = String.length affix in
    let rec go i acc =
      if i + m > n then acc
      else if String.sub page i m = affix then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "TYPE once per family" 1
    (occurrences "# TYPE nestql_t_lat histogram");
  Alcotest.(check string) "mangle prefixes and maps dots and dashes"
    "nestql_a_b_c"
    (Obs.Prom.mangle "a.b-c")

(* --- span discipline ----------------------------------------------------- *)

exception Boom

let with_trace f =
  let path = Filename.temp_file "nestql" ".trace.json" in
  Trace.start ~path;
  let v = Fun.protect ~finally:Trace.stop f in
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (v, contents)

let test_span_balance_exn () =
  let (), contents =
    with_trace (fun () ->
        Trace.span "outer" (fun () ->
            (try
               Trace.span "raises" (fun () ->
                   Alcotest.(check int) "two spans open" 2 (Trace.open_spans ());
                   raise Boom)
             with Boom -> ());
            Alcotest.(check int) "inner closed after raise" 1
              (Trace.open_spans ()));
        Alcotest.(check int) "all closed" 0 (Trace.open_spans ());
        let names =
          List.filter_map
            (fun (e : Trace.view) ->
              if e.Trace.ph = 'X' then Some e.Trace.name else None)
            (Trace.events ())
        in
        Alcotest.(check (list string))
          "both spans recorded, inner first (closed first)"
          [ "raises"; "outer" ] names)
  in
  Alcotest.(check bool) "file has traceEvents" true
    (Astring.String.is_infix ~affix:"\"traceEvents\"" contents);
  Alcotest.(check bool) "raising span recorded in file" true
    (Astring.String.is_infix ~affix:"\"raises\"" contents)

let test_span_disabled_identity () =
  Alcotest.(check bool) "tracing off" false (Trace.enabled ());
  Alcotest.(check int) "span is f ()" 42 (Trace.span "noop" (fun () -> 42));
  Alcotest.check_raises "exceptions pass through" Boom (fun () ->
      Trace.span "noop" (fun () -> raise Boom));
  Alcotest.(check int) "balanced while off" 0 (Trace.open_spans ())

(* --- jobs-invariance of trace structure and metrics ---------------------- *)

let catalog =
  Workload.Gen.xy
    { Workload.Gen.default_xy with
      nx = 40; ny = 40; key_dom = 10; dangling = 0.3; seed = 3 }

(* Spans in the jobs-invariant categories: phases and operators. Morsel
   spans are jobs-dependent by nature (the serial path never schedules
   morsels) and excluded from the contract. *)
let structural_events () =
  List.filter_map
    (fun (e : Trace.view) ->
      if e.Trace.cat = "phase" || e.Trace.cat = "operator" then
        Some (e.Trace.cat, e.Trace.name)
      else None)
    (Trace.events ())

(* Metrics outside the documented jobs/load-dependent namespaces ("par."
   and "gc." counters/histograms, "profile." wall-clock self-time
   gauges) must be exact counters, identical across jobs. *)
let invariant_metrics () =
  List.filter_map
    (fun (name, v) ->
      if String.starts_with ~prefix:"par." name
         || String.starts_with ~prefix:"gc." name
         || String.starts_with ~prefix:"profile." name
      then None
      else
        match v with
        | Metrics.Counter n -> Some (name, n)
        | Metrics.Gauge _ | Metrics.Histogram _ ->
          Some (name, -1) (* unexpected outside par./gc.: flag it *))
    (Metrics.dump ())

let query_gen =
  QCheck2.Gen.map
    (fun seed ->
      match Workload.Gen.queries ~count:1 ~seed () with
      | q :: _ -> q
      | [] -> "SELECT x.id FROM X x")
    QCheck2.Gen.(int_range 0 10_000)

(* Compile + instrumented execute under an active tracer and metrics
   registry; returns the rendered result, the structural span list, and
   the jobs-invariant metric counters. *)
let run_traced ~jobs src =
  Metrics.enable ();
  Metrics.reset ();
  let out, _contents =
    with_trace (fun () ->
        match
          Core.Pipeline.compile_string Core.Pipeline.Decorrelated catalog src
        with
        | Error msg -> Error msg
        | Ok compiled -> (
          match Core.Pipeline.analyze ~jobs catalog compiled with
          | Error msg -> Error msg
          | Ok (v, _tree) ->
            Ok (Fmt.str "%a" Value.pp v, structural_events ())))
  in
  let metrics = invariant_metrics () in
  Metrics.reset ();
  Metrics.disable ();
  match out with
  | Ok (rendered, spans) -> Some (rendered, spans, metrics)
  | Error _ -> None

let check_eq what pp a b =
  if a = b then true
  else
    QCheck2.Test.fail_reportf "%s differ:@.  jobs 1: %s@.  jobs 4: %s" what
      (pp a) (pp b)

let pp_spans spans =
  String.concat "; " (List.map (fun (c, n) -> c ^ ":" ^ n) spans)

let pp_metrics ms =
  String.concat "; " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) ms)

let prop_jobs_invariant =
  qcheck ~count:25
    "trace span structure and metrics identical for jobs 1 vs 4; tracing \
     does not change results"
    query_gen
    (fun src ->
      match
        Core.Pipeline.compile_string Core.Pipeline.Decorrelated catalog src
      with
      | Error _ -> true (* generator corner the type checker rejects *)
      | Ok compiled -> (
        match Core.Pipeline.analyze ~jobs:1 catalog compiled with
        | Error _ -> true
        | Ok (v_plain, _) -> (
          let plain = Fmt.str "%a" Value.pp v_plain in
          match (run_traced ~jobs:1 src, run_traced ~jobs:4 src) with
          | Some (r1, spans1, m1), Some (r4, spans4, m4) ->
            if spans1 = [] then
              QCheck2.Test.fail_report "no phase/operator spans recorded";
            check_eq "results (trace on vs off)" Fun.id plain r1
            && check_eq "results" Fun.id r1 r4
            && check_eq "span structure" pp_spans spans1 spans4
            && check_eq "metrics" pp_metrics m1 m4
          | _ ->
            QCheck2.Test.fail_report
              "traced run failed where untraced run succeeded")))

let suite =
  [
    Alcotest.test_case "histogram bucketing edges" `Quick test_bucketing;
    Alcotest.test_case "histogram observe roundtrip" `Quick
      test_observe_roundtrip;
    Alcotest.test_case "disabled registry is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
    Alcotest.test_case "quantile estimation" `Quick test_quantile;
    Alcotest.test_case "labeled metric keys" `Quick test_labeled;
    Alcotest.test_case "sliding window ring" `Quick test_window;
    Alcotest.test_case "4-domain hammer: no lost updates" `Quick
      test_domain_hammer;
    Alcotest.test_case "prometheus exposition" `Quick test_prom_render;
    Alcotest.test_case "span balance under exceptions" `Quick
      test_span_balance_exn;
    Alcotest.test_case "span is identity when disabled" `Quick
      test_span_disabled_identity;
    prop_jobs_invariant;
  ]
