(* Observability subsystem: histogram bucketing edges, span open/close
   balance under exceptions, zero-cost disabled paths, and the
   jobs-invariance contract — trace span structure (phase/operator
   categories) and metrics are identical for jobs ∈ {1, 4}, and tracing
   must not change the query result. *)

open Helpers
module Value = Cobj.Value
module Trace = Obs.Trace
module Metrics = Obs.Metrics

(* --- histogram bucketing ------------------------------------------------- *)

let test_bucketing () =
  Alcotest.(check int) "0 → bucket 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "negative → bucket 0" 0 (Metrics.bucket_of (-7));
  Alcotest.(check int) "1 → bucket 1" 1 (Metrics.bucket_of 1);
  Alcotest.(check int) "2 → bucket 2" 2 (Metrics.bucket_of 2);
  Alcotest.(check int) "3 → bucket 2" 2 (Metrics.bucket_of 3);
  Alcotest.(check int) "4 → bucket 3" 3 (Metrics.bucket_of 4);
  Alcotest.(check int) "1023 → bucket 10" 10 (Metrics.bucket_of 1023);
  Alcotest.(check int) "1024 → bucket 11" 11 (Metrics.bucket_of 1024);
  Alcotest.(check int) "max_int → last bucket" (Metrics.nbuckets - 1)
    (Metrics.bucket_of max_int);
  (* bucket lower bounds are consistent with bucket_of: lo lands in its
     own bucket, lo - 1 in the previous one *)
  for i = 1 to Metrics.nbuckets - 1 do
    let lo = Metrics.bucket_lo i in
    Alcotest.(check int) (Printf.sprintf "lo(%d) in bucket %d" i i) i
      (Metrics.bucket_of lo);
    if i > 1 then
      Alcotest.(check int)
        (Printf.sprintf "lo(%d)-1 in bucket %d" i (i - 1))
        (i - 1)
        (Metrics.bucket_of (lo - 1))
  done

let test_observe_roundtrip () =
  Metrics.enable ();
  Metrics.reset ();
  List.iter (Metrics.observe "h") [ 0; 1; 1; 3; max_int ];
  (match List.assoc_opt "h" (Metrics.dump ()) with
  | Some (Metrics.Histogram h) ->
    Alcotest.(check int) "count" 5 h.Metrics.count;
    Alcotest.(check int) "bucket 0" 1 h.Metrics.buckets.(0);
    Alcotest.(check int) "bucket 1" 2 h.Metrics.buckets.(1);
    Alcotest.(check int) "bucket 2" 1 h.Metrics.buckets.(2);
    Alcotest.(check int) "last bucket" 1
      h.Metrics.buckets.(Metrics.nbuckets - 1)
  | _ -> Alcotest.fail "histogram not recorded");
  Metrics.reset ();
  Metrics.disable ()

let test_disabled_noop () =
  Metrics.disable ();
  Metrics.reset ();
  Metrics.incr "c";
  Metrics.observe "h" 3;
  Metrics.set_gauge "g" 1.0;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Metrics.dump ()))

let test_counters_gauges () =
  Metrics.enable ();
  Metrics.reset ();
  Metrics.incr "c";
  Metrics.incr ~by:4 "c";
  Metrics.add_gauge "g" 1.5;
  Metrics.add_gauge "g" 2.0;
  Metrics.set_gauge "s" 9.0;
  Metrics.set_gauge "s" 3.0;
  (match List.assoc_opt "c" (Metrics.dump ()) with
  | Some (Metrics.Counter n) -> Alcotest.(check int) "counter" 5 n
  | _ -> Alcotest.fail "counter missing");
  (match List.assoc_opt "g" (Metrics.dump ()) with
  | Some (Metrics.Gauge g) -> Alcotest.(check (float 1e-9)) "gauge" 3.5 g
  | _ -> Alcotest.fail "gauge missing");
  (match List.assoc_opt "s" (Metrics.dump ()) with
  | Some (Metrics.Gauge g) -> Alcotest.(check (float 1e-9)) "set" 3.0 g
  | _ -> Alcotest.fail "set gauge missing");
  Metrics.reset ();
  Metrics.disable ()

(* --- span discipline ----------------------------------------------------- *)

exception Boom

let with_trace f =
  let path = Filename.temp_file "nestql" ".trace.json" in
  Trace.start ~path;
  let v = Fun.protect ~finally:Trace.stop f in
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (v, contents)

let test_span_balance_exn () =
  let (), contents =
    with_trace (fun () ->
        Trace.span "outer" (fun () ->
            (try
               Trace.span "raises" (fun () ->
                   Alcotest.(check int) "two spans open" 2 (Trace.open_spans ());
                   raise Boom)
             with Boom -> ());
            Alcotest.(check int) "inner closed after raise" 1
              (Trace.open_spans ()));
        Alcotest.(check int) "all closed" 0 (Trace.open_spans ());
        let names =
          List.filter_map
            (fun (e : Trace.view) ->
              if e.Trace.ph = 'X' then Some e.Trace.name else None)
            (Trace.events ())
        in
        Alcotest.(check (list string))
          "both spans recorded, inner first (closed first)"
          [ "raises"; "outer" ] names)
  in
  Alcotest.(check bool) "file has traceEvents" true
    (Astring.String.is_infix ~affix:"\"traceEvents\"" contents);
  Alcotest.(check bool) "raising span recorded in file" true
    (Astring.String.is_infix ~affix:"\"raises\"" contents)

let test_span_disabled_identity () =
  Alcotest.(check bool) "tracing off" false (Trace.enabled ());
  Alcotest.(check int) "span is f ()" 42 (Trace.span "noop" (fun () -> 42));
  Alcotest.check_raises "exceptions pass through" Boom (fun () ->
      Trace.span "noop" (fun () -> raise Boom));
  Alcotest.(check int) "balanced while off" 0 (Trace.open_spans ())

(* --- jobs-invariance of trace structure and metrics ---------------------- *)

let catalog =
  Workload.Gen.xy
    { Workload.Gen.default_xy with
      nx = 40; ny = 40; key_dom = 10; dangling = 0.3; seed = 3 }

(* Spans in the jobs-invariant categories: phases and operators. Morsel
   spans are jobs-dependent by nature (the serial path never schedules
   morsels) and excluded from the contract. *)
let structural_events () =
  List.filter_map
    (fun (e : Trace.view) ->
      if e.Trace.cat = "phase" || e.Trace.cat = "operator" then
        Some (e.Trace.cat, e.Trace.name)
      else None)
    (Trace.events ())

(* Metrics outside the documented jobs/load-dependent namespaces ("par."
   and "gc." prefixes) must be exact counters, identical across jobs. *)
let invariant_metrics () =
  List.filter_map
    (fun (name, v) ->
      if String.starts_with ~prefix:"par." name
         || String.starts_with ~prefix:"gc." name
      then None
      else
        match v with
        | Metrics.Counter n -> Some (name, n)
        | Metrics.Gauge _ | Metrics.Histogram _ ->
          Some (name, -1) (* unexpected outside par./gc.: flag it *))
    (Metrics.dump ())

let query_gen =
  QCheck2.Gen.map
    (fun seed ->
      match Workload.Gen.queries ~count:1 ~seed () with
      | q :: _ -> q
      | [] -> "SELECT x.id FROM X x")
    QCheck2.Gen.(int_range 0 10_000)

(* Compile + instrumented execute under an active tracer and metrics
   registry; returns the rendered result, the structural span list, and
   the jobs-invariant metric counters. *)
let run_traced ~jobs src =
  Metrics.enable ();
  Metrics.reset ();
  let out, _contents =
    with_trace (fun () ->
        match
          Core.Pipeline.compile_string Core.Pipeline.Decorrelated catalog src
        with
        | Error msg -> Error msg
        | Ok compiled -> (
          match Core.Pipeline.analyze ~jobs catalog compiled with
          | Error msg -> Error msg
          | Ok (v, _tree) ->
            Ok (Fmt.str "%a" Value.pp v, structural_events ())))
  in
  let metrics = invariant_metrics () in
  Metrics.reset ();
  Metrics.disable ();
  match out with
  | Ok (rendered, spans) -> Some (rendered, spans, metrics)
  | Error _ -> None

let check_eq what pp a b =
  if a = b then true
  else
    QCheck2.Test.fail_reportf "%s differ:@.  jobs 1: %s@.  jobs 4: %s" what
      (pp a) (pp b)

let pp_spans spans =
  String.concat "; " (List.map (fun (c, n) -> c ^ ":" ^ n) spans)

let pp_metrics ms =
  String.concat "; " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) ms)

let prop_jobs_invariant =
  qcheck ~count:25
    "trace span structure and metrics identical for jobs 1 vs 4; tracing \
     does not change results"
    query_gen
    (fun src ->
      match
        Core.Pipeline.compile_string Core.Pipeline.Decorrelated catalog src
      with
      | Error _ -> true (* generator corner the type checker rejects *)
      | Ok compiled -> (
        match Core.Pipeline.analyze ~jobs:1 catalog compiled with
        | Error _ -> true
        | Ok (v_plain, _) -> (
          let plain = Fmt.str "%a" Value.pp v_plain in
          match (run_traced ~jobs:1 src, run_traced ~jobs:4 src) with
          | Some (r1, spans1, m1), Some (r4, spans4, m4) ->
            if spans1 = [] then
              QCheck2.Test.fail_report "no phase/operator spans recorded";
            check_eq "results (trace on vs off)" Fun.id plain r1
            && check_eq "results" Fun.id r1 r4
            && check_eq "span structure" pp_spans spans1 spans4
            && check_eq "metrics" pp_metrics m1 m4
          | _ ->
            QCheck2.Test.fail_report
              "traced run failed where untraced run succeeded")))

let suite =
  [
    Alcotest.test_case "histogram bucketing edges" `Quick test_bucketing;
    Alcotest.test_case "histogram observe roundtrip" `Quick
      test_observe_roundtrip;
    Alcotest.test_case "disabled registry is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
    Alcotest.test_case "span balance under exceptions" `Quick
      test_span_balance_exn;
    Alcotest.test_case "span is identity when disabled" `Quick
      test_span_disabled_identity;
    prop_jobs_invariant;
  ]
