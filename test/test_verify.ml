(* The plan verifier: mutation tests (each corrupted plan is caught by the
   specific rule, with the phase preserved) and a property that every
   pipeline phase of every strategy verifies cleanly on a random query
   corpus, under serial and parallel execution. *)

open Helpers
module Plan = Algebra.Plan
module P = Engine.Physical
module V = Analysis.Verify

(* Register the hook for the whole test binary: with INSIDE_DUNE set,
   [Pipeline.compile] then phase-verifies every plan built anywhere in the
   suite, not just in this file. *)
let () = Analysis.Verify.install ()

let catalog = xy_catalog ()
let scan_x = Plan.Table { name = "X"; var = "x" }
let scan_y = Plan.Table { name = "Y"; var = "y" }

let expect_rule ~phase ~rule = function
  | Ok _ -> Alcotest.failf "expected a %s violation, but the plan verified" rule
  | Error (v : V.violation) ->
    Alcotest.(check string) "rule" rule v.V.rule;
    Alcotest.(check string) "phase" phase v.V.phase;
    (* the report must carry a pretty-printed subplan *)
    Alcotest.(check bool) "subplan rendered" true (String.length v.V.subplan > 0)

let check ?(phase = "decorrelate") plan =
  V.check_query ~phase catalog { Plan.plan; result = parse "x.a" }

(* --- mutation tests: each corruption trips its specific rule ------------- *)

let test_unbound_predicate_var () =
  expect_rule ~phase:"decorrelate" ~rule:"unbound-var"
    (check (Plan.Select { pred = parse "nope > 1"; input = scan_x }))

let test_shadowed_nestjoin_label () =
  expect_rule ~phase:"rewrite" ~rule:"shadowed-label"
    (V.check_query ~phase:"rewrite" catalog
       {
         Plan.plan =
           Plan.Nestjoin
             {
               pred = parse "x.b = y.c";
               func = parse "y.d";
               label = "x" (* shadows the left operand's variable *);
               left = scan_x;
               right = scan_y;
             };
         result = parse "x.a";
       })

let test_project_missing_var () =
  expect_rule ~phase:"decorrelate" ~rule:"project-unbound"
    (check (Plan.Project { vars = [ "ghost" ]; input = scan_x }))

let test_wrong_nestjoin_build_side () =
  (* helpers' Y declares no key, so building the hash nest join on the left
     violates the §6 restriction *)
  expect_rule ~phase:"plan" ~rule:"nestjoin-build-side"
    (V.check_physical_query ~phase:"plan" catalog
       {
         P.plan =
           P.Hash_nestjoin_left
             {
               lkey = parse "x.b";
               rkey = parse "y.c";
               residual = None;
               func = parse "y.d";
               label = "g";
               left = P.Scan { table = "X"; var = "x" };
               right = P.Scan { table = "Y"; var = "y" };
             };
         result = parse "x.a";
       })

let test_duplicate_binding () =
  expect_rule ~phase:"translate" ~rule:"duplicate-binding"
    (V.check_query ~phase:"translate" catalog
       {
         Plan.plan =
           Plan.Join
             {
               pred = Lang.Ast.vbool true;
               left = scan_x;
               right = Plan.Table { name = "X"; var = "x" };
             };
         result = parse "x.a";
       })

let test_predicate_not_boolean () =
  expect_rule ~phase:"decorrelate" ~rule:"predicate-not-boolean"
    (check (Plan.Select { pred = parse "x.a + 1"; input = scan_x }))

let test_union_mismatch () =
  expect_rule ~phase:"simplify" ~rule:"union-mismatch"
    (V.check_query ~phase:"simplify" catalog
       { Plan.plan = Plan.Union { left = scan_x; right = scan_y };
         result = parse "1" })

let test_apply_free_vars () =
  expect_rule ~phase:"translate" ~rule:"apply-free-vars"
    (check ~phase:"translate"
       (Plan.Apply
          {
            var = "q";
            subquery = { Plan.plan = scan_y; result = parse "w.c" };
            input = scan_x;
          }))

let test_hash_key_type () =
  (* x.s : P INT has no common type with y.c : INT *)
  expect_rule ~phase:"plan" ~rule:"hash-key-type"
    (V.check_physical_query ~phase:"plan" catalog
       {
         P.plan =
           P.Hash_join
             {
               lkey = parse "x.s";
               rkey = parse "y.c";
               residual = None;
               left = P.Scan { table = "X"; var = "x" };
               right = P.Scan { table = "Y"; var = "y" };
             };
         result = parse "x.a";
       })

let test_unknown_table () =
  expect_rule ~phase:"translate" ~rule:"unknown-table"
    (check ~phase:"translate" (Plan.Table { name = "NOPE"; var = "n" }))

let test_nest_unbound () =
  expect_rule ~phase:"kim" ~rule:"nest-unbound"
    (V.check_query ~phase:"kim" catalog
       {
         Plan.plan =
           Plan.Nest
             { by = [ "ghost" ]; label = "g"; func = parse "x.a"; nulls = [];
               input = scan_x };
         result = parse "g";
       })

(* --- sound plans pass ---------------------------------------------------- *)

let test_valid_plans_verify () =
  List.iter
    (fun src ->
      List.iter
        (fun strategy ->
          match
            Core.Pipeline.compile_string ~verify:true strategy catalog src
          with
          | Ok _ -> ()
          | Error msg ->
            Alcotest.failf "%s failed verification on %s: %s"
              (Core.Pipeline.strategy_name strategy)
              src msg)
        Core.Pipeline.all_strategies)
    [
      "SELECT x.a FROM X x WHERE x.b IN (SELECT y.d FROM Y y WHERE y.c = \
       x.a)";
      "SELECT x.a FROM X x WHERE COUNT(SELECT y.c FROM Y y WHERE y.d = x.b) \
       = 0";
      "SELECT (a = x.a, m = (SELECT y.c FROM Y y WHERE y.d = x.b)) FROM X x";
      "SELECT x.a FROM X x WHERE x.s SUBSETEQ (SELECT y.c FROM Y y WHERE \
       y.d = x.b)";
    ]

let test_violation_rendering () =
  match check (Plan.Select { pred = parse "nope > 1"; input = scan_x }) with
  | Ok _ -> Alcotest.fail "expected a violation"
  | Error v ->
    let s = V.to_string v in
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "rendered violation mentions %S" needle)
          true
          (Astring.String.is_infix ~affix:needle s))
      [ "decorrelate"; "unbound-var"; "nope"; "table X x" ]

(* --- property: every phase of every strategy verifies on random queries -- *)

let gen_catalog =
  Workload.Gen.xy
    { Workload.Gen.default_xy with
      nx = 20; ny = 20; key_dom = 5; dangling = 0.25; val_dom = 5; seed = 99 }

let corpus = Workload.Gen.queries ~count:80 ~seed:0x5eed ()

let prop_phases_verify =
  qcheck ~count:60 "every phase verifies; jobs ∈ {1,4} agree with interp"
    (QCheck2.Gen.oneofl corpus)
    (fun src ->
      match Core.Pipeline.run Core.Pipeline.Interp gen_catalog src with
      | Error msg ->
        QCheck2.Test.fail_reportf "interp failed on %s: %s" src msg
      | Ok reference ->
        List.for_all
          (fun strategy ->
            match
              Core.Pipeline.compile_string ~verify:true strategy gen_catalog
                src
            with
            | Error msg ->
              QCheck2.Test.fail_reportf "%s failed verification on %s: %s"
                (Core.Pipeline.strategy_name strategy)
                src msg
            | Ok compiled ->
              (* baselines may differ from the reference on purpose (the
                 COUNT bug); sound strategies must agree at any width *)
              let sound =
                match strategy with
                | Core.Pipeline.Kim_baseline | Core.Pipeline.Ganski_wong
                | Core.Pipeline.Muralikrishna ->
                  false
                | _ -> true
              in
              List.for_all
                (fun jobs ->
                  match
                    Core.Pipeline.execute ~jobs gen_catalog compiled
                  with
                  | v ->
                    (not sound)
                    || Cobj.Value.equal reference v
                    || QCheck2.Test.fail_reportf
                         "%s jobs=%d differs on %s"
                         (Core.Pipeline.strategy_name strategy)
                         jobs src
                  | exception Cobj.Value.Type_error msg ->
                    QCheck2.Test.fail_reportf "%s jobs=%d crashed on %s: %s"
                      (Core.Pipeline.strategy_name strategy)
                      jobs src msg)
                [ 1; 4 ])
          Core.Pipeline.all_strategies)

let suite =
  [
    Alcotest.test_case "unbound predicate variable" `Quick
      test_unbound_predicate_var;
    Alcotest.test_case "shadowed nest-join label" `Quick
      test_shadowed_nestjoin_label;
    Alcotest.test_case "project references missing variable" `Quick
      test_project_missing_var;
    Alcotest.test_case "nest join built on the wrong side (§6)" `Quick
      test_wrong_nestjoin_build_side;
    Alcotest.test_case "duplicate binding across join operands" `Quick
      test_duplicate_binding;
    Alcotest.test_case "non-boolean predicate" `Quick
      test_predicate_not_boolean;
    Alcotest.test_case "union operand mismatch" `Quick test_union_mismatch;
    Alcotest.test_case "apply subquery free variables" `Quick
      test_apply_free_vars;
    Alcotest.test_case "incomparable hash-join key types" `Quick
      test_hash_key_type;
    Alcotest.test_case "unknown table" `Quick test_unknown_table;
    Alcotest.test_case "nest groups by unbound variable" `Quick
      test_nest_unbound;
    Alcotest.test_case "sound plans verify under every strategy" `Quick
      test_valid_plans_verify;
    Alcotest.test_case "violation rendering" `Quick test_violation_rendering;
    prop_phases_verify;
  ]
