(* Self-time attribution: exclusive times telescope — their sum never
   exceeds the root's inclusive wall time, at jobs 1 and jobs 4, for the
   hash-join strategies and for shredded execution (whose analyze tree
   has a synthetic stitch root). Also pins the sort order, the JSON
   shape and the top-k cut. *)

module Profile = Engine.Profile
module Json = Engine.Json

let catalog =
  Workload.Gen.xy
    { Workload.Gen.default_xy with
      nx = 60; ny = 60; key_dom = 12; dangling = 0.3; seed = 7 }

let query =
  "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)"

let analyze ~strategy ~jobs src =
  match Core.Pipeline.compile_string strategy catalog src with
  | Error msg -> Alcotest.failf "compile: %s" msg
  | Ok compiled -> (
    match Core.Pipeline.analyze ~jobs catalog compiled with
    | Error msg -> Alcotest.failf "analyze: %s" msg
    | Ok (_v, tree) -> tree)

let sum_self (p : Profile.t) =
  List.fold_left
    (fun acc (r : Profile.row) -> Int64.add acc r.Profile.self_ns)
    0L p.Profile.rows

let check_telescopes what tree =
  let p = Profile.of_node tree in
  let sum = sum_self p in
  if Int64.compare sum p.Profile.wall_ns > 0 then
    Alcotest.failf "%s: Σ self (%Ldns) exceeds root wall (%Ldns)" what sum
      p.Profile.wall_ns;
  (* the root's own self time participates, so the sum is also a
     substantial fraction of the wall — not everything clamped away *)
  if p.Profile.rows = [] then Alcotest.failf "%s: empty profile" what

let test_telescoping_jobs1 () =
  check_telescopes "decorrelated jobs=1"
    (analyze ~strategy:Core.Pipeline.Decorrelated ~jobs:1 query)

let test_telescoping_jobs4 () =
  check_telescopes "decorrelated jobs=4"
    (analyze ~strategy:Core.Pipeline.Decorrelated ~jobs:4 query)

let test_telescoping_strategies () =
  List.iter
    (fun strategy ->
      match Core.Pipeline.compile_string strategy catalog query with
      | Error _ -> () (* strategy refuses the query: nothing to profile *)
      | Ok compiled -> (
        match Core.Pipeline.analyze ~jobs:1 catalog compiled with
        | Error _ -> ()
        | Ok (_v, tree) ->
          check_telescopes (Core.Pipeline.strategy_name strategy) tree))
    Core.Pipeline.all_strategies

let test_sorted_and_consistent () =
  let tree = analyze ~strategy:Core.Pipeline.Decorrelated ~jobs:1 query in
  let p = Profile.of_node tree in
  let rec sorted = function
    | (a : Profile.row) :: (b :: _ as rest) ->
      Int64.compare a.Profile.self_ns b.Profile.self_ns >= 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "rows sorted by self desc" true (sorted p.Profile.rows);
  List.iter
    (fun (r : Profile.row) ->
      if Int64.compare r.Profile.self_ns r.Profile.total_ns > 0 then
        Alcotest.failf "%s: self %Ld > total %Ld" r.Profile.op
          r.Profile.self_ns r.Profile.total_ns;
      if Int64.compare r.Profile.self_ns 0L < 0 then
        Alcotest.failf "%s: negative self time" r.Profile.op)
    p.Profile.rows;
  (* a leaf's self time is its total time *)
  let rec leaves (n : Engine.Stats.node) =
    match n.Engine.Stats.children with
    | [] -> [ n ]
    | cs -> List.concat_map leaves cs
  in
  List.iter
    (fun leaf ->
      Alcotest.(check int64) "leaf self = total" leaf.Engine.Stats.time_ns
        (Profile.self_ns leaf))
    (leaves tree)

let test_json_shape () =
  let tree = analyze ~strategy:Core.Pipeline.Decorrelated ~jobs:1 query in
  let p = Profile.of_node tree in
  match Profile.to_json p with
  | Json.Obj fields ->
    (match List.assoc_opt "wall_ns" fields with
    | Some (Json.Int64 _ | Json.Int _) -> ()
    | _ -> Alcotest.fail "wall_ns missing");
    (match List.assoc_opt "operators" fields with
    | Some (Json.List ops) ->
      Alcotest.(check int) "one object per row" (List.length p.Profile.rows)
        (List.length ops);
      List.iter
        (fun op ->
          match op with
          | Json.Obj props ->
            List.iter
              (fun key ->
                if not (List.mem_assoc key props) then
                  Alcotest.failf "operator object missing %s" key)
              [
                "op"; "detail"; "self_ns"; "total_ns"; "rows_out";
                "rows_per_ms"; "loops"; "vectorized"; "bloom_prunes";
                "partitions";
              ]
          | _ -> Alcotest.fail "operator not an object")
        ops
    | _ -> Alcotest.fail "operators missing")
  | _ -> Alcotest.fail "profile json not an object"

let test_top_k () =
  let tree = analyze ~strategy:Core.Pipeline.Decorrelated ~jobs:1 query in
  let p = Profile.of_node tree in
  let n = List.length p.Profile.rows in
  Alcotest.(check int) "top 1" (min 1 n) (List.length (Profile.top ~k:1 p));
  Alcotest.(check int) "top default caps at 5" (min 5 n)
    (List.length (Profile.top p));
  Alcotest.(check int) "top beyond length" n
    (List.length (Profile.top ~k:(n + 10) p));
  match (Profile.top ~k:1 p, p.Profile.rows) with
  | [ t ], r :: _ ->
    Alcotest.(check string) "top row is the hottest" r.Profile.op
      t.Profile.op
  | _ -> Alcotest.fail "top 1 of a non-empty profile"

let test_profile_metrics () =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  let tree = analyze ~strategy:Core.Pipeline.Decorrelated ~jobs:1 query in
  let p = Profile.of_node tree in
  Profile.record_metrics p;
  let dumped = Obs.Metrics.dump () in
  let self_gauges =
    List.filter
      (fun (name, _) ->
        String.starts_with ~prefix:"profile.self_us." name)
      dumped
  in
  Obs.Metrics.reset ();
  Obs.Metrics.disable ();
  Alcotest.(check bool) "per-op self gauges recorded" true
    (self_gauges <> []);
  List.iter
    (fun (name, v) ->
      match v with
      | Obs.Metrics.Gauge g ->
        if g < 0. then Alcotest.failf "%s negative" name
      | _ -> Alcotest.failf "%s is not a gauge" name)
    self_gauges

let suite =
  [
    Alcotest.test_case "Σ self ≤ root wall (jobs 1)" `Quick
      test_telescoping_jobs1;
    Alcotest.test_case "Σ self ≤ root wall (jobs 4)" `Quick
      test_telescoping_jobs4;
    Alcotest.test_case "Σ self ≤ root wall (all strategies)" `Quick
      test_telescoping_strategies;
    Alcotest.test_case "sorted, clamped, leaf self = total" `Quick
      test_sorted_and_consistent;
    Alcotest.test_case "JSON shape" `Quick test_json_shape;
    Alcotest.test_case "top-k cut" `Quick test_top_k;
    Alcotest.test_case "profile.self_us gauges" `Quick test_profile_metrics;
  ]
