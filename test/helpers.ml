(* Shared fixtures and checkers for the test suites. *)

module Value = Cobj.Value
module Ctype = Cobj.Ctype
module Env = Cobj.Env
module Table = Cobj.Table
module Catalog = Cobj.Catalog
module Ast = Lang.Ast
module Plan = Algebra.Plan

let value : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal

let ctype : Ctype.t Alcotest.testable =
  Alcotest.testable Ctype.pp Ctype.equal

let expr : Ast.expr Alcotest.testable =
  Alcotest.testable Lang.Pretty.pp Ast.equal

let vi i = Value.Int i
let vs s = Value.String s
let tup fields = Value.tuple fields
let vset xs = Value.set xs

(* The running example: X has a dangling row (b = 5 unmatched in Y) and a
   row with a = 0 — the COUNT-bug witnesses. *)
let xy_catalog () =
  let x_elt =
    Ctype.ttuple
      [ ("a", Ctype.TInt); ("b", Ctype.TInt); ("s", Ctype.TSet Ctype.TInt) ]
  in
  let xrow a b s =
    tup [ ("a", vi a); ("b", vi b); ("s", vset (List.map vi s)) ]
  in
  let y_elt = Ctype.ttuple [ ("c", Ctype.TInt); ("d", Ctype.TInt) ] in
  let yrow c d = tup [ ("c", vi c); ("d", vi d) ] in
  Catalog.of_tables
    [
      Table.create ~name:"X" ~elt:x_elt
        [
          xrow 1 1 [ 1; 2 ];
          xrow 2 1 [ 1 ];
          xrow 0 5 [];
          xrow 3 3 [ 3 ];
          xrow 2 3 [ 2; 3 ];
        ];
      Table.create ~name:"Y" ~elt:y_elt
        [ yrow 1 1; yrow 2 1; yrow 3 3; yrow 2 3; yrow 9 9 ];
    ]

let parse = Lang.Parser.expr

let run_strategy strategy catalog src =
  match Core.Pipeline.run strategy catalog src with
  | Ok v -> v
  | Error msg -> Alcotest.failf "strategy %s failed on %s: %s"
                   (Core.Pipeline.strategy_name strategy) src msg

(* Assert that every sound strategy computes the same value as the
   reference interpreter on [src]. *)
let strategies_agree ?(catalog = xy_catalog ()) src =
  let reference = run_strategy Core.Pipeline.Interp catalog src in
  List.iter
    (fun strategy ->
      let got = run_strategy strategy catalog src in
      Alcotest.check value
        (Printf.sprintf "%s on %s" (Core.Pipeline.strategy_name strategy) src)
        reference got)
    Core.Pipeline.
      [ Naive; Decorrelated; Decorrelated_outerjoin; Ganski_wong;
        Muralikrishna; Shredded ]

(* qcheck plumbing: a deterministic generator for small complex values. *)
let value_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            map (fun i -> Value.Int i) (int_range (-20) 20);
            map (fun b -> Value.Bool b) bool;
            map (fun s -> Value.String s)
              (string_size ~gen:(char_range 'a' 'e') (int_range 0 3));
          ]
      in
      if n <= 1 then leaf
      else
        oneof
          [
            leaf;
            map Value.set (list_size (int_range 0 4) (self (n / 2)));
            map
              (fun (a, b) -> Value.tuple [ ("f", a); ("g", b) ])
              (pair (self (n / 2)) (self (n / 2)));
            map2
              (fun tag v -> Value.Variant (tag, v))
              (oneofl [ "ta"; "tb" ])
              (self (n / 2));
          ])

let qcheck ?(count = 200) name gen prop =
  (* Deterministic by default so CI failures reproduce locally; set
     QCHECK_SEED to explore other seeds. *)
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( try int_of_string s with Failure _ -> 0x5eed)
    | None -> 0x5eed
  in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| seed |])
    (QCheck2.Test.make ~count ~name gen prop)
