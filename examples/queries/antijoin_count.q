-- Table 2: COUNT(z) = 0 is ¬∃-rewritable, so the decorrelator builds an
-- antijoin instead of grouping. A flattening baseline would still get
-- this wrong (the predicate holds on dangling rows), but the lint class
-- is antijoin-rewritable, not grouping-required — clean under --strict.
SELECT x.id FROM X x
WHERE COUNT(SELECT y.id FROM Y y WHERE y.b = x.b) = 0
