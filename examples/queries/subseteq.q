-- A set-valued comparison against a correlated subquery: SUBSETEQ needs
-- the whole per-row subquery result, so only grouping (the nest join)
-- computes it. ⊆ holds on an empty result, hence the COUNT-bug risk
-- under flattening. `nestql check --strict` exits 2 on this file.
SELECT x.id FROM X x
WHERE x.s SUBSETEQ (SELECT y.a FROM Y y WHERE y.b = x.b)
