-- The canonical COUNT bug (Kim 1982 / Kiessling 1985): comparing a
-- correlated COUNT against an outer attribute. No ∃/¬∃ rewrite exists
-- (Theorem 1), grouping is required, and Kim-style flattening silently
-- drops the dangling outer rows where the count is 0.
-- `nestql check --strict` exits 2 on this file.
SELECT x.id FROM X x
WHERE x.a = COUNT(SELECT y.id FROM Y y WHERE x.b = y.b)
