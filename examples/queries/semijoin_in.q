-- Table 2 class 1: a correlated IN predicate.
-- The classifier rewrites it to ∃-form, so the decorrelator builds a
-- semijoin — no grouping, no COUNT-bug risk. Clean under `check --strict`.
SELECT x.id FROM X x
WHERE x.a IN (SELECT y.a FROM Y y WHERE y.b = x.b)
