  $ ../bin/nestql.exe table2 | head -6
  $ ../bin/nestql.exe run -c table1 "SELECT (e = x.e, s = (SELECT y FROM Y y WHERE y.b = x.d)) FROM X x"
  $ ../bin/nestql.exe explain -c table1 "SELECT x.e FROM X x WHERE x.d IN (SELECT y.b FROM Y y WHERE y.a = x.e)"
  $ ../bin/nestql.exe run --file ../examples/movies.nql "SELECT m.title FROM MOVIES m WHERE \"De Niro\" IN m.cast"
  $ ../bin/nestql.exe run -c xy --seed 42 -n 50 -s kim "SELECT x.id FROM X x WHERE COUNT(SELECT y.id FROM Y y WHERE x.b = y.b) = 0"
  $ ../bin/nestql.exe run -c xy --seed 42 -n 50 -s decorrelated "SELECT x.id FROM X x WHERE COUNT(SELECT y.id FROM Y y WHERE x.b = y.b) = 0" | head -1
  $ ../bin/nestql.exe run -c table1 "SELECT"
  $ ../bin/nestql.exe run -c table1 "SELECT q.nope FROM X q"
  $ ../bin/nestql.exe catalog -c table1 --dump > t1.nql
  $ ../bin/nestql.exe run --file t1.nql "SELECT x.e FROM X x WHERE x.d = 1"
  $ ../bin/nestql.exe run --file ../examples/shapes.nql "SELECT d.id FROM DRAWINGS d WHERE d.shape IS circle"
  $ ../bin/nestql.exe check -c table1 "SELECT (e = x.e, ys = (SELECT y.a FROM Y y WHERE y.b = x.d)) FROM X x"
  $ ../bin/nestql.exe check -c table1 "SELECT x.nope FROM X x"
  $ printf '.tables\nSELECT x.e FROM X x WHERE x.d < 3\n.strategy interp\nX\n.quit\n' | ../bin/nestql.exe repl -c table1
