(* The COUNT bug (§2) and its complex-object generalization, the SUBSETEQ
   bug (§4), demonstrated concretely:

   - Kim's algorithm groups the inner operand and joins — dangling outer
     rows (whose subquery result is ∅) silently disappear;
   - the Ganski–Wong outerjoin + ν* fix keeps them via NULL padding;
   - the nest join keeps them natively: ∅ is part of the model, no NULLs.

   Run with:  dune exec examples/count_bug.exe *)

module Value = Cobj.Value

let catalog =
  (* val_dom is small so that [x.a = COUNT(...)] actually has witnesses,
     including dangling rows with a = 0. *)
  Workload.Gen.xy
    { Workload.Gen.default_xy with
      nx = 40; ny = 40; key_dom = 10; dangling = 0.3; val_dom = 5;
      seed = 2024 }

let queries =
  [
    ( "COUNT bug",
      "SELECT x.id FROM X x WHERE COUNT(SELECT y.id FROM Y y WHERE x.b = \
       y.b) = 0" );
    ( "COUNT-equality bug",
      "SELECT x.id FROM X x WHERE x.a = COUNT(SELECT y.id FROM Y y WHERE \
       x.b = y.b)" );
    ( "SUBSETEQ bug (the paper's §4 example)",
      "SELECT x.id FROM X x WHERE x.s SUBSETEQ (SELECT y.a FROM Y y WHERE \
       x.b = y.b)" );
  ]

let () =
  List.iter
    (fun (title, query) ->
      Fmt.pr "== %s ==@.%s@.@." title query;
      let reference =
        match Core.Pipeline.run Core.Pipeline.Interp catalog query with
        | Ok v -> v
        | Error msg -> failwith msg
      in
      List.iter
        (fun strategy ->
          match Core.Pipeline.run strategy catalog query with
          | Ok v ->
            let lost = Value.set_diff reference v in
            Fmt.pr "%-24s %3d rows   %s@."
              (Core.Pipeline.strategy_name strategy)
              (Value.set_card v)
              (if Value.set_is_empty lost then "correct"
               else
                 Fmt.str "** WRONG: lost %d dangling rows, e.g. id %a **"
                   (Value.set_card lost) Value.pp
                   (List.hd (Value.elements lost)))
          | Error msg ->
            Fmt.pr "%-24s error: %s@."
              (Core.Pipeline.strategy_name strategy)
              msg)
        Core.Pipeline.
          [ Interp; Naive; Decorrelated; Kim_baseline; Ganski_wong;
            Muralikrishna ];
      Fmt.pr "@.")
    queries;
  Fmt.pr
    "The nest join (used by the decorrelated strategy) preserves dangling@.\
     rows by construction: each left tuple is extended with the set of its@.\
     matches — possibly ∅ — so no grouping step can lose it.@."
