(* Building queries programmatically with [Lang.Build] — no concrete syntax,
   host-language scoping for query variables.

   The scenario: a bug-tracker with tickets carrying set-valued tag
   attributes. We ask for developers all of whose assigned tickets are
   tagged "done" — a ∀/⊆-style predicate that needs the nest join — and
   watch the optimizer produce it.

   Run with:  dune exec examples/programmatic.exe *)

module Value = Cobj.Value
module Ctype = Cobj.Ctype
open Lang.Build

let catalog =
  let dev_t = Ctype.ttuple [ ("name", Ctype.TString); ("team", Ctype.TString) ] in
  let dev name team =
    Value.tuple [ ("name", Value.String name); ("team", Value.String team) ]
  in
  let ticket_t =
    Ctype.ttuple
      [
        ("id", Ctype.TInt);
        ("assignee", Ctype.TString);
        ("tags", Ctype.TSet Ctype.TString);
      ]
  in
  let ticket id assignee tags =
    Value.tuple
      [
        ("id", Value.Int id);
        ("assignee", Value.String assignee);
        ("tags", Value.set (List.map (fun t -> Value.String t) tags));
      ]
  in
  Cobj.Catalog.of_tables
    [
      Cobj.Table.create ~key:[ "name" ] ~name:"DEVS" ~elt:dev_t
        [ dev "ada" "core"; dev "bob" "core"; dev "cleo" "ui" ];
      Cobj.Table.create ~key:[ "id" ] ~name:"TICKETS" ~elt:ticket_t
        [
          ticket 1 "ada" [ "done"; "parser" ];
          ticket 2 "ada" [ "done" ];
          ticket 3 "bob" [ "done" ];
          ticket 4 "bob" [ "wip"; "engine" ];
          (* cleo has no tickets: a dangling outer row — she trivially
             qualifies, and a COUNT-bug-style plan would lose her *)
        ];
    ]

(* SELECT d.name FROM DEVS d
   WHERE FORALL t IN (SELECT t FROM TICKETS t WHERE t.assignee = d.name)
         ("done" IN t.tags) *)
let all_done =
  select1
    ~from:(from (table "DEVS"))
    (fun d -> d $. "name")
    ~where:(fun d ->
      forall
        (select1
           ~from:(from (table "TICKETS"))
           (fun t -> t)
           ~where:(fun t -> (t $. "assignee") =: (d $. "name")))
        (fun t -> str "done" @: (t $. "tags")))

(* count of open (non-done) tickets per developer, as SELECT-clause nesting *)
let open_counts =
  select1
    ~from:(from (table "DEVS"))
    (fun d ->
      tuple
        [
          ("dev", d $. "name");
          ( "open",
            count
              (select1
                 ~from:(from (table "TICKETS"))
                 (fun t -> t $. "id")
                 ~where:(fun t ->
                   (t $. "assignee") =: (d $. "name")
                   &&: not_ (str "done" @: (t $. "tags")))) );
        ])

let show title built =
  Fmt.pr "== %s ==@." title;
  Fmt.pr "built query: %a@.@." Lang.Pretty.pp built;
  let compiled =
    match Core.Pipeline.compile Core.Pipeline.Decorrelated catalog built with
    | Ok c -> c
    | Error msg -> failwith msg
  in
  print_string (Core.Pipeline.explain catalog compiled);
  let v = Core.Pipeline.execute catalog compiled in
  Fmt.pr "@.result: %a@.@." Value.pp v;
  (* cross-check against the reference interpreter *)
  let reference =
    Lang.Interp.run catalog (Lang.Ast.resolve_tables catalog built)
  in
  assert (Value.equal v reference)

let () =
  show "developers with only done tickets (∀ → antijoin)" all_done;
  show "open tickets per developer (nest join)" open_counts
