(* Quickstart: build a catalog of complex objects, write a nested query,
   watch it get unnested, and execute it.

   Run with:  dune exec examples/quickstart.exe *)

module Value = Cobj.Value
module Ctype = Cobj.Ctype

let () =
  (* 1. Declare a table of complex objects. Attributes may be set valued:
        each order carries the set of item prices directly. *)
  let order_type =
    Ctype.ttuple
      [
        ("id", Ctype.TInt);
        ("customer", Ctype.TString);
        ("prices", Ctype.TSet Ctype.TInt);
      ]
  in
  let order id customer prices =
    Value.tuple
      [
        ("id", Value.Int id);
        ("customer", Value.String customer);
        ("prices", Value.set (List.map (fun p -> Value.Int p) prices));
      ]
  in
  let customer_type =
    Ctype.ttuple [ ("name", Ctype.TString); ("budget", Ctype.TInt) ]
  in
  let customer name budget =
    Value.tuple [ ("name", Value.String name); ("budget", Value.Int budget) ]
  in
  let catalog =
    Cobj.Catalog.of_tables
      [
        Cobj.Table.create ~key:[ "id" ] ~name:"ORDERS" ~elt:order_type
          [
            order 1 "ada" [ 10; 25 ];
            order 2 "ada" [ 5 ];
            order 3 "bob" [ 40; 10 ];
            order 4 "cleo" [];
          ];
        Cobj.Table.create ~key:[ "name" ] ~name:"CUSTOMERS" ~elt:customer_type
          [ customer "ada" 30; customer "bob" 20; customer "dan" 100 ];
      ]
  in

  (* 2. A nested query: customers for whom every price of every one of
        their orders is within budget. The subquery is correlated (it
        mentions [c]) — naively it re-runs per customer. *)
  let query =
    "SELECT c.name FROM CUSTOMERS c WHERE FORALL p IN \
     UNNEST(SELECT o.prices FROM ORDERS o WHERE o.customer = c.name) (p <= \
     c.budget)"
  in
  Fmt.pr "query:@.  %s@.@." query;

  (* 3. Compile under the paper's strategy and show what happened. *)
  let compiled =
    match
      Core.Pipeline.compile_string Core.Pipeline.Decorrelated catalog query
    with
    | Ok c -> c
    | Error msg -> failwith msg
  in
  print_string (Core.Pipeline.explain catalog compiled);

  (* 4. Execute, and double-check against the reference interpreter. *)
  let stats = Engine.Stats.create () in
  let result = Core.Pipeline.execute ~stats catalog compiled in
  Fmt.pr "@.result: %a@." Value.pp result;
  Fmt.pr "work:   %a@." Engine.Stats.pp stats;
  let reference =
    match Core.Pipeline.run Core.Pipeline.Interp catalog query with
    | Ok v -> v
    | Error msg -> failwith msg
  in
  assert (Value.equal result reference);
  Fmt.pr "matches the reference interpreter ✓@."
