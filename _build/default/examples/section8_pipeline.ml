(* §8 of the paper: processing an acyclic three-block query whose
   correlation predicates are neighbour predicates.

   The grouping variant (both predicates are ⊆) compiles to two nest joins
   applied innermost-first, exactly the four-step strategy of the paper;
   changing the predicates to ∈ / ∉ forms lets the optimizer replace the
   nest joins by a semijoin and an antijoin.

   Run with:  dune exec examples/section8_pipeline.exe *)

module Value = Cobj.Value

let catalog =
  Workload.Gen.xyz
    {
      base =
        { Workload.Gen.default_xy with
          nx = 120; ny = 120; key_dom = 30; val_dom = 8; seed = 3 };
      nz = 120;
      z_key_dom = 30;
    }

(* SELECT x FROM X x
   WHERE x.a ⊆ (SELECT y.a FROM Y y
                WHERE x.b = y.b
                  AND y.c ⊆ (SELECT z.c FROM Z z WHERE y.d = z.d)) *)
let grouping_variant =
  "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = \
   y.b AND y.c SUBSETEQ (SELECT z.c FROM Z z WHERE y.d = z.d))"

(* The ∈ / ∉ variant of the same query shape. *)
let flat_variant =
  "SELECT x FROM X x WHERE EXISTS w IN x.a (w IN (SELECT y.a FROM Y y WHERE \
   x.b = y.b AND FORALL u IN y.c (u NOT IN (SELECT z.c FROM Z z WHERE y.d = \
   z.d))))"

let show title query =
  Fmt.pr "== %s ==@.%s@.@." title query;
  let compiled =
    match
      Core.Pipeline.compile_string Core.Pipeline.Decorrelated catalog query
    with
    | Ok c -> c
    | Error msg -> failwith msg
  in
  print_string (Core.Pipeline.explain catalog compiled);
  Fmt.pr "@.";
  List.iter
    (fun strategy ->
      let stats = Engine.Stats.create () in
      match Core.Pipeline.run ~stats strategy catalog query with
      | Ok v ->
        Fmt.pr "%-14s %4d rows   work=%-8d applies=%d@."
          (Core.Pipeline.strategy_name strategy)
          (Value.set_card v)
          (Engine.Stats.total_work stats)
          stats.Engine.Stats.applies
      | Error msg ->
        Fmt.pr "%-14s error: %s@."
          (Core.Pipeline.strategy_name strategy)
          msg)
    Core.Pipeline.[ Naive; Decorrelated ];
  Fmt.pr "@."

let () =
  show "grouping variant: two nest joins (steps (1)-(4) of §8)"
    grouping_variant;
  show "∈/∉ variant: semijoin + antijoin replace the nest joins"
    flat_variant
