(* The paper's §3.2 example queries over the Company schema.

   Q1 selects departments having an employee who lives in the street and
   city where the department is located — nesting in the WHERE clause over
   the set-valued attribute [d.emps] (kept nested: the set is stored with
   the object).

   Q2 pairs each department name with the employees living in the city of
   the department — nesting in the SELECT clause over a distinct table,
   processed with a nest join.

   Run with:  dune exec examples/company_queries.exe *)

module Value = Cobj.Value

let q1 =
  "SELECT d.name FROM DEPT d WHERE (s = d.address.street, c = \
   d.address.city) IN (SELECT (s = e.address.street, c = e.address.city) \
   FROM d.emps e)"

let q2 =
  "SELECT (dname = d.name, emps = (SELECT e.name FROM EMP e WHERE \
   e.address.city = d.address.city)) FROM DEPT d"

let run_and_show catalog title query =
  Fmt.pr "== %s ==@.%s@.@." title query;
  let compiled =
    match
      Core.Pipeline.compile_string Core.Pipeline.Decorrelated catalog query
    with
    | Ok c -> c
    | Error msg -> failwith msg
  in
  print_string (Core.Pipeline.explain catalog compiled);
  let stats = Engine.Stats.create () in
  let result = Core.Pipeline.execute ~stats catalog compiled in
  Fmt.pr "@.%d result values; e.g.:@." (Value.set_card result);
  (match Value.elements result with
  | first :: _ -> Fmt.pr "  %a@." Value.pp first
  | [] -> ());
  Fmt.pr "work: %a@.@." Engine.Stats.pp stats

let () =
  let catalog =
    Workload.Gen.company
      { Workload.Gen.default_company with ndepts = 8; nemps_per_dept = 25 }
  in
  run_and_show catalog "Q1 — nesting in the WHERE clause (set-valued operand)"
    q1;
  run_and_show catalog "Q2 — nesting in the SELECT clause (nest join)" q2;

  (* Compare strategies on Q2: the nest join beats per-department
     re-evaluation. *)
  Fmt.pr "== Q2 under each strategy ==@.";
  List.iter
    (fun strategy ->
      let stats = Engine.Stats.create () in
      match Core.Pipeline.run ~stats strategy catalog q2 with
      | Ok v ->
        Fmt.pr "%-24s %3d tuples   work=%d@."
          (Core.Pipeline.strategy_name strategy)
          (Value.set_card v)
          (Engine.Stats.total_work stats)
      | Error msg ->
        Fmt.pr "%-24s error: %s@."
          (Core.Pipeline.strategy_name strategy)
          msg)
    Core.Pipeline.
      [ Naive; Decorrelated; Decorrelated_outerjoin; Ganski_wong ]
