examples/programmatic.mli:
