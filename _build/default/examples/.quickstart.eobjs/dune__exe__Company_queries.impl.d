examples/company_queries.ml: Cobj Core Engine Fmt List Workload
