examples/section8_pipeline.mli:
