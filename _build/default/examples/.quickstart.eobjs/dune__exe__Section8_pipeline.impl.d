examples/section8_pipeline.ml: Cobj Core Engine Fmt List Workload
