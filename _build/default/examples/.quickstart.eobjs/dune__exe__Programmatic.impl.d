examples/programmatic.ml: Cobj Core Fmt Lang List
