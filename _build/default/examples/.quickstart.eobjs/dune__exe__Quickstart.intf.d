examples/quickstart.mli:
