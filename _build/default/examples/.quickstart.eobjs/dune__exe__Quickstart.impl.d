examples/quickstart.ml: Cobj Core Engine Fmt List
