examples/count_bug.ml: Cobj Core Fmt List Workload
