bench/experiments.ml: Algebra Cobj Core Engine Fmt Fun Harness Lang List Option Printf String Workload
