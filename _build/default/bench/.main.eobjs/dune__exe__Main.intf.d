bench/main.mli:
