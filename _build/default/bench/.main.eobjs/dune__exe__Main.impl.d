bench/main.ml: Array Bechamel Core Engine Experiments Fun Harness Lazy List Printf Staged String Sys Test Workload
