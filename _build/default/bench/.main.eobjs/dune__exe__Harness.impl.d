bench/harness.ml: Analyze Bechamel Benchmark Char Filename Float Hashtbl Int64 List Measure Monotonic_clock Printf String Sys Test Time Toolkit
