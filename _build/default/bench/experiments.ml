(* The experiment suite: one function per table/figure of DESIGN.md §3.

   Every experiment prints the same kind of table the paper's narrative
   implies, plus machine-independent work counters next to wall-clock
   times. Absolute numbers are 2026 hardware; the shapes (who wins, by
   what factor, where crossovers fall) are the reproduction target. *)

module Value = Cobj.Value
module Env = Cobj.Env
module Plan = Algebra.Plan
module P = Engine.Physical
module Pipeline = Core.Pipeline
open Harness

let run_ms ?options strategy catalog query =
  let compiled =
    match Pipeline.compile_string ?options strategy catalog query with
    | Ok c -> c
    | Error msg -> failwith msg
  in
  let stats = Engine.Stats.create () in
  let value = ref (Value.Set []) in
  let ms = measure_ms (fun () -> value := Pipeline.execute catalog compiled) in
  (* one extra run to collect counters *)
  ignore (Pipeline.execute ~stats catalog compiled);
  (ms, !value, stats)

let forced force =
  { Core.Planner.default_options with Core.Planner.force }

(* ---------------------------------------------------------------- T1 --- *)

let table1 () =
  let catalog = Workload.Gen.table1 () in
  Printf.printf "\n== T1: the paper's Table 1 — nest equijoin of X and Y ==\n";
  Fmt.pr "%a@.@.%a@.@." Cobj.Table.pp
    (Cobj.Catalog.find_exn "X" catalog)
    Cobj.Table.pp
    (Cobj.Catalog.find_exn "Y" catalog);
  let mk_physical impl =
    let lkey = Lang.Parser.expr "x.d" and rkey = Lang.Parser.expr "y.b" in
    let pred = Lang.Parser.expr "x.d = y.b" in
    let func = Lang.Parser.expr "y" in
    let left = P.Scan { table = "X"; var = "x" } in
    let right = P.Scan { table = "Y"; var = "y" } in
    match impl with
    | `Nl -> P.Nl_nestjoin { pred; func; label = "s"; left; right }
    | `Hash ->
      P.Hash_nestjoin
        { lkey; rkey; residual = None; func; label = "s"; left; right }
    | `Merge ->
      P.Merge_nestjoin
        { lkey; rkey; residual = None; func; label = "s"; left; right }
  in
  let result impl =
    Engine.Exec.rows catalog Env.empty (mk_physical impl)
    |> List.sort Env.compare
  in
  let reference = result `Nl in
  List.iter
    (fun (name, impl) ->
      let rows = result impl in
      assert (List.for_all2 Env.equal reference rows);
      ignore name)
    [ ("nl", `Nl); ("hash", `Hash); ("merge", `Merge) ];
  let rows =
    List.map
      (fun r ->
        let x = Env.find "x" r and s = Env.find "s" r in
        let fmt_pair v =
          Printf.sprintf "(%s,%s)"
            (Value.to_string (Value.field "a" v))
            (Value.to_string (Value.field "b" v))
        in
        [
          Value.to_string (Value.field "e" x);
          Value.to_string (Value.field "d" x);
          (match s with
          | Value.Set [] -> "∅"
          | Value.Set xs -> "{" ^ String.concat "," (List.map fmt_pair xs) ^ "}"
          | _ -> assert false);
        ])
      reference
  in
  print_table ~title:"X Δ Y on the second attribute (identity function)"
    ~header:[ "e"; "d"; "s(e,d)" ] rows;
  print_endline
    "(all three implementations — nl, hash, merge — produced identical rows)"

(* ---------------------------------------------------------------- T2 --- *)

let table2 () =
  Printf.printf
    "\n== T2: the paper's Table 2 — rewriting TM predicates ==\n";
  let rows =
    List.map
      (fun row ->
        let p = Core.Table2.predicate row in
        let verdict = Core.Classify.classify ~z:"z" p in
        let got = Core.Table2.kind verdict in
        let rewritten =
          match Core.Classify.to_expr ~z:"z" verdict with
          | Some e -> Lang.Pretty.to_math_string e
          | None -> "(grouping → nest join)"
        in
        [
          row.Core.Table2.source;
          (if row.Core.Table2.in_paper then "paper" else "ext");
          Core.Table2.expected_to_string got;
          (if got = row.Core.Table2.expected then "ok" else "MISMATCH");
          rewritten;
        ])
      Core.Table2.rows
  in
  print_table ~title:"predicate classification"
    ~header:[ "P(x, z)"; "origin"; "verdict"; "check"; "rewritten form" ]
    rows

(* ---------------------------------------------------------------- E1 --- *)

(* Nested-loop processing vs the flattened (semijoin) query. *)
let flatten_sweep () =
  let query =
    "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)"
  in
  Printf.printf "\n== E1: flattening beats nested-loop processing ==\n";
  Printf.printf "query: %s\n" query;
  let rows =
    List.map
      (fun n ->
        let catalog =
          Workload.Gen.xy
            { Workload.Gen.default_xy with
              nx = n; ny = n; key_dom = max 1 (n / 4); dangling = 0.1;
              seed = 11 }
        in
        let naive_ms, naive_v, naive_st =
          run_ms Pipeline.Naive catalog query
        in
        let flat_nl_ms, flat_nl_v, _ =
          run_ms ~options:(forced Core.Planner.Force_nl) Pipeline.Decorrelated
            catalog query
        in
        let flat_hash_ms, flat_hash_v, flat_st =
          run_ms Pipeline.Decorrelated catalog query
        in
        assert (Value.equal naive_v flat_hash_v);
        assert (Value.equal naive_v flat_nl_v);
        [
          fint n;
          fms naive_ms;
          fms flat_nl_ms;
          fms flat_hash_ms;
          fratio (naive_ms /. flat_hash_ms);
          fint (Engine.Stats.total_work naive_st);
          fint (Engine.Stats.total_work flat_st);
        ])
      [ 25; 50; 100; 200; 400; 800 ]
  in
  print_table ~title:"|X| = |Y| = n, 10% dangling, fan-out ≈ 4"
    ~header:
      [
        "n"; "naive ms"; "semijoin(nl) ms"; "semijoin(hash) ms"; "speedup";
        "naive work"; "flat work";
      ]
    rows;
  print_endline
    "shape check: naive grows ~quadratically; the hash semijoin stays \
     near-linear."

(* ---------------------------------------------------------------- E2 --- *)

(* Nest join implementations, and the ν* ∘ outerjoin encoding. *)
let nestjoin_impls () =
  let query =
    "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x"
  in
  Printf.printf "\n== E2: nest join implementations (§6) ==\n";
  Printf.printf "query: %s\n" query;
  let rows =
    List.map
      (fun n ->
        let catalog =
          Workload.Gen.xy
            { Workload.Gen.default_xy with
              nx = n; ny = n; key_dom = max 1 (n / 4); dangling = 0.2;
              seed = 5 }
        in
        let nl_ms, nl_v, _ =
          run_ms ~options:(forced Core.Planner.Force_nl) Pipeline.Decorrelated
            catalog query
        in
        let hash_ms, hash_v, _ =
          run_ms ~options:(forced Core.Planner.Force_hash)
            Pipeline.Decorrelated catalog query
        in
        let merge_ms, merge_v, _ =
          run_ms ~options:(forced Core.Planner.Force_merge)
            Pipeline.Decorrelated catalog query
        in
        let oj_ms, oj_v, _ =
          run_ms Pipeline.Decorrelated_outerjoin catalog query
        in
        assert (Value.equal nl_v hash_v);
        assert (Value.equal nl_v merge_v);
        assert (Value.equal nl_v oj_v);
        [
          fint n; fms nl_ms; fms hash_ms; fms merge_ms; fms oj_ms;
          fratio (nl_ms /. hash_ms);
        ])
      [ 100; 200; 400; 800 ]
  in
  print_table
    ~title:"Δ by nested loops / hash / sort-merge, and ν*(X ⟗ Y)"
    ~header:
      [ "n"; "Δ nl ms"; "Δ hash ms"; "Δ merge ms"; "ν*∘⟗ ms"; "nl/hash" ]
    rows;
  print_endline
    "shape check: any join method implements Δ; hash wins; the outerjoin \
     encoding pays for NULL padding and a separate grouping pass."

(* ---------------------------------------------------------------- E3 --- *)

let section8 () =
  let grouping =
    "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = \
     y.b AND y.c SUBSETEQ (SELECT z.c FROM Z z WHERE y.d = z.d))"
  in
  let flat =
    "SELECT x FROM X x WHERE EXISTS w IN x.a (w IN (SELECT y.a FROM Y y \
     WHERE x.b = y.b AND FORALL u IN y.c (u NOT IN (SELECT z.c FROM Z z \
     WHERE y.d = z.d))))"
  in
  Printf.printf "\n== E3: the §8 three-block query ==\n";
  Printf.printf "grouping variant: %s\nflat variant:     %s\n" grouping flat;
  let catalog_of n =
    Workload.Gen.xyz
      {
        base =
          { Workload.Gen.default_xy with
            nx = n; ny = n; key_dom = max 1 (n / 4); val_dom = 8; seed = 17 };
        nz = n;
        z_key_dom = max 1 (n / 4);
      }
  in
  let rows =
    List.map
      (fun n ->
        let catalog = catalog_of n in
        let naive g =
          if n <= 160 then
            let ms, v, _ = run_ms Pipeline.Naive catalog g in
            (fms ms, Some v)
          else ("-", None)
        in
        let naive_g, naive_gv = naive grouping in
        let opt_g_ms, opt_gv, _ = run_ms Pipeline.Decorrelated catalog grouping in
        let naive_f, naive_fv = naive flat in
        let opt_f_ms, opt_fv, _ = run_ms Pipeline.Decorrelated catalog flat in
        Option.iter (fun v -> assert (Value.equal v opt_gv)) naive_gv;
        Option.iter (fun v -> assert (Value.equal v opt_fv)) naive_fv;
        [
          fint n; naive_g; fms opt_g_ms; naive_f; fms opt_f_ms;
          fint (Value.set_card opt_gv);
          fint (Value.set_card opt_fv);
        ])
      [ 40; 80; 160; 320 ]
  in
  print_table
    ~title:"naive vs decorrelated; ⊆⊆ → 2 nest joins, ∈∉ → semi + anti"
    ~header:
      [
        "n"; "naive ΔΔ ms"; "opt ΔΔ ms"; "naive ⋉⊳ ms"; "opt ⋉⊳ ms";
        "|ΔΔ|"; "|⋉⊳|";
      ]
    rows;
  print_endline
    "shape check: decorrelation wins by orders of magnitude and the \
     semijoin/antijoin variant is at least as fast as the nest joins."

(* ---------------------------------------------------------------- E4 --- *)

let bugs () =
  let query =
    "SELECT x.id FROM X x WHERE COUNT(SELECT y.id FROM Y y WHERE x.b = y.b) \
     = 0"
  in
  let subseteq_query =
    "SELECT x.id FROM X x WHERE x.s SUBSETEQ (SELECT y.a FROM Y y WHERE x.b \
     = y.b)"
  in
  Printf.printf "\n== E4: the COUNT bug and the SUBSETEQ bug ==\n";
  let sweep title query =
    let rows =
      List.map
        (fun dangling ->
          let catalog =
            Workload.Gen.xy
              { Workload.Gen.default_xy with
                nx = 300; ny = 300; key_dom = 75; dangling; seed = 23 }
          in
          let _, reference, _ = run_ms Pipeline.Interp catalog query in
          let kim_ms, kim_v, _ = run_ms Pipeline.Kim_baseline catalog query in
          let gw_ms, gw_v, _ = run_ms Pipeline.Ganski_wong catalog query in
          let mura_ms, mura_v, _ =
            run_ms Pipeline.Muralikrishna catalog query
          in
          let nj_ms, nj_v, _ = run_ms Pipeline.Decorrelated catalog query in
          assert (Value.equal reference gw_v);
          assert (Value.equal reference mura_v);
          assert (Value.equal reference nj_v);
          let lost =
            Value.set_card (Value.set_diff reference kim_v)
          in
          [
            Printf.sprintf "%.0f%%" (dangling *. 100.0);
            fint (Value.set_card reference);
            fint (Value.set_card kim_v);
            fint lost;
            fms kim_ms;
            fms gw_ms;
            fms mura_ms;
            fms nj_ms;
          ])
        [ 0.0; 0.1; 0.2; 0.3; 0.5 ]
    in
    print_table ~title
      ~header:
        [
          "dangling"; "correct rows"; "kim rows"; "kim lost"; "kim ms";
          "ganski-wong ms"; "mura ms"; "nest join ms";
        ]
      rows
  in
  Printf.printf "query: %s\n" query;
  sweep "COUNT bug: kim loses exactly the dangling rows" query;
  Printf.printf "\nquery: %s\n" subseteq_query;
  sweep "SUBSETEQ bug: the same loss in a complex-object predicate"
    subseteq_query;
  print_endline
    "shape check: kim's loss is exactly the set of unmatched qualifying \
     rows (even at 0% forced dangling a few keys match nothing by chance); \
     outerjoin and nest join always agree with the reference."

(* ---------------------------------------------------------------- E5 --- *)

let build_side () =
  Printf.printf "\n== E5: nest join build-side restriction (§6) ==\n";
  let rows =
    List.map
      (fun ny ->
        let nx = 200 in
        let catalog =
          Workload.Gen.xy
            { Workload.Gen.default_xy with
              nx; ny; key_dom = nx; dangling = 0.0; seed = 31 }
        in
        (* Y Δ X on y.b = x.id — x.id is a declared key of X, so both the
           right-build and the streaming left-build are legal. *)
        let lkey = Lang.Parser.expr "y.b" and rkey = Lang.Parser.expr "x.id" in
        let func = Lang.Parser.expr "x.a" in
        let left = P.Scan { table = "Y"; var = "y" } in
        let right = P.Scan { table = "X"; var = "x" } in
        let right_build =
          P.Hash_nestjoin
            { lkey; rkey; residual = None; func; label = "g"; left; right }
        in
        let left_build =
          P.Hash_nestjoin_left
            { lkey; rkey; residual = None; func; label = "g"; left; right }
        in
        let canon p =
          Engine.Exec.rows catalog Env.empty p |> List.sort_uniq Env.compare
        in
        let r_ms = measure_ms (fun () -> ignore (canon right_build)) in
        let l_ms = measure_ms (fun () -> ignore (canon left_build)) in
        let agree =
          let a = canon right_build and b = canon left_build in
          List.length a = List.length b && List.for_all2 Env.equal a b
        in
        [ fint ny; fms r_ms; fms l_ms; (if agree then "yes" else "NO") ])
      [ 200; 800; 3200 ]
  in
  print_table
    ~title:"Y Δ X on a key of X (|X| = 200): both build sides are legal"
    ~header:[ "|Y|"; "build=right ms"; "build=left ms"; "agree" ]
    rows;
  (* the illegal case: the same left-build streaming on a non-key *)
  let catalog =
    Workload.Gen.xy
      { Workload.Gen.default_xy with
        nx = 50; ny = 200; key_dom = 10; dangling = 0.1; seed = 32 }
  in
  let lkey = Lang.Parser.expr "x.b" and rkey = Lang.Parser.expr "y.b" in
  let func = Lang.Parser.expr "y.a" in
  let left = P.Scan { table = "X"; var = "x" } in
  let right = P.Scan { table = "Y"; var = "y" } in
  let legal =
    P.Hash_nestjoin
      { lkey; rkey; residual = None; func; label = "g"; left; right }
  in
  let illegal =
    P.Hash_nestjoin_left
      { lkey; rkey; residual = None; func; label = "g"; left; right }
  in
  let canon p =
    Engine.Exec.rows catalog Env.empty p |> List.sort_uniq Env.compare
  in
  let a = canon legal and b = canon illegal in
  Printf.printf
    "\nillegal left-build on a non-key: %d correct groups vs %d streamed \
     fragments — the planner refuses this plan (the §6 restriction).\n"
    (List.length a) (List.length b)

(* ---------------------------------------------------------------- E6 --- *)

let apply_memo () =
  let query =
    "SELECT x.id FROM X x WHERE x.a = COUNT(SELECT y.id FROM Y y WHERE x.b \
     = y.b)"
  in
  Printf.printf "\n== E6: memoized apply vs decorrelation (ablation) ==\n";
  Printf.printf "query: %s\n" query;
  let rows =
    List.map
      (fun key_dom ->
        let catalog =
          Workload.Gen.xy
            { Workload.Gen.default_xy with
              nx = 400; ny = 400; key_dom; dangling = 0.0; seed = 41 }
        in
        let plain_ms, v1, st1 = run_ms Pipeline.Naive catalog query in
        let memo_ms, v2, st2 =
          run_ms
            ~options:
              { Core.Planner.default_options with
                Core.Planner.memo_applies = true }
            Pipeline.Naive catalog query
        in
        let opt_ms, v3, _ = run_ms Pipeline.Decorrelated catalog query in
        assert (Value.equal v1 v2);
        assert (Value.equal v1 v3);
        [
          fint key_dom;
          fms plain_ms;
          fms memo_ms;
          fms opt_ms;
          fint st1.Engine.Stats.applies;
          fint st2.Engine.Stats.applies;
          fint st2.Engine.Stats.apply_hits;
        ])
      [ 2; 8; 32; 128; 400 ]
  in
  print_table
    ~title:"|X| = |Y| = 400; fewer distinct keys → memoization approaches \
            decorrelation"
    ~header:
      [
        "key dom"; "apply ms"; "apply+memo ms"; "nest join ms"; "evals";
        "memo evals"; "memo hits";
      ]
    rows;
  print_endline
    "shape check: memoization helps exactly in proportion to duplicate \
     correlation keys; the nest join is insensitive to it."

(* ---------------------------------------------------------------- E7 --- *)

let unnest_select () =
  let query =
    "UNNEST(SELECT (SELECT (i = x.id, a = y.a) FROM Y y WHERE x.b = y.b) \
     FROM X x)"
  in
  Printf.printf "\n== E7: the §5 collapsible SELECT nesting ==\n";
  Printf.printf "query: %s\n" query;
  let rows =
    List.map
      (fun n ->
        let catalog =
          Workload.Gen.xy
            { Workload.Gen.default_xy with
              nx = n; ny = n; key_dom = max 1 (n / 4); dangling = 0.1;
              seed = 53 }
        in
        let naive_ms, v1, _ = run_ms Pipeline.Naive catalog query in
        let join_ms, v2, _ = run_ms Pipeline.Decorrelated catalog query in
        (* the alternative: nest join, then unnest the grouped attribute *)
        let nj_unnest =
          {
            P.plan =
              P.Unnest_op
                {
                  expr = Lang.Parser.expr "g";
                  var = "u";
                  input =
                    P.Hash_nestjoin
                      {
                        lkey = Lang.Parser.expr "x.b";
                        rkey = Lang.Parser.expr "y.b";
                        residual = None;
                        func = Lang.Parser.expr "(i = x.id, a = y.a)";
                        label = "g";
                        left = P.Scan { table = "X"; var = "x" };
                        right = P.Scan { table = "Y"; var = "y" };
                      };
                };
            result = Lang.Parser.expr "u";
          }
        in
        let nj_ms =
          measure_ms (fun () -> ignore (Engine.Exec.run catalog nj_unnest))
        in
        let v3 = Engine.Exec.run catalog nj_unnest in
        assert (Value.equal v1 v2);
        assert (Value.equal v1 v3);
        [ fint n; fms naive_ms; fms join_ms; fms nj_ms ])
      [ 100; 200; 400; 800 ]
  in
  print_table
    ~title:"UNNEST(SELECT (SELECT …)) — join vs nest-join-then-unnest"
    ~header:[ "n"; "naive ms"; "plain join ms"; "Δ + unnest ms" ]
    rows;
  print_endline
    "shape check: both flattened forms dominate the naive plan by orders \
     of magnitude; the plain join and Δ+unnest are comparable here — the \
     join avoids materializing per-row sets, the nest join avoids the \
     final dedup being quadratic in group size."

let all =
  [
    ("table1", table1);
    ("table2", table2);
    ("flatten-sweep", flatten_sweep);
    ("nestjoin-impls", nestjoin_impls);
    ("section8", section8);
    ("bugs", bugs);
    ("build-side", build_side);
    ("apply-memo", apply_memo);
    ("unnest-select", unnest_select);
  ]

(* ---------------------------------------------------------------- E8 --- *)

(* Multiple subqueries in one WHERE clause — the paper's future work. *)
let multi_subquery () =
  let query =
    "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = \
     y.b) AND x.a NOT IN (SELECT w.a FROM Y w WHERE w.b = x.b + 1)"
  in
  Printf.printf "\n== E8: multiple subqueries per WHERE clause ==\n";
  Printf.printf "query: %s\n" query;
  let rows =
    List.map
      (fun n ->
        let catalog =
          Workload.Gen.xy
            { Workload.Gen.default_xy with
              nx = n; ny = n; key_dom = max 1 (n / 4); dangling = 0.1;
              seed = 61 }
        in
        let naive_ms, v1, st1 = run_ms Pipeline.Naive catalog query in
        let opt_ms, v2, st2 = run_ms Pipeline.Decorrelated catalog query in
        assert (Value.equal v1 v2);
        [
          fint n; fms naive_ms; fms opt_ms; fratio (naive_ms /. opt_ms);
          fint st1.Engine.Stats.applies;
          fint st2.Engine.Stats.applies;
        ])
      [ 50; 100; 200; 400; 800 ]
  in
  print_table
    ~title:"semijoin + antijoin replace two correlated subqueries at once"
    ~header:[ "n"; "naive ms"; "optimized ms"; "speedup"; "naive applies";
              "opt applies" ]
    rows;
  print_endline
    "shape check: both applies are eliminated (opt applies = 0); the win \
     compounds with two subqueries per row."

(* ---------------------------------------------------------------- E9 --- *)

(* Ablation: the logical rewriter (selection pushdown, dead nest join
   elimination) on top of plain decorrelation. *)
let rewrite_ablation () =
  let queries =
    [
      ( "selective conjunct + subquery",
        "SELECT x.id FROM X x WHERE x.id MOD 20 = 0 AND x.a IN (SELECT y.a \
         FROM Y y WHERE x.b = y.b)" );
      ( "two subqueries, one selective",
        "SELECT x.id FROM X x WHERE x.id MOD 10 = 0 AND x.a IN (SELECT y.a \
         FROM Y y WHERE x.b = y.b) AND x.a NOT IN (SELECT w.a FROM Y w \
         WHERE w.b = x.b + 1)" );
    ]
  in
  Printf.printf "\n== E9: logical-rewrite ablation ==\n";
  let rows =
    List.concat_map
      (fun (name, query) ->
        List.map
          (fun n ->
            let catalog =
              Workload.Gen.xy
                { Workload.Gen.default_xy with
                  nx = n; ny = n; key_dom = max 1 (n / 4); dangling = 0.1;
                  seed = 67 }
            in
            let compiled rewrite =
              match
                Pipeline.compile_string ~rewrite Pipeline.Decorrelated catalog
                  query
              with
              | Ok c -> c
              | Error msg -> failwith msg
            in
            let with_r = compiled true and without_r = compiled false in
            let v1 = ref (Value.Set []) and v2 = ref (Value.Set []) in
            let on_ms =
              measure_ms (fun () -> v1 := Pipeline.execute catalog with_r)
            in
            let off_ms =
              measure_ms (fun () -> v2 := Pipeline.execute catalog without_r)
            in
            assert (Value.equal !v1 !v2);
            [ name; fint n; fms off_ms; fms on_ms; fratio (off_ms /. on_ms) ])
          [ 200; 800 ])
      queries
  in
  print_table ~title:"decorrelation with vs without the rewriter"
    ~header:[ "query"; "n"; "no rewrite ms"; "rewrite ms"; "speedup" ]
    rows;
  print_endline
    "shape check: pushing the selective conjunct below the joins shrinks \
     the build/probe inputs; the effect grows with selectivity."

let all =
  all @ [ ("multi-subquery", multi_subquery); ("rewrite-ablation", rewrite_ablation) ]

(* ---------------------------------------------------------------- E10 -- *)

(* Index amortization: the per-field hash index makes repeated queries skip
   the build phase — the "several join implementations" the paper's §2
   motivates, one step further. *)
let index_amortization () =
  (* one equi conjunct (x.b = y.b) plus a residual — a single-field key the
     per-field index can serve (composite keys fall back to hashing) *)
  let query =
    "SELECT x.id FROM X x WHERE EXISTS v IN (SELECT y.a FROM Y y WHERE x.b      = y.b) (v > x.a)"
  in
  Printf.printf "\n== E10: index joins amortize across queries ==\n";
  Printf.printf "query: %s\n" query;
  let rows =
    List.map
      (fun ny ->
        (* small probe side, large build side: the hash join rebuilds the
           big table every run, the warm index never does. Fresh catalog per
           point so the first indexed run pays the build. *)
        let catalog =
          Workload.Gen.xy
            { Workload.Gen.default_xy with
              nx = 100; ny; key_dom = 50; dangling = 0.1; seed = 71 }
        in
        let compile options =
          match
            Pipeline.compile_string ~options Pipeline.Decorrelated catalog
              query
          with
          | Ok c -> c
          | Error msg -> failwith msg
        in
        let hash_c =
          compile { Core.Planner.default_options with use_indexes = false }
        in
        let index_c = compile Core.Planner.default_options in
        let cold_ns, v1 = time_once (fun () -> Pipeline.execute catalog index_c) in
        let warm_ms =
          measure_ms (fun () -> ignore (Pipeline.execute catalog index_c))
        in
        let hash_ms =
          measure_ms (fun () -> ignore (Pipeline.execute catalog hash_c))
        in
        let v2 = Pipeline.execute catalog hash_c in
        assert (Value.equal v1 v2);
        [
          fint ny;
          fms (cold_ns /. 1e6);
          fms warm_ms;
          fms hash_ms;
          fratio (hash_ms /. warm_ms);
        ])
      [ 400; 1600; 6400 ]
  in
  print_table
    ~title:
      "|X| = 100 probes; hash semijoin rebuilds Y every run, the index is \
       built once"
    ~header:[ "|Y|"; "index cold ms"; "index warm ms"; "hash ms"; "hash/warm" ]
    rows;
  print_endline
    "shape check: the cold indexed run ≈ the hash run (same work, shifted); \
     warm runs skip the build, so the advantage grows with |Y| / |X|."

let all = all @ [ ("index-amortization", index_amortization) ]

(* ---------------------------------------------------------------- E11 -- *)

(* Ablation: compiled expression closures vs per-row AST interpretation. *)
let expr_compile () =
  let queries =
    [
      ( "arith-heavy filter",
        "SELECT x.id FROM X x, Y y WHERE x.b * 2 + 1 = y.b * 2 + 1 AND \
         x.a + y.a > 3" );
      ( "quantifier per row",
        "SELECT x.id FROM X x WHERE EXISTS v IN x.s (v * v > x.a + 1)" );
      ( "nest join + aggregate",
        "SELECT (i = x.id, n = COUNT(SELECT y.a FROM Y y WHERE y.b = x.b)) \
         FROM X x" );
    ]
  in
  Printf.printf "\n== E11: expression compilation ablation ==\n";
  let rows =
    List.concat_map
      (fun (name, query) ->
        List.map
          (fun n ->
            let catalog =
              Workload.Gen.xy
                { Workload.Gen.default_xy with
                  nx = n; ny = n; key_dom = max 1 (n / 4); seed = 83 }
            in
            let compiled =
              match
                Pipeline.compile_string Pipeline.Decorrelated catalog query
              with
              | Ok c -> c
              | Error msg -> failwith msg
            in
            let run_with flag =
              Engine.Compile.enabled := flag;
              Fun.protect
                ~finally:(fun () -> Engine.Compile.enabled := true)
                (fun () ->
                  let v = ref (Value.Set []) in
                  let ms =
                    measure_ms (fun () -> v := Pipeline.execute catalog compiled)
                  in
                  (ms, !v))
            in
            let on_ms, v1 = run_with true in
            let off_ms, v2 = run_with false in
            assert (Value.equal v1 v2);
            [ name; fint n; fms off_ms; fms on_ms; fratio (off_ms /. on_ms) ])
          [ 200; 800 ])
      queries
  in
  print_table ~title:"per-row AST interpretation vs compiled closures"
    ~header:[ "query"; "n"; "interpreted ms"; "compiled ms"; "speedup" ]
    rows;
  print_endline
    "shape check: results are identical (asserted); the win is modest \
     (1.0-1.4x) because row-environment manipulation, not AST dispatch, \
     dominates per-row cost at these sizes — and grows with expression \
     complexity (largest on the arith-heavy filter at n = 800)."

let all = all @ [ ("expr-compile", expr_compile) ]

(* ---------------------------------------------------------------- E12 -- *)

(* The §6 equivalences in anger: sinking a nest join below an expanding
   join groups |X| rows instead of |X ⋈ Y| rows. *)
let reorder_ablation () =
  let query =
    "SELECT (i = x.id, j = y.id, n = COUNT(SELECT w.id FROM Y w WHERE w.a = \
     x.a)) FROM X x, Y y WHERE x.b = y.b"
  in
  Printf.printf "\n== E12: §6 nest-join/join reordering ==\n";
  Printf.printf "query: %s\n" query;
  let rows =
    List.map
      (fun n ->
        let catalog =
          Workload.Gen.xy
            { Workload.Gen.default_xy with
              nx = n; ny = 4 * n; key_dom = max 1 (n / 8); dangling = 0.0;
              seed = 91 }
        in
        let run reorder =
          match
            Pipeline.compile_string ~reorder Pipeline.Decorrelated catalog
              query
          with
          | Error msg -> failwith msg
          | Ok compiled ->
            let v = ref (Value.Set []) in
            let ms =
              measure_ms (fun () -> v := Pipeline.execute catalog compiled)
            in
            (ms, !v)
        in
        let off_ms, v1 = run false in
        let on_ms, v2 = run true in
        assert (Value.equal v1 v2);
        [ fint n; fms off_ms; fms on_ms; fratio (off_ms /. on_ms) ])
      [ 50; 100; 200; 400 ]
  in
  print_table
    ~title:"|Y| = 4·|X|, fan-out ≈ 32: group before vs after the join"
    ~header:[ "|X|"; "no reorder ms"; "reorder ms"; "speedup" ]
    rows;
  print_endline
    "shape check: the win tracks the join's expansion factor — the sunk \
     nest join groups |X| rows instead of |X ⋈ Y| rows."

let all = all @ [ ("reorder", reorder_ablation) ]

(* ---------------------------------------------------------------- E13 -- *)

(* Application mix: realistic nested queries over an order-management
   schema, every strategy side by side. *)
let application_mix () =
  let queries =
    [
      ( "no orders (¬∃)",
        "SELECT c.name FROM CUSTOMERS c WHERE COUNT(SELECT o FROM ORDERS o \
         WHERE o.cust = c.id) = 0" );
      ( "all orders done (∀)",
        "SELECT c.name FROM CUSTOMERS c WHERE FORALL o IN (SELECT o FROM \
         ORDERS o WHERE o.cust = c.id) (o.status = \"done\")" );
      ( "ordered sku0 (∃ + set attr)",
        "SELECT c.name FROM CUSTOMERS c WHERE EXISTS o IN (SELECT o FROM \
         ORDERS o WHERE o.cust = c.id) (EXISTS i IN o.items (i.sku = \
         \"sku0\"))" );
      ( "order count (SELECT-nesting)",
        "SELECT (n = c.name, k = COUNT(SELECT o.id FROM ORDERS o WHERE \
         o.cust = c.id)) FROM CUSTOMERS c" );
      ( "open-order totals (nested UNNEST)",
        "SELECT (n = c.name, t = SUM(UNNEST(SELECT (SELECT i.qty * i.price \
         FROM o.items i) FROM ORDERS o WHERE o.cust = c.id AND o.status = \
         \"open\"))) FROM CUSTOMERS c" );
      ( "big spender per city (2 subqueries)",
        "SELECT c.name FROM CUSTOMERS c WHERE c.vip = true AND \
         COUNT(SELECT o FROM ORDERS o WHERE o.cust = c.id) > 0 AND c.id \
         NOT IN (SELECT o.cust FROM ORDERS o WHERE o.status = \"open\")" );
    ]
  in
  Printf.printf "\n== E13: application mix (shop schema, %d customers, %d orders) ==\n"
    400 1200;
  let catalog =
    Workload.Gen.shop
      { Workload.Gen.default_shop with ncustomers = 400; norders = 1200 }
  in
  let strategies =
    Pipeline.[ Naive; Kim_baseline; Ganski_wong; Muralikrishna; Decorrelated ]
  in
  let rows =
    List.map
      (fun (name, query) ->
        let reference, _, _ = run_ms Pipeline.Interp catalog query in
        ignore reference;
        let _, ref_v, _ = run_ms Pipeline.Interp catalog query in
        let cells =
          List.map
            (fun strategy ->
              let ms, v, _ = run_ms strategy catalog query in
              let tag =
                if Value.equal v ref_v then "" else "(WRONG) "
              in
              Printf.sprintf "%s%s" tag (fms ms))
            strategies
        in
        name :: cells)
      queries
  in
  print_table ~title:"milliseconds per strategy ((WRONG) marks bug baselines)"
    ~header:
      ("query"
      :: List.map Pipeline.strategy_name strategies)
    rows;
  print_endline
    "shape check: the decorrelated strategy is the fastest correct plan on \
     every query; kim is wrong wherever dangling customers qualify."

let all = all @ [ ("application-mix", application_mix) ]
