(* Benchmark driver.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe table2 bugs  # selected experiments
     dune exec bench/main.exe headline     # bechamel micro-suite only

   The headline suite holds one [Bechamel.Test.make] per experiment id
   (OLS-fitted ns/run at a fixed medium size); the experiment functions in
   [Experiments] print the per-table parameter sweeps. *)

module Pipeline = Core.Pipeline

let fixed_catalog =
  lazy
    (Workload.Gen.xy
       { Workload.Gen.default_xy with
         nx = 200; ny = 200; key_dom = 50; dangling = 0.1; seed = 77 })

let fixed_xyz =
  lazy
    (Workload.Gen.xyz
       {
         base =
           { Workload.Gen.default_xy with
             nx = 80; ny = 80; key_dom = 20; val_dom = 8; seed = 77 };
         nz = 80;
         z_key_dom = 20;
       })

let compiled ?options strategy catalog query =
  match Pipeline.compile_string ?options strategy catalog query with
  | Ok c -> c
  | Error msg -> failwith msg

let headline () =
  let open Bechamel in
  let xy = Lazy.force fixed_catalog in
  let xyz = Lazy.force fixed_xyz in
  let exec catalog c () = ignore (Pipeline.execute catalog c) in
  let t name f = Test.make ~name (Staged.stage f) in
  let semijoin_q =
    "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)"
  in
  let nest_q =
    "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x"
  in
  let count_q =
    "SELECT x.id FROM X x WHERE COUNT(SELECT y.id FROM Y y WHERE x.b = y.b) \
     = 0"
  in
  let s8_q =
    "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = \
     y.b AND y.c SUBSETEQ (SELECT z.c FROM Z z WHERE y.d = z.d))"
  in
  let unnest_q =
    "UNNEST(SELECT (SELECT (i = x.id, a = y.a) FROM Y y WHERE x.b = y.b) \
     FROM X x)"
  in
  let memo_opts =
    { Core.Planner.default_options with Core.Planner.memo_applies = true }
  in
  let table1_cat = Workload.Gen.table1 () in
  let table1_compiled =
    compiled Pipeline.Decorrelated table1_cat
      "SELECT (e = x.e, s = (SELECT y FROM Y y WHERE y.b = x.d)) FROM X x"
  in
  let tests =
    [
      t "T1-nestjoin-table1" (exec table1_cat table1_compiled);
      t "T2-classify-catalog" (fun () ->
          List.iter
            (fun row ->
              ignore
                (Core.Classify.classify ~z:"z" (Core.Table2.predicate row)))
            Core.Table2.rows);
      t "E1-flatten-semijoin"
        (exec xy (compiled Pipeline.Decorrelated xy semijoin_q));
      t "E2-hash-nestjoin" (exec xy (compiled Pipeline.Decorrelated xy nest_q));
      t "E3-section8-decorrelated"
        (exec xyz (compiled Pipeline.Decorrelated xyz s8_q));
      t "E4-ganski-wong-count"
        (exec xy (compiled Pipeline.Ganski_wong xy count_q));
      t "E5-nestjoin-outerjoin-encoding"
        (exec xy (compiled Pipeline.Decorrelated_outerjoin xy nest_q));
      t "E6-memoized-apply"
        (exec xy (compiled ~options:memo_opts Pipeline.Naive xy count_q));
      t "E7-unnest-collapse"
        (exec xy (compiled Pipeline.Decorrelated xy unnest_q));
      t "E8-multi-subquery"
        (exec xy
           (compiled Pipeline.Decorrelated xy
              "SELECT x.id FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE \
               x.b = y.b) AND x.a NOT IN (SELECT w.a FROM Y w WHERE w.b = \
               x.b + 1)"));
      t "E9-no-rewrite"
        (exec xy
           (match
              Pipeline.compile_string ~rewrite:false Pipeline.Decorrelated xy
                semijoin_q
            with
           | Ok c -> c
           | Error msg -> failwith msg));
      t "E10-index-semijoin"
        (exec xy
           (compiled Pipeline.Decorrelated xy
              "SELECT x.id FROM X x WHERE EXISTS v IN (SELECT y.a FROM Y y \
               WHERE x.b = y.b) (v > x.a)"));
      t "E11-interpreted"
        (fun () ->
          Engine.Compile.enabled := false;
          Fun.protect
            ~finally:(fun () -> Engine.Compile.enabled := true)
            (exec xy (compiled Pipeline.Decorrelated xy nest_q)));
      t "E12-reordered-nestjoin"
        (exec xy
           (compiled Pipeline.Decorrelated xy
              "SELECT (i = x.id, j = y.id, n = COUNT(SELECT w.id FROM Y w \
               WHERE w.a = x.a)) FROM X x, Y y WHERE x.b = y.b"));
      t "E13-shop-mix"
        (let shop =
           Workload.Gen.shop
             { Workload.Gen.default_shop with ncustomers = 80; norders = 240 }
         in
         exec shop
           (compiled Pipeline.Decorrelated shop
              "SELECT c.name FROM CUSTOMERS c WHERE FORALL o IN (SELECT o \
               FROM ORDERS o WHERE o.cust = c.id) (o.status = \"done\")"));
    ]
  in
  let rows = Harness.bechamel_table tests in
  Harness.print_table ~title:"headline micro-benchmarks (OLS ns/run)"
    ~header:[ "experiment"; "ns/run" ]
    (List.map (fun (name, ns) -> [ name; Printf.sprintf "%.0f" ns ]) rows)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let known = List.map fst Experiments.all in
  match args with
  | [] ->
    headline ();
    List.iter (fun (_, f) -> f ()) Experiments.all
  | [ "headline" ] -> headline ()
  | names ->
    List.iter
      (fun name ->
        if name = "headline" then headline ()
        else
          match List.assoc_opt name Experiments.all with
          | Some f -> f ()
          | None ->
            Printf.eprintf "unknown experiment %s (known: headline, %s)\n"
              name
              (String.concat ", " known);
            exit 1)
      names
