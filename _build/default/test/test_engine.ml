(* Physical operator tests: every implementation must agree with the
   logical oracle [Algebra.Sem] on randomized catalogs, including dangling
   rows, duplicate keys and empty operands. *)

open Helpers
module Value = Cobj.Value
module Env = Cobj.Env
module Plan = Algebra.Plan
module P = Engine.Physical
module Exec = Engine.Exec
module Sem = Algebra.Sem

let canonical rows = List.sort_uniq Env.compare rows

let check_against_oracle name catalog logical physical =
  let expected = Sem.rows catalog Env.empty logical in
  let got = canonical (Exec.rows catalog Env.empty physical) in
  let pp = Fmt.Dump.list Env.pp in
  if not (List.length expected = List.length got
          && List.for_all2 Env.equal expected got) then
    Alcotest.failf "%s:@.oracle = %a@.engine = %a" name pp expected pp got

let catalogs =
  (* several shapes: dense keys, many danglings, empty Y, tiny X *)
  [
    ("default", Workload.Gen.xy Workload.Gen.default_xy);
    ( "dense keys",
      Workload.Gen.xy
        { Workload.Gen.default_xy with key_dom = 3; nx = 40; ny = 40; seed = 1 } );
    ( "all dangling",
      Workload.Gen.xy
        { Workload.Gen.default_xy with dangling = 1.0; nx = 20; ny = 20; seed = 2 } );
    ( "empty inner",
      Workload.Gen.xy { Workload.Gen.default_xy with ny = 0; nx = 15; seed = 3 } );
    ( "empty outer",
      Workload.Gen.xy { Workload.Gen.default_xy with nx = 0; ny = 15; seed = 4 } );
    ( "skewed singleton",
      Workload.Gen.xy
        { Workload.Gen.default_xy with key_dom = 1; nx = 12; ny = 12; seed = 5 } );
  ]

let x = Plan.Table { name = "X"; var = "x" }
let y = Plan.Table { name = "Y"; var = "y" }
let sx = P.Scan { table = "X"; var = "x" }
let sy = P.Scan { table = "Y"; var = "y" }
let pred = parse "x.b = y.b"
let lkey = parse "x.b"
let rkey = parse "y.b"
let func = parse "y.a"

let on_all_catalogs name mk_logical mk_physicals () =
  List.iter
    (fun (cname, catalog) ->
      List.iter
        (fun (iname, physical) ->
          check_against_oracle
            (Printf.sprintf "%s/%s/%s" name cname iname)
            catalog mk_logical physical)
        mk_physicals)
    catalogs

let join_test =
  on_all_catalogs "join"
    (Plan.Join { pred; left = x; right = y })
    [
      ("nl", P.Nl_join { pred; left = sx; right = sy });
      ("hash", P.Hash_join { lkey; rkey; residual = None; left = sx; right = sy });
      ("merge", P.Merge_join { lkey; rkey; residual = None; left = sx; right = sy });
    ]

let join_residual_test =
  let pred = parse "x.b = y.b AND x.a < y.a" in
  let residual = Some (parse "x.a < y.a") in
  on_all_catalogs "join+residual"
    (Plan.Join { pred; left = x; right = y })
    [
      ("nl", P.Nl_join { pred; left = sx; right = sy });
      ("hash", P.Hash_join { lkey; rkey; residual; left = sx; right = sy });
      ("merge", P.Merge_join { lkey; rkey; residual; left = sx; right = sy });
    ]

let semijoin_test =
  on_all_catalogs "semijoin"
    (Plan.Semijoin { pred; left = x; right = y })
    [
      ("nl", P.Nl_semijoin { pred; anti = false; left = sx; right = sy });
      ( "hash",
        P.Hash_semijoin
          { lkey; rkey; residual = None; anti = false; left = sx; right = sy } );
      ( "merge",
        P.Merge_semijoin
          { lkey; rkey; residual = None; anti = false; left = sx; right = sy } );
    ]

let antijoin_test =
  on_all_catalogs "antijoin"
    (Plan.Antijoin { pred; left = x; right = y })
    [
      ("nl", P.Nl_semijoin { pred; anti = true; left = sx; right = sy });
      ( "hash",
        P.Hash_semijoin
          { lkey; rkey; residual = None; anti = true; left = sx; right = sy } );
      ( "merge",
        P.Merge_semijoin
          { lkey; rkey; residual = None; anti = true; left = sx; right = sy } );
    ]

let semijoin_residual_test =
  let pred = parse "x.b = y.b AND x.a < y.a" in
  let residual = Some (parse "x.a < y.a") in
  on_all_catalogs "semijoin+residual"
    (Plan.Semijoin { pred; left = x; right = y })
    [
      ("nl", P.Nl_semijoin { pred; anti = false; left = sx; right = sy });
      ( "hash",
        P.Hash_semijoin
          { lkey; rkey; residual; anti = false; left = sx; right = sy } );
      ( "merge",
        P.Merge_semijoin
          { lkey; rkey; residual; anti = false; left = sx; right = sy } );
    ]

let antijoin_residual_test =
  let pred = parse "x.b = y.b AND x.a < y.a" in
  let residual = Some (parse "x.a < y.a") in
  on_all_catalogs "antijoin+residual"
    (Plan.Antijoin { pred; left = x; right = y })
    [
      ("nl", P.Nl_semijoin { pred; anti = true; left = sx; right = sy });
      ( "hash",
        P.Hash_semijoin
          { lkey; rkey; residual; anti = true; left = sx; right = sy } );
      ( "merge",
        P.Merge_semijoin
          { lkey; rkey; residual; anti = true; left = sx; right = sy } );
    ]

let outerjoin_test =
  on_all_catalogs "outerjoin"
    (Plan.Outerjoin { pred; left = x; right = y })
    [
      ("nl", P.Nl_outerjoin { pred; left = sx; right = sy });
      ( "hash",
        P.Hash_outerjoin { lkey; rkey; residual = None; left = sx; right = sy } );
      ( "merge",
        P.Merge_outerjoin
          { lkey; rkey; residual = None; left = sx; right = sy } );
    ]

let nestjoin_test =
  on_all_catalogs "nestjoin"
    (Plan.Nestjoin { pred; func; label = "zs"; left = x; right = y })
    [
      ("nl", P.Nl_nestjoin { pred; func; label = "zs"; left = sx; right = sy });
      ( "hash",
        P.Hash_nestjoin
          { lkey; rkey; residual = None; func; label = "zs"; left = sx;
            right = sy } );
      ( "merge",
        P.Merge_nestjoin
          { lkey; rkey; residual = None; func; label = "zs"; left = sx;
            right = sy } );
    ]

let nestjoin_residual_test =
  let pred = parse "x.b = y.b AND y.a > 2" in
  let residual = Some (parse "y.a > 2") in
  on_all_catalogs "nestjoin+residual"
    (Plan.Nestjoin { pred; func; label = "zs"; left = x; right = y })
    [
      ("nl", P.Nl_nestjoin { pred; func; label = "zs"; left = sx; right = sy });
      ( "hash",
        P.Hash_nestjoin
          { lkey; rkey; residual; func; label = "zs"; left = sx; right = sy } );
      ( "merge",
        P.Merge_nestjoin
          { lkey; rkey; residual; func; label = "zs"; left = sx; right = sy } );
    ]

(* Left-build hash nest join: legal when the right key is unique. Join Y
   (non-unique b) against X on the unique X id to exercise it. *)
let test_nestjoin_left_build_legal () =
  List.iter
    (fun (cname, catalog) ->
      let logical =
        Plan.Nestjoin
          { pred = parse "y.b = x.id"; func = parse "x.a"; label = "zs";
            left = y; right = x }
      in
      let physical =
        P.Hash_nestjoin_left
          { lkey = parse "y.b"; rkey = parse "x.id"; residual = None;
            func = parse "x.a"; label = "zs"; left = sy; right = sx }
      in
      check_against_oracle ("left-build legal/" ^ cname) catalog logical
        physical)
    catalogs

(* With a non-unique right key the streaming left-build variant produces
   un-grouped output — the §6 restriction. Witness the disagreement. *)
let test_nestjoin_left_build_illegal () =
  let catalog =
    Workload.Gen.xy
      { Workload.Gen.default_xy with key_dom = 3; nx = 10; ny = 30; seed = 11 }
  in
  let logical = Plan.Nestjoin { pred; func; label = "zs"; left = x; right = y } in
  let physical =
    P.Hash_nestjoin_left
      { lkey; rkey; residual = None; func; label = "zs"; left = sx; right = sy }
  in
  let expected = Sem.rows catalog Env.empty logical in
  let got = canonical (Exec.rows catalog Env.empty physical) in
  Alcotest.check Alcotest.bool
    "streaming left-build diverges when rkey is not a key" false
    (List.length expected = List.length got
     && List.for_all2 Env.equal expected got)

let test_apply_and_memo () =
  List.iter
    (fun (cname, catalog) ->
      let sub =
        { Plan.plan = Plan.Select { pred = parse "y.b = x.b"; input = y };
          result = parse "y.a" }
      in
      let logical = Plan.Apply { var = "z"; subquery = sub; input = x } in
      let psub =
        { P.plan = P.Filter { pred = parse "y.b = x.b"; input = sy };
          result = parse "y.a" }
      in
      List.iter
        (fun (iname, memo) ->
          check_against_oracle
            (Printf.sprintf "apply/%s/%s" cname iname)
            catalog logical
            (P.Apply_op { var = "z"; subquery = psub; memo; input = sx }))
        [ ("plain", false); ("memo", true) ])
    catalogs

let test_memo_hits_counted () =
  let catalog =
    Workload.Gen.xy
      { Workload.Gen.default_xy with key_dom = 4; nx = 50; ny = 20; seed = 21 }
  in
  let psub =
    { P.plan = P.Filter { pred = parse "y.b = x.b"; input = sy };
      result = parse "y.a" }
  in
  let stats = Engine.Stats.create () in
  ignore
    (Exec.rows ~stats catalog Env.empty
       (P.Apply_op { var = "z"; subquery = psub; memo = true; input = sx }));
  Alcotest.check Alcotest.bool "few evaluations" true
    (stats.Engine.Stats.applies <= 8);
  Alcotest.check Alcotest.bool "many hits" true
    (stats.Engine.Stats.apply_hits >= 40)

let test_unnest_nest_extend_project () =
  List.iter
    (fun (cname, catalog) ->
      check_against_oracle ("unnest/" ^ cname) catalog
        (Plan.Unnest { expr = parse "x.s"; var = "w"; input = x })
        (P.Unnest_op { expr = parse "x.s"; var = "w"; input = sx });
      check_against_oracle ("extend/" ^ cname) catalog
        (Plan.Extend { var = "k"; expr = parse "x.a + 1"; input = x })
        (P.Extend_op { var = "k"; expr = parse "x.a + 1"; input = sx });
      check_against_oracle ("project/" ^ cname) catalog
        (Plan.Project
           { vars = [ "k" ];
             input = Plan.Extend { var = "k"; expr = parse "x.b"; input = x } })
        (P.Project_op
           { vars = [ "k" ];
             input = P.Extend_op { var = "k"; expr = parse "x.b"; input = sx } });
      check_against_oracle ("nest/" ^ cname) catalog
        (Plan.Nest
           { by = [ "x" ]; label = "g"; func = parse "y.a"; nulls = [];
             input = Plan.Join { pred; left = x; right = y } })
        (P.Nest_op
           { by = [ "x" ]; label = "g"; func = parse "y.a"; nulls = [];
             input = P.Nl_join { pred; left = sx; right = sy } }))
    catalogs

let test_stats_counters () =
  let catalog = Workload.Gen.xy Workload.Gen.default_xy in
  let stats = Engine.Stats.create () in
  ignore
    (Exec.rows ~stats catalog Env.empty
       (P.Hash_join { lkey; rkey; residual = None; left = sx; right = sy }));
  Alcotest.check Alcotest.bool "builds counted" true
    (stats.Engine.Stats.hash_builds = 100);
  Alcotest.check Alcotest.bool "probes counted" true
    (stats.Engine.Stats.hash_probes = 100);
  Engine.Stats.reset stats;
  Alcotest.check Alcotest.int "reset" 0 (Engine.Stats.total_work stats)

let suite =
  [
    Alcotest.test_case "join impls vs oracle" `Quick join_test;
    Alcotest.test_case "join with residual" `Quick join_residual_test;
    Alcotest.test_case "semijoin impls" `Quick semijoin_test;
    Alcotest.test_case "antijoin impls" `Quick antijoin_test;
    Alcotest.test_case "semijoin with residual" `Quick semijoin_residual_test;
    Alcotest.test_case "antijoin with residual" `Quick antijoin_residual_test;
    Alcotest.test_case "outerjoin impls" `Quick outerjoin_test;
    Alcotest.test_case "nestjoin impls" `Quick nestjoin_test;
    Alcotest.test_case "nestjoin with residual" `Quick nestjoin_residual_test;
    Alcotest.test_case "left-build nestjoin (legal)" `Quick
      test_nestjoin_left_build_legal;
    Alcotest.test_case "left-build nestjoin (illegal diverges)" `Quick
      test_nestjoin_left_build_illegal;
    Alcotest.test_case "apply plain and memoized" `Quick test_apply_and_memo;
    Alcotest.test_case "memoization hits counted" `Quick test_memo_hits_counted;
    Alcotest.test_case "unnest/nest/extend/project" `Quick
      test_unnest_nest_extend_project;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
  ]

(* Join keyed on a complex (set-valued) attribute: exercises Value.hash and
   Value.compare as hash/sort keys. *)
let test_set_valued_join_key () =
  List.iter
    (fun (cname, catalog) ->
      (* self-join of X on the set attribute s *)
      let x2 = Plan.Table { name = "X"; var = "w" } in
      let sx2 = P.Scan { table = "X"; var = "w" } in
      let pred = parse "x.s = w.s" in
      let logical = Plan.Join { pred; left = x; right = x2 } in
      List.iter
        (fun (iname, physical) ->
          check_against_oracle
            (Printf.sprintf "set-key/%s/%s" cname iname)
            catalog logical physical)
        [
          ( "hash",
            P.Hash_join
              { lkey = parse "x.s"; rkey = parse "w.s"; residual = None;
                left = sx; right = sx2 } );
          ( "merge",
            P.Merge_join
              { lkey = parse "x.s"; rkey = parse "w.s"; residual = None;
                left = sx; right = sx2 } );
        ])
    catalogs

let suite =
  suite
  @ [
      Alcotest.test_case "set-valued join keys" `Quick
        test_set_valued_join_key;
    ]

(* Random operator trees: the planner's output for a random logical plan
   must agree with the oracle — this exercises operator compositions the
   fixed-shape tests never build (nest joins over semijoins over unions,
   projections between joins, …). *)
let plan_gen =
  let open QCheck2.Gen in
  let xv = Plan.Table { name = "X"; var = "x" } in
  let yv = Plan.Table { name = "Y"; var = "y" } in
  let preds_xy =
    oneofl [ "x.b = y.b"; "x.b = y.b AND x.a < y.a"; "x.a > y.a" ]
  in
  let sel_x = oneofl [ "x.a > 1"; "x.b MOD 2 = 0"; "COUNT(x.s) > 0" ] in
  (* build a plan over X (always binding x), optionally composed with Y *)
  sized @@ fix (fun self n ->
      if n <= 1 then return xv
      else
        let sub = self (n / 2) in
        oneof
          [
            return xv;
            map2
              (fun p input -> Plan.Select { pred = parse p; input })
              sel_x sub;
            map2
              (fun p left -> Plan.Semijoin { pred = parse p; left; right = yv })
              preds_xy sub;
            map2
              (fun p left -> Plan.Antijoin { pred = parse p; left; right = yv })
              preds_xy sub;
            map2
              (fun p left ->
                (* label g is then dead upstream unless a Select uses it;
                   add one sometimes *)
                Plan.Select
                  { pred = parse "COUNT(g) >= 0";
                    input =
                      Plan.Nestjoin
                        { pred = parse p; func = parse "y.a"; label = "g";
                          left; right = yv } })
              preds_xy sub;
            map2
              (fun a b -> Plan.Union { left = a; right = b })
              sub (self (n / 2));
            map (fun input -> Plan.Project { vars = [ "x" ]; input }) sub;
          ])

let prop_random_plans =
  Helpers.qcheck ~count:120 "random plans: planner output = oracle"
    QCheck2.Gen.(pair plan_gen (int_range 0 5_000))
    (fun (plan, seed) ->
      let catalog =
        Workload.Gen.xy
          { Workload.Gen.default_xy with
            nx = 12; ny = 12; key_dom = 4; seed }
      in
      (* only well-formed plans qualify (unions of differing shapes are
         filtered out by the generator construction: all branches bind x
         after the Project normalization below) *)
      let plan = Plan.Project { vars = [ "x" ]; input = plan } in
      match Plan.well_formed plan with
      | Error _ -> true
      | Ok () ->
        let expected = Sem.rows catalog Env.empty plan in
        let physical = Core.Planner.plan catalog plan in
        let got = canonical (Exec.rows catalog Env.empty physical) in
        List.length expected = List.length got
        && List.for_all2 Env.equal expected got)

let suite = suite @ [ prop_random_plans ]
