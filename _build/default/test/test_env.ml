(* Environment (row representation) tests. *)

open Helpers
module Env = Cobj.Env
module Value = Cobj.Value

let test_bind_shadow () =
  let e = Env.bind "x" (vi 1) Env.empty in
  let e = Env.bind "x" (vi 2) e in
  Alcotest.check value "latest binding wins" (vi 2) (Env.find "x" e);
  Alcotest.check Alcotest.int "no duplicate entries" 1
    (List.length (Env.bindings e))

let test_find_unbound () =
  Alcotest.check_raises "unbound" (Value.Type_error "unbound variable q")
    (fun () -> ignore (Env.find "q" Env.empty))

let test_append_shadowing () =
  let a = Env.bind "x" (vi 1) (Env.bind "y" (vi 2) Env.empty) in
  let b = Env.bind "x" (vi 9) (Env.bind "z" (vi 3) Env.empty) in
  let m = Env.append a b in
  Alcotest.check value "a shadows b" (vi 1) (Env.find "x" m);
  Alcotest.check value "b kept" (vi 3) (Env.find "z" m);
  Alcotest.check value "a kept" (vi 2) (Env.find "y" m)

let test_project_and_unbind () =
  let e =
    Env.of_bindings [ ("x", vi 1); ("y", vi 2); ("z", vi 3) ]
  in
  let p = Env.project [ "z"; "x" ] e in
  Alcotest.(check (list string)) "projected vars" [ "z"; "x" ] (Env.vars p);
  let u = Env.unbind "y" e in
  Alcotest.check Alcotest.bool "y gone" false (Env.mem "y" u);
  Alcotest.check Alcotest.bool "x kept" true (Env.mem "x" u)

let test_to_value_and_compare () =
  let a = Env.of_bindings [ ("x", vi 1); ("y", vi 2) ] in
  let b = Env.of_bindings [ ("y", vi 2); ("x", vi 1) ] in
  Alcotest.check Alcotest.bool "binding order irrelevant for equality" true
    (Env.equal a b);
  Alcotest.check value "as tuple"
    (tup [ ("x", vi 1); ("y", vi 2) ])
    (Env.to_value a)

let suite =
  [
    Alcotest.test_case "bind shadows" `Quick test_bind_shadow;
    Alcotest.test_case "find unbound" `Quick test_find_unbound;
    Alcotest.test_case "append shadowing" `Quick test_append_shadowing;
    Alcotest.test_case "project and unbind" `Quick test_project_and_unbind;
    Alcotest.test_case "to_value / compare" `Quick test_to_value_and_compare;
  ]
