(* Simplifier tests: identities fire, folding is total-only, semantics are
   preserved under both the value and the truth reading. *)

open Helpers
module Ast = Lang.Ast
module Value = Cobj.Value

let cat = xy_catalog ()

let simp src = Core.Simplify.expr cat (parse src)

let simplifies_to name src expected () =
  Alcotest.check expr name (parse expected) (simp src)

let stays name src () =
  Alcotest.check expr name (parse src) (simp src)

let unit_cases =
  [
    ("constant arithmetic", "1 + 2 * 3", "7");
    ("constant comparison", "COUNT({1, 2}) = 2", "true");
    ("count of empty folds", "COUNT({}) = 0", "true");
    ("true AND p", "true AND x.a > 1", "x.a > 1");
    ("p AND true", "x.a > 1 AND true", "x.a > 1");
    ("false AND anything", "false AND MIN({}) > 0", "false");
    ("false OR p", "false OR x.a > 1", "x.a > 1");
    ("double negation", "NOT NOT (x.a > 1)", "x.a > 1");
    ("union with empty", "x.s UNION {}", "x.s");
    ("diff with empty", "x.s EXCEPT {}", "x.s");
    ("member of empty", "x.a IN {}", "false");
    ("empty subseteq", "{} SUBSETEQ x.s", "true");
    ("exists over empty", "EXISTS v IN {} (v = x.a)", "false");
    ("forall over empty", "FORALL v IN {} (v = x.a)", "true");
    ("var self equality", "x = x", "true");

    ("closed quantifier folds", "EXISTS v IN {1, 2} (v = 2)", "true");
  ]

let test_nested_folding () =
  (* the folded literal becomes a constant set value *)
  Alcotest.check expr "nested folding"
    Ast.(Binop (Mem, path "x" [ "a" ], Const (Value.set [ vi 2 ])))
    (simp "x.a IN {1 + 1, 4 / 2}")

let unsafe_cases =
  [
    (* dropping these operands would hide a raise *)
    ("AND-false keeps partial lhs", "MIN(x.s) > 0 AND false");
    ("OR-true keeps partial lhs", "MIN(x.s) > 0 OR true");
    ("inter-empty keeps partial lhs", "{MIN(x.s)} INTERSECT {}");
    ("member-of-empty keeps partial elem", "MIN(x.s) IN {}");
    (* MIN of empty must not fold to a value *)
    ("undefined aggregate not folded", "MIN({}) > 0");
    ("division by zero not folded", "1 / 0 = 1");
    (* table contents are not inlined *)
    ("table reference not folded", "COUNT(X) = 5");
  ]

let test_unsafe () =
  (* sub-literals may normalize (SetE [] becomes a constant ∅), but the
     raising operand — and hence the top-level operator — must survive *)
  let top = function
    | Ast.Binop (op, _, _) -> `Binop op
    | Ast.Unop (op, _) -> `Unop op
    | e -> `Other (Lang.Pretty.to_string e)
  in
  List.iter
    (fun (name, src) ->
      let e = Lang.Ast.resolve_tables cat (parse src) in
      let simplified = Core.Simplify.expr cat e in
      if top simplified <> top e then
        Alcotest.failf "%s: %s was reduced to %s" name
          (Lang.Pretty.to_string e)
          (Lang.Pretty.to_string simplified))
    unsafe_cases

(* semantic preservation on random expressions, in both readings *)
(* bind every identifier the generator can produce: the simplifier assumes
   variables are bound (plans are well-formed); an unbound variable would
   make discarded-operand identities observable *)
let env =
  Cobj.Env.of_bindings
    [
      ("x", tup [ ("a", vi 3); ("b", vi 1); ("s", vset [ vi 1; vi 2 ]) ]);
      ("y", vset [ vi 1 ]);
      ("zz", vi 5);
      ("Tbl", tup [ ("a", vi 0); ("b", vi 1); ("cc", vs "c") ]);
    ]

let prop_preserves_semantics =
  qcheck ~count:400 "simplification preserves semantics"
    Test_parser.expr_gen
    (fun e0 ->
      let e = Ast.resolve_tables cat e0 in
      let simplified = Core.Simplify.expr cat e in
      let outcome f =
        match f () with
        | v -> `Ok v
        | exception Lang.Interp.Undefined _ -> `Undefined
        | exception Value.Type_error _ -> `Type_error
      in
      let a = outcome (fun () -> Lang.Interp.eval cat env e) in
      let b = outcome (fun () -> Lang.Interp.eval cat env simplified) in
      (match a, b with
      | `Ok va, `Ok vb -> Value.equal va vb
      | `Undefined, `Undefined | `Type_error, `Type_error -> true
      | `Type_error, _ ->
        (* ill-typed inputs are outside the simplifier's contract (the
           pipeline only simplifies type-checked plans) *)
        true
      | _, _ -> false)
      (* and under the partial truth reading (Type_error = out of contract) *)
      &&
      let truth_outcome e1 =
        match Lang.Interp.truth cat env e1 with
        | b -> `Bool b
        | exception Value.Type_error _ -> `Type_error
      in
      match truth_outcome e, truth_outcome simplified with
      | `Bool a, `Bool b -> Bool.equal a b
      | `Type_error, _ -> true
      | _, `Type_error -> false)

let test_plan_level () =
  (* a decorrelated plan whose residual predicate folds away entirely *)
  let src =
    "SELECT x.id FROM X x WHERE true AND x.a IN (SELECT y.a FROM Y y WHERE \
     x.b = y.b) AND COUNT({1}) = 1"
  in
  let catalog = Workload.Gen.xy Workload.Gen.default_xy in
  match Core.Pipeline.compile_string Core.Pipeline.Decorrelated catalog src with
  | Error msg -> Alcotest.fail msg
  | Ok { logical = Some q; _ } ->
    let selects =
      Algebra.Plan.fold
        (fun n -> function Algebra.Plan.Select _ -> n + 1 | _ -> n)
        0 q.Algebra.Plan.plan
    in
    Alcotest.check Alcotest.int "foldable conjuncts eliminated" 0 selects
  | Ok { logical = None; _ } -> Alcotest.fail "no logical plan"

let suite =
  List.map
    (fun (name, src, expected) ->
      Alcotest.test_case name `Quick (simplifies_to name src expected))
    unit_cases
  @ [
      Alcotest.test_case "nested folding" `Quick test_nested_folding;
      Alcotest.test_case "unsafe foldings are refused" `Quick test_unsafe;
      prop_preserves_semantics;
      Alcotest.test_case "plan-level simplification" `Quick test_plan_level;
      Alcotest.test_case "non-foldable predicate unchanged" `Quick
        (stays "residual" "x.a < MAX(x.s)");
    ]
