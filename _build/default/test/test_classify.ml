(* Classifier tests — Theorem 1 / Table 2.

   Two layers:
   1. the verdict for every Table 2 row matches the paper's column;
   2. soundness: whenever the classifier claims [P ≡ (¬)∃v ∈ z (P')], the
      two predicates agree on randomized instances, with special attention
      to z = ∅ (the dangling case that breaks Kim-style plans). *)

open Helpers
module Ast = Lang.Ast
module Value = Cobj.Value

let cat = Cobj.Catalog.empty

let test_table2_verdicts () =
  List.iter
    (fun row ->
      let verdict = Core.Classify.classify ~z:"z" (Core.Table2.predicate row) in
      let got = Core.Table2.kind verdict in
      if got <> row.Core.Table2.expected then
        Alcotest.failf "%s (%s): expected %s, got %s (%a)"
          row.Core.Table2.name row.Core.Table2.source
          (Core.Table2.expected_to_string row.Core.Table2.expected)
          (Core.Table2.expected_to_string got)
          Core.Classify.pp_verdict verdict)
    Core.Table2.rows

let test_rewritten_body_z_free () =
  List.iter
    (fun row ->
      match Core.Classify.classify ~z:"z" (Core.Table2.predicate row) with
      | Core.Classify.Exists { body; _ } | Core.Classify.Not_exists { body; _ }
        ->
        Alcotest.check Alcotest.bool
          (row.Core.Table2.name ^ ": no residual z")
          false (Ast.occurs_free "z" body)
      | Core.Classify.Needs_grouping _ -> ())
    Core.Table2.rows

let test_z_not_free () =
  match Core.Classify.classify ~z:"z" (parse "x.a = 1") with
  | Core.Classify.Needs_grouping _ -> ()
  | v -> Alcotest.failf "expected needs-grouping, got %a"
           Core.Classify.pp_verdict v

let test_fresh_variable_no_capture () =
  (* the predicate already uses [v]: the classifier must pick another *)
  match Core.Classify.classify ~z:"z" (parse "EXISTS v IN x.a (v IN z)") with
  | Core.Classify.Exists { var; _ } ->
    Alcotest.check Alcotest.bool "fresh variable" true (var <> "v")
  | v -> Alcotest.failf "unexpected %a" Core.Classify.pp_verdict v

(* --- randomized semantic soundness -------------------------------------- *)

(* Environments: x = (a : P INT, b : INT), z : P INT, over a small domain so
   collisions (memberships, subset relations) actually happen. *)
let env_gen =
  let open QCheck2.Gen in
  let small = int_range 0 5 in
  let small_set = list_size (int_range 0 4) small in
  map
    (fun (a, b, z) ->
      Cobj.Env.of_bindings
        [
          ( "x",
            Value.tuple
              [
                ("a", Value.set (List.map (fun i -> Value.Int i) a));
                ("b", Value.Int b);
              ] );
          ("z", Value.set (List.map (fun i -> Value.Int i) z));
        ])
    (triple small_set small small_set)

let forced_empty_z env = Cobj.Env.bind "z" (Value.Set []) env

let soundness_test row =
  let p = Core.Table2.predicate row in
  match Core.Classify.classify ~z:"z" p with
  | Core.Classify.Needs_grouping _ ->
    (* nothing to verify; covered by the verdict test *)
    []
  | verdict ->
    let rewritten = Option.get (Core.Classify.to_expr ~z:"z" verdict) in
    [
      qcheck ~count:300
        (Printf.sprintf "sound: %s" row.Core.Table2.source)
        env_gen
        (fun env ->
          let check e = Lang.Interp.truth cat e p in
          let check' e = Lang.Interp.truth cat e rewritten in
          check env = check' env
          && check (forced_empty_z env) = check' (forced_empty_z env));
    ]

let soundness_suite = List.concat_map soundness_test Core.Table2.rows

(* Completeness spot-check: for a few rows the paper marks as grouping,
   confirm the obvious ∃-rewrite would be WRONG (so grouping is not just a
   classifier weakness). E.g. x.a ⊆ z is not ∃v ∈ z (x.a ⊆ {v}) etc.; the
   canonical witness is z = ∅ with a true predicate. *)
let test_grouping_rows_really_group () =
  let env0 =
    Cobj.Env.of_bindings
      [
        ( "x",
          Value.tuple [ ("a", Value.Set []); ("b", Value.Int 0) ] );
        ("z", Value.Set []);
      ]
  in
  (* On z = ∅: any ∃-form is false and any ¬∃-form is true; a predicate
     whose truth on z = ∅ depends on x cannot be either. *)
  let env1 =
    Cobj.Env.of_bindings
      [
        ( "x",
          Value.tuple
            [ ("a", Value.Set [ Value.Int 1 ]); ("b", Value.Int 1) ] );
        ("z", Value.Set []);
      ]
  in
  List.iter
    (fun src ->
      let p = parse src in
      let t0 = Lang.Interp.truth cat env0 p in
      let t1 = Lang.Interp.truth cat env1 p in
      Alcotest.check Alcotest.bool
        (src ^ ": truth on empty z depends on x — unrewritable")
        true (t0 <> t1))
    [ "x.a SUBSETEQ z"; "x.a = z"; "x.b = COUNT(z)" ]

let suite =
  [
    Alcotest.test_case "Table 2 verdicts" `Quick test_table2_verdicts;
    Alcotest.test_case "rewritten bodies are z-free" `Quick
      test_rewritten_body_z_free;
    Alcotest.test_case "z not free" `Quick test_z_not_free;
    Alcotest.test_case "fresh variable avoids capture" `Quick
      test_fresh_variable_no_capture;
    Alcotest.test_case "grouping rows truly need grouping" `Quick
      test_grouping_rows_really_group;
  ]
  @ soundness_suite
