(* Decorrelation tests: strategy agreement over a query corpus, plan-shape
   assertions, and the COUNT / SUBSETEQ bug demonstrations. *)

open Helpers
module Ast = Lang.Ast
module Plan = Algebra.Plan
module Value = Cobj.Value

let cat = xy_catalog ()

(* Queries over the helpers schema: X(a, b, s : P INT), Y(c, d). All are
   dangling-sensitive (X row with b = 5 matches nothing in Y). *)
let corpus =
  [
    (* WHERE-clause nesting, flattenable *)
    "SELECT x FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE x.b = y.d)";
    "SELECT x.a FROM X x WHERE x.a NOT IN (SELECT y.c FROM Y y WHERE x.b = y.d)";
    "SELECT x FROM X x WHERE EXISTS v IN (SELECT y.c FROM Y y WHERE x.b = y.d) (v > x.a)";
    "SELECT x FROM X x WHERE (SELECT y.c FROM Y y WHERE x.b = y.d) = {}";
    "SELECT x FROM X x WHERE COUNT(SELECT y.c FROM Y y WHERE x.b = y.d) <> 0";
    "SELECT x FROM X x WHERE x.a < MAX(SELECT y.c FROM Y y WHERE x.b = y.d)";
    "SELECT x FROM X x WHERE x.s SUPSETEQ (SELECT y.c FROM Y y WHERE x.b = y.d)";
    (* z-free conjuncts mixed in *)
    "SELECT x FROM X x WHERE x.a > 0 AND x.a IN (SELECT y.c FROM Y y WHERE x.b = y.d) AND x.b < 9";
    (* WHERE-clause nesting, grouping required *)
    "SELECT x FROM X x WHERE x.a = COUNT(SELECT y.c FROM Y y WHERE x.b = y.d)";
    "SELECT x FROM X x WHERE x.s SUBSETEQ (SELECT y.c FROM Y y WHERE x.b = y.d)";
    "SELECT x FROM X x WHERE x.s = (SELECT y.c FROM Y y WHERE x.b = y.d)";
    "SELECT x FROM X x WHERE x.a >= MAX(SELECT y.c FROM Y y WHERE x.b = y.d)";
    (* SELECT-clause nesting *)
    "SELECT (a = x.a, zs = (SELECT y.c FROM Y y WHERE y.d = x.b)) FROM X x";
    "SELECT (a = x.a, n = COUNT(SELECT y FROM Y y WHERE y.d = x.b)) FROM X x";
    (* UNNEST collapse *)
    "UNNEST(SELECT (SELECT (a = x.a, c = y.c) FROM Y y WHERE x.b = y.d) FROM X x)";
    (* non-equi correlation *)
    "SELECT x FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE y.d < x.b)";
    (* uncorrelated subquery *)
    "SELECT x FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE y.d = 3)";
    (* subquery over set-valued attribute (not flattened, still correct) *)
    "SELECT x FROM X x WHERE x.a IN (SELECT w + 0 FROM x.s w)";
    (* correlated via a non-equi conjunct plus an equi one *)
    "SELECT x FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE x.b = y.d AND y.c <> x.a + 1)";
    (* three-deep linear nesting *)
    "SELECT x.a FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE x.b = y.d \
     AND y.c IN (SELECT w.c FROM Y w WHERE w.d = y.d))";
    (* shadowed variable name in the subquery *)
    "SELECT x.a FROM X x WHERE x.a IN (SELECT x.c FROM Y x WHERE x.d = 1)";
    (* same table both sides with clashing binder *)
    "SELECT x.a FROM X x WHERE x.a IN (SELECT y.a FROM X y WHERE y.b = x.b \
     AND y.a <> x.a)";
    (* non-neighbour correlation: the innermost block references x two
       levels up (a "cyclic" query in the paper's terminology) — the middle
       block cannot split, the apply is kept, results stay correct *)
    "SELECT x.a FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE y.d IN \
     (SELECT w.c FROM Y w WHERE w.d = x.b))";
    (* subquery in the FROM clause — §3.2 says these "can be rewritten
       easily"; we iterate the derived set *)
    "SELECT v.c FROM (SELECT (c = y.c, d = y.d) FROM Y y WHERE y.d < 3) v \
     WHERE v.d = 1";
    (* FROM-clause subquery that is itself correlated with a later use *)
    "SELECT (a = x.a, n = COUNT(SELECT w FROM x.s w)) FROM X x";
    (* deeply nested SELECT-clause nesting (two levels of set results) *)
    "SELECT (a = x.a, yss = (SELECT (c = y.c, zs = (SELECT w.c FROM Y w \
     WHERE w.d = y.d)) FROM Y y WHERE y.d = x.b)) FROM X x";
  ]

let test_corpus_agreement () =
  List.iter (fun src -> strategies_agree ~catalog:cat src) corpus

let count_nodes pred q =
  Plan.fold (fun n node -> if pred node then n + 1 else n) 0 q.Plan.plan

let is_apply = function Plan.Apply _ -> true | _ -> false
let is_semijoin = function Plan.Semijoin _ -> true | _ -> false
let is_antijoin = function Plan.Antijoin _ -> true | _ -> false
let is_nestjoin = function Plan.Nestjoin _ -> true | _ -> false

let optimized src =
  let q, _ = Lang.Types.typecheck_exn cat (parse src) in
  let rec fixpoint n q =
    if n = 0 then q
    else
      let q' = Core.Rewrite.query (Core.Decorrelate.query q) in
      if q' = q then q else fixpoint (n - 1) q'
  in
  fixpoint 5 (Core.Translate.query_exn cat q)

let shape_case name src pred expected =
  Alcotest.test_case name `Quick (fun () ->
      let q = optimized src in
      Alcotest.check Alcotest.int
        (Printf.sprintf "%s in %s" name src)
        expected (count_nodes pred q))

let shape_suite =
  [
    shape_case "IN becomes a semijoin"
      "SELECT x FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE x.b = y.d)"
      is_semijoin 1;
    shape_case "NOT IN becomes an antijoin"
      "SELECT x FROM X x WHERE x.a NOT IN (SELECT y.c FROM Y y WHERE x.b = y.d)"
      is_antijoin 1;
    shape_case "COUNT comparison becomes a nest join"
      "SELECT x FROM X x WHERE x.a = COUNT(SELECT y.c FROM Y y WHERE x.b = y.d)"
      is_nestjoin 1;
    shape_case "SUBSETEQ becomes a nest join"
      "SELECT x FROM X x WHERE x.s SUBSETEQ (SELECT y.c FROM Y y WHERE x.b = y.d)"
      is_nestjoin 1;
    shape_case "SELECT-clause nesting becomes a nest join"
      "SELECT (a = x.a, zs = (SELECT y.c FROM Y y WHERE y.d = x.b)) FROM X x"
      is_nestjoin 1;
    shape_case "flattenable query has no residual apply"
      "SELECT x FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE x.b = y.d)"
      is_apply 0;
    shape_case "three-deep nesting fully decorrelates"
      "SELECT x.a FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE x.b = y.d \
       AND y.c IN (SELECT w.c FROM Y w WHERE w.d = y.d))"
      is_apply 0;
    shape_case "set-valued-attribute subquery keeps its apply"
      "SELECT x FROM X x WHERE x.a IN (SELECT w + 0 FROM x.s w)" is_apply 1;
    shape_case "uncorrelated WHERE subquery still flattens to a semijoin"
      "SELECT x FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE y.d = 3)"
      is_semijoin 1;
    shape_case "uncorrelated SELECT subquery keeps its apply (memoized later)"
      "SELECT (a = x.a, zs = (SELECT y.c FROM Y y WHERE y.d = 3)) FROM X x"
      is_apply 1;
  ]

(* The decorrelated plan of a grouping query must preserve dangling rows:
   direct witness on the COUNT query. *)
let test_dangling_preserved () =
  let src =
    "SELECT x FROM X x WHERE x.a = COUNT(SELECT y.c FROM Y y WHERE x.b = y.d)"
  in
  let v = run_strategy Core.Pipeline.Decorrelated cat src in
  let dangling =
    tup [ ("a", vi 0); ("b", vi 5); ("s", vset []) ]
  in
  Alcotest.check Alcotest.bool "dangling row with a = 0 in result" true
    (Value.set_mem dangling v)

(* --- the bugs ------------------------------------------------------------ *)

let bug_case name src =
  Alcotest.test_case name `Quick (fun () ->
      let reference = run_strategy Core.Pipeline.Interp cat src in
      let kim = run_strategy Core.Pipeline.Kim_baseline cat src in
      let gw = run_strategy Core.Pipeline.Ganski_wong cat src in
      let mura = run_strategy Core.Pipeline.Muralikrishna cat src in
      Alcotest.check Alcotest.bool
        "Kim plan loses dangling rows (the bug reproduces)" true
        (not (Value.equal reference kim)
        && Value.set_subseteq kim reference);
      Alcotest.check value "Ganski–Wong outerjoin fix is correct" reference gw;
      Alcotest.check value "Muralikrishna antijoin-predicate fix is correct"
        reference mura)

let bug_suite =
  [
    bug_case "COUNT bug"
      "SELECT x FROM X x WHERE x.a = COUNT(SELECT y.c FROM Y y WHERE x.b = y.d)";
    bug_case "SUBSETEQ bug (the paper's §4 example)"
      "SELECT x FROM X x WHERE x.s SUBSETEQ (SELECT y.c FROM Y y WHERE x.b = y.d)";
    bug_case "set-equality bug"
      "SELECT x FROM X x WHERE x.s = (SELECT y.c FROM Y y WHERE x.b = y.d)";
  ]

(* Randomized cross-strategy agreement over generated catalogs. *)
let random_catalog_agreement =
  qcheck ~count:25 "strategies agree on random catalogs"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let catalog =
        Workload.Gen.xy
          { Workload.Gen.default_xy with nx = 25; ny = 25; key_dom = 6; seed }
      in
      List.for_all
        (fun src ->
          let reference = run_strategy Core.Pipeline.Interp catalog src in
          List.for_all
            (fun s -> Value.equal reference (run_strategy s catalog src))
            Core.Pipeline.
              [ Naive; Decorrelated; Decorrelated_outerjoin; Ganski_wong ])
        [
          "SELECT x FROM X x WHERE x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)";
          "SELECT x FROM X x WHERE x.a = COUNT(SELECT y.a FROM Y y WHERE x.b = y.b)";
          "SELECT x FROM X x WHERE x.s SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)";
          "SELECT (i = x.id, zs = (SELECT y.a FROM Y y WHERE y.b = x.b)) FROM X x";
        ])

let suite =
  [
    Alcotest.test_case "corpus agreement across strategies" `Quick
      test_corpus_agreement;
  ]
  @ shape_suite
  @ [
      Alcotest.test_case "dangling rows preserved" `Quick
        test_dangling_preserved;
    ]
  @ bug_suite
  @ [ random_catalog_agreement ]

(* --- multiple subqueries per WHERE clause (paper's future work) --------- *)

let multi_corpus =
  [
    "SELECT x.a FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE x.b = y.d) \
     AND x.a NOT IN (SELECT w.c FROM Y w WHERE w.d = x.b + 2)";
    "SELECT x.a FROM X x WHERE x.s SUBSETEQ (SELECT y.c FROM Y y WHERE x.b \
     = y.d) AND x.a IN (SELECT w.c FROM Y w WHERE w.d = x.b)";
    "SELECT x.a FROM X x WHERE x.a = COUNT(SELECT y.c FROM Y y WHERE x.b = \
     y.d) AND x.a <> COUNT(SELECT w.c FROM Y w WHERE w.d = x.b + 2)";
    "SELECT x.a FROM X x WHERE x.a > 0 AND x.a IN (SELECT y.c FROM Y y \
     WHERE x.b = y.d) AND x.b < 9 AND EXISTS v IN (SELECT w.c FROM Y w \
     WHERE w.d = x.b) (v = x.a)";
  ]

let test_multi_agreement () =
  List.iter (fun src -> strategies_agree ~catalog:cat src) multi_corpus

let test_multi_shapes () =
  (* IN + NOT IN: one semijoin, one antijoin, no apply, no nest join *)
  let q = optimized (List.nth multi_corpus 0) in
  Alcotest.check Alcotest.int "semijoin" 1 (count_nodes is_semijoin q);
  Alcotest.check Alcotest.int "antijoin" 1 (count_nodes is_antijoin q);
  Alcotest.check Alcotest.int "no apply" 0 (count_nodes is_apply q);
  Alcotest.check Alcotest.int "no nestjoin" 0 (count_nodes is_nestjoin q);
  (* SUBSETEQ + IN: one nest join (for ⊆), one semijoin *)
  let q = optimized (List.nth multi_corpus 1) in
  Alcotest.check Alcotest.int "nestjoin" 1 (count_nodes is_nestjoin q);
  Alcotest.check Alcotest.int "semijoin" 1 (count_nodes is_semijoin q);
  Alcotest.check Alcotest.int "no apply" 0 (count_nodes is_apply q);
  (* two COUNT comparisons: two nest joins *)
  let q = optimized (List.nth multi_corpus 2) in
  Alcotest.check Alcotest.int "two nestjoins" 2 (count_nodes is_nestjoin q);
  Alcotest.check Alcotest.int "no apply" 0 (count_nodes is_apply q)

let multi_suite =
  [
    Alcotest.test_case "multiple subqueries agree" `Quick test_multi_agreement;
    Alcotest.test_case "multiple subqueries flatten fully" `Quick
      test_multi_shapes;
  ]

let suite = suite @ multi_suite

(* Kim's second form (join first, then GROUP BY) exhibits the same bug. *)
let test_kim_join_first_bug () =
  let src =
    "SELECT x FROM X x WHERE x.a = COUNT(SELECT y.c FROM Y y WHERE x.b = y.d)"
  in
  let q, _ = Lang.Types.typecheck_exn cat (parse src) in
  let naive = Core.Translate.query_exn cat q in
  let kim2 =
    match Core.Kim.kim_join_first naive with
    | Ok q -> q
    | Error msg -> Alcotest.fail msg
  in
  let reference = Lang.Interp.run cat q in
  let got = Algebra.Sem.run cat kim2 in
  Alcotest.check Alcotest.bool "join-first variant also loses dangling rows"
    true
    (not (Value.equal reference got) && Value.set_subseteq got reference);
  (* and it agrees with group-first Kim — the two buggy forms coincide *)
  let kim1 =
    match Core.Kim.kim naive with Ok q -> q | Error m -> Alcotest.fail m
  in
  Alcotest.check value "both Kim forms compute the same (wrong) result"
    (Algebra.Sem.run cat kim1) got

let suite =
  suite
  @ [
      Alcotest.test_case "Kim join-first variant bug" `Quick
        test_kim_join_first_bug;
    ]

(* The ablation modes must stay correct: decorrelation without the rewriter
   or the reorderer gives the same answers. *)
let test_ablation_modes_correct () =
  List.iter
    (fun src ->
      let reference = run_strategy Core.Pipeline.Interp cat src in
      List.iter
        (fun (rewrite, reorder) ->
          match
            Core.Pipeline.run ~rewrite ~reorder Core.Pipeline.Decorrelated cat
              src
          with
          | Ok v ->
            Alcotest.check value
              (Printf.sprintf "rewrite=%b reorder=%b on %s" rewrite reorder src)
              reference v
          | Error msg -> Alcotest.fail msg)
        [ (false, false); (true, false); (false, true) ])
    (corpus @ multi_corpus)

let suite =
  suite
  @ [
      Alcotest.test_case "ablation modes stay correct" `Quick
        test_ablation_modes_correct;
    ]
