(* Unit and property tests for the complex-object value substrate. *)

open Helpers
module Value = Cobj.Value

let test_set_dedup_sort () =
  let s = Value.set [ vi 3; vi 1; vi 3; vi 2; vi 1 ] in
  Alcotest.check value "sorted, dup-free" (Value.Set [ vi 1; vi 2; vi 3 ]) s

let test_set_nested_dedup () =
  let s = Value.set [ vset [ vi 1; vi 2 ]; vset [ vi 2; vi 1 ] ] in
  Alcotest.check Alcotest.int "inner sets compare equal" 1 (Value.set_card s)

let test_tuple_sorted () =
  let t = tup [ ("b", vi 2); ("a", vi 1) ] in
  match t with
  | Value.Tuple [ ("a", _); ("b", _) ] -> ()
  | _ -> Alcotest.fail "fields not sorted"

let test_tuple_duplicate_label () =
  Alcotest.check_raises "duplicate label rejected"
    (Invalid_argument "Value.tuple: duplicate label \"a\"") (fun () ->
      ignore (Value.tuple [ ("a", vi 1); ("a", vi 2) ]))

let test_numeric_cross_compare () =
  Alcotest.check Alcotest.bool "1 = 1.0 across Int/Float" true
    (Value.equal (vi 1) (Value.Float 1.0));
  Alcotest.check Alcotest.bool "1 < 1.5" true
    (Value.compare (vi 1) (Value.Float 1.5) < 0)

let test_field_access () =
  let t = tup [ ("a", vi 1); ("b", vs "x") ] in
  Alcotest.check value "field a" (vi 1) (Value.field "a" t);
  Alcotest.check_raises "missing field"
    (Value.Type_error "no field \"z\" in (a = 1, b = \"x\")") (fun () ->
      ignore (Value.field "z" t))

let test_set_ops () =
  let a = vset [ vi 1; vi 2; vi 3 ] and b = vset [ vi 2; vi 3; vi 4 ] in
  Alcotest.check value "union" (vset [ vi 1; vi 2; vi 3; vi 4 ])
    (Value.set_union a b);
  Alcotest.check value "inter" (vset [ vi 2; vi 3 ]) (Value.set_inter a b);
  Alcotest.check value "diff" (vset [ vi 1 ]) (Value.set_diff a b);
  Alcotest.check Alcotest.bool "mem" true (Value.set_mem (vi 2) a);
  Alcotest.check Alcotest.bool "not mem" false (Value.set_mem (vi 9) a);
  Alcotest.check Alcotest.bool "subseteq refl" true (Value.set_subseteq a a);
  Alcotest.check Alcotest.bool "subset irrefl" false (Value.set_subset a a);
  Alcotest.check Alcotest.bool "subset" true
    (Value.set_subset (vset [ vi 1 ]) a)

let test_empty_set_ops () =
  let e = vset [] and a = vset [ vi 1 ] in
  Alcotest.check Alcotest.bool "empty subseteq all" true
    (Value.set_subseteq e a);
  Alcotest.check value "union with empty" a (Value.set_union e a);
  Alcotest.check value "inter with empty" e (Value.set_inter e a);
  Alcotest.check Alcotest.bool "is_empty" true (Value.set_is_empty e)

let test_null_ordering () =
  Alcotest.check Alcotest.bool "Null smallest" true
    (Value.compare Value.Null (vi (-1000)) < 0);
  Alcotest.check Alcotest.bool "Null = Null" true
    (Value.equal Value.Null Value.Null)

(* --- properties --------------------------------------------------------- *)

let prop_compare_total =
  qcheck "compare is a total order (antisymmetric, transitive on triples)"
    QCheck2.Gen.(triple value_gen value_gen value_gen)
    (fun (a, b, c) ->
      let cab = Value.compare a b and cba = Value.compare b a in
      let anti = compare cab 0 = compare 0 cba in
      let trans =
        (* if a <= b <= c then a <= c *)
        not (Value.compare a b <= 0 && Value.compare b c <= 0)
        || Value.compare a c <= 0
      in
      anti && trans)

let prop_set_idempotent =
  qcheck "set construction is idempotent"
    QCheck2.Gen.(list_size (int_range 0 8) value_gen)
    (fun xs ->
      let s1 = Value.set xs in
      let s2 = Value.set (Value.elements s1) in
      Value.equal s1 s2)

let prop_hash_respects_equal =
  qcheck "equal values hash equally"
    QCheck2.Gen.(list_size (int_range 0 6) value_gen)
    (fun xs ->
      (* build the same set from two different orderings *)
      let s1 = Value.set xs and s2 = Value.set (List.rev xs) in
      Value.hash s1 = Value.hash s2)

let prop_union_commutes =
  qcheck "set union commutes, inter distributes"
    QCheck2.Gen.(pair (list_size (int_range 0 6) value_gen)
                   (list_size (int_range 0 6) value_gen))
    (fun (xs, ys) ->
      let a = Value.set xs and b = Value.set ys in
      Value.equal (Value.set_union a b) (Value.set_union b a)
      && Value.equal (Value.set_inter a b) (Value.set_inter b a))

let prop_pp_parse_roundtrip =
  qcheck "printed values parse back equal (via Lang literals)" value_gen
    (fun v ->
      match Lang.Parser.expr_result (Value.to_string v) with
      | Error _ -> false
      | Ok e -> (
        match Lang.Interp.run Cobj.Catalog.empty e with
        | v' -> Value.equal v v'
        | exception _ -> false))

let suite =
  [
    Alcotest.test_case "set dedup and sort" `Quick test_set_dedup_sort;
    Alcotest.test_case "nested set dedup" `Quick test_set_nested_dedup;
    Alcotest.test_case "tuple fields sorted" `Quick test_tuple_sorted;
    Alcotest.test_case "tuple duplicate label" `Quick test_tuple_duplicate_label;
    Alcotest.test_case "numeric cross compare" `Quick test_numeric_cross_compare;
    Alcotest.test_case "field access" `Quick test_field_access;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "empty set operations" `Quick test_empty_set_ops;
    Alcotest.test_case "null ordering" `Quick test_null_ordering;
    prop_compare_total;
    prop_set_idempotent;
    prop_hash_respects_equal;
    prop_union_commutes;
    prop_pp_parse_roundtrip;
  ]
