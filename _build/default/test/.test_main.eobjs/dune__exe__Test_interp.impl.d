test/test_interp.ml: Alcotest Cobj Helpers Lang List QCheck2
