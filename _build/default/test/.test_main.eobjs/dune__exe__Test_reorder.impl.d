test/test_reorder.ml: Alcotest Algebra Cobj Core Helpers List QCheck2 Workload
