test/test_planner.ml: Alcotest Algebra Cobj Core Engine Helpers Lang List Workload
