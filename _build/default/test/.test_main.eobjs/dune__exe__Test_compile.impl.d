test/test_compile.ml: Alcotest Cobj Engine Fun Helpers Lang List Test_parser
