test/test_parser.ml: Alcotest Cobj Helpers Lang List Printexc Printf QCheck2
