test/test_ctype.ml: Alcotest Cobj Helpers QCheck2
