test/test_types.ml: Alcotest Cobj Fmt Helpers Lang
