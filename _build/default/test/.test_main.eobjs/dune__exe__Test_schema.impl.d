test/test_schema.ml: Alcotest Cobj Core Helpers Lang List QCheck2 Workload
