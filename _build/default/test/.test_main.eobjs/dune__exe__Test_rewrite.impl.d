test/test_rewrite.ml: Alcotest Algebra Cobj Core Helpers Lang List QCheck2
