test/test_classify.ml: Alcotest Cobj Core Helpers Lang List Option Printf QCheck2
