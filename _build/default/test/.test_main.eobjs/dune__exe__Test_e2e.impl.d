test/test_e2e.ml: Alcotest Algebra Astring Cobj Core Engine Helpers Lang List Printf Workload
