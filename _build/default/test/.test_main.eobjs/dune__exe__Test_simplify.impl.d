test/test_simplify.ml: Alcotest Algebra Bool Cobj Core Helpers Lang List Test_parser Workload
