test/test_random_queries.ml: Algebra Cobj Core Helpers List Printf QCheck2 Workload
