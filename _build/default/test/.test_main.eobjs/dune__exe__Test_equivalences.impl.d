test/test_equivalences.ml: Alcotest Algebra Cobj Core Helpers Lang List QCheck2 Workload
