test/helpers.ml: Alcotest Algebra Cobj Core Lang List Printf QCheck2 QCheck_alcotest
