test/test_value.ml: Alcotest Cobj Helpers Lang List QCheck2
