test/test_decorrelate.ml: Alcotest Algebra Cobj Core Helpers Lang List Printf QCheck2 Workload
