test/test_algebra.ml: Alcotest Algebra Cobj Fmt Helpers Lang List
