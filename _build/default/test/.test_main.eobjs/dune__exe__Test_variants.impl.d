test/test_variants.ml: Alcotest Cobj Core Engine Helpers Lang List Printf
