test/test_build.ml: Alcotest Cobj Core Helpers Lang List Printf
