test/test_env.ml: Alcotest Cobj Helpers List
