test/test_engine.ml: Alcotest Algebra Cobj Core Engine Fmt Helpers List Printf QCheck2 Workload
