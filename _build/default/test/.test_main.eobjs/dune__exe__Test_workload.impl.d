test/test_workload.ml: Alcotest Cobj List Printf Workload
