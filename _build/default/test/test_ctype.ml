(* Tests for the type algebra: conformance, join, inference. *)

open Helpers
module Ctype = Cobj.Ctype
module Value = Cobj.Value

let topt : Ctype.t option Alcotest.testable =
  Alcotest.option ctype

let test_conforms_basic () =
  Alcotest.check Alcotest.bool "int conforms" true
    (Ctype.conforms (vi 1) Ctype.TInt);
  Alcotest.check Alcotest.bool "int conforms to float" true
    (Ctype.conforms (vi 1) Ctype.TFloat);
  Alcotest.check Alcotest.bool "string not int" false
    (Ctype.conforms (vs "x") Ctype.TInt);
  Alcotest.check Alcotest.bool "null conforms to anything" true
    (Ctype.conforms Value.Null (Ctype.TSet Ctype.TString))

let test_conforms_nested () =
  let t =
    Ctype.ttuple
      [ ("a", Ctype.TInt); ("b", Ctype.TSet (Ctype.ttuple [ ("c", Ctype.TString) ])) ]
  in
  let good =
    tup [ ("a", vi 1); ("b", vset [ tup [ ("c", vs "x") ] ]) ]
  in
  let bad = tup [ ("a", vi 1); ("b", vset [ tup [ ("c", vi 3) ] ]) ] in
  Alcotest.check Alcotest.bool "nested ok" true (Ctype.conforms good t);
  Alcotest.check Alcotest.bool "nested bad" false (Ctype.conforms bad t)

let test_join () =
  Alcotest.check topt "int join float" (Some Ctype.TFloat)
    (Ctype.join Ctype.TInt Ctype.TFloat);
  Alcotest.check topt "any joins" (Some Ctype.TInt)
    (Ctype.join Ctype.TAny Ctype.TInt);
  Alcotest.check topt "set covariant" (Some Ctype.(TSet TFloat))
    (Ctype.join Ctype.(TSet TInt) Ctype.(TSet TFloat));
  Alcotest.check topt "incompatible" None
    (Ctype.join Ctype.TInt Ctype.TString);
  Alcotest.check topt "tuple fieldwise"
    (Some (Ctype.ttuple [ ("a", Ctype.TFloat) ]))
    (Ctype.join
       (Ctype.ttuple [ ("a", Ctype.TInt) ])
       (Ctype.ttuple [ ("a", Ctype.TFloat) ]))

let test_infer () =
  Alcotest.check topt "empty set" (Some Ctype.(TSet TAny))
    (Ctype.infer (vset []));
  Alcotest.check topt "homogeneous set" (Some Ctype.(TSet TInt))
    (Ctype.infer (vset [ vi 1; vi 2 ]));
  Alcotest.check topt "mixed numeric set" (Some Ctype.(TSet TFloat))
    (Ctype.infer (vset [ vi 1; Value.Float 2.5 ]));
  Alcotest.check topt "heterogeneous" None
    (Ctype.infer (vset [ vi 1; vs "x" ]))

let prop_infer_conforms =
  qcheck "inferred type admits the value" value_gen (fun v ->
      match Ctype.infer v with
      | None -> true (* heterogeneous collections have no type *)
      | Some t -> Ctype.conforms v t)

let prop_join_upper_bound =
  qcheck "join is an upper bound for conformance"
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) ->
      match Ctype.infer a, Ctype.infer b with
      | Some ta, Some tb -> (
        match Ctype.join ta tb with
        | None -> true
        | Some t -> Ctype.conforms a t && Ctype.conforms b t)
      | _, _ -> true)

let suite =
  [
    Alcotest.test_case "conforms basic" `Quick test_conforms_basic;
    Alcotest.test_case "conforms nested" `Quick test_conforms_nested;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "infer" `Quick test_infer;
    prop_infer_conforms;
    prop_join_upper_bound;
  ]
